// Package spammass is a complete implementation of link-spam detection
// based on spam mass estimation, after Gyöngyi, Berkhin, Garcia-Molina
// and Pedersen: "Link Spam Detection Based on Mass Estimation" (VLDB
// 2006).
//
// The spam mass of a web node is the part of its PageRank contributed,
// directly or indirectly, by spam nodes. It is estimated from two
// PageRank vectors — the regular one and a core-based one whose random
// jump is biased to a large set of known-good nodes — and thresholded
// to detect the targets of link-spam farms:
//
//	g := spammass.NewBuilder(4)
//	g.AddEdge(1, 0) // good → target
//	g.AddEdge(2, 0) // spam → target
//	g.AddEdge(3, 0) // spam → target
//	graph := g.Build()
//	est, err := spammass.Estimate(graph, []spammass.NodeID{1}, spammass.DefaultOptions())
//	if err != nil { ... }
//	candidates := spammass.Detect(est, spammass.DetectConfig{
//		RelMassThreshold:        0.5,
//		ScaledPageRankThreshold: 1.0,
//	})
//
// The package re-exports the building blocks — the CSR web graph, the
// linear PageRank solvers, PageRank contributions, TrustRank, the
// related-work baselines, and the synthetic web generator used by the
// experiment suite — so downstream code can compose them directly.
package spammass

import (
	"io"

	"spammass/internal/anomaly"
	"spammass/internal/baseline"
	"spammass/internal/content"
	"spammass/internal/delta"
	"spammass/internal/diskgraph"
	"spammass/internal/forensics"
	"spammass/internal/goodcore"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
	"spammass/internal/trustrank"
	"spammass/internal/webgen"
)

// Graph is an immutable host-level web graph in CSR form.
type Graph = graph.Graph

// NodeID identifies a node; IDs are dense in [0, NumNodes).
type NodeID = graph.NodeID

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// HostGraph couples a Graph with host names.
type HostGraph = graph.HostGraph

// GraphStats summarizes a graph's structure.
type GraphStats = graph.Stats

// Vector is a dense per-node score vector.
type Vector = pagerank.Vector

// SolverConfig configures the linear PageRank solvers.
type SolverConfig = pagerank.Config

// SolverResult carries a PageRank vector and convergence diagnostics.
type SolverResult = pagerank.Result

// Engine is a reusable PageRank solver bound to one graph: it caches
// the inverse out-degrees, dangling-node list, iteration buffers, and
// a persistent worker pool across solves, and batches several jump
// vectors through one adjacency sweep per iteration (SolveMany).
type Engine = pagerank.Engine

// SolveStats carries per-solve telemetry: iteration residuals, wall
// time, and edge throughput.
type SolveStats = pagerank.SolveStats

// TraceEvent is one per-iteration telemetry sample; see
// SolverConfig.Trace.
type TraceEvent = pagerank.TraceEvent

// TraceFunc receives TraceEvents during a solve.
type TraceFunc = pagerank.TraceFunc

// ErrNotConverged reports a solve that hit MaxIter without meeting
// Epsilon. Unless SolverConfig.AllowTruncated is set, every truncated
// solve surfaces as this error (the truncated result still accompanies
// it for diagnostics).
type ErrNotConverged = pagerank.ErrNotConverged

// Estimator binds mass estimation to a reusable solver engine.
type Estimator = mass.Estimator

// Estimates holds spam-mass estimates for every node.
type Estimates = mass.Estimates

// EstimateOptions configures mass estimation.
type EstimateOptions = mass.Options

// DetectConfig holds the two thresholds of the detection algorithm.
type DetectConfig = mass.DetectConfig

// Candidate is one detected link-spam candidate.
type Candidate = mass.Candidate

// GoodCore is an assembled white-list of known-good nodes.
type GoodCore = goodcore.Core

// World is a synthetic host-level web with ground-truth labels.
type World = webgen.World

// WorldConfig configures the synthetic web generator.
type WorldConfig = webgen.Config

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph with n nodes from an edge list.
func FromEdges(n int, edges [][2]NodeID) *Graph { return graph.FromEdges(n, edges) }

// ReadGraphText parses the text edge-list format.
func ReadGraphText(r io.Reader) (*Graph, error) { return graph.ReadText(r) }

// WriteGraphText writes the text edge-list format.
func WriteGraphText(w io.Writer, g *Graph) error { return graph.WriteText(w, g) }

// ReadGraphBinary parses the compact binary graph format.
func ReadGraphBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// WriteGraphBinary writes the compact binary graph format.
func WriteGraphBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// NewHostGraph couples a graph with one host name per node (the
// substrate delta batches are keyed on).
func NewHostGraph(g *Graph, names []string) (*HostGraph, error) { return graph.NewHostGraph(g, names) }

// CollapseToHosts collapses a page-level graph to the host level.
func CollapseToHosts(g *Graph, pageURLs []string) (*HostGraph, error) {
	return graph.CollapseToHosts(g, pageURLs)
}

// Stats computes structural statistics of a graph.
func Stats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// DefaultSolverConfig returns the solver settings used in the paper's
// experiments: damping 0.85 and a tight L1 convergence bound.
func DefaultSolverConfig() SolverConfig { return pagerank.DefaultConfig() }

// NewEngine builds a reusable solver engine bound to g. Close it when
// done to release the worker pool.
func NewEngine(g *Graph, cfg SolverConfig) (*Engine, error) { return pagerank.NewEngine(g, cfg) }

// NewEstimator builds a reusable mass estimator bound to g. Close it
// when done to release the solver engine.
func NewEstimator(g *Graph, opts EstimateOptions) (*Estimator, error) {
	return mass.NewEstimator(g, opts)
}

// IsNotConverged reports whether err is (or wraps) an *ErrNotConverged.
func IsNotConverged(err error) bool { return pagerank.IsNotConverged(err) }

// PageRank computes the linear PageRank vector for the uniform random
// jump distribution, solved with the Jacobi method of Algorithm 1.
func PageRank(g *Graph, cfg SolverConfig) (*SolverResult, error) {
	return pagerank.Jacobi(g, pagerank.UniformJump(g.NumNodes()), cfg)
}

// PageRankWithJump computes linear PageRank for an arbitrary (possibly
// non-uniform, possibly unnormalized) random jump vector.
func PageRankWithJump(g *Graph, v Vector, cfg SolverConfig) (*SolverResult, error) {
	return pagerank.Jacobi(g, v, cfg)
}

// Contribution returns q^U: the vector of PageRank contributions of
// the node set U to every node (Theorem 2 of the paper).
func Contribution(g *Graph, set []NodeID, cfg SolverConfig) (Vector, error) {
	return pagerank.Contribution(g, set, pagerank.UniformJump(g.NumNodes()), cfg)
}

// DefaultOptions returns the estimation options of the paper's
// experiments (γ = 0.85 jump scaling).
func DefaultOptions() EstimateOptions { return mass.DefaultOptions() }

// Estimate computes spam-mass estimates from a good core Ṽ⁺.
func Estimate(g *Graph, core []NodeID, opts EstimateOptions) (*Estimates, error) {
	return mass.EstimateFromCore(g, core, opts)
}

// EstimateFromBlacklist computes absolute-mass estimates from a known
// spam subset Ṽ⁻.
func EstimateFromBlacklist(g *Graph, spamCore []NodeID, beta float64, opts EstimateOptions) (*Estimates, error) {
	return mass.EstimateFromBlacklist(g, spamCore, beta, opts)
}

// CombineEstimates averages a white-list and a black-list estimate.
func CombineEstimates(white, black *Estimates) (*Estimates, error) {
	return mass.Combine(white, black)
}

// ExactMass computes the actual spam mass given a ground-truth spam
// set (available only in synthetic or fully labeled settings).
func ExactMass(g *Graph, spam []NodeID, opts EstimateOptions) (*Estimates, error) {
	return mass.Exact(g, spam, opts)
}

// DefaultDetectConfig returns the detection thresholds of the paper's
// experiments (ρ = 10 scaled, τ = 0.98).
func DefaultDetectConfig() DetectConfig { return mass.DefaultDetectConfig() }

// Detect runs the mass-based spam detection algorithm (Algorithm 2)
// and returns the spam candidates sorted by decreasing relative mass.
func Detect(est *Estimates, cfg DetectConfig) []Candidate { return mass.Detect(est, cfg) }

// TrustRank computes TrustRank scores for a seed set of known-good
// nodes — the complementary demotion-oriented technique the paper
// compares against.
func TrustRank(g *Graph, seeds []NodeID, cfg SolverConfig) (Vector, error) {
	return trustrank.Compute(g, seeds, cfg)
}

// SelectTrustRankSeeds picks seed candidates by inverse PageRank and
// filters them through an oracle.
func SelectTrustRankSeeds(g *Graph, oracle func(NodeID) bool, candidates, maxSeeds int, cfg SolverConfig) ([]NodeID, error) {
	return trustrank.SelectSeeds(g, oracle, candidates, maxSeeds, cfg)
}

// AssembleGoodCore builds a good core from host names and a directory
// membership list, the way the paper's Section 4.2 core is built.
func AssembleGoodCore(names []string, directoryMembers []NodeID) (*GoodCore, error) {
	return goodcore.Assemble(names, directoryMembers)
}

// GenerateWorld builds a synthetic host-level web graph with ground
// truth — the substrate the experiment suite runs on.
func GenerateWorld(cfg WorldConfig) (*World, error) { return webgen.Generate(cfg) }

// DefaultWorldConfig returns a calibrated generator configuration for
// n hosts.
func DefaultWorldConfig(n int) WorldConfig { return webgen.DefaultConfig(n) }

// DegreeOutliers flags nodes whose exact degree is hit far more often
// than the fitted power law predicts (the Fetterly et al. baseline).
func DegreeOutliers(g *Graph, cfg baseline.DegreeOutlierConfig) ([]NodeID, error) {
	return baseline.DegreeOutliers(g, cfg)
}

// DegreeOutlierConfig configures DegreeOutliers.
type DegreeOutlierConfig = baseline.DegreeOutlierConfig

// Supporters returns the k nodes contributing the most PageRank to x
// (the reverse contribution analysis of Section 3.2) together with
// p_x — the forensic view behind a detection.
func Supporters(g *Graph, x NodeID, cfg SolverConfig, k int) ([]pagerank.Supporter, float64, error) {
	return pagerank.TopSupporters(g, x, pagerank.UniformJump(g.NumNodes()), cfg, k)
}

// Supporter is one contributor to a node's PageRank.
type Supporter = pagerank.Supporter

// ExtractedFarm is the boosting structure extracted behind a candidate.
type ExtractedFarm = forensics.Farm

// FarmAlliance is a group of candidates whose farms are linked.
type FarmAlliance = forensics.Alliance

// ForensicsConfig tunes farm extraction.
type ForensicsConfig = forensics.Config

// DefaultForensicsConfig returns sensible extraction settings.
func DefaultForensicsConfig() ForensicsConfig { return forensics.DefaultConfig() }

// ExtractFarm analyzes the boosting structure behind one candidate.
func ExtractFarm(g *Graph, est *Estimates, target NodeID, cfg ForensicsConfig) (*ExtractedFarm, error) {
	return forensics.Extract(g, est, target, cfg)
}

// ExtractFarms analyzes every candidate and groups alliances.
func ExtractFarms(g *Graph, est *Estimates, candidates []Candidate, cfg ForensicsConfig) ([]*ExtractedFarm, []FarmAlliance, error) {
	return forensics.ExtractAll(g, est, candidates, cfg)
}

// AnomalousCommunity is a discovered good community the core fails to
// cover, with suggested core fixes (Section 4.4.2 automated).
type AnomalousCommunity = anomaly.Community

// AnomalyConfig tunes anomaly discovery.
type AnomalyConfig = anomaly.Config

// DefaultAnomalyConfig returns the paper-matched discovery settings.
func DefaultAnomalyConfig() AnomalyConfig { return anomaly.DefaultConfig() }

// DiscoverAnomalies clusters judged-good high-mass hosts into the
// under-covered communities behind them and proposes core fixes.
// The judge reports whether a host is good (the editorial signal of
// Section 4.4); hosts judged not-good are ignored.
func DiscoverAnomalies(g *Graph, est *Estimates, judge func(NodeID) bool, cfg AnomalyConfig) ([]AnomalousCommunity, error) {
	oracle := func(x graph.NodeID) anomaly.Judgment {
		if judge(x) {
			return anomaly.Good
		}
		return anomaly.Spam
	}
	return anomaly.Discover(g, est, oracle, cfg)
}

// ContentFeatures summarizes a host's textual content for the
// complementary content analysis of the paper's conclusion.
type ContentFeatures = content.Features

// ContentClassifier is a logistic-regression spam classifier over
// content features.
type ContentClassifier = content.Classifier

// TrainContentClassifier fits a classifier on labeled hosts
// (label true = spam).
func TrainContentClassifier(feats []ContentFeatures, labels []bool) (*ContentClassifier, error) {
	return content.Train(feats, labels, content.DefaultTrainConfig())
}

// MonteCarloPageRank estimates PageRank by random-walk simulation —
// an independent solver family useful for cross-validation and for
// sampling contributions on graphs too large for repeated algebraic
// solves.
func MonteCarloPageRank(g *Graph, cfg pagerank.MonteCarloConfig) (Vector, error) {
	return pagerank.MonteCarlo(g, pagerank.UniformJump(g.NumNodes()), cfg)
}

// MonteCarloConfig tunes the random-walk estimator.
type MonteCarloConfig = pagerank.MonteCarloConfig

// DefaultMonteCarloConfig returns the default simulation settings.
func DefaultMonteCarloConfig() MonteCarloConfig { return pagerank.DefaultMonteCarloConfig() }

// DiskGraph is an on-disk graph for out-of-core PageRank: only the
// out-degree array and score vectors stay in memory while the
// adjacency streams from disk once per iteration.
type DiskGraph = diskgraph.DiskGraph

// BuildDiskGraph writes g in the out-of-core format at path.
func BuildDiskGraph(path string, g *Graph) error { return diskgraph.Build(path, g) }

// OpenDiskGraph opens an on-disk graph built by BuildDiskGraph.
func OpenDiskGraph(path string) (*DiskGraph, error) { return diskgraph.Open(path) }

// EvolveSpam advances a synthetic world one spam generation: existing
// farms are abandoned and fresh ones stood up, while the good web (and
// therefore the good core) is untouched — the Section 3.4 churn that
// makes white lists age better than black lists.
func EvolveSpam(w *World, seed int64) (*World, error) {
	return webgen.EvolveSpam(w, webgen.EvolveConfig{Seed: seed})
}

// ExpandPages expands a host world to a page-level graph whose
// collapse (CollapseToHosts) recovers the host graph exactly — the
// Section 4.1 pipeline in reverse.
func ExpandPages(w *World) (*webgen.PageWorld, error) {
	return webgen.ExpandPages(w, webgen.DefaultPageConfig())
}

// PageWorld is a page-level expansion of a host world.
type PageWorld = webgen.PageWorld

// DeltaBatch is an ordered list of graph mutations (add/remove host,
// add/remove edge), keyed by host name — the identifier that is
// stable across graph generations.
type DeltaBatch = delta.Batch

// DeltaOp is one mutation of a DeltaBatch.
type DeltaOp = delta.Op

// DeltaResult carries everything one applied batch produced: the next
// host-graph generation, the monotone old→new node remapping, and the
// inverse batch.
type DeltaResult = delta.Result

// ApplyDelta merges a mutation batch into a host graph in one pass,
// producing the next generation — byte-identical to rebuilding from
// the mutated edge list. On any conflict the graph is untouched.
func ApplyDelta(h *HostGraph, b *DeltaBatch) (*DeltaResult, error) { return delta.Apply(h, b) }

// DiffHostGraphs computes the batch that transforms old into new;
// applying it to old reproduces new exactly.
func DiffHostGraphs(old, new *HostGraph) (*DeltaBatch, error) { return delta.Diff(old, new) }

// ReadDeltaText parses the line-oriented delta text format.
func ReadDeltaText(r io.Reader) (*DeltaBatch, error) { return delta.ReadText(r) }

// WriteDeltaText writes the line-oriented delta text format.
func WriteDeltaText(w io.Writer, b *DeltaBatch) error { return delta.WriteText(w, b) }

// MassWarmStart seeds an incremental re-estimation with a previous
// generation's solved vectors.
type MassWarmStart = mass.WarmStart

// RemapWarmStart maps a previous generation's estimates onto the node
// set produced by ApplyDelta (remap is DeltaResult.Remap), yielding
// the warm start for Estimator.EstimateFromCoreWarm.
func RemapWarmStart(prev *Estimates, remap []int64, n int, core []NodeID, gamma float64) (*MassWarmStart, error) {
	return mass.RemapWarmStart(prev, remap, n, core, gamma)
}

// PairwiseOrderedness scores how well a ranking separates judged good
// nodes above judged spam nodes (the TrustRank paper's metric).
func PairwiseOrderedness(scores Vector, good, spam []NodeID) (float64, error) {
	return trustrank.PairwiseOrderedness(scores, good, spam)
}

// ObsContext threads the observability sinks (metrics registry, span
// tree, line logger) through the pipeline; attach one to
// SolverConfig.Obs and every solve, estimation, and detection records
// spans and metrics. A nil *ObsContext is a valid no-op.
type ObsContext = obs.Context

// ObsRegistry is a concurrency-safe metrics registry (counters,
// gauges, log-bucket timing histograms), exposable via expvar.
type ObsRegistry = obs.Registry

// ObsSpan is one timed node of a hierarchical trace.
type ObsSpan = obs.Span

// RunReport is the machine-readable record of one pipeline run,
// written by the CLIs' -report flag.
type RunReport = obs.RunReport

// NewObsRegistry returns an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewObsSpan starts a detached root span.
func NewObsSpan(name string) *ObsSpan { return obs.NewSpan(name) }

// NewObsContext builds a context over a registry and a root span;
// either may be nil.
func NewObsContext(reg *ObsRegistry, root *ObsSpan) *ObsContext { return obs.NewContext(reg, root) }
