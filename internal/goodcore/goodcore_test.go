package goodcore

import (
	"testing"

	"spammass/internal/graph"
	"spammass/internal/webgen"
)

func TestNamePredicates(t *testing.T) {
	cases := []struct {
		name       string
		gov, edu   bool
		eduCountry string
	}{
		{"agency3.gov", true, false, ""},
		{"www.nytimes.com", false, false, ""},
		{"uni0.edu", false, true, "us"},
		{"uni12.edu.it", false, true, "it"},
		{"uni3.edu.cz", false, true, "cz"},
		{"government.gov.uk", false, false, ""}, // .gov.uk is not .gov
		{"eduardo.com", false, false, ""},       // "edu" inside a label does not count
	}
	for _, c := range cases {
		if got := IsGov(c.name); got != c.gov {
			t.Errorf("IsGov(%q) = %v, want %v", c.name, got, c.gov)
		}
		if got := IsEdu(c.name); got != c.edu {
			t.Errorf("IsEdu(%q) = %v, want %v", c.name, got, c.edu)
		}
		if got := EduCountry(c.name); got != c.eduCountry {
			t.Errorf("EduCountry(%q) = %q, want %q", c.name, got, c.eduCountry)
		}
	}
}

func TestAssemble(t *testing.T) {
	names := []string{
		"www.a.com",   // 0: plain
		"agency0.gov", // 1: gov
		"uni0.edu",    // 2: edu us
		"uni0.edu.it", // 3: edu it
		"www.b.com",   // 4: directory member
		"agency1.gov", // 5: gov AND directory member (counted once)
	}
	core, err := Assemble(names, []graph.NodeID{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if core.Size() != 5 {
		t.Fatalf("core size %d, want 5", core.Size())
	}
	if core.Directory != 2 || core.Gov != 1 || core.Edu != 2 {
		t.Errorf("provenance = dir %d / gov %d / edu %d, want 2/1/2", core.Directory, core.Gov, core.Edu)
	}
	want := map[graph.NodeID]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	for _, x := range core.Nodes {
		if !want[x] {
			t.Errorf("unexpected core member %d", x)
		}
	}
	// Sorted ascending.
	for i := 1; i < len(core.Nodes); i++ {
		if core.Nodes[i] <= core.Nodes[i-1] {
			t.Fatal("core not sorted")
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	if _, err := Assemble([]string{"a.com"}, []graph.NodeID{5}); err == nil {
		t.Error("out-of-range directory member accepted")
	}
	if _, err := Assemble([]string{"a.com", "b.com"}, nil); err == nil {
		t.Error("core with zero eligible hosts accepted")
	}
}

func TestSubsample(t *testing.T) {
	core := &Core{}
	for i := 0; i < 1000; i++ {
		core.Nodes = append(core.Nodes, graph.NodeID(i))
	}
	for _, frac := range []float64{0.1, 0.01, 0.001} {
		sub, err := Subsample(core, frac, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := int(frac * 1000)
		if want < 1 {
			want = 1
		}
		if sub.Size() != want {
			t.Errorf("frac %v: size %d, want %d", frac, sub.Size(), want)
		}
		seen := map[graph.NodeID]bool{}
		for _, x := range sub.Nodes {
			if seen[x] {
				t.Fatalf("frac %v: duplicate member %d", frac, x)
			}
			seen[x] = true
		}
	}
	if _, err := Subsample(core, 0, 1); err == nil {
		t.Error("frac 0 accepted")
	}
	if _, err := Subsample(core, 1.5, 1); err == nil {
		t.Error("frac > 1 accepted")
	}
	// Determinism: same seed, same sample.
	a, _ := Subsample(core, 0.05, 42)
	b, _ := Subsample(core, 0.05, 42)
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatal("subsample not deterministic")
		}
	}
}

func TestCountryEduCore(t *testing.T) {
	names := []string{"uni0.edu.it", "uni1.edu.it", "uni0.edu.cz", "uni0.edu", "www.a.com"}
	core, err := CountryEduCore(names, "it")
	if err != nil {
		t.Fatal(err)
	}
	if core.Size() != 2 {
		t.Fatalf("it core size %d, want 2", core.Size())
	}
	if _, err := CountryEduCore(names, "zz"); err == nil {
		t.Error("unknown country accepted")
	}
}

func TestWithExtra(t *testing.T) {
	core := &Core{Nodes: []graph.NodeID{1, 5, 9}, Gov: 3}
	out := WithExtra(core, []graph.NodeID{5, 2, 7})
	if out.Size() != 5 {
		t.Fatalf("size %d, want 5 (one duplicate skipped)", out.Size())
	}
	if core.Size() != 3 {
		t.Error("WithExtra mutated the original core")
	}
	for i := 1; i < len(out.Nodes); i++ {
		if out.Nodes[i] <= out.Nodes[i-1] {
			t.Fatal("result not sorted")
		}
	}
}

// TestAssembleOnGeneratedWorld: the generator's names and directory
// list assemble into a core matching its core-eligible population.
func TestAssembleOnGeneratedWorld(t *testing.T) {
	w, err := webgen.Generate(webgen.DefaultConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	core, err := Assemble(w.Names, w.DirectoryMembers)
	if err != nil {
		t.Fatal(err)
	}
	eligible := 0
	for _, info := range w.Info {
		switch info.Kind {
		case webgen.KindDirectory, webgen.KindGov, webgen.KindEdu:
			eligible++
		}
	}
	if core.Size() != eligible {
		t.Errorf("assembled core %d members, world has %d core-eligible hosts", core.Size(), eligible)
	}
	for _, x := range core.Nodes {
		if w.Info[x].Kind.Spam() {
			t.Fatalf("spam host %d (%s) slipped into the core", x, w.Names[x])
		}
	}
}
