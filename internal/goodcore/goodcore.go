// Package goodcore assembles good cores Ṽ⁺ the way Section 4.2 of the
// paper does: the membership list of a trusted web directory, all
// governmental (.gov) hosts, and educational hosts worldwide, selected
// by host-name patterns. It also produces the derived cores of the
// Section 4.5 experiment: uniform random sub-cores (10%, 1%, 0.1%) and
// a single-country core (the paper's 9,747 Italian educational hosts).
package goodcore

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"spammass/internal/graph"
)

// Core is an assembled good core with provenance counts.
type Core struct {
	Nodes []graph.NodeID
	// Directory, Gov, Edu count how many members each rule contributed
	// (paper: 16,776 + 55,320 + 434,045 = 504,150).
	Directory, Gov, Edu int
}

// Size returns |Ṽ⁺|.
func (c *Core) Size() int { return len(c.Nodes) }

// Assemble builds a core from host names and a directory membership
// list, mirroring the paper's three rules. Host-name classification:
// a ".gov" suffix marks governmental hosts; ".edu" as a suffix or as
// an embedded label (uni0.edu.it) marks educational hosts. Duplicates
// across rules are counted once.
func Assemble(names []string, directoryMembers []graph.NodeID) (*Core, error) {
	core := &Core{}
	seen := make(map[graph.NodeID]bool)
	for _, x := range directoryMembers {
		if int(x) >= len(names) {
			return nil, fmt.Errorf("goodcore: directory member %d outside %d hosts", x, len(names))
		}
		if !seen[x] {
			seen[x] = true
			core.Nodes = append(core.Nodes, x)
			core.Directory++
		}
	}
	for i, name := range names {
		x := graph.NodeID(i)
		if seen[x] {
			continue
		}
		switch {
		case IsGov(name):
			seen[x] = true
			core.Nodes = append(core.Nodes, x)
			core.Gov++
		case IsEdu(name):
			seen[x] = true
			core.Nodes = append(core.Nodes, x)
			core.Edu++
		}
	}
	if len(core.Nodes) == 0 {
		return nil, fmt.Errorf("goodcore: no core-eligible hosts found among %d names", len(names))
	}
	sort.Slice(core.Nodes, func(i, j int) bool { return core.Nodes[i] < core.Nodes[j] })
	return core, nil
}

// IsGov reports whether a host name is governmental (.gov suffix).
func IsGov(name string) bool { return strings.HasSuffix(name, ".gov") }

// IsEdu reports whether a host name is educational: ".edu" as the
// final label or followed by a country code (e.g. "uni3.edu.it").
func IsEdu(name string) bool {
	if strings.HasSuffix(name, ".edu") {
		return true
	}
	return strings.Contains(name, ".edu.")
}

// EduCountry returns the country code of an educational host name, or
// "us" for a bare .edu, or "" if the name is not educational.
func EduCountry(name string) string {
	if strings.HasSuffix(name, ".edu") {
		return "us"
	}
	if i := strings.LastIndex(name, ".edu."); i >= 0 {
		return name[i+len(".edu."):]
	}
	return ""
}

// Subsample returns a uniform random sample holding approximately
// frac of the core — the 10%/1%/0.1% cores of Section 4.5. At least
// one node is always retained.
func Subsample(core *Core, frac float64, seed int64) (*Core, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("goodcore: sample fraction %v outside (0,1]", frac)
	}
	rng := rand.New(rand.NewSource(seed))
	k := int(frac * float64(len(core.Nodes)))
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(len(core.Nodes))[:k]
	sort.Ints(perm)
	out := &Core{}
	for _, i := range perm {
		out.Nodes = append(out.Nodes, core.Nodes[i])
	}
	return out, nil
}

// CountryEduCore returns the core containing only the educational
// hosts of one country — the ".it core" of Section 4.5, which shows
// that breadth of coverage matters more than size.
func CountryEduCore(names []string, country string) (*Core, error) {
	core := &Core{}
	for i, name := range names {
		if IsEdu(name) && EduCountry(name) == country {
			core.Nodes = append(core.Nodes, graph.NodeID(i))
			core.Edu++
		}
	}
	if len(core.Nodes) == 0 {
		return nil, fmt.Errorf("goodcore: no educational hosts for country %q", country)
	}
	return core, nil
}

// WithExtra returns a new core with extra hosts appended — the
// Section 4.4.2 anomaly fix, where 12 key hosts of the uncovered
// community were added to the core. Hosts already present are skipped.
func WithExtra(core *Core, extra []graph.NodeID) *Core {
	seen := make(map[graph.NodeID]bool, len(core.Nodes))
	out := &Core{
		Nodes:     append([]graph.NodeID(nil), core.Nodes...),
		Directory: core.Directory,
		Gov:       core.Gov,
		Edu:       core.Edu,
	}
	for _, x := range core.Nodes {
		seen[x] = true
	}
	for _, x := range extra {
		if !seen[x] {
			seen[x] = true
			out.Nodes = append(out.Nodes, x)
		}
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i] < out.Nodes[j] })
	return out
}
