// Package content implements the complementary textual analysis the
// paper's conclusion proposes as future work: "we conjecture that many
// false positives could be eliminated by complementary (textual)
// content analysis". It provides a synthetic per-host content model
// (the substitute for crawled page text, which the Yahoo! corpus does
// not ship with), a from-scratch logistic-regression classifier over
// the content features, and a combined detector that keeps a mass
// candidate only when the content model does not confidently vouch
// for it.
package content

import (
	"fmt"
	"math"
	"math/rand"

	"spammass/internal/graph"
	"spammass/internal/webgen"
)

// Features summarizes the text of one host. The three signals mirror
// the classic content-spam indicators (Ntoulas et al., Fetterly et
// al.): page volume, query-keyword stuffing, and boilerplate
// duplication across the host's pages.
type Features struct {
	// LogWordCount is log10 of the average words per page.
	LogWordCount float64
	// KeywordDensity is the fraction of words that are high-value
	// query keywords (stuffing pushes this up).
	KeywordDensity float64
	// Duplication is the shingle overlap between the host's pages
	// (template-generated spam is nearly identical page to page).
	Duplication float64
}

// Vector returns the feature values in a fixed order, with a leading
// bias term, for the classifier.
func (f Features) Vector() [4]float64 {
	return [4]float64{1, f.LogWordCount, f.KeywordDensity, f.Duplication}
}

// SynthesisConfig tunes the synthetic content model.
type SynthesisConfig struct {
	Seed int64
	// MimicFrac is the fraction of spam hosts whose content mimics
	// reputable pages (Section 5 stresses that sophisticated spammers
	// do exactly this): for them, content analysis is blind and only
	// the link signal works.
	MimicFrac float64
	// SeoFrac is the fraction of good hosts with aggressively
	// optimized (spammy-looking) content.
	SeoFrac float64
}

// DefaultSynthesisConfig matches the rates used by the experiments.
func DefaultSynthesisConfig() SynthesisConfig {
	return SynthesisConfig{Seed: 5, MimicFrac: 0.2, SeoFrac: 0.05}
}

// Synthesize generates content features for every host in the world
// from its ground truth. Frontier and isolated hosts get zeroed
// features (there is no crawled content to analyze).
func Synthesize(w *webgen.World, cfg SynthesisConfig) ([]Features, error) {
	if cfg.MimicFrac < 0 || cfg.MimicFrac > 1 || cfg.SeoFrac < 0 || cfg.SeoFrac > 1 {
		return nil, fmt.Errorf("content: fractions outside [0,1]: %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Features, len(w.Info))
	for x, info := range w.Info {
		switch {
		case info.Kind == webgen.KindFrontier || info.Kind == webgen.KindIsolated:
			// no content
		case info.Kind.Spam():
			if rng.Float64() < cfg.MimicFrac {
				out[x] = goodContent(rng)
			} else {
				out[x] = spamContent(rng, info.Kind)
			}
		default:
			if rng.Float64() < cfg.SeoFrac {
				out[x] = spamContent(rng, webgen.KindSpamTarget)
			} else {
				out[x] = goodContent(rng)
			}
		}
	}
	return out, nil
}

func goodContent(rng *rand.Rand) Features {
	return Features{
		LogWordCount:   clamp(2.9+0.35*rng.NormFloat64(), 1, 5),
		KeywordDensity: clamp(0.02+0.012*rng.NormFloat64(), 0, 1),
		Duplication:    clamp(0.20+0.10*rng.NormFloat64(), 0, 1),
	}
}

func spamContent(rng *rand.Rand, kind webgen.Kind) Features {
	f := Features{
		LogWordCount:   clamp(2.4+0.4*rng.NormFloat64(), 1, 5),
		KeywordDensity: clamp(0.14+0.05*rng.NormFloat64(), 0, 1),
		Duplication:    clamp(0.75+0.12*rng.NormFloat64(), 0, 1),
	}
	if kind == webgen.KindSpamTarget {
		// Targets are keyword-stuffed long pages.
		f.LogWordCount = clamp(3.2+0.3*rng.NormFloat64(), 1, 5)
	}
	return f
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Classifier is a logistic-regression spam classifier over Features,
// trained with plain gradient descent. Positive output = spam.
type Classifier struct {
	Weights [4]float64
}

// TrainConfig tunes training.
type TrainConfig struct {
	Epochs       int
	LearningRate float64
	L2           float64
}

// DefaultTrainConfig returns settings adequate for the 3-feature model.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 400, LearningRate: 0.5, L2: 1e-4}
}

// Train fits the classifier on labeled examples (label true = spam).
func Train(feats []Features, labels []bool, cfg TrainConfig) (*Classifier, error) {
	if len(feats) == 0 || len(feats) != len(labels) {
		return nil, fmt.Errorf("content: %d features for %d labels", len(feats), len(labels))
	}
	if cfg.Epochs <= 0 || cfg.LearningRate <= 0 {
		return nil, fmt.Errorf("content: invalid training config %+v", cfg)
	}
	c := &Classifier{}
	n := float64(len(feats))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var grad [4]float64
		for i, f := range feats {
			x := f.Vector()
			p := c.prob(x)
			y := 0.0
			if labels[i] {
				y = 1
			}
			err := p - y
			for j := range grad {
				grad[j] += err * x[j]
			}
		}
		for j := range c.Weights {
			c.Weights[j] -= cfg.LearningRate * (grad[j]/n + cfg.L2*c.Weights[j])
		}
	}
	return c, nil
}

func (c *Classifier) prob(x [4]float64) float64 {
	z := 0.0
	for j, w := range c.Weights {
		z += w * x[j]
	}
	return 1 / (1 + math.Exp(-z))
}

// SpamProbability returns the classifier's spam probability for one
// host's features.
func (c *Classifier) SpamProbability(f Features) float64 {
	return c.prob(f.Vector())
}

// FilterCandidates keeps only the candidates whose content the
// classifier does NOT confidently call clean: a candidate is dropped
// when its spam probability falls below keepAbove. This is the
// combination the paper's conclusion proposes: link evidence detects,
// content evidence eliminates false positives.
func (c *Classifier) FilterCandidates(candidates []graph.NodeID, feats []Features, keepAbove float64) []graph.NodeID {
	var out []graph.NodeID
	for _, x := range candidates {
		if c.SpamProbability(feats[x]) >= keepAbove {
			out = append(out, x)
		}
	}
	return out
}
