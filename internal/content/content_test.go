package content

import (
	"math/rand"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/webgen"
)

func TestSynthesizeShapes(t *testing.T) {
	w, err := webgen.Generate(webgen.DefaultConfig(10000))
	if err != nil {
		t.Fatal(err)
	}
	feats, err := Synthesize(w, DefaultSynthesisConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != w.Graph.NumNodes() {
		t.Fatalf("%d feature rows for %d hosts", len(feats), w.Graph.NumNodes())
	}
	var spamDup, goodDup float64
	var spamN, goodN int
	for x, f := range feats {
		switch w.Info[x].Kind {
		case webgen.KindFrontier, webgen.KindIsolated:
			if f != (Features{}) {
				t.Fatalf("uncrawled host %d has content %+v", x, f)
			}
		case webgen.KindSpamTarget, webgen.KindBooster, webgen.KindExpiredSpam:
			spamDup += f.Duplication
			spamN++
		default:
			goodDup += f.Duplication
			goodN++
		}
		if f.KeywordDensity < 0 || f.KeywordDensity > 1 || f.Duplication < 0 || f.Duplication > 1 {
			t.Fatalf("host %d features out of range: %+v", x, f)
		}
	}
	if spamDup/float64(spamN) < goodDup/float64(goodN)+0.2 {
		t.Errorf("spam duplication mean %.3f not clearly above good %.3f",
			spamDup/float64(spamN), goodDup/float64(goodN))
	}
}

func TestSynthesizeValidation(t *testing.T) {
	w, err := webgen.Generate(webgen.DefaultConfig(10000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(w, SynthesisConfig{MimicFrac: 1.5}); err == nil {
		t.Error("MimicFrac > 1 accepted")
	}
}

func TestTrainSeparable(t *testing.T) {
	// Clearly separable synthetic data: the classifier must reach high
	// accuracy and order probabilities correctly.
	rng := rand.New(rand.NewSource(1))
	var feats []Features
	var labels []bool
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			feats = append(feats, goodContent(rng))
			labels = append(labels, false)
		} else {
			feats = append(feats, spamContent(rng, webgen.KindBooster))
			labels = append(labels, true)
		}
	}
	clf, err := Train(feats, labels, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, f := range feats {
		if (clf.SpamProbability(f) >= 0.5) == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(feats)); acc < 0.95 {
		t.Errorf("training accuracy %.3f, want ≥ 0.95 on separable data", acc)
	}
	if clf.SpamProbability(spamContent(rng, webgen.KindBooster)) <= clf.SpamProbability(goodContent(rng)) {
		t.Error("spam content not scored above good content")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, nil, DefaultTrainConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train([]Features{{}}, []bool{true, false}, DefaultTrainConfig()); err == nil {
		t.Error("mismatched labels accepted")
	}
	if _, err := Train([]Features{{}}, []bool{true}, TrainConfig{Epochs: 0, LearningRate: 1}); err == nil {
		t.Error("zero epochs accepted")
	}
}

func TestFilterCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	feats := []Features{
		goodContent(rng),                        // 0: clean
		spamContent(rng, webgen.KindSpamTarget), // 1: spammy
		goodContent(rng),                        // 2: clean
	}
	var trainF []Features
	var trainY []bool
	for i := 0; i < 200; i++ {
		trainF = append(trainF, goodContent(rng))
		trainY = append(trainY, false)
		trainF = append(trainF, spamContent(rng, webgen.KindSpamTarget))
		trainY = append(trainY, true)
	}
	clf, err := Train(trainF, trainY, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	kept := clf.FilterCandidates([]graph.NodeID{0, 1, 2}, feats, 0.5)
	if len(kept) != 1 || kept[0] != 1 {
		t.Errorf("filter kept %v, want only the spammy candidate 1", kept)
	}
	// keepAbove 0 keeps everything.
	if got := clf.FilterCandidates([]graph.NodeID{0, 1, 2}, feats, 0); len(got) != 3 {
		t.Errorf("keepAbove 0 kept %d of 3", len(got))
	}
}

func TestFeatureVectorHasBias(t *testing.T) {
	v := Features{LogWordCount: 2, KeywordDensity: 0.1, Duplication: 0.5}.Vector()
	if v[0] != 1 || v[1] != 2 || v[2] != 0.1 || v[3] != 0.5 {
		t.Errorf("vector = %v", v)
	}
}
