package searchsim

import (
	"testing"

	"spammass/internal/goodcore"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
	"spammass/internal/webgen"
)

func setup(t *testing.T) (*webgen.World, *mass.Estimates) {
	t.Helper()
	w, err := webgen.Generate(webgen.DefaultConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	core, err := goodcore.Assemble(w.Names, w.DirectoryMembers)
	if err != nil {
		t.Fatal(err)
	}
	est, err := mass.EstimateFromCore(w.Graph, core.Nodes, mass.Options{
		Solver: pagerank.Config{Damping: 0.85, Epsilon: 1e-10, MaxIter: 300},
		Gamma:  0.85,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, est
}

func TestSearchSimSpamReachesTopAndFilteringHelps(t *testing.T) {
	w, est := setup(t)
	idx, err := BuildIndex(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := idx.Evaluate(w, est, nil)
	if before.Queries == 0 {
		t.Fatal("no evaluable queries")
	}
	if before.SpamInTopK <= 0 {
		t.Fatal("no spam reaches the top-10; the paper's motivating harm is absent")
	}

	penalized := mass.DetectSet(est, mass.DetectConfig{RelMassThreshold: 0.75, ScaledPageRankThreshold: 10})
	after := idx.Evaluate(w, est, penalized)
	if after.SpamInTopK >= before.SpamInTopK {
		t.Errorf("filtering did not reduce top-k spam: %.4f -> %.4f", before.SpamInTopK, after.SpamInTopK)
	}
	if after.QueriesWithSpam >= before.QueriesWithSpam {
		t.Errorf("filtering did not reduce affected queries: %.4f -> %.4f",
			before.QueriesWithSpam, after.QueriesWithSpam)
	}
}

func TestSearchSimBoostersNotIndexed(t *testing.T) {
	w, _ := setup(t)
	idx, err := BuildIndex(w, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	boosters := map[graph.NodeID]bool{}
	for _, f := range w.Farms {
		for _, b := range f.Boosters {
			boosters[b] = true
		}
	}
	for _, hosts := range idx.topics {
		for _, x := range hosts {
			if boosters[x] {
				t.Fatalf("boosting host %d indexed; boosters have no servable content", x)
			}
		}
	}
}

func TestSearchSimValidation(t *testing.T) {
	w, _ := setup(t)
	if _, err := BuildIndex(w, Config{Topics: 0, TopicsPerHost: 1, TopK: 10}); err == nil {
		t.Error("zero topics accepted")
	}
	if _, err := BuildIndex(w, Config{Topics: 10, TopicsPerHost: 0, TopK: 10}); err == nil {
		t.Error("zero topics-per-host accepted")
	}
}
