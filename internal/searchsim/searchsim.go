// Package searchsim simulates the end-user harm the paper's
// introduction motivates: link spamming "triggers an artificially high
// link-based ranking of specific target web pages", so successful farm
// targets reach the top of search result lists. The simulation assigns
// topics to hosts, ranks each topic's hosts by PageRank (the link-based
// component of a real ranker), and measures spam prevalence in the
// top-k before and after removing mass-detected candidates.
package searchsim

import (
	"fmt"
	"math/rand"
	"sort"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/webgen"
)

// Config tunes the simulation.
type Config struct {
	// Topics is the number of distinct query topics.
	Topics int
	// TopicsPerHost is how many topics each crawlable host serves.
	TopicsPerHost int
	// TopK is the result-list depth judged (users rarely look past it).
	TopK int
	// Seed drives topic assignment.
	Seed int64
}

// DefaultConfig returns a modest topic model.
func DefaultConfig() Config {
	return Config{Topics: 200, TopicsPerHost: 2, TopK: 10, Seed: 21}
}

// Index maps topics to the hosts serving them.
type Index struct {
	cfg    Config
	topics [][]graph.NodeID
}

// BuildIndex assigns topics to every crawlable host. Spam targets
// behave like real ones: they pick commercially attractive topics the
// same way good hosts do, so they compete in ordinary result lists.
func BuildIndex(w *webgen.World, cfg Config) (*Index, error) {
	if cfg.Topics < 1 || cfg.TopicsPerHost < 1 || cfg.TopK < 1 {
		return nil, fmt.Errorf("searchsim: invalid config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := &Index{cfg: cfg, topics: make([][]graph.NodeID, cfg.Topics)}
	for x, info := range w.Info {
		switch info.Kind {
		case webgen.KindFrontier, webgen.KindIsolated, webgen.KindBooster:
			continue // no servable content
		}
		for i := 0; i < cfg.TopicsPerHost; i++ {
			// Popular topics follow a zipf-ish law, like real queries.
			t := int(float64(cfg.Topics) * rng.Float64() * rng.Float64())
			if t >= cfg.Topics {
				t = cfg.Topics - 1
			}
			idx.topics[t] = append(idx.topics[t], graph.NodeID(x))
		}
	}
	return idx, nil
}

// Result summarizes spam prevalence in result lists.
type Result struct {
	// Queries is the number of topics with at least TopK results.
	Queries int
	// SpamInTopK is the mean fraction of spam hosts in the top-k.
	SpamInTopK float64
	// QueriesWithSpam is the fraction of queries whose top-k contains
	// at least one spam host.
	QueriesWithSpam float64
}

// Evaluate ranks every topic's hosts by PageRank, optionally removing
// a penalized set first (the detected candidates), and measures spam
// prevalence in the top-k against ground truth.
func (idx *Index) Evaluate(w *webgen.World, est *mass.Estimates, penalized map[graph.NodeID]bool) Result {
	var r Result
	var totalFrac float64
	for _, hosts := range idx.topics {
		ranked := append([]graph.NodeID(nil), hosts...)
		if penalized != nil {
			kept := ranked[:0]
			for _, x := range ranked {
				if !penalized[x] {
					kept = append(kept, x)
				}
			}
			ranked = kept
		}
		if len(ranked) < idx.cfg.TopK {
			continue
		}
		sort.Slice(ranked, func(i, j int) bool {
			if est.P[ranked[i]] != est.P[ranked[j]] {
				return est.P[ranked[i]] > est.P[ranked[j]]
			}
			return ranked[i] < ranked[j]
		})
		r.Queries++
		spam := 0
		for _, x := range ranked[:idx.cfg.TopK] {
			if w.IsSpam(x) {
				spam++
			}
		}
		totalFrac += float64(spam) / float64(idx.cfg.TopK)
		if spam > 0 {
			r.QueriesWithSpam++
		}
	}
	if r.Queries > 0 {
		r.SpamInTopK = totalFrac / float64(r.Queries)
		r.QueriesWithSpam /= float64(r.Queries)
	}
	return r
}
