package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// namedIn reports whether t (after stripping one pointer) is the named
// type name declared in a package whose import path ends with pkgSuffix.
func namedIn(t types.Type, pkgSuffix, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || strings.HasSuffix(path, "/"+pkgSuffix)
}

// isObsSpan reports whether t is *obs.Span (or obs.Span).
func isObsSpan(t types.Type) bool { return namedIn(t, "internal/obs", "Span") }

// isFloat reports whether t's underlying type is a floating-point
// basic type (or an untyped float constant).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// numericSliceElem returns the element type name when t's underlying
// type is a slice of a basic numeric type ([]float64, []uint32, a
// named vector type over one of those, …).
func numericSliceElem(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return "", false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsNumeric == 0 {
		return "", false
	}
	return b.Name(), true
}

// fieldSelection returns the selection when sel is a struct-field
// access, or nil.
func fieldSelection(info *types.Info, sel *ast.SelectorExpr) *types.Selection {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s
}

// rootIdent walks down selectors, index and slice expressions to the
// identifier at the root of the chain, if any (e.g. g in
// g.adj[a:b]).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// calleeName returns the package path and function name of a call to a
// package-level function (fmt.Println → "fmt", "Println"), or false.
func calleeName(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil {
		return "", "", false
	}
	if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// isZeroConst reports whether e is a compile-time numeric constant
// equal to zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
