package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// F32Acc flags float32 accumulation across loop iterations: `s += x`,
// `s -= x`, or `s = s + x` inside a for/range loop where s is declared
// outside that loop's body. A float32 running sum loses one bit of the
// addend once the sum grows past 2²⁴ ulps of it, which on a
// million-edge sweep silently erases the small residual contributions
// the convergence test depends on. Reductions must accumulate in
// float64 and convert once at the end — the mixed-precision kernels
// store iterates in float32 but never sum in it.
//
// A float32 variable declared inside the loop body is fresh every
// iteration and cannot accumulate, so it is exempt. Intentional
// quantized accumulation carries a lint:ignore suppression with the
// reason written down.
var F32Acc = &Analyzer{
	Name: "f32acc",
	Doc:  "float32 accumulated across loop iterations (sum in float64, convert once)",
	Run:  runF32Acc,
}

func runF32Acc(pass *Pass) {
	for _, f := range pass.Files {
		var loops []ast.Node // enclosing for/range statements, outermost first
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt:
					loops = append(loops, n)
					walk(n.Body)
					loops = loops[:len(loops)-1]
					return false
				case *ast.RangeStmt:
					loops = append(loops, n)
					walk(n.Body)
					loops = loops[:len(loops)-1]
					return false
				case *ast.AssignStmt:
					checkF32Accum(pass, n, loops)
				}
				return true
			})
		}
		walk(f)
	}
}

// checkF32Accum reports assign if it accumulates into a float32
// identifier declared outside the innermost enclosing loop body.
func checkF32Accum(pass *Pass, assign *ast.AssignStmt, loops []ast.Node) {
	if len(loops) == 0 {
		return
	}
	var target *ast.Ident
	switch assign.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(assign.Lhs) == 1 {
			target, _ = ast.Unparen(assign.Lhs[0]).(*ast.Ident)
		}
	case token.ASSIGN:
		// s = s + x and s = s - x are the spelled-out accumulations.
		if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return
		}
		id, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
		if !ok {
			return
		}
		bin, ok := ast.Unparen(assign.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return
		}
		if x, ok := ast.Unparen(bin.X).(*ast.Ident); ok && sameObject(pass.Info, id, x) {
			target = id
		} else if y, ok := ast.Unparen(bin.Y).(*ast.Ident); ok && bin.Op == token.ADD && sameObject(pass.Info, id, y) {
			target = id
		}
	}
	if target == nil || !isFloat32(pass.TypeOf(target)) {
		return
	}
	obj := pass.Info.ObjectOf(target)
	if obj == nil {
		return
	}
	// Fresh per iteration — declared inside the innermost loop body —
	// is not an accumulator.
	inner := loops[len(loops)-1]
	var body *ast.BlockStmt
	switch l := inner.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	}
	if obj.Pos() >= body.Pos() && obj.Pos() < body.End() {
		return
	}
	pass.Reportf(assign.TokPos, "float32 accumulation across loop iterations; sum in float64 and convert once (quantized accumulation is intentional only with a suppressed reason)")
}

// sameObject reports whether two identifiers resolve to the same
// declared object.
func sameObject(info *types.Info, a, b *ast.Ident) bool {
	oa, ob := info.ObjectOf(a), info.ObjectOf(b)
	return oa != nil && oa == ob
}

// isFloat32 reports whether t's underlying type is exactly float32.
func isFloat32(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float32
}
