// Fixture for the printcall analyzer: direct terminal output from
// library code.
package printcall

import (
	"fmt"
	"io"
	"log"
	"os"
)

// Debug prints straight to stdout: every call flagged.
func Debug(x int) {
	fmt.Println("x =", x)   // want `fmt\.Println in library package`
	fmt.Printf("x=%d\n", x) // want `fmt\.Printf in library package`
	log.Printf("x=%d", x)   // want `log\.Printf in library package`
	println("dbg", x)       // want `builtin println in library package`
}

// Fatal exits the whole process from a library: flagged.
func Fatal(err error) {
	log.Fatalf("boom: %v", err) // want `log\.Fatalf in library package`
}

// Handler holds its own logger, the pattern that used to slip through:
// method calls on a *log.Logger are flagged like the package funcs.
type Handler struct {
	logger *log.Logger
}

// ServeError logs through logger values instead of the obs layer: all
// three call forms flagged.
func (h *Handler) ServeError(err error) {
	h.logger.Printf("error: %v", err)                // want `\(\*log\.Logger\)\.Printf in library package`
	log.Default().Println("fallback:", err)          // want `\(\*log\.Logger\)\.Println in library package`
	log.New(os.Stderr, "", 0).Output(2, err.Error()) // want `\(\*log\.Logger\)\.Output in library package`
}

// Configure only wires a logger up without emitting through it: clean.
func Configure(h *Handler) {
	h.logger = log.New(os.Stderr, "serve: ", log.LstdFlags)
	h.logger.SetPrefix("handler: ")
}

// Suppressed print with a written reason: clean.
func Suppressed(x int) {
	// lint:ignore printcall fixture demonstrates a deliberate debug print
	fmt.Println(x)
}

// Report writes to a caller-supplied writer: clean.
func Report(w io.Writer, x int) {
	fmt.Fprintf(w, "x=%d\n", x)
}

// Format returns a string instead of printing: clean.
func Format(x int) string {
	return fmt.Sprintf("%d", x)
}

// ToStderr routes through an explicit writer, which the caller can
// redirect: clean.
func ToStderr(x int) {
	fmt.Fprintln(os.Stderr, x)
}
