// Fixture for the metricname analyzer: metric names at obs
// creation sites must be literal dotted snake_case with the unit
// suffix their kind requires. Uses the real obs package so the
// analyzer's receiver matching runs against production types.
package metricname

import "spammass/internal/obs"

// Bad names: wrong shape, wrong suffix, or not a literal.
func Bad(c *obs.Context, reg *obs.Registry, dynamic string) {
	c.Counter("serve.requests")            // want `counter "serve\.requests" must end in _total`
	c.Counter("requests_total")            // want `metric name "requests_total" is not dotted snake_case`
	c.Counter("serve.Requests_total")      // want `not dotted snake_case`
	c.Counter("serve.requests__total")     // want `not dotted snake_case`
	reg.Counter("serve._requests_total")   // want `not dotted snake_case`
	c.Histogram("serve.refresh")           // want `histogram "serve\.refresh" must end in a unit suffix`
	c.Histogram("serve.refresh_millis")    // want `histogram "serve\.refresh_millis" must end in a unit suffix`
	reg.HistogramWith("serve.lat", nil)    // want `histogram "serve\.lat" must end in a unit suffix`
	c.Gauge("serve.queue_depth")           // want `gauge "serve\.queue_depth" needs a unit suffix`
	c.Counter(dynamic)                     // want `counter name must be a string literal`
	reg.Gauge("serve." + "epoch")          // want `gauge name must be a string literal`
}

// Good names: proper kind suffixes, whitelisted unitless gauges, and
// a suppressed special case.
func Good(c *obs.Context, reg *obs.Registry) {
	c.Counter("serve.requests_total")
	c.Counter("delta.hosts_added_total")
	reg.Histogram("serve.request_seconds")
	c.Histogram("graph.segment_bytes")
	reg.HistogramWith("pagerank.solve_seconds", []float64{0.1, 1})
	c.Gauge("serve.snapshot_age_seconds")
	c.Gauge("graph.nodes")
	c.Gauge("serve.drift_max_z")
	// lint:ignore metricname fixture demonstrates a whitelisted-by-reason gauge
	c.Gauge("serve.special_case")
}

// NotAMetricCall exercises the receiver filter: same method names on
// an unrelated type are not checked.
type fake struct{}

func (fake) Counter(name string) int { return len(name) }

func Unrelated(f fake) int {
	return f.Counter("whatever shape")
}
