// Fixture for the publishfreeze analyzer: values mutated after being
// published to concurrent readers through an atomic store or serve's
// Store.Publish.
package publishfreeze

import (
	"sync/atomic"

	"spammass/internal/serve"
)

type config struct {
	Limit int
	Index map[string]int
	Hot   []string
}

var current atomic.Pointer[config]

// WriteAfterStore mutates the value after publishing it: readers that
// already loaded the pointer observe the write mid-request.
func WriteAfterStore(limit int) {
	cfg := &config{Limit: limit}
	current.Store(cfg)
	cfg.Limit = limit * 2 // want `write to cfg\.Limit after it was published by current\.Store`
}

// RetainedMapWrite publishes, then writes through a map view retained
// from before the publish — the classic hidden mutation.
func RetainedMapWrite() {
	cfg := &config{Index: map[string]int{}}
	idx := cfg.Index
	current.Store(cfg)
	idx["a"] = 1 // want `write to idx after it was published by current\.Store`
}

// DeleteAfterSwap publishes via Swap and then deletes from the
// published value's map.
func DeleteAfterSwap() *config {
	cfg := &config{Index: map[string]int{"a": 1}}
	old := current.Swap(cfg)
	delete(cfg.Index, "a") // want `write to cfg\.Index after it was published by current\.Swap`
	return old
}

// BranchWrite only writes on one path, but that path follows the
// publish: still flagged.
func BranchWrite(trim bool) {
	cfg := &config{Hot: []string{"x"}}
	current.Store(cfg)
	if trim {
		cfg.Hot = nil // want `write to cfg\.Hot after it was published by current\.Store`
	}
}

// OverwriteSnapshot republishes through serve's Store and then writes
// through the still-shared old value.
func OverwriteSnapshot(st *serve.Store) {
	snap := st.Load()
	if snap == nil {
		return
	}
	if err := st.Publish(snap); err != nil {
		return
	}
	*snap = serve.Snapshot{} // want `write to snap after it was published by st\.Publish`
}

// BuildThenPublish fills the value in before publishing: clean.
func BuildThenPublish(limit int) {
	cfg := &config{}
	cfg.Limit = limit
	cfg.Index = map[string]int{"a": limit}
	current.Store(cfg)
}

// RebindAfterPublish rebinds the variable to a fresh value after the
// publish; writes to the fresh value are clean.
func RebindAfterPublish(limit int) {
	cfg := &config{Limit: limit}
	current.Store(cfg)
	cfg = &config{}
	cfg.Limit = limit + 1
	current.Store(cfg)
}

// WriteOnUnpublishedPath writes on the path where the publish did NOT
// happen: clean.
func WriteOnUnpublishedPath(publish bool, limit int) {
	cfg := &config{Limit: limit}
	if publish {
		current.Store(cfg)
		return
	}
	cfg.Limit = limit * 2
}

// Suppressed mutates after publish with a written reason.
func Suppressed(limit int) {
	cfg := &config{Limit: limit}
	current.Store(cfg)
	// lint:ignore publishfreeze fixture demonstrates a deliberate post-publish patch
	cfg.Limit = limit * 2
}
