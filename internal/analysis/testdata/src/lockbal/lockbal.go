// Fixture for the lockbal analyzer: mutexes not unlocked on every
// path, locked twice, or held across blocking operations.
package lockbal

import (
	"net/http"
	"sync"
)

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// EarlyReturnLeak unlocks on the happy path only: the error return
// leaves the mutex held.
func (c *counter) EarlyReturnLeak(fail bool) error {
	c.mu.Lock()
	if fail {
		return errFail // want `c\.mu is still locked on this return path`
	}
	c.mu.Unlock()
	return nil
}

// DoubleLock self-deadlocks: the second Lock waits on the first.
func (c *counter) DoubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want `c\.mu is locked twice on this path with no unlock between`
	c.n++
	c.mu.Unlock()
	c.mu.Unlock()
}

// HeldAcrossReceive blocks on a channel while holding the lock: every
// other goroutine contending for c.mu stalls until the receive fires.
func (c *counter) HeldAcrossReceive(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = <-ch // want `c\.mu is held across a channel receive`
}

// HeldAcrossSelect holds the lock across a select with no default.
func (c *counter) HeldAcrossSelect(a, b chan int) {
	c.mu.Lock()
	select { // want `c\.mu is held across a select with no default clause`
	case v := <-a:
		c.n = v
	case v := <-b:
		c.n = v
	}
	c.mu.Unlock()
}

// HeldAcrossHTTP performs an http.Client round-trip under the lock.
func (c *counter) HeldAcrossHTTP(cl *http.Client) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := cl.Get("http://example.com/") // want `c\.mu is held across an http\.Client round-trip \(Get\)`
	if err == nil {
		resp.Body.Close()
	}
}

// FallsOffLocked never unlocks at all and falls off the end of the
// body with the lock held.
func (c *counter) FallsOffLocked() { // want `c\.mu is still locked when the function falls off the end of its body`
	c.mu.Lock()
	c.n++
}

// RLockLeak leaks the read lock on one branch.
func (c *counter) RLockLeak(skip bool) int {
	c.rw.RLock()
	if skip {
		return 0 // want `c\.rw \(RLock\) is still locked on this return path`
	}
	n := c.n
	c.rw.RUnlock()
	return n
}

// DeferUnlock is the canonical clean pattern: the deferred unlock
// discharges every return path.
func (c *counter) DeferUnlock(fail bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	if fail {
		return errFail
	}
	return nil
}

// BranchUnlock unlocks explicitly on both paths: clean.
func (c *counter) BranchUnlock(fail bool) error {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return errFail
	}
	c.n++
	c.mu.Unlock()
	return nil
}

// TryLockGuard only holds the lock inside the guarded branch: clean.
func (c *counter) TryLockGuard() {
	if c.mu.TryLock() {
		c.n++
		c.mu.Unlock()
	}
}

// NonBlockingSelect holds the lock across a select WITH a default
// clause, which never blocks: clean.
func (c *counter) NonBlockingSelect(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-ch:
		c.n = v
	default:
	}
}

// Suppressed holds the lock across a receive with a written reason.
func (c *counter) Suppressed(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// lint:ignore lockbal fixture demonstrates a deliberate handoff under lock
	c.n = <-ch
}

var errFail = errOf("fail")

type errOf string

func (e errOf) Error() string { return string(e) }
