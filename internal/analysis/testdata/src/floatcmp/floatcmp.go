// Fixture for the floatcmp analyzer: exact floating-point equality.
package floatcmp

const tol = 1e-12

type vec []float64

// Equal compares two residuals exactly: flagged.
func Equal(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

// NotEqual on float32: flagged.
func NotEqual(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

// IndexedCompare through a named slice type: flagged.
func IndexedCompare(v vec, i, j int) bool {
	return v[i] != v[j] // want `floating-point != comparison`
}

// MixedConst compares against a non-zero constant: flagged.
func MixedConst(a float64) bool {
	return a == 0.85 // want `floating-point == comparison`
}

// Suppressed tie-break with a written reason: clean.
func Suppressed(a, b float64) bool {
	// lint:ignore floatcmp fixture demonstrates an intentional exact tie-break
	return a != b
}

// ZeroGuard compares against the 0 literal, the documented exemption:
// clean.
func ZeroGuard(a float64) bool {
	return a == 0
}

// ZeroFloatGuard against 0.0 spelled as a float: clean.
func ZeroFloatGuard(a float64) bool {
	return a != 0.0
}

// Tolerance is the recommended pattern: clean.
func Tolerance(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < tol
}

// IntCompare is not a float comparison: clean.
func IntCompare(a, b int) bool {
	return a == b
}
