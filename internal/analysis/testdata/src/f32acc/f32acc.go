// Fixture for the f32acc analyzer: float32 reduction accumulators.
package f32acc

type score float32

// Sum accumulates a float32 across iterations: flagged.
func Sum(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s += x // want `float32 accumulation across loop iterations`
	}
	return s
}

// SpelledOut writes the accumulation as s = s + x: flagged.
func SpelledOut(a, b []float32) float32 {
	var s float32
	for i := range a {
		s = s + a[i]*b[i] // want `float32 accumulation across loop iterations`
	}
	return s
}

// Commuted accumulates as s = x + s: flagged.
func Commuted(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s = x + s // want `float32 accumulation across loop iterations`
	}
	return s
}

// Residual subtracts into an outer float32: flagged.
func Residual(total float32, xs []float32) float32 {
	for _, x := range xs {
		total -= x // want `float32 accumulation across loop iterations`
	}
	return total
}

// NamedType accumulates through a defined float32 type: flagged.
func NamedType(xs []score) score {
	var s score
	for _, x := range xs {
		s += x // want `float32 accumulation across loop iterations`
	}
	return s
}

// InnerReduction declares the accumulator in the outer loop body but
// reduces over the inner loop: flagged — it still sums a whole row in
// float32.
func InnerReduction(rows [][]float32) []float32 {
	out := make([]float32, 0, len(rows))
	for _, row := range rows {
		var s float32
		for _, x := range row {
			s += x // want `float32 accumulation across loop iterations`
		}
		out = append(out, s)
	}
	return out
}

// Float64Accum is the required idiom — float64 sum over float32 data,
// converted once: clean.
func Float64Accum(xs []float32) float32 {
	s := 0.0
	for _, x := range xs {
		s += float64(x)
	}
	return float32(s)
}

// PerIteration declares the float32 inside the loop body, so it is
// fresh every iteration: clean.
func PerIteration(xs, out []float32) {
	for i, x := range xs {
		t := x
		t += 1
		out[i] = t
	}
}

// NoLoop accumulates outside any loop: clean.
func NoLoop(a, b float32) float32 {
	a += b
	return a
}

// ElementStore writes float32 elements without a running sum: clean.
func ElementStore(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// IntCounter accumulates an int, not a float32: clean.
func IntCounter(xs []float32) int {
	n := 0
	for range xs {
		n += 1
	}
	return n
}

// Suppressed quantized accumulation with a written reason: clean.
func Suppressed(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		// lint:ignore f32acc fixture demonstrates intentional quantized accumulation
		s += x
	}
	return s
}
