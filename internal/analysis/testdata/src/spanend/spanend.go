// Fixture for the spanend analyzer: obs spans started but not ended on
// every return path. Uses the real obs package so the analyzer's type
// matching runs against production types.
package spanend

import (
	"errors"

	"spammass/internal/obs"
)

var errFail = errors.New("fail")

// Leak never ends its span: flagged at the creation site.
func Leak(c *obs.Context) {
	sp := c.Span("leak") // want `span "leak" is never ended`
	sp.Event("working")
}

// EarlyReturn ends the span on the happy path only: the error return
// leaks it. Flagged at the return statement.
func EarlyReturn(c *obs.Context, fail bool) error {
	sp := c.Span("phase")
	if fail {
		return errFail // want `span "phase" is not ended on this return path`
	}
	sp.End()
	return nil
}

// ChildLeak starts a child from another span and drops it: flagged.
func ChildLeak(parent *obs.Span) {
	sub := parent.Child("sub") // want `span "sub" is never ended`
	sub.SetAttr("k", 1)
}

// Suppressed leak with a written reason: clean.
func Suppressed(c *obs.Context) {
	// lint:ignore spanend fixture demonstrates an intentionally open span
	sp := c.Span("open")
	sp.Event("working")
}

// Deferred is the canonical clean pattern.
func Deferred(c *obs.Context, fail bool) error {
	sp := c.Span("deferred")
	defer sp.End()
	if fail {
		return errFail
	}
	return nil
}

// BothPaths ends the span explicitly on each path: clean.
func BothPaths(c *obs.Context, fail bool) error {
	sp := c.Span("both")
	if fail {
		sp.End()
		return errFail
	}
	sp.End()
	return nil
}

// NilGuarded uses the `if sp != nil` idiom; End on a nil span is a
// no-op, so the guard is treated as an unconditional End: clean.
func NilGuarded(c *obs.Context, fail bool) error {
	sp := c.Span("guarded")
	if fail {
		if sp != nil {
			sp.End()
		}
		return errFail
	}
	sp.End()
	return nil
}

// Escapes hands the span to another function, which takes over the End
// obligation: clean (not checked).
func Escapes(c *obs.Context) {
	sp := c.Span("handoff")
	finish(sp)
}

// Returned transfers the obligation to the caller: clean.
func Returned(c *obs.Context) *obs.Span {
	sp := c.Span("returned")
	return sp
}

func finish(sp *obs.Span) {
	sp.End()
}

// Windowed spans come back already ended: clean.
func Windowed(parent *obs.Span) {
	_ = parent.Name()
}
