// Fixture for the ctxleak analyzer: context parameters not threaded to
// callees, and goroutine loops with no exit path.
package ctxleak

import "context"

func helper(ctx context.Context) error { return ctx.Err() }

// DetachedBackground receives a ctx but hands callees a fresh root
// context: cancellation no longer propagates.
func DetachedBackground(ctx context.Context) error {
	return helper(context.Background()) // want `context\.Background\(\) passed to helper while the caller's ctx parameter is in scope`
}

// DetachedTODO is the same leak via context.TODO.
func DetachedTODO(ctx context.Context) error {
	return helper(context.TODO()) // want `context\.TODO\(\) passed to helper while the caller's ctx parameter is in scope`
}

// DetachedInClosure loses the ctx inside a nested literal that still
// has the parameter in scope.
func DetachedInClosure(ctx context.Context) func() error {
	return func() error {
		return helper(context.Background()) // want `context\.Background\(\) passed to helper`
	}
}

type pump struct {
	in   chan int
	stop chan struct{}
}

// ForeverSelect spins a goroutine whose select loop has no returning
// case: nothing can ever reclaim it.
func (p *pump) ForeverSelect() {
	go func() { // want `goroutine can never reach an exit`
		for {
			select {
			case v := <-p.in:
				_ = v
			}
		}
	}()
}

// ForeverDecl loops forever with no break or return.
func (p *pump) loopForever() { // want `goroutine can never reach an exit`
	for {
		<-p.in
	}
}

// StartForever launches the never-returning declared worker.
func (p *pump) StartForever() {
	go p.loopForever()
}

// Threaded passes its ctx straight through: clean.
func Threaded(ctx context.Context) error {
	return helper(ctx)
}

// FreshRootAllowed has no ctx parameter, so a root context is the only
// honest choice: clean.
func FreshRootAllowed() error {
	return helper(context.Background())
}

// ShadowedParam declares its own ctx parameter in the literal; the
// fresh root inside is that function's own decision: clean here.
func ShadowedParam(ctx context.Context) func(context.Context) error {
	return func(ctx context.Context) error {
		return helper(ctx)
	}
}

// DoneGuard is the canonical clean worker: the ctx.Done case returns.
func (p *pump) DoneGuard(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-p.in:
				_ = v
			}
		}
	}()
}

// RangeWorker exits when the channel closes: clean.
func (p *pump) RangeWorker() {
	go func() {
		for v := range p.in {
			_ = v
		}
	}()
}

// Suppressed pins a deliberate daemon with a written reason.
func (p *pump) Suppressed() {
	// lint:ignore ctxleak fixture demonstrates a process-lifetime daemon
	go func() {
		for {
			<-p.stop
		}
	}()
}
