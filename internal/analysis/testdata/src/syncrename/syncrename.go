// Fixture for the syncrename analyzer: temp files renamed into place
// must receive a File.Sync before the rename, or the crash-recovery
// story of the atomic-persist idiom silently breaks.
package syncrename

import (
	"bufio"
	"os"
)

// BadPublish writes and renames without ever syncing: flagged at the
// rename.
func BadPublish(final string) error {
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final) // want `f is renamed into place without File.Sync`
}

// BadCreateTemp links the handle to the rename through f.Name().
func BadCreateTemp(dir, final string) error {
	f, err := os.CreateTemp(dir, "snap-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	f.Write([]byte("payload"))
	f.Close()
	return os.Rename(tmp, final) // want `f is renamed into place without File.Sync`
}

// BadOpenFile exercises the os.OpenFile creation path.
func BadOpenFile(final string) error {
	f, err := os.OpenFile(final+".tmp", os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	f.Write([]byte("payload"))
	f.Close()
	return os.Rename(final+".tmp", final) // want `f is renamed into place without File.Sync`
}

// GoodPublish is the full idiom: write → Sync → Close → Rename.
func GoodPublish(final string) error {
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// GoodEscape hands the handle to a helper, which owns the sync
// obligation from then on; not flagged.
func GoodEscape(final string) error {
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := fillAndSync(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// GoodUnrelated renames a path no tracked handle created; the write
// target is a different file entirely.
func GoodUnrelated(src, dst, log string) error {
	f, err := os.Create(log)
	if err != nil {
		return err
	}
	f.Write([]byte("renaming\n"))
	f.Close()
	return os.Rename(src, dst)
}

// Suppressed documents a deliberate exception with a written reason.
func Suppressed(final string) error {
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	f.Write([]byte("scratch"))
	f.Close()
	// lint:ignore syncrename scratch file on tmpfs; durability is not required
	return os.Rename(tmp, final)
}

func fillAndSync(f *os.File) error {
	bw := bufio.NewWriter(f)
	if _, err := bw.WriteString("payload"); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Sync()
}
