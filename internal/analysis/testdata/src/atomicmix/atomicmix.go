// Fixture for the atomicmix analyzer: struct fields accessed both
// through sync/atomic functions and through plain reads/writes in the
// same package.
package atomicmix

import "sync/atomic"

type stats struct {
	hits   int64 // mixed: atomic in Record, plain elsewhere
	misses int64 // atomic-only: clean
	label  string
}

// Record is the atomic side of the mix.
func (s *stats) Record(hit bool) {
	if hit {
		atomic.AddInt64(&s.hits, 1)
	} else {
		atomic.AddInt64(&s.misses, 1)
	}
}

// PlainRead reads the atomically-written field without atomic.Load: a
// torn read on 32-bit platforms, a race everywhere.
func (s *stats) PlainRead() int64 {
	return s.hits // want `field hits .* is accessed with sync/atomic elsewhere in this package but non-atomically here`
}

// PlainWrite resets the field with a plain store.
func (s *stats) PlainWrite() {
	s.hits = 0 // want `field hits .* non-atomically here`
}

// PlainIncrement mixes an unguarded increment in.
func (s *stats) PlainIncrement() {
	s.hits++ // want `field hits .* non-atomically here`
}

// AtomicOnly keeps every access through the atomic API: clean.
func (s *stats) AtomicOnly() int64 {
	return atomic.LoadInt64(&s.hits) + atomic.LoadInt64(&s.misses)
}

// UntrackedField touches a field that is never accessed atomically:
// clean.
func (s *stats) UntrackedField() string {
	return s.label
}

// Suppressed reads plainly with a written reason (single-goroutine
// constructor phase).
func (s *stats) Suppressed() int64 {
	// lint:ignore atomicmix fixture demonstrates a pre-publication read
	return s.hits
}
