// Fixture for the solveerr analyzer: discarded convergence errors from
// pagerank.Engine solves. The fixture uses the real engine type so the
// analyzer's receiver matching is exercised against production types.
package solveerr

import (
	"spammass/internal/pagerank"
)

// Discarded drops both result and error: flagged.
func Discarded(eng *pagerank.Engine, v pagerank.Vector) {
	eng.Solve(v) // want `result and error of Engine\.Solve discarded`
}

// BlankErr keeps the result but blanks the error: flagged.
func BlankErr(eng *pagerank.Engine, v pagerank.Vector) pagerank.Vector {
	res, _ := eng.Solve(v) // want `error from Engine\.Solve assigned to _`
	return res.Scores
}

// BlankErrMany on the batched entry point: flagged.
func BlankErrMany(eng *pagerank.Engine, vs []pagerank.Vector) []*pagerank.Result {
	rs, _ := eng.SolveMany(vs) // want `error from Engine\.SolveMany assigned to _`
	return rs
}

// Deferred solve can never surface its error: flagged.
func Deferred(eng *pagerank.Engine, v pagerank.Vector) {
	defer eng.Solve(v) // want `error of deferred Engine\.Solve is unobservable`
}

// GoDiscard loses the error in a goroutine: flagged.
func GoDiscard(eng *pagerank.Engine, v pagerank.Vector) {
	go eng.Solve(v) // want `error of Engine\.Solve in go statement is discarded`
}

// Suppressed discard with a written reason: clean.
func Suppressed(eng *pagerank.Engine, v pagerank.Vector) {
	// lint:ignore solveerr fixture demonstrates a deliberately discarded warm-up solve
	eng.Solve(v)
}

// Checked handles the error: clean.
func Checked(eng *pagerank.Engine, v pagerank.Vector) (pagerank.Vector, error) {
	res, err := eng.Solve(v)
	if err != nil {
		return nil, err
	}
	return res.Scores, nil
}

// CheckedNotConverged accepts truncation explicitly via the typed
// error: clean.
func CheckedNotConverged(eng *pagerank.Engine, v pagerank.Vector) (pagerank.Vector, error) {
	res, err := eng.Solve(v)
	if err != nil && !pagerank.IsNotConverged(err) {
		return nil, err
	}
	return res.Scores, nil
}

// Propagated returns the call directly: clean.
func Propagated(eng *pagerank.Engine, v pagerank.Vector) ([]*pagerank.Result, error) {
	return eng.SolveMany([]pagerank.Vector{v})
}

// otherSolver has a Solve method on a different type: clean.
type otherSolver struct{}

func (otherSolver) Solve(v []float64) {}

func OtherType(s otherSolver, v []float64) {
	s.Solve(v)
}
