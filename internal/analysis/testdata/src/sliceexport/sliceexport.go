// Fixture for the sliceexport analyzer: exported functions returning
// internal numeric slice fields without cloning.
package sliceexport

type Estimates struct {
	p   []float64
	rel []float64
	ids []uint32
}

// Scores aliases the internal vector: flagged.
func (e *Estimates) Scores() []float64 {
	return e.p // want `exported Scores returns internal \[\]float64 field e\.p without cloning`
}

// Window aliases a sub-slice of the internal vector: flagged.
func (e *Estimates) Window(lo, hi int) []float64 {
	return e.rel[lo:hi] // want `exported Window returns internal \[\]float64 field e\.rel without cloning`
}

// IDs aliases an integer slice field: flagged.
func (e *Estimates) IDs() []uint32 {
	return e.ids // want `exported IDs returns internal \[\]uint32 field e\.ids without cloning`
}

// FromParam aliases a field of a parameter struct: flagged.
func FromParam(e *Estimates) []float64 {
	return e.p // want `exported FromParam returns internal \[\]float64 field e\.p without cloning`
}

// Suppressed is flagged but carries a written suppression: clean.
func (e *Estimates) Suppressed() []float64 {
	// lint:ignore sliceexport fixture demonstrates an intentional, documented alias
	return e.p
}

// CloneScores copies before returning: clean.
func (e *Estimates) CloneScores() []float64 {
	return append([]float64(nil), e.p...)
}

// scores is unexported: internal callers may share state: clean.
func (e *Estimates) scores() []float64 {
	return e.p
}

// Fresh returns a locally built slice: clean.
func (e *Estimates) Fresh() []float64 {
	out := make([]float64, len(e.p))
	copy(out, e.p)
	return out
}

// Names returns a non-numeric slice: out of scope, clean.
type table struct{ names []string }

func (t *table) Names() []string { return t.names }

// LocalField returns a field of a local struct, which has a unique
// owner: clean.
func LocalField() []float64 {
	var e Estimates
	e.p = []float64{1}
	return e.p
}
