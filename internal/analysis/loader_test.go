package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays out a throwaway single-package module so loader
// behavior (module root discovery, go.mod parsing, build-tag file
// selection) is tested hermetically.
func writeModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod":        "module example.com/tagmod\n\ngo 1.21\n",
		"a.go":          "package tagmod\n\nvar A = 1\n",
		"b_tagged.go":   "//go:build lintfixturetag\n\npackage tagmod\n\nvar B = 2\n",
		"c_excluded.go": "//go:build neverenabledtag\n\npackage tagmod\n\nvar C = 3\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(root, name), []byte(src), 0o644); err != nil {
			t.Fatalf("writing %s: %v", name, err)
		}
	}
	if err := os.Mkdir(filepath.Join(root, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	return root
}

func TestFindModuleRoot(t *testing.T) {
	root := writeModule(t)
	got, err := FindModuleRoot(filepath.Join(root, "sub"))
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	want, _ := filepath.EvalSymlinks(root)
	gotEval, _ := filepath.EvalSymlinks(got)
	if gotEval != want {
		t.Errorf("FindModuleRoot = %s, want %s", got, root)
	}
	if _, err := FindModuleRoot(os.TempDir()); err == nil {
		t.Skip("a go.mod exists above the temp dir on this host")
	}
}

func TestLoaderModulePath(t *testing.T) {
	root := writeModule(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.Module != "example.com/tagmod" {
		t.Errorf("Module = %q, want example.com/tagmod", l.Module)
	}
}

func TestLoaderBuildTags(t *testing.T) {
	root := writeModule(t)

	// Default tag set: only the unconstrained file survives.
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(root)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if got := len(pkg.Files); got != 1 {
		t.Errorf("default tags: loaded %d files, want 1", got)
	}

	// With the custom tag, the tagged file joins the build.
	lt, err := NewLoader(root, "lintfixturetag")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err = lt.LoadDir(root)
	if err != nil {
		t.Fatalf("LoadDir with tag: %v", err)
	}
	if got := len(pkg.Files); got != 2 {
		t.Errorf("with lintfixturetag: loaded %d files, want 2", got)
	}
	if pkg.Types.Scope().Lookup("B") == nil {
		t.Error("tagged file's declaration B missing from type info")
	}
	if pkg.Types.Scope().Lookup("C") != nil {
		t.Error("neverenabledtag file must stay excluded")
	}
}

func TestLoadAllSkipsTestdata(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	for _, p := range pkgs {
		if p == nil {
			continue
		}
		if filepath.Base(filepath.Dir(p.Dir)) == "testdata" || filepath.Base(p.Dir) == "testdata" {
			t.Errorf("LoadAll loaded a testdata package: %s", p.Dir)
		}
	}
}
