package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFuncs parses src (a complete file body without the package
// clause) and returns the file's function declarations by name.
func parseFuncs(t *testing.T, src string) (*token.FileSet, map[string]*ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	decls := map[string]*ast.FuncDecl{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			decls[fd.Name.Name] = fd
		}
	}
	return fset, decls
}

// typecheckFuncs parses and type-checks src, returning a hand-built
// Pass plus the declarations by name. src must not import anything.
func typecheckFuncs(t *testing.T, src string) (*Pass, map[string]*ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pass := &Pass{
		Analyzer: &Analyzer{Name: "test"},
		Fset:     fset,
		Files:    []*ast.File{f},
		Pkg:      pkg,
		Info:     info,
		report:   func(Diagnostic) {},
	}
	decls := map[string]*ast.FuncDecl{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			decls[fd.Name.Name] = fd
		}
	}
	return pass, decls
}

// findNode locates the first node of type N in the CFG's blocks,
// returning its block.
func findNode[N ast.Node](c *CFG) (N, *Block) {
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if m, ok := n.(N); ok {
				return m, b
			}
		}
	}
	var zero N
	return zero, nil
}

func TestCFGReturnAndFallOff(t *testing.T) {
	_, decls := parseFuncs(t, `
func f(x bool) int {
	if x {
		return 1
	}
	x = false
	return 0
}
func g(x bool) {
	if x {
		return
	}
	x = false
}`)
	c := NewCFG(decls["f"])
	if c.FallOff != nil {
		t.Errorf("f ends in returns on every path; FallOff should be nil, got block %d", c.FallOff.Index)
	}
	if !c.CanReach(c.Entry, c.Exit) {
		t.Error("f: exit must be reachable")
	}
	c = NewCFG(decls["g"])
	if c.FallOff == nil {
		t.Fatal("g falls off the end of its body; FallOff must be set")
	}
	if !c.Reachable()[c.FallOff] {
		t.Error("g: FallOff must be reachable from entry")
	}
}

func TestCFGDeferStaysInline(t *testing.T) {
	_, decls := parseFuncs(t, `
func f() {
	defer cleanup()
	work()
}
func cleanup() {}
func work()    {}`)
	c := NewCFG(decls["f"])
	d, blk := findNode[*ast.DeferStmt](c)
	if d == nil || blk == nil {
		t.Fatal("defer statement not recorded in any block")
	}
	// The defer and the following call share the straight-line block,
	// in source order, so transfer functions see registration order.
	if len(blk.Nodes) < 2 {
		t.Fatalf("defer's block has %d nodes, want the defer and the call", len(blk.Nodes))
	}
	if blk.Nodes[0] != ast.Node(d) {
		t.Error("defer must precede the call in its block")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	_, decls := parseFuncs(t, `
func f(ch chan int) {
outer:
	for {
		for {
			select {
			case v := <-ch:
				if v == 0 {
					break outer
				}
			}
		}
	}
}`)
	c := NewCFG(decls["f"])
	// Without the labeled break resolving to the OUTER loop's after
	// block, the nested infinite loops would trap every path.
	if !c.CanReach(c.Entry, c.Exit) {
		t.Error("break outer must create a path out of the nested loops")
	}
}

func TestCFGUnlabeledBreakInnerOnly(t *testing.T) {
	_, decls := parseFuncs(t, `
func f() {
	for {
		for {
			break
		}
	}
}`)
	c := NewCFG(decls["f"])
	// The unlabeled break only exits the inner loop; the outer one
	// still spins forever.
	if c.CanReach(c.Entry, c.Exit) {
		t.Error("unlabeled break must not exit the outer loop")
	}
}

func TestCFGGoto(t *testing.T) {
	_, decls := parseFuncs(t, `
func f(x bool) {
	if x {
		goto done
	}
	for {
	}
done:
	cleanup()
}
func cleanup() {}`)
	c := NewCFG(decls["f"])
	if !c.CanReach(c.Entry, c.Exit) {
		t.Error("goto done must bypass the infinite loop")
	}
	// The goto's edge lands on the labeled anchor block, which holds
	// the cleanup call.
	call, blk := findNode[*ast.ExprStmt](c)
	if call == nil {
		t.Fatal("cleanup call not found")
	}
	if !c.Reachable()[blk] {
		t.Error("the labeled block must be reachable via the goto")
	}
}

func TestCFGPanicEdge(t *testing.T) {
	_, decls := parseFuncs(t, `
func f(x bool) int {
	if x {
		panic("bad")
	}
	return 1
}`)
	c := NewCFG(decls["f"])
	var panicBlk *Block
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok && isPanicCall(es.X) {
				panicBlk = b
			}
		}
	}
	if panicBlk == nil {
		t.Fatal("panic statement not recorded")
	}
	if !c.PanicExit(panicBlk) {
		t.Error("the panic block's exit edge must be marked as a panic")
	}
	found := false
	for _, s := range panicBlk.Succs {
		if s == c.Exit {
			found = true
		}
	}
	if !found {
		t.Error("panic must edge to Exit (unwinding leaves the function)")
	}
}

func TestCFGInfiniteLoopTrapsExit(t *testing.T) {
	_, decls := parseFuncs(t, `
func f() {
	for {
	}
}
func g() {
	select {}
}`)
	for _, name := range []string{"f", "g"} {
		c := NewCFG(decls[name])
		if c.CanReach(c.Entry, c.Exit) {
			t.Errorf("%s: exit must be unreachable past an infinite loop", name)
		}
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, decls := parseFuncs(t, `
func f(x int) int {
	switch x {
	case 1:
		fallthrough
	case 2:
		return 2
	}
	return 0
}`)
	c := NewCFG(decls["f"])
	if !c.CanReach(c.Entry, c.Exit) {
		t.Error("exit must be reachable")
	}
	// Both returns reachable: case 1 falls through into case 2's body.
	returns := 0
	reach := c.Reachable()
	for _, b := range c.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
			}
		}
	}
	if returns != 2 {
		t.Errorf("want both returns reachable, got %d", returns)
	}
}

func TestCFGSelectHeader(t *testing.T) {
	_, decls := parseFuncs(t, `
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
	default:
	}
	return 0
}`)
	c := NewCFG(decls["f"])
	h, _ := findNode[*SelectHeader](c)
	if h == nil {
		t.Fatal("select header not recorded")
	}
	if !h.HasDefault() {
		t.Error("select has a default clause")
	}
	// The comm statements are marked so analyzers can tell them from
	// ordinary statements.
	comms := 0
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if s, ok := n.(ast.Stmt); ok && c.IsComm(s) {
				comms++
			}
		}
	}
	if comms != 2 {
		t.Errorf("want 2 comm statements marked, got %d", comms)
	}
}

func TestReachingDefsKillAndMerge(t *testing.T) {
	pass, decls := typecheckFuncs(t, `
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`)
	fd := decls["f"]
	cfg := NewCFG(fd)
	rd := NewReachingDefs(pass, cfg)
	var ret *ast.ReturnStmt
	ast.Inspect(fd, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r
		}
		return true
	})
	var xVar *types.Var
	for id, obj := range pass.Info.Defs {
		if id.Name == "x" {
			xVar = obj.(*types.Var)
		}
	}
	if xVar == nil || ret == nil {
		t.Fatal("fixture shape changed")
	}
	defs := rd.DefsAt(ret, xVar)
	// Both `x := 1` and `x = 2` may reach the return (the branch merge
	// keeps both); the entry pseudo-definition must not appear.
	if len(defs) != 2 {
		t.Fatalf("want 2 reaching definitions at the return, got %d", len(defs))
	}
	if defs[nil] {
		t.Error("x is defined locally; the entry pseudo-site must not reach")
	}
}

func TestReachingDefsRebindKills(t *testing.T) {
	pass, decls := typecheckFuncs(t, `
func f() int {
	x := 1
	x = 2
	return x
}`)
	fd := decls["f"]
	rd := NewReachingDefs(pass, NewCFG(fd))
	var ret *ast.ReturnStmt
	var first *ast.AssignStmt
	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			ret = n
		case *ast.AssignStmt:
			if first == nil {
				first = n
			}
		}
		return true
	})
	var xVar *types.Var
	for id, obj := range pass.Info.Defs {
		if id.Name == "x" {
			xVar = obj.(*types.Var)
		}
	}
	defs := rd.DefsAt(ret, xVar)
	if len(defs) != 1 {
		t.Fatalf("straight-line rebind must kill the first definition, got %d sites", len(defs))
	}
	if defs[first] {
		t.Error("the killed first definition still reaches the return")
	}
}

func TestAliasSetViewsAndCopies(t *testing.T) {
	pass, decls := typecheckFuncs(t, `
type cfg struct {
	Index map[string]int
	Limit int
}

func f() {
	c := &cfg{}
	view := c.Index
	chained := view
	count := c.Limit
	fresh := clone(c)
	_ = chained
	_ = count
	_ = fresh
}
func clone(v *cfg) *cfg { return v }`)
	fd := decls["f"]
	// Collect only the locals declared inside f, so clone's parameter
	// cannot shadow them in the lookup.
	names := map[string]types.Object{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				names[id.Name] = obj
			}
		}
		return true
	})
	cObj := names["c"]
	aliases := AliasSet(pass.Info, fd.Body, cObj)
	if aliases[cObj] != nil {
		t.Error("the root object aliases itself with a nil creator")
	}
	if _, ok := aliases[names["view"]]; !ok {
		t.Error("view (c.Index) must alias c")
	}
	if _, ok := aliases[names["chained"]]; !ok {
		t.Error("chained (view) must alias c transitively")
	}
	if _, ok := aliases[names["count"]]; ok {
		t.Error("count copies a basic-typed field; it must NOT alias c")
	}
	if _, ok := aliases[names["fresh"]]; ok {
		t.Error("fresh is a call result; calls break the alias chain")
	}
}
