// Package analysis is spamlint's static-analysis framework: a
// stdlib-only (go/parser + go/types, no x/tools) loader and runner for
// repo-specific analyzers that mechanically enforce the numerical-
// safety and telemetry invariants of the spam-mass pipeline.
//
// Each Analyzer inspects one type-checked package at a time and
// reports Diagnostics through its Pass. The Runner applies a rule set
// (which analyzers run on which import paths), filters findings
// suppressed by `// lint:ignore <analyzer> <reason>` comments, and
// returns the surviving diagnostics in deterministic order.
//
// The analyzers shipped with the package target bug classes this repo
// has actually had to fix in review: returned-slice aliasing
// (sliceexport), exact float comparison (floatcmp), discarded solver
// convergence errors (solveerr), spans left open on early returns
// (spanend), and stray printing from library packages (printcall).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static-analysis pass. Run inspects a single package
// and reports findings via pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `// lint:ignore <name> <reason>` suppression comments.
	Name string
	// Doc is a one-line description of the invariant the analyzer
	// guards, shown by `spamlint -list`.
	Doc string
	// Run inspects pass.Files and reports diagnostics.
	Run func(pass *Pass)
}

// Pass carries one package's syntax and type information to an
// analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's parsed syntax (build-tag filtered,
	// non-test files only).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info

	report func(Diagnostic)
	// funcs shares CFG/dataflow state (FuncInfo) across the analyzers
	// run over one package; see Pass.FuncInfo.
	funcs *funcCache
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one finding, located in the file set the package was
// parsed with.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string

	// Suppressed marks a finding covered by a lint:ignore directive;
	// SuppressReason carries the directive's written justification.
	// Run filters suppressed findings out; RunAll keeps them, so tools
	// (spamlint -json) can audit every suppression in the module.
	Suppressed     bool
	SuppressReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}
