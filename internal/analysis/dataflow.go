package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the data-flow half of the shared flow-analysis layer: a
// generic forward worklist solver over the CFG (with optional
// per-edge refinement, so branch conditions like `sp != nil` or
// `mu.TryLock()` can specialize the fact on each outgoing edge), a
// reaching-definitions pass, and the conservative alias-set helper the
// publishfreeze analyzer uses to follow retained slices and maps.

// FlowProblem describes one forward dataflow problem over a CFG with
// fact type F. Facts must be treated as immutable by Transfer and
// Edge: return a fresh value instead of mutating the input, so block
// in-facts stay valid across worklist iterations.
type FlowProblem[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Transfer applies one block's nodes to the incoming fact.
	Transfer func(b *Block, in F) F
	// Edge, when non-nil, refines the block's out-fact on the edge to
	// Succs[succ] (branch-condition specialization). It receives the
	// out-fact returned by Transfer.
	Edge func(b *Block, succ int, out F) F
	// Merge joins the facts of two incoming edges.
	Merge func(a, b F) F
	// Equal reports whether two facts are equal (fixpoint test).
	Equal func(a, b F) bool
}

// FlowResult carries the solved facts: In[b] is the merged fact at
// block entry, Out[b] the fact after the block's transfer. Blocks
// unreachable from Entry are absent from both maps.
type FlowResult[F any] struct {
	In, Out map[*Block]F
}

// ForwardSolve runs the worklist algorithm to a fixpoint. The solver
// visits only blocks reachable from cfg.Entry; facts for unreachable
// blocks are simply absent, so analyzers never report from dead code.
func ForwardSolve[F any](cfg *CFG, p FlowProblem[F]) *FlowResult[F] {
	res := &FlowResult[F]{In: map[*Block]F{}, Out: map[*Block]F{}}
	seeded := map[*Block]bool{cfg.Entry: true}
	res.In[cfg.Entry] = p.Entry
	work := []*Block{cfg.Entry}
	inQueue := map[*Block]bool{cfg.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inQueue[b] = false
		out := p.Transfer(b, res.In[b])
		res.Out[b] = out
		for i, s := range b.Succs {
			f := out
			if p.Edge != nil {
				f = p.Edge(b, i, out)
			}
			if seeded[s] {
				merged := p.Merge(res.In[s], f)
				if p.Equal(merged, res.In[s]) {
					continue
				}
				res.In[s] = merged
			} else {
				seeded[s] = true
				res.In[s] = f
			}
			if !inQueue[s] {
				inQueue[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}

// ---------------------------------------------------------------------
// Reaching definitions.

// DefSites maps each variable to the set of nodes that may have
// written it most recently. The special site nil denotes "defined at
// function entry" (parameters, receivers, captured variables).
type DefSites map[*types.Var]map[ast.Node]bool

func (d DefSites) clone() DefSites {
	out := make(DefSites, len(d))
	for v, sites := range d {
		c := make(map[ast.Node]bool, len(sites))
		for s := range sites {
			c[s] = true
		}
		out[v] = c
	}
	return out
}

func (d DefSites) equal(o DefSites) bool {
	if len(d) != len(o) {
		return false
	}
	for v, sites := range d {
		os := o[v]
		if len(sites) != len(os) {
			return false
		}
		for s := range sites {
			if !os[s] {
				return false
			}
		}
	}
	return true
}

func (d DefSites) merge(o DefSites) DefSites {
	out := d.clone()
	for v, sites := range o {
		if out[v] == nil {
			out[v] = map[ast.Node]bool{}
		}
		for s := range sites {
			out[v][s] = true
		}
	}
	return out
}

// ReachingDefs is the solved reaching-definitions relation for one
// function: which assignments may provide a variable's current value
// at each program point.
type ReachingDefs struct {
	pass *Pass
	cfg  *CFG
	res  *FlowResult[DefSites]
	// home locates each node in its block.
	home map[ast.Node]*Block
}

// NewReachingDefs solves reaching definitions over fi's CFG.
func NewReachingDefs(pass *Pass, cfg *CFG) *ReachingDefs {
	rd := &ReachingDefs{pass: pass, cfg: cfg, home: map[ast.Node]*Block{}}
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			rd.home[n] = b
		}
	}
	rd.res = ForwardSolve(cfg, FlowProblem[DefSites]{
		Entry: DefSites{},
		Transfer: func(b *Block, in DefSites) DefSites {
			out := in.clone()
			for _, n := range b.Nodes {
				rd.apply(n, out)
			}
			return out
		},
		Merge: func(a, b DefSites) DefSites { return a.merge(b) },
		Equal: func(a, b DefSites) bool { return a.equal(b) },
	})
	return rd
}

// apply folds one node's definitions into sites (in place).
func (rd *ReachingDefs) apply(n ast.Node, sites DefSites) {
	kill := func(id *ast.Ident, site ast.Node) {
		v := rd.defObj(id)
		if v == nil {
			return
		}
		sites[v] = map[ast.Node]bool{site: true}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				kill(id, n)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						kill(id, n)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			kill(id, n)
		}
	case *RangeHeader:
		for _, e := range []ast.Expr{n.R.Key, n.R.Value} {
			if e == nil {
				continue
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
				kill(id, n)
			}
		}
	}
}

// defObj resolves the variable an identifier writes (definition or
// plain assignment).
func (rd *ReachingDefs) defObj(id *ast.Ident) *types.Var {
	if o, ok := rd.pass.Info.Defs[id].(*types.Var); ok {
		return o
	}
	if o, ok := rd.pass.Info.Uses[id].(*types.Var); ok {
		return o
	}
	return nil
}

// DefsAt returns the definitions of v that may reach node n (which
// must appear in some block's node list), before n's own effect.
// Variables with no recorded definition (parameters, captures) yield
// the single entry-site nil.
func (rd *ReachingDefs) DefsAt(n ast.Node, v *types.Var) map[ast.Node]bool {
	b := rd.home[n]
	if b == nil {
		return nil
	}
	in, ok := rd.res.In[b]
	if !ok {
		return nil // unreachable block
	}
	sites := in.clone()
	for _, m := range b.Nodes {
		if m == n {
			break
		}
		rd.apply(m, sites)
	}
	if s := sites[v]; s != nil {
		return s
	}
	return map[ast.Node]bool{nil: true}
}

// ---------------------------------------------------------------------
// Alias sets.

// AliasSet computes the conservative set of local variables that may
// alias memory reachable from obj inside body: obj itself, plus every
// variable assigned from an expression that derives a view of an
// alias (selector, index, slice, dereference, address). Values
// produced by function calls are treated as fresh (clones break the
// chain) — that is exactly the copy-before-publish idiom the
// publishfreeze analyzer wants to encourage. The map also records the
// assignment node that created each alias.
func AliasSet(info *types.Info, body *ast.BlockStmt, obj types.Object) map[types.Object]ast.Node {
	aliases := map[types.Object]ast.Node{obj: nil}
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				tgt := info.Defs[id]
				if tgt == nil {
					tgt = info.Uses[id]
				}
				if tgt == nil {
					continue
				}
				if _, known := aliases[tgt]; known {
					continue
				}
				// A basic-typed copy (n := cfg.Limit) is a value, not a
				// view — only reference-shaped results alias.
				if !isRefType(info.TypeOf(as.Rhs[i])) {
					continue
				}
				if root := derivedRoot(as.Rhs[i]); root != nil {
					src := info.Uses[root]
					if src == nil {
						src = info.Defs[root]
					}
					if _, isAlias := aliases[src]; isAlias {
						aliases[tgt] = as
						grew = true
					}
				}
			}
			return true
		})
		if !grew {
			return aliases
		}
	}
}

// isRefType reports whether t's underlying type shares memory when
// copied: pointer, slice, map, or channel.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// derivedRoot returns the root identifier of an expression that yields
// a view of (rather than a copy of) its root: selector, index, slice,
// dereference, address-of and parenthesis chains. Calls, composite
// literals and arithmetic return nil — their results are fresh values.
func derivedRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}
