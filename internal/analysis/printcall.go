package analysis

import (
	"go/ast"
	"go/types"
)

// PrintCall flags direct output from library packages: fmt.Print*,
// log output functions — both the package-level log.Printf family and
// methods on a *log.Logger value — and the println/print builtins.
// Library code must route human-visible output through the obs layer
// (Context.Logf, spans) or return values; printing from a library
// interleaves with CLI output, breaks -json consumers, and is
// invisible to traces. Long-running packages like internal/serve are
// the motivating case: a handler error path that grabs its own logger
// bypasses the metrics/span story the server is built on. Writing to
// an io.Writer the caller supplied (fmt.Fprintf) is fine.
var PrintCall = &Analyzer{
	Name: "printcall",
	Doc:  "fmt.Print*/log.Print*/println in a library package (route output through obs)",
	Run:  runPrintCall,
}

var printFuncs = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
		"Output": true,
	},
}

// loggerMethod reports calls to the output methods of *log.Logger —
// whether the logger came from log.Default(), log.New, or a struct
// field, the bytes still bypass the obs layer.
func loggerMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	obj, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil || obj.Pkg().Path() != "log" {
		return "", false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	name := obj.Name()
	if !printFuncs["log"][name] {
		return "", false
	}
	return name, true
}

func runPrintCall(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, isB := pass.Info.Uses[id].(*types.Builtin); isB {
					if name := b.Name(); name == "println" || name == "print" {
						pass.Reportf(call.Pos(), "builtin %s in library package; route output through obs.Context or return values", name)
					}
				}
				return true
			}
			if pkgPath, name, ok := calleeName(pass.Info, call); ok {
				if fns, ok := printFuncs[pkgPath]; ok && fns[name] {
					pass.Reportf(call.Pos(), "%s.%s in library package; route output through obs.Context or return values", pkgPath, name)
				}
				return true
			}
			if name, ok := loggerMethod(pass.Info, call); ok {
				pass.Reportf(call.Pos(), "(*log.Logger).%s in library package; route output through obs.Context or return values", name)
			}
			return true
		})
	}
}
