package analysis

import (
	"go/ast"
	"go/types"
)

// PrintCall flags direct output from library packages: fmt.Print*,
// log output functions, and the println/print builtins. Library code
// must route human-visible output through the obs layer (Context.Logf,
// spans) or return values; printing from a library interleaves with
// CLI output, breaks -json consumers, and is invisible to traces.
// Writing to an io.Writer the caller supplied (fmt.Fprintf) is fine.
var PrintCall = &Analyzer{
	Name: "printcall",
	Doc:  "fmt.Print*/log.Print*/println in a library package (route output through obs)",
	Run:  runPrintCall,
}

var printFuncs = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
		"Output": true,
	},
}

func runPrintCall(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, isB := pass.Info.Uses[id].(*types.Builtin); isB {
					if name := b.Name(); name == "println" || name == "print" {
						pass.Reportf(call.Pos(), "builtin %s in library package; route output through obs.Context or return values", name)
					}
				}
				return true
			}
			pkgPath, name, ok := calleeName(pass.Info, call)
			if !ok {
				return true
			}
			if fns, ok := printFuncs[pkgPath]; ok && fns[name] {
				pass.Reportf(call.Pos(), "%s.%s in library package; route output through obs.Context or return values", pkgPath, name)
			}
			return true
		})
	}
}
