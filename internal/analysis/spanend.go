package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd flags obs spans that are started (Context.Span, Span.Child,
// obs.NewSpan) but not ended on some return path, or never ended at
// all. An un-ended span reports a running duration in every trace
// snapshot taken after the function returns, so the JSON trace of the
// run is silently wrong.
//
// The check is a conservative per-function walk: a span-typed local
// must reach an End() call (deferred or direct) on every path from its
// creation to each return. Spans that escape the function — passed to
// another call, stored in a struct, captured by a closure, returned —
// transfer the obligation and are not checked. ChildWindow results are
// already ended and are ignored.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "obs span started but not ended on some return path (corrupts JSON traces)",
	Run:  runSpanEnd,
}

var spanStarters = map[string]bool{
	"Span":    true, // Context.Span
	"Child":   true, // Span.Child
	"NewSpan": true, // obs.NewSpan
}

func runSpanEnd(pass *Pass) {
	forEachFunc(pass, func(fn ast.Node, body *ast.BlockStmt) {
		checkSpansIn(pass, fn, body)
	})
}

// spanVar is one span-typed local created in the function body.
type spanVar struct {
	id   *ast.Ident      // the declared identifier
	stmt *ast.AssignStmt // the creating statement
	name string
}

// checkSpansIn verifies each non-escaping span variable of one
// function on the shared CFG: a forward dataflow tracks the span
// through Pre → Open → Closed, branch edges on `sp != nil` / `sp ==
// nil` refine the nil arm to Closed (End on a nil span is a no-op, so
// a nil span carries no obligation), and the solved facts are replayed
// to report each return — or the natural end of the body — the span
// can reach still open.
func checkSpansIn(pass *Pass, fn ast.Node, body *ast.BlockStmt) {
	vars := findSpanVars(pass, body)
	if len(vars) == 0 {
		return
	}
	fi := pass.FuncInfo(fn)
	for _, v := range vars {
		obj := pass.Info.Defs[v.id]
		if obj == nil {
			obj = pass.Info.Uses[v.id]
		}
		if obj == nil || spanEscapes(pass, body, v, obj) {
			continue
		}
		t := &spanTracker{pass: pass, v: v, obj: obj}
		if !t.hasEnd(body) {
			pass.Reportf(v.stmt.Pos(), "span %q is never ended; its duration stays open in every trace snapshot", v.name)
			continue
		}
		res := ForwardSolve(fi.CFG, FlowProblem[endState]{
			Entry: statePre,
			Transfer: func(b *Block, in endState) endState {
				st := in
				for _, n := range b.Nodes {
					st = t.step(n, st)
				}
				return st
			},
			Edge:  t.refineEdge,
			Merge: mergeStates,
			Equal: func(a, b endState) bool { return a == b },
		})
		// Replay each reachable block to place diagnostics on the exact
		// return statement (the solver's facts are block-granular).
		for _, b := range fi.CFG.Blocks {
			in, reachable := res.In[b]
			if !reachable {
				continue
			}
			st := in
			for _, n := range b.Nodes {
				if ret, ok := n.(*ast.ReturnStmt); ok && st == stateOpen {
					pass.Reportf(ret.Pos(), "span %q is not ended on this return path; end it before returning or use defer", v.name)
				}
				st = t.step(n, st)
			}
		}
		if fo := fi.CFG.FallOff; fo != nil {
			if out, ok := res.Out[fo]; ok && out == stateOpen {
				pass.Reportf(v.stmt.Pos(), "span %q is not ended on every path; a fall-through path leaves it open", v.name)
			}
		}
	}
}

// findSpanVars collects `sp := <starter>(...)` statements directly in
// the function body or nested blocks (but not nested function
// literals).
func findSpanVars(pass *Pass, body *ast.BlockStmt) []spanVar {
	var out []spanVar
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		var fnName string
		if ok {
			fnName = sel.Sel.Name
		} else if fid, isID := ast.Unparen(call.Fun).(*ast.Ident); isID {
			fnName = fid.Name
		}
		if !spanStarters[fnName] || !isObsSpan(pass.TypeOf(call)) {
			return true
		}
		name := spanLabel(call)
		out = append(out, spanVar{id: id, stmt: as, name: name})
		return true
	})
	return out
}

// spanLabel extracts the span's name argument for the diagnostic, when
// it is a string literal; otherwise the variable name is used.
func spanLabel(call *ast.CallExpr) string {
	if len(call.Args) > 0 {
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			return lit.Value[1 : len(lit.Value)-1]
		}
	}
	return "span"
}

// spanEscapes reports whether the span variable's End obligation
// leaves the function: used as a call argument, assigned elsewhere,
// returned, captured by a closure, or taken the address of. Method
// calls on the span itself (SetAttr, Event, End, …) do not escape.
func spanEscapes(pass *Pass, body *ast.BlockStmt, v spanVar, obj types.Object) bool {
	escaped := false
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// Any use inside a closure transfers the obligation.
			if usesObj(pass, n.Body, obj) {
				escaped = true
			}
			return false
		case *ast.CallExpr:
			// Receiver position is fine; argument position escapes.
			for _, arg := range n.Args {
				if identIs(pass, arg, obj) || usesObjExpr(pass, arg, obj) {
					escaped = true
					return false
				}
			}
			return true
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesObjExpr(pass, res, obj) {
					escaped = true
					return false
				}
			}
		case *ast.AssignStmt:
			if n == v.stmt {
				return true
			}
			for i, rhs := range n.Rhs {
				if !usesObjExpr(pass, rhs, obj) {
					continue
				}
				// Reassignment into another variable, field, map, or
				// slice element escapes.
				_ = i
				escaped = true
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && usesObjExpr(pass, n.X, obj) {
				escaped = true
				return false
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if usesObjExpr(pass, elt, obj) {
					escaped = true
					return false
				}
			}
		}
		return true
	}
	ast.Inspect(body, inspect)
	return escaped
}

func identIs(pass *Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

// usesObjExpr reports whether obj appears anywhere in e, except as the
// receiver of a method call (sp.End(), sp.SetAttr(...)).
func usesObjExpr(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && identIs(pass, sel.X, obj) {
				// Walk only the arguments; the receiver use is benign.
				for _, arg := range call.Args {
					if usesObjExpr(pass, arg, obj) {
						found = true
					}
				}
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func usesObj(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// endState tracks the span along one CFG path.
type endState int

const (
	statePre    endState = iota // before the creating statement
	stateOpen                   // created, not yet ended
	stateClosed                 // End called (or deferred) on this path
)

// spanTracker holds the per-variable pieces of the spanend dataflow:
// the transfer function over block nodes and the branch-edge
// refinement for nil guards.
type spanTracker struct {
	pass *Pass
	v    spanVar
	obj  types.Object
}

func (t *spanTracker) isEndCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	return identIs(t.pass, sel.X, t.obj)
}

// hasEnd reports whether any End call (direct or deferred) on the span
// appears in the body at all — the "never ended" screen that precedes
// path checking.
func (t *spanTracker) hasEnd(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if t.isEndCall(n.X) {
				found = true
			}
		case *ast.DeferStmt:
			if t.isEndCall(n.Call) {
				found = true
			}
		}
		return !found
	})
	return found
}

// step is the per-node transfer function.
func (t *spanTracker) step(n ast.Node, st endState) endState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n == t.v.stmt {
			return stateOpen
		}
	case *ast.DeferStmt:
		if t.isEndCall(n.Call) {
			return stateClosed
		}
	case *ast.ExprStmt:
		if t.isEndCall(n.X) && st != statePre {
			return stateClosed
		}
	}
	return st
}

// refineEdge closes the obligation on the nil arm of a `sp != nil` /
// `sp == nil` branch: a nil span has no End obligation (End is
// nil-safe), so only the non-nil arm keeps it open.
func (t *spanTracker) refineEdge(b *Block, succ int, out endState) endState {
	if b.Branch == nil || out != stateOpen {
		return out
	}
	op, isGuard := t.nilCheckOp(b.Branch)
	if !isGuard {
		return out
	}
	// Succs[0] is the true edge. `sp != nil` is nil on the false edge;
	// `sp == nil` is nil on the true edge.
	nilOnTrue := op == token.EQL
	if (succ == 0) == nilOnTrue {
		return stateClosed
	}
	return out
}

// nilCheckOp recognizes `sp != nil` and `sp == nil` for the tracked
// span, returning the comparison operator.
func (t *spanTracker) nilCheckOp(cond ast.Expr) (token.Token, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return 0, false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (identIs(t.pass, bin.X, t.obj) && isNil(bin.Y)) ||
		(identIs(t.pass, bin.Y, t.obj) && isNil(bin.X)) {
		return bin.Op, true
	}
	return 0, false
}

// mergeStates joins two path outcomes conservatively: a path that may
// still be open keeps the obligation alive.
func mergeStates(a, b endState) endState {
	if a == stateOpen || b == stateOpen {
		return stateOpen
	}
	if a == stateClosed || b == stateClosed {
		return stateClosed
	}
	return statePre
}
