package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanEnd flags obs spans that are started (Context.Span, Span.Child,
// obs.NewSpan) but not ended on some return path, or never ended at
// all. An un-ended span reports a running duration in every trace
// snapshot taken after the function returns, so the JSON trace of the
// run is silently wrong.
//
// The check is a conservative per-function walk: a span-typed local
// must reach an End() call (deferred or direct) on every path from its
// creation to each return. Spans that escape the function — passed to
// another call, stored in a struct, captured by a closure, returned —
// transfer the obligation and are not checked. ChildWindow results are
// already ended and are ignored.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "obs span started but not ended on some return path (corrupts JSON traces)",
	Run:  runSpanEnd,
}

var spanStarters = map[string]bool{
	"Span":    true, // Context.Span
	"Child":   true, // Span.Child
	"NewSpan": true, // obs.NewSpan
}

func runSpanEnd(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkSpansIn(pass, body)
			}
			return true
		})
	}
}

// spanVar is one span-typed local created in the function body.
type spanVar struct {
	id   *ast.Ident      // the declared identifier
	stmt *ast.AssignStmt // the creating statement
	name string
}

func checkSpansIn(pass *Pass, body *ast.BlockStmt) {
	vars := findSpanVars(pass, body)
	for _, v := range vars {
		obj := pass.Info.Defs[v.id]
		if obj == nil {
			obj = pass.Info.Uses[v.id]
		}
		if obj == nil || spanEscapes(pass, body, v, obj) {
			continue
		}
		w := &spanWalker{pass: pass, v: v, obj: obj}
		st := w.walkStmts(body.List, statePre)
		if !w.sawEnd {
			pass.Reportf(v.stmt.Pos(), "span %q is never ended; its duration stays open in every trace snapshot", v.name)
			continue
		}
		_ = st
		for _, pos := range w.openReturns {
			pass.Reportf(pos, "span %q is not ended on this return path; end it before returning or use defer", v.name)
		}
	}
}

// findSpanVars collects `sp := <starter>(...)` statements directly in
// the function body or nested blocks (but not nested function
// literals).
func findSpanVars(pass *Pass, body *ast.BlockStmt) []spanVar {
	var out []spanVar
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		var fnName string
		if ok {
			fnName = sel.Sel.Name
		} else if fid, isID := ast.Unparen(call.Fun).(*ast.Ident); isID {
			fnName = fid.Name
		}
		if !spanStarters[fnName] || !isObsSpan(pass.TypeOf(call)) {
			return true
		}
		name := spanLabel(call)
		out = append(out, spanVar{id: id, stmt: as, name: name})
		return true
	})
	return out
}

// spanLabel extracts the span's name argument for the diagnostic, when
// it is a string literal; otherwise the variable name is used.
func spanLabel(call *ast.CallExpr) string {
	if len(call.Args) > 0 {
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			return lit.Value[1 : len(lit.Value)-1]
		}
	}
	return "span"
}

// spanEscapes reports whether the span variable's End obligation
// leaves the function: used as a call argument, assigned elsewhere,
// returned, captured by a closure, or taken the address of. Method
// calls on the span itself (SetAttr, Event, End, …) do not escape.
func spanEscapes(pass *Pass, body *ast.BlockStmt, v spanVar, obj types.Object) bool {
	escaped := false
	var inspect func(n ast.Node) bool
	inspect = func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// Any use inside a closure transfers the obligation.
			if usesObj(pass, n.Body, obj) {
				escaped = true
			}
			return false
		case *ast.CallExpr:
			// Receiver position is fine; argument position escapes.
			for _, arg := range n.Args {
				if identIs(pass, arg, obj) || usesObjExpr(pass, arg, obj) {
					escaped = true
					return false
				}
			}
			return true
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesObjExpr(pass, res, obj) {
					escaped = true
					return false
				}
			}
		case *ast.AssignStmt:
			if n == v.stmt {
				return true
			}
			for i, rhs := range n.Rhs {
				if !usesObjExpr(pass, rhs, obj) {
					continue
				}
				// Reassignment into another variable, field, map, or
				// slice element escapes.
				_ = i
				escaped = true
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && usesObjExpr(pass, n.X, obj) {
				escaped = true
				return false
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if usesObjExpr(pass, elt, obj) {
					escaped = true
					return false
				}
			}
		}
		return true
	}
	ast.Inspect(body, inspect)
	return escaped
}

func identIs(pass *Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

// usesObjExpr reports whether obj appears anywhere in e, except as the
// receiver of a method call (sp.End(), sp.SetAttr(...)).
func usesObjExpr(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && identIs(pass, sel.X, obj) {
				// Walk only the arguments; the receiver use is benign.
				for _, arg := range call.Args {
					if usesObjExpr(pass, arg, obj) {
						found = true
					}
				}
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func usesObj(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// endState tracks the span through a sequential walk of the function.
type endState int

const (
	statePre    endState = iota // before the creating statement
	stateOpen                   // created, not yet ended
	stateClosed                 // End called (or deferred) on this path
)

type spanWalker struct {
	pass        *Pass
	v           spanVar
	obj         types.Object
	sawEnd      bool
	openReturns []token.Pos
}

func (w *spanWalker) isEndCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	return identIs(w.pass, sel.X, w.obj)
}

func (w *spanWalker) walkStmts(stmts []ast.Stmt, st endState) endState {
	for _, s := range stmts {
		st = w.walkStmt(s, st)
	}
	return st
}

func (w *spanWalker) walkStmt(s ast.Stmt, st endState) endState {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s == w.v.stmt && st == statePre {
			return stateOpen
		}
	case *ast.DeferStmt:
		if w.isEndCall(s.Call) {
			w.sawEnd = true
			return stateClosed
		}
	case *ast.ExprStmt:
		if w.isEndCall(s.X) {
			w.sawEnd = true
			if st != statePre {
				return stateClosed
			}
		}
	case *ast.ReturnStmt:
		if st == stateOpen {
			w.openReturns = append(w.openReturns, s.Pos())
		}
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		bodySt := w.walkStmts(s.Body.List, st)
		elseSt := st
		if s.Else != nil {
			elseSt = w.walkStmt(s.Else, st)
		}
		// `if sp != nil { ...; sp.End() }` is an unconditional End at
		// runtime (End on a nil span is a no-op), so the body's state
		// propagates.
		if s.Else == nil && w.isNilGuard(s.Cond) {
			return bodySt
		}
		if terminates(s.Body) {
			// The branch returned or panicked; only the fallthrough
			// state of the other branch continues.
			return elseSt
		}
		if s.Else != nil && terminatesStmt(s.Else) {
			return bodySt
		}
		return mergeStates(bodySt, elseSt)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		w.walkStmts(s.Body.List, st)
		return st
	case *ast.RangeStmt:
		w.walkStmts(s.Body.List, st)
		return st
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranches(s, st)
	}
	return st
}

// walkBranches handles switch/select: each clause is checked from the
// incoming state; the merged fallthrough state is conservative.
func (w *spanWalker) walkBranches(s ast.Stmt, st endState) endState {
	var bodies []*ast.CaseClause
	var comms []*ast.CommClause
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.walkStmt(s.Init, st)
		}
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause))
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause))
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			comms = append(comms, c.(*ast.CommClause))
		}
	}
	out := st
	for _, c := range bodies {
		out = mergeStates(out, w.walkStmts(c.Body, st))
	}
	for _, c := range comms {
		out = mergeStates(out, w.walkStmts(c.Body, st))
	}
	return out
}

// isNilGuard reports whether cond is `sp != nil` for the tracked span.
func (w *spanWalker) isNilGuard(cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (identIs(w.pass, bin.X, w.obj) && isNil(bin.Y)) ||
		(identIs(w.pass, bin.Y, w.obj) && isNil(bin.X))
}

// mergeStates joins two branch outcomes conservatively: a path that
// may still be open keeps the obligation alive.
func mergeStates(a, b endState) endState {
	if a == stateOpen || b == stateOpen {
		return stateOpen
	}
	if a == stateClosed || b == stateClosed {
		return stateClosed
	}
	return statePre
}

// terminates reports whether the block always transfers control out
// (ends in return or panic).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	return terminatesStmt(b.List[len(b.List)-1])
}

func terminatesStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		return terminates(s.Body) && s.Else != nil && terminatesStmt(s.Else)
	}
	return false
}
