package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of the shared flow-analysis
// layer: a per-function control-flow graph built directly from go/ast,
// precise enough for the concurrency analyzers (lockbal,
// publishfreeze, ctxleak) and the spanend port. It models branches,
// loops, labeled break/continue, goto, switch/type-switch/select,
// panic and return edges, and keeps defer statements in-line so
// dataflow transfer functions can interpret registration order.
//
// Basic blocks hold "own" nodes only: the controlling condition of a
// branch appears in the block that branches, but the branch bodies are
// their own blocks, so walking a block's nodes never re-visits a
// nested statement. Two wrapper node types (RangeHeader,
// SelectHeader) stand in for loop/select headers whose ast node would
// otherwise drag the whole body along.

// Block is one basic block: a maximal straight-line node sequence with
// edges to its successors.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, build order).
	Index int
	// Nodes are the statements and controlling expressions executed in
	// this block, in order. Entries are ast.Stmt, ast.Expr (branch
	// conditions and switch tags), *RangeHeader, or *SelectHeader.
	Nodes []ast.Node
	// Succs are the successor blocks. When Branch is non-nil there are
	// exactly two: Succs[0] on true, Succs[1] on false.
	Succs []*Block
	// Preds are the predecessor blocks.
	Preds []*Block
	// Branch, when non-nil, is the boolean condition that ends this
	// block (if/for condition). It is also the last entry of Nodes.
	Branch ast.Expr
}

// RangeHeader marks the header evaluation of a `for … range X` loop in
// a block's node list without embedding the loop body. Key and Value
// are the iteration variables (possibly nil); X is the ranged operand.
type RangeHeader struct{ R *ast.RangeStmt }

func (h *RangeHeader) Pos() token.Pos { return h.R.Pos() }
func (h *RangeHeader) End() token.Pos { return h.R.X.End() }

// SelectHeader marks a select statement in a block's node list without
// embedding the clause bodies. A select with no default clause blocks
// until one of its communications is ready.
type SelectHeader struct{ S *ast.SelectStmt }

func (h *SelectHeader) Pos() token.Pos { return h.S.Pos() }
func (h *SelectHeader) End() token.Pos { return h.S.Select + 6 }

// HasDefault reports whether the select carries a default clause (and
// therefore never blocks).
func (h *SelectHeader) HasDefault() bool {
	for _, c := range h.S.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// CFG is the control-flow graph of one function body. Nested function
// literals are not descended into; each gets its own CFG.
type CFG struct {
	// Fn is the *ast.FuncDecl or *ast.FuncLit the graph was built from.
	Fn ast.Node
	// Blocks lists every block, Entry first. Blocks unreachable from
	// Entry (e.g. code after an infinite loop) are retained but have no
	// path from Entry.
	Blocks []*Block
	// Entry is where execution starts.
	Entry *Block
	// Exit is the single synthetic exit: every return, panic and the
	// natural end of the body lead here. It holds no nodes.
	Exit *Block
	// FallOff is the block representing the natural end of the function
	// body (execution running past the last statement), or nil when the
	// body always transfers control explicitly.
	FallOff *Block

	comm     map[ast.Stmt]bool // comm statements of select clauses
	panicked map[*Block]bool   // blocks whose edge to Exit is a panic
}

// IsComm reports whether stmt is the communication operation of a
// select clause (and therefore only executes when the select chose it).
func (c *CFG) IsComm(s ast.Stmt) bool { return c.comm[s] }

// PanicExit reports whether b's edge to Exit is a panic rather than a
// return or the natural end of the body.
func (c *CFG) PanicExit(b *Block) bool { return c.panicked[b] }

// NewCFG builds the control-flow graph of fn, which must be an
// *ast.FuncDecl or *ast.FuncLit. A nil or bodyless declaration yields
// a graph with an empty entry wired straight to exit.
func NewCFG(fn ast.Node) *CFG {
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	}
	c := &CFG{Fn: fn, comm: map[ast.Stmt]bool{}, panicked: map[*Block]bool{}}
	b := &cfgBuilder{cfg: c, labels: map[string]*labelInfo{}}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	// Natural end of the body: fall off into Exit.
	if b.cur != nil {
		c.FallOff = b.cur
		b.edge(b.cur, c.Exit)
	}
	b.resolveGotos()
	return c
}

// Reachable returns the set of blocks reachable from Entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	return seen
}

// CanReach reports whether to is reachable from from along CFG edges
// (from itself counts only via a cycle).
func (c *CFG) CanReach(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		for _, s := range b.Succs {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				if walk(s) {
					return true
				}
			}
		}
		return false
	}
	return walk(from)
}

// labelInfo tracks one label: the block the labeled statement starts
// in (the goto/continue anchor) and, once the labeled loop or switch
// is entered, its break/continue targets.
type labelInfo struct {
	block *Block // start of the labeled statement (goto target)
	brk   *Block
	cont  *Block // nil for labeled switch/select
}

// loopFrame is one enclosing breakable construct.
type loopFrame struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select frames
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil after an unconditional control transfer
	labels map[string]*labelInfo
	frames []loopFrame
	gotos  []pendingGoto
	// pendingLabel is the label naming the next loop/switch statement,
	// consumed by the statement builder.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// live returns the current block, materializing an unreachable
// continuation block after a return/break/goto so building can proceed
// (statements placed there simply have no path from Entry).
func (b *cfgBuilder) live() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) { b.live().Nodes = append(b.live().Nodes, n) }

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a loop/switch statement.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushFrame(label string, brk, cont *Block) {
	b.frames = append(b.frames, loopFrame{label: label, brk: brk, cont: cont})
	if label != "" {
		if li := b.labels[label]; li != nil {
			li.brk, li.cont = brk, cont
		}
	}
}

func (b *cfgBuilder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		// Start a fresh block so goto and labeled continue have a
		// stable anchor.
		anchor := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, anchor)
		}
		b.cur = anchor
		b.labels[s.Label.Name] = &labelInfo{block: anchor}
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.live(), b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			blk := b.live()
			b.edge(blk, b.cfg.Exit)
			b.cfg.panicked[blk] = true
			b.cur = nil
		}

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		cond := b.live()
		cond.Nodes = append(cond.Nodes, s.Cond)
		cond.Branch = s.Cond
		then := b.newBlock()
		b.edge(cond, then)
		var els *Block
		if s.Else != nil {
			els = b.newBlock()
			b.edge(cond, els)
		}
		after := b.newBlock()
		if s.Else == nil {
			b.edge(cond, after)
		}
		b.cur = then
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		header := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		body := b.newBlock()
		after := b.newBlock()
		if s.Cond != nil {
			header.Nodes = append(header.Nodes, s.Cond)
			header.Branch = s.Cond
			b.edge(header, body)
			b.edge(header, after)
		} else {
			b.edge(header, body)
		}
		post := header
		if s.Post != nil {
			post = b.newBlock()
		}
		b.pushFrame(label, after, post)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, post)
		}
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			if b.cur != nil {
				b.edge(b.cur, header)
			}
		}
		b.popFrame()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		header := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		header.Nodes = append(header.Nodes, &RangeHeader{R: s})
		body := b.newBlock()
		after := b.newBlock()
		b.edge(header, body)
		b.edge(header, after)
		b.pushFrame(label, after, header)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, header)
		}
		b.popFrame()
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List)

	case *ast.SelectStmt:
		label := b.takeLabel()
		header := b.live()
		sh := &SelectHeader{S: s}
		header.Nodes = append(header.Nodes, sh)
		after := b.newBlock()
		b.pushFrame(label, after, nil)
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(header, blk)
			b.cur = blk
			if clause.Comm != nil {
				b.cfg.comm[clause.Comm] = true
				b.stmt(clause.Comm)
			}
			b.stmtList(clause.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.popFrame()
		// A select with no clauses blocks forever: after is unreachable
		// (no edges were added to it), which models `select {}`.
		b.cur = after

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		if s != nil {
			b.add(s)
		}
	}
}

// switchClauses wires the case clauses of a switch/type switch: every
// clause is entered from the header, fallthrough jumps to the next
// clause body, and a missing default adds the header→after edge.
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt) {
	header := b.live()
	after := b.newBlock()
	b.pushFrame(label, after, nil)
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(header, blocks[i])
		if cc.(*ast.CaseClause).List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(header, after)
	}
	for i, cc := range clauses {
		clause := cc.(*ast.CaseClause)
		b.cur = blocks[i]
		n := len(clause.Body)
		fallsThrough := false
		if n > 0 {
			if br, ok := clause.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		body := clause.Body
		if fallsThrough {
			body = body[:n-1]
		}
		b.stmtList(body)
		if b.cur != nil {
			if fallsThrough && i+1 < len(blocks) {
				b.edge(b.cur, blocks[i+1])
			} else {
				b.edge(b.cur, after)
			}
		}
	}
	b.popFrame()
	b.cur = after
}

// branchStmt handles break, continue, goto (fallthrough is consumed by
// switchClauses).
func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		if t := b.frameTarget(s.Label, true); t != nil {
			b.edge(b.live(), t)
		}
		b.cur = nil
	case token.CONTINUE:
		if t := b.frameTarget(s.Label, false); t != nil {
			b.edge(b.live(), t)
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.live(), label: s.Label.Name})
		}
		b.cur = nil
	}
}

// frameTarget resolves the break/continue target, by label when given,
// else the innermost applicable frame.
func (b *cfgBuilder) frameTarget(label *ast.Ident, isBreak bool) *Block {
	if label != nil {
		li := b.labels[label.Name]
		if li == nil {
			return nil
		}
		if isBreak {
			return li.brk
		}
		return li.cont
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if isBreak {
			return f.brk
		}
		if f.cont != nil {
			return f.cont
		}
	}
	return nil
}

// resolveGotos wires pending goto edges once every label is known.
// Gotos to labels that were never declared (ill-formed code) are
// dropped.
func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if li := b.labels[g.label]; li != nil {
			b.edge(g.from, li.block)
		}
	}
}

// isPanicCall reports whether e is a call to the predeclared panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}
