package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// MetricName enforces the repo's metric naming convention at every
// obs.Registry / obs.Context metric-creation call site: names must be
// literal dotted snake_case ("subsystem.name_unit"), counters must end
// in `_total`, histograms in a unit suffix (`_seconds` or `_bytes`),
// and gauges either carry a unit suffix or appear in the unitless
// whitelist below. The Prometheus exposition derives family names
// mechanically from these strings, so a malformed name is invisible
// until a scrape fails or a dashboard query silently matches nothing —
// the lint makes the convention a compile-time-adjacent check instead.
//
// Only literal names are accepted: a name computed at runtime cannot
// be checked here and cannot be grepped for from a dashboard. Helpers
// that genuinely forward caller-supplied names (the obs package
// itself) are excluded by rule scope, not by suppression.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric name is not literal dotted snake_case with the unit suffix its kind requires (_total/_seconds/_bytes)",
	Run:  runMetricName,
}

// metricNameRE is the shape of a well-formed metric name: dotted
// snake_case segments, each starting with a letter, no leading,
// trailing, or doubled underscores.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*(\.[a-z][a-z0-9]*(_[a-z0-9]+)*)+$`)

// unitlessGauges are gauges whose value is a dimensionless quantity —
// a count of things that exist right now, an epoch number, a pure
// ratio or score — where a unit suffix would be noise. Additions need
// a row here (reviewed like any API change) or a lint:ignore with a
// written reason.
var unitlessGauges = map[string]bool{
	"graph.nodes":               true,
	"graph.edges":               true,
	"mass.gamma":                true,
	"serve.snapshot_epoch":      true,
	"serve.snapshot_hosts":      true,
	"serve.drift_alert":         true,
	"serve.drift_max_z":         true,
	"pagerank.solve_iterations": true,
	"shard.generation":          true,
	"shard.healthy_replicas":    true,
	"serve.ingest_queue_depth":  true,
	"ingest.wal_segments":       true,
}

// metricKinds maps the obs metric-creation methods to the kind whose
// suffix rule applies.
var metricKinds = map[string]string{
	"Counter":       "counter",
	"Gauge":         "gauge",
	"Histogram":     "histogram",
	"HistogramWith": "histogram",
}

// obsMetricCall reports whether call is a metric-creation method on
// obs.Registry or obs.Context, and which kind it creates.
func obsMetricCall(info *types.Info, call *ast.CallExpr) (kind string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	obj, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", false
	}
	kind, isMetric := metricKinds[obj.Name()]
	if !isMetric {
		return "", false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if !namedIn(t, "internal/obs", "Registry") && !namedIn(t, "internal/obs", "Context") {
		return "", false
	}
	return kind, true
}

func runMetricName(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := obsMetricCall(pass.Info, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			lit, isLit := arg.(*ast.BasicLit)
			if !isLit {
				pass.Reportf(arg.Pos(), "%s name must be a string literal so dashboards can grep for it", kind)
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !metricNameRE.MatchString(name) {
				pass.Reportf(lit.Pos(), "metric name %q is not dotted snake_case (want subsystem.name_unit)", name)
				return true
			}
			switch kind {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					pass.Reportf(lit.Pos(), "counter %q must end in _total", name)
				}
			case "histogram":
				if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
					pass.Reportf(lit.Pos(), "histogram %q must end in a unit suffix (_seconds or _bytes)", name)
				}
			case "gauge":
				if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") && !unitlessGauges[name] {
					pass.Reportf(lit.Pos(), "gauge %q needs a unit suffix (_seconds or _bytes) or an entry in the unitless-gauge whitelist", name)
				}
			}
			return true
		})
	}
}
