package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FuncInfo bundles the flow-analysis state of one function: its CFG
// and, built on demand, its reaching-definitions solution. Instances
// are cached per package (shared across the analyzers of one run)
// through Pass.FuncInfo, so the CFG of a function is constructed once
// no matter how many analyzers inspect it.
type FuncInfo struct {
	// Fn is the *ast.FuncDecl or *ast.FuncLit.
	Fn ast.Node
	// Body is the function body (nil for bodyless declarations).
	Body *ast.BlockStmt
	// CFG is the function's control-flow graph.
	CFG *CFG

	pass     *Pass
	reaching *ReachingDefs
}

// Reaching returns the function's reaching-definitions solution,
// computing it on first use.
func (fi *FuncInfo) Reaching() *ReachingDefs {
	if fi.reaching == nil {
		fi.reaching = NewReachingDefs(fi.pass, fi.CFG)
	}
	return fi.reaching
}

// funcCache shares FuncInfo instances across the analyzers run over
// one package.
type funcCache struct {
	infos map[ast.Node]*FuncInfo
}

func newFuncCache() *funcCache { return &funcCache{infos: map[ast.Node]*FuncInfo{}} }

// FuncInfo returns the cached flow-analysis state of fn (an
// *ast.FuncDecl or *ast.FuncLit), building the CFG on first request.
func (p *Pass) FuncInfo(fn ast.Node) *FuncInfo {
	if p.funcs == nil {
		// Standalone pass (tests constructing a Pass by hand): use a
		// private cache.
		p.funcs = newFuncCache()
	}
	if fi := p.funcs.infos[fn]; fi != nil {
		return fi
	}
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	}
	fi := &FuncInfo{Fn: fn, Body: body, CFG: NewCFG(fn), pass: p}
	p.funcs.infos[fn] = fi
	return fi
}

// forEachFunc invokes f for every function declaration and function
// literal with a body in the pass's files, outermost first.
func forEachFunc(pass *Pass, f func(fn ast.Node, body *ast.BlockStmt)) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					f(fn, fn.Body)
				}
			case *ast.FuncLit:
				f(fn, fn.Body)
			}
			return true
		})
	}
}

// exprPath renders a selector/ident chain as a stable key ("r.mu",
// "s.store.mu"); it returns "" for expressions that are not plain
// chains (map index, call results, …), which flow analyses skip
// rather than mis-track.
func exprPath(e ast.Expr) string {
	var parts []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			parts = append(parts, x.Name)
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, ".")
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// methodOn resolves a call of the form recv.Name(...) and reports the
// method name, the receiver expression, and the receiver's type
// (through the type-checker's selection, so embedded promotions
// resolve to the declaring type). ok is false for non-method calls.
func methodOn(info *types.Info, call *ast.CallExpr) (name string, recv ast.Expr, recvType types.Type, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, nil, false
	}
	selection, found := info.Selections[sel]
	if !found || selection.Kind() != types.MethodVal {
		return "", nil, nil, false
	}
	fn, isFn := selection.Obj().(*types.Func)
	if !isFn {
		return "", nil, nil, false
	}
	recvT := fn.Type().(*types.Signature).Recv().Type()
	return fn.Name(), sel.X, recvT, true
}
