package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SyncRename flags the broken half of the atomic-persist idiom: a file
// is created, written, and renamed into place without an intervening
// File.Sync. The rename makes the new name durable on the next
// directory flush, but the data blocks behind it are only guaranteed
// by fsync on the file itself — a crash between Close and journal
// writeback can publish the final name pointing at a torn or empty
// file. The durable order is write temp → Sync → Close → Rename (→
// fsync the directory).
//
// The check is function-local and name-based: an os.Rename whose
// source path matches the creation path of an *os.File opened in the
// same function (os.Create / os.OpenFile / os.CreateTemp, the latter
// matched through File.Name) is reported when that handle never
// receives a Sync call. Handles that escape the function — passed to
// another call, returned, stored elsewhere — transfer the obligation
// and are not checked.
var SyncRename = &Analyzer{
	Name: "syncrename",
	Doc:  "temp file renamed into place without File.Sync (crash can publish a torn or empty file)",
	Run:  runSyncRename,
}

// fileCreators are the os functions whose result handle we track; the
// index is the position of the path argument (-1: path unknown until
// File.Name).
var fileCreators = map[string]int{
	"Create":     0,
	"OpenFile":   0,
	"CreateTemp": -1,
}

// syncFileVar is one *os.File local opened in the function body.
type syncFileVar struct {
	obj      types.Object
	pathExpr ast.Expr // the path argument at creation; nil for CreateTemp
	name     string
}

func runSyncRename(pass *Pass) {
	forEachFunc(pass, func(fn ast.Node, body *ast.BlockStmt) {
		checkSyncRename(pass, body)
	})
}

func checkSyncRename(pass *Pass, body *ast.BlockStmt) {
	files := findFileVars(pass, body)
	if len(files) == 0 {
		return
	}
	aliases := findNameAliases(pass, body, files)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := calleeName(pass.Info, call)
		if !ok || pkg != "os" || name != "Rename" || len(call.Args) != 2 {
			return true
		}
		f := matchRenameSource(pass, call.Args[0], files, aliases)
		if f == nil {
			return true
		}
		if fileHasSync(pass, body, f.obj) || fileEscapes(pass, body, f) {
			return true
		}
		pass.Reportf(call.Pos(), "%s is renamed into place without File.Sync; a crash can publish a torn or empty file (write → Sync → Close → Rename)", f.name)
		return true
	})
}

// findFileVars collects `f, err := os.Create(...)`-shaped statements
// anywhere in the body, including nested blocks and closures.
func findFileVars(pass *Pass, body *ast.BlockStmt) []*syncFileVar {
	var out []*syncFileVar
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) < 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := calleeName(pass.Info, call)
		if !ok || pkg != "os" {
			return true
		}
		pathIdx, ok := fileCreators[name]
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil {
			return true
		}
		v := &syncFileVar{obj: obj, name: id.Name}
		if pathIdx >= 0 && pathIdx < len(call.Args) {
			v.pathExpr = call.Args[pathIdx]
		}
		out = append(out, v)
		return true
	})
	return out
}

// findNameAliases maps path variables assigned from f.Name() back to
// their file handle, so `tmp := f.Name(); os.Rename(tmp, ...)` links
// a CreateTemp handle to the rename.
func findNameAliases(pass *Pass, body *ast.BlockStmt, files []*syncFileVar) map[types.Object]*syncFileVar {
	out := map[types.Object]*syncFileVar{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		f := nameCallOf(pass, as.Rhs[0], files)
		if f == nil {
			return true
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj != nil {
			out[obj] = f
		}
		return true
	})
	return out
}

// nameCallOf recognizes `f.Name()` for one of the tracked handles.
func nameCallOf(pass *Pass, e ast.Expr, files []*syncFileVar) *syncFileVar {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Name" {
		return nil
	}
	for _, f := range files {
		if identIs(pass, sel.X, f.obj) {
			return f
		}
	}
	return nil
}

// matchRenameSource links the rename's source path back to a tracked
// handle: the exact creation-path expression, an alias of f.Name(),
// or a direct f.Name() call.
func matchRenameSource(pass *Pass, src ast.Expr, files []*syncFileVar, aliases map[types.Object]*syncFileVar) *syncFileVar {
	if f := nameCallOf(pass, src, files); f != nil {
		return f
	}
	if id, ok := ast.Unparen(src).(*ast.Ident); ok {
		if f := aliases[pass.Info.Uses[id]]; f != nil {
			return f
		}
	}
	srcStr := types.ExprString(ast.Unparen(src))
	for _, f := range files {
		if f.pathExpr != nil && types.ExprString(ast.Unparen(f.pathExpr)) == srcStr {
			return f
		}
	}
	return nil
}

// fileHasSync reports whether the handle receives a Sync call anywhere
// in the body — direct, deferred, or inside a closure. Path
// sensitivity is deliberately not attempted: the invariant is about
// the idiom being present at all.
func fileHasSync(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "Sync" && identIs(pass, sel.X, obj) {
			found = true
		}
		return !found
	})
	return found
}

// fileEscapes reports whether the handle's durability obligation
// leaves the function: passed as a call argument (a helper may sync
// it), returned, or stored into another variable or structure. Method
// calls on the handle itself (Write, Close, Sync, Name, …) do not
// escape.
func fileEscapes(pass *Pass, body *ast.BlockStmt, v *syncFileVar) bool {
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && identIs(pass, sel.X, v.obj) {
				return true // method on the handle; arguments checked below as their own nodes
			}
			for _, arg := range n.Args {
				if identIs(pass, arg, v.obj) {
					escaped = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if identIs(pass, res, v.obj) {
					escaped = true
					return false
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !identIs(pass, rhs, v.obj) {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && pass.Info.Defs[id] == v.obj {
						continue // the creating statement itself
					}
				}
				escaped = true
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && identIs(pass, n.X, v.obj) {
				escaped = true
				return false
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if identIs(pass, elt, v.obj) {
					escaped = true
					return false
				}
				if kv, ok := elt.(*ast.KeyValueExpr); ok && identIs(pass, kv.Value, v.obj) {
					escaped = true
					return false
				}
			}
		}
		return true
	})
	return escaped
}
