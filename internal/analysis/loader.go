package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the import path ("spammass/internal/mass").
	Path string
	// Fset positions Files (shared with the loader).
	Fset *token.FileSet
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Files is the parsed syntax: non-test files surviving build-tag
	// filtering, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds type-checker results for Files.
	Info *types.Info
}

// Loader parses and type-checks module packages from source, resolving
// module-internal imports recursively and standard-library imports via
// the compiler's export data (with a pure source-importer fallback).
// It depends only on the standard library.
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Module is the module path declared in go.mod.
	Module string
	// Fset positions all parsed files.
	Fset *token.FileSet
	// Tags are the build tags considered satisfied, in addition to the
	// host GOOS/GOARCH and release tags (e.g. "vectorcheck").
	Tags map[string]bool

	std     types.Importer
	stdSrc  types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader for the module rooted at root. tags lists
// extra build tags to satisfy when selecting files.
func NewLoader(root string, tags ...string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Root:    abs,
		Module:  mod,
		Fset:    token.NewFileSet(),
		Tags:    map[string]bool{},
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	for _, t := range tags {
		l.Tags[t] = true
	}
	l.std = importer.Default()
	return l, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// a go.mod file.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadAll loads every package of the module: each directory under Root
// holding non-test .go files, skipping testdata, hidden directories,
// and .git.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (name == "testdata" || name == ".git" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// LoadDir parses and type-checks the package in dir. It returns nil
// (no error) for a directory whose files are all excluded by build
// constraints.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	return l.load(path, abs)
}

func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.Root)
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) dirFor(path string) string {
	if path == l.Module {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !l.fileIncluded(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := &types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: l.Fset, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importPkg resolves one import: module-internal paths are loaded from
// source, everything else goes to the compiler's export data, falling
// back to type-checking the standard library from GOROOT source.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.load(path, l.dirFor(path))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no buildable files in %s", path)
		}
		return pkg.Types, nil
	}
	tpkg, err := l.std.Import(path)
	if err == nil {
		return tpkg, nil
	}
	if l.stdSrc == nil {
		l.stdSrc = importer.ForCompiler(l.Fset, "source", nil)
	}
	return l.stdSrc.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// fileIncluded evaluates the file's //go:build constraint (if any)
// against the loader's tag set. Files without a constraint are always
// included.
func (l *Loader) fileIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return false
			}
			if !expr.Eval(l.tagSatisfied) {
				return false
			}
		}
	}
	return true
}

func (l *Loader) tagSatisfied(tag string) bool {
	if l.Tags[tag] {
		return true
	}
	switch tag {
	case runtime.GOOS, runtime.GOARCH:
		return true
	case "unix":
		// Close enough for this module's purposes: the repo is
		// developed and gated on unix-like hosts.
		return runtime.GOOS != "windows" && runtime.GOOS != "plan9"
	}
	// Release tags: every go1.x directive a file in this module could
	// carry is satisfied by the toolchain that builds it.
	return strings.HasPrefix(tag, "go1.")
}
