package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const ignoreSrc = `package p

// lint:ignore
var a int

// lint:ignore floatcmp
var b int

// lint:ignore nosuch some reason
var c int

// lint:ignore floatcmp a real reason
var d int

var e int // lint:ignore floatcmp trailing directive with reason
`

func parseIgnoreSrc(t *testing.T) (*token.FileSet, ignoreIndex, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	var diags []Diagnostic
	idx := collectIgnores(fset, []*ast.File{f}, map[string]bool{"floatcmp": true}, func(d Diagnostic) {
		diags = append(diags, d)
	})
	return fset, idx, diags
}

func TestCollectIgnores(t *testing.T) {
	_, idx, diags := parseIgnoreSrc(t)

	// Three malformed directives: no analyzer, no reason, unknown name.
	if len(diags) != 3 {
		t.Fatalf("want 3 malformed-directive diagnostics, got %d: %v", len(diags), diags)
	}
	for i, wantSub := range []string{"malformed lint:ignore", "malformed lint:ignore", "unknown analyzer nosuch"} {
		if !strings.Contains(diags[i].Message, wantSub) {
			t.Errorf("diag %d = %q, want substring %q", i, diags[i].Message, wantSub)
		}
		if diags[i].Analyzer != "lint" {
			t.Errorf("diag %d analyzer = %q, want \"lint\"", i, diags[i].Analyzer)
		}
	}

	// The two well-formed directives are indexed with their reasons.
	byLine := idx["p.go"]
	if byLine == nil {
		t.Fatal("no directives indexed for p.go")
	}
	var reasons []string
	for _, dirs := range byLine {
		for _, d := range dirs {
			if d.analyzer != "floatcmp" {
				t.Errorf("indexed directive for %q, want floatcmp", d.analyzer)
			}
			reasons = append(reasons, d.reason)
		}
	}
	if len(reasons) != 2 {
		t.Fatalf("want 2 indexed directives, got %d", len(reasons))
	}
}

func TestSuppressed(t *testing.T) {
	_, idx, _ := parseIgnoreSrc(t)

	// Directive above line 13 ("lint:ignore floatcmp a real reason")
	// covers diagnostics on its own line and the line below.
	mk := func(line int, analyzer string) Diagnostic {
		return Diagnostic{
			Analyzer: analyzer,
			Pos:      token.Position{Filename: "p.go", Line: line},
		}
	}
	if !idx.suppressed(mk(13, "floatcmp")) {
		t.Error("diagnostic on the line below a directive should be suppressed")
	}
	if !idx.suppressed(mk(12, "floatcmp")) {
		t.Error("diagnostic on the directive's own line should be suppressed")
	}
	if idx.suppressed(mk(14, "floatcmp")) {
		t.Error("directive must not reach two lines down")
	}
	if idx.suppressed(mk(13, "spanend")) {
		t.Error("directive for floatcmp must not suppress spanend")
	}
	if !idx.suppressed(mk(15, "floatcmp")) {
		t.Error("trailing directive should cover its own line")
	}
	if !idx.suppressed(mk(16, "floatcmp")) {
		t.Error("trailing directive should cover the line below too")
	}
	if idx.suppressed(mk(17, "floatcmp")) {
		t.Error("trailing directive must not reach two lines down")
	}
}

func TestRuleApplies(t *testing.T) {
	r := Rule{
		Analyzer: FloatCmp,
		Include:  []string{"spammass/internal"},
		Exclude:  []string{"spammass/internal/cliobs"},
	}
	cases := []struct {
		path string
		want bool
	}{
		{"spammass/internal/mass", true},
		{"spammass/internal", true},
		{"spammass/internal/cliobs", false},
		{"spammass/internal/cliobs/sub", false},
		{"spammass/cmd/spamlint", false},
		{"spammass/internalx", false},
	}
	for _, c := range cases {
		if got := r.applies(c.path); got != c.want {
			t.Errorf("applies(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
