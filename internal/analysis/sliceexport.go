package analysis

import (
	"go/ast"
	"go/types"
)

// SliceExport flags exported functions and methods that return a
// numeric slice ([]float64, []uint32, pagerank.Vector, …) aliasing a
// struct field of the receiver or a parameter without cloning it.
//
// This is the Estimates-aliasing bug class: a caller that mutates the
// returned vector in place (Scale, Sub, sort) silently corrupts the
// internal state it aliases, perturbing every later computation that
// reads it — exactly the small-numerical-perturbation failure mode
// that skews M̃ = p − p'. Return a clone, or suppress with a written
// reason when the aliasing is intentional and documented (e.g. CSR
// adjacency views on the hot path).
var SliceExport = &Analyzer{
	Name: "sliceexport",
	Doc:  "exported function returns an internal numeric slice field without cloning",
	Run:  runSliceExport,
}

func runSliceExport(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			owned := ownedObjects(pass, fn)
			if len(owned) == 0 {
				continue
			}
			// Inspect return statements of the function itself, not of
			// nested function literals (their results go elsewhere).
			var inspect func(n ast.Node) bool
			inspect = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						checkReturnedExpr(pass, fn, owned, res)
					}
				}
				return true
			}
			ast.Inspect(fn.Body, inspect)
		}
	}
}

// ownedObjects collects the receiver and parameter objects whose
// fields count as internal state of the function's owner.
func ownedObjects(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	owned := map[types.Object]bool{}
	add := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, fld := range fields.List {
			for _, name := range fld.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	if fn.Recv != nil {
		add(fn.Recv)
	}
	add(fn.Type.Params)
	return owned
}

func checkReturnedExpr(pass *Pass, fn *ast.FuncDecl, owned map[types.Object]bool, res ast.Expr) {
	res = ast.Unparen(res)
	elem, ok := numericSliceElem(pass.TypeOf(res))
	if !ok {
		return
	}
	// The aliasing shapes: `return x.field` and `return x.field[i:j]`
	// where x is the receiver or a parameter.
	var sel *ast.SelectorExpr
	switch e := res.(type) {
	case *ast.SelectorExpr:
		sel = e
	case *ast.SliceExpr:
		if s, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
			sel = s
		}
	}
	if sel == nil || fieldSelection(pass.Info, sel) == nil {
		return
	}
	root := rootIdent(sel.X)
	if root == nil || !owned[pass.Info.Uses[root]] {
		return
	}
	pass.Reportf(res.Pos(), "exported %s returns internal []%s field %s.%s without cloning; callers mutating it corrupt internal state",
		fn.Name.Name, elem, root.Name, sel.Sel.Name)
}
