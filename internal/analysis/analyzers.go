package analysis

// All returns every analyzer the suite ships, in the order they are
// listed by `spamlint -list`.
func All() []*Analyzer {
	return []*Analyzer{
		SliceExport, FloatCmp, F32Acc, SolveErr, SpanEnd, PrintCall, MetricName,
		PublishFreeze, LockBal, AtomicMix, CtxLeak, SyncRename,
	}
}
