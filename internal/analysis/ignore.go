package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	// lint:ignore <analyzer> <reason>
//
// The directive suppresses diagnostics of the named analyzer on the
// same line (trailing comment) or on the line directly below (comment
// on its own line above the flagged code). The reason is mandatory: a
// suppression without one is itself reported.
const ignorePrefix = "lint:ignore"

type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
}

// ignoreIndex maps file name → line → directives on that line.
type ignoreIndex map[string]map[int][]ignoreDirective

// collectIgnores scans the comments of files for lint:ignore
// directives. Malformed directives (missing analyzer or reason, or an
// analyzer name not in known) are reported as diagnostics of the
// pseudo-analyzer "lint".
func collectIgnores(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Diagnostic)) ignoreIndex {
	idx := ignoreIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
				text = strings.TrimSuffix(text, "*/")
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed lint:ignore directive: want `lint:ignore <analyzer> <reason>`",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					report(Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "lint:ignore names unknown analyzer " + name,
					})
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]ignoreDirective{}
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], ignoreDirective{
					analyzer: name,
					reason:   strings.TrimSpace(strings.TrimPrefix(rest, " "+name)),
					pos:      pos,
				})
			}
		}
	}
	return idx
}

// suppressed reports whether d is covered by a directive on its line
// or the line above.
func (idx ignoreIndex) suppressed(d Diagnostic) bool {
	return idx.directive(d) != nil
}

// directive returns the lint:ignore directive covering d (on its line
// or the line above), or nil.
func (idx ignoreIndex) directive(d Diagnostic) *ignoreDirective {
	byLine := idx[d.Pos.Filename]
	if byLine == nil {
		return nil
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for i := range byLine[line] {
			if byLine[line][i].analyzer == d.Analyzer {
				return &byLine[line][i]
			}
		}
	}
	return nil
}
