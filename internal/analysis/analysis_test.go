package analysis_test

import (
	"testing"

	"spammass/internal/analysis"
	"spammass/internal/analysis/analysistest"
)

// Golden tests: each analyzer against its fixture package under
// testdata/src. Every fixture mixes positive cases (want comments),
// negative cases (clean idioms), and a lint:ignore suppression.

func TestSliceExportGolden(t *testing.T) { analysistest.Run(t, "sliceexport", analysis.SliceExport) }

func TestFloatCmpGolden(t *testing.T) { analysistest.Run(t, "floatcmp", analysis.FloatCmp) }

func TestF32AccGolden(t *testing.T) { analysistest.Run(t, "f32acc", analysis.F32Acc) }

func TestSolveErrGolden(t *testing.T) { analysistest.Run(t, "solveerr", analysis.SolveErr) }

func TestSpanEndGolden(t *testing.T) { analysistest.Run(t, "spanend", analysis.SpanEnd) }

func TestPrintCallGolden(t *testing.T) { analysistest.Run(t, "printcall", analysis.PrintCall) }

func TestMetricNameGolden(t *testing.T) { analysistest.Run(t, "metricname", analysis.MetricName) }

func TestPublishFreezeGolden(t *testing.T) {
	analysistest.Run(t, "publishfreeze", analysis.PublishFreeze)
}

func TestLockBalGolden(t *testing.T) { analysistest.Run(t, "lockbal", analysis.LockBal) }

func TestAtomicMixGolden(t *testing.T) { analysistest.Run(t, "atomicmix", analysis.AtomicMix) }

func TestCtxLeakGolden(t *testing.T) { analysistest.Run(t, "ctxleak", analysis.CtxLeak) }

func TestSyncRenameGolden(t *testing.T) { analysistest.Run(t, "syncrename", analysis.SyncRename) }

// TestModuleIsClean is the lint gate as a test: the default rule set
// over the whole module must produce zero diagnostics. Any new finding
// must be fixed or carry a written lint:ignore reason.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("building loader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d packages; loader is missing most of the module", len(pkgs))
	}
	for _, d := range analysis.Run(analysis.DefaultRules(), pkgs) {
		t.Errorf("module not lint-clean: %s", d)
	}
}

// TestAllAnalyzersRegistered pins the suite: DefaultRules must cover
// every analyzer in All, so `make lint` cannot silently drop one.
func TestAllAnalyzersRegistered(t *testing.T) {
	ruled := map[string]bool{}
	for _, r := range analysis.DefaultRules() {
		ruled[r.Analyzer.Name] = true
	}
	for _, a := range analysis.All() {
		if !ruled[a.Name] {
			t.Errorf("analyzer %s is in All() but has no default rule", a.Name)
		}
	}
	if len(analysis.All()) < 11 {
		t.Errorf("expected at least 11 analyzers, have %d", len(analysis.All()))
	}
}
