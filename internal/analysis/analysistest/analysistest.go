// Package analysistest is the golden-test harness for spamlint
// analyzers: it loads a fixture package from
// internal/analysis/testdata/src/<name>, runs one analyzer over it,
// and compares the (suppression-filtered) diagnostics against
// `// want "regexp"` comments in the fixture sources.
//
// Every line that should be flagged carries a want comment whose
// regular expression must match the diagnostic message; lines without
// a want comment must produce no diagnostic. A fixture therefore
// encodes positive and negative cases side by side.
package analysistest

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"spammass/internal/analysis"
)

// Run loads testdata/src/<fixture> relative to the analysis package
// and checks analyzer a against the fixture's want comments.
func Run(t *testing.T, fixture string, a *analysis.Analyzer) {
	t.Helper()
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", fixture)
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("building loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no buildable files", fixture)
	}
	diags := analysis.Run([]analysis.Rule{{Analyzer: a}}, []*analysis.Package{pkg})
	wants := collectWants(t, pkg.Fset, pkg.Files)

	matched := map[*want]bool{}
	for _, d := range diags {
		w := findWant(wants, matched, d)
		if w == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRE extracts the quoted patterns of a want comment:
// `// want "a" "b"`.
var wantRE = regexp.MustCompile(`want\s+(.*)`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := wantRE.FindStringSubmatch(text)
				if m == nil || !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// splitQuoted parses the pattern list of a want comment. Patterns are
// double-quoted (Go string syntax, escapes honored) or backquoted
// (taken verbatim, convenient for regexps).
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s:%d: malformed want comment near %q", pos.Filename, pos.Line, s)
		}
		end := 1
		for end < len(s) && s[end] != quote {
			if quote == '"' && s[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(s) {
			t.Fatalf("%s:%d: unterminated want pattern", pos.Filename, pos.Line)
		}
		q := s[1:end]
		if quote == '"' {
			var err error
			q, err = strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, s[:end+1], err)
			}
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// findWant returns an unmatched want on the diagnostic's line whose
// pattern matches the message (so several wants can share a line).
func findWant(wants []*want, matched map[*want]bool, d analysis.Diagnostic) *want {
	for _, w := range wants {
		if !matched[w] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			return w
		}
	}
	return nil
}
