package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockBal verifies mutex discipline on the shared CFG, per function:
//
//   - every sync.Mutex/RWMutex Lock (and RLock) reaches a matching
//     Unlock (RUnlock) on every return path, defer-aware;
//   - no lock is acquired twice on a path without an intervening
//     unlock (self-deadlock);
//   - no lock is held across a blocking operation: a channel send or
//     receive, a select without a default clause, an http.Client
//     round-trip, or a pagerank.Engine solve (Solve, SolveConfig,
//     SolveMany, SolveManyConfig, Refine) — the serving tier's
//     publish/refresh locks must never wait on I/O or a solver.
//
// The analysis is intra-procedural and tracks locks by receiver path
// ("r.mu", "s.store.mu"); locks reached through map indexing or call
// results are skipped rather than mis-tracked. `mu.TryLock()` used as
// a branch condition refines only the true edge to "held".
var LockBal = &Analyzer{
	Name: "lockbal",
	Doc:  "mutex not unlocked on every path, locked twice, or held across a blocking call",
	Run:  runLockBal,
}

// lockState is the per-path state of the tracked locks: key → how the
// lock is held. Maps are treated as immutable; transfer clones.
type lockState map[string]lockMode

type lockMode uint8

const (
	lockHeld     lockMode = 1 << iota // locked, needs explicit unlock
	lockDeferred                      // locked, unlock deferred to exit
)

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s lockState) equal(o lockState) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		if o[k] != v {
			return false
		}
	}
	return true
}

// mergeLockStates joins two paths: a lock held on either side stays
// held (conservative — the obligation survives), with the deferred bit
// kept only when both sides deferred.
func mergeLockStates(a, b lockState) lockState {
	out := make(lockState, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if prev, ok := out[k]; ok {
			if prev&lockDeferred != 0 && v&lockDeferred != 0 {
				out[k] = lockDeferred
			} else {
				out[k] = lockHeld
			}
		} else {
			out[k] = v
		}
	}
	return out
}

// lockOp classifies one call as a lock-set mutation.
type lockOp struct {
	key     string // "r.mu" + "/r" suffix for read locks
	display string // "r.mu" or "r.mu (RLock)" for diagnostics
	acquire bool
	try     bool
}

func runLockBal(pass *Pass) {
	forEachFunc(pass, func(fn ast.Node, body *ast.BlockStmt) {
		checkLocksIn(pass, fn, body)
	})
}

// classifyLockCall recognizes Lock/Unlock/RLock/RUnlock/TryLock/
// TryRLock calls on sync.Mutex and sync.RWMutex receivers (including
// embedded promotions) with a trackable receiver path.
func classifyLockCall(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	name, recv, recvType, ok := methodOn(pass.Info, call)
	if !ok {
		return lockOp{}, false
	}
	if !namedIn(recvType, "sync", "Mutex") && !namedIn(recvType, "sync", "RWMutex") {
		return lockOp{}, false
	}
	path := exprPath(recv)
	if path == "" {
		return lockOp{}, false
	}
	op := lockOp{key: path, display: path}
	switch name {
	case "Lock":
		op.acquire = true
	case "Unlock":
	case "TryLock":
		op.acquire, op.try = true, true
	case "RLock":
		op.acquire = true
		op.key += "/r"
		op.display += " (RLock)"
	case "RUnlock":
		op.key += "/r"
		op.display += " (RLock)"
	case "TryRLock":
		op.acquire, op.try = true, true
		op.key += "/r"
		op.display += " (RLock)"
	default:
		return lockOp{}, false
	}
	return op, true
}

func checkLocksIn(pass *Pass, fn ast.Node, body *ast.BlockStmt) {
	// Screen: skip the dataflow entirely for functions without lock
	// calls (the overwhelmingly common case).
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n != fn {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, isLock := classifyLockCall(pass, call); isLock {
				found = true
			}
		}
		return !found
	})
	if !found {
		return
	}

	fi := pass.FuncInfo(fn)
	cfg := fi.CFG
	lb := &lockChecker{pass: pass, cfg: cfg}
	res := ForwardSolve(cfg, FlowProblem[lockState]{
		Entry: lockState{},
		Transfer: func(b *Block, in lockState) lockState {
			st := in.clone()
			for _, n := range b.Nodes {
				lb.step(n, st, nil)
			}
			return st
		},
		Edge:  lb.refineEdge,
		Merge: mergeLockStates,
		Equal: func(a, b lockState) bool { return a.equal(b) },
	})

	// Replay reachable blocks with reporting enabled. Diagnostics are
	// deduplicated per (position, message) since a block may be
	// replayed once per fixpoint but reported once.
	reported := map[string]bool{}
	report := func(pos ast.Node, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := pass.Fset.Position(pos.Pos()).String() + msg
		if reported[key] {
			return
		}
		reported[key] = true
		pass.Reportf(pos.Pos(), "%s", msg)
	}
	for _, b := range cfg.Blocks {
		in, reachable := res.In[b]
		if !reachable {
			continue
		}
		st := in.clone()
		for _, n := range b.Nodes {
			lb.step(n, st, report)
		}
	}
	// The natural end of the body must not hold any lock either (a
	// function falling off its last statement with a lock held is the
	// same leak as an early return).
	if fo := cfg.FallOff; fo != nil {
		if out, ok := res.Out[fo]; ok {
			var keys []string
			for k, mode := range out {
				if mode&lockHeld != 0 && mode&lockDeferred == 0 {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			for _, k := range keys {
				report(body, "%s is still locked when the function falls off the end of its body", displayOf(k))
			}
		}
	}
}

// displayOf reverses the "/r" key suffix for diagnostics.
func displayOf(key string) string {
	if len(key) > 2 && key[len(key)-2:] == "/r" {
		return key[:len(key)-2] + " (RLock)"
	}
	return key
}

type lockChecker struct {
	pass *Pass
	cfg  *CFG
}

// step interprets one block node, mutating st in place. When report is
// non-nil the replay is authoritative and diagnostics are emitted.
func (lb *lockChecker) step(n ast.Node, st lockState, report func(ast.Node, string, ...any)) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		if op, ok := classifyLockCall(lb.pass, n.Call); ok && !op.acquire {
			// defer mu.Unlock(): the obligation is discharged at every
			// exit from here on.
			if st[op.key]&lockHeld != 0 {
				st[op.key] = lockDeferred
			}
		}
		return
	case *ast.ExprStmt:
		call, ok := ast.Unparen(n.X).(*ast.CallExpr)
		if !ok {
			lb.checkBlocking(n, st, report)
			return
		}
		if op, ok := classifyLockCall(lb.pass, call); ok {
			if op.acquire && !op.try {
				if report != nil && st[op.key]&lockHeld != 0 && st[op.key]&lockDeferred == 0 {
					report(n, "%s is locked twice on this path with no unlock between (self-deadlock)", op.display)
				}
				st[op.key] = lockHeld
			} else if !op.acquire {
				delete(st, op.key)
			}
			return
		}
		lb.checkBlocking(n, st, report)
		return
	case *ast.ReturnStmt:
		if report != nil {
			var keys []string
			for k, mode := range st {
				if mode&lockHeld != 0 && mode&lockDeferred == 0 {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			for _, k := range keys {
				report(n, "%s is still locked on this return path; unlock it before returning or use defer", displayOf(k))
			}
		}
		return
	}
	lb.checkBlocking(n, st, report)
}

// refineEdge specializes `if mu.TryLock() { … }`: the lock is held
// only on the true edge.
func (lb *lockChecker) refineEdge(b *Block, succ int, out lockState) lockState {
	if b.Branch == nil {
		return out
	}
	call, ok := ast.Unparen(b.Branch).(*ast.CallExpr)
	if !ok {
		return out
	}
	op, ok := classifyLockCall(lb.pass, call)
	if !ok || !op.try {
		return out
	}
	refined := out.clone()
	if succ == 0 {
		refined[op.key] = lockHeld
	} else {
		delete(refined, op.key)
	}
	return refined
}

// checkBlocking reports any tracked lock held across a blocking
// operation found in n's own expressions (nested function literals are
// not descended into — they run later, without the lock necessarily
// held).
func (lb *lockChecker) checkBlocking(n ast.Node, st lockState, report func(ast.Node, string, ...any)) {
	// A deferred unlock still holds the lock until the function exits,
	// so every tracked key counts here.
	if report == nil || len(st) == 0 {
		return
	}
	desc, site := lb.findBlocking(n)
	if desc == "" {
		return
	}
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		report(site, "%s is held across %s; a blocked holder stalls every contender", displayOf(k), desc)
	}
}

// findBlocking locates the first blocking operation in n's own
// subtree: channel send/receive (outside select comms), select without
// default, http.Client round-trips, pagerank.Engine solves.
func (lb *lockChecker) findBlocking(n ast.Node) (desc string, site ast.Node) {
	switch h := n.(type) {
	case *SelectHeader:
		if !h.HasDefault() {
			return "a select with no default clause", h.S
		}
		return "", nil
	case *RangeHeader:
		// Ranging over a channel blocks between elements.
		if t := lb.pass.TypeOf(h.R.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return "a range over a channel", h.R
			}
		}
		return "", nil
	}
	if stmt, ok := n.(ast.Stmt); ok && lb.cfg.IsComm(stmt) {
		// The comm op of a select clause only runs once chosen; the
		// select header already accounted for the blocking.
		return "", nil
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if desc != "" {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			desc, site = "a channel send", m
			return false
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				desc, site = "a channel receive", m
				return false
			}
		case *ast.CallExpr:
			if d := lb.blockingCall(m); d != "" {
				desc, site = d, m
				return false
			}
		}
		return true
	})
	return desc, site
}

// blockingCall names calls that block by contract: http.Client
// round-trips and pagerank.Engine solver entry points.
func (lb *lockChecker) blockingCall(call *ast.CallExpr) string {
	name, _, recvType, ok := methodOn(lb.pass.Info, call)
	if !ok {
		return ""
	}
	if namedIn(recvType, "net/http", "Client") {
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head", "CloseIdleConnections":
			return "an http.Client round-trip (" + name + ")"
		}
	}
	if namedIn(recvType, "internal/pagerank", "Engine") {
		switch name {
		case "Solve", "SolveConfig", "SolveMany", "SolveManyConfig", "Refine":
			return "a pagerank.Engine solve (" + name + ")"
		}
	}
	return ""
}
