package analysis

import (
	"go/ast"
	"go/types"
)

// PublishFreeze enforces the snapshot-immutability invariant of the
// serving tier: once a value has been published to readers — passed to
// serve's Store.Publish, or stored into an atomic.Pointer /
// atomic.Value via Store, Swap, or CompareAndSwap — nothing may write
// through it. Concurrent readers hold the same pointer; a
// write-after-publish is a torn read served to them, and the race
// detector only catches the schedules it happens to run.
//
// The check is flow-sensitive on the shared CFG: writes before the
// publish (the builder filling the snapshot in) are fine, writes on
// paths the publish cannot reach are fine, and rebinding the variable
// to a fresh value ends the obligation (reaching definitions decide
// whether the published definition still reaches the write). Writes
// through retained views — a local assigned the published value's
// slice, map, or field before or after the publish — are flagged via
// the alias set.
var PublishFreeze = &Analyzer{
	Name: "publishfreeze",
	Doc:  "value written after being published to readers (Store.Publish / atomic store)",
	Run:  runPublishFreeze,
}

func runPublishFreeze(pass *Pass) {
	forEachFunc(pass, func(fn ast.Node, body *ast.BlockStmt) {
		checkPublishesIn(pass, fn, body)
	})
}

// publishSite is one publish of a local variable.
type publishSite struct {
	node ast.Node   // the statement containing the publish call
	call *ast.CallExpr
	obj  *types.Var // the published local
	// defs are the definitions of obj reaching the publish: a later
	// write is only a violation while one of these still reaches it.
	defs map[ast.Node]bool
	// aliases maps locals that view obj's memory to the assignment
	// that created the view.
	aliases map[types.Object]ast.Node
}

// publishedArg recognizes a publishing call and returns the published
// expression: Store.Publish(v) on serve's Store, and Store(v) /
// Swap(v) / CompareAndSwap(old, v) on atomic.Pointer or atomic.Value.
func publishedArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	name, _, recvType, ok := methodOn(info, call)
	if !ok {
		return nil, false
	}
	if namedIn(recvType, "internal/serve", "Store") && name == "Publish" && len(call.Args) == 1 {
		return call.Args[0], true
	}
	if namedIn(recvType, "sync/atomic", "Pointer") || namedIn(recvType, "sync/atomic", "Value") {
		switch name {
		case "Store", "Swap":
			if len(call.Args) == 1 {
				return call.Args[0], true
			}
		case "CompareAndSwap":
			if len(call.Args) == 2 {
				return call.Args[1], true
			}
		}
	}
	return nil, false
}

func checkPublishesIn(pass *Pass, fn ast.Node, body *ast.BlockStmt) {
	// Collect publish sites whose argument is a trackable local.
	var sites []*publishSite
	var fi *FuncInfo
	for _, s := range collectPublishCalls(body) {
		arg, isPublish := publishedArg(pass.Info, s)
		if !isPublish {
			continue
		}
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		obj, ok := objectOf(pass, id).(*types.Var)
		if !ok || obj.IsField() {
			continue
		}
		if fi == nil {
			fi = pass.FuncInfo(fn)
		}
		stmt := enclosingNode(fi.CFG, s)
		if stmt == nil {
			continue // publish in dead code or a nested literal
		}
		sites = append(sites, &publishSite{
			node:    stmt,
			call:    s,
			obj:     obj,
			defs:    fi.Reaching().DefsAt(stmt, obj),
			aliases: AliasSet(pass.Info, body, obj),
		})
	}
	if len(sites) == 0 {
		return
	}

	// Forward dataflow: the fact is the set of publish sites that have
	// executed on this path.
	type pubFact map[*publishSite]bool
	clone := func(f pubFact) pubFact {
		out := make(pubFact, len(f))
		for k := range f {
			out[k] = true
		}
		return out
	}
	res := ForwardSolve(fi.CFG, FlowProblem[pubFact]{
		Entry: pubFact{},
		Transfer: func(b *Block, in pubFact) pubFact {
			out := clone(in)
			for _, n := range b.Nodes {
				for _, site := range sites {
					if site.node == n {
						out[site] = true
					}
				}
			}
			return out
		},
		Merge: func(a, b pubFact) pubFact {
			out := clone(a)
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b pubFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	})

	// Replay each reachable block and flag writes through published
	// values. Within the publishing block itself, only nodes after the
	// publish node count.
	rd := fi.Reaching()
	for _, b := range fi.CFG.Blocks {
		in, reachable := res.In[b]
		if !reachable {
			continue
		}
		live := clone(in)
		for _, n := range b.Nodes {
			for site := range live {
				checkNodeWrites(pass, rd, site, n)
			}
			for _, site := range sites {
				if site.node == n {
					live[site] = true
				}
			}
		}
	}
}

// collectPublishCalls gathers publish calls in body, skipping nested
// function literals (they get their own pass).
func collectPublishCalls(body *ast.BlockStmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Publish", "Store", "Swap", "CompareAndSwap":
					out = append(out, call)
				}
			}
		}
		return true
	})
	return out
}

// enclosingNode finds the CFG node whose subtree contains n.
func enclosingNode(cfg *CFG, n ast.Node) ast.Node {
	for _, b := range cfg.Blocks {
		for _, m := range b.Nodes {
			if m.Pos() <= n.Pos() && n.End() <= m.End() {
				return m
			}
		}
	}
	return nil
}

// checkNodeWrites reports writes through site's published value inside
// node n (which executes after the publish on some path).
func checkNodeWrites(pass *Pass, rd *ReachingDefs, site *publishSite, n ast.Node) {
	reportWrite := func(lhs ast.Expr, via ast.Node) {
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		tgt := objectOf(pass, root)
		creator, isAlias := site.aliases[tgt]
		if !isAlias {
			return
		}
		// A plain rebind (`snap = other`, `view = nil`) points the name
		// at different memory; it ends the obligation rather than
		// violating it. Only assignment statements rebind — delete(m, k)
		// hands the bare name to a mutator.
		if _, plain := ast.Unparen(lhs).(*ast.Ident); plain {
			if _, isAssign := via.(*ast.AssignStmt); isAssign {
				return
			}
		}
		if tgt == site.obj {
			// The published definition must still reach this write —
			// if the variable was rebound since, it is a fresh value.
			if !defsIntersect(rd.DefsAt(n, site.obj), site.defs) {
				return
			}
		} else if creator != nil {
			// Alias write: the view must still be the one rooted at the
			// published object (rebinding the alias also ends it).
			if v, ok := tgt.(*types.Var); ok {
				if !rd.defsInclude(n, v, creator) {
					return
				}
			}
		}
		pass.Reportf(via.Pos(), "write to %s after it was published by %s; published snapshots are immutable — build a new value and republish",
			exprPathOrName(lhs, root), describePublish(site.call))
	}

	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				reportWrite(lhs, m)
			}
		case *ast.IncDecStmt:
			reportWrite(m.X, m)
		case *ast.CallExpr:
			// append into a retained slice, delete/clear on a retained
			// map: the classic hidden mutations.
			if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
				switch id.Name {
				case "delete", "clear":
					if len(m.Args) > 0 {
						reportWrite(m.Args[0], m)
					}
				}
			}
		}
		return true
	})
}

// defsIntersect reports whether the two definition sets share a site.
func defsIntersect(a, b map[ast.Node]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// defsInclude reports whether def is among the definitions of v
// reaching node n.
func (rd *ReachingDefs) defsInclude(n ast.Node, v *types.Var, def ast.Node) bool {
	return rd.DefsAt(n, v)[def]
}

// objectOf resolves an identifier to its object (definition or use).
func objectOf(pass *Pass, id *ast.Ident) types.Object {
	if o := pass.Info.Defs[id]; o != nil {
		return o
	}
	return pass.Info.Uses[id]
}

// exprPathOrName renders the written expression for the diagnostic.
func exprPathOrName(lhs ast.Expr, root *ast.Ident) string {
	if p := exprPath(lhs); p != "" {
		return p
	}
	return root.Name
}

// describePublish names the publish call for the diagnostic.
func describePublish(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if p := exprPath(sel.X); p != "" {
			return p + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return "the publish call"
}
