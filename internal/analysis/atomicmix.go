package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMix flags struct fields accessed both through sync/atomic
// package functions (atomic.AddInt64(&s.n, 1), atomic.LoadUint32, …)
// and through plain reads or writes anywhere in the same package. A
// field is either always atomic or always lock-protected; mixing the
// two is a data race that -race only reports on the interleavings it
// happens to observe, and on 32-bit platforms a torn plain read of an
// atomically-written int64 is silent corruption.
//
// Fields of the typed atomic kinds (atomic.Int64, atomic.Pointer[T],
// …) cannot be mixed — every access goes through methods — which is
// why the repo prefers them; this analyzer polices the legacy
// function-based form wherever it appears.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "struct field accessed both atomically (sync/atomic) and non-atomically in the package",
	Run:  runAtomicMix,
}

// atomicFuncs are the sync/atomic package functions whose first
// argument is the address of the operated-on word.
var atomicFuncs = map[string]bool{}

func init() {
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		for _, ty := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			atomicFuncs[op+ty] = true
		}
	}
}

type fieldAccess struct {
	pos  token.Pos
	expr string
}

func runAtomicMix(pass *Pass) {
	atomicUses := map[*types.Var][]fieldAccess{}
	plainUses := map[*types.Var][]fieldAccess{}
	// Selector expressions consumed as the address argument of an
	// atomic call, so the plain-access walk can skip them.
	consumed := map[*ast.SelectorExpr]bool{}

	fieldOf := func(e ast.Expr) (*types.Var, *ast.SelectorExpr) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		s := fieldSelection(pass.Info, sel)
		if s == nil {
			return nil, nil
		}
		return s.Obj().(*types.Var), sel
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := calleeName(pass.Info, call)
			if !ok || pkgPath != "sync/atomic" || !atomicFuncs[name] || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if v, sel := fieldOf(addr.X); v != nil {
				consumed[sel] = true
				atomicUses[v] = append(atomicUses[v], fieldAccess{pos: call.Pos(), expr: exprPath(addr.X)})
			}
			return true
		})
	}
	if len(atomicUses) == 0 {
		return
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || consumed[sel] {
				return true
			}
			v, _ := fieldOf(sel)
			if v == nil {
				return true
			}
			if _, isAtomic := atomicUses[v]; isAtomic {
				plainUses[v] = append(plainUses[v], fieldAccess{pos: sel.Pos(), expr: exprPath(sel)})
			}
			return true
		})
	}

	// Deterministic report order: by field name, then position.
	var fields []*types.Var
	for v := range plainUses {
		fields = append(fields, v)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Name() < fields[j].Name() })
	for _, v := range fields {
		accesses := plainUses[v]
		sort.Slice(accesses, func(i, j int) bool { return accesses[i].pos < accesses[j].pos })
		owner := ownerName(v)
		for _, a := range accesses {
			pass.Reportf(a.pos,
				"field %s of %s is accessed with sync/atomic elsewhere in this package but non-atomically here; every access must go through atomic (or move the field to an atomic.%s)",
				v.Name(), owner, typedAtomicFor(v.Type()))
		}
	}
}

// ownerName names the struct type declaring field v, best-effort.
func ownerName(v *types.Var) string {
	// The field's parent scope does not name the struct; fall back to
	// the package-qualified field position via its type string.
	if v.Pkg() != nil {
		return "a struct in " + v.Pkg().Name()
	}
	return "a struct"
}

// typedAtomicFor suggests the typed replacement for the field's type.
func typedAtomicFor(t types.Type) string {
	s := t.String()
	switch {
	case strings.HasSuffix(s, "int32"):
		return "Int32"
	case strings.HasSuffix(s, "int64"):
		return "Int64"
	case strings.HasSuffix(s, "uint32"):
		return "Uint32"
	case strings.HasSuffix(s, "uint64"):
		return "Uint64"
	case strings.HasSuffix(s, "uintptr"):
		return "Uintptr"
	default:
		return "Pointer[T]"
	}
}
