package analysis

import (
	"go/ast"
	"go/token"
)

// FloatCmp flags == and != between floating-point operands. In the
// numerical core a spurious exact comparison either never fires
// (residual tests) or fires for the wrong values (iterates that differ
// by one ulp), so ordered comparisons against a tolerance are required
// instead.
//
// Comparing against the literal constant 0 is exempt: it tests "never
// set" or an exact sign condition and is well-defined in IEEE 754.
// Intentional exact comparisons (deterministic sort tie-breaks) carry
// a lint:ignore suppression with the reason written down.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "floating-point == or != comparison (use a tolerance, or compare to the 0 literal)",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(bin.X)) && !isFloat(pass.TypeOf(bin.Y)) {
				return true
			}
			if isZeroConst(pass.Info, bin.X) || isZeroConst(pass.Info, bin.Y) {
				return true
			}
			pass.Reportf(bin.OpPos, "floating-point %s comparison; use a tolerance (exact equality is intentional only for tie-breaks — suppress with a reason)", bin.Op)
			return true
		})
	}
}
