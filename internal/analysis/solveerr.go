package analysis

import (
	"go/ast"
	"go/types"
)

// SolveErr flags pagerank.Engine solve calls whose error result is
// discarded: the call used as a statement, deferred, or its error
// assigned to the blank identifier.
//
// This is the silent-non-convergence bug class: a solve that exhausts
// MaxIter returns *ErrNotConverged together with the truncated result.
// Discarding the error feeds the truncated vector into downstream
// mass derivation as if it had converged, which is exactly what the
// typed error (and IsNotConverged) exists to prevent.
var SolveErr = &Analyzer{
	Name: "solveerr",
	Doc:  "error from Engine.Solve/SolveMany discarded, bypassing IsNotConverged",
	Run:  runSolveErr,
}

var solveMethods = map[string]bool{
	"Solve":           true,
	"SolveConfig":     true,
	"SolveMany":       true,
	"SolveManyConfig": true,
}

// isSolveCall reports whether call is a method call of one of the
// solve methods on a pagerank.Engine value.
func isSolveCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !solveMethods[sel.Sel.Name] {
		return "", false
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", false
	}
	if !namedIn(s.Recv(), "internal/pagerank", "Engine") {
		return "", false
	}
	return sel.Sel.Name, true
}

func runSolveErr(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, ok := isSolveCall(pass, call); ok {
						pass.Reportf(call.Pos(), "result and error of Engine.%s discarded; check the error with IsNotConverged or propagate it", name)
					}
				}
			case *ast.DeferStmt:
				if name, ok := isSolveCall(pass, n.Call); ok {
					pass.Reportf(n.Call.Pos(), "error of deferred Engine.%s is unobservable; call it synchronously and check the error", name)
				}
			case *ast.GoStmt:
				if name, ok := isSolveCall(pass, n.Call); ok {
					pass.Reportf(n.Call.Pos(), "error of Engine.%s in go statement is discarded; collect it in the goroutine", name)
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := isSolveCall(pass, call)
				if !ok {
					return true
				}
				// The error is the last result; a blank last LHS
				// silences the convergence signal.
				last := n.Lhs[len(n.Lhs)-1]
				if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(id.Pos(), "error from Engine.%s assigned to _; a truncated solve then skews downstream mass estimates silently", name)
				}
			}
			return true
		})
	}
}
