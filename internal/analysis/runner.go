package analysis

import (
	"sort"
	"strings"
)

// Rule binds an analyzer to the import paths it applies to.
type Rule struct {
	Analyzer *Analyzer
	// Include restricts the rule to packages whose import path equals
	// or is under one of these prefixes. Empty means every package.
	Include []string
	// Exclude removes packages whose import path equals or is under
	// one of these prefixes, after Include.
	Exclude []string
}

func (r Rule) applies(path string) bool {
	match := func(prefixes []string) bool {
		for _, p := range prefixes {
			if path == p || strings.HasPrefix(path, p+"/") {
				return true
			}
		}
		return false
	}
	if len(r.Include) > 0 && !match(r.Include) {
		return false
	}
	return !match(r.Exclude)
}

// DefaultRules is the rule set `make lint` enforces on this module:
// every analyzer, scoped to where its invariant is load-bearing.
func DefaultRules() []Rule {
	return []Rule{
		// Aliasing and telemetry invariants hold module-wide.
		{Analyzer: SliceExport},
		{Analyzer: SpanEnd},
		{Analyzer: SolveErr},
		// Concurrency-safety family (shared CFG layer): immutability of
		// published snapshots, lock balance, atomic/plain access mixing,
		// and context plumbing hold module-wide.
		{Analyzer: PublishFreeze},
		{Analyzer: LockBal},
		{Analyzer: AtomicMix},
		{Analyzer: CtxLeak},
		// Atomic-persist durability: temp-file writes renamed into place
		// must fsync first, wherever files are persisted.
		{Analyzer: SyncRename},
		// Exact float comparison is only policed in the numerical core,
		// where a spurious equality skews M̃ = p − p'.
		{Analyzer: FloatCmp, Include: []string{
			"spammass/internal/pagerank",
			"spammass/internal/mass",
			"spammass/internal/trustrank",
		}},
		// float32 storage is allowed in the numerical core (the
		// mixed-precision sweep buffers), but reductions over it must
		// accumulate in float64.
		{Analyzer: F32Acc, Include: []string{
			"spammass/internal/pagerank",
			"spammass/internal/mass",
			"spammass/internal/trustrank",
		}},
		// Library packages must not print; CLIs and examples may.
		{Analyzer: PrintCall,
			Include: []string{"spammass/internal"},
			Exclude: []string{"spammass/internal/cliobs"}},
		// Metric names follow the subsystem.name_unit convention
		// everywhere metrics are created. The obs package itself is
		// excluded: its Context methods forward caller-supplied names
		// to the Registry, which is exactly the non-literal pattern the
		// analyzer rejects at real creation sites.
		{Analyzer: MetricName, Exclude: []string{"spammass/internal/obs"}},
	}
}

// Run applies the rules to the packages and returns the diagnostics
// that survive lint:ignore suppression, sorted by position.
func Run(rules []Rule, pkgs []*Package) []Diagnostic {
	all := RunAll(rules, pkgs)
	out := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// RunAll is Run without the suppression filter: every diagnostic is
// returned, with suppressed findings annotated with their lint:ignore
// reason. The order is deterministic (file, line, column, analyzer,
// message) so successive reports diff cleanly.
func RunAll(rules []Rule, pkgs []*Package) []Diagnostic {
	known := map[string]bool{}
	for _, r := range rules {
		known[r.Analyzer.Name] = true
	}
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	var idx ignoreIndex
	for _, pkg := range pkgs {
		if pkg == nil {
			continue
		}
		pkgIdx := collectIgnores(pkg.Fset, pkg.Files, known, report)
		if idx == nil {
			idx = pkgIdx
		} else {
			for f, lines := range pkgIdx {
				idx[f] = lines
			}
		}
		// One flow-analysis cache per package: every analyzer sees the
		// same FuncInfo (CFG + dataflow) instances.
		cache := newFuncCache()
		for _, r := range rules {
			if !r.applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: r.Analyzer,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   report,
				funcs:    cache,
			}
			r.Analyzer.Run(pass)
		}
	}
	out := diags
	for i := range out {
		if dir := idx.directive(out[i]); dir != nil {
			out[i].Suppressed = true
			out[i].SuppressReason = dir.reason
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}
