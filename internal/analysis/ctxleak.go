package analysis

import (
	"go/ast"
	"go/types"
)

// CtxLeak polices context plumbing in the serving tier:
//
//   - a function that receives a ctx parameter must thread it: passing
//     context.Background() or context.TODO() to a callee while the
//     caller's ctx is in scope detaches the callee from cancellation
//     and deadlines, so shutdown no longer propagates;
//   - a goroutine whose body can never reach its CFG exit — a for or
//     select loop with no returning ctx.Done()/close-signal case and
//     no breaking edge — leaks: nothing can ever reclaim it, and on
//     shutdown it keeps running against torn-down state.
//
// The goroutine check covers both `go func() { … }()` literals and
// `go r.worker()` calls to functions declared in the same package.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "ctx parameter not threaded to callees, or goroutine loop with no exit path",
	Run:  runCtxLeak,
}

func runCtxLeak(pass *Pass) {
	checkCtxThreading(pass)
	checkGoroutineExits(pass)
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool { return namedIn(t, "context", "Context") }

// hasCtxParam reports whether the function type declares a named (non
// blank) context.Context parameter.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if !isCtxType(pass.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return true
			}
		}
	}
	return false
}

// checkCtxThreading flags context.Background()/context.TODO() passed as
// a call argument inside a function whose signature already carries a
// ctx parameter.
func checkCtxThreading(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(pass, fd.Type) {
				continue
			}
			// Nested literals are included: the ctx parameter is still in
			// scope there, so a fresh root context is just as detached. A
			// nested literal declaring its own ctx parameter shadows the
			// outer one and is skipped.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && hasCtxParam(pass, lit.Type) {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, arg := range call.Args {
					inner, ok := ast.Unparen(arg).(*ast.CallExpr)
					if !ok {
						continue
					}
					pkgPath, name, ok := calleeName(pass.Info, inner)
					if !ok || pkgPath != "context" || (name != "Background" && name != "TODO") {
						continue
					}
					pass.Reportf(inner.Pos(),
						"context.%s() passed to %s while the caller's ctx parameter is in scope; thread ctx so cancellation and deadlines propagate",
						name, callDisplay(call))
				}
				return true
			})
		}
	}
}

// callDisplay names the callee of a call for diagnostics.
func callDisplay(call *ast.CallExpr) string {
	if p := exprPath(call.Fun); p != "" {
		return p
	}
	return "a callee"
}

// checkGoroutineExits flags goroutine bodies whose CFG exit is
// unreachable from entry: the goroutine can never terminate.
func checkGoroutineExits(pass *Pass) {
	// Map package-level function objects to their declarations so
	// `go r.worker()` resolves to worker's body.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	// A declared function may be started by several go statements but
	// is diagnosed once, at its declaration.
	seen := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var fn ast.Node
			var at ast.Node // where to report
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				fn, at = fun, g
			case *ast.Ident:
				if fd := decls[pass.Info.Uses[fun]]; fd != nil {
					fn, at = fd, fd
				}
			case *ast.SelectorExpr:
				if fd := decls[pass.Info.Uses[fun.Sel]]; fd != nil {
					fn, at = fd, fd
				}
			}
			if fn == nil || seen[fn] {
				return true
			}
			seen[fn] = true
			fi := pass.FuncInfo(fn)
			if loopsForever(fi.CFG) {
				pass.Reportf(at.Pos(),
					"goroutine can never reach an exit: its loop has no returning ctx.Done()/close-signal case and no break; shutdown cannot reclaim it")
			}
			return true
		})
	}
}

// loopsForever reports whether the function body has no path from
// entry to exit — every execution is trapped in a loop (or `select{}`).
// A body that is a bare infinite sleep-free loop with a panic edge
// still counts as having an exit (panic unwinds).
func loopsForever(cfg *CFG) bool {
	if cfg.Entry == cfg.Exit {
		return false
	}
	return !cfg.CanReach(cfg.Entry, cfg.Exit)
}
