// Package testutil provides small helpers shared by the test suites:
// deterministic random graphs and float comparison utilities.
package testutil

import (
	"math"
	"math/rand"

	"spammass/internal/graph"
)

// RandomGraph builds a random directed graph with n nodes where each
// node receives an out-degree drawn uniformly from [0, maxOut] and
// random distinct targets. Self-links are dropped by the builder, so
// actual degrees may be slightly lower.
func RandomGraph(rng *rand.Rand, n, maxOut int) *graph.Graph {
	b := graph.NewBuilder(n)
	for x := 0; x < n; x++ {
		d := rng.Intn(maxOut + 1)
		for i := 0; i < d; i++ {
			b.AddEdge(graph.NodeID(x), graph.NodeID(rng.Intn(n)))
		}
	}
	return b.Build()
}

// RandomDAG builds a random acyclic graph: edges only go from lower to
// higher IDs. Useful where walk enumeration must terminate exactly.
func RandomDAG(rng *rand.Rand, n, maxOut int) *graph.Graph {
	b := graph.NewBuilder(n)
	for x := 0; x < n-1; x++ {
		d := rng.Intn(maxOut + 1)
		for i := 0; i < d; i++ {
			y := x + 1 + rng.Intn(n-x-1)
			b.AddEdge(graph.NodeID(x), graph.NodeID(y))
		}
	}
	return b.Build()
}

// AlmostEqual reports whether a and b differ by at most tol.
func AlmostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// MaxAbsDiff returns the largest absolute entrywise difference of two
// equally long slices.
func MaxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
