package paperfig

import (
	"math"
	"testing"
)

func TestFigure1Structure(t *testing.T) {
	for _, k := range []int{0, 3, 7} {
		f := NewFigure1(k)
		if got := f.Graph.NumNodes(); got != 4+k {
			t.Fatalf("k=%d: %d nodes, want %d", k, got, 4+k)
		}
		if got := f.Graph.NumEdges(); got != int64(3+k) {
			t.Fatalf("k=%d: %d edges, want %d", k, got, 3+k)
		}
		if f.Graph.InDegree(f.X) != 3 {
			t.Errorf("k=%d: x has indegree %d, want 3", k, f.Graph.InDegree(f.X))
		}
		if f.Graph.InDegree(f.S0) != k {
			t.Errorf("k=%d: s0 has indegree %d, want %d", k, f.Graph.InDegree(f.S0), k)
		}
		if len(f.SpamNodes()) != k+1 {
			t.Errorf("k=%d: %d spam nodes, want %d", k, len(f.SpamNodes()), k+1)
		}
	}
}

func TestFigure1ClosedFormsAtPaperValues(t *testing.T) {
	// Section 3.1: for c = 0.85 and k ≥ ⌈1/c⌉ = 2, spam contributes
	// the largest part of x's PageRank.
	f := NewFigure1(2)
	px := f.ScaledPageRankX(Damping)
	spam := f.ScaledSpamContributionX(Damping)
	if spam <= px-spam-1 { // good part is 2c plus the random jump 1
		t.Errorf("k=2: spam %v does not dominate good %v", spam, px-spam)
	}
	f1 := NewFigure1(1)
	if s := f1.ScaledSpamContributionX(Damping); s > f1.ScaledPageRankX(Damping)-s {
		t.Errorf("k=1: spam %v should not dominate yet", s)
	}
}

func TestFigure2Structure(t *testing.T) {
	f := NewFigure2()
	if f.Graph.NumNodes() != 12 {
		t.Fatalf("%d nodes, want 12", f.Graph.NumNodes())
	}
	if f.Graph.NumEdges() != 11 {
		t.Fatalf("%d edges, want 11", f.Graph.NumEdges())
	}
	for _, e := range [][2]int{{1, 0}, {3, 0}, {5, 0}} { // g0, g2, s0 → x
		_ = e
	}
	if !f.Graph.HasEdge(f.G[0], f.X) || !f.Graph.HasEdge(f.G[2], f.X) || !f.Graph.HasEdge(f.S[0], f.X) {
		t.Error("x's three in-links missing")
	}
	if !f.Graph.HasEdge(f.S[5], f.G[0]) || !f.Graph.HasEdge(f.S[6], f.G[2]) {
		t.Error("indirect spam links s5→g0 / s6→g2 missing")
	}
	if len(f.SpamNodes()) != 8 { // x plus s0..s6
		t.Errorf("%d spam nodes, want 8", len(f.SpamNodes()))
	}
	if len(f.GoodCore()) != 3 {
		t.Errorf("%d core nodes, want 3", len(f.GoodCore()))
	}
	ids, labels := f.NodeOrder()
	if len(ids) != 12 || len(labels) != 12 || labels[0] != "x" || labels[5] != "s0" || labels[11] != "s6" {
		t.Errorf("node order wrong: %v", labels)
	}
}

func TestExpectedTable1MatchesPaperRounding(t *testing.T) {
	w := ExpectedTable1(Damping)
	// The printed Table 1 values (scaled, two decimals).
	paper := struct {
		p, pc, m, me, rm, rme []float64
	}{
		p:   []float64{9.33, 2.7, 1, 2.7, 1, 4.4, 1, 1, 1, 1, 1, 1},
		pc:  []float64{2.295, 1.85, 1, 0.85, 1, 0, 0, 0, 0, 0, 0, 0},
		m:   []float64{6.185, 0.85, 0, 0.85, 0, 4.4, 1, 1, 1, 1, 1, 1},
		me:  []float64{7.035, 0.85, 0, 1.85, 0, 4.4, 1, 1, 1, 1, 1, 1},
		rm:  []float64{0.66, 0.31, 0, 0.31, 0, 1, 1, 1, 1, 1, 1, 1},
		rme: []float64{0.75, 0.31, 0, 0.69, 0, 1, 1, 1, 1, 1, 1, 1},
	}
	check := func(name string, got, want []float64, tol float64) {
		for i := range want {
			if math.Abs(got[i]-want[i]) > tol {
				t.Errorf("%s[%s] = %v, paper prints %v", name, w.Labels[i], got[i], want[i])
			}
		}
	}
	check("p", w.P, paper.p, 0.005)
	check("p'", w.PCore, paper.pc, 0.0005)
	check("M", w.M, paper.m, 0.005)
	check("M~", w.MEst, paper.me, 0.005)
	check("m", w.RelM, paper.rm, 0.005)
	check("m~", w.RelME, paper.rme, 0.005)
}

func TestExpectedTable1InternalConsistency(t *testing.T) {
	w := ExpectedTable1(Damping)
	for i := range w.P {
		if math.Abs(w.MEst[i]-(w.P[i]-w.PCore[i])) > 1e-12 {
			t.Errorf("M~[%s] != p - p'", w.Labels[i])
		}
		if w.P[i] > 0 && math.Abs(w.RelME[i]-w.MEst[i]/w.P[i]) > 1e-12 {
			t.Errorf("m~[%s] != M~/p", w.Labels[i])
		}
	}
}

// TestGoodNodesIsACopy: GoodNodes hands callers a fresh slice, not a
// view of the figure's internal array; mutating the result must not
// corrupt the ground-truth partition. (Regression test for the
// sliceexport lint finding.)
func TestGoodNodesIsACopy(t *testing.T) {
	f := NewFigure2()
	want := f.G
	got := f.GoodNodes()
	if len(got) != len(want) {
		t.Fatalf("GoodNodes returned %d nodes, want %d", len(got), len(want))
	}
	got[0] = 999
	if f.G != want {
		t.Error("mutating GoodNodes result changed the figure's internal array")
	}
	if again := f.GoodNodes(); again[0] == 999 {
		t.Error("GoodNodes returned an aliased slice")
	}
}
