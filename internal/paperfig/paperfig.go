// Package paperfig constructs the small worked examples of the paper —
// the graphs of Figures 1 and 2 — together with the closed-form scores
// the paper derives for them. The experiment harness regenerates
// Table 1 from these, and the test suites of the pagerank and mass
// packages use the closed forms as exact oracles.
package paperfig

import "spammass/internal/graph"

// Damping is the factor c = 0.85 used in all of the paper's examples.
const Damping = 0.85

// Figure1 is the graph of Figure 1: a to-be-labeled node x with inlinks
// from good nodes g0, g1 and from spam node s0, which is boosted by k
// spam nodes s1..sk. The first naïve labeling scheme (inlink counting)
// labels x good; for k ≥ ⌈1/c⌉ the largest part of x's PageRank comes
// from spam, so the second scheme (per-link contribution) labels x spam.
type Figure1 struct {
	Graph    *graph.Graph
	X        graph.NodeID
	G0, G1   graph.NodeID
	S0       graph.NodeID
	Boosters []graph.NodeID // s1..sk
}

// NewFigure1 builds the Figure 1 graph with k boosting nodes.
func NewFigure1(k int) *Figure1 {
	b := graph.NewBuilder(0)
	f := &Figure1{
		X:  b.AddNode(),
		G0: b.AddNode(),
		G1: b.AddNode(),
		S0: b.AddNode(),
	}
	for i := 0; i < k; i++ {
		f.Boosters = append(f.Boosters, b.AddNode())
	}
	b.AddEdge(f.G0, f.X)
	b.AddEdge(f.G1, f.X)
	b.AddEdge(f.S0, f.X)
	for _, s := range f.Boosters {
		b.AddEdge(s, f.S0)
	}
	f.Graph = b.Build()
	return f
}

// SpamNodes returns V⁻ = {s0, ..., sk}.
func (f *Figure1) SpamNodes() []graph.NodeID {
	return append([]graph.NodeID{f.S0}, f.Boosters...)
}

// ScaledPageRankX returns the paper's closed form for x's scaled
// PageRank: p_x·n/(1−c) = 1 + 3c + kc².
func (f *Figure1) ScaledPageRankX(c float64) float64 {
	return 1 + 3*c + float64(len(f.Boosters))*c*c
}

// ScaledSpamContributionX returns the scaled PageRank x gains from the
// spam nodes: (c + kc²), the amount by which p_x would decrease if
// s0..sk were absent.
func (f *Figure1) ScaledSpamContributionX(c float64) float64 {
	return c + float64(len(f.Boosters))*c*c
}

// Figure2 is the 12-node graph of Figure 2: target x with inlinks from
// g0, g2, and s0; g1→g0, s5→g0, g3→g2, s6→g2, and s1..s4→s0. Both naïve
// labeling schemes fail on it, motivating spam mass.
type Figure2 struct {
	Graph *graph.Graph
	X     graph.NodeID
	G     [4]graph.NodeID // g0..g3
	S     [7]graph.NodeID // s0..s6
}

// NewFigure2 builds the Figure 2 graph.
func NewFigure2() *Figure2 {
	b := graph.NewBuilder(0)
	f := &Figure2{X: b.AddNode()}
	for i := range f.G {
		f.G[i] = b.AddNode()
	}
	for i := range f.S {
		f.S[i] = b.AddNode()
	}
	b.AddEdge(f.G[0], f.X)
	b.AddEdge(f.G[2], f.X)
	b.AddEdge(f.S[0], f.X)
	b.AddEdge(f.G[1], f.G[0])
	b.AddEdge(f.S[5], f.G[0])
	b.AddEdge(f.G[3], f.G[2])
	b.AddEdge(f.S[6], f.G[2])
	for i := 1; i <= 4; i++ {
		b.AddEdge(f.S[i], f.S[0])
	}
	f.Graph = b.Build()
	return f
}

// GoodNodes returns V⁺ = {g0, g1, g2, g3}. The slice is a copy:
// callers sorting or editing it (core-variant experiments) must not
// rewrite the figure's node table.
func (f *Figure2) GoodNodes() []graph.NodeID { return append([]graph.NodeID(nil), f.G[:]...) }

// SpamNodes returns V⁻ = {s0, ..., s6, x}: the ground-truth partition
// behind Table 1 places the spam target x itself among the spam nodes,
// which is why the table's M_x includes x's self-contribution.
func (f *Figure2) SpamNodes() []graph.NodeID {
	return append([]graph.NodeID{f.X}, f.S[:]...)
}

// GoodCore returns the incomplete good core Ṽ⁺ = {g0, g1, g3} used by
// Table 1 and by the Algorithm 2 walkthrough in Section 3.6 (g2 is a
// good node missing from the core, which makes it a false positive).
func (f *Figure2) GoodCore() []graph.NodeID {
	return []graph.NodeID{f.G[0], f.G[1], f.G[3]}
}

// NodeOrder returns the nodes in Table 1's row order
// (x, g0, g1, g2, g3, s0, s1..s6) along with their labels.
func (f *Figure2) NodeOrder() (ids []graph.NodeID, labels []string) {
	ids = []graph.NodeID{f.X, f.G[0], f.G[1], f.G[2], f.G[3]}
	labels = []string{"x", "g0", "g1", "g2", "g3"}
	for i, s := range f.S {
		ids = append(ids, s)
		labels = append(labels, "s"+string(rune('0'+i)))
	}
	return ids, labels
}

// Table1 holds, for each node of Figure 2 in Table 1 row order, the six
// quantities reported by Table 1 of the paper. Scores and absolute
// masses are scaled by n/(1−c).
type Table1 struct {
	Labels []string
	P      []float64 // PageRank
	PCore  []float64 // core-based PageRank p'
	M      []float64 // actual absolute mass
	MEst   []float64 // estimated absolute mass M̃
	RelM   []float64 // actual relative mass m
	RelME  []float64 // estimated relative mass m̃
}

// ExpectedTable1 returns the exact closed-form values behind Table 1
// for damping factor c (the paper prints them rounded for c = 0.85).
// Derivation, with all scores scaled by n/(1−c):
//
//	p:  x = 1+c(2(1+2c)+(1+4c)),  g0 = g2 = 1+2c,  s0 = 1+4c, leaves 1
//	p': core {g0,g1,g3} ⇒ g0 = 1+c, g1 = g3 = 1, g2 = c, x = c(1+c+c)
//	M:  V⁻ = {x, s0..s6} ⇒ x = 1+c+6c², g0 = g2 = c, s0 = 1+4c, sᵢ = 1
func ExpectedTable1(c float64) *Table1 {
	pG0 := 1 + 2*c
	pS0 := 1 + 4*c
	pX := 1 + c*(2*pG0+pS0)
	p := []float64{pX, pG0, 1, pG0, 1, pS0, 1, 1, 1, 1, 1, 1}

	ppG0 := 1 + c // g0 in core, fed by g1 in core (s5 contributes nothing)
	ppG2 := c     // g2 not in core, fed by g3 in core
	ppX := c * (ppG0 + ppG2)
	pp := []float64{ppX, ppG0, 1, ppG2, 1, 0, 0, 0, 0, 0, 0, 0}

	mX := 1 + c + 6*c*c // x's self jump + s0 direct + {s1..s6} via length-2 walks
	m := []float64{mX, c, 0, c, 0, pS0, 1, 1, 1, 1, 1, 1}

	t := &Table1{
		Labels: []string{"x", "g0", "g1", "g2", "g3", "s0", "s1", "s2", "s3", "s4", "s5", "s6"},
		P:      p,
		PCore:  pp,
		M:      m,
	}
	for i := range p {
		t.MEst = append(t.MEst, p[i]-pp[i])
		t.RelM = append(t.RelM, m[i]/p[i])
		t.RelME = append(t.RelME, (p[i]-pp[i])/p[i])
	}
	return t
}
