package anomaly

import (
	"testing"

	"spammass/internal/goodcore"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
	"spammass/internal/webgen"
)

// handWorld builds a small scene: a covered good web, an uncovered
// interlinked community whose hosts will show high relative mass, a
// spam farm, and a lone high-mass good host (too small to be a
// community).
type handWorld struct {
	g         *graph.Graph
	est       *mass.Estimates
	community []graph.NodeID
	hub       graph.NodeID // the community's natural entry point
	farm      graph.NodeID
	loner     graph.NodeID
	judge     Oracle
}

func buildHandWorld(t *testing.T) *handWorld {
	t.Helper()
	b := graph.NewBuilder(0)
	w := &handWorld{}

	// Covered good web: core hub + 12 sites.
	core := b.AddNode()
	var coreSet []graph.NodeID
	coreSet = append(coreSet, core)
	for i := 0; i < 12; i++ {
		site := b.AddNode()
		b.AddEdge(site, core)
		b.AddEdge(core, site)
	}

	// Uncovered community: hub + 20 members, members link to the hub
	// and to each other; nothing links in from the covered web.
	w.hub = b.AddNode()
	w.community = append(w.community, w.hub)
	var members []graph.NodeID
	for i := 0; i < 20; i++ {
		m := b.AddNode()
		members = append(members, m)
		w.community = append(w.community, m)
		b.AddEdge(m, w.hub)
	}
	for i, m := range members {
		b.AddEdge(w.hub, m)
		b.AddEdge(m, members[(i+1)%len(members)])
	}

	// Spam farm: high mass but judged spam, must be ignored.
	w.farm = b.AddNode()
	for i := 0; i < 15; i++ {
		booster := b.AddNode()
		b.AddEdge(booster, w.farm)
	}

	// Lone high-mass good host: boosted by isolated fans, but below
	// MinClusterSize as a cluster of one.
	w.loner = b.AddNode()
	for i := 0; i < 12; i++ {
		fan := b.AddNode()
		b.AddEdge(fan, w.loner)
	}

	w.g = b.Build()
	est, err := mass.EstimateFromCore(w.g, coreSet, mass.Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	w.est = est
	w.judge = func(x graph.NodeID) Judgment {
		if x == w.farm {
			return Spam
		}
		return Good
	}
	return w
}

func TestDiscoverFindsCommunity(t *testing.T) {
	w := buildHandWorld(t)
	cfg := DefaultConfig()
	cfg.ScaledPageRankThreshold = 2
	cfg.SuggestedFixes = 3
	communities, err := Discover(w.g, w.est, w.judge, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(communities) == 0 {
		t.Fatal("no communities discovered")
	}
	top := communities[0]
	inCommunity := map[graph.NodeID]bool{}
	for _, x := range w.community {
		inCommunity[x] = true
	}
	for _, m := range top.Members {
		if !inCommunity[m] {
			t.Errorf("top community contains foreign node %d", m)
		}
	}
	if len(top.SuggestedCoreFix) == 0 || top.SuggestedCoreFix[0] != w.hub {
		t.Errorf("suggested fix %v, want the hub %d first (highest in-degree)", top.SuggestedCoreFix, w.hub)
	}
	// The farm (judged spam) and the loner (cluster of one) must not
	// appear in any community.
	for _, c := range communities {
		for _, m := range c.Members {
			if m == w.farm {
				t.Error("spam farm surfaced as an anomaly")
			}
			if m == w.loner {
				t.Error("singleton host surfaced as a community")
			}
		}
	}
}

func TestDiscoverFixWorks(t *testing.T) {
	w := buildHandWorld(t)
	cfg := DefaultConfig()
	cfg.ScaledPageRankThreshold = 2
	communities, err := Discover(w.g, w.est, w.judge, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(communities) == 0 {
		t.Fatal("no communities discovered")
	}
	// Applying the suggested fix must collapse the community's mass.
	core := &goodcore.Core{Nodes: []graph.NodeID{0}}
	for i := 1; i <= 12; i++ {
		core.Nodes = append(core.Nodes, graph.NodeID(i))
	}
	fixed := goodcore.WithExtra(core, communities[0].SuggestedCoreFix)
	est2, err := mass.EstimateFromCore(w.g, fixed.Nodes, mass.Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range communities[0].Members {
		if est2.Rel[m] >= 0.9 && w.est.Rel[m] >= 0.9 {
			t.Errorf("member %d still at m~ %.3f after the fix (was %.3f)", m, est2.Rel[m], w.est.Rel[m])
		}
	}
}

func TestDiscoverValidation(t *testing.T) {
	w := buildHandWorld(t)
	cfg := DefaultConfig()
	cfg.MinClusterSize = 0
	if _, err := Discover(w.g, w.est, w.judge, cfg); err == nil {
		t.Error("MinClusterSize 0 accepted")
	}
	cfg = DefaultConfig()
	cfg.SuggestedFixes = 0
	if _, err := Discover(w.g, w.est, w.judge, cfg); err == nil {
		t.Error("SuggestedFixes 0 accepted")
	}
}

func TestDiscoverNothingSuspicious(t *testing.T) {
	// A world where every high-PR host is well covered yields no
	// communities (and no error).
	b := graph.NewBuilder(0)
	core := b.AddNode()
	var coreSet []graph.NodeID
	coreSet = append(coreSet, core)
	for i := 0; i < 10; i++ {
		site := b.AddNode()
		coreSet = append(coreSet, site)
		b.AddEdge(site, core)
		b.AddEdge(core, site)
	}
	g := b.Build()
	est, err := mass.EstimateFromCore(g, coreSet, mass.Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	communities, err := Discover(g, est, func(graph.NodeID) Judgment { return Good }, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(communities) != 0 {
		t.Errorf("clean world produced %d communities", len(communities))
	}
}

// TestDiscoverOnGeneratedWorld: on the synthetic world, discovery must
// surface the planted anomalous communities with high purity.
func TestDiscoverOnGeneratedWorld(t *testing.T) {
	w, err := webgen.Generate(webgen.DefaultConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	core, err := goodcore.Assemble(w.Names, w.DirectoryMembers)
	if err != nil {
		t.Fatal(err)
	}
	est, err := mass.EstimateFromCore(w.Graph, core.Nodes, mass.Options{
		Solver: pagerank.Config{Damping: 0.85, Epsilon: 1e-10, MaxIter: 300},
		Gamma:  0.85,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := func(x graph.NodeID) Judgment {
		if w.Info[x].Kind.Spam() {
			return Spam
		}
		if w.Info[x].Kind == webgen.KindFrontier || w.Info[x].Kind == webgen.KindIsolated {
			return Unknown
		}
		return Good
	}
	communities, err := Discover(w.Graph, est, oracle, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(communities) == 0 {
		t.Fatal("no anomalies discovered on a world with planted anomalous communities")
	}
	// The top community must be dominated by one planted anomalous
	// community (alibaba or brblogs).
	counts := map[string]int{}
	for _, m := range communities[0].Members {
		counts[w.Info[m].Community]++
	}
	best, bestCount := "", 0
	for name, c := range counts {
		if c > bestCount {
			best, bestCount = name, c
		}
	}
	if best != "alibaba" && best != "brblogs" {
		t.Errorf("top community dominated by %q, want a planted anomaly", best)
	}
	if purity := float64(bestCount) / float64(len(communities[0].Members)); purity < 0.9 {
		t.Errorf("top community purity %.2f, want ≥ 0.9", purity)
	}
}
