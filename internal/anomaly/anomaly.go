// Package anomaly implements the core-maintenance procedure of
// Section 4.4.2 as an algorithm. The paper describes the loop a search
// engine runs by hand:
//
//  1. identify good nodes with large relative mass (by sampling or
//     editorial feedback on search results);
//  2. determine the anomalies in the core that cause them — in
//     practice, whole communities the core cannot reach well;
//  3. devise and execute correction measures, by priority — e.g. add
//     a few key hosts of the community to the good core.
//
// Step 2 is automated here by clustering the high-mass good hosts
// through their induced link structure: members of one under-covered
// community (the paper's Alibaba cluster, Brazilian blogs, Polish web)
// interlink, while unrelated false positives do not. Step 3's "key
// hosts" are proposed as each cluster's most-linked members.
package anomaly

import (
	"fmt"
	"sort"

	"spammass/internal/graph"
	"spammass/internal/mass"
)

// Judgment is the editorial verdict on a host: only hosts judged good
// participate in anomaly discovery (spam with high mass is working as
// intended). Unknown hosts are skipped.
type Judgment int

// Judgments.
const (
	Good Judgment = iota
	Spam
	Unknown
)

// Oracle provides editorial judgment for a host.
type Oracle func(graph.NodeID) Judgment

// Config tunes discovery.
type Config struct {
	// RelMassThreshold selects the suspicious good hosts (the paper's
	// gray population concentrates near 1).
	RelMassThreshold float64
	// ScaledPageRankThreshold is the ρ filter of the detection
	// pipeline; anomalies only matter where detection looks.
	ScaledPageRankThreshold float64
	// MinClusterSize drops clusters too small to be a community
	// (scattered false positives are individual judgment calls, not
	// core anomalies).
	MinClusterSize int
	// SuggestedFixes is how many key hosts to propose per community.
	SuggestedFixes int
}

// DefaultConfig matches the paper's setting: high-mass (τ = 0.9) good
// hosts among the high-PageRank population, communities of at least 3,
// and 12 suggested hosts (the number the paper added for Alibaba).
func DefaultConfig() Config {
	return Config{
		RelMassThreshold:        0.9,
		ScaledPageRankThreshold: 10,
		MinClusterSize:          3,
		SuggestedFixes:          12,
	}
}

// Community is one discovered core anomaly.
type Community struct {
	// Members are the high-mass good hosts in the cluster.
	Members []graph.NodeID
	// TotalScaledPageRank sums the members' scaled PageRank — the
	// priority order of Section 4.4.2's correction step.
	TotalScaledPageRank float64
	// SuggestedCoreFix lists the key hosts to add to the good core:
	// the community members with the most inlinks, i.e. its natural
	// entry points (the paper's www.alibaba.com, china.alibaba.com…).
	SuggestedCoreFix []graph.NodeID
}

// Discover runs the automated Section 4.4.2 loop: filter the judged
// sample to suspicious good hosts, cluster them by induced link
// structure, and propose core fixes, ordered by priority.
func Discover(g *graph.Graph, est *mass.Estimates, oracle Oracle, cfg Config) ([]Community, error) {
	if cfg.MinClusterSize < 1 {
		return nil, fmt.Errorf("anomaly: MinClusterSize must be ≥ 1")
	}
	if cfg.SuggestedFixes < 1 {
		return nil, fmt.Errorf("anomaly: SuggestedFixes must be ≥ 1")
	}
	var suspicious []graph.NodeID
	for x := 0; x < est.N(); x++ {
		id := graph.NodeID(x)
		if est.ScaledPageRank(id) < cfg.ScaledPageRankThreshold {
			continue
		}
		if est.Rel[x] < cfg.RelMassThreshold {
			continue
		}
		if oracle(id) != Good {
			continue
		}
		suspicious = append(suspicious, id)
	}
	if len(suspicious) == 0 {
		return nil, nil
	}
	clusters := graph.ClusterInduced(g, suspicious)
	var out []Community
	for _, members := range clusters {
		if len(members) < cfg.MinClusterSize {
			continue
		}
		c := Community{Members: members}
		for _, x := range members {
			c.TotalScaledPageRank += est.ScaledPageRank(x)
		}
		c.SuggestedCoreFix = topByInDegree(g, members, cfg.SuggestedFixes)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalScaledPageRank != out[j].TotalScaledPageRank {
			return out[i].TotalScaledPageRank > out[j].TotalScaledPageRank
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out, nil
}

// topByInDegree returns up to k members sorted by decreasing in-degree
// (ties by ID). High in-degree members are the community's hubs — the
// hosts whose admission to the core lets core-based PageRank flow into
// the whole community.
func topByInDegree(g *graph.Graph, members []graph.NodeID, k int) []graph.NodeID {
	sorted := append([]graph.NodeID(nil), members...)
	sort.Slice(sorted, func(i, j int) bool {
		di, dj := g.InDegree(sorted[i]), g.InDegree(sorted[j])
		if di != dj {
			return di > dj
		}
		return sorted[i] < sorted[j]
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}
