package obs

import (
	"encoding/json"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder keeps the span trees worth looking at after the
// fact: a bounded set of the slowest requests/refreshes seen and a
// ring of the most recent errored ones. The serve tier records into
// it from its middleware and refresher; /admin/flightrecorder dumps
// it, and a refresh failure can be written straight to disk.
//
// The hot path asks QualifiesSlow(d) — a single atomic load — before
// paying for a span snapshot, so requests that would not enter the
// slowest set cost nothing beyond their duration measurement.
//
// All methods on a nil *FlightRecorder are no-ops.

// FlightEntry is one recorded request or refresh.
type FlightEntry struct {
	Kind       string    `json:"kind"` // "request" or "refresh"
	TraceID    string    `json:"trace_id,omitempty"`
	Name       string    `json:"name"` // route or operation name
	Status     int       `json:"status,omitempty"`
	Err        bool      `json:"error,omitempty"`
	Error      string    `json:"error_message,omitempty"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	Trace      *SpanJSON `json:"trace,omitempty"`
}

// FlightConfig sizes a FlightRecorder.
type FlightConfig struct {
	// SlowestN is how many slowest entries are retained. Default 16.
	SlowestN int
	// ErrorN is how many recent errored entries are retained.
	// Default 64.
	ErrorN int
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.SlowestN <= 0 {
		c.SlowestN = 16
	}
	if c.ErrorN <= 0 {
		c.ErrorN = 64
	}
	return c
}

// FlightRecorder holds the slowest-N and recent-error rings.
type FlightRecorder struct {
	slowThreshold atomic.Int64 // min duration to enter the slowest set once full

	mu      sync.Mutex
	slowest []FlightEntry // sorted by DurationNS descending, ≤ slowN
	slowN   int
	errors  []FlightEntry // ring, errNext overwritten next
	errNext int
	errN    int
}

// NewFlightRecorder builds a flight recorder.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	return &FlightRecorder{
		slowest: make([]FlightEntry, 0, cfg.SlowestN),
		slowN:   cfg.SlowestN,
		errors:  make([]FlightEntry, cfg.ErrorN),
	}
}

// QualifiesSlow reports whether an operation of duration d would
// enter the slowest set right now. It is a single atomic load, safe
// to call on the hottest path; false means the caller can skip
// building a span snapshot entirely.
func (f *FlightRecorder) QualifiesSlow(d time.Duration) bool {
	if f == nil {
		return false
	}
	return int64(d) > f.slowThreshold.Load()
}

// Record stores an entry in whichever rings it qualifies for: the
// slowest set when its duration beats the current floor, the error
// ring when Err is set.
func (f *FlightRecorder) Record(e FlightEntry) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if int64(e.DurationNS) > f.slowThreshold.Load() || len(f.slowest) < f.slowN {
		i := sort.Search(len(f.slowest), func(i int) bool {
			return f.slowest[i].DurationNS < e.DurationNS
		})
		if len(f.slowest) < f.slowN {
			f.slowest = append(f.slowest, FlightEntry{})
		} else {
			i = min(i, f.slowN-1)
		}
		copy(f.slowest[i+1:], f.slowest[i:])
		f.slowest[i] = e
		if len(f.slowest) == f.slowN {
			f.slowThreshold.Store(f.slowest[len(f.slowest)-1].DurationNS)
		}
	}
	if e.Err {
		f.errors[f.errNext] = e
		f.errNext = (f.errNext + 1) % len(f.errors)
		if f.errN < len(f.errors) {
			f.errN++
		}
	}
}

// FlightSnapshot is the dump shape served by /admin/flightrecorder.
type FlightSnapshot struct {
	// Slowest entries, slowest first.
	Slowest []FlightEntry `json:"slowest"`
	// Errors, most recent first.
	Errors []FlightEntry `json:"errors"`
}

// Snapshot copies the current state.
func (f *FlightRecorder) Snapshot() *FlightSnapshot {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := &FlightSnapshot{
		Slowest: append([]FlightEntry(nil), f.slowest...),
		Errors:  make([]FlightEntry, 0, f.errN),
	}
	for i := 0; i < f.errN; i++ {
		idx := f.errNext - 1 - i
		if idx < 0 {
			idx += len(f.errors)
		}
		s.Errors = append(s.Errors, f.errors[idx])
	}
	return s
}

// WriteFile dumps the snapshot as indented JSON to path, for the
// refresh-failure autopsy file.
func (f *FlightRecorder) WriteFile(path string) error {
	if f == nil {
		return nil
	}
	data, err := json.MarshalIndent(f.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
