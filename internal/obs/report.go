package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// RunReport is the machine-readable record of one pipeline run: what
// graph was processed, how each solve went, what the mass estimation
// produced, the final metric values, and the span trace. The CLIs
// write it with -report; experiments compare reports across damping
// factors, core sizes, and thresholds.
type RunReport struct {
	// Tool names the producing binary (spammass, pagerank, experiments).
	Tool string `json:"tool,omitempty"`
	// Args are the command-line arguments of the run.
	Args []string `json:"args,omitempty"`
	// StartedAt is the wall-clock start of the run.
	StartedAt time.Time `json:"started_at"`
	// WallNS is the total run duration in nanoseconds.
	WallNS int64 `json:"wall_ns"`

	Graph      *GraphInfo        `json:"graph,omitempty"`
	Solves     []SolveSummary    `json:"solves,omitempty"`
	Mass       *MassSummary      `json:"mass,omitempty"`
	Detections []DetectionRecord `json:"detections,omitempty"`
	Metrics    *MetricsSnapshot  `json:"metrics,omitempty"`
	Trace      *SpanJSON         `json:"trace,omitempty"`
}

// GraphInfo describes the processed graph.
type GraphInfo struct {
	Path   string `json:"path,omitempty"`
	Format string `json:"format,omitempty"`
	Nodes  int    `json:"nodes"`
	Edges  int64  `json:"edges"`
	// Bytes is the on-disk size read while loading, when known.
	Bytes int64 `json:"bytes,omitempty"`
	// LoadNS is the load wall time in nanoseconds, when known.
	LoadNS int64 `json:"load_ns,omitempty"`
}

// SolveSummary condenses one (possibly batched) PageRank solve; it
// mirrors pagerank.SolveStats with JSON-stable field types.
type SolveSummary struct {
	// Name labels the solve's role in the pipeline (e.g. "estimate").
	Name           string  `json:"name,omitempty"`
	Algorithm      string  `json:"algorithm"`
	Batch          int     `json:"batch"`
	Iterations     int     `json:"iterations"`
	FinalResidual  float64 `json:"final_residual"`
	Converged      bool    `json:"converged"`
	WallNS         int64   `json:"wall_ns"`
	EdgesSwept     int64   `json:"edges_swept"`
	EdgesPerSecond float64 `json:"edges_per_second"`
	Workers        int     `json:"workers"`
	// WarmStarted reports a solve seeded from a previous solution; the
	// initial residual then measures how far that seed was from the new
	// fixpoint.
	WarmStarted     bool    `json:"warm_started,omitempty"`
	InitialResidual float64 `json:"initial_residual,omitempty"`
}

// MassSummary condenses one mass estimation plus thresholding run:
// the γ scaling, the vector norms of Section 3.5's ‖p'‖ ≪ ‖p‖
// diagnostic, the Algorithm 2 threshold counts, and the spam-mass
// distribution deciles over the examined set T.
type MassSummary struct {
	Gamma    float64 `json:"gamma"`
	CoreSize int     `json:"core_size"`
	// JumpNorm is ‖w‖ of the core-biased jump vector.
	JumpNorm float64 `json:"jump_norm"`
	// PNorm and PCoreNorm are ‖p‖₁ and ‖p'‖₁.
	PNorm     float64 `json:"p_norm"`
	PCoreNorm float64 `json:"p_core_norm"`
	// Tau and Rho are the Algorithm 2 thresholds.
	Tau float64 `json:"tau"`
	Rho float64 `json:"rho"`
	// NodesAboveRho is |T|, the number of nodes examined; Candidates
	// is how many of them crossed τ.
	NodesAboveRho int `json:"nodes_above_rho"`
	Candidates    int `json:"candidates"`
	// RelMassDeciles are the 0%,10%,…,100% quantiles of the relative
	// spam mass m̃ over T (11 values); AbsMassDeciles likewise for the
	// absolute mass M̃ in scaled n/(1−c) units.
	RelMassDeciles []float64 `json:"rel_mass_deciles,omitempty"`
	AbsMassDeciles []float64 `json:"abs_mass_deciles,omitempty"`
}

// DetectionRecord is one node's detection outcome, the row format of
// both RunReport.Detections and the spammass -json line output.
type DetectionRecord struct {
	Node int64  `json:"node"`
	Host string `json:"host,omitempty"`
	// P and PCore are the scaled PageRank p and core-based p'.
	P     float64 `json:"p"`
	PCore float64 `json:"p_core"`
	// AbsMass is M̃ in scaled units; RelMass is m̃.
	AbsMass float64 `json:"abs_mass"`
	RelMass float64 `json:"rel_mass"`
	// Label is "spam" for nodes crossing both Algorithm 2 thresholds,
	// "good" otherwise.
	Label string `json:"label"`
}

// Labels for DetectionRecord.Label.
const (
	LabelSpam = "spam"
	LabelGood = "good"
)

// NewRunReport starts a report for the named tool.
func NewRunReport(tool string, args []string) *RunReport {
	return &RunReport{Tool: tool, Args: args, StartedAt: time.Now()}
}

// Finish stamps the total wall time and captures the registry and
// span trace (either may be nil).
func (r *RunReport) Finish(reg *Registry, root *Span) {
	r.WallNS = int64(time.Since(r.StartedAt))
	r.Metrics = reg.Snapshot()
	r.Trace = root.Snapshot()
}

// Write JSON-encodes the report (indented) to w.
func (r *RunReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("obs: encoding run report: %w", err)
	}
	return nil
}

// WriteJSONLines emits one compact JSON object per record — the
// spammass -json output format, shared with RunReport.Detections.
func WriteJSONLines(w io.Writer, recs []DetectionRecord) error {
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("obs: encoding detection record: %w", err)
		}
	}
	return nil
}

// Deciles returns the 0%,10%,…,100% quantiles of values (11 entries),
// or nil for an empty input. values must be sorted ascending.
func Deciles(sorted []float64) []float64 {
	n := len(sorted)
	if n == 0 {
		return nil
	}
	out := make([]float64, 11)
	for i := range out {
		// Nearest-rank on the sorted values; i=10 is the maximum.
		idx := i * (n - 1) / 10
		out[i] = sorted[idx]
	}
	return out
}
