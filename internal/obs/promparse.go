package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// A strict parser for the Prometheus text exposition format. It
// exists so the exposition encoder can be verified by something that
// does not share its code: tests round-trip WritePrometheus output
// through ParsePrometheus, and cmd/promcheck applies the same parser
// to a live GET /metrics scrape in the obs-smoke script.
//
// Strictness beyond the wire grammar:
//   - every sample must belong to a family announced by a # TYPE line;
//   - a family's TYPE may not be redeclared;
//   - duplicate samples (same name and label set) are rejected;
//   - counter values must be finite and non-negative;
//   - histograms must have cumulative, non-decreasing buckets ending
//     in le="+Inf", a _count equal to the +Inf bucket, and a _sum.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one metric family: a # TYPE declaration and its
// samples in file order.
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// promNameOK reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func promNameOK(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_' || r == ':':
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// promLabelNameOK reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func promLabelNameOK(name string) bool {
	if name == "" || strings.ContainsRune(name, ':') {
		return false
	}
	return promNameOK(name)
}

// familyOf maps a sample name to its family name: histogram series
// fold their _bucket/_sum/_count suffix back onto the base name.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// ParsePrometheus parses a strict text exposition into its families,
// sorted by name. It returns an error carrying the offending line
// number on any violation.
func ParsePrometheus(r io.Reader) ([]PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := make(map[string]string)          // family -> type
	samples := make(map[string][]PromSample)  // family -> samples
	seen := make(map[string]bool)             // name + rendered labels -> dup guard
	order := []string{}                       // family declaration order
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !promNameOK(name) {
					return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE declaration for %q", lineNo, name)
				}
				types[name] = typ
				order = append(order, name)
			}
			// Other comments (# HELP, plain #) are legal and skipped.
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(s.Name, types)
		typ, declared := types[fam]
		if !declared {
			return nil, fmt.Errorf("line %d: sample %q precedes its # TYPE declaration", lineNo, s.Name)
		}
		key := s.Name + "{" + renderLabels(s.Labels) + "}"
		if seen[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true
		if typ == "counter" && !(s.Value >= 0) {
			return nil, fmt.Errorf("line %d: counter %s has negative or NaN value %v", lineNo, s.Name, s.Value)
		}
		samples[fam] = append(samples[fam], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]PromFamily, 0, len(order))
	for _, name := range order {
		f := PromFamily{Name: name, Type: types[name], Samples: samples[name]}
		if f.Type == "histogram" {
			if err := validateHistogramFamily(f); err != nil {
				return nil, err
			}
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.Quote(labels[k])
	}
	return strings.Join(parts, ",")
}

// parseSampleLine parses `name{label="value",...} value [timestamp]`.
func parseSampleLine(line string) (PromSample, error) {
	s := PromSample{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexAny(rest, " \t")
	if brace >= 0 && (sp < 0 || brace < sp) {
		s.Name = rest[:brace]
		var err error
		rest, err = parseLabels(&s, rest[brace+1:])
		if err != nil {
			return s, err
		}
	} else {
		if sp < 0 {
			return s, fmt.Errorf("malformed sample line %q", line)
		}
		s.Name = rest[:sp]
		rest = rest[sp:]
	}
	if !promNameOK(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes `label="value",...}` and returns the remainder
// of the line past the closing brace.
func parseLabels(s *PromSample, rest string) (string, error) {
	s.Labels = make(map[string]string)
	for {
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return rest, fmt.Errorf("malformed labels near %q", rest)
		}
		name := strings.TrimSpace(rest[:eq])
		if !promLabelNameOK(name) {
			return rest, fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return rest, fmt.Errorf("label %s value is not quoted", name)
		}
		val, n, err := unquoteLabelValue(rest[1:])
		if err != nil {
			return rest, fmt.Errorf("label %s: %w", name, err)
		}
		if _, dup := s.Labels[name]; dup {
			return rest, fmt.Errorf("duplicate label %q", name)
		}
		s.Labels[name] = val
		rest = rest[1+n:]
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
			continue
		}
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		return rest, fmt.Errorf("malformed labels near %q", rest)
	}
}

// unquoteLabelValue decodes an escaped label value starting after the
// opening quote; n is the number of input bytes consumed including the
// closing quote.
func unquoteLabelValue(in string) (val string, n int, err error) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		switch in[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(in) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", in[i])
			}
		case '\n':
			return "", 0, fmt.Errorf("unescaped newline in label value")
		default:
			b.WriteByte(in[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// parsePromValue parses a sample value, accepting the exposition
// spellings of the non-finite values.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateHistogramFamily enforces the histogram invariants: bucket
// samples cumulative and non-decreasing in le order, a le="+Inf"
// bucket present, _count equal to the +Inf bucket, and a _sum sample.
func validateHistogramFamily(f PromFamily) error {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	var count, sum *float64
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			leStr, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket sample without le label", f.Name)
			}
			le, err := parsePromValue(leStr)
			if err != nil || math.IsNaN(le) {
				return fmt.Errorf("histogram %s: bad le %q", f.Name, leStr)
			}
			buckets = append(buckets, bucket{le: le, cum: s.Value})
		case f.Name + "_count":
			v := s.Value
			count = &v
		case f.Name + "_sum":
			v := s.Value
			sum = &v
		default:
			return fmt.Errorf("histogram %s: unexpected sample %s", f.Name, s.Name)
		}
	}
	if len(buckets) == 0 {
		return fmt.Errorf("histogram %s: no buckets", f.Name)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	prev := math.Inf(-1)
	cum := -1.0
	for _, b := range buckets {
		if b.le == prev {
			return fmt.Errorf("histogram %s: duplicate le=%v bucket", f.Name, b.le)
		}
		prev = b.le
		if b.cum < cum {
			return fmt.Errorf("histogram %s: bucket counts not cumulative at le=%v", f.Name, b.le)
		}
		cum = b.cum
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.le, 1) {
		return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", f.Name)
	}
	if count == nil {
		return fmt.Errorf("histogram %s: missing _count", f.Name)
	}
	if sum == nil {
		return fmt.Errorf("histogram %s: missing _sum", f.Name)
	}
	// lint:ignore floatcmp exact equality is the exposition invariant (+Inf bucket == _count, both integers)
	if last.cum != *count {
		return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", f.Name, last.cum, *count)
	}
	return nil
}
