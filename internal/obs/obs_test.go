package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("edges")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("edges") != c {
		t.Fatal("counter lookup did not return the cached handle")
	}
	g := r.Gauge("nodes")
	g.Set(10)
	g.Set(12.5)
	if got := g.Value(); got != 12.5 {
		t.Fatalf("gauge = %v, want 12.5", got)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h").Observe(1e-5)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got, want := r.Histogram("h").Sum(), 8000*1e-5; math.Abs(got-want) > 1e-9 {
		t.Fatalf("histogram sum = %v, want %v", got, want)
	}
}

// TestHistogramBoundsMonotone is a satellite invariant: the fixed
// log-scale bucket boundaries must be strictly increasing.
func TestHistogramBoundsMonotone(t *testing.T) {
	bounds := DefaultTimingBounds()
	if len(bounds) < 8 {
		t.Fatalf("only %d bounds", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds[%d]=%v not greater than bounds[%d]=%v", i, bounds[i], i-1, bounds[i-1])
		}
	}
	if bounds[0] != 1e-6 {
		t.Fatalf("first bound = %v, want 1µs", bounds[0])
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 1e6} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	if want := []int64{2, 1, 1, 1}; !reflect.DeepEqual(s.Counts, want) {
		t.Fatalf("counts = %v, want %v", s.Counts, want)
	}
	if len(s.Counts) != len(s.Bounds)+1 {
		t.Fatalf("len(Counts)=%d, len(Bounds)=%d: overflow bucket missing", len(s.Counts), len(s.Bounds))
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Context
	var sp *Span
	var reg *Registry
	// None of these may panic or record anything.
	c.Counter("x").Add(1)
	c.Gauge("x").Set(1)
	c.Histogram("x").Observe(1)
	c.Logf("dropped %d", 1)
	c.Span("x").End()
	sp.SetAttr("k", "v")
	sp.Event("e")
	sp.Child("c").End()
	sp.End()
	if sp.Snapshot() != nil || reg.Snapshot() != nil {
		t.Fatal("nil snapshot should be nil")
	}
	if c.In(NewSpan("s")) != nil {
		t.Fatal("In on nil context should stay nil")
	}
	if got := c.Span("x"); got != nil {
		t.Fatal("Span on nil context should be nil")
	}
	if err := Timed(c, "phase", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSpanTree(t *testing.T) {
	root := NewSpan("pipeline")
	load := root.Child("graph.load")
	load.SetAttr("nodes", 10)
	load.SetAttr("nodes", 12) // overwrite
	load.Event("first")
	load.Event("second")
	load.End()
	solve := root.Child("pagerank.solve")
	solve.End()
	root.End()

	tr := root.Snapshot()
	if len(tr.Children) != 2 {
		t.Fatalf("%d children, want 2", len(tr.Children))
	}
	got := tr.Find("graph.load")
	if got == nil {
		t.Fatal("graph.load span missing")
	}
	if got.Attrs["nodes"] != 12 {
		t.Fatalf("attr nodes = %v, want 12", got.Attrs["nodes"])
	}
	if len(got.Events) != 2 || got.Events[0].Msg != "first" || got.Events[1].Msg != "second" {
		t.Fatalf("events out of order: %+v", got.Events)
	}
	if got.Events[1].OffsetNS < got.Events[0].OffsetNS {
		t.Fatal("event offsets must be non-decreasing")
	}
	names := tr.SpanNames()
	if want := []string{"graph.load", "pagerank.solve", "pipeline"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("span names = %v, want %v", names, want)
	}
}

func TestContextRerooting(t *testing.T) {
	octx := NewContext(NewRegistry(), NewSpan("root"))
	stage := octx.Span("stage")
	inner := octx.In(stage)
	inner.Span("leaf").End()
	stage.End()
	octx.Root().End()

	tr := octx.Root().Snapshot()
	st := tr.Find("stage")
	if st == nil || len(st.Children) != 1 || st.Children[0].Name != "leaf" {
		t.Fatalf("leaf not nested under stage: %+v", tr)
	}

	prev := octx.SetRoot(stage)
	if prev.Name() != "root" {
		t.Fatalf("SetRoot returned %q, want root", prev.Name())
	}
	octx.Span("late").End()
	octx.SetRoot(prev)
	if octx.Root().Snapshot().Find("stage").Find("late") == nil {
		t.Fatal("span started after SetRoot should nest under stage")
	}
}

// TestRunReportRoundTrip is a satellite invariant: a RunReport must
// survive encoding/json unchanged (encode → decode → re-encode
// byte-identical).
func TestRunReportRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pagerank.solves_total").Add(2)
	reg.Gauge("graph.nodes").Set(10000)
	reg.Histogram("pagerank.solve_seconds").Observe(0.25)
	root := NewSpan("spammass")
	root.Child("graph.load").End()
	root.End()

	rep := NewRunReport("spammass", []string{"-graph", "web.graph"})
	rep.Graph = &GraphInfo{Path: "web.graph", Format: "binary", Nodes: 10000, Edges: 80000, Bytes: 123456, LoadNS: 7}
	rep.Solves = []SolveSummary{{
		Name: "estimate", Algorithm: "jacobi", Batch: 2, Iterations: 61,
		FinalResidual: 9.9e-13, Converged: true, WallNS: 1234567,
		EdgesSwept: 4880000, EdgesPerSecond: 3.9e9, Workers: 8,
	}}
	rep.Mass = &MassSummary{
		Gamma: 0.85, CoreSize: 66, JumpNorm: 0.85, PNorm: 1, PCoreNorm: 0.93,
		Tau: 0.98, Rho: 10, NodesAboveRho: 420, Candidates: 17,
		RelMassDeciles: []float64{-0.1, 0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.9, 1},
		AbsMassDeciles: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
	rep.Detections = []DetectionRecord{
		{Node: 3, Host: "spam.example", P: 31.5, PCore: 0.4, AbsMass: 31.1, RelMass: 0.987, Label: LabelSpam},
		{Node: 9, Host: "ok.example", P: 12.5, PCore: 12.0, AbsMass: 0.5, RelMass: 0.04, Label: LabelGood},
	}
	rep.Finish(reg, root)

	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.Bytes()
	var decoded RunReport
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatalf("decoding report: %v", err)
	}
	var buf2 bytes.Buffer
	if err := decoded.Write(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatalf("report not stable under round-trip:\n%s\nvs\n%s", first, buf2.Bytes())
	}
	if decoded.Trace.Find("graph.load") == nil {
		t.Fatal("trace lost in round-trip")
	}
	if decoded.Metrics.Counters["pagerank.solves_total"] != 2 {
		t.Fatal("metrics lost in round-trip")
	}
}

func TestWriteJSONLines(t *testing.T) {
	var buf bytes.Buffer
	err := WriteJSONLines(&buf, []DetectionRecord{
		{Node: 1, P: 2, PCore: 1, AbsMass: 1, RelMass: 0.5, Label: LabelGood},
		{Node: 2, P: 20, PCore: 0.2, AbsMass: 19.8, RelMass: 0.99, Label: LabelSpam},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	var rec DetectionRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Label != LabelSpam || rec.Node != 2 {
		t.Fatalf("bad record: %+v", rec)
	}
}

func TestDeciles(t *testing.T) {
	if Deciles(nil) != nil {
		t.Fatal("empty deciles should be nil")
	}
	one := Deciles([]float64{7})
	for _, v := range one {
		if v != 7 {
			t.Fatalf("singleton deciles = %v", one)
		}
	}
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = float64(i)
	}
	d := Deciles(vals)
	if len(d) != 11 || d[0] != 0 || d[5] != 50 || d[10] != 100 {
		t.Fatalf("deciles = %v", d)
	}
	for i := 1; i < len(d); i++ {
		if d[i] < d[i-1] {
			t.Fatalf("deciles not monotone: %v", d)
		}
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pagerank.solves_total").Inc()
	d, err := StartDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	resp, err := client.Get("http://" + d.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "spammass") || !strings.Contains(string(body), "pagerank.solves_total") {
		t.Fatalf("/debug/vars missing registry: %s", body)
	}

	resp, err = client.Get("http://" + d.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.PublishExpvar("obs_test_registry")
	r.PublishExpvar("obs_test_registry") // second publish must not panic
	r2 := NewRegistry()
	r2.PublishExpvar("obs_test_registry") // name taken: no-op, no panic
}
