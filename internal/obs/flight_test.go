package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func entry(name string, d time.Duration, isErr bool) FlightEntry {
	return FlightEntry{
		Kind:       "request",
		Name:       name,
		DurationNS: int64(d),
		Err:        isErr,
	}
}

// TestFlightSlowest checks the slowest-N set keeps exactly the
// slowest entries in order and that QualifiesSlow tracks the floor.
func TestFlightSlowest(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SlowestN: 3, ErrorN: 4})
	// Until full, everything qualifies.
	if !f.QualifiesSlow(1) {
		t.Fatalf("empty recorder rejected a 1ns entry")
	}
	for _, d := range []time.Duration{10, 30, 20} {
		f.Record(entry("r", d, false))
	}
	// Full at {30,20,10}; floor is 10ns.
	if f.QualifiesSlow(10) {
		t.Fatalf("duration equal to floor qualified")
	}
	if !f.QualifiesSlow(11) {
		t.Fatalf("duration above floor did not qualify")
	}
	f.Record(entry("slow", 100, false)) // evicts 10
	f.Record(entry("fast", 5, false))   // below floor: Record tolerates it, set unchanged
	s := f.Snapshot()
	if len(s.Slowest) != 3 {
		t.Fatalf("slowest has %d entries, want 3", len(s.Slowest))
	}
	wantDur := []int64{100, 30, 20}
	for i, e := range s.Slowest {
		if e.DurationNS != wantDur[i] {
			t.Fatalf("slowest[%d].DurationNS = %d, want %d (%+v)", i, e.DurationNS, wantDur[i], s.Slowest)
		}
	}
	if s.Slowest[0].Name != "slow" {
		t.Fatalf("slowest[0] = %q, want slow", s.Slowest[0].Name)
	}
}

// TestFlightErrors checks the error ring keeps the most recent N,
// most recent first, regardless of duration.
func TestFlightErrors(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SlowestN: 2, ErrorN: 3})
	for i, name := range []string{"e1", "e2", "e3", "e4"} {
		f.Record(entry(name, time.Duration(i+1), true))
	}
	s := f.Snapshot()
	want := []string{"e4", "e3", "e2"}
	if len(s.Errors) != len(want) {
		t.Fatalf("errors has %d entries, want %d", len(s.Errors), len(want))
	}
	for i, e := range s.Errors {
		if e.Name != want[i] {
			t.Fatalf("errors[%d] = %q, want %q", i, e.Name, want[i])
		}
	}
}

// TestFlightWriteFile dumps to disk and re-reads the JSON.
func TestFlightWriteFile(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{})
	f.Record(FlightEntry{
		Kind:       "refresh",
		TraceID:    "cafe",
		Name:       "serve.refresh",
		Err:        true,
		Error:      "solver did not converge",
		DurationNS: 123,
		Trace:      &SpanJSON{Name: "serve.refresh"},
	})
	path := filepath.Join(t.TempDir(), "flight.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var s FlightSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(s.Errors) != 1 || s.Errors[0].Error != "solver did not converge" {
		t.Fatalf("round-tripped snapshot = %+v", s)
	}
	if s.Errors[0].Trace == nil || s.Errors[0].Trace.Name != "serve.refresh" {
		t.Fatalf("span tree lost in round trip: %+v", s.Errors[0])
	}
}

// TestFlightNil checks nil-safety.
func TestFlightNil(t *testing.T) {
	var f *FlightRecorder
	if f.QualifiesSlow(time.Hour) {
		t.Fatalf("nil recorder qualified an entry")
	}
	f.Record(entry("x", 1, true))
	if f.Snapshot() != nil {
		t.Fatalf("nil recorder snapshotted")
	}
	if err := f.WriteFile("/nonexistent/should/not/write"); err != nil {
		t.Fatalf("nil WriteFile errored: %v", err)
	}
}

// TestFlightConcurrent hammers Record/QualifiesSlow/Snapshot; the
// -race gate for the flight recorder.
func TestFlightConcurrent(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{SlowestN: 8, ErrorN: 16})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d := time.Duration((i*7+w)%1000 + 1)
				if f.QualifiesSlow(d) {
					f.Record(entry("req", d, i%13 == 0))
				}
				if i%50 == 0 {
					f.Snapshot()
				}
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	s := f.Snapshot()
	for i := 1; i < len(s.Slowest); i++ {
		if s.Slowest[i].DurationNS > s.Slowest[i-1].DurationNS {
			t.Fatalf("slowest not sorted: %+v", s.Slowest)
		}
	}
}
