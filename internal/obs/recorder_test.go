package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestRecorderSeries checks basic ring behavior: points accumulate,
// since filters, histogram series derive _count/_sum, and the ring
// evicts oldest-first at capacity.
func TestRecorderSeries(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, RecorderConfig{Capacity: 4})
	base := time.Unix(1000, 0)

	for i := 0; i < 6; i++ {
		reg.Counter("reqs_total").Inc()
		reg.Gauge("epoch").Set(float64(i))
		reg.Histogram("lat_seconds").Observe(0.01)
		rec.Sample(base.Add(time.Duration(i) * time.Second))
	}
	if got := rec.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (capacity)", got)
	}
	// Oldest two samples (i=0,1) evicted; first retained is i=2 with
	// counter value 3.
	pts := rec.Series("reqs_total", time.Time{})
	if len(pts) != 4 {
		t.Fatalf("Series returned %d points, want 4", len(pts))
	}
	if pts[0].Value != 3 || pts[3].Value != 6 {
		t.Fatalf("counter series = %+v, want 3..6", pts)
	}
	if !pts[0].Time.Before(pts[3].Time) {
		t.Fatalf("series not oldest-first: %+v", pts)
	}
	// since filter.
	late := rec.Series("reqs_total", base.Add(4*time.Second))
	if len(late) != 2 {
		t.Fatalf("since filter returned %d points, want 2", len(late))
	}
	// Histogram-derived series.
	cnt := rec.Series("lat_seconds_count", time.Time{})
	if len(cnt) != 4 || cnt[3].Value != 6 {
		t.Fatalf("lat_seconds_count = %+v", cnt)
	}
	sum := rec.Series("lat_seconds_sum", time.Time{})
	if len(sum) != 4 || sum[3].Value < 0.059 || sum[3].Value > 0.061 {
		t.Fatalf("lat_seconds_sum = %+v", sum)
	}
	// Unknown metric.
	if pts := rec.Series("nope", time.Time{}); pts != nil {
		t.Fatalf("unknown series = %+v, want nil", pts)
	}
	// Names union.
	names := rec.Names()
	want := []string{"epoch", "lat_seconds_count", "lat_seconds_sum", "reqs_total"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

// TestRecorderNil checks every method is a no-op on nil.
func TestRecorderNil(t *testing.T) {
	var rec *Recorder
	rec.Sample(time.Now())
	rec.Run(context.Background()) // must return immediately, not hang
	if rec.Len() != 0 || rec.Series("x", time.Time{}) != nil || rec.Names() != nil {
		t.Fatalf("nil recorder leaked state")
	}
	if NewRecorder(nil, RecorderConfig{}) != nil {
		t.Fatalf("NewRecorder(nil) allocated")
	}
}

// TestRecorderConcurrent hammers Sample/Series/Names against
// concurrent registry writers and snapshot-epoch publishes; run under
// -race this is the data-race gate for the sampler.
func TestRecorderConcurrent(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, RecorderConfig{Capacity: 64})
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Registry writers: counters, gauges, histograms.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("hammer_total")
			g := reg.Gauge("hammer_epoch")
			h := reg.Histogram("hammer_seconds")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i%10) * 1e-4)
			}
		}()
	}
	// Epoch publisher: simulates the refresher pushing a point per
	// snapshot publish.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.Gauge("snapshot_epoch").Set(float64(i))
			rec.Sample(time.Now())
		}
	}()
	// Interval sampler + readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec.Sample(time.Now())
			rec.Series("hammer_total", time.Time{})
			rec.Names()
		}
	}()

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	if rec.Len() == 0 {
		t.Fatalf("no samples recorded")
	}
	pts := rec.Series("hammer_total", time.Time{})
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value {
			t.Fatalf("counter series went backwards at %d: %v -> %v", i, pts[i-1].Value, pts[i].Value)
		}
		if pts[i].Time.Before(pts[i-1].Time) {
			t.Fatalf("series time went backwards at %d: %v -> %v", i, pts[i-1].Time, pts[i].Time)
		}
	}
}

// TestRecorderClampsTimestamps pins the ordering guarantee for racing
// samplers: a tick whose timestamp predates a sample that already won
// the ring lock is clamped forward, so the series never zig-zags on
// the time axis even though values are appended in lock order.
func TestRecorderClampsTimestamps(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, RecorderConfig{Capacity: 8})
	base := time.Unix(2000, 0)

	reg.Counter("c_total").Inc()
	rec.Sample(base.Add(10 * time.Second)) // publish push, won the lock first
	reg.Counter("c_total").Inc()
	rec.Sample(base) // late tick with an older timestamp
	reg.Counter("c_total").Inc()
	rec.Sample(base.Add(20 * time.Second))

	pts := rec.Series("c_total", time.Time{})
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if !pts[1].Time.Equal(pts[0].Time) {
		t.Fatalf("late sample not clamped: %v after %v", pts[1].Time, pts[0].Time)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time.Before(pts[i-1].Time) {
			t.Fatalf("time went backwards at %d", i)
		}
		if pts[i].Value < pts[i-1].Value {
			t.Fatalf("value went backwards at %d", i)
		}
	}
	// The since filter still sees the clamped point.
	if got := rec.Series("c_total", base.Add(10*time.Second)); len(got) != 3 {
		t.Fatalf("since filter over clamped series returned %d points, want 3", len(got))
	}
}

// TestRecorderRun checks the ticker loop samples and stops on cancel.
func TestRecorderRun(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ticks_total").Inc()
	rec := NewRecorder(reg, RecorderConfig{Interval: 5 * time.Millisecond, Capacity: 16})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		rec.Run(ctx)
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for rec.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("Run did not stop on cancel")
	}
	if rec.Len() < 3 {
		t.Fatalf("Run recorded %d samples, want ≥ 3", rec.Len())
	}
}
