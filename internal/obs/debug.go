package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves the runtime-introspection endpoints while a run
// is in flight: /debug/vars (expvar, including a published Registry),
// /metrics (Prometheus text exposition of the same registry), and
// /debug/pprof/ (CPU, heap, goroutine, … profiles). It is the
// -debug-addr endpoint of the CLIs.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebug listens on addr (e.g. "localhost:6060"; use ":0" for an
// ephemeral port) and serves the debug endpoints in a background
// goroutine. reg, if non-nil, is published to expvar under
// "spammass" first so it shows up on /debug/vars.
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	reg.PublishExpvar("spammass")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", PrometheusHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	d := &DebugServer{ln: ln, srv: srv}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return d, nil
}

// Addr returns the address the server is listening on.
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close stops the server immediately, aborting in-flight requests and
// releasing the listener (and therefore the port). Use Shutdown to
// drain in-flight scrapes first.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}

// Shutdown stops the server gracefully: the listener is closed right
// away (the port is free for reuse when Shutdown returns), then
// in-flight requests — a pprof profile capture can run for seconds —
// are drained until done or ctx expires, whichever comes first. On a
// deadline the remaining connections are torn down via Close so the
// server never outlives the call.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	if d == nil {
		return nil
	}
	err := d.srv.Shutdown(ctx)
	if err != nil {
		// Shutdown stopped waiting (ctx expired) without closing the
		// lingering connections; Close tears them down.
		if cerr := d.srv.Close(); cerr != nil && cerr != http.ErrServerClosed {
			return cerr
		}
	}
	return err
}
