package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Recorder keeps a bounded in-memory history of registry values: a
// ring buffer of flattened snapshots taken on a fixed interval (plus
// extra points pushed at interesting moments, e.g. one per snapshot
// publish), so refresh latency, iteration counts, shed rate, and
// snapshot age are inspectable over a day of operation in fixed
// memory. Counters and gauges record their value; each histogram
// contributes two derived series, <name>_count and <name>_sum, from
// which rates and means are recoverable.
//
// All methods on a nil *Recorder are no-ops, matching the rest of the
// package.

// RecorderConfig sizes a Recorder.
type RecorderConfig struct {
	// Interval between automatic samples in Run. Default 15s.
	Interval time.Duration
	// Capacity is the number of samples retained. Default 5760
	// (one day at the default interval).
	Capacity int
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.Interval <= 0 {
		c.Interval = 15 * time.Second
	}
	if c.Capacity <= 0 {
		c.Capacity = 5760
	}
	return c
}

// Point is one observation of one series.
type Point struct {
	Time  time.Time `json:"time"`
	Value float64   `json:"value"`
}

// sample is one flattened registry snapshot.
type sample struct {
	t      time.Time
	values map[string]float64
}

// Recorder is the ring-buffer time-series sampler.
type Recorder struct {
	reg      *Registry
	interval time.Duration

	mu    sync.Mutex
	ring  []sample
	next  int       // ring[next] is overwritten by the next sample
	n     int       // number of valid samples, ≤ len(ring)
	lastT time.Time // timestamp of the most recent sample
}

// NewRecorder builds a recorder over reg. A nil registry yields a nil
// recorder.
func NewRecorder(reg *Registry, cfg RecorderConfig) *Recorder {
	if reg == nil {
		return nil
	}
	cfg = cfg.withDefaults()
	return &Recorder{
		reg:      reg,
		interval: cfg.Interval,
		ring:     make([]sample, cfg.Capacity),
	}
}

// Interval returns the configured sampling interval.
func (r *Recorder) Interval() time.Duration {
	if r == nil {
		return 0
	}
	return r.interval
}

// flatten turns a snapshot into the recorded series values.
func flatten(s *MetricsSnapshot) map[string]float64 {
	if s == nil {
		return nil
	}
	out := make(map[string]float64, len(s.Counters)+len(s.Gauges)+2*len(s.Histograms))
	for name, v := range s.Counters {
		out[name] = float64(v)
	}
	for name, v := range s.Gauges {
		out[name] = v
	}
	for name, h := range s.Histograms {
		out[name+"_count"] = float64(h.Count)
		out[name+"_sum"] = h.Sum
	}
	return out
}

// Sample takes one snapshot of the registry and appends it to the
// ring, evicting the oldest sample when full. The snapshot is taken
// under the ring lock: with concurrent samplers (the ticker loop plus
// the refresher's per-publish push) an unlocked snapshot could be
// appended after a later one, making monotone counter series run
// backwards. The caller-supplied timestamp is clamped the same way: a
// tick delivered late must not time-travel behind a publish push that
// won the lock first, or the series would zig-zag on the time axis
// even though its values are in order.
func (r *Recorder) Sample(t time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t.Before(r.lastT) {
		t = r.lastT
	}
	r.lastT = t
	vals := flatten(r.reg.Snapshot())
	r.ring[r.next] = sample{t: t, values: vals}
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
}

// Run samples on the configured interval until ctx is canceled. It
// takes one sample immediately so a fresh process has a point before
// the first tick.
func (r *Recorder) Run(ctx context.Context) {
	if r == nil {
		return
	}
	r.Sample(now())
	tick := time.NewTicker(r.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-tick.C:
			r.Sample(t)
		}
	}
}

// Len returns the number of retained samples.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// each walks the retained samples oldest-first under the lock.
func (r *Recorder) each(f func(s *sample)) {
	start := r.next - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		f(&r.ring[(start+i)%len(r.ring)])
	}
}

// Series returns the points of one series at or after since,
// oldest-first. Samples in which the series is absent (the metric did
// not exist yet) are skipped.
func (r *Recorder) Series(metric string, since time.Time) []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Point
	r.each(func(s *sample) {
		if s.t.Before(since) {
			return
		}
		if v, ok := s.values[metric]; ok {
			out = append(out, Point{Time: s.t, Value: v})
		}
	})
	return out
}

// Names returns the sorted union of series names across retained
// samples.
func (r *Recorder) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	r.each(func(s *sample) {
		for name := range s.values {
			seen[name] = true
		}
	})
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
