package obs

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestDebugServerReleasesPort is the regression test for the listener
// leak: stopping the debug server must free its port for immediate
// reuse, both via Close and via context-based Shutdown. Before the
// fix the listener survived the server for the process lifetime.
func TestDebugServerReleasesPort(t *testing.T) {
	stop := map[string]func(*DebugServer) error{
		"close":    func(d *DebugServer) error { return d.Close() },
		"shutdown": func(d *DebugServer) error { return d.Shutdown(context.Background()) },
	}
	for name, fn := range stop {
		t.Run(name, func(t *testing.T) {
			d, err := StartDebug("127.0.0.1:0", nil)
			if err != nil {
				t.Fatal(err)
			}
			addr := d.Addr()
			if err := fn(d); err != nil {
				t.Fatalf("stopping debug server: %v", err)
			}
			// The exact address must be bindable again. A few retries
			// absorb kernel-level teardown latency, but the listener
			// itself must already be closed.
			var ln net.Listener
			for i := 0; i < 50; i++ {
				if ln, err = net.Listen("tcp", addr); err == nil {
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			if err != nil {
				t.Fatalf("port %s not released after %s: %v", addr, name, err)
			}
			ln.Close()
		})
	}
}

// TestDebugServerShutdownDeadline pins the degraded path: a Shutdown
// whose context is already expired still closes the listener and
// returns the context error instead of hanging on in-flight requests.
func TestDebugServerShutdownDeadline(t *testing.T) {
	d, err := StartDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := d.Addr()
	// Park an active connection (partial request) so Shutdown cannot
	// drain to idle and must hit the context instead.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /debug/vars HTTP/1.1\r\nHost: debug\r\n")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("Shutdown with canceled context returned %v, want context.Canceled", err)
	}
	if _, err := (&http.Client{Timeout: time.Second}).Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatal("debug server still serving after Shutdown")
	}
}
