package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (text/plain; version=0.0.4), rendered
// from a MetricsSnapshot. The encoder and the expvar publication are
// two views of the same snapshot pass — PublishExpvar serializes
// Registry.Snapshot() to JSON, WritePrometheus renders it as
// exposition text — so the two surfaces can never disagree about a
// metric's value within one scrape.
//
// Metric names in this repo are dotted (serve.requests_total); the
// exposition sanitizes them to the Prometheus name charset
// ([a-zA-Z_:][a-zA-Z0-9_:]*) by mapping every other rune to '_'.
// Histograms expand to the conventional <name>_bucket{le="..."} series
// (cumulative, ending in le="+Inf"), plus <name>_sum and <name>_count.

// PrometheusName sanitizes a registry metric name into the Prometheus
// exposition charset: runes outside [a-zA-Z0-9_:] become '_', and a
// leading digit is prefixed with '_'.
func PrometheusName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatPromValue renders a sample value. ±Inf and NaN use the
// exposition spellings; finite values use the shortest round-trip
// form.
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format, families sorted by name for a deterministic
// scrape. A nil snapshot writes nothing (an empty exposition is
// valid).
func WritePrometheus(w io.Writer, s *MetricsSnapshot) error {
	if s == nil {
		return nil
	}
	// Families keyed by sanitized name; a collision after sanitation
	// (two registry names mapping to one exposition name) would emit a
	// duplicate family, which the strict parser rejects — tests catch
	// it at registration time.
	type family struct {
		typ   string
		lines []string
	}
	fams := make(map[string]*family)
	add := func(name, typ string, lines ...string) {
		f := fams[name]
		if f == nil {
			f = &family{typ: typ}
			fams[name] = f
		}
		f.lines = append(f.lines, lines...)
	}
	for name, v := range s.Counters {
		pn := PrometheusName(name)
		add(pn, "counter", pn+" "+strconv.FormatInt(v, 10))
	}
	for name, v := range s.Gauges {
		pn := PrometheusName(name)
		add(pn, "gauge", pn+" "+formatPromValue(v))
	}
	for name, h := range s.Histograms {
		pn := PrometheusName(name)
		lines := make([]string, 0, len(h.Counts)+2)
		cum := int64(0)
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatPromValue(h.Bounds[i])
			}
			lines = append(lines, fmt.Sprintf("%s_bucket{le=%q} %d", pn, escapeLabelValue(le), cum))
		}
		lines = append(lines,
			pn+"_sum "+formatPromValue(h.Sum),
			pn+"_count "+strconv.FormatInt(h.Count, 10))
		add(pn, "histogram", lines...)
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus renders the registry's current state in the
// Prometheus text exposition format. It takes the same single snapshot
// pass (Registry.Snapshot) that PublishExpvar serves on /debug/vars.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, r.Snapshot())
}

// PrometheusContentType is the Content-Type of the text exposition.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// PrometheusHandler serves GET /metrics for a registry. A nil registry
// serves an empty (but valid) exposition.
func PrometheusHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		// A scrape-time write error means the scraper went away.
		_ = reg.WritePrometheus(w)
	})
}
