package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one timed region of the pipeline: it has a name, start and
// end times, ordered key/value attributes, timestamped events, and
// child spans. Spans form the JSON trace of a run.
//
// A span is safe for concurrent use, and every method is a no-op on a
// nil *Span, so instrumented code needs no sink checks.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    []attr
	events   []event
	children []*Span
}

type attr struct {
	key   string
	value any
}

type event struct {
	offset time.Duration
	msg    string
}

// NewSpan starts a new root span.
func NewSpan(name string) *Span {
	return &Span{name: name, start: now()}
}

// Child starts a new span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := NewSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildWindow attaches an already-ended child span covering the given
// window. It annotates logical sub-operations whose wall time was
// shared — e.g. the p and p' solves of one batched sweep.
func (s *Span) ChildWindow(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: start, end: start.Add(d)}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr records a key/value attribute. Setting a key again
// overwrites the earlier value.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].value = value
			return
		}
	}
	s.attrs = append(s.attrs, attr{key, value})
}

// Event records a timestamped message on the span.
func (s *Span) Event(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, event{offset: now().Sub(s.start), msg: msg})
	s.mu.Unlock()
}

// Eventf records a formatted timestamped message on the span.
func (s *Span) Eventf(format string, args ...any) {
	if s == nil {
		return
	}
	s.Event(fmt.Sprintf(format, args...))
}

// End marks the span finished. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now()
	}
	s.mu.Unlock()
}

// Recording reports whether events and attributes on s go anywhere.
func (s *Span) Recording() bool { return s != nil }

// Ended reports whether End has been called. It is false for a nil
// span: a nil span is never started, so it can never finish.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.end.IsZero()
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns end−start, using the current time for a span still
// running.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return now().Sub(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanJSON is the serialized form of a span tree; it is what a
// RunReport embeds and what -trace files contain.
type SpanJSON struct {
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"duration_ns"`
	// Ended distinguishes a finished span from one still running when
	// the snapshot was taken (whose duration is the time so far). A
	// span that is still open in a final trace is a telemetry bug —
	// exactly what the spanend lint analyzer guards against.
	Ended    bool           `json:"ended"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Events   []EventJSON    `json:"events,omitempty"`
	Children []*SpanJSON    `json:"children,omitempty"`
}

// EventJSON is one serialized span event; the offset is relative to
// the span start.
type EventJSON struct {
	OffsetNS int64  `json:"offset_ns"`
	Msg      string `json:"msg"`
}

// Snapshot serializes the span tree rooted at s. A span still running
// is reported with its duration so far.
func (s *Span) Snapshot() *SpanJSON {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := &SpanJSON{
		Name:       s.name,
		Start:      s.start,
		DurationNS: int64(s.durationLocked()),
		Ended:      !s.end.IsZero(),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.key] = a.value
		}
	}
	for _, e := range s.events {
		out.Events = append(out.Events, EventJSON{OffsetNS: int64(e.offset), Msg: e.msg})
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.Snapshot())
	}
	return out
}

func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return now().Sub(s.start)
	}
	return s.end.Sub(s.start)
}

// Find returns the first span in the tree (depth-first, preorder)
// with the given name, or nil.
func (t *SpanJSON) Find(name string) *SpanJSON {
	if t == nil {
		return nil
	}
	if t.Name == name {
		return t
	}
	for _, c := range t.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// SpanNames returns the sorted set of distinct span names in the tree.
func (t *SpanJSON) SpanNames() []string {
	seen := map[string]bool{}
	var walk func(*SpanJSON)
	walk = func(n *SpanJSON) {
		if n == nil {
			return
		}
		seen[n.Name] = true
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteTrace JSON-encodes the span tree rooted at s to w (indented,
// the -trace file format).
func WriteTrace(w io.Writer, s *Span) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Snapshot())
}
