package obs

import (
	"expvar"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrency-safe collection of named metrics. Metric
// handles are created on first use and cached; hot paths should hold
// the handle rather than re-looking it up by name. All methods are
// nil-safe: a nil *Registry hands out nil handles whose operations
// are no-ops.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	published  bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates float observations (typically durations in
// seconds) into fixed log-scale buckets. Observation is lock-free.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds; last bucket is overflow
	counts  []atomic.Int64
	n       atomic.Int64
	sumBits atomic.Uint64
}

// timingBounds are the default histogram buckets: four per decade
// from 1µs to 1000s, a fixed log scale wide enough for both a single
// sweep iteration and a full experiment suite.
var timingBounds = func() []float64 {
	const perDecade = 4
	bounds := make([]float64, 0, 9*perDecade+1)
	for i := 0; i <= 9*perDecade; i++ {
		bounds = append(bounds, 1e-6*math.Pow(10, float64(i)/perDecade))
	}
	return bounds
}()

// DefaultTimingBounds returns (a copy of) the default bucket upper
// bounds in seconds.
func DefaultTimingBounds() []float64 {
	out := make([]float64, len(timingBounds))
	copy(out, timingBounds)
	return out
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) = overflow
	h.counts[idx].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the timing histogram registered under name with
// the default log-scale buckets, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, timingBounds)
}

// HistogramWith is Histogram with explicit bucket upper bounds; the
// bounds of an already-registered histogram are kept.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// MetricsSnapshot is a point-in-time copy of a registry, in the shape
// embedded into RunReport and exported over expvar.
type MetricsSnapshot struct {
	Counters   map[string]int64              `json:"counters,omitempty"`
	Gauges     map[string]float64            `json:"gauges,omitempty"`
	Histograms map[string]*HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot copies one histogram: Bounds[i] is the inclusive
// upper bound of Counts[i]; the final entry of Counts is the overflow
// bucket, so len(Counts) == len(Bounds)+1.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *MetricsSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &MetricsSnapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]*HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := &HistogramSnapshot{
				Count:  h.Count(),
				Sum:    h.Sum(),
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// PublishExpvar exposes the registry under the given expvar name (and
// therefore on /debug/vars). Publishing twice, or under a name that
// is already taken, is a no-op: expvar forbids re-publication.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.published {
		r.mu.Unlock()
		return
	}
	r.published = expvar.Get(name) == nil
	ok := r.published
	r.mu.Unlock()
	if ok {
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	}
}
