package obs

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// findFamily returns the parsed family with the given name, or nil.
func findFamily(fams []PromFamily, name string) *PromFamily {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// TestPrometheusRoundTrip renders a populated registry and re-parses
// it with the strict parser: every metric must come back with its
// value, and the histogram must satisfy the cumulative/+Inf/_sum
// invariants the parser enforces.
func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.requests_total").Add(42)
	reg.Counter("pagerank.edges_swept_total").Add(1e6)
	reg.Gauge("serve.snapshot_epoch").Set(7)
	reg.Gauge("mass.gamma").Set(0.57721)
	h := reg.Histogram("serve.request_seconds")
	for _, v := range []float64{1e-5, 3e-4, 0.02, 0.02, 1.5, 2000} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	fams, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("strict parser rejected exposition: %v\n%s", err, b.String())
	}

	// Counters: dotted registry names sanitize to underscores.
	cf := findFamily(fams, "serve_requests_total")
	if cf == nil || cf.Type != "counter" {
		t.Fatalf("serve_requests_total missing or wrong type: %+v", cf)
	}
	if got := cf.Samples[0].Value; got != 42 {
		t.Fatalf("serve_requests_total = %v, want 42", got)
	}
	gf := findFamily(fams, "mass_gamma")
	if gf == nil || gf.Type != "gauge" {
		t.Fatalf("mass_gamma missing or wrong type: %+v", gf)
	}
	if got := gf.Samples[0].Value; got != 0.57721 {
		t.Fatalf("mass_gamma = %v, want 0.57721", got)
	}

	// Histogram: _count and _sum match the registry, +Inf bucket
	// present (validateHistogramFamily already checked cumulativeness
	// and +Inf == _count; spot-check values here).
	hf := findFamily(fams, "serve_request_seconds")
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("serve_request_seconds missing or wrong type: %+v", hf)
	}
	var gotCount, gotSum, infBucket float64
	sawInf := false
	for _, s := range hf.Samples {
		switch s.Name {
		case "serve_request_seconds_count":
			gotCount = s.Value
		case "serve_request_seconds_sum":
			gotSum = s.Value
		case "serve_request_seconds_bucket":
			if s.Labels["le"] == "+Inf" {
				sawInf = true
				infBucket = s.Value
			}
		}
	}
	if gotCount != 6 {
		t.Fatalf("histogram _count = %v, want 6", gotCount)
	}
	if math.Abs(gotSum-h.Sum()) > 1e-12 {
		t.Fatalf("histogram _sum = %v, want %v", gotSum, h.Sum())
	}
	if !sawInf || infBucket != 6 {
		t.Fatalf("+Inf bucket = %v (present=%v), want 6", infBucket, sawInf)
	}
}

// TestPrometheusEmptyRegistry checks that an empty registry renders
// an empty — but still parseable — exposition, as does a nil one.
func TestPrometheusEmptyRegistry(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus empty: %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry rendered %q, want empty", b.String())
	}
	fams, err := ParsePrometheus(strings.NewReader(""))
	if err != nil || len(fams) != 0 {
		t.Fatalf("empty exposition: fams=%v err=%v", fams, err)
	}
	var nilReg *Registry
	if err := nilReg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus nil registry: %v", err)
	}
}

// TestPrometheusNameSanitation pins the name mapping rules.
func TestPrometheusNameSanitation(t *testing.T) {
	cases := []struct{ in, want string }{
		{"serve.requests_total", "serve_requests_total"},
		{"already_ok_total", "already_ok_total"},
		{"has space/and-dash", "has_space_and_dash"},
		{"9starts_with_digit", "_9starts_with_digit"},
		{"", "_"},
		{"colons:are:legal", "colons:are:legal"},
	}
	for _, c := range cases {
		if got := PrometheusName(c.in); got != c.want {
			t.Errorf("PrometheusName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestPrometheusLabelEscaping round-trips an le label through render
// and parse, and checks escapeLabelValue directly on the hostile
// characters.
func TestPrometheusLabelEscaping(t *testing.T) {
	if got := escapeLabelValue("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Fatalf("escapeLabelValue = %q", got)
	}
	// A parsed label value must invert the escaping.
	s, err := parseSampleLine(`m_total{l="a\\b\"c\nd"} 1`)
	if err != nil {
		t.Fatalf("parseSampleLine: %v", err)
	}
	if s.Labels["l"] != "a\\b\"c\nd" {
		t.Fatalf("unescaped label = %q", s.Labels["l"])
	}
}

// TestPrometheusStrictParserRejects feeds the parser known-bad
// expositions; each must fail.
func TestPrometheusStrictParserRejects(t *testing.T) {
	bad := map[string]string{
		"sample without TYPE": "orphan_total 1\n",
		"duplicate TYPE":      "# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n",
		"duplicate sample":    "# TYPE a_total counter\na_total 1\na_total 2\n",
		"negative counter":    "# TYPE a_total counter\na_total -1\n",
		"bad metric name":     "# TYPE 0bad counter\n0bad 1\n",
		"bad value":           "# TYPE a_total counter\na_total pickles\n",
		"histogram no +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 0.5\nh_count 1\n",
		"histogram non-cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"histogram count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"histogram missing sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"unterminated labels": "# TYPE a_total counter\na_total{l=\"x 1\n",
	}
	for name, text := range bad {
		if _, err := ParsePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parser accepted\n%s", name, text)
		}
	}
}

// TestPrometheusHandler scrapes the HTTP handler and checks the
// content type plus a strict parse of the body.
func TestPrometheusHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("scrapes_total").Inc()
	srv := httptest.NewServer(PrometheusHandler(reg))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, PrometheusContentType)
	}
	fams, err := ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parse scrape: %v", err)
	}
	if f := findFamily(fams, "scrapes_total"); f == nil || f.Samples[0].Value != 1 {
		t.Fatalf("scrapes_total not in scrape: %+v", fams)
	}
}

// TestDebugServerMetrics checks the /metrics route on the debug
// server serves the same exposition.
func TestDebugServerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("debug_scrapes_total").Add(3)
	d, err := StartDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("StartDebug: %v", err)
	}
	defer d.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + d.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	fams, err := ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("parse debug scrape: %v", err)
	}
	if f := findFamily(fams, "debug_scrapes_total"); f == nil || f.Samples[0].Value != 3 {
		t.Fatalf("debug_scrapes_total not served: %+v", fams)
	}
}

// TestTraceIDFormat pins the traceparent-compatible ID shapes.
func TestTraceIDFormat(t *testing.T) {
	id := NewTraceID()
	if len(id) != 32 {
		t.Fatalf("trace ID %q has length %d, want 32", id, len(id))
	}
	sid := NewSpanID()
	if len(sid) != 16 {
		t.Fatalf("span ID %q has length %d, want 16", sid, len(sid))
	}
	for _, c := range id + sid {
		if !((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) {
			t.Fatalf("non-hex rune %q in IDs", c)
		}
	}
	if NewTraceID() == id {
		t.Fatalf("consecutive trace IDs collided")
	}
}

// TestContextTraceID checks the trace ID survives derived contexts.
func TestContextTraceID(t *testing.T) {
	octx := NewContext(NewRegistry(), nil).WithTraceID("abc123")
	if got := octx.TraceID(); got != "abc123" {
		t.Fatalf("TraceID = %q", got)
	}
	sp := NewSpan("op")
	defer sp.End()
	if got := octx.In(sp).TraceID(); got != "abc123" {
		t.Fatalf("In lost trace ID: %q", got)
	}
	if got := octx.WithLogf(func(string, ...any) {}).TraceID(); got != "abc123" {
		t.Fatalf("WithLogf lost trace ID: %q", got)
	}
	var nilCtx *Context
	if nilCtx.WithTraceID("x") != nil {
		t.Fatalf("WithTraceID on nil context allocated")
	}
	if nilCtx.TraceID() != "" {
		t.Fatalf("nil context has trace ID")
	}
}

// TestRequestContextHelpers checks the context.Context smuggling.
func TestRequestContextHelpers(t *testing.T) {
	octx := NewContext(NewRegistry(), nil).WithTraceID("deadbeef")
	ctx := WithRequest(t.Context(), octx)
	if got := RequestContext(ctx); got != octx {
		t.Fatalf("RequestContext = %p, want %p", got, octx)
	}
	if RequestContext(t.Context()) != nil {
		t.Fatalf("RequestContext without attachment is non-nil")
	}
	if RequestContext(nil) != nil {
		t.Fatalf("RequestContext(nil) is non-nil")
	}
	if got := WithRequest(ctx, nil); got != ctx {
		t.Fatalf("WithRequest(nil octx) rewrapped the context")
	}
}
