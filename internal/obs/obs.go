// Package obs is the observability layer of the spam-mass pipeline:
// a concurrency-safe metrics registry (counters, gauges, log-bucket
// timing histograms) exposed via expvar, lightweight hierarchical
// spans that serialize to a JSON trace, a machine-readable RunReport
// aggregating both with solver and mass-estimation summaries, and an
// optional pprof/expvar debug HTTP endpoint.
//
// Everything is plumbed through a *Context, and a nil *Context (or a
// nil *Span, *Counter, …) is fully valid: every operation on a nil
// receiver is a no-op, so instrumented code pays a single pointer
// check when no sink is attached. The package depends only on the
// standard library; the rest of the system imports it, never the
// other way around.
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Context carries the observability sinks through the pipeline: a
// metrics registry, a current root span that new spans attach to, and
// an optional line logger for verbose output. Any of the three may be
// absent. The zero Context and the nil *Context are both inert.
//
// A Context is safe for concurrent use except for SetRoot, which is
// meant for a single driving goroutine (a CLI switching between
// pipeline stages).
type Context struct {
	mu   sync.Mutex
	reg  *Registry
	root *Span
	logf func(format string, args ...any)
}

// NewContext builds a Context over a registry and a root span; either
// may be nil.
func NewContext(reg *Registry, root *Span) *Context {
	return &Context{reg: reg, root: root}
}

// WithLogf returns a copy of the context whose Logf forwards to f.
// The copy shares the registry and root span with the original.
func (c *Context) WithLogf(f func(format string, args ...any)) *Context {
	if c == nil {
		return &Context{logf: f}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Context{reg: c.reg, root: c.root, logf: f}
}

// In returns a context rooted at sp, so spans started through it
// become children of sp. Registry and logger are shared. In on a nil
// context returns nil; a nil sp returns c unchanged.
func (c *Context) In(sp *Span) *Context {
	if c == nil || sp == nil {
		return c
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Context{reg: c.reg, root: sp, logf: c.logf}
}

// SetRoot swaps the span that new spans attach to and returns the
// previous one, for stage-scoped re-rooting:
//
//	prev := octx.SetRoot(stage)
//	defer octx.SetRoot(prev)
func (c *Context) SetRoot(sp *Span) (prev *Span) {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	prev, c.root = c.root, sp
	return prev
}

// Registry returns the metrics registry, or nil.
func (c *Context) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Root returns the span new spans currently attach to, or nil.
func (c *Context) Root() *Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.root
}

// Span starts a new span as a child of the current root. Without a
// root (but a non-nil context) it starts a detached span, so timings
// are still collected; on a nil context it returns nil.
func (c *Context) Span(name string) *Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	root := c.root
	c.mu.Unlock()
	if root == nil {
		return NewSpan(name)
	}
	return root.Child(name)
}

// Counter returns the named counter, or nil without a registry.
func (c *Context) Counter(name string) *Counter { return c.Registry().Counter(name) }

// Gauge returns the named gauge, or nil without a registry.
func (c *Context) Gauge(name string) *Gauge { return c.Registry().Gauge(name) }

// Histogram returns the named timing histogram, or nil without a
// registry.
func (c *Context) Histogram(name string) *Histogram { return c.Registry().Histogram(name) }

// Logging reports whether a line logger is attached.
func (c *Context) Logging() bool { return c != nil && c.logf != nil }

// Logf emits one line to the attached logger, if any.
func (c *Context) Logf(format string, args ...any) {
	if c == nil || c.logf == nil {
		return
	}
	c.logf(format, args...)
}

// StderrLogf returns a Logf sink writing one line per call to w.
func StderrLogf(w io.Writer) func(format string, args ...any) {
	var mu sync.Mutex
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// CountingReader wraps an io.Reader and counts the bytes delivered,
// for I/O instrumentation of streaming graph loads and sweeps. N is
// owned by the reading goroutine; read it only after reading stops.
type CountingReader struct {
	R io.Reader
	N int64
}

func (c *CountingReader) Read(p []byte) (int, error) {
	n, err := c.R.Read(p)
	c.N += int64(n)
	return n, err
}

// Timed runs f under a span with the given name and returns f's error;
// sugar for instrumenting a whole phase at a call site.
func Timed(c *Context, name string, f func() error) error {
	sp := c.Span(name)
	err := f()
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return err
}

// now is stubbed in tests that need deterministic span timings.
var now = time.Now
