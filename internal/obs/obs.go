// Package obs is the observability layer of the spam-mass pipeline:
// a concurrency-safe metrics registry (counters, gauges, log-bucket
// timing histograms) exposed via expvar, lightweight hierarchical
// spans that serialize to a JSON trace, a machine-readable RunReport
// aggregating both with solver and mass-estimation summaries, and an
// optional pprof/expvar debug HTTP endpoint.
//
// Everything is plumbed through a *Context, and a nil *Context (or a
// nil *Span, *Counter, …) is fully valid: every operation on a nil
// receiver is a no-op, so instrumented code pays a single pointer
// check when no sink is attached. The package depends only on the
// standard library; the rest of the system imports it, never the
// other way around.
package obs

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"time"
	"unsafe"
)

// Context carries the observability sinks through the pipeline: a
// metrics registry, a current root span that new spans attach to, and
// an optional line logger for verbose output. Any of the three may be
// absent. The zero Context and the nil *Context are both inert.
//
// A Context is safe for concurrent use except for SetRoot, which is
// meant for a single driving goroutine (a CLI switching between
// pipeline stages).
type Context struct {
	mu      sync.Mutex
	reg     *Registry
	root    *Span
	logf    func(format string, args ...any)
	traceID string
}

// NewContext builds a Context over a registry and a root span; either
// may be nil.
func NewContext(reg *Registry, root *Span) *Context {
	return &Context{reg: reg, root: root}
}

// WithLogf returns a copy of the context whose Logf forwards to f.
// The copy shares the registry and root span with the original.
func (c *Context) WithLogf(f func(format string, args ...any)) *Context {
	if c == nil {
		return &Context{logf: f}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Context{reg: c.reg, root: c.root, logf: f, traceID: c.traceID}
}

// In returns a context rooted at sp, so spans started through it
// become children of sp. Registry and logger are shared. In on a nil
// context returns nil; a nil sp returns c unchanged.
func (c *Context) In(sp *Span) *Context {
	if c == nil || sp == nil {
		return c
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Context{reg: c.reg, root: sp, logf: c.logf, traceID: c.traceID}
}

// WithTraceID returns a copy of the context tagged with a request
// trace ID; spans and metrics recorded through it can carry the ID so
// one slow request yields one coherent trace. On a nil context it
// returns nil — tracing never forces allocation into uninstrumented
// paths.
func (c *Context) WithTraceID(id string) *Context {
	if c == nil || id == "" {
		return c
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Context{reg: c.reg, root: c.root, logf: c.logf, traceID: id}
}

// TraceID returns the trace ID the context is tagged with, or "".
func (c *Context) TraceID() string {
	if c == nil {
		return ""
	}
	return c.traceID
}

// NewTraceID returns a 32-hex-digit trace ID (traceparent format).
// It is generated from math/rand/v2's process-global generator:
// collision-resistant for correlating logs and spans, not
// cryptographic — and ~20× cheaper than crypto/rand, which matters
// at six-figure request rates.
func NewTraceID() string {
	var b [32]byte
	hexEncode(b[:16], rand.Uint64())
	hexEncode(b[16:], rand.Uint64())
	return string(b[:])
}

// NewSpanID returns a 16-hex-digit span ID for traceparent headers.
func NewSpanID() string {
	var b [16]byte
	hexEncode(b[:], rand.Uint64())
	return string(b[:])
}

// TraceparentLen is the length of a W3C traceparent header value:
// "00-<32 hex trace id>-<16 hex span id>-01".
const TraceparentLen = 55

// Traceparent is a pre-rendered traceparent header value that a
// caller can embed in a per-request struct, so the header value, the
// trace ID, and the request bookkeeping all come out of one
// allocation. Render fills it; String and TraceID return views of the
// buffer without copying. The zero-copy contract: do not call Render
// again while strings from a previous Render are still in use — on
// the serving path the Traceparent lives and dies with its request,
// which satisfies this by construction.
//
// The root span ID reuses the low half of the trace ID: the trace ID
// is the correlation key, and spending a third PRNG draw plus sixteen
// more hex digits on an ID nothing dereferences would be pure
// hot-path tax.
type Traceparent [TraceparentLen]byte

// Render fills t with a fresh trace ID from math/rand/v2's global
// generator — collision-resistant for correlating logs and spans, not
// cryptographic, and far cheaper than crypto/rand at six-figure
// request rates.
func (t *Traceparent) Render() {
	copy(t[0:3], "00-")
	hexEncode(t[3:19], rand.Uint64())
	hexEncode(t[19:35], rand.Uint64())
	t[35] = '-'
	copy(t[36:52], t[19:35])
	copy(t[52:55], "-01")
}

// String returns the full header value, sharing t's storage.
func (t *Traceparent) String() string {
	return unsafe.String(&t[0], TraceparentLen)
}

// TraceID returns the embedded 32-hex-digit trace ID, sharing t's
// storage.
func (t *Traceparent) TraceID() string {
	return unsafe.String(&t[3], 32)
}

// NewTraceparent returns a fresh traceparent header value as an
// independent string; the embedded trace ID is value[3:35]. Callers
// on a hot path should prefer embedding a Traceparent instead.
func NewTraceparent() string {
	var t Traceparent
	t.Render()
	return string(t[:])
}

// hexPairs is the 256-entry table of two-digit lowercase hex
// renderings, so hexEncode emits a byte per iteration instead of a
// nibble — this runs once per served request.
var hexPairs = func() (t [256][2]byte) {
	const digits = "0123456789abcdef"
	for i := 0; i < 256; i++ {
		t[i] = [2]byte{digits[i>>4], digits[i&0xf]}
	}
	return
}()

func hexEncode(dst []byte, v uint64) {
	for i := len(dst) - 2; i >= 0; i -= 2 {
		p := hexPairs[byte(v)]
		dst[i], dst[i+1] = p[0], p[1]
		v >>= 8
	}
}

// reqKey keys the obs *Context smuggled through a context.Context.
type reqKey struct{}

// WithRequest attaches an obs context to a request context, so layers
// that only see a context.Context (refresh builds, delta appliers,
// solver calls) can pick up the request's trace root. A nil octx
// returns ctx unchanged.
func WithRequest(ctx context.Context, octx *Context) context.Context {
	if octx == nil {
		return ctx
	}
	return context.WithValue(ctx, reqKey{}, octx)
}

// RequestContext returns the obs context attached by WithRequest, or
// nil.
func RequestContext(ctx context.Context) *Context {
	if ctx == nil {
		return nil
	}
	octx, _ := ctx.Value(reqKey{}).(*Context)
	return octx
}

// SetRoot swaps the span that new spans attach to and returns the
// previous one, for stage-scoped re-rooting:
//
//	prev := octx.SetRoot(stage)
//	defer octx.SetRoot(prev)
func (c *Context) SetRoot(sp *Span) (prev *Span) {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	prev, c.root = c.root, sp
	return prev
}

// Registry returns the metrics registry, or nil.
func (c *Context) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Root returns the span new spans currently attach to, or nil.
func (c *Context) Root() *Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.root
}

// Span starts a new span as a child of the current root. Without a
// root (but a non-nil context) it starts a detached span, so timings
// are still collected; on a nil context it returns nil.
func (c *Context) Span(name string) *Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	root := c.root
	c.mu.Unlock()
	if root == nil {
		return NewSpan(name)
	}
	return root.Child(name)
}

// Counter returns the named counter, or nil without a registry.
func (c *Context) Counter(name string) *Counter { return c.Registry().Counter(name) }

// Gauge returns the named gauge, or nil without a registry.
func (c *Context) Gauge(name string) *Gauge { return c.Registry().Gauge(name) }

// Histogram returns the named timing histogram, or nil without a
// registry.
func (c *Context) Histogram(name string) *Histogram { return c.Registry().Histogram(name) }

// Logging reports whether a line logger is attached.
func (c *Context) Logging() bool { return c != nil && c.logf != nil }

// Logf emits one line to the attached logger, if any.
func (c *Context) Logf(format string, args ...any) {
	if c == nil || c.logf == nil {
		return
	}
	c.logf(format, args...)
}

// StderrLogf returns a Logf sink writing one line per call to w.
func StderrLogf(w io.Writer) func(format string, args ...any) {
	var mu sync.Mutex
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// CountingReader wraps an io.Reader and counts the bytes delivered,
// for I/O instrumentation of streaming graph loads and sweeps. N is
// owned by the reading goroutine; read it only after reading stops.
type CountingReader struct {
	R io.Reader
	N int64
}

func (c *CountingReader) Read(p []byte) (int, error) {
	n, err := c.R.Read(p)
	c.N += int64(n)
	return n, err
}

// Timed runs f under a span with the given name and returns f's error;
// sugar for instrumenting a whole phase at a call site.
func Timed(c *Context, name string, f func() error) error {
	sp := c.Span(name)
	err := f()
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return err
}

// now is stubbed in tests that need deterministic span timings.
var now = time.Now
