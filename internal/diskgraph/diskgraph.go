// Package diskgraph runs PageRank on graphs whose adjacency does not
// fit in memory — the regime of the paper's actual deployment, where
// the host graph had 979M edges and the page graph billions. The
// layout keeps only what the pull-based Jacobi sweep needs resident
// (the out-degree array and the two score vectors, 12 bytes per node)
// and streams the in-neighbor lists sequentially from disk once per
// iteration, the classic out-of-core PageRank access pattern.
//
// File layout (little-endian varints):
//
//	magic "SMDG", version, n, m
//	out-degree of every node (uvarint each)
//	for every node y: in-degree, then gap-encoded in-neighbors
package diskgraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"spammass/internal/graph"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
)

const (
	magic   = "SMDG"
	version = 1
)

// Build writes g into the disk-graph format at path.
func Build(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("diskgraph: create: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	n := g.NumNodes()
	for _, v := range []uint64{version, uint64(n), uint64(g.NumEdges())} {
		if err := put(v); err != nil {
			return err
		}
	}
	for x := 0; x < n; x++ {
		if err := put(uint64(g.OutDegree(graph.NodeID(x)))); err != nil {
			return err
		}
	}
	// Adjacency rows use the shared gap codec (graph.AppendGapList):
	// the same wire format the in-memory blocked layout speaks, so the
	// encoder and both decoders are covered by one test and fuzz corpus.
	var row []byte
	for y := 0; y < n; y++ {
		in := g.InNeighbors(graph.NodeID(y))
		if err := put(uint64(len(in))); err != nil {
			return err
		}
		row = graph.AppendGapList(row[:0], in)
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// DiskGraph is an opened on-disk graph. It is safe for sequential use
// by one goroutine.
type DiskGraph struct {
	path  string
	n     int
	m     int64
	inv   []float64 // 1/out-degree, 0 for dangling
	start int64     // file offset of the in-adjacency section
}

// Open reads the header and out-degree array of a disk graph.
func Open(path string) (*DiskGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("diskgraph: open: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("diskgraph: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("diskgraph: bad magic %q", head)
	}
	consumed := int64(len(magic))
	get := func() (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		consumed += int64(uvarintLen(v))
		return v, nil
	}
	ver, err := get()
	if err != nil {
		return nil, fmt.Errorf("diskgraph: version: %w", err)
	}
	if ver != version {
		return nil, fmt.Errorf("diskgraph: unsupported version %d", ver)
	}
	n64, err := get()
	if err != nil {
		return nil, fmt.Errorf("diskgraph: node count: %w", err)
	}
	if n64 > 1<<32 {
		return nil, fmt.Errorf("diskgraph: node count %d exceeds ID space", n64)
	}
	m, err := get()
	if err != nil {
		return nil, fmt.Errorf("diskgraph: edge count: %w", err)
	}
	dg := &DiskGraph{path: path, n: int(n64), m: int64(m)}
	dg.inv = make([]float64, dg.n)
	for x := 0; x < dg.n; x++ {
		d, err := get()
		if err != nil {
			return nil, fmt.Errorf("diskgraph: out-degree of %d: %w", x, err)
		}
		if d > 0 {
			dg.inv[x] = 1 / float64(d)
		}
	}
	dg.start = consumed
	return dg, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// NumNodes returns the node count.
func (dg *DiskGraph) NumNodes() int { return dg.n }

// NumEdges returns the edge count.
func (dg *DiskGraph) NumEdges() int64 { return dg.m }

// sweep performs one pull-based Jacobi iteration, streaming the
// in-adjacency from r (positioned at the adjacency section).
func (dg *DiskGraph) sweep(br *bufio.Reader, cur, next pagerank.Vector, c float64, v pagerank.Vector) error {
	edgesSeen := int64(0)
	dec := graph.NewGapDecoder(br, uint64(dg.n))
	for y := 0; y < dg.n; y++ {
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("diskgraph: in-degree of %d: %w", y, err)
		}
		if deg > uint64(dg.n) {
			return fmt.Errorf("diskgraph: node %d claims in-degree %d on a %d-node graph", y, deg, dg.n)
		}
		dec.Reset(int(deg))
		sum := 0.0
		for dec.Remaining() > 0 {
			x, err := dec.Next()
			if err != nil {
				return fmt.Errorf("diskgraph: in-neighbors of %d: %w", y, err)
			}
			sum += cur[x] * dg.inv[x]
			edgesSeen++
		}
		next[y] = c*sum + (1-c)*v[y]
	}
	if edgesSeen != dg.m {
		return fmt.Errorf("diskgraph: saw %d edges, header says %d", edgesSeen, dg.m)
	}
	return nil
}

// PageRank solves the linear PageRank system over the on-disk graph
// with the Jacobi iteration, reading the adjacency once per iteration.
func (dg *DiskGraph) PageRank(v pagerank.Vector, cfg pagerank.Config) (*pagerank.Result, error) {
	cfg = cfg.WithDefaults()
	if cfg.Damping <= 0 || cfg.Damping >= 1 || cfg.Epsilon <= 0 {
		return nil, fmt.Errorf("diskgraph: invalid solver config %+v", cfg)
	}
	if len(v) != dg.n {
		return nil, fmt.Errorf("diskgraph: jump vector has length %d, want %d", len(v), dg.n)
	}
	f, err := os.Open(dg.path)
	if err != nil {
		return nil, fmt.Errorf("diskgraph: reopen: %w", err)
	}
	defer f.Close()
	octx := cfg.Obs
	sp := octx.Span("diskgraph.pagerank")
	defer sp.End()
	if sp != nil {
		sp.SetAttr("nodes", dg.n)
		sp.SetAttr("edges", dg.m)
		sp.SetAttr("path", dg.path)
	}
	cr := &obs.CountingReader{R: f}
	sweepHist := octx.Histogram("diskgraph.sweep_seconds")

	cur := v.Clone()
	if cfg.WarmStart != nil {
		if len(cfg.WarmStart) != dg.n {
			return nil, fmt.Errorf("diskgraph: warm start has length %d, want %d", len(cfg.WarmStart), dg.n)
		}
		cur = cfg.WarmStart.Clone()
	}
	next := make(pagerank.Vector, dg.n)
	res := &pagerank.Result{}
	br := bufio.NewReaderSize(cr, 1<<20)
	for it := 1; it <= cfg.MaxIter; it++ {
		if _, err := f.Seek(dg.start, io.SeekStart); err != nil {
			return nil, fmt.Errorf("diskgraph: seek: %w", err)
		}
		br.Reset(cr)
		sweepStart := time.Now()
		if err := dg.sweep(br, cur, next, cfg.Damping, v); err != nil {
			return nil, err
		}
		sweepHist.Observe(time.Since(sweepStart).Seconds())
		res.Residual = next.Diff1(cur)
		res.Iterations = it
		cur, next = next, cur
		if res.Residual < cfg.Epsilon {
			res.Converged = true
			break
		}
	}
	res.Scores = cur
	if octx != nil {
		octx.Counter("diskgraph.bytes_read_total").Add(cr.N)
		octx.Counter("diskgraph.sweeps_total").Add(int64(res.Iterations))
	}
	if sp != nil {
		sp.SetAttr("iterations", res.Iterations)
		sp.SetAttr("residual", res.Residual)
		sp.SetAttr("converged", res.Converged)
		sp.SetAttr("bytes_read", cr.N)
	}
	if !res.Converged && !cfg.AllowTruncated {
		return res, &pagerank.ErrNotConverged{
			Algorithm:  pagerank.AlgoJacobi,
			Iterations: res.Iterations,
			Residual:   res.Residual,
			Epsilon:    cfg.Epsilon,
		}
	}
	return res, nil
}
