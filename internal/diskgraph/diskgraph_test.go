package diskgraph

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/pagerank"
	"spammass/internal/testutil"
)

func buildTemp(t *testing.T, g *graph.Graph) *DiskGraph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.smdg")
	if err := Build(path, g); err != nil {
		t.Fatal(err)
	}
	dg, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return dg
}

func TestDiskPageRankMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 5; trial++ {
		g := testutil.RandomGraph(rng, 200+rng.Intn(2000), 6)
		dg := buildTemp(t, g)
		if dg.NumNodes() != g.NumNodes() || dg.NumEdges() != g.NumEdges() {
			t.Fatalf("header %d/%d, want %d/%d", dg.NumNodes(), dg.NumEdges(), g.NumNodes(), g.NumEdges())
		}
		v := pagerank.UniformJump(g.NumNodes())
		mem, err := pagerank.Jacobi(g, v, pagerank.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		disk, err := dg.PageRank(v, pagerank.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !disk.Converged {
			t.Fatal("disk PageRank did not converge")
		}
		if d := testutil.MaxAbsDiff(mem.Scores, disk.Scores); d > 1e-12 {
			t.Fatalf("trial %d: disk and in-memory PageRank differ by %v", trial, d)
		}
	}
}

func TestDiskPageRankCoreJump(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testutil.RandomGraph(rng, 1000, 5)
	dg := buildTemp(t, g)
	core := []graph.NodeID{3, 99, 500}
	v := pagerank.ScaledCoreJump(g.NumNodes(), core, 0.85)
	mem, err := pagerank.Jacobi(g, v, pagerank.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	disk, err := dg.PageRank(v, pagerank.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d := testutil.MaxAbsDiff(mem.Scores, disk.Scores); d > 1e-12 {
		t.Fatalf("core-based disk PageRank differs by %v", d)
	}
}

func TestDiskWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := testutil.RandomGraph(rng, 2000, 5)
	dg := buildTemp(t, g)
	v := pagerank.UniformJump(g.NumNodes())
	cold, err := dg.PageRank(v, pagerank.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pagerank.DefaultConfig()
	cfg.WarmStart = cold.Scores
	warm, err := dg.PageRank(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start took %d iterations vs cold %d", warm.Iterations, cold.Iterations)
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("XXXXjunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("bad magic accepted")
	}
	truncated := filepath.Join(dir, "trunc")
	if err := os.WriteFile(truncated, []byte("SMDG\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(truncated); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestPageRankValidation(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}})
	dg := buildTemp(t, g)
	if _, err := dg.PageRank(pagerank.Vector{1}, pagerank.DefaultConfig()); err == nil {
		t.Error("wrong-length jump accepted")
	}
	bad := pagerank.DefaultConfig()
	bad.Damping = 2
	if _, err := dg.PageRank(pagerank.UniformJump(3), bad); err == nil {
		t.Error("bad damping accepted")
	}
	ws := pagerank.DefaultConfig()
	ws.WarmStart = pagerank.Vector{1}
	if _, err := dg.PageRank(pagerank.UniformJump(3), ws); err == nil {
		t.Error("wrong-length warm start accepted")
	}
}

func TestCorruptedAdjacencyDetected(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {2, 3}, {3, 0}})
	path := filepath.Join(t.TempDir(), "g")
	if err := Build(path, g); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the adjacency section.
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	dg, err := Open(path)
	if err != nil {
		t.Fatal(err) // header intact
	}
	if _, err := dg.PageRank(pagerank.UniformJump(4), pagerank.DefaultConfig()); err == nil {
		t.Error("truncated adjacency not detected")
	}
}

func TestEmptyGraphOnDisk(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	dg := buildTemp(t, g)
	res, err := dg.PageRank(pagerank.Vector{}, pagerank.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 0 {
		t.Errorf("empty graph produced %d scores", len(res.Scores))
	}
}
