package diskgraph

import (
	"math/rand"
	"path/filepath"
	"testing"

	"spammass/internal/pagerank"
	"spammass/internal/testutil"
)

func BenchmarkDiskPageRank(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := testutil.RandomGraph(rng, 100000, 8)
	path := filepath.Join(b.TempDir(), "bench.smdg")
	if err := Build(path, g); err != nil {
		b.Fatal(err)
	}
	dg, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	v := pagerank.UniformJump(g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dg.PageRank(v, pagerank.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildDiskGraph(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := testutil.RandomGraph(rng, 100000, 8)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Build(filepath.Join(dir, "g.smdg"), g); err != nil {
			b.Fatal(err)
		}
	}
}
