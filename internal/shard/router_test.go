package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spammass/internal/delta"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
	"spammass/internal/serve"
)

// harnessHostGraph builds a graph big enough that every shard of a
// 2-3 way partition holds hosts: a ring over n named hosts plus skip
// edges for connectivity.
func harnessHostGraph(t testing.TB, n int) *graph.HostGraph {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("h%03d.example", i)
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+7)%n))
	}
	h, err := graph.NewHostGraph(b.Build(), names)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// shardBuilder is the BuildFunc of one shard node. The first build
// estimates over the shard-local subgraph; later builds re-estimate
// whatever host graph the previous snapshot holds, so a full refresh
// racing the delta path never resurrects pre-delta hosts.
func shardBuilder(h *graph.HostGraph, core []graph.NodeID) serve.BuildFunc {
	return func(ctx context.Context, prev *serve.Snapshot, epoch int64) (*serve.Snapshot, error) {
		hh, cc := h, core
		if prev != nil {
			hh, cc = prev.HostGraph(), prev.Core()
		}
		est, err := mass.EstimateFromCore(hh.Graph, cc, mass.Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85})
		if err != nil {
			return nil, err
		}
		cfg := serve.SnapshotConfig{Detect: mass.DefaultDetectConfig(), Gamma: 0.85, Core: cc}
		return serve.NewSnapshot(hh, est, cfg, epoch)
	}
}

// shardNode is one booted shard: a full serve stack over a partition.
type shardNode struct {
	store *serve.Store
	ref   *serve.Refresher
	ts    *httptest.Server
	// batchBodies records every POST /v1/batch body the node saw, for
	// asserting what the router actually fans out.
	mu          sync.Mutex
	batchBodies []serve.BatchRequest
}

func (n *shardNode) seenBatches() []serve.BatchRequest {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]serve.BatchRequest(nil), n.batchBodies...)
}

// bootShard starts one shard node over its partition subgraph, with a
// delta-enabled refresher and one published snapshot.
func bootShard(t testing.TB, part *graph.HostGraph) *shardNode {
	t.Helper()
	if len(part.Names) == 0 {
		t.Fatal("empty shard partition; grow the harness graph")
	}
	core := []graph.NodeID{0}
	if len(part.Names) > 4 {
		core = append(core, graph.NodeID(len(part.Names)/2))
	}
	st := serve.NewStore()
	ref := serve.NewRefresher(st, shardBuilder(part, core), serve.RefresherConfig{
		ApplyDelta: serve.NewDeltaBuilder(serve.DeltaBuilderConfig{Solver: pagerank.DefaultConfig()}),
	})
	if err := ref.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	node := &shardNode{store: st, ref: ref}
	inner := serve.NewServer(st, ref, serve.Config{DisableMetrics: true}).Handler()
	node.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/batch" {
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			var req serve.BatchRequest
			if json.Unmarshal(body, &req) == nil {
				node.mu.Lock()
				node.batchBodies = append(node.batchBodies, req)
				node.mu.Unlock()
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(node.ts.Close)
	return node
}

// bootTopology partitions a host graph over n shards, boots a node
// per shard, and returns a router with its fence formed.
func bootTopology(t testing.TB, h *graph.HostGraph, n int, cfg Config) (*Router, *graph.HostPartition, []*shardNode) {
	t.Helper()
	p, err := graph.PartitionHosts(h, n)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*shardNode, n)
	cfg.Shards = make([][]string, n)
	for s := 0; s < n; s++ {
		nodes[s] = bootShard(t, p.Parts[s])
		cfg.Shards[s] = []string{nodes[s].ts.URL}
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.ProbeOnce(context.Background())
	if r.Generation() == 0 {
		t.Fatal("fence did not form after probing ready shards")
	}
	return r, p, nodes
}

func TestRouterLookup(t *testing.T) {
	h := harnessHostGraph(t, 60)
	r, p, nodes := bootTopology(t, h, 2, Config{})
	ctx := context.Background()

	names := h.Names
	for _, name := range []string{names[0], names[1], names[31]} {
		rec, ok, err := r.Lookup(ctx, name)
		if err != nil || !ok {
			t.Fatalf("Lookup(%s) = (%v, %v)", name, ok, err)
		}
		if rec.Host != name {
			t.Fatalf("Lookup(%s) returned record for %s", name, rec.Host)
		}
		s := graph.ShardOf(name, 2)
		want, _ := nodes[s].store.Load().Lookup(name)
		if rec != want {
			t.Fatalf("routed record %+v != shard %d record %+v", rec, s, want)
		}
		id, _ := h.NodeByName(name)
		if p.Shard[id] != int32(s) {
			t.Fatalf("partition and router disagree on owner of %s", name)
		}
	}
	if _, ok, err := r.Lookup(ctx, "nosuch.example"); err != nil || ok {
		t.Fatalf("miss = (%v, %v), want (false, nil)", ok, err)
	}
}

func TestRouterNotReadyBeforeFence(t *testing.T) {
	h := harnessHostGraph(t, 40)
	p, err := graph.PartitionHosts(h, 2)
	if err != nil {
		t.Fatal(err)
	}
	n0, n1 := bootShard(t, p.Parts[0]), bootShard(t, p.Parts[1])
	r, err := NewRouter(Config{Shards: [][]string{{n0.ts.URL}, {n1.ts.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Lookup(context.Background(), "h000.example"); err != serve.ErrNoSnapshot {
		t.Fatalf("pre-fence Lookup err = %v, want ErrNoSnapshot", err)
	}
	if _, err := r.Batch(context.Background(), []string{"h000.example"}); err != serve.ErrNoSnapshot {
		t.Fatalf("pre-fence Batch err = %v, want ErrNoSnapshot", err)
	}
	if _, err := r.Top(context.Background(), serve.MetricPageRank, 3); err != serve.ErrNoSnapshot {
		t.Fatalf("pre-fence Top err = %v, want ErrNoSnapshot", err)
	}
	if g := r.Generation(); g != 0 {
		t.Fatalf("pre-fence Generation = %d", g)
	}
}

// TestRouterBatch is the cross-shard batch contract: alignment with
// the request, null per miss, duplicates answered from one upstream
// fetch, and per-shard fan-out carrying each unique name exactly once.
func TestRouterBatch(t *testing.T) {
	h := harnessHostGraph(t, 60)
	r, _, nodes := bootTopology(t, h, 2, Config{})
	ctx := context.Background()

	names := h.Names
	var byShard [2]string
	for _, n := range names {
		byShard[graph.ShardOf(n, 2)] = n
	}
	if byShard[0] == "" || byShard[1] == "" {
		t.Fatal("harness graph does not span both shards")
	}
	req := []string{
		byShard[0], byShard[1], byShard[0], // cross-shard with a duplicate
		"nosuch.example",
		byShard[1],
		"alsomissing.example", "nosuch.example", // duplicated miss
	}
	resp, err := r.Batch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Records) != len(req) {
		t.Fatalf("response has %d records for %d names", len(resp.Records), len(req))
	}
	if resp.Epoch != r.Generation() {
		t.Fatalf("batch epoch %d != fence generation %d", resp.Epoch, r.Generation())
	}
	if resp.Misses != 3 {
		t.Fatalf("Misses = %d, want 3 (each missing position counts)", resp.Misses)
	}
	for i, name := range req {
		rec := resp.Records[i]
		if name == "nosuch.example" || name == "alsomissing.example" {
			if rec != nil {
				t.Fatalf("Records[%d] for missing %s is %+v, want null", i, name, rec)
			}
			continue
		}
		if rec == nil || rec.Host != name {
			t.Fatalf("Records[%d] = %+v, want record for %s", i, rec, name)
		}
	}
	if resp.Records[0] != resp.Records[2] {
		t.Fatal("duplicate names must share one record from one upstream fetch")
	}

	// Upstream fan-out: each shard saw exactly one batch, holding only
	// its own unique names.
	for s, node := range nodes {
		batches := node.seenBatches()
		if len(batches) != 1 {
			t.Fatalf("shard %d saw %d batch requests, want 1", s, len(batches))
		}
		seen := make(map[string]bool)
		for _, name := range batches[0].Hosts {
			if seen[name] {
				t.Fatalf("shard %d batch carries duplicate %q", s, name)
			}
			seen[name] = true
			if graph.ShardOf(name, 2) != s {
				t.Fatalf("shard %d batch carries foreign name %q", s, name)
			}
		}
	}
}

// TestRouterTopMerge checks the scatter-gather ranking: repeatable
// order, epoch = fence generation, and exactly the serve-side merge of
// the per-shard rankings.
func TestRouterTopMerge(t *testing.T) {
	h := harnessHostGraph(t, 60)
	r, _, nodes := bootTopology(t, h, 2, Config{})
	ctx := context.Background()
	const n = 25

	for _, metric := range []string{serve.MetricRelMass, serve.MetricAbsMass, serve.MetricPageRank} {
		first, err := r.Top(ctx, metric, n)
		if err != nil {
			t.Fatalf("Top(%s): %v", metric, err)
		}
		if first.Epoch != r.Generation() || first.Metric != metric {
			t.Fatalf("Top(%s) header = %+v", metric, first)
		}
		second, err := r.Top(ctx, metric, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first.Records {
			if first.Records[i].Host != second.Records[i].Host {
				t.Fatalf("Top(%s) order not stable across calls at %d: %s vs %s",
					metric, i, first.Records[i].Host, second.Records[i].Host)
			}
		}
		lists := make([][]serve.HostRecord, len(nodes))
		for s, node := range nodes {
			recs, err := node.store.Load().Top(metric, n)
			if err != nil {
				t.Fatal(err)
			}
			lists[s] = recs
		}
		want, err := serve.MergeTop(metric, n, lists...)
		if err != nil {
			t.Fatal(err)
		}
		if len(first.Records) != len(want) {
			t.Fatalf("Top(%s) merged %d records, want %d", metric, len(first.Records), len(want))
		}
		for i := range want {
			if first.Records[i].Host != want[i].Host {
				t.Fatalf("Top(%s) diverges from MergeTop at %d: %s vs %s",
					metric, i, first.Records[i].Host, want[i].Host)
			}
		}
	}
}

// TestRouterDeltaFence drives a cross-shard delta through the router
// and checks the fence contract: generation advances once, floors
// rise to the published epochs, and the new hosts resolve afterwards.
func TestRouterDeltaFence(t *testing.T) {
	h := harnessHostGraph(t, 60)
	r, _, _ := bootTopology(t, h, 2, Config{})
	ctx := context.Background()
	genBefore := r.Generation()

	// Host names chosen to land on both shards.
	var added []string
	var perShard [2]int
	for i := 0; perShard[0] == 0 || perShard[1] == 0; i++ {
		name := fmt.Sprintf("new%02d.example", i)
		s := graph.ShardOf(name, 2)
		if perShard[s] == 0 {
			added = append(added, name)
			perShard[s]++
		}
	}
	b := &delta.Batch{}
	for _, name := range added {
		b.Ops = append(b.Ops, delta.AddHostOp(name))
	}
	res, err := r.ApplyDelta(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != genBefore+1 {
		t.Fatalf("delta generation %d, want %d", res.Generation, genBefore+1)
	}
	if len(res.Shards) != 2 {
		t.Fatalf("delta touched shards %v, want both", res.Shards)
	}
	g := r.gen.Load()
	for i, s := range res.Shards {
		if g.MinEpoch[s] != res.ShardEpochs[i] {
			t.Fatalf("fence floor for shard %d is %d, delta published %d", s, g.MinEpoch[s], res.ShardEpochs[i])
		}
		if res.ShardEpochs[i] < 2 {
			t.Fatalf("shard %d epoch %d did not advance", s, res.ShardEpochs[i])
		}
	}
	for _, name := range added {
		rec, ok, err := r.Lookup(ctx, name)
		if err != nil || !ok {
			t.Fatalf("post-delta Lookup(%s) = (%v, %v)", name, ok, err)
		}
		if rec.Epoch < g.MinEpoch[graph.ShardOf(name, 2)] {
			t.Fatalf("post-delta record epoch %d below floor", rec.Epoch)
		}
	}

	// A batch dropping only cross-shard edges touches nothing and must
	// leave the fence alone.
	crossA, crossB := added[0], added[1]
	if graph.ShardOf(crossA, 2) == graph.ShardOf(crossB, 2) {
		t.Fatal("added hosts should span shards")
	}
	res2, err := r.ApplyDelta(ctx, &delta.Batch{Ops: []delta.Op{delta.AddEdgeOp(crossA, crossB)}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CrossEdges != 1 || len(res2.Shards) != 0 {
		t.Fatalf("cross-only delta result %+v", res2)
	}
	if r.Generation() != res.Generation {
		t.Fatalf("cross-only delta advanced the fence to %d", r.Generation())
	}
}

// fakeShard is a minimal hand-rolled shard endpoint for failure-mode
// tests (stale replicas, slow replicas).
func fakeShard(t *testing.T, epoch int64, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "epoch": epoch})
	})
	mux.HandleFunc("/", handler)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func hostRecordJSON(host string, epoch int64) *serve.HostRecord {
	return &serve.HostRecord{Host: host, Label: "good", Epoch: epoch}
}

// TestRouterStaleReplicaRetry: a replica still serving below the fence
// floor gets one retry; the second answer at the floor is served.
func TestRouterStaleReplicaRetry(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	staleAlways := false
	ts := fakeShard(t, 3, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		stale := calls == 1 || staleAlways
		mu.Unlock()
		epoch := int64(3)
		if stale {
			epoch = 1 // below the floor the probe advertised
		}
		writeJSON(w, http.StatusOK, hostRecordJSON("x.example", epoch))
	})
	r, err := NewRouter(Config{
		Shards:     [][]string{{ts.URL}},
		HedgeAfter: -1,
		Obs:        obs.NewContext(obs.NewRegistry(), nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.ProbeOnce(context.Background())
	if r.Generation() != 1 {
		t.Fatal("fence did not form from fake shard")
	}
	rec, ok, err := r.Lookup(context.Background(), "x.example")
	if err != nil || !ok || rec.Epoch != 3 {
		t.Fatalf("Lookup = (%+v, %v, %v), want retried record at epoch 3", rec, ok, err)
	}
	if got := r.staleRetries.Value(); got != 1 {
		t.Fatalf("stale retries = %d, want 1", got)
	}

	// A replica that never catches up is an error, not a silent stale
	// answer.
	mu.Lock()
	staleAlways = true // every later answer stays at epoch 1
	mu.Unlock()
	if _, _, err := r.Lookup(context.Background(), "x.example"); err == nil {
		t.Fatal("persistently stale replica must fail the lookup")
	}
}

// TestRouterHedging: with one replica stalled, the hedge to the second
// replica answers well before the stall clears.
func TestRouterHedging(t *testing.T) {
	release := make(chan struct{})
	slow := fakeShard(t, 2, func(w http.ResponseWriter, r *http.Request) {
		<-release
		writeJSON(w, http.StatusOK, hostRecordJSON("x.example", 2))
	})
	defer close(release)
	fast := fakeShard(t, 2, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, hostRecordJSON("x.example", 2))
	})
	r, err := NewRouter(Config{
		Shards:     [][]string{{slow.URL, fast.URL}},
		HedgeAfter: 5 * time.Millisecond,
		Obs:        obs.NewContext(obs.NewRegistry(), nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.ProbeOnce(context.Background())

	// Run a few lookups: whichever replica round-robin picks first,
	// at least one request starts on the stalled replica and must be
	// rescued by its hedge.
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		rec, ok, err := r.Lookup(ctx, "x.example")
		cancel()
		if err != nil || !ok || rec.Epoch != 2 {
			t.Fatalf("hedged Lookup %d = (%+v, %v, %v)", i, rec, ok, err)
		}
	}
	if r.hedges.Value() == 0 {
		t.Fatal("no hedge fired despite a stalled replica")
	}
}

// TestRouterBehindServeHTTP mounts the Router behind the stock serve
// HTTP layer — the exact spamserver -role=router wiring — and checks
// the admin routes and a cross-shard read end to end.
func TestRouterBehindServeHTTP(t *testing.T) {
	h := harnessHostGraph(t, 60)
	r, _, _ := bootTopology(t, h, 2, Config{})
	front := serve.NewServer(nil, nil, serve.Config{
		DisableMetrics: true,
		Backend:        r,
		Routes: map[string]http.HandlerFunc{
			"POST /admin/delta":  r.HandleDelta,
			"GET /admin/status":  r.HandleStatus,
		},
	})
	ts := httptest.NewServer(front.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router /readyz status %d", resp.StatusCode)
	}

	var buf bytes.Buffer
	buf.WriteString("delta 1\n+h routed00.example\n+h routed01.example\n")
	dresp, err := http.Post(ts.URL+"/admin/delta", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var dres DeltaResult
	if err := json.NewDecoder(dresp.Body).Decode(&dres); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || dres.Generation != 2 {
		t.Fatalf("router delta status %d result %+v", dresp.StatusCode, dres)
	}

	var st RouterStatus
	sresp, err := http.Get(ts.URL + "/admin/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Role != "router" || st.Generation != 2 || len(st.Shards) != 2 {
		t.Fatalf("router status %+v", st)
	}

	var rec serve.HostRecord
	hresp, err := http.Get(ts.URL + "/v1/host/routed00.example")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || rec.Host != "routed00.example" {
		t.Fatalf("routed lookup status %d record %+v", hresp.StatusCode, rec)
	}
}
