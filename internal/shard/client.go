// Package shard is the horizontal serving tier: shard nodes are plain
// spamserver processes each holding one partition of the host space
// (internal/graph.ShardOf), and the Router fronts them behind the same
// JSON API, scatter-gathering batches and rankings and fencing deltas
// behind a global generation so no reader ever observes a torn
// cross-shard view.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// maxBodyBytes bounds every sub-response the router will buffer from a
// shard; /v1/top with MaxTop records is well under this.
const maxBodyBytes = 8 << 20

// replica is one serving process of a shard. Health and the last
// observed snapshot epoch are maintained by the router's probe loop
// and refreshed opportunistically on every proxied response.
type replica struct {
	base      string // URL prefix, no trailing slash
	healthy   atomic.Bool
	lastEpoch atomic.Int64
}

// readyBody is the subset of a shard's GET /readyz answer the probe
// loop cares about.
type readyBody struct {
	Status string `json:"status"`
	Epoch  int64  `json:"epoch"`
}

// shardSet is the router's view of one shard: its replicas, a bounded
// in-flight semaphore, and a round-robin cursor for replica choice.
type shardSet struct {
	replicas []*replica
	inflight chan struct{}
	next     atomic.Uint32
}

func newShardSet(urls []string, maxInFlight int) *shardSet {
	ss := &shardSet{inflight: make(chan struct{}, maxInFlight)}
	for _, u := range urls {
		ss.replicas = append(ss.replicas, &replica{base: strings.TrimRight(u, "/")})
	}
	return ss
}

// acquire takes an in-flight slot, blocking until one frees or the
// context ends. One slot covers a request and its hedge: the bound is
// on logical client requests per shard, not wire attempts.
func (ss *shardSet) acquire(ctx context.Context) error {
	select {
	case ss.inflight <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (ss *shardSet) release() { <-ss.inflight }

// pick returns the next healthy replica in round-robin order, skipping
// not (the replica a hedge is racing against). When no replica is
// healthy it falls back to any replica other than not — a probe gap
// must degrade to trying, not to refusing.
func (ss *shardSet) pick(not *replica) *replica {
	n := len(ss.replicas)
	start := int(ss.next.Add(1))
	for i := 0; i < n; i++ {
		r := ss.replicas[(start+i)%n]
		if r != not && r.healthy.Load() {
			return r
		}
	}
	for i := 0; i < n; i++ {
		if r := ss.replicas[(start+i)%n]; r != not {
			return r
		}
	}
	return nil
}

func (ss *shardSet) healthyCount() int {
	n := 0
	for _, r := range ss.replicas {
		if r.healthy.Load() {
			n++
		}
	}
	return n
}

// result is one wire attempt's outcome.
type result struct {
	status int
	body   []byte
	rep    *replica
	err    error
}

// fetch performs one logical request against shard s: acquire the
// in-flight slot, send to a healthy replica, and — if the reply is
// still outstanding after HedgeAfter and the shard has another usable
// replica — race a hedge and take whichever usable answer lands first.
// An attempt that fails at the transport level marks its replica
// unhealthy (the probe loop rehabilitates it) and falls through to the
// other attempt. The body is fully read before return, so the
// semaphore slot is held for the whole transfer.
func (r *Router) fetch(ctx context.Context, s int, method, path string, reqBody []byte, contentType string) (int, []byte, *replica, error) {
	ss := r.shards[s]
	if err := ss.acquire(ctx); err != nil {
		return 0, nil, nil, err
	}
	defer ss.release()

	start := time.Now()
	defer r.latency.ObserveSince(start)
	r.requests.Inc()

	attempt := func(ctx context.Context, rep *replica, out chan<- result) {
		req, err := http.NewRequestWithContext(ctx, method, rep.base+path, bytes.NewReader(reqBody))
		if err != nil {
			out <- result{rep: rep, err: err}
			return
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := r.client.Do(req)
		if err != nil {
			rep.healthy.Store(false)
			out <- result{rep: rep, err: err}
			return
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		resp.Body.Close()
		if err != nil {
			rep.healthy.Store(false)
			out <- result{rep: rep, err: err}
			return
		}
		out <- result{status: resp.StatusCode, body: body, rep: rep}
	}

	primary := ss.pick(nil)
	if primary == nil {
		r.errors.Inc()
		return 0, nil, nil, fmt.Errorf("shard %d has no replicas", s)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan result, 2)
	go attempt(actx, primary, results)
	outstanding := 1
	hedged := false

	var timer *time.Timer
	var hedgeC <-chan time.Time
	if r.cfg.HedgeAfter > 0 && len(ss.replicas) > 1 {
		timer = time.NewTimer(r.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}

	var firstErr error
	for {
		select {
		case <-ctx.Done():
			r.errors.Inc()
			return 0, nil, nil, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if sec := ss.pick(primary); sec != nil {
				r.hedges.Inc()
				hedged = true
				outstanding++
				go attempt(actx, sec, results)
			}
		case res := <-results:
			outstanding--
			if res.err == nil {
				return res.status, res.body, res.rep, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if outstanding > 0 {
				continue // the other attempt may still win
			}
			// Both attempts (or the only one) failed: try one more
			// replica immediately if the hedge never launched.
			if !hedged {
				if alt := ss.pick(res.rep); alt != nil && alt != res.rep {
					hedged = true
					outstanding++
					go attempt(actx, alt, results)
					continue
				}
			}
			r.errors.Inc()
			return 0, nil, nil, fmt.Errorf("shard %d unreachable: %w", s, firstErr)
		}
	}
}

// probeReplica polls one replica's /readyz, updating health and the
// last observed epoch.
func (r *Router) probeReplica(ctx context.Context, rep *replica) {
	pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.base+"/readyz", nil)
	if err != nil {
		rep.healthy.Store(false)
		r.probeFailures.Inc()
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		rep.healthy.Store(false)
		r.probeFailures.Inc()
		return
	}
	defer resp.Body.Close()
	var body readyBody
	if resp.StatusCode != http.StatusOK ||
		json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body) != nil {
		rep.healthy.Store(false)
		r.probeFailures.Inc()
		return
	}
	rep.lastEpoch.Store(body.Epoch)
	rep.healthy.Store(true)
}
