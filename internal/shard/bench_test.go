package shard

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/serve"
	"spammass/internal/testutil"
)

// benchTopology boots a 2-shard partition of the same 10k random
// graph the serve benchmarks use, fronted by a router, so
// BenchmarkRouterLookup reads directly against BenchmarkServeLookup:
// the delta between them is the routing hop (partitioner, fence
// check, upstream HTTP round trip).
func benchTopology(b *testing.B) (*graph.HostGraph, *Router) {
	b.Helper()
	const n = 10000
	rng := rand.New(rand.NewSource(1))
	g := testutil.RandomGraph(rng, n, 8)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("host%05d.example", i)
	}
	h, err := graph.NewHostGraph(g, names)
	if err != nil {
		b.Fatal(err)
	}
	p, err := graph.PartitionHosts(h, 2)
	if err != nil {
		b.Fatal(err)
	}
	urls := make([][]string, 2)
	for s := 0; s < 2; s++ {
		node := bootShard(b, p.Parts[s])
		urls[s] = []string{node.ts.URL}
	}
	r, err := NewRouter(Config{Shards: urls, MaxInFlightPerShard: 4096})
	if err != nil {
		b.Fatal(err)
	}
	r.ProbeOnce(context.Background())
	if r.Generation() == 0 {
		b.Fatal("fence did not form")
	}
	return h, r
}

// BenchmarkRouterLookup is full-stack routed point lookups: router
// mux, fence check, upstream shard HTTP round trip, JSON re-encoding.
func BenchmarkRouterLookup(b *testing.B) {
	h, r := benchTopology(b)
	handler := serve.NewServer(nil, nil, serve.Config{
		DisableMetrics: true,
		Backend:        r,
		MaxInFlight:    4096,
	}).Handler()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &benchWriter{h: make(http.Header)}
		for pb.Next() {
			name := h.Names[int(next.Add(1))%len(h.Names)]
			req := httptest.NewRequest(http.MethodGet, "/v1/host/"+name, nil)
			w.status = 0
			handler.ServeHTTP(w, req)
			if w.status != http.StatusOK {
				b.Fatalf("lookup %s: status %d", name, w.status)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkRouterBatch is routed 64-host batches spanning both
// shards: one scatter-gather per operation, 64 records reassembled.
func BenchmarkRouterBatch(b *testing.B) {
	h, r := benchTopology(b)
	const batchSize = 64
	var next atomic.Int64
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		names := make([]string, batchSize)
		for pb.Next() {
			base := int(next.Add(batchSize))
			for i := range names {
				names[i] = h.Names[(base+i)%len(h.Names)]
			}
			resp, err := r.Batch(ctx, names)
			if err != nil {
				b.Fatal(err)
			}
			if resp.Misses != 0 {
				b.Fatalf("batch missed %d known hosts", resp.Misses)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "hosts/s")
}

// benchWriter mirrors the serve package's benchmark ResponseWriter:
// httptest.ResponseRecorder clones headers on WriteHeader, a cost no
// production request pays.
type benchWriter struct {
	h      http.Header
	status int
}

func (w *benchWriter) Header() http.Header         { return w.h }
func (w *benchWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *benchWriter) WriteHeader(code int)        { w.status = code }
