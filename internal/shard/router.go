package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spammass/internal/graph"
	"spammass/internal/obs"
	"spammass/internal/serve"
)

// Config wires a Router to its shard topology.
type Config struct {
	// Shards[i] lists the replica base URLs of shard i. Host names are
	// routed by graph.ShardOf(name, len(Shards)) — the same partitioner
	// the shard inputs were built with.
	Shards [][]string
	// MaxInFlightPerShard bounds concurrent logical requests per shard
	// (a hedge rides on its request's slot). Default 64.
	MaxInFlightPerShard int
	// HedgeAfter is how long to wait on a shard reply before racing a
	// second replica. Zero disables hedging. Default 100ms.
	HedgeAfter time.Duration
	// ProbeInterval is the health-probe period of Run. Default 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe. Default 2s.
	ProbeTimeout time.Duration
	// Obs receives router metrics; nil is fine.
	Obs *obs.Context
	// Client performs the upstream requests; http.DefaultClient when
	// nil.
	Client *http.Client
}

// Generation is the router's global serving fence. ID is the
// generation number handed to clients; MinEpoch[s] is the snapshot
// epoch floor of shard s — every sub-response must carry an epoch at
// or above the floor to be served under this generation. The fence
// advances only after every shard touched by a delta has published
// the new epoch, so a reader can never observe generation G while
// some shard still serves pre-G data for its partition.
type Generation struct {
	ID       int64
	MinEpoch []int64
}

// Router fans the serve JSON API out over shard nodes. It implements
// serve.Backend, so the stock HTTP layer (mux, admission control,
// telemetry) fronts it unchanged; only the admin delta/status routes
// are router-specific (HandleDelta, HandleStatus via Config.Routes).
type Router struct {
	cfg    Config
	shards []*shardSet
	client *http.Client

	gen     atomic.Pointer[Generation]
	deltaMu sync.Mutex // serializes delta fan-out and fence advance
	deltas  atomic.Int64

	requests      *obs.Counter
	hedges        *obs.Counter
	errors        *obs.Counter
	staleRetries  *obs.Counter
	probeFailures *obs.Counter
	genGauge      *obs.Gauge
	healthyGauge  *obs.Gauge
	latency       *obs.Histogram
}

// NewRouter validates the topology and builds a Router. The fence is
// unset until the first full probe round (ProbeOnce/Run) sees every
// shard ready; until then every read answers as "no snapshot yet".
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shard: router needs at least one shard")
	}
	for i, urls := range cfg.Shards {
		if len(urls) == 0 {
			return nil, fmt.Errorf("shard: shard %d has no replica URLs", i)
		}
	}
	if cfg.MaxInFlightPerShard <= 0 {
		cfg.MaxInFlightPerShard = 64
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 100 * time.Millisecond
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	r := &Router{
		cfg:           cfg,
		client:        cfg.Client,
		requests:      cfg.Obs.Counter("shard.requests_total"),
		hedges:        cfg.Obs.Counter("shard.hedges_total"),
		errors:        cfg.Obs.Counter("shard.errors_total"),
		staleRetries:  cfg.Obs.Counter("shard.stale_retries_total"),
		probeFailures: cfg.Obs.Counter("shard.probe_failures_total"),
		genGauge:      cfg.Obs.Gauge("shard.generation"),
		healthyGauge:  cfg.Obs.Gauge("shard.healthy_replicas"),
		latency:       cfg.Obs.Histogram("shard.request_seconds"),
	}
	for _, urls := range cfg.Shards {
		r.shards = append(r.shards, newShardSet(urls, cfg.MaxInFlightPerShard))
	}
	return r, nil
}

// NumShards returns the topology width.
func (r *Router) NumShards() int { return len(r.shards) }

// Generation returns the fence generation ID, 0 before the fence has
// formed. This is what the router's /readyz and /v1 epochs report.
func (r *Router) Generation() int64 {
	if g := r.gen.Load(); g != nil {
		return g.ID
	}
	return 0
}

// floor returns the fence's epoch floor for shard s (0 with no fence).
func (r *Router) floor(g *Generation, s int) int64 {
	if g == nil {
		return 0
	}
	return g.MinEpoch[s]
}

// upstreamError turns a non-OK shard reply into an error carrying the
// shard's own message when it sent one.
func upstreamError(s, status int, body []byte) error {
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		return fmt.Errorf("shard %d: %s (status %d)", s, eb.Error, status)
	}
	return fmt.Errorf("shard %d answered status %d", s, status)
}

// Lookup routes a point lookup to the owning shard. A sub-response
// below the fence floor (a replica that has not caught up with a
// fenced delta) is retried once on another replica before failing —
// the fence is a floor, never a time machine.
func (r *Router) Lookup(ctx context.Context, name string) (serve.HostRecord, bool, error) {
	g := r.gen.Load()
	if g == nil {
		return serve.HostRecord{}, false, serve.ErrNoSnapshot
	}
	s := graph.ShardOf(name, len(r.shards))
	path := "/v1/host/" + url.PathEscape(name)
	for attempt := 0; ; attempt++ {
		status, body, rep, err := r.fetch(ctx, s, http.MethodGet, path, nil, "")
		if err != nil {
			return serve.HostRecord{}, false, err
		}
		switch status {
		case http.StatusOK:
			var rec serve.HostRecord
			if err := json.Unmarshal(body, &rec); err != nil {
				return serve.HostRecord{}, false, fmt.Errorf("shard %d: bad host record: %w", s, err)
			}
			rep.lastEpoch.Store(rec.Epoch)
			if rec.Epoch < r.floor(g, s) {
				if attempt == 0 {
					r.staleRetries.Inc()
					continue
				}
				r.errors.Inc()
				return serve.HostRecord{}, false, fmt.Errorf(
					"shard %d serves epoch %d below fence floor %d", s, rec.Epoch, r.floor(g, s))
			}
			return rec, true, nil
		case http.StatusNotFound:
			return serve.HostRecord{}, false, nil
		default:
			r.errors.Inc()
			return serve.HostRecord{}, false, upstreamError(s, status, body)
		}
	}
}

// subBatch is one shard's slice of a batch: the deduplicated names
// owned by the shard and, per inbound position, where its record sits.
type subBatch struct {
	names []string
	index map[string]int // name → position in names
}

// Batch fans a batch out to the owning shards — each unique name is
// sent once, no matter how often the caller repeated it — and
// reassembles the sub-responses into one aligned answer: Records[i]
// belongs to names[i], null per miss, duplicates sharing one record.
// The response epoch is the fence generation ID; records keep their
// per-shard snapshot epochs.
func (r *Router) Batch(ctx context.Context, names []string) (*serve.BatchResponse, error) {
	g := r.gen.Load()
	if g == nil {
		return nil, serve.ErrNoSnapshot
	}
	subs := make(map[int]*subBatch)
	for _, name := range names {
		s := graph.ShardOf(name, len(r.shards))
		sb := subs[s]
		if sb == nil {
			sb = &subBatch{index: make(map[string]int)}
			subs[s] = sb
		}
		if _, seen := sb.index[name]; !seen {
			sb.index[name] = len(sb.names)
			sb.names = append(sb.names, name)
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	responses := make(map[int]*serve.BatchResponse, len(subs))
	var firstErr error
	for s, sb := range subs {
		wg.Add(1)
		go func(s int, sb *subBatch) {
			defer wg.Done()
			resp, err := r.batchShard(ctx, g, s, sb.names)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			responses[s] = resp
		}(s, sb)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := &serve.BatchResponse{Epoch: g.ID, Records: make([]*serve.HostRecord, len(names))}
	for i, name := range names {
		s := graph.ShardOf(name, len(r.shards))
		rec := responses[s].Records[subs[s].index[name]]
		out.Records[i] = rec
		if rec == nil {
			out.Misses++
		}
	}
	return out, nil
}

// batchShard sends one shard's deduplicated sub-batch, retrying once
// when the sub-response epoch is below the fence floor.
func (r *Router) batchShard(ctx context.Context, g *Generation, s int, names []string) (*serve.BatchResponse, error) {
	reqBody, err := json.Marshal(serve.BatchRequest{Hosts: names})
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		status, body, rep, err := r.fetch(ctx, s, http.MethodPost, "/v1/batch", reqBody, "application/json")
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			r.errors.Inc()
			return nil, upstreamError(s, status, body)
		}
		var resp serve.BatchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			return nil, fmt.Errorf("shard %d: bad batch response: %w", s, err)
		}
		if len(resp.Records) != len(names) {
			return nil, fmt.Errorf("shard %d: batch returned %d records for %d names", s, len(resp.Records), len(names))
		}
		rep.lastEpoch.Store(resp.Epoch)
		if resp.Epoch < r.floor(g, s) {
			if attempt == 0 {
				r.staleRetries.Inc()
				continue
			}
			r.errors.Inc()
			return nil, fmt.Errorf("shard %d serves epoch %d below fence floor %d", s, resp.Epoch, r.floor(g, s))
		}
		return &resp, nil
	}
}

// Top scatter-gathers every shard's top n for metric and merges them
// into the global ranking with the same deterministic order a single
// snapshot would serve (metric key descending, host name ascending).
func (r *Router) Top(ctx context.Context, metric string, n int) (*serve.TopResponse, error) {
	g := r.gen.Load()
	if g == nil {
		return nil, serve.ErrNoSnapshot
	}
	if !serve.ValidMetric(metric) {
		return nil, fmt.Errorf("shard: unknown ranking metric %q", metric)
	}
	path := "/v1/top?metric=" + url.QueryEscape(metric) + "&n=" + strconv.Itoa(n)
	lists := make([][]serve.HostRecord, len(r.shards))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for s := range r.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			list, err := r.topShard(ctx, g, s, path)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			lists[s] = list
		}(s)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	merged, err := serve.MergeTop(metric, n, lists...)
	if err != nil {
		return nil, err
	}
	return &serve.TopResponse{Epoch: g.ID, Metric: metric, Records: merged}, nil
}

func (r *Router) topShard(ctx context.Context, g *Generation, s int, path string) ([]serve.HostRecord, error) {
	for attempt := 0; ; attempt++ {
		status, body, rep, err := r.fetch(ctx, s, http.MethodGet, path, nil, "")
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			r.errors.Inc()
			return nil, upstreamError(s, status, body)
		}
		var resp serve.TopResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			return nil, fmt.Errorf("shard %d: bad top response: %w", s, err)
		}
		rep.lastEpoch.Store(resp.Epoch)
		if resp.Epoch < r.floor(g, s) {
			if attempt == 0 {
				r.staleRetries.Inc()
				continue
			}
			r.errors.Inc()
			return nil, fmt.Errorf("shard %d serves epoch %d below fence floor %d", s, resp.Epoch, r.floor(g, s))
		}
		return resp.Records, nil
	}
}

// ProbeOnce probes every replica of every shard and, once each shard
// has a ready replica, forms the initial fence: generation 1 with each
// shard's floor at the lowest epoch among its ready replicas (so any
// of them can answer under the fence).
func (r *Router) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, ss := range r.shards {
		for _, rep := range ss.replicas {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				r.probeReplica(ctx, rep)
			}(rep)
		}
	}
	wg.Wait()
	healthy := 0
	for _, ss := range r.shards {
		healthy += ss.healthyCount()
	}
	r.healthyGauge.Set(float64(healthy))
	if r.gen.Load() != nil {
		return
	}
	// Form the initial fence under the delta lock so a concurrent
	// HandleDelta cannot publish a competing generation.
	r.deltaMu.Lock()
	defer r.deltaMu.Unlock()
	if r.gen.Load() != nil {
		return
	}
	floors := make([]int64, len(r.shards))
	for s, ss := range r.shards {
		low := int64(0)
		for _, rep := range ss.replicas {
			if !rep.healthy.Load() {
				continue
			}
			e := rep.lastEpoch.Load()
			if e <= 0 {
				continue
			}
			if low == 0 || e < low {
				low = e
			}
		}
		if low == 0 {
			return // shard s not ready yet; no fence
		}
		floors[s] = low
	}
	r.gen.Store(&Generation{ID: 1, MinEpoch: floors})
	r.genGauge.Set(1)
	if r.cfg.Obs.Logging() {
		r.cfg.Obs.Logf("shard: fence formed, generation 1, floors %v", floors)
	}
}

// Run probes replica health every ProbeInterval until ctx ends. The
// first successful full round forms the fence and makes the router
// ready.
func (r *Router) Run(ctx context.Context) {
	ticker := time.NewTicker(r.cfg.ProbeInterval)
	defer ticker.Stop()
	r.ProbeOnce(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.ProbeOnce(ctx)
		}
	}
}

var _ serve.Backend = (*Router)(nil)
