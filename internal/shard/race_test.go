package shard

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"spammass/internal/delta"
	"spammass/internal/graph"
	"spammass/internal/serve"
)

// TestRouterHammer is the cross-shard swap hammer of the generation
// fence, meant for -race: a writer drives cross-shard delta batches
// through the router while shard refreshers churn epochs and reader
// goroutines hammer Lookup/Batch/Top plus the router's HTTP front.
// The readers assert the fence contract on every response:
//
//   - the served generation never moves backwards,
//   - every record's epoch is at or above the fence floor of its
//     owning shard as read before the request (floors only rise),
//   - within one batch response, records of the same shard carry one
//     epoch — never a torn mix of snapshots,
//   - no request fails while shards keep serving (zero 5xx on the
//     HTTP front).
//
// After the writer finishes, every host it added must resolve and the
// fence floor must cover the final delta's epochs.
func TestRouterHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer is for full and -race runs")
	}
	h := harnessHostGraph(t, 80)
	r, _, nodes := bootTopology(t, h, 2, Config{})

	front := serve.NewServer(nil, nil, serve.Config{
		DisableMetrics: true,
		Backend:        r,
		Routes: map[string]http.HandlerFunc{
			"POST /admin/delta": r.HandleDelta,
			"GET /admin/status": r.HandleStatus,
		},
	})
	frontMux := front.Handler()

	const deltas = 12
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var writerDone atomic.Bool
	var added sync.Map // host name → generation it was fenced under
	errs := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	var wg sync.WaitGroup

	// Writer: cross-shard delta batches through the fence, two hosts
	// and an intra-shard edge per round.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for i := 0; i < deltas; i++ {
			a := fmt.Sprintf("swap%02da.example", i)
			b := fmt.Sprintf("swap%02db.example", i)
			batch := &delta.Batch{Ops: []delta.Op{
				delta.AddHostOp(a),
				delta.AddHostOp(b),
				delta.AddEdgeOp(a, b), // kept or dropped by ownership; both fine
			}}
			res, err := r.ApplyDelta(ctx, batch)
			if err != nil {
				report("writer: delta %d: %v", i, err)
				return
			}
			added.Store(a, res.Generation)
			added.Store(b, res.Generation)
		}
	}()

	// Churn: concurrent full refreshes on both shard nodes, racing the
	// delta path's snapshot publishes.
	for s, node := range nodes {
		wg.Add(1)
		go func(s int, node *shardNode) {
			defer wg.Done()
			for !writerDone.Load() {
				if err := node.ref.Refresh(ctx); err != nil && ctx.Err() == nil {
					report("shard %d refresh: %v", s, err)
					return
				}
			}
		}(s, node)
	}

	names := h.Names
	probeNames := []string{names[0], names[1], names[17], names[42], "missing.example"}

	// Readers against the Backend interface: fence floors and epoch
	// coherence.
	for reader := 0; reader < 3; reader++ {
		wg.Add(1)
		go func(reader int) {
			defer wg.Done()
			lastGen := int64(0)
			for round := 0; !writerDone.Load() || round == 0; round++ {
				g := r.gen.Load()
				resp, err := r.Batch(ctx, probeNames)
				if err != nil {
					report("reader %d: batch: %v", reader, err)
					return
				}
				if resp.Epoch < lastGen {
					report("reader %d: generation moved backwards %d -> %d", reader, lastGen, resp.Epoch)
					return
				}
				lastGen = resp.Epoch
				shardEpoch := map[int]int64{}
				for i, rec := range resp.Records {
					if rec == nil {
						continue
					}
					s := graph.ShardOf(probeNames[i], 2)
					if rec.Epoch < g.MinEpoch[s] {
						report("reader %d: record %s epoch %d below pre-read floor %d",
							reader, rec.Host, rec.Epoch, g.MinEpoch[s])
						return
					}
					if prev, ok := shardEpoch[s]; ok && prev != rec.Epoch {
						report("reader %d: torn batch: shard %d mixes epochs %d and %d",
							reader, s, prev, rec.Epoch)
						return
					}
					shardEpoch[s] = rec.Epoch
				}
				if _, err := r.Top(ctx, serve.MetricPageRank, 10); err != nil {
					report("reader %d: top: %v", reader, err)
					return
				}
			}
		}(reader)
	}

	// HTTP readers against the router front: zero 5xx while shards
	// stay up.
	for reader := 0; reader < 2; reader++ {
		wg.Add(1)
		go func(reader int) {
			defer wg.Done()
			paths := []string{
				"/v1/host/" + names[3],
				"/v1/top?metric=relmass&n=5",
				"/readyz",
				"/admin/status",
			}
			for round := 0; !writerDone.Load() || round == 0; round++ {
				for _, path := range paths {
					req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
					if err != nil {
						report("http reader %d: %v", reader, err)
						return
					}
					rw := newRecorder()
					frontMux.ServeHTTP(rw, req)
					if rw.status >= 500 {
						report("http reader %d: %s answered %d: %s", reader, path, rw.status, rw.body.String())
						return
					}
				}
			}
		}(reader)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Post-conditions: fence covers the final writes, every added host
	// resolves at or above its fence generation's floor.
	g := r.gen.Load()
	if g == nil || g.ID < 1+deltas {
		t.Fatalf("final generation %+v, want at least %d", g, 1+deltas)
	}
	added.Range(func(k, v any) bool {
		name := k.(string)
		rec, ok, err := r.Lookup(context.Background(), name)
		if err != nil || !ok {
			t.Fatalf("post-hammer Lookup(%s) = (%v, %v)", name, ok, err)
		}
		if rec.Epoch < g.MinEpoch[graph.ShardOf(name, 2)] {
			t.Fatalf("post-hammer record %s epoch %d below floor", name, rec.Epoch)
		}
		return true
	})
	for s, node := range nodes {
		if e := node.store.Epoch(); e < g.MinEpoch[s] {
			t.Fatalf("shard %d store epoch %d below its fence floor %d", s, e, g.MinEpoch[s])
		}
	}
}

// recorder is a minimal concurrent-safe ResponseWriter for in-process
// HTTP assertions (httptest.ResponseRecorder works too; this keeps the
// hammer allocation-light).
type recorder struct {
	status int
	header http.Header
	body   *jsonBuffer
}

type jsonBuffer struct{ b []byte }

func (j *jsonBuffer) Write(p []byte) (int, error) { j.b = append(j.b, p...); return len(p), nil }
func (j *jsonBuffer) String() string              { return string(j.b) }

func newRecorder() *recorder {
	return &recorder{status: http.StatusOK, header: make(http.Header), body: &jsonBuffer{}}
}

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.status = code }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }
