package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"spammass/internal/delta"
)

// maxDeltaBody bounds the delta batch a router will accept.
const maxDeltaBody = 8 << 20

// BusyError reports a replica that refused a delta with 429: its
// ingest queue (bounded in front of the per-shard WAL) is full. The
// router propagates it as its own 429 so backpressure reaches the
// producer instead of being laundered into a 502.
type BusyError struct {
	// Shard and Replica identify who pushed back.
	Shard   int
	Replica string
	// RetryAfter is the replica's Retry-After header value, if any.
	RetryAfter string
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("shard %d replica %s: ingest queue full", e.Shard, e.Replica)
}

// deltaReply is the subset of a shard's POST /admin/delta?wait=1
// answer the router needs: the epoch the shard published the batch
// under.
type deltaReply struct {
	Epoch int64 `json:"epoch"`
}

// DeltaResult reports one fenced delta application.
type DeltaResult struct {
	// Generation is the fence generation the delta was published
	// under.
	Generation int64 `json:"generation"`
	// Ops is the total op count of the inbound batch.
	Ops int `json:"ops"`
	// CrossEdges counts edge ops dropped because their endpoints live
	// on different shards (the serving tier keeps shard-local
	// subgraphs; see internal/delta.SplitByShard).
	CrossEdges int `json:"cross_edges"`
	// Shards lists the shard indexes the batch touched.
	Shards []int `json:"shards"`
	// ShardEpochs[i] is the epoch shard Shards[i] published, the new
	// fence floor for that shard.
	ShardEpochs []int64 `json:"shard_epochs"`
}

// ApplyDelta splits a batch by owning shard, applies each part to
// every replica of its shard synchronously (?wait=1), and — only once
// every touched shard has published — advances the generation fence.
// Deltas are serialized: the fence must never interleave. On any
// shard failure the fence is left exactly where it was; replicas that
// already applied simply run ahead of the floor, which readers
// tolerate (the fence is a lower bound).
//
// Durability composes per shard: replicas booted with -wal-dir fsync
// each part to their own WAL before the ?wait=1 reply, so a fence
// advance implies every touched shard holds its part durably — a
// replica crash after the advance replays the part from its local log,
// landing at or beyond the fence floor. A replica whose bounded ingest
// queue is full answers 429, surfaced here as *BusyError with the
// fence unmoved.
func (r *Router) ApplyDelta(ctx context.Context, b *delta.Batch) (*DeltaResult, error) {
	split, err := delta.SplitByShard(b, len(r.shards))
	if err != nil {
		return nil, err
	}
	touched := split.Touched()

	r.deltaMu.Lock()
	defer r.deltaMu.Unlock()

	old := r.gen.Load()
	res := &DeltaResult{Ops: b.NumOps(), CrossEdges: split.CrossEdges, Shards: touched}
	if old != nil {
		res.Generation = old.ID
	}
	if len(touched) == 0 {
		return res, nil // nothing but dropped cross edges; fence unchanged
	}

	// Fan out: each touched shard's part goes to every replica, so the
	// whole replica set clears the new floor together.
	epochs := make([]int64, len(touched))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, s := range touched {
		var buf bytes.Buffer
		if err := delta.WriteText(&buf, split.Parts[s]); err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(i, s int, body []byte) {
			defer wg.Done()
			low, err := r.deltaShard(ctx, s, body)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			epochs[i] = low
		}(i, s, buf.Bytes())
	}
	wg.Wait()
	if firstErr != nil {
		r.errors.Inc()
		return nil, firstErr
	}

	next := &Generation{MinEpoch: make([]int64, len(r.shards))}
	if old != nil {
		next.ID = old.ID + 1
		copy(next.MinEpoch, old.MinEpoch)
	} else {
		next.ID = 1
	}
	for i, s := range touched {
		if epochs[i] > next.MinEpoch[s] {
			next.MinEpoch[s] = epochs[i]
		}
	}
	r.gen.Store(next)
	r.genGauge.Set(float64(next.ID))
	r.deltas.Add(1)
	res.Generation = next.ID
	res.ShardEpochs = epochs
	if r.cfg.Obs.Logging() {
		r.cfg.Obs.Logf("shard: delta of %d ops fenced at generation %d (shards %v, floors %v, %d cross edges dropped)",
			b.NumOps(), next.ID, touched, epochs, split.CrossEdges)
	}
	return res, nil
}

// deltaShard posts one shard's part to every replica and returns the
// lowest epoch any replica published it under — the shard's new fence
// floor.
func (r *Router) deltaShard(ctx context.Context, s int, body []byte) (int64, error) {
	ss := r.shards[s]
	epochs := make([]int64, len(ss.replicas))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, rep := range ss.replicas {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			e, err := r.deltaReplica(ctx, s, rep, body)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			epochs[i] = e
		}(i, rep)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	low := epochs[0]
	for _, e := range epochs[1:] {
		if e < low {
			low = e
		}
	}
	return low, nil
}

// deltaReplica applies one part to one replica synchronously. This
// bypasses fetch's replica choice on purpose: a delta is addressed to
// a specific replica, not to "whichever answers fastest".
func (r *Router) deltaReplica(ctx context.Context, s int, rep *replica, body []byte) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base+"/admin/delta?wait=1", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := r.client.Do(req)
	if err != nil {
		rep.healthy.Store(false)
		return 0, fmt.Errorf("shard %d replica %s: %w", s, rep.base, err)
	}
	defer resp.Body.Close()
	var reply deltaReply
	dec := json.NewDecoder(http.MaxBytesReader(nil, resp.Body, 1<<20))
	if resp.StatusCode == http.StatusTooManyRequests {
		return 0, &BusyError{Shard: s, Replica: rep.base, RetryAfter: resp.Header.Get("Retry-After")}
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		_ = dec.Decode(&eb)
		return 0, fmt.Errorf("shard %d replica %s: delta rejected with status %d: %s", s, rep.base, resp.StatusCode, eb.Error)
	}
	if err := dec.Decode(&reply); err != nil {
		return 0, fmt.Errorf("shard %d replica %s: bad delta reply: %w", s, rep.base, err)
	}
	if reply.Epoch <= 0 {
		return 0, fmt.Errorf("shard %d replica %s: delta reply has no epoch", s, rep.base)
	}
	rep.lastEpoch.Store(reply.Epoch)
	return reply.Epoch, nil
}

// errorBody mirrors the serve package's JSON error shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// HandleDelta is the router's POST /admin/delta: parse the batch,
// split it by owning shard, fence it. Installed over the stock route
// via serve.Config.Routes.
func (r *Router) HandleDelta(w http.ResponseWriter, req *http.Request) {
	b, err := delta.ReadText(http.MaxBytesReader(w, req.Body, maxDeltaBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad delta body: " + err.Error()})
		return
	}
	res, err := r.ApplyDelta(req.Context(), b)
	if err != nil {
		var busy *BusyError
		if errors.As(err, &busy) {
			// A shard's ingest queue pushed back; the fence did not move.
			// Surface the replica's own pacing hint so the producer slows
			// down instead of treating this as a topology failure.
			if busy.RetryAfter != "" {
				w.Header().Set("Retry-After", busy.RetryAfter)
			}
			r.cfg.Obs.Counter("shard.delta_backpressure_total").Inc()
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusBadGateway, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// ReplicaStatus is one replica's row in the router status.
type ReplicaStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Epoch   int64  `json:"epoch"`
}

// ShardStatus is one shard's row in the router status.
type ShardStatus struct {
	Index    int             `json:"index"`
	MinEpoch int64           `json:"min_epoch"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// RouterStatus is the GET /admin/status body of a router.
type RouterStatus struct {
	Role       string        `json:"role"`
	Generation int64         `json:"generation"`
	Deltas     int64         `json:"deltas"`
	Shards     []ShardStatus `json:"shards"`
}

// Status assembles the router's current topology view.
func (r *Router) Status() *RouterStatus {
	g := r.gen.Load()
	st := &RouterStatus{Role: "router", Generation: r.Generation(), Deltas: r.deltas.Load()}
	for s, ss := range r.shards {
		row := ShardStatus{Index: s, MinEpoch: r.floor(g, s)}
		for _, rep := range ss.replicas {
			row.Replicas = append(row.Replicas, ReplicaStatus{
				URL:     rep.base,
				Healthy: rep.healthy.Load(),
				Epoch:   rep.lastEpoch.Load(),
			})
		}
		st.Shards = append(st.Shards, row)
	}
	return st
}

// HandleStatus is the router's GET /admin/status.
func (r *Router) HandleStatus(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.Status())
}
