package mass

import (
	"testing"

	"spammass/internal/pagerank"
)

// fpEstimates builds a 4-node estimate where, under c=0.85 and the
// scaled threshold ρ=10, nodes 1..3 are in T (scaled PR ≥ 10) and
// node 0 is below it; nodes 2 and 3 cross τ=0.9.
func fpEstimates() (*Estimates, DetectConfig) {
	const c = 0.85
	// scaled = p * n/(1-c) = p * 26.67; p=0.3 → 8, p=0.5 → 13.3.
	e := &Estimates{
		P:       pagerank.Vector{0.3, 0.5, 0.6, 0.7},
		PCore:   pagerank.Vector{0.3, 0.4, 0.05, 0.02},
		Abs:     pagerank.Vector{0.0, 0.1, 0.55, 0.68},
		Rel:     pagerank.Vector{0.0, 0.2, 0.91, 0.97},
		Damping: c,
		SolveStats: &pagerank.SolveStats{
			Iterations: 42,
			EdgesSwept: 1234,
		},
	}
	return e, DetectConfig{RelMassThreshold: 0.9, ScaledPageRankThreshold: 10}
}

func TestFingerprintOf(t *testing.T) {
	e, dcfg := fpEstimates()
	f := FingerprintOf(e, dcfg)
	if f.Nodes != 4 {
		t.Fatalf("Nodes = %d, want 4", f.Nodes)
	}
	if f.NodesAboveRho != 3 {
		t.Fatalf("NodesAboveRho = %d, want 3", f.NodesAboveRho)
	}
	if f.Candidates != 2 {
		t.Fatalf("Candidates = %d, want 2", f.Candidates)
	}
	if got, want := f.SpamFraction, 2.0/3.0; got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("SpamFraction = %v, want %v", got, want)
	}
	// Total spam mass: positive scaled abs mass over T = (0.1+0.55+0.68)·n/(1−c).
	wantMass := (0.1 + 0.55 + 0.68) * 4 / (1 - 0.85)
	if got := f.TotalSpamMass; got < wantMass-1e-9 || got > wantMass+1e-9 {
		t.Fatalf("TotalSpamMass = %v, want %v", got, wantMass)
	}
	if len(f.RelMassDeciles) != 11 {
		t.Fatalf("RelMassDeciles has %d entries, want 11", len(f.RelMassDeciles))
	}
	if f.RelMassDeciles[0] != 0.2 || f.RelMassDeciles[10] != 0.97 {
		t.Fatalf("decile min/max = %v/%v, want 0.2/0.97", f.RelMassDeciles[0], f.RelMassDeciles[10])
	}
	if f.SolveIterations != 42 || f.EdgesSwept != 1234 {
		t.Fatalf("solve cost = %d/%d, want 42/1234", f.SolveIterations, f.EdgesSwept)
	}

	// The candidate rule must agree with Detect.
	if got := len(Detect(e, dcfg)); got != f.Candidates {
		t.Fatalf("Detect found %d candidates, fingerprint says %d", got, f.Candidates)
	}
	// |T| and deciles must agree with ReportSummary.
	s := ReportSummary(e, 1, 0.1, dcfg, f.Candidates)
	if s.NodesAboveRho != f.NodesAboveRho {
		t.Fatalf("ReportSummary |T| = %d, fingerprint %d", s.NodesAboveRho, f.NodesAboveRho)
	}
	for i := range s.RelMassDeciles {
		// lint:ignore floatcmp both sides are computed by the identical Deciles pass
		if s.RelMassDeciles[i] != f.RelMassDeciles[i] {
			t.Fatalf("decile %d disagrees with ReportSummary: %v vs %v", i, f.RelMassDeciles[i], s.RelMassDeciles[i])
		}
	}
}

func TestFingerprintDims(t *testing.T) {
	e, dcfg := fpEstimates()
	f := FingerprintOf(e, dcfg)
	dims := f.Dims()
	wantNames := []string{
		"spam_fraction", "candidates", "nodes_above_rho", "total_spam_mass",
		"rel_mass_p50", "rel_mass_p90", "solve_iterations", "edges_swept",
	}
	if len(dims) != len(wantNames) {
		t.Fatalf("Dims has %d entries, want %d", len(dims), len(wantNames))
	}
	byName := map[string]float64{}
	for i, d := range dims {
		if d.Name != wantNames[i] {
			t.Fatalf("dim %d = %q, want %q (order is part of the contract)", i, d.Name, wantNames[i])
		}
		byName[d.Name] = d.Value
	}
	if byName["candidates"] != 2 || byName["nodes_above_rho"] != 3 {
		t.Fatalf("counts wrong: %+v", byName)
	}
	if byName["rel_mass_p50"] != f.RelMassDeciles[5] || byName["rel_mass_p90"] != f.RelMassDeciles[9] {
		t.Fatalf("decile dims wrong: %+v vs %v", byName, f.RelMassDeciles)
	}
	if byName["solve_iterations"] != 42 || byName["edges_swept"] != 1234 {
		t.Fatalf("cost dims wrong: %+v", byName)
	}

	// Empty T: dims must be well-defined zeros, not NaN.
	empty := FingerprintOf(&Estimates{P: pagerank.Vector{1e-9}, PCore: pagerank.Vector{1e-9}, Abs: pagerank.Vector{0}, Rel: pagerank.Vector{0}, Damping: 0.85}, dcfg)
	for _, d := range empty.Dims() {
		if d.Value != 0 {
			t.Fatalf("empty-T dim %s = %v, want 0", d.Name, d.Value)
		}
	}
}
