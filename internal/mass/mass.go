// Package mass implements the paper's primary contribution: spam mass
// (Section 3) and the mass-based link-spam detection algorithm
// (Algorithm 2).
//
// The absolute spam mass of a node x is the PageRank contribution x
// receives from spam nodes, M_x = q_x^{V⁻}; the relative spam mass is
// the fraction m_x = M_x / p_x. With only a good core Ṽ⁺ available,
// the masses are estimated from two PageRank vectors (Definition 3):
//
//	M̃ = p − p'   and   m̃ = 1 − p'/p
//
// where p = PR(v) uses the uniform random jump and p' = PR(w) uses a
// jump restricted to the good core, scaled so that ‖w‖ = γ, the
// estimated fraction of good nodes on the web (Section 3.5).
//
// All estimation runs on a pagerank.Engine; an Estimator binds the
// engine to one graph so repeated estimations (core variants, warm
// recomputes, γ sweeps) reuse the cached graph state, and the two
// solves of Definition 3 share one adjacency sweep per iteration via
// the engine's batched SolveMany.
//
// A solve that hits MaxIter without meeting Epsilon surfaces as a
// pagerank.ErrNotConverged; a truncated p' can therefore never skew
// M̃ = p − p' silently. Callers that deliberately accept truncated
// solves opt in via Options.Solver.AllowTruncated.
package mass

import (
	"fmt"
	"math"
	"sort"
	"time"

	"spammass/internal/graph"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
)

// Options configures mass estimation.
type Options struct {
	// Solver configures the underlying linear PageRank computations.
	Solver pagerank.Config
	// Gamma is the estimated fraction γ of good nodes on the web; the
	// core-based jump vector w is scaled to ‖w‖ = γ (Section 3.5).
	// The paper's experiments use γ = 0.85, from the conservative
	// estimate that at least 15% of hosts are spam.
	//
	// If Gamma is zero the jump vector is NOT scaled: each core node
	// receives weight 1/n, the plain v^Ṽ⁺ of Definition 3. (This is
	// the setting of the Table 1 example; on real-scale graphs it
	// suffers the ‖p'‖ ≪ ‖p‖ problem described in Section 3.5.)
	Gamma float64
}

// DefaultOptions returns the options used in the paper's experiments.
func DefaultOptions() Options {
	return Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85}
}

// Estimates holds the outcome of spam-mass estimation for every node.
// All vectors are in unscaled PageRank units; use Scaled reporting
// helpers (or pagerank.Vector.Scaled) for the paper's n/(1−c) scaling.
//
// Every constructor clones its inputs, so the vectors of an Estimates
// never alias caller-owned vectors or those of another Estimates:
// mutating one estimate in place (Vector.Scale/Add/Sub) cannot corrupt
// its siblings.
type Estimates struct {
	// P is the regular PageRank vector p = PR(v).
	P pagerank.Vector
	// PCore is the core-based PageRank vector p' = PR(w).
	PCore pagerank.Vector
	// Abs is the estimated absolute spam mass M̃ = p − p'. Entries can
	// be negative: a negative mass indicates a node that is either in
	// the good core itself or heavily supported by it (Section 3.5).
	Abs pagerank.Vector
	// Rel is the estimated relative spam mass m̃ = 1 − p'/p.
	Rel pagerank.Vector
	// Damping is the damping factor used, kept for scaled reporting.
	Damping float64
	// SolveStats, when the estimate came from an Estimator, holds the
	// telemetry of the batched solve that produced P and PCore.
	SolveStats *pagerank.SolveStats
}

// N returns the number of nodes covered by the estimates.
func (e *Estimates) N() int { return len(e.P) }

// ScaledPageRank returns p_x scaled by n/(1−c), the unit in which the
// paper reports scores (a node with no inlinks scores 1).
func (e *Estimates) ScaledPageRank(x graph.NodeID) float64 {
	return e.P[x] * float64(e.N()) / (1 - e.Damping)
}

// ScaledAbsMass returns M̃_x scaled by n/(1−c).
func (e *Estimates) ScaledAbsMass(x graph.NodeID) float64 {
	return e.Abs[x] * float64(e.N()) / (1 - e.Damping)
}

// Estimator binds mass estimation to a reusable pagerank.Engine. Use
// it instead of the free functions when estimating repeatedly on one
// graph: the inverse out-degrees, dangling list, solver buffers, and
// worker pool are built once, and batched estimations share adjacency
// sweeps. Close releases the engine's worker pool.
type Estimator struct {
	g    *graph.Graph
	eng  *pagerank.Engine
	opts Options
}

// NewEstimator validates opts once — Gamma here, the solver settings
// in pagerank.NewEngine — and builds the engine.
func NewEstimator(g *graph.Graph, opts Options) (*Estimator, error) {
	if err := validateFraction("gamma", opts.Gamma); err != nil {
		return nil, err
	}
	eng, err := pagerank.NewEngine(g, opts.Solver)
	if err != nil {
		return nil, err
	}
	opts.Solver = eng.Config()
	return &Estimator{g: g, eng: eng, opts: opts}, nil
}

// Engine exposes the underlying solver engine (e.g. for custom
// batched solves alongside estimation).
func (es *Estimator) Engine() *pagerank.Engine { return es.eng }

// Close releases the engine's worker pool.
func (es *Estimator) Close() { es.eng.Close() }

func (es *Estimator) damping() float64 { return es.opts.Solver.Damping }

// obsCtx returns the observability context the estimator was built
// with (nil when none was attached to Options.Solver.Obs).
func (es *Estimator) obsCtx() *obs.Context { return es.opts.Solver.Obs }

// annotateSolve attaches a logical per-vector solve span to sp. The p
// and p' solves physically share one batched sweep, so each logical
// span covers the batch window and carries its vector's own
// convergence diagnostics.
func annotateSolve(sp *obs.Span, name string, start time.Time, r *pagerank.Result) {
	if sp == nil || r == nil {
		return
	}
	d := time.Duration(0)
	if r.Stats != nil {
		d = r.Stats.WallTime
	}
	c := sp.ChildWindow(name, start, d)
	c.SetAttr("batched", true)
	c.SetAttr("iterations", r.Iterations)
	c.SetAttr("residual", r.Residual)
	c.SetAttr("converged", r.Converged)
}

// coreJump builds the jump vector for a core under fraction frac:
// ‖w‖ = frac when frac > 0, weight 1/n per core node when frac == 0.
// Fraction ranges are validated by the Estimator constructor (γ) or
// the blacklist entry point (β); this helper assumes a valid frac.
func coreJump(n int, core []graph.NodeID, frac float64) pagerank.Vector {
	if frac > 0 {
		return pagerank.ScaledCoreJump(n, core, frac)
	}
	return pagerank.CoreJump(n, core, 1/float64(n))
}

func validateFraction(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("mass: %s %v outside [0,1]", name, v)
	}
	return nil
}

// EstimateFromCore runs the two PageRank computations of Section 3.4
// as one batched solve — the p = PR(v) and p' = PR(w) sweeps share a
// single traversal of the in-neighbor lists per iteration — and
// derives the absolute and relative mass estimates of every node.
func (es *Estimator) EstimateFromCore(core []graph.NodeID) (*Estimates, error) {
	if err := validateCore(es.g, core); err != nil {
		return nil, err
	}
	octx := es.obsCtx()
	sp := octx.Span("mass.estimate_from_core")
	defer sp.End()
	if sp != nil {
		sp.SetAttr("core_size", len(core))
		sp.SetAttr("gamma", es.opts.Gamma)
	}
	n := es.g.NumNodes()
	cfg := es.opts.Solver
	cfg.Obs = octx.In(sp)
	solveStart := time.Now()
	rs, err := es.eng.SolveManyConfig([]pagerank.Vector{
		pagerank.UniformJump(n),
		coreJump(n, core, es.opts.Gamma),
	}, cfg)
	if err != nil {
		return nil, fmt.Errorf("mass: batched PageRank solves: %w", err)
	}
	annotateSolve(sp, "solve.p", solveStart, rs[0])
	annotateSolve(sp, "solve.p_core", solveStart, rs[1])
	dsp := cfg.Obs.Span("mass.derive")
	e := Derive(rs[0].Scores, rs[1].Scores, es.damping())
	dsp.End()
	octx.Counter("mass.estimations_total").Inc()
	e.SolveStats = rs[0].Stats
	return e, nil
}

// Recompute derives fresh estimates for an updated good core, reusing
// the previous estimates: the regular PageRank vector is unchanged and
// the previous core-based vector warm-starts the new solve, so a small
// core edit (the Section 4.4.2 anomaly fix, or incremental core growth
// per Section 4.5) converges in a fraction of the cold iterations.
func (es *Estimator) Recompute(prev *Estimates, core []graph.NodeID) (*Estimates, error) {
	ests, err := es.RecomputeMany(prev, [][]graph.NodeID{core})
	if err != nil {
		return nil, err
	}
	return ests[0], nil
}

// RecomputeMany is Recompute for several core variants at once: all
// core-based solves are batched through one SolveMany, sharing one
// adjacency sweep per iteration and the same warm start. This is the
// workhorse of the core-size and coverage experiments (Section 4.5).
func (es *Estimator) RecomputeMany(prev *Estimates, cores [][]graph.NodeID) ([]*Estimates, error) {
	if prev.N() != es.g.NumNodes() {
		return nil, fmt.Errorf("mass: previous estimates cover %d nodes, graph has %d", prev.N(), es.g.NumNodes())
	}
	octx := es.obsCtx()
	sp := octx.Span("mass.recompute")
	defer sp.End()
	sp.SetAttr("cores", len(cores))
	n := es.g.NumNodes()
	ws := make([]pagerank.Vector, len(cores))
	for i, core := range cores {
		if err := validateCore(es.g, core); err != nil {
			return nil, err
		}
		ws[i] = coreJump(n, core, es.opts.Gamma)
	}
	cfg := es.opts.Solver
	cfg.WarmStart = prev.PCore
	cfg.Obs = octx.In(sp)
	rs, err := es.eng.SolveManyConfig(ws, cfg)
	if err != nil {
		return nil, fmt.Errorf("mass: warm core-based PageRank: %w", err)
	}
	dsp := cfg.Obs.Span("mass.derive")
	out := make([]*Estimates, len(rs))
	for i, r := range rs {
		out[i] = Derive(prev.P, r.Scores, prev.Damping)
		out[i].SolveStats = r.Stats
	}
	dsp.End()
	octx.Counter("mass.recomputes_total").Add(int64(len(cores)))
	return out, nil
}

// EstimateFromBlacklist estimates absolute mass from a known spam
// subset Ṽ⁻ as M̂ = PR(v^{Ṽ⁻}) (Section 3.4). If beta > 0 the jump
// vector is scaled to ‖·‖ = beta (the estimated fraction of spam
// nodes), symmetric to the γ-scaling of the good-core estimator. The
// regular and blacklist solves are batched into one engine sweep.
func (es *Estimator) EstimateFromBlacklist(spamCore []graph.NodeID, beta float64) (*Estimates, error) {
	if err := validateCore(es.g, spamCore); err != nil {
		return nil, err
	}
	if err := validateFraction("beta", beta); err != nil {
		return nil, err
	}
	octx := es.obsCtx()
	sp := octx.Span("mass.estimate_from_blacklist")
	defer sp.End()
	if sp != nil {
		sp.SetAttr("core_size", len(spamCore))
		sp.SetAttr("beta", beta)
	}
	cfg := es.opts.Solver
	cfg.Obs = octx.In(sp)
	n := es.g.NumNodes()
	rs, err := es.eng.SolveManyConfig([]pagerank.Vector{
		pagerank.UniformJump(n),
		coreJump(n, spamCore, beta),
	}, cfg)
	if err != nil {
		return nil, fmt.Errorf("mass: batched PageRank solves: %w", err)
	}
	p, mHat := rs[0].Scores, rs[1].Scores
	e := &Estimates{
		P:          p.Clone(),
		PCore:      p.Clone().Sub(mHat), // good contribution q^{V⁺} = p − M̂
		Abs:        mHat.Clone(),
		Rel:        make(pagerank.Vector, n),
		Damping:    es.damping(),
		SolveStats: rs[0].Stats,
	}
	for x := range e.Rel {
		if e.P[x] > 0 {
			e.Rel[x] = e.Abs[x] / e.P[x]
		}
	}
	return e, nil
}

// Exact computes the actual (not estimated) spam mass M = q^{V⁻} and
// m = M/p, given the ground-truth set of spam nodes, via Theorem 2:
// the contribution of V⁻ is the PageRank for the jump vector v^{V⁻}.
// Only synthetic settings (and Table 1) have this luxury; it is the
// reference the estimators are judged against in tests.
func (es *Estimator) Exact(spam []graph.NodeID) (*Estimates, error) {
	octx := es.obsCtx()
	sp := octx.Span("mass.exact")
	defer sp.End()
	sp.SetAttr("spam_nodes", len(spam))
	cfg := es.opts.Solver
	cfg.Obs = octx.In(sp)
	n := es.g.NumNodes()
	v := pagerank.UniformJump(n)
	rs, err := es.eng.SolveManyConfig([]pagerank.Vector{v, pagerank.JumpRestriction(v, spam)}, cfg)
	if err != nil {
		return nil, fmt.Errorf("mass: batched PageRank solves: %w", err)
	}
	p, q := rs[0].Scores, rs[1].Scores
	e := &Estimates{
		P:          p.Clone(),
		PCore:      p.Clone().Sub(q), // good contribution q^{V⁺} = p − q^{V⁻}
		Abs:        q.Clone(),
		Rel:        make(pagerank.Vector, n),
		Damping:    es.damping(),
		SolveStats: rs[0].Stats,
	}
	for x := range e.Rel {
		if e.P[x] > 0 {
			e.Rel[x] = q[x] / e.P[x]
		}
	}
	return e, nil
}

// EstimateFromCore runs the two PageRank computations of Section 3.4
// and derives the absolute and relative mass estimates of every node.
// It is a convenience wrapper constructing a throwaway Estimator; hold
// an Estimator for repeated estimation on one graph.
func EstimateFromCore(g *graph.Graph, core []graph.NodeID, opts Options) (*Estimates, error) {
	es, err := NewEstimator(g, opts)
	if err != nil {
		return nil, err
	}
	defer es.Close()
	return es.EstimateFromCore(core)
}

// Recompute derives fresh estimates for an updated good core; see
// Estimator.Recompute.
func Recompute(g *graph.Graph, prev *Estimates, core []graph.NodeID, opts Options) (*Estimates, error) {
	es, err := NewEstimator(g, opts)
	if err != nil {
		return nil, err
	}
	defer es.Close()
	return es.Recompute(prev, core)
}

// Exact computes the actual spam mass from ground truth; see
// Estimator.Exact.
func Exact(g *graph.Graph, spam []graph.NodeID, opts Options) (*Estimates, error) {
	es, err := NewEstimator(g, opts)
	if err != nil {
		return nil, err
	}
	defer es.Close()
	return es.Exact(spam)
}

// EstimateFromBlacklist estimates absolute mass from a known spam
// subset; see Estimator.EstimateFromBlacklist.
func EstimateFromBlacklist(g *graph.Graph, spamCore []graph.NodeID, beta float64, opts Options) (*Estimates, error) {
	es, err := NewEstimator(g, opts)
	if err != nil {
		return nil, err
	}
	defer es.Close()
	return es.EstimateFromBlacklist(spamCore, beta)
}

// Derive computes mass estimates from two already-computed PageRank
// vectors, per Definition 3. It is useful when p is shared across many
// core variants (e.g. the core-size experiment of Section 4.5). The
// inputs are cloned: the returned Estimates owns all its vectors.
func Derive(p, pCore pagerank.Vector, c float64) *Estimates {
	e := &Estimates{
		P:       p.Clone(),
		PCore:   pCore.Clone(),
		Abs:     p.Clone().Sub(pCore),
		Rel:     make(pagerank.Vector, len(p)),
		Damping: c,
	}
	for x := range p {
		if p[x] > 0 {
			e.Rel[x] = (p[x] - pCore[x]) / p[x]
		}
	}
	return e
}

func validateCore(g *graph.Graph, core []graph.NodeID) error {
	if len(core) == 0 {
		return fmt.Errorf("mass: empty good core")
	}
	seen := make(map[graph.NodeID]bool, len(core))
	for _, x := range core {
		if int(x) >= g.NumNodes() {
			return fmt.Errorf("mass: core node %d outside graph of %d nodes", x, g.NumNodes())
		}
		if seen[x] {
			return fmt.Errorf("mass: duplicate core node %d", x)
		}
		seen[x] = true
	}
	return nil
}

// Combine averages a white-list estimate M̃ and a black-list estimate
// M̂ into (M̃ + M̂)/2, the simple combination scheme of Section 3.4,
// recomputing the relative masses from the combined absolute mass.
func Combine(white, black *Estimates) (*Estimates, error) {
	return WeightedCombine(white, black, 0.5)
}

// WeightedCombine forms a weighted average λ·M̃ + (1−λ)·M̂, the more
// sophisticated combination Section 3.4 suggests, where λ would depend
// on the relative sizes of Ṽ⁺ and Ṽ⁻ with respect to the estimated
// sizes of V⁺ and V⁻. The result owns its vectors: nothing is shared
// with white or black.
func WeightedCombine(white, black *Estimates, lambda float64) (*Estimates, error) {
	if white.N() != black.N() {
		return nil, fmt.Errorf("mass: combining estimates over %d and %d nodes", white.N(), black.N())
	}
	if lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("mass: weight %v outside [0,1]", lambda)
	}
	n := white.N()
	e := &Estimates{
		P:       white.P.Clone(),
		PCore:   make(pagerank.Vector, n),
		Abs:     make(pagerank.Vector, n),
		Rel:     make(pagerank.Vector, n),
		Damping: white.Damping,
	}
	for x := 0; x < n; x++ {
		e.Abs[x] = lambda*white.Abs[x] + (1-lambda)*black.Abs[x]
		e.PCore[x] = e.P[x] - e.Abs[x]
		if e.P[x] > 0 {
			e.Rel[x] = e.Abs[x] / e.P[x]
		}
	}
	return e, nil
}

// CoreWeightLambda derives the λ for WeightedCombine from the sizes of
// the labeled cores relative to the estimated population sizes: the
// white-list weight grows with the coverage |Ṽ⁺|/(γn) relative to the
// black-list coverage |Ṽ⁻|/((1−γ)n).
func CoreWeightLambda(goodCoreSize, spamCoreSize, n int, gamma float64) float64 {
	if n == 0 || gamma <= 0 || gamma >= 1 {
		return 0.5
	}
	wCov := float64(goodCoreSize) / (gamma * float64(n))
	bCov := float64(spamCoreSize) / ((1 - gamma) * float64(n))
	if wCov+bCov == 0 {
		return 0.5
	}
	return wCov / (wCov + bCov)
}

// TotalEstimatedGoodContribution returns ‖p'‖₁: Section 3.5 diagnoses
// the unscaled-core failure mode by ‖p'‖ ≪ ‖p‖.
func (e *Estimates) TotalEstimatedGoodContribution() float64 { return e.PCore.Norm1() }

// RelMassOrNaN returns m̃_x, or NaN for nodes with zero PageRank under
// a non-uniform jump vector. The guard is written `!(p > 0)` rather
// than `p <= 0` so a NaN PageRank entry (which compares false to
// everything) also yields NaN instead of a meaningless stored zero.
func (e *Estimates) RelMassOrNaN(x graph.NodeID) float64 {
	if !(e.P[x] > 0) {
		return math.NaN()
	}
	return e.Rel[x]
}

// ReportSummary condenses the estimates plus an Algorithm 2 run into
// the RunReport mass section: γ and the jump/vector norms of the
// Section 3.5 scaling diagnostic, the threshold counts, and the
// spam-mass distribution deciles over the examined set T (nodes with
// scaled PageRank ≥ ρ).
func ReportSummary(e *Estimates, coreSize int, gamma float64, dcfg DetectConfig, candidates int) *obs.MassSummary {
	s := &obs.MassSummary{
		Gamma:      gamma,
		CoreSize:   coreSize,
		PNorm:      e.P.Norm1(),
		PCoreNorm:  e.PCore.Norm1(),
		Tau:        dcfg.RelMassThreshold,
		Rho:        dcfg.ScaledPageRankThreshold,
		Candidates: candidates,
	}
	// ‖w‖ = γ by construction; an unscaled core (γ = 0) uses 1/n per
	// core node (Definition 3).
	s.JumpNorm = gamma
	if gamma == 0 && e.N() > 0 {
		s.JumpNorm = float64(coreSize) / float64(e.N())
	}
	var rel, abs []float64
	for x := 0; x < e.N(); x++ {
		id := graph.NodeID(x)
		if e.ScaledPageRank(id) < dcfg.ScaledPageRankThreshold {
			continue
		}
		rel = append(rel, e.Rel[x])
		abs = append(abs, e.ScaledAbsMass(id))
	}
	s.NodesAboveRho = len(rel)
	sort.Float64s(rel)
	sort.Float64s(abs)
	s.RelMassDeciles = obs.Deciles(rel)
	s.AbsMassDeciles = obs.Deciles(abs)
	return s
}

// RecordFor renders one node's detection outcome as a report row,
// labeled per Algorithm 2: spam when the node crosses both thresholds
// (scaled PageRank ≥ ρ and m̃ ≥ τ), good otherwise — including nodes
// below ρ, which Algorithm 2 never examines and therefore never labels
// spam. name may be empty. This is the single-node lookup surface
// shared by Records, the spammass -host flag, and the spamserver
// snapshot precompute.
func RecordFor(e *Estimates, x graph.NodeID, dcfg DetectConfig, name string) obs.DetectionRecord {
	rec := obs.DetectionRecord{
		Node:    int64(x),
		Host:    name,
		P:       e.ScaledPageRank(x),
		PCore:   e.PCore[x] * float64(e.N()) / (1 - e.Damping),
		AbsMass: e.ScaledAbsMass(x),
		RelMass: e.Rel[x],
		Label:   obs.LabelGood,
	}
	if rec.P >= dcfg.ScaledPageRankThreshold && rec.RelMass >= dcfg.RelMassThreshold {
		rec.Label = obs.LabelSpam
	}
	return rec
}

// Records renders the detection outcome of every node in T (scaled
// PageRank ≥ ρ) as report rows, sorted by decreasing relative mass,
// labeled per Algorithm 2. names, when non-nil, supplies the host
// names. This is the row source of both RunReport.Detections and the
// spammass -json output.
func Records(e *Estimates, dcfg DetectConfig, names []string) []obs.DetectionRecord {
	var out []obs.DetectionRecord
	for x := 0; x < e.N(); x++ {
		id := graph.NodeID(x)
		if e.ScaledPageRank(id) < dcfg.ScaledPageRankThreshold {
			continue
		}
		name := ""
		if names != nil {
			name = names[x]
		}
		out = append(out, RecordFor(e, id, dcfg, name))
	}
	sort.Slice(out, func(i, j int) bool {
		// lint:ignore floatcmp exact tie-break keeps the record order a strict weak ordering
		if out[i].RelMass != out[j].RelMass {
			return out[i].RelMass > out[j].RelMass
		}
		// lint:ignore floatcmp exact tie-break keeps the record order a strict weak ordering
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].Node < out[j].Node
	})
	return out
}
