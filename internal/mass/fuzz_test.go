package mass

import (
	"encoding/binary"
	"math"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/pagerank"
)

// FuzzDerive feeds Derive arbitrary float values — including NaN, ±Inf,
// zeros, and negatives — through raw bit patterns. Derive must never
// panic, and the safe accessor RelMassOrNaN must stay in [−∞, 1] (or be
// the NaN sentinel) whenever the inputs are well-formed PageRank-like
// vectors (finite, non-negative).
func FuzzDerive(f *testing.F) {
	enc := func(vals ...float64) []byte {
		out := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
		}
		return out
	}
	f.Add(enc(0.5, 0.5, 0.2, 0.3))              // ordinary split
	f.Add(enc(0, 1, 0, 0.5))                    // zero-PageRank node
	f.Add(enc(math.NaN(), 1, 0.1, 0.2))         // NaN PageRank
	f.Add(enc(math.Inf(1), 1, 1, math.Inf(-1))) // infinities
	f.Add(enc(1e-300, 2e-300))                  // denormal-range division
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Carve the bytes into two equal-length vectors p and pCore
		// (Derive's documented precondition: both come from the same
		// graph, so same length). Values are arbitrary bit patterns.
		vals := make([]float64, len(data)/8)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		n := len(vals) / 2
		p := pagerank.Vector(vals[:n])
		pCore := pagerank.Vector(vals[n : 2*n])

		e := Derive(p, pCore, 0.85) // must not panic for any values
		if e.N() != n {
			t.Fatalf("Derive produced %d nodes from %d", e.N(), n)
		}

		wellFormed := true
		for x := 0; x < n; x++ {
			if math.IsNaN(p[x]) || math.IsInf(p[x], 0) || p[x] < 0 ||
				math.IsNaN(pCore[x]) || math.IsInf(pCore[x], 0) || pCore[x] < 0 {
				wellFormed = false
			}
		}
		for x := 0; x < n; x++ {
			m := e.RelMassOrNaN(graph.NodeID(x))
			// Zero or NaN PageRank must yield the NaN sentinel, never a
			// silent division or a misleading stored zero.
			if !(p[x] > 0) && !math.IsNaN(m) {
				t.Fatalf("node %d: p=%v but RelMassOrNaN=%v, want NaN", x, p[x], m)
			}
			// For well-formed inputs the relative mass is bounded above
			// by 1: p' ≥ 0 implies (p − p')/p ≤ 1.
			if wellFormed && !math.IsNaN(m) && m > 1 {
				t.Fatalf("node %d: RelMassOrNaN=%v > 1 for p=%v pCore=%v", x, m, p[x], pCore[x])
			}
		}
	})
}
