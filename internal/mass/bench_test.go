package mass

import (
	"math/rand"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/obs"
	"spammass/internal/testutil"
)

func benchSetup(n int) (*graph.Graph, []graph.NodeID) {
	rng := rand.New(rand.NewSource(1))
	g := testutil.RandomGraph(rng, n, 8)
	core := make([]graph.NodeID, n/150)
	for i := range core {
		core[i] = graph.NodeID(i * 150)
	}
	return g, core
}

func BenchmarkEstimateFromCore(b *testing.B) {
	g, core := benchSetup(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateFromCore(g, core, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateFromCore10k is the acceptance benchmark for the
// batched engine: both PageRank solves (p and p') share one adjacency
// sweep per iteration via Engine.SolveMany. No observability sink is
// attached, so the instrumented paths stay on their nil no-ops.
func BenchmarkEstimateFromCore10k(b *testing.B) {
	g, core := benchSetup(10000)
	b.ResetTimer()
	var est *Estimates
	var err error
	for i := 0; i < b.N; i++ {
		if est, err = EstimateFromCore(g, core, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if est.SolveStats != nil {
		b.ReportMetric(est.SolveStats.EdgesPerSecond, "edges/s")
	}
}

// BenchmarkEstimateFromCore10kObs is the same workload with the
// observability sinks attached (metrics registry and span tree, fresh
// per iteration as a CLI run would hold them); comparing it against
// the plain 10k benchmark bounds the instrumentation overhead.
func BenchmarkEstimateFromCore10kObs(b *testing.B) {
	g, core := benchSetup(10000)
	b.ResetTimer()
	var est *Estimates
	var err error
	for i := 0; i < b.N; i++ {
		octx := obs.NewContext(obs.NewRegistry(), obs.NewSpan("bench"))
		opts := DefaultOptions()
		opts.Solver.Obs = octx
		if est, err = EstimateFromCore(g, core, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if est.SolveStats != nil {
		b.ReportMetric(est.SolveStats.EdgesPerSecond, "edges/s")
	}
}

// BenchmarkRecomputeMany10k measures the batched warm re-estimation
// path used by the core-size and stability experiments: eight core
// variants per batch.
func BenchmarkRecomputeMany10k(b *testing.B) {
	g, core := benchSetup(10000)
	es, err := NewEstimator(g, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	defer es.Close()
	est, err := es.EstimateFromCore(core)
	if err != nil {
		b.Fatal(err)
	}
	cores := make([][]graph.NodeID, 8)
	for i := range cores {
		cores[i] = core[:len(core)-i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := es.RecomputeMany(est, cores); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetect(b *testing.B) {
	g, core := benchSetup(100000)
	est, err := EstimateFromCore(g, core, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Detect(est, DefaultDetectConfig())
	}
}

func BenchmarkDerive(b *testing.B) {
	g, core := benchSetup(100000)
	est, err := EstimateFromCore(g, core, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Derive(est.P, est.PCore, est.Damping)
	}
}
