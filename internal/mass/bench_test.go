package mass

import (
	"math/rand"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/testutil"
)

func benchSetup(n int) (*graph.Graph, []graph.NodeID) {
	rng := rand.New(rand.NewSource(1))
	g := testutil.RandomGraph(rng, n, 8)
	core := make([]graph.NodeID, n/150)
	for i := range core {
		core[i] = graph.NodeID(i * 150)
	}
	return g, core
}

func BenchmarkEstimateFromCore(b *testing.B) {
	g, core := benchSetup(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateFromCore(g, core, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetect(b *testing.B) {
	g, core := benchSetup(100000)
	est, err := EstimateFromCore(g, core, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Detect(est, DefaultDetectConfig())
	}
}

func BenchmarkDerive(b *testing.B) {
	g, core := benchSetup(100000)
	est, err := EstimateFromCore(g, core, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Derive(est.P, est.PCore, est.Damping)
	}
}
