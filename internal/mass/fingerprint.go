package mass

import (
	"sort"

	"spammass/internal/graph"
	"spammass/internal/obs"
)

// Fingerprint condenses one epoch's detection operating point into a
// fixed set of numbers: how much of the examined set crossed the spam
// threshold, how the relative-mass distribution is shaped, how much
// spam mass the detector sees in total, and what the solve cost. The
// serve tier's drift watchdog compares consecutive fingerprints — a
// jump in any dimension means the detector's behavior changed, whether
// from graph churn, a threshold edit, or a solver regression, and an
// operator should look before trusting the labels.
type Fingerprint struct {
	// Epoch of the snapshot the fingerprint describes; 0 when unknown.
	Epoch uint64 `json:"epoch,omitempty"`
	// Nodes is the total node count of the estimates.
	Nodes int `json:"nodes"`
	// NodesAboveRho is |T|: nodes with scaled PageRank ≥ ρ.
	NodesAboveRho int `json:"nodes_above_rho"`
	// Candidates is |S|: nodes in T with m̃ ≥ τ (Algorithm 2 output).
	Candidates int `json:"candidates"`
	// SpamFraction is |S| / |T|, or 0 when T is empty.
	SpamFraction float64 `json:"spam_fraction"`
	// TotalSpamMass is the summed positive scaled absolute mass over T
	// — the total boosting the detector attributes to spam this epoch.
	TotalSpamMass float64 `json:"total_spam_mass"`
	// RelMassDeciles are the 11 decile values (min..max) of m̃ over T,
	// nil when T is empty.
	RelMassDeciles []float64 `json:"rel_mass_deciles,omitempty"`
	// SolveIterations and EdgesSwept are the cost of the batched solve
	// that produced the estimates, 0 when no stats were recorded.
	SolveIterations int   `json:"solve_iterations"`
	EdgesSwept      int64 `json:"edges_swept"`
}

// FingerprintOf extracts the epoch fingerprint from estimates under
// the detection thresholds in dcfg. It shares the |T| / deciles
// definitions with ReportSummary and the candidate rule with Detect,
// so a fingerprint can never disagree with the report.
func FingerprintOf(e *Estimates, dcfg DetectConfig) *Fingerprint {
	f := &Fingerprint{Nodes: e.N()}
	var rel []float64
	for x := 0; x < e.N(); x++ {
		id := graph.NodeID(x)
		if e.ScaledPageRank(id) < dcfg.ScaledPageRankThreshold {
			continue
		}
		rel = append(rel, e.Rel[x])
		if e.Rel[x] >= dcfg.RelMassThreshold {
			f.Candidates++
		}
		if m := e.ScaledAbsMass(id); m > 0 {
			f.TotalSpamMass += m
		}
	}
	f.NodesAboveRho = len(rel)
	if f.NodesAboveRho > 0 {
		f.SpamFraction = float64(f.Candidates) / float64(f.NodesAboveRho)
	}
	sort.Float64s(rel)
	f.RelMassDeciles = obs.Deciles(rel)
	if e.SolveStats != nil {
		f.SolveIterations = e.SolveStats.Iterations
		f.EdgesSwept = e.SolveStats.EdgesSwept
	}
	return f
}

// FingerprintDim is one named dimension of a fingerprint.
type FingerprintDim struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Dims flattens the fingerprint into the fixed, ordered dimension
// vector the drift watchdog tracks. Decile dimensions use the median
// and the 90th percentile — the body and the spam-side tail of the
// relative-mass distribution; when T is empty both report 0.
func (f *Fingerprint) Dims() []FingerprintDim {
	p50, p90 := 0.0, 0.0
	if len(f.RelMassDeciles) == 11 {
		p50, p90 = f.RelMassDeciles[5], f.RelMassDeciles[9]
	}
	return []FingerprintDim{
		{Name: "spam_fraction", Value: f.SpamFraction},
		{Name: "candidates", Value: float64(f.Candidates)},
		{Name: "nodes_above_rho", Value: float64(f.NodesAboveRho)},
		{Name: "total_spam_mass", Value: f.TotalSpamMass},
		{Name: "rel_mass_p50", Value: p50},
		{Name: "rel_mass_p90", Value: p90},
		{Name: "solve_iterations", Value: float64(f.SolveIterations)},
		{Name: "edges_swept", Value: float64(f.EdgesSwept)},
	}
}
