package mass

import (
	"math/rand"
	"testing"

	"spammass/internal/delta"
	"spammass/internal/goodcore"
	"spammass/internal/graph"
	"spammass/internal/pagerank"
	"spammass/internal/webgen"
)

// churnedWorld generates a 10k-host world with a good core, evolves
// one spam generation (Section 3.4 churn), and returns the old host
// graph, the applied delta result, and the core.
func churnedWorld(t *testing.T) (old *graph.HostGraph, res *delta.Result, core []graph.NodeID) {
	t.Helper()
	w, err := webgen.Generate(webgen.DefaultConfig(10000))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	c, err := goodcore.Assemble(w.Names, w.DirectoryMembers)
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	next, err := webgen.EvolveSpam(w, webgen.EvolveConfig{Seed: 2})
	if err != nil {
		t.Fatalf("evolve: %v", err)
	}
	old, err = graph.NewHostGraph(w.Graph, w.Names)
	if err != nil {
		t.Fatalf("host graph: %v", err)
	}
	newH, err := graph.NewHostGraph(next.Graph, next.Names)
	if err != nil {
		t.Fatalf("host graph: %v", err)
	}
	b, err := delta.Diff(old, newH)
	if err != nil {
		t.Fatalf("diff: %v", err)
	}
	if b.NumOps() == 0 {
		t.Fatal("churn produced an empty delta")
	}
	res, err = delta.Apply(old, b)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !res.Hosts.Graph.Equal(newH.Graph) {
		t.Fatal("applied churn differs from evolved graph")
	}
	return old, res, c.Nodes
}

// TestWarmMatchesCold is the acceptance bound of the incremental
// path: after one full churn generation — the most violent delta the
// Section 3.4 model produces, every spam farm replaced — estimates
// computed warm-started from the previous generation's vectors must
// agree with a cold estimation on the same graph to L1 ≤ 1e-9. (A
// full generation swap perturbs too much of the PageRank mass for the
// warm start to save iterations; TestWarmSavesIterationsSmallChurn
// covers the savings claim at realistic churn rates.)
func TestWarmMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-host estimation in -short mode")
	}
	old, res, core := churnedWorld(t)
	opts := DefaultOptions()

	// Previous generation's estimates: the warm-start source.
	prevEst, err := EstimateFromCore(old.Graph, core, opts)
	if err != nil {
		t.Fatalf("previous estimate: %v", err)
	}

	newCore := res.RemapNodes(core)
	if len(newCore) != len(core) {
		t.Fatalf("churn removed core hosts: %d → %d", len(core), len(newCore))
	}
	n2 := res.Hosts.Graph.NumNodes()
	warm, err := RemapWarmStart(prevEst, res.Remap, n2, newCore, opts.Gamma)
	if err != nil {
		t.Fatalf("remap warm start: %v", err)
	}

	es, err := NewEstimator(res.Hosts.Graph, opts)
	if err != nil {
		t.Fatalf("estimator: %v", err)
	}
	defer es.Close()
	warmEst, err := es.EstimateFromCoreWarm(newCore, warm)
	if err != nil {
		t.Fatalf("warm estimate: %v", err)
	}
	coldEst, err := es.EstimateFromCore(newCore)
	if err != nil {
		t.Fatalf("cold estimate: %v", err)
	}

	const bound = 1e-9
	for _, vec := range []struct {
		name       string
		warm, cold pagerank.Vector
	}{
		{"p", warmEst.P, coldEst.P},
		{"p_core", warmEst.PCore, coldEst.PCore},
		{"abs_mass", warmEst.Abs, coldEst.Abs},
	} {
		if d := vec.warm.Clone().Sub(vec.cold).Norm1(); d > bound {
			t.Errorf("%s: warm vs cold L1 = %.3e > %.0e", vec.name, d, bound)
		}
	}

	if !warmEst.SolveStats.WarmStarted {
		t.Error("warm solve not marked WarmStarted")
	}
	if warmEst.SolveStats.InitialResidual <= 0 {
		t.Error("warm solve recorded no initial residual")
	}
	if coldEst.SolveStats.WarmStarted {
		t.Error("cold solve marked WarmStarted")
	}
}

// smallChurnBatch builds a ~rate churn batch against h: roughly
// rate/2 of the edges removed and the same number of fresh random
// edges added.
func smallChurnBatch(rng *rand.Rand, h *graph.HostGraph, rate float64) *delta.Batch {
	b := &delta.Batch{}
	h.Graph.Edges(func(x, y graph.NodeID) bool {
		if rng.Float64() < rate/2 {
			b.Ops = append(b.Ops, delta.RemoveEdgeOp(h.Names[x], h.Names[y]))
		}
		return true
	})
	n := h.Graph.NumNodes()
	target := int(float64(h.Graph.NumEdges()) * rate / 2)
	for added := 0; added < target; {
		x := graph.NodeID(rng.Intn(n))
		y := graph.NodeID(rng.Intn(n))
		if x == y || h.Graph.HasEdge(x, y) {
			continue
		}
		b.Ops = append(b.Ops, delta.AddEdgeOp(h.Names[x], h.Names[y]))
		added++
	}
	return b.Dedup()
}

// TestWarmSavesIterationsSmallChurn pins the incremental payoff: at
// 1% edge churn the warm-started batched solve must need at most half
// the cold iteration count, with the results still inside the L1
// agreement bound. The savings come from the Gauss-Southwell push
// repair inside EstimateFromCoreWarm — the remapped seed alone barely
// helps at deep tolerances, because the solver's tail iterations are
// dominated by a slow near-c eigenmode that graph churn excites almost
// as strongly as a cold start does, while push repair removes the
// churn-localized residual with work proportional to the churn.
func TestWarmSavesIterationsSmallChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-host estimation in -short mode")
	}
	w, err := webgen.Generate(webgen.DefaultConfig(10000))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	c, err := goodcore.Assemble(w.Names, w.DirectoryMembers)
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	h, err := graph.NewHostGraph(w.Graph, w.Names)
	if err != nil {
		t.Fatalf("host graph: %v", err)
	}
	opts := DefaultOptions()
	prevEst, err := EstimateFromCore(h.Graph, c.Nodes, opts)
	if err != nil {
		t.Fatalf("previous estimate: %v", err)
	}

	res, err := delta.Apply(h, smallChurnBatch(rand.New(rand.NewSource(5)), h, 0.01))
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	newCore := res.RemapNodes(c.Nodes)
	warm, err := RemapWarmStart(prevEst, res.Remap, res.Hosts.Graph.NumNodes(), newCore, opts.Gamma)
	if err != nil {
		t.Fatalf("remap warm start: %v", err)
	}
	es, err := NewEstimator(res.Hosts.Graph, opts)
	if err != nil {
		t.Fatalf("estimator: %v", err)
	}
	defer es.Close()
	warmEst, err := es.EstimateFromCoreWarm(newCore, warm)
	if err != nil {
		t.Fatalf("warm estimate: %v", err)
	}
	coldEst, err := es.EstimateFromCore(newCore)
	if err != nil {
		t.Fatalf("cold estimate: %v", err)
	}
	if d := warmEst.P.Clone().Sub(coldEst.P).Norm1(); d > 1e-9 {
		t.Errorf("warm vs cold p: L1 = %.3e", d)
	}
	wi, ci := warmEst.SolveStats.Iterations, coldEst.SolveStats.Iterations
	t.Logf("1%% churn iterations: warm %d, cold %d (%.1fx)", wi, ci, float64(ci)/float64(wi))
	if wi*2 > ci {
		t.Errorf("warm start saved too little: warm %d, cold %d (want ≥2x fewer)", wi, ci)
	}
	if warmEst.SolveStats.InitialResidual >= coldEst.SolveStats.InitialResidual {
		t.Errorf("warm initial residual %.3e not below cold %.3e",
			warmEst.SolveStats.InitialResidual, coldEst.SolveStats.InitialResidual)
	}
}

func TestRemapWarmStartSeedsNewNodes(t *testing.T) {
	// Tiny world: 3 nodes, remove node 1, add two new ones.
	prev := &Estimates{
		P:     pagerank.Vector{0.5, 0.3, 0.2},
		PCore: pagerank.Vector{0.4, 0.2, 0.1},
	}
	remap := []int64{0, -1, 1}
	core := []graph.NodeID{0}
	w, err := RemapWarmStart(prev, remap, 4, core, 0.85)
	if err != nil {
		t.Fatalf("RemapWarmStart: %v", err)
	}
	if len(w.P) != 4 || len(w.PCore) != 4 {
		t.Fatalf("warm start lengths %d/%d, want 4", len(w.P), len(w.PCore))
	}
	// Survivors carry their old scores.
	if w.P[0] != 0.5 || w.P[1] != 0.2 {
		t.Fatalf("survivor P seeds = %v", w.P)
	}
	// Survivors copy prev even inside the core: the previous solution
	// beats the jump value as a seed.
	if w.PCore[0] != 0.4 || w.PCore[1] != 0.1 {
		t.Fatalf("survivor PCore seeds = %v, want 0.4/0.1", w.PCore[:2])
	}
	// New nodes sit at the jump values: 1/n uniform, 0 outside the core.
	if w.P[2] != 0.25 || w.P[3] != 0.25 {
		t.Fatalf("new-node P seeds = %v, want 0.25", w.P[2:])
	}
	if w.PCore[2] != 0 || w.PCore[3] != 0 {
		t.Fatalf("new-node PCore seeds = %v, want 0", w.PCore[2:])
	}
}

func TestRemapWarmStartErrors(t *testing.T) {
	prev := &Estimates{P: pagerank.Vector{1}, PCore: pagerank.Vector{1}}
	if _, err := RemapWarmStart(nil, nil, 1, nil, 0.85); err == nil {
		t.Error("nil estimates accepted")
	}
	if _, err := RemapWarmStart(prev, []int64{0, 1}, 2, nil, 0.85); err == nil {
		t.Error("remap length mismatch accepted")
	}
	if _, err := RemapWarmStart(prev, []int64{5}, 2, nil, 0.85); err == nil {
		t.Error("out-of-range remap target accepted")
	}
	if _, err := RemapWarmStart(prev, []int64{0}, 1, nil, 1.5); err == nil {
		t.Error("gamma out of range accepted")
	}
}

func TestEstimateFromCoreWarmValidates(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}})
	es, err := NewEstimator(g, DefaultOptions())
	if err != nil {
		t.Fatalf("estimator: %v", err)
	}
	defer es.Close()
	core := []graph.NodeID{0}
	// Wrong-length warm start must be rejected.
	bad := &WarmStart{P: make(pagerank.Vector, 2), PCore: make(pagerank.Vector, 3)}
	if _, err := es.EstimateFromCoreWarm(core, bad); err == nil {
		t.Error("short warm start accepted")
	}
	// Nil warm start falls back to the cold path.
	cold, err := es.EstimateFromCoreWarm(core, nil)
	if err != nil {
		t.Fatalf("nil warm start: %v", err)
	}
	if cold.SolveStats.WarmStarted {
		t.Error("nil warm start marked WarmStarted")
	}
}
