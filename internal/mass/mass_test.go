package mass

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spammass/internal/graph"
	"spammass/internal/pagerank"
	"spammass/internal/paperfig"
	"spammass/internal/testutil"
)

const c = paperfig.Damping

func unscaledOpts() Options {
	return Options{Solver: pagerank.DefaultConfig(), Gamma: 0} // plain v^Ṽ⁺, as in Table 1
}

// TestTable1Exact reproduces every column of Table 1 of the paper
// against the closed forms, for the Figure 2 graph with good core
// {g0, g1, g3} and ground-truth spam set {x, s0..s6}.
func TestTable1Exact(t *testing.T) {
	f := paperfig.NewFigure2()
	want := paperfig.ExpectedTable1(c)
	scale := float64(12) / (1 - c)

	est, err := EstimateFromCore(f.Graph, f.GoodCore(), unscaledOpts())
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(f.Graph, f.SpamNodes(), unscaledOpts())
	if err != nil {
		t.Fatal(err)
	}

	ids, labels := f.NodeOrder()
	for i, id := range ids {
		checks := []struct {
			name      string
			got, want float64
		}{
			{"p", est.P[id] * scale, want.P[i]},
			{"p'", est.PCore[id] * scale, want.PCore[i]},
			{"M", exact.Abs[id] * scale, want.M[i]},
			{"M~", est.Abs[id] * scale, want.MEst[i]},
			{"m", exact.Rel[id], want.RelM[i]},
			{"m~", est.Rel[id], want.RelME[i]},
		}
		for _, ch := range checks {
			if !testutil.AlmostEqual(ch.got, ch.want, 1e-8) {
				t.Errorf("%s[%s] = %v, want %v", ch.name, labels[i], ch.got, ch.want)
			}
		}
	}
}

// TestTable1PaperRounding spot-checks the numbers exactly as printed in
// the paper (two-decimal rounding).
func TestTable1PaperRounding(t *testing.T) {
	f := paperfig.NewFigure2()
	est, err := EstimateFromCore(f.Graph, f.GoodCore(), unscaledOpts())
	if err != nil {
		t.Fatal(err)
	}
	printed := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"scaled p_x", est.ScaledPageRank(f.X), 9.33, 0.005},
		{"scaled p'_x", est.PCore[f.X] * 12 / (1 - c), 2.295, 0.0005},
		{"scaled M~_x", est.ScaledAbsMass(f.X), 7.035, 0.0005},
		{"m~_x", est.Rel[f.X], 0.75, 0.005},
		{"m~_g0", est.Rel[f.G[0]], 0.31, 0.005},
		{"m~_g2", est.Rel[f.G[2]], 0.69, 0.005},
		{"m~_s0", est.Rel[f.S[0]], 1.0, 1e-9},
	}
	for _, p := range printed {
		if math.Abs(p.got-p.want) > p.tol {
			t.Errorf("%s = %v, paper prints %v", p.name, p.got, p.want)
		}
	}
}

// TestAlgorithm2Walkthrough reproduces the Section 3.6 walkthrough:
// with ρ = 1.5 and τ = 0.5, S = {x, s0, g2} — g2 being the false
// positive caused by the incomplete core — and g0 correctly excluded.
func TestAlgorithm2Walkthrough(t *testing.T) {
	f := paperfig.NewFigure2()
	est, err := EstimateFromCore(f.Graph, f.GoodCore(), unscaledOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := DetectSet(est, DetectConfig{RelMassThreshold: 0.5, ScaledPageRankThreshold: 1.5})
	want := map[graph.NodeID]bool{f.X: true, f.S[0]: true, f.G[2]: true}
	if len(s) != len(want) {
		t.Fatalf("candidate set has %d nodes %v, want %d", len(s), s, len(want))
	}
	for id := range want {
		if !s[id] {
			t.Errorf("node %d missing from candidate set", id)
		}
	}
	if s[f.G[0]] {
		t.Error("g0 labeled spam; paper excludes it (m~ = 0.31 < τ)")
	}
	// Low-PageRank nodes must be filtered regardless of relative mass:
	// s1..s6 all have m~ = 1 but scaled PageRank 1 < ρ.
	for i := 1; i <= 6; i++ {
		if s[f.S[i]] {
			t.Errorf("s%d labeled spam despite PageRank below ρ", i)
		}
	}
}

// TestPerfectCoreMatchesExact: with the full set of good nodes as core
// and no jump scaling, M̃ = M exactly (p' is precisely q^{V⁺}).
func TestPerfectCoreMatchesExact(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 3+rng.Intn(30), 4)
		n := g.NumNodes()
		// Random ground-truth partition with at least one good node.
		var good, spam []graph.NodeID
		for x := 0; x < n; x++ {
			if rng.Float64() < 0.6 {
				good = append(good, graph.NodeID(x))
			} else {
				spam = append(spam, graph.NodeID(x))
			}
		}
		if len(good) == 0 {
			good = append(good, 0)
			spam = spam[1:]
		}
		est, err := EstimateFromCore(g, good, unscaledOpts())
		if err != nil {
			return false
		}
		var exact *Estimates
		if len(spam) == 0 {
			// No spam: actual mass is identically zero.
			exact = &Estimates{Abs: make(pagerank.Vector, n)}
		} else {
			exact, err = Exact(g, spam, unscaledOpts())
			if err != nil {
				return false
			}
		}
		return testutil.MaxAbsDiff(est.Abs, exact.Abs) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDetectMonotonicity: raising either threshold can only shrink S.
func TestDetectMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := testutil.RandomGraph(rng, 60, 4)
	core := []graph.NodeID{0, 7, 13, 21}
	est, err := EstimateFromCore(g, core, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	prev := len(Detect(est, DetectConfig{RelMassThreshold: -2, ScaledPageRankThreshold: 0}))
	for _, tau := range []float64{0, 0.25, 0.5, 0.75, 0.98, 1.01} {
		cur := len(Detect(est, DetectConfig{RelMassThreshold: tau, ScaledPageRankThreshold: 0}))
		if cur > prev {
			t.Errorf("τ=%v: |S| grew from %d to %d", tau, prev, cur)
		}
		prev = cur
	}
	prev = len(Detect(est, DetectConfig{RelMassThreshold: 0, ScaledPageRankThreshold: 0}))
	for _, rho := range []float64{0.5, 1, 2, 5, 10} {
		cur := len(Detect(est, DetectConfig{RelMassThreshold: 0, ScaledPageRankThreshold: rho}))
		if cur > prev {
			t.Errorf("ρ=%v: |S| grew from %d to %d", rho, prev, cur)
		}
		prev = cur
	}
}

// TestScaledCoreNegativeMass: with the γ-scaled jump vector, good-core
// members receive an unusually high jump (γ/|Ṽ⁺| ≫ 1/n), so their
// estimated mass must go negative (Section 3.5).
func TestScaledCoreNegativeMass(t *testing.T) {
	f := paperfig.NewFigure2()
	est, err := EstimateFromCore(f.Graph, f.GoodCore(), Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range f.GoodCore() {
		if est.Abs[id] >= 0 {
			t.Errorf("core member %d has non-negative mass %v under scaled jump", id, est.Abs[id])
		}
	}
	// The spam nodes' relative mass must stay high.
	if est.Rel[f.S[0]] < 0.9 {
		t.Errorf("m~_s0 = %v under scaled jump, want near 1", est.Rel[f.S[0]])
	}
}

// TestScalingFixesNormCollapse demonstrates the Section 3.5 problem on
// a larger graph: with a tiny unscaled core, ‖p'‖ ≪ ‖p‖ and estimated
// mass approximately equals PageRank everywhere; γ-scaling restores a
// meaningful total good contribution.
func TestScalingFixesNormCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := testutil.RandomGraph(rng, 2000, 4)
	core := []graph.NodeID{1, 2, 3} // 0.15% of nodes
	plain, err := EstimateFromCore(g, core, unscaledOpts())
	if err != nil {
		t.Fatal(err)
	}
	scaledEst, err := EstimateFromCore(g, core, Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	pNorm := plain.P.Norm1()
	if r := plain.TotalEstimatedGoodContribution() / pNorm; r > 0.01 {
		t.Errorf("unscaled core: ‖p'‖/‖p‖ = %v, expected collapse below 1%%", r)
	}
	if r := scaledEst.TotalEstimatedGoodContribution() / pNorm; r < 0.5 {
		t.Errorf("scaled core: ‖p'‖/‖p‖ = %v, expected a meaningful fraction", r)
	}
}

func TestEstimateInputValidation(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}})
	if _, err := EstimateFromCore(g, nil, DefaultOptions()); err == nil {
		t.Error("empty core accepted")
	}
	if _, err := EstimateFromCore(g, []graph.NodeID{9}, DefaultOptions()); err == nil {
		t.Error("out-of-range core node accepted")
	}
	if _, err := EstimateFromCore(g, []graph.NodeID{1, 1}, DefaultOptions()); err == nil {
		t.Error("duplicate core node accepted")
	}
	if _, err := EstimateFromCore(g, []graph.NodeID{1}, Options{Gamma: 1.5}); err == nil {
		t.Error("gamma > 1 accepted")
	}
}

// TestBlacklistEstimator: on Figure 2 with the full spam set as the
// black list and no scaling, M̂ equals the exact mass.
func TestBlacklistEstimator(t *testing.T) {
	f := paperfig.NewFigure2()
	black, err := EstimateFromBlacklist(f.Graph, f.SpamNodes(), 0, unscaledOpts())
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(f.Graph, f.SpamNodes(), unscaledOpts())
	if err != nil {
		t.Fatal(err)
	}
	if d := testutil.MaxAbsDiff(black.Abs, exact.Abs); d > 1e-9 {
		t.Errorf("black-list estimate differs from exact mass by %v", d)
	}
}

// TestCombine: averaging a white-list and black-list estimate.
func TestCombine(t *testing.T) {
	f := paperfig.NewFigure2()
	white, err := EstimateFromCore(f.Graph, f.GoodCore(), unscaledOpts())
	if err != nil {
		t.Fatal(err)
	}
	black, err := EstimateFromBlacklist(f.Graph, f.S[:], 0, unscaledOpts())
	if err != nil {
		t.Fatal(err)
	}
	comb, err := Combine(white, black)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 12; x++ {
		want := (white.Abs[x] + black.Abs[x]) / 2
		if !testutil.AlmostEqual(comb.Abs[x], want, 1e-12) {
			t.Errorf("combined mass[%d] = %v, want %v", x, comb.Abs[x], want)
		}
	}
	// WeightedCombine with λ = 0.5 must agree with Combine.
	wc, err := WeightedCombine(white, black, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d := testutil.MaxAbsDiff(comb.Abs, wc.Abs); d > 1e-12 {
		t.Errorf("WeightedCombine(0.5) differs from Combine by %v", d)
	}
	if _, err := WeightedCombine(white, black, 1.5); err == nil {
		t.Error("weight outside [0,1] accepted")
	}
}

func TestCoreWeightLambda(t *testing.T) {
	// Equal coverage of the two populations → λ = 0.5.
	if got := CoreWeightLambda(850, 150, 10000, 0.85); !testutil.AlmostEqual(got, 0.5, 1e-12) {
		t.Errorf("balanced coverage λ = %v, want 0.5", got)
	}
	// Much better good coverage → λ near 1.
	if got := CoreWeightLambda(8500, 15, 10000, 0.85); got < 0.9 {
		t.Errorf("good-heavy coverage λ = %v, want > 0.9", got)
	}
	// Degenerate inputs fall back to 0.5.
	if got := CoreWeightLambda(0, 0, 0, 0.85); got != 0.5 {
		t.Errorf("degenerate λ = %v, want 0.5", got)
	}
}

func TestFilterByPageRank(t *testing.T) {
	f := paperfig.NewFigure2()
	est, err := EstimateFromCore(f.Graph, f.GoodCore(), unscaledOpts())
	if err != nil {
		t.Fatal(err)
	}
	// ρ = 1.5 keeps x (9.33), g0 (2.7), g2 (2.7), s0 (4.4).
	got := FilterByPageRank(est, 1.5)
	if len(got) != 4 {
		t.Fatalf("|T| = %d (%v), want 4", len(got), got)
	}
	for _, id := range got {
		if est.ScaledPageRank(id) < 1.5 {
			t.Errorf("node %d below threshold in T", id)
		}
	}
}

func TestTopByAbsMass(t *testing.T) {
	f := paperfig.NewFigure2()
	est, err := EstimateFromCore(f.Graph, f.GoodCore(), unscaledOpts())
	if err != nil {
		t.Fatal(err)
	}
	top := TopByAbsMass(est, 3)
	if len(top) != 3 {
		t.Fatalf("TopByAbsMass returned %d entries, want 3", len(top))
	}
	if top[0].Node != f.X {
		t.Errorf("largest estimated mass at node %d, want x=%d", top[0].Node, f.X)
	}
	for i := 1; i < len(top); i++ {
		if est.Abs[top[i].Node] > est.Abs[top[i-1].Node] {
			t.Error("TopByAbsMass not sorted descending")
		}
	}
	if got := TopByAbsMass(est, 100); len(got) != 12 {
		t.Errorf("TopByAbsMass(100) returned %d entries, want clamped to 12", len(got))
	}
}

func TestCandidateString(t *testing.T) {
	s := Candidate{Node: 5, ScaledPageRank: 12.3456, RelMass: 0.987}.String()
	if s == "" {
		t.Error("empty candidate string")
	}
}

// TestRelMassOrNaN: a node unreachable under a restricted jump has
// p = 0; the safe accessor must return NaN rather than dividing.
func TestRelMassOrNaN(t *testing.T) {
	e := &Estimates{P: pagerank.Vector{0, 1}, Rel: pagerank.Vector{0, 0.5}, Damping: c}
	if !math.IsNaN(e.RelMassOrNaN(0)) {
		t.Error("zero-PageRank node did not yield NaN")
	}
	if e.RelMassOrNaN(1) != 0.5 {
		t.Error("positive-PageRank node mangled")
	}
	// A NaN PageRank entry compares false to everything; the guard must
	// still route it to the NaN sentinel instead of returning the
	// stored (meaningless) relative mass.
	nan := &Estimates{P: pagerank.Vector{math.NaN()}, Rel: pagerank.Vector{0.25}, Damping: c}
	if !math.IsNaN(nan.RelMassOrNaN(0)) {
		t.Error("NaN-PageRank node did not yield NaN")
	}
}

// TestRecomputeMatchesCold: warm-started re-estimation after a core
// edit must match a cold estimation exactly (same fixpoint), in fewer
// iterations.
func TestRecomputeMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := testutil.RandomGraph(rng, 3000, 5)
	core := []graph.NodeID{1, 10, 100, 1000}
	opts := Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85}
	prev, err := EstimateFromCore(g, core, opts)
	if err != nil {
		t.Fatal(err)
	}
	grown := append(append([]graph.NodeID(nil), core...), 2000, 2500)
	cold, err := EstimateFromCore(g, grown, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Recompute(g, prev, grown, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d := testutil.MaxAbsDiff(cold.Abs, warm.Abs); d > 1e-9 {
		t.Errorf("warm recompute differs from cold by %v", d)
	}
	if d := testutil.MaxAbsDiff(cold.Rel, warm.Rel); d > 1e-9 {
		t.Errorf("warm relative masses differ from cold by %v", d)
	}
	// Validation paths.
	if _, err := Recompute(g, prev, nil, opts); err == nil {
		t.Error("empty core accepted")
	}
	small := &Estimates{P: pagerank.Vector{1}, PCore: pagerank.Vector{1}}
	if _, err := Recompute(g, small, grown, opts); err == nil {
		t.Error("mismatched previous estimates accepted")
	}
}

// TestMassInvariantsProperty: on random graphs and cores, the derived
// quantities obey their defining identities.
func TestMassInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 10+rng.Intn(100), 4)
		n := g.NumNodes()
		k := 1 + rng.Intn(n/2+1)
		seen := map[graph.NodeID]bool{}
		var core []graph.NodeID
		for len(core) < k {
			x := graph.NodeID(rng.Intn(n))
			if !seen[x] {
				seen[x] = true
				core = append(core, x)
			}
		}
		est, err := EstimateFromCore(g, core, Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85})
		if err != nil {
			return false
		}
		for x := 0; x < n; x++ {
			// M~ + p' = p exactly.
			if math.Abs(est.P[x]-(est.Abs[x]+est.PCore[x])) > 1e-12 {
				return false
			}
			// m~ ≤ 1 (p' ≥ 0 always).
			if est.P[x] > 0 && est.Rel[x] > 1+1e-12 {
				return false
			}
			if est.PCore[x] < -1e-15 {
				return false
			}
		}
		// Detection output is always a subset of the rho-filtered set.
		cands := Detect(est, DetectConfig{RelMassThreshold: 0.5, ScaledPageRankThreshold: 2})
		inT := map[graph.NodeID]bool{}
		for _, x := range FilterByPageRank(est, 2) {
			inT[x] = true
		}
		for _, c := range cands {
			if !inT[c.Node] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestAlgorithmChoiceEquivalent: Gauss-Seidel estimation reaches the
// same fixpoint as Jacobi.
func TestAlgorithmChoiceEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	g := testutil.RandomGraph(rng, 800, 5)
	core := []graph.NodeID{2, 30, 400}
	ja, err := EstimateFromCore(g, core, Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	gsCfg := pagerank.DefaultConfig()
	gsCfg.Algorithm = pagerank.AlgoGaussSeidel
	gs, err := EstimateFromCore(g, core, Options{Solver: gsCfg, Gamma: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if d := testutil.MaxAbsDiff(ja.Abs, gs.Abs); d > 1e-9 {
		t.Errorf("Jacobi and Gauss-Seidel estimates differ by %v", d)
	}
	bad := pagerank.DefaultConfig()
	bad.Algorithm = pagerank.Algorithm(99)
	if _, err := EstimateFromCore(g, core, Options{Solver: bad}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestEstimatesOwnTheirVectors is the aliasing regression test: the
// vectors of an Estimates must never be shared with caller-owned
// vectors or with a sibling Estimates, so in-place Vector mutation on
// one estimate cannot corrupt another.
func TestEstimatesOwnTheirVectors(t *testing.T) {
	f := paperfig.NewFigure2()
	p := pagerank.PR(f.Graph, pagerank.UniformJump(12), pagerank.DefaultConfig())
	w := pagerank.ScaledCoreJump(12, f.GoodCore(), 0.85)
	pCore := pagerank.PR(f.Graph, w, pagerank.DefaultConfig())

	// Derive must not alias its arguments.
	white := Derive(p, pCore, c)
	pBefore := white.P.Clone()
	p.Scale(100)
	pCore.Scale(100)
	if d := testutil.MaxAbsDiff(white.P, pBefore); d != 0 {
		t.Errorf("Derive aliases the caller's p: mutating it moved P by %v", d)
	}

	// Recompute must not thread prev's vectors into the new estimates.
	prev, err := EstimateFromCore(f.Graph, f.GoodCore(), Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	next, err := Recompute(f.Graph, prev, f.GoodCore()[:2], Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	nextP := next.P.Clone()
	nextRel := next.Rel.Clone()
	prev.P.Scale(3)
	prev.PCore.Scale(3)
	if d := testutil.MaxAbsDiff(next.P, nextP); d != 0 {
		t.Errorf("Recompute shares P with prev: mutation moved it by %v", d)
	}

	// Combine must not alias the white estimate.
	black, err := EstimateFromBlacklist(f.Graph, f.SpamNodes(), 0.15, Options{Solver: pagerank.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	comb, err := Combine(next, black)
	if err != nil {
		t.Fatal(err)
	}
	combAbs := comb.Abs.Clone()
	next.P.Scale(7)
	next.Abs.Scale(7)
	black.Abs.Scale(7)
	if d := testutil.MaxAbsDiff(comb.Abs, combAbs); d != 0 {
		t.Errorf("Combine shares vectors with its inputs: mutation moved Abs by %v", d)
	}
	if d := testutil.MaxAbsDiff(next.Rel, nextRel); d != 0 {
		t.Errorf("mutating sibling estimates corrupted Rel by %v", d)
	}
}

// TestNonConvergencePropagates proves the acceptance criterion: a
// non-converging solve cannot reach Derive without either a
// pagerank.ErrNotConverged or an explicit AllowTruncated opt-in.
func TestNonConvergencePropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := testutil.RandomGraph(rng, 200, 5)
	core := []graph.NodeID{1, 2, 3}
	tight := pagerank.Config{Damping: 0.85, Epsilon: 1e-300, MaxIter: 2}

	for name, call := range map[string]func(Options) (*Estimates, error){
		"EstimateFromCore": func(o Options) (*Estimates, error) { return EstimateFromCore(g, core, o) },
		"EstimateFromBlacklist": func(o Options) (*Estimates, error) {
			return EstimateFromBlacklist(g, core, 0.15, o)
		},
		"Exact": func(o Options) (*Estimates, error) { return Exact(g, core, o) },
	} {
		est, err := call(Options{Solver: tight, Gamma: 0.85})
		if !pagerank.IsNotConverged(err) {
			t.Errorf("%s: err = %v, want wrapped *ErrNotConverged", name, err)
		}
		if est != nil {
			t.Errorf("%s: returned estimates despite non-convergence", name)
		}
		allow := tight
		allow.AllowTruncated = true
		est, err = call(Options{Solver: allow, Gamma: 0.85})
		if err != nil {
			t.Errorf("%s: AllowTruncated solve rejected: %v", name, err)
		}
		if est == nil {
			t.Errorf("%s: AllowTruncated returned no estimates", name)
		}
	}

	// Recompute: the warm solve must also propagate.
	ok, err := EstimateFromCore(g, core, Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Recompute(g, ok, core[:2], Options{Solver: tight, Gamma: 0.85}); !pagerank.IsNotConverged(err) {
		t.Errorf("Recompute: err = %v, want wrapped *ErrNotConverged", err)
	}
}

// TestEstimatorReuse checks that one Estimator serves repeated and
// batched estimations with the same results as throwaway calls.
func TestEstimatorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := testutil.RandomGraph(rng, 400, 5)
	cores := [][]graph.NodeID{{1, 2, 3, 4}, {1, 2}, {5, 9, 11}}
	opts := Options{Solver: pagerank.DefaultConfig(), Gamma: 0.85}
	es, err := NewEstimator(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer es.Close()
	base, err := es.EstimateFromCore(cores[0])
	if err != nil {
		t.Fatal(err)
	}
	many, err := es.RecomputeMany(base, cores)
	if err != nil {
		t.Fatal(err)
	}
	for i, core := range cores {
		single, err := EstimateFromCore(g, core, opts)
		if err != nil {
			t.Fatal(err)
		}
		if d := testutil.MaxAbsDiff(single.Rel, many[i].Rel); d > 1e-9 {
			t.Errorf("core %d: batched recompute deviates from cold estimate by %v", i, d)
		}
	}
}

// TestGammaValidatedOnce checks the centralized range validation.
func TestGammaValidatedOnce(t *testing.T) {
	f := paperfig.NewFigure2()
	if _, err := EstimateFromCore(f.Graph, f.GoodCore(), Options{Gamma: 1.5}); err == nil {
		t.Error("gamma 1.5 accepted")
	}
	if _, err := NewEstimator(f.Graph, Options{Gamma: -0.1}); err == nil {
		t.Error("gamma -0.1 accepted")
	}
	if _, err := EstimateFromBlacklist(f.Graph, f.SpamNodes(), 1.2, Options{}); err == nil {
		t.Error("beta 1.2 accepted")
	}
}
