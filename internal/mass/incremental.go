package mass

import (
	"fmt"
	"time"

	"spammass/internal/graph"
	"spammass/internal/pagerank"
)

// WarmStart carries per-solve initial guesses for the two PageRank
// computations of Definition 3: P seeds the uniform-jump solve and
// PCore seeds the γ-scaled core solve. Build one with RemapWarmStart
// from a previous generation's estimates; pass it to
// EstimateFromCoreWarm.
type WarmStart struct {
	P     pagerank.Vector
	PCore pagerank.Vector
}

// RemapWarmStart maps a previous generation's solved vectors onto the
// node set of the next generation, producing the warm start for an
// incremental re-estimation after a graph delta.
//
// remap is delta.Result.Remap: remap[old] is the node's ID in the new
// graph, or -1 if the host was removed. n is the new graph's node
// count and core/gamma describe the next solve's core jump (the
// carried-forward core in the new ID space). Surviving nodes keep
// their previous scores; nodes that are new in this generation are
// seeded at their jump-vector values — 1/n for the uniform solve, the
// core-jump weight (normally 0, since a brand-new host is not in the
// good core) for the core solve — exactly where a cold solve would
// start them.
//
// With churn touching a small fraction of the graph, the seed is
// already close to the new fixpoint and the solver converges in a
// fraction of the cold iteration count; the result is identical to a
// cold solve up to the convergence tolerance.
func RemapWarmStart(prev *Estimates, remap []int64, n int, core []graph.NodeID, gamma float64) (*WarmStart, error) {
	if prev == nil {
		return nil, fmt.Errorf("mass: nil previous estimates")
	}
	if len(remap) != prev.N() {
		return nil, fmt.Errorf("mass: remap covers %d nodes, previous estimates cover %d", len(remap), prev.N())
	}
	if err := validateFraction("gamma", gamma); err != nil {
		return nil, err
	}
	w := &WarmStart{
		P:     pagerank.UniformJump(n),
		PCore: coreJump(n, core, gamma),
	}
	for old, new := range remap {
		if new < 0 {
			continue
		}
		if new >= int64(n) {
			return nil, fmt.Errorf("mass: remap sends node %d to %d, outside graph of %d nodes", old, new, n)
		}
		w.P[new] = prev.P[old]
		w.PCore[new] = prev.PCore[old]
	}
	return w, nil
}

// EstimateFromCoreWarm is EstimateFromCore seeded from a previous
// generation's solutions: the batched (p, p') solve starts from
// warm.P and warm.PCore instead of the jump vectors. A nil warm start
// falls back to the cold path, so callers can pass through whatever
// RemapWarmStart gave them.
//
// Before the batched solve, each warm vector is repaired in place by
// localized Gauss-Southwell pushes (pagerank.Engine.Refine): after a
// small graph delta the warm start's residual is concentrated around
// the churned edges, and push repair eliminates it with work
// proportional to the churn. The solve that follows then usually
// terminates in a single verification sweep — it, not the refiner,
// remains the convergence authority, so a refine that runs out of
// budget only costs extra solver iterations, never correctness.
func (es *Estimator) EstimateFromCoreWarm(core []graph.NodeID, warm *WarmStart) (*Estimates, error) {
	if warm == nil {
		return es.EstimateFromCore(core)
	}
	if err := validateCore(es.g, core); err != nil {
		return nil, err
	}
	n := es.g.NumNodes()
	if len(warm.P) != n || len(warm.PCore) != n {
		return nil, fmt.Errorf("mass: warm start covers %d/%d nodes, graph has %d", len(warm.P), len(warm.PCore), n)
	}
	octx := es.obsCtx()
	sp := octx.Span("mass.estimate_from_core_warm")
	defer sp.End()
	if sp != nil {
		sp.SetAttr("core_size", len(core))
		sp.SetAttr("gamma", es.opts.Gamma)
	}
	jumps := []pagerank.Vector{
		pagerank.UniformJump(n),
		coreJump(n, core, es.opts.Gamma),
	}
	if es.eng.Config().Algorithm != pagerank.AlgoPowerIteration {
		tol := es.eng.Config().Epsilon / 2
		for j, w := range []pagerank.Vector{warm.P, warm.PCore} {
			rst, err := es.eng.Refine(w, jumps[j], tol)
			if err != nil {
				return nil, fmt.Errorf("mass: refine warm start %d: %w", j, err)
			}
			if sp != nil {
				sp.SetAttr(fmt.Sprintf("refine.%d.pushes", j), rst.Pushes)
				sp.SetAttr(fmt.Sprintf("refine.%d.converged", j), rst.Converged)
			}
		}
	}
	cfg := es.opts.Solver
	cfg.WarmStarts = []pagerank.Vector{warm.P, warm.PCore}
	cfg.Obs = octx.In(sp)
	solveStart := time.Now()
	rs, err := es.eng.SolveManyConfig(jumps, cfg)
	if err != nil {
		return nil, fmt.Errorf("mass: warm batched PageRank solves: %w", err)
	}
	annotateSolve(sp, "solve.p", solveStart, rs[0])
	annotateSolve(sp, "solve.p_core", solveStart, rs[1])
	dsp := cfg.Obs.Span("mass.derive")
	e := Derive(rs[0].Scores, rs[1].Scores, es.damping())
	dsp.End()
	octx.Counter("mass.estimations_total").Inc()
	octx.Counter("mass.warm_estimations_total").Inc()
	e.SolveStats = rs[0].Stats
	return e, nil
}
