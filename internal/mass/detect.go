package mass

import (
	"fmt"
	"sort"

	"spammass/internal/graph"
	"spammass/internal/obs"
)

// DetectConfig holds the two thresholds of Algorithm 2.
type DetectConfig struct {
	// RelMassThreshold is τ: nodes with m̃ ≥ τ become spam candidates.
	RelMassThreshold float64
	// ScaledPageRankThreshold is ρ in the paper's scaled units
	// (n/(1−c) × raw score): only nodes with scaled PageRank ≥ ρ are
	// examined; a node with small PageRank is not a beneficiary of
	// considerable boosting, its mass estimate rests on little
	// evidence, and tiny absolute errors would blow up its relative
	// mass (the three reasons of Section 3.6).
	ScaledPageRankThreshold float64
}

// DefaultDetectConfig returns the thresholds of the paper's
// experiments: ρ = 10 (scaled) and τ = 0.98, the threshold at which
// detection precision was found to be virtually 100% once core
// anomalies are fixed.
func DefaultDetectConfig() DetectConfig {
	return DetectConfig{RelMassThreshold: 0.98, ScaledPageRankThreshold: 10}
}

// Candidate is one spam candidate produced by Detect.
type Candidate struct {
	Node graph.NodeID
	// ScaledPageRank is p_x in n/(1−c) units.
	ScaledPageRank float64
	// RelMass is the estimated relative spam mass m̃_x.
	RelMass float64
}

// Detect runs Algorithm 2 on precomputed estimates: every node x with
// scaled PageRank ≥ ρ and m̃_x ≥ τ is returned as a spam candidate,
// sorted by decreasing relative mass (ties by decreasing PageRank).
func Detect(e *Estimates, cfg DetectConfig) []Candidate {
	return DetectWith(e, cfg, nil)
}

// DetectWith is Detect with observability: the thresholding pass is
// recorded as a "mass.threshold" span carrying τ, ρ, |T| and the
// candidate count, and the mass.candidates counter is updated. A nil
// octx makes it identical to Detect.
func DetectWith(e *Estimates, cfg DetectConfig, octx *obs.Context) []Candidate {
	sp := octx.Span("mass.threshold")
	defer sp.End()
	var examined int
	var out []Candidate
	for x := 0; x < e.N(); x++ {
		id := graph.NodeID(x)
		spr := e.ScaledPageRank(id)
		if spr < cfg.ScaledPageRankThreshold {
			continue
		}
		examined++
		if e.Rel[x] >= cfg.RelMassThreshold {
			out = append(out, Candidate{Node: id, ScaledPageRank: spr, RelMass: e.Rel[x]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		// lint:ignore floatcmp exact tie-break keeps the candidate order a strict weak ordering
		if out[i].RelMass != out[j].RelMass {
			return out[i].RelMass > out[j].RelMass
		}
		// lint:ignore floatcmp exact tie-break keeps the candidate order a strict weak ordering
		if out[i].ScaledPageRank != out[j].ScaledPageRank {
			return out[i].ScaledPageRank > out[j].ScaledPageRank
		}
		return out[i].Node < out[j].Node
	})
	if sp != nil {
		sp.SetAttr("tau", cfg.RelMassThreshold)
		sp.SetAttr("rho", cfg.ScaledPageRankThreshold)
		sp.SetAttr("nodes_above_rho", examined)
		sp.SetAttr("candidates", len(out))
	}
	octx.Counter("mass.candidates_total").Add(int64(len(out)))
	return out
}

// DetectSet is Detect returning the candidate set S as a lookup map.
func DetectSet(e *Estimates, cfg DetectConfig) map[graph.NodeID]bool {
	cands := Detect(e, cfg)
	s := make(map[graph.NodeID]bool, len(cands))
	for _, c := range cands {
		s[c.Node] = true
	}
	return s
}

// FilterByPageRank returns the node set T of the experiments
// (Section 4.4): all nodes with scaled PageRank ≥ ρ, in increasing ID
// order.
func FilterByPageRank(e *Estimates, rho float64) []graph.NodeID {
	var out []graph.NodeID
	for x := 0; x < e.N(); x++ {
		if e.ScaledPageRank(graph.NodeID(x)) >= rho {
			out = append(out, graph.NodeID(x))
		}
	}
	return out
}

// TopByAbsMass returns the k nodes with the largest estimated absolute
// mass, in decreasing order — the §4.6 inspection view in which
// reputable giants (the paper's www.macromedia.com) intermix with spam,
// demonstrating why absolute mass alone does not separate the classes.
func TopByAbsMass(e *Estimates, k int) []Candidate {
	idx := make([]int, e.N())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return e.Abs[idx[i]] > e.Abs[idx[j]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]Candidate, 0, k)
	for _, x := range idx[:k] {
		out = append(out, Candidate{
			Node:           graph.NodeID(x),
			ScaledPageRank: e.ScaledPageRank(graph.NodeID(x)),
			RelMass:        e.Rel[x],
		})
	}
	return out
}

// String renders a candidate compactly for logs and examples.
func (c Candidate) String() string {
	return fmt.Sprintf("node %d (scaled PR %.2f, rel. mass %.3f)", c.Node, c.ScaledPageRank, c.RelMass)
}
