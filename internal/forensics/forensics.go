// Package forensics turns detections into explanations: given a spam
// candidate produced by the mass detector, it extracts the boosting
// structure behind it — the supporters contributing the bulk of its
// PageRank — and groups candidates into farm alliances (the structures
// of Gyöngyi & Garcia-Molina, "Link spam alliances", VLDB 2005, which
// Section 2.3 of the mass-estimation paper builds on).
//
// The primitive is the reverse contribution vector (q_x^y)_y of
// Section 3.2: for a farm target, the supporter list is dominated by
// spammer-controlled boosting nodes, recognizable by their own high
// relative mass. For a reputable hub the list is dominated by
// well-covered good nodes — which is why the same analysis also
// explains away false positives.
package forensics

import (
	"fmt"
	"sort"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
)

// Config tunes farm extraction.
type Config struct {
	// Coverage is the fraction of the target's PageRank the supporter
	// list must explain before extraction stops.
	Coverage float64
	// MaxSupporters caps the supporter list.
	MaxSupporters int
	// BoosterRelMass is the relative-mass level at which a supporter
	// is presumed spammer-controlled (boosting node).
	BoosterRelMass float64
	// Solver configures the underlying linear solves.
	Solver pagerank.Config
}

// DefaultConfig returns sensible extraction settings.
func DefaultConfig() Config {
	return Config{
		Coverage:       0.8,
		MaxSupporters:  200,
		BoosterRelMass: 0.9,
		Solver:         pagerank.DefaultConfig(),
	}
}

// Member is one node of an extracted farm.
type Member struct {
	Node graph.NodeID
	// Contribution is the PageRank of the target attributable to
	// this member; Share is its fraction of the target's total.
	Contribution float64
	Share        float64
	// Booster reports whether the member looks spammer-controlled
	// (its own relative mass is at or above BoosterRelMass).
	Booster bool
}

// Farm is the boosting structure extracted behind one candidate.
type Farm struct {
	Target graph.NodeID
	// PageRank is the target's (unscaled) PageRank.
	PageRank float64
	// Members lists the supporters explaining Coverage of the
	// target's PageRank, largest contribution first.
	Members []Member
	// BoosterShare is the fraction of the target's PageRank
	// contributed by members classified as boosters; for a genuine
	// farm target it approaches the target's relative mass, for a
	// false positive it stays low.
	BoosterShare float64
}

// Boosters returns the members classified as spammer-controlled.
func (f *Farm) Boosters() []graph.NodeID {
	var out []graph.NodeID
	for _, m := range f.Members {
		if m.Booster {
			out = append(out, m.Node)
		}
	}
	return out
}

// Extract analyzes one candidate target against the mass estimates.
func Extract(g *graph.Graph, est *mass.Estimates, target graph.NodeID, cfg Config) (*Farm, error) {
	if cfg.Coverage <= 0 || cfg.Coverage > 1 {
		return nil, fmt.Errorf("forensics: coverage %v outside (0,1]", cfg.Coverage)
	}
	if cfg.MaxSupporters <= 0 {
		return nil, fmt.Errorf("forensics: MaxSupporters must be positive")
	}
	v := pagerank.UniformJump(g.NumNodes())
	supporters, px, err := pagerank.TopSupporters(g, target, v, cfg.Solver, cfg.MaxSupporters)
	if err != nil {
		return nil, fmt.Errorf("forensics: supporters of %d: %w", target, err)
	}
	farm := &Farm{Target: target, PageRank: px}
	covered := 0.0
	for _, s := range supporters {
		if covered >= cfg.Coverage*px {
			break
		}
		m := Member{
			Node:         s.Node,
			Contribution: s.Contribution,
			Share:        s.Share,
			Booster:      est.Rel[s.Node] >= cfg.BoosterRelMass,
		}
		if m.Booster {
			farm.BoosterShare += s.Share
		}
		farm.Members = append(farm.Members, m)
		covered += s.Contribution
	}
	return farm, nil
}

// Alliance is a group of candidate targets whose farms are linked.
type Alliance struct {
	Targets []graph.NodeID
	// SharedBoosters counts boosters serving more than one target in
	// the alliance (collaborating spammers pooling boosting nodes).
	SharedBoosters int
}

// GroupAlliances clusters candidate targets into alliances: targets
// whose nodes interlink directly (the endorsement rings of alliance
// structures) or whose extracted farms share boosting nodes.
func GroupAlliances(g *graph.Graph, farms []*Farm) []Alliance {
	if len(farms) == 0 {
		return nil
	}
	targets := make([]graph.NodeID, len(farms))
	for i, f := range farms {
		targets[i] = f.Target
	}
	u := graph.NewUnionFind(g.NumNodes())
	inSet := make(map[graph.NodeID]bool, len(targets))
	for _, t := range targets {
		inSet[t] = true
	}
	// Direct target-to-target links.
	for _, t := range targets {
		for _, y := range g.OutNeighbors(t) {
			if inSet[y] {
				u.Union(t, y)
			}
		}
	}
	// Shared boosters.
	boosterOwner := make(map[graph.NodeID]graph.NodeID)
	shared := make(map[graph.NodeID]map[graph.NodeID]bool) // representative → shared boosters
	for _, f := range farms {
		for _, b := range f.Boosters() {
			if owner, ok := boosterOwner[b]; ok && owner != f.Target {
				u.Union(owner, f.Target)
				r := u.Find(f.Target)
				if shared[r] == nil {
					shared[r] = map[graph.NodeID]bool{}
				}
				shared[r][b] = true
			} else {
				boosterOwner[b] = f.Target
			}
		}
	}
	groups := make(map[graph.NodeID][]graph.NodeID)
	for _, t := range targets {
		r := u.Find(t)
		groups[r] = append(groups[r], t)
	}
	var out []Alliance
	for r, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, Alliance{Targets: members, SharedBoosters: len(shared[r])})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Targets) != len(out[j].Targets) {
			return len(out[i].Targets) > len(out[j].Targets)
		}
		return out[i].Targets[0] < out[j].Targets[0]
	})
	return out
}

// ExtractAll runs Extract for every candidate and groups the results
// into alliances.
func ExtractAll(g *graph.Graph, est *mass.Estimates, candidates []mass.Candidate, cfg Config) ([]*Farm, []Alliance, error) {
	farms := make([]*Farm, 0, len(candidates))
	for _, c := range candidates {
		f, err := Extract(g, est, c.Node, cfg)
		if err != nil {
			return nil, nil, err
		}
		farms = append(farms, f)
	}
	return farms, GroupAlliances(g, farms), nil
}
