package forensics

import (
	"testing"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
)

// buildWorld constructs a small hand-made world: a reputable cluster
// (the good core), two independent farms, and a two-farm alliance.
type world struct {
	g            *graph.Graph
	core         []graph.NodeID
	est          *mass.Estimates
	farmA, farmB graph.NodeID // independent farms
	ally1, ally2 graph.NodeID // allied targets
	boostersOf   map[graph.NodeID][]graph.NodeID
}

func buildWorld(t *testing.T) *world {
	t.Helper()
	b := graph.NewBuilder(0)
	w := &world{boostersOf: map[graph.NodeID][]graph.NodeID{}}

	// Good core: hub + 10 sites.
	hub := b.AddNode()
	w.core = append(w.core, hub)
	for i := 0; i < 10; i++ {
		site := b.AddNode()
		w.core = append(w.core, site)
		b.AddEdge(site, hub)
		b.AddEdge(hub, site)
	}
	farm := func(k int) graph.NodeID {
		target := b.AddNode()
		for i := 0; i < k; i++ {
			booster := b.AddNode()
			w.boostersOf[target] = append(w.boostersOf[target], booster)
			b.AddEdge(booster, target)
		}
		return target
	}
	w.farmA = farm(15)
	w.farmB = farm(20)
	w.ally1 = farm(12)
	w.ally2 = farm(12)
	b.AddEdge(w.ally1, w.ally2)
	b.AddEdge(w.ally2, w.ally1)
	w.g = b.Build()

	est, err := mass.EstimateFromCore(w.g, w.core, mass.Options{Solver: pagerank.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	w.est = est
	return w
}

func TestExtractRecoversFarm(t *testing.T) {
	w := buildWorld(t)
	f, err := Extract(w.g, w.est, w.farmA, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.Target != w.farmA {
		t.Fatalf("extracted target %d, want %d", f.Target, w.farmA)
	}
	planted := map[graph.NodeID]bool{}
	for _, x := range w.boostersOf[w.farmA] {
		planted[x] = true
	}
	extracted := f.Boosters()
	if len(extracted) == 0 {
		t.Fatal("no boosters extracted")
	}
	for _, x := range extracted {
		if !planted[x] {
			t.Errorf("extracted booster %d is not in the planted farm", x)
		}
	}
	if len(extracted) < 12 { // 80% coverage of 15 boosters
		t.Errorf("recovered only %d of 15 boosters", len(extracted))
	}
	if f.BoosterShare < 0.7 {
		t.Errorf("booster share %.3f, want most of the target's PageRank explained", f.BoosterShare)
	}
}

func TestExtractReputableHubIsClean(t *testing.T) {
	w := buildWorld(t)
	hub := w.core[0]
	f, err := Extract(w.g, w.est, hub, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.BoosterShare > 0.05 {
		t.Errorf("reputable hub has booster share %.3f; forensics should exonerate it", f.BoosterShare)
	}
	if len(f.Members) == 0 {
		t.Error("hub has no supporters at all")
	}
}

func TestExtractValidation(t *testing.T) {
	w := buildWorld(t)
	cfg := DefaultConfig()
	cfg.Coverage = 0
	if _, err := Extract(w.g, w.est, w.farmA, cfg); err == nil {
		t.Error("coverage 0 accepted")
	}
	cfg = DefaultConfig()
	cfg.MaxSupporters = 0
	if _, err := Extract(w.g, w.est, w.farmA, cfg); err == nil {
		t.Error("MaxSupporters 0 accepted")
	}
}

func TestGroupAlliances(t *testing.T) {
	w := buildWorld(t)
	var farms []*Farm
	for _, target := range []graph.NodeID{w.farmA, w.farmB, w.ally1, w.ally2} {
		f, err := Extract(w.g, w.est, target, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		farms = append(farms, f)
	}
	alliances := GroupAlliances(w.g, farms)
	if len(alliances) != 3 {
		t.Fatalf("%d alliances, want 3 (the pair + two singletons): %+v", len(alliances), alliances)
	}
	// Sorted by size: the two-target alliance first.
	if len(alliances[0].Targets) != 2 {
		t.Fatalf("largest alliance has %d targets, want 2", len(alliances[0].Targets))
	}
	got := alliances[0].Targets
	if !(got[0] == w.ally1 && got[1] == w.ally2) {
		t.Errorf("alliance targets %v, want [%d %d]", got, w.ally1, w.ally2)
	}
	for _, a := range alliances[1:] {
		if len(a.Targets) != 1 {
			t.Errorf("independent farm grouped: %v", a.Targets)
		}
	}
}

func TestGroupAlliancesSharedBoosters(t *testing.T) {
	// Two targets sharing a pool of boosting nodes must be grouped
	// even without direct target-to-target links.
	b := graph.NewBuilder(0)
	good := b.AddNode()
	t1, t2 := b.AddNode(), b.AddNode()
	for i := 0; i < 12; i++ {
		booster := b.AddNode()
		b.AddEdge(booster, t1)
		b.AddEdge(booster, t2)
	}
	g := b.Build()
	est, err := mass.EstimateFromCore(g, []graph.NodeID{good}, mass.Options{Solver: pagerank.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	f1, err := Extract(g, est, t1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Extract(g, est, t2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	alliances := GroupAlliances(g, []*Farm{f1, f2})
	if len(alliances) != 1 || len(alliances[0].Targets) != 2 {
		t.Fatalf("shared-booster farms not grouped: %+v", alliances)
	}
	if alliances[0].SharedBoosters == 0 {
		t.Error("no shared boosters counted")
	}
}

func TestExtractAll(t *testing.T) {
	w := buildWorld(t)
	cands := []mass.Candidate{{Node: w.farmA}, {Node: w.ally1}, {Node: w.ally2}}
	farms, alliances, err := ExtractAll(w.g, w.est, cands, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(farms) != 3 {
		t.Fatalf("%d farms, want 3", len(farms))
	}
	if len(alliances) != 2 {
		t.Fatalf("%d alliances, want 2", len(alliances))
	}
}

func TestGroupAlliancesEmpty(t *testing.T) {
	if got := GroupAlliances(graph.NewBuilder(0).Build(), nil); got != nil {
		t.Errorf("empty input produced %v", got)
	}
}
