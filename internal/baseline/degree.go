package baseline

import (
	"fmt"
	"math"

	"spammass/internal/graph"
	"spammass/internal/stats"
)

// DegreeOutlierConfig tunes the Fetterly-style detector.
type DegreeOutlierConfig struct {
	// In selects in-degree (true) or out-degree (false) analysis.
	In bool
	// MinDegree excludes the head of the distribution, where power-law
	// behaviour has not set in and counts are naturally enormous.
	MinDegree int
	// OutlierFactor is how many times the power-law-predicted count a
	// degree's observed count must exceed to be flagged.
	OutlierFactor float64
	// MinCount ignores degrees with fewer observations than this.
	MinCount int64
}

// DefaultDegreeOutlierConfig returns a conservative configuration.
func DefaultDegreeOutlierConfig() DegreeOutlierConfig {
	return DegreeOutlierConfig{In: true, MinDegree: 2, OutlierFactor: 10, MinCount: 30}
}

// DegreeOutliers implements the observation of Fetterly, Manasse and
// Najork ("Spam, damn spam, and statistics", WebDB 2004): in- and
// out-degrees follow power laws, and degrees hit by substantially more
// nodes than the fitted law predicts are almost always machine-
// generated spam. It fits a power law to the degree histogram and
// returns all nodes whose exact degree is an outlier.
//
// As Section 5 of the spam-mass paper notes, this catches large
// auto-generated farms with repeated link counts but misses spammers
// who mimic organic structure — the comparison benches quantify that.
func DegreeOutliers(g *graph.Graph, cfg DegreeOutlierConfig) ([]graph.NodeID, error) {
	if cfg.OutlierFactor <= 1 {
		return nil, fmt.Errorf("baseline: outlier factor %v must exceed 1", cfg.OutlierFactor)
	}
	hist := graph.DegreeHistogram(g, cfg.In)
	if len(hist) <= cfg.MinDegree {
		return nil, nil
	}

	// Fit log(count) vs log(degree) over the fit range.
	var lx, ly []float64
	for d := cfg.MinDegree; d < len(hist); d++ {
		if hist[d] > 0 {
			lx = append(lx, math.Log10(float64(d)))
			ly = append(ly, math.Log10(float64(hist[d])))
		}
	}
	if len(lx) < 3 {
		return nil, nil // not enough signal to call anything an outlier
	}
	slope, intercept, err := stats.LinearFit(lx, ly)
	if err != nil {
		return nil, fmt.Errorf("baseline: degree power-law fit: %w", err)
	}

	outlier := make(map[int]bool)
	for d := cfg.MinDegree; d < len(hist); d++ {
		if hist[d] < cfg.MinCount {
			continue
		}
		predicted := math.Pow(10, intercept+slope*math.Log10(float64(d)))
		if float64(hist[d]) > cfg.OutlierFactor*predicted {
			outlier[d] = true
		}
	}
	if len(outlier) == 0 {
		return nil, nil
	}
	var out []graph.NodeID
	for x := 0; x < g.NumNodes(); x++ {
		d := g.OutDegree(graph.NodeID(x))
		if cfg.In {
			d = g.InDegree(graph.NodeID(x))
		}
		if outlier[d] {
			out = append(out, graph.NodeID(x))
		}
	}
	return out, nil
}
