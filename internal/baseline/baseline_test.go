package baseline

import (
	"math/rand"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/pagerank"
	"spammass/internal/paperfig"
)

func cfg() pagerank.Config { return pagerank.DefaultConfig() }

func figure1Labels(f *paperfig.Figure1) LabelFunc {
	spam := map[graph.NodeID]bool{}
	for _, s := range f.SpamNodes() {
		spam[s] = true
	}
	return func(x graph.NodeID) Label {
		if spam[x] {
			return Spam
		}
		return Good
	}
}

// TestScheme1FailsOnFigure1 reproduces the Section 3.1 narrative:
// counting in-links labels x good even for large k.
func TestScheme1FailsOnFigure1(t *testing.T) {
	for _, k := range []int{2, 5, 20} {
		f := paperfig.NewFigure1(k)
		if got := NaiveScheme1(f.Graph, f.X, figure1Labels(f)); got != Good {
			t.Errorf("k=%d: scheme 1 labeled x %v; the paper's point is that it says good", k, got)
		}
	}
}

// TestScheme2SucceedsOnFigure1 for k ≥ ⌈1/c⌉ = 2: the spam link's
// contribution (c+kc²) exceeds the two good links' (2c).
func TestScheme2SucceedsOnFigure1(t *testing.T) {
	for _, c := range []struct {
		k    int
		want Label
	}{{0, Good}, {1, Good}, {2, Spam}, {5, Spam}} {
		f := paperfig.NewFigure1(c.k)
		got, err := NaiveScheme2(f.Graph, f.X, figure1Labels(f), cfg())
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("k=%d: scheme 2 labeled x %v, want %v", c.k, got, c.want)
		}
	}
}

// TestBothSchemesFailOnFigure2: the graph where only full contribution
// analysis (spam mass) gets it right.
func TestBothSchemesFailOnFigure2(t *testing.T) {
	f := paperfig.NewFigure2()
	spam := map[graph.NodeID]bool{}
	for _, s := range f.S {
		spam[s] = true
	}
	labels := func(x graph.NodeID) Label {
		if spam[x] {
			return Spam
		}
		return Good
	}
	if got := NaiveScheme1(f.Graph, f.X, labels); got != Good {
		t.Errorf("scheme 1 labeled x %v; paper says it fails with good", got)
	}
	got, err := NaiveScheme2(f.Graph, f.X, labels, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if got != Good {
		t.Errorf("scheme 2 labeled x %v; paper says it fails with good", got)
	}
}

// TestDegreeOutliers: plant a large cohort of nodes with identical
// in-degree on top of an organic power-law background and verify the
// detector flags exactly that cohort's degree.
func TestDegreeOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := graph.NewBuilder(6000)
	// Organic background: power-law-ish in-degrees over nodes 0..3999.
	for x := 0; x < 4000; x++ {
		d := 1 + rng.Intn(12)
		for i := 0; i < d; i++ {
			// Preferential-ish: favor low IDs.
			dst := rng.Intn(1 + rng.Intn(4000))
			b.AddEdge(graph.NodeID(x), graph.NodeID(dst))
		}
	}
	// Machine-generated cohort: nodes 4000..4999 each get exactly 7
	// in-links from distinct boosters 5000..5999.
	for x := 4000; x < 5000; x++ {
		for i := 0; i < 7; i++ {
			b.AddEdge(graph.NodeID(5000+(x*7+i)%1000), graph.NodeID(x))
		}
	}
	g := b.Build()
	flagged, err := DegreeOutliers(g, DegreeOutlierConfig{In: true, MinDegree: 2, OutlierFactor: 3, MinCount: 50})
	if err != nil {
		t.Fatal(err)
	}
	inCohort := 0
	for _, x := range flagged {
		if x >= 4000 && x < 5000 {
			inCohort++
		}
	}
	if inCohort < 900 {
		t.Errorf("flagged %d of 1000 cohort nodes, want most of them (total flagged %d)", inCohort, len(flagged))
	}
	if len(flagged)-inCohort > len(flagged)/2 {
		t.Errorf("more than half of %d flagged nodes are organic", len(flagged))
	}
}

func TestDegreeOutliersValidation(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}})
	if _, err := DegreeOutliers(g, DegreeOutlierConfig{OutlierFactor: 1}); err == nil {
		t.Error("outlier factor 1 accepted")
	}
	// Tiny graphs have no signal; the detector must return empty, not error.
	flagged, err := DegreeOutliers(g, DefaultDegreeOutlierConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) != 0 {
		t.Errorf("tiny graph flagged %d nodes", len(flagged))
	}
}

// TestSpamRankScores: a farm target whose thousands of supporters all
// share one tiny PageRank value deviates maximally from a power law,
// while an organically supported hub does not.
func TestSpamRankScores(t *testing.T) {
	b := graph.NewBuilder(0)
	hub := b.AddNode()
	target := b.AddNode()
	// Organic supporters of the hub: their own popularity decays like
	// a power law (supporter i gets ~12/(i+1) leaf endorsements), so
	// their PageRank values spread over a decade the way a real hub's
	// supporters do.
	var organic []graph.NodeID
	for i := 0; i < 120; i++ {
		organic = append(organic, b.AddNode())
	}
	for i, x := range organic {
		b.AddEdge(x, hub)
		leaves := 12 / (i + 1)
		for l := 0; l < leaves; l++ {
			leaf := b.AddNode()
			b.AddEdge(leaf, x)
		}
	}
	// Boosters of the target: leaves, all with the exact same score.
	for i := 0; i < 120; i++ {
		booster := b.AddNode()
		b.AddEdge(booster, target)
	}
	g := b.Build()
	p := pagerank.PR(g, pagerank.UniformJump(g.NumNodes()), cfg())
	scores, err := SpamRankScores(g, p, SpamRankConfig{MinInDegree: 20, BinsPerDecade: 4})
	if err != nil {
		t.Fatal(err)
	}
	if scores[target] <= scores[hub] {
		t.Errorf("target deviation %v not above organic hub deviation %v", scores[target], scores[hub])
	}
	if scores[target] < 0.5 {
		t.Errorf("uniform-supporter target scored only %v", scores[target])
	}
	// Low-indegree nodes must score zero (no evidence).
	if scores[organic[0]] != 0 {
		t.Errorf("low-evidence node scored %v, want 0", scores[organic[0]])
	}
	top := TopSpamRank(scores, 1)
	if len(top) != 1 || top[0] != target {
		t.Errorf("TopSpamRank(1) = %v, want [target=%d]", top, target)
	}
}

func TestSpamRankValidation(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}})
	p := pagerank.Vector{0.1, 0.1, 0.1}
	if _, err := SpamRankScores(g, p, SpamRankConfig{MinInDegree: 1, BinsPerDecade: 4}); err == nil {
		t.Error("MinInDegree 1 accepted")
	}
	if _, err := SpamRankScores(g, p, SpamRankConfig{MinInDegree: 5, BinsPerDecade: 0}); err == nil {
		t.Error("BinsPerDecade 0 accepted")
	}
	if _, err := SpamRankScores(g, pagerank.Vector{0.1}, DefaultSpamRankConfig()); err == nil {
		t.Error("mismatched vector length accepted")
	}
}

func TestTopSpamRankClamp(t *testing.T) {
	got := TopSpamRank([]float64{0.3, 0.9, 0.1}, 10)
	if len(got) != 3 || got[0] != 1 {
		t.Errorf("TopSpamRank = %v", got)
	}
}

func TestNaiveScheme2ErrorPropagation(t *testing.T) {
	f := paperfig.NewFigure1(1)
	bad := pagerank.Config{Damping: 2} // invalid
	if _, err := NaiveScheme2(f.Graph, f.X, figure1Labels(f), bad); err == nil {
		t.Error("invalid solver config accepted")
	}
}
