package baseline

import (
	"fmt"
	"math"
	"sort"

	"spammass/internal/graph"
	"spammass/internal/pagerank"
	"spammass/internal/stats"
)

// SpamRankConfig tunes the Benczúr-style detector.
type SpamRankConfig struct {
	// MinInDegree: nodes with fewer in-neighbors than this have too
	// little evidence for a distribution test and score 0.
	MinInDegree int
	// BinsPerDecade controls the log-binning of in-neighbor PageRank.
	BinsPerDecade int
}

// DefaultSpamRankConfig returns the configuration used in the benches.
func DefaultSpamRankConfig() SpamRankConfig {
	return SpamRankConfig{MinInDegree: 20, BinsPerDecade: 4}
}

// SpamRankScores implements the core idea of Benczúr, Csalogány,
// Sarlós and Uher ("SpamRank — fully automatic link spam detection",
// AIRWeb 2005): for each node x, the PageRank scores of the nodes
// pointing to x should themselves follow a power law; a major
// deviation indicates that x's supporters were manufactured (e.g.
// thousands of boosting nodes with identical tiny PageRank).
//
// The returned score for each node is a deviation measure in [0, 1]:
// the mean squared residual of log(density) around a power-law fit of
// the node's in-neighbor PageRank histogram, squashed by 1−exp(−r).
// Nodes with fewer than MinInDegree supporters score 0.
func SpamRankScores(g *graph.Graph, p pagerank.Vector, cfg SpamRankConfig) ([]float64, error) {
	if cfg.MinInDegree < 2 {
		return nil, fmt.Errorf("baseline: MinInDegree %d too small for a distribution test", cfg.MinInDegree)
	}
	if cfg.BinsPerDecade <= 0 {
		return nil, fmt.Errorf("baseline: BinsPerDecade %d must be positive", cfg.BinsPerDecade)
	}
	n := g.NumNodes()
	if len(p) != n {
		return nil, fmt.Errorf("baseline: PageRank vector of length %d for %d nodes", len(p), n)
	}
	// Global PageRank range fixes the binning for all nodes.
	minP, maxP := math.Inf(1), 0.0
	for _, v := range p {
		if v > 0 {
			if v < minP {
				minP = v
			}
			if v > maxP {
				maxP = v
			}
		}
	}
	scores := make([]float64, n)
	if maxP <= minP {
		return scores, nil
	}
	edges, err := stats.LogBins(minP, maxP, cfg.BinsPerDecade)
	if err != nil {
		return nil, fmt.Errorf("baseline: binning PageRank: %w", err)
	}
	var vals []float64
	for x := 0; x < n; x++ {
		in := g.InNeighbors(graph.NodeID(x))
		if len(in) < cfg.MinInDegree {
			continue
		}
		vals = vals[:0]
		for _, y := range in {
			if p[y] > 0 {
				vals = append(vals, p[y])
			}
		}
		bins, err := stats.Histogram(vals, edges)
		if err != nil {
			return nil, err
		}
		scores[x] = powerLawDeviation(bins)
	}
	return scores, nil
}

// SpamRank computes the supporting PageRank vector on a solver engine
// bound to g and scores every node with SpamRankScores. Callers that
// already hold a PageRank vector (the benches reuse the mass
// estimator's p) should call SpamRankScores directly; this entry point
// exists for standalone use of the detector.
func SpamRank(g *graph.Graph, cfg SpamRankConfig, solver pagerank.Config) ([]float64, error) {
	sp := solver.Obs.Span("baseline.spamrank")
	defer sp.End()
	solver.Obs = solver.Obs.In(sp)
	eng, err := pagerank.NewEngine(g, solver)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	defer eng.Close()
	res, err := eng.Solve(pagerank.UniformJump(g.NumNodes()))
	if err != nil {
		return nil, fmt.Errorf("baseline: supporting PageRank: %w", err)
	}
	return SpamRankScores(g, res.Scores, cfg)
}

// powerLawDeviation fits log density vs log bin center and returns
// 1 − exp(−mean squared residual); 0 when a fit is impossible or the
// histogram is too concentrated to test (a single bin deviates
// maximally: all supporters share one PageRank value, the classic
// boosting-farm signature).
func powerLawDeviation(bins []stats.Bin) float64 {
	var lx, ly []float64
	for _, b := range bins {
		if b.Count > 0 && b.Density > 0 {
			lx = append(lx, math.Log10(b.Center()))
			ly = append(ly, math.Log10(b.Density))
		}
	}
	if len(lx) == 0 {
		return 0
	}
	if len(lx) == 1 {
		return 1 // all supporters in a single PageRank bin
	}
	slope, intercept, err := stats.LinearFit(lx, ly)
	if err != nil {
		return 0
	}
	mse := 0.0
	for i := range lx {
		r := ly[i] - (intercept + slope*lx[i])
		mse += r * r
	}
	mse /= float64(len(lx))
	return 1 - math.Exp(-mse)
}

// TopSpamRank returns the k nodes with the highest deviation scores,
// descending — the detector's candidate list.
func TopSpamRank(scores []float64, k int) []graph.NodeID {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		if scores[idx[i]] != scores[idx[j]] {
			return scores[idx[i]] > scores[idx[j]]
		}
		return idx[i] < idx[j]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = graph.NodeID(idx[i])
	}
	return out
}
