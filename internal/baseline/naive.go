// Package baseline implements the spam-detection baselines the paper
// compares against, both the two naïve labeling schemes of Section 3.1
// and the related-work detectors of Section 5: degree-distribution
// outliers (Fetterly et al.) and in-neighbor PageRank power-law
// deviation (Benczúr et al., SpamRank).
package baseline

import (
	"fmt"

	"spammass/internal/graph"
	"spammass/internal/pagerank"
)

// Label is a ground-truth or oracle-provided node class.
type Label int

// Node labels. The naïve schemes assume in-neighbor labels are known
// (the paper removes that assumption in Section 3.4).
const (
	Good Label = iota
	Spam
)

// LabelFunc reports the known label of a node.
type LabelFunc func(graph.NodeID) Label

// NaiveScheme1 is the first labeling scheme of Section 3.1: a node is
// labeled spam iff the majority of its in-links come from spam nodes.
// It fails on Figure 1, where one spam link outweighs two good links
// in PageRank terms but not by count.
func NaiveScheme1(g *graph.Graph, x graph.NodeID, labels LabelFunc) Label {
	spam := 0
	in := g.InNeighbors(x)
	for _, y := range in {
		if labels(y) == Spam {
			spam++
		}
	}
	if 2*spam > len(in) {
		return Spam
	}
	return Good
}

// NaiveScheme2 is the second labeling scheme of Section 3.1: each
// in-link is weighted by the amount of PageRank it contributes (the
// change in p_x if the link were removed); the node is labeled spam
// iff spam links contribute more than good links. It fixes Figure 1
// but still fails on Figure 2, because it never looks beyond the
// immediate in-neighbors.
func NaiveScheme2(g *graph.Graph, x graph.NodeID, labels LabelFunc, cfg pagerank.Config) (Label, error) {
	v := pagerank.UniformJump(g.NumNodes())
	var spamContrib, goodContrib float64
	for _, y := range g.InNeighbors(x) {
		contrib, err := pagerank.LinkContribution(g, y, x, v, cfg)
		if err != nil {
			return Good, fmt.Errorf("baseline: link (%d,%d): %w", y, x, err)
		}
		if labels(y) == Spam {
			spamContrib += contrib
		} else {
			goodContrib += contrib
		}
	}
	if spamContrib > goodContrib {
		return Spam, nil
	}
	return Good, nil
}
