package serve

import (
	"math"
	"strings"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
)

// testHostGraph builds a small host graph: a 5-host chain with one
// extra edge fanning into host 4 so scores differ across hosts.
func testHostGraph(t testing.TB) *graph.HostGraph {
	t.Helper()
	g := graph.FromEdges(5, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
	names := []string{"a.example", "b.example", "c.example", "d.example", "e.example"}
	h, err := graph.NewHostGraph(g, names)
	if err != nil {
		t.Fatalf("NewHostGraph: %v", err)
	}
	return h
}

// realEstimates runs the actual estimator over the test host graph.
func realEstimates(t testing.TB, h *graph.HostGraph, core []graph.NodeID) *mass.Estimates {
	t.Helper()
	est, err := mass.EstimateFromCore(h.Graph, core, mass.DefaultOptions())
	if err != nil {
		t.Fatalf("EstimateFromCore: %v", err)
	}
	return est
}

func TestNewSnapshotRecords(t *testing.T) {
	h := testHostGraph(t)
	est := realEstimates(t, h, []graph.NodeID{0, 1})
	dcfg := mass.DetectConfig{RelMassThreshold: 0.5, ScaledPageRankThreshold: 0.5}
	snap, err := NewSnapshot(h, est, SnapshotConfig{Detect: dcfg, Gamma: 0.85, CoreSize: 2}, 7)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	if snap.Epoch() != 7 || snap.NumHosts() != 5 {
		t.Fatalf("snapshot epoch=%d hosts=%d, want 7/5", snap.Epoch(), snap.NumHosts())
	}
	for x := 0; x < 5; x++ {
		id := graph.NodeID(x)
		rec, ok := snap.Lookup(h.Names[x])
		if !ok {
			t.Fatalf("Lookup(%q) missed", h.Names[x])
		}
		want := mass.RecordFor(est, id, dcfg, h.Names[x])
		if rec.Host != want.Host || rec.Node != want.Node || rec.PageRank != want.P ||
			rec.CorePageRank != want.PCore || rec.AbsMass != want.AbsMass ||
			rec.RelMass != want.RelMass || rec.Label != want.Label {
			t.Errorf("record for %s = %+v, want mass.RecordFor %+v", h.Names[x], rec, want)
		}
		if rec.Epoch != 7 {
			t.Errorf("record epoch %d, want 7", rec.Epoch)
		}
		if got := rec.Evaluated; got != (want.P >= dcfg.ScaledPageRankThreshold) {
			t.Errorf("record %s evaluated=%v with p=%v rho=%v", h.Names[x], got, want.P, dcfg.ScaledPageRankThreshold)
		}
		byNode, ok := snap.LookupNode(id)
		if !ok || byNode != rec {
			t.Errorf("LookupNode(%d) = %+v,%v, want the name-lookup record", x, byNode, ok)
		}
	}
	if _, ok := snap.Lookup("nosuch.example"); ok {
		t.Error("Lookup found a nonexistent host")
	}
	if _, ok := snap.LookupNode(99); ok {
		t.Error("LookupNode accepted an out-of-range node")
	}
}

func TestSnapshotTop(t *testing.T) {
	h := testHostGraph(t)
	est := realEstimates(t, h, []graph.NodeID{0, 1})
	snap, err := NewSnapshot(h, est, SnapshotConfig{
		Detect: mass.DetectConfig{RelMassThreshold: 0.5, ScaledPageRankThreshold: 0},
		MaxTop: 3,
	}, 1)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	for _, metric := range []string{MetricRelMass, MetricAbsMass, MetricPageRank} {
		recs, err := snap.Top(metric, 100)
		if err != nil {
			t.Fatalf("Top(%s): %v", metric, err)
		}
		if len(recs) != 3 {
			t.Fatalf("Top(%s) returned %d records, want MaxTop=3", metric, len(recs))
		}
		key := func(r HostRecord) float64 {
			switch metric {
			case MetricRelMass:
				return r.RelMass
			case MetricAbsMass:
				return r.AbsMass
			default:
				return r.PageRank
			}
		}
		for i := 1; i < len(recs); i++ {
			if key(recs[i]) > key(recs[i-1]) {
				t.Errorf("Top(%s) not descending at %d: %v then %v", metric, i, key(recs[i-1]), key(recs[i]))
			}
		}
	}
	if recs, _ := snap.Top(MetricPageRank, 1); len(recs) != 1 {
		t.Errorf("Top(pagerank, 1) returned %d records", len(recs))
	}
	if _, err := snap.Top("bogus", 5); err == nil || !strings.Contains(err.Error(), "unknown ranking metric") {
		t.Errorf("Top(bogus) error = %v, want unknown-metric", err)
	}
}

func TestSnapshotTopRelMassEvaluatedOnly(t *testing.T) {
	h := testHostGraph(t)
	est := realEstimates(t, h, []graph.NodeID{0, 1})
	// Pick ρ between the min and max scaled PageRank so the evaluated
	// set T is a strict, non-empty subset.
	minP, maxP := math.Inf(1), math.Inf(-1)
	for x := 0; x < est.N(); x++ {
		p := est.ScaledPageRank(graph.NodeID(x))
		minP, maxP = math.Min(minP, p), math.Max(maxP, p)
	}
	rho := (minP + maxP) / 2
	snap, err := NewSnapshot(h, est, SnapshotConfig{
		Detect: mass.DetectConfig{RelMassThreshold: 0.98, ScaledPageRankThreshold: rho},
	}, 1)
	if err != nil {
		t.Fatalf("NewSnapshot: %v", err)
	}
	recs, err := snap.Top(MetricRelMass, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) == snap.NumHosts() {
		t.Fatalf("relmass ranking over %d of %d hosts; want strict non-empty subset (rho=%v)", len(recs), snap.NumHosts(), rho)
	}
	for _, r := range recs {
		if !r.Evaluated {
			t.Errorf("relmass ranking includes unevaluated host %s", r.Host)
		}
	}
}

func TestNewSnapshotValidation(t *testing.T) {
	h := testHostGraph(t)
	good := realEstimates(t, h, []graph.NodeID{0, 1})
	cfg := SnapshotConfig{Detect: mass.DefaultDetectConfig()}

	if _, err := NewSnapshot(h, good, cfg, 0); err == nil {
		t.Error("epoch 0 accepted")
	}
	short := mass.Derive(make(pagerank.Vector, 3), make(pagerank.Vector, 3), 0.85)
	if _, err := NewSnapshot(h, short, cfg, 1); err == nil {
		t.Error("mismatched estimate length accepted")
	}
	poison := func(mutate func(e *mass.Estimates)) error {
		e := mass.Derive(good.P, good.PCore, good.Damping)
		mutate(e)
		_, err := NewSnapshot(h, e, cfg, 1)
		return err
	}
	if err := poison(func(e *mass.Estimates) { e.P[2] = math.NaN() }); err == nil {
		t.Error("NaN PageRank accepted")
	}
	if err := poison(func(e *mass.Estimates) { e.Rel[1] = math.Inf(1) }); err == nil {
		t.Error("+Inf relative mass accepted")
	}
	if err := poison(func(e *mass.Estimates) { e.P[0] = -0.25 }); err == nil {
		t.Error("negative PageRank accepted")
	}
}

func TestStorePublish(t *testing.T) {
	h := testHostGraph(t)
	est := realEstimates(t, h, []graph.NodeID{0, 1})
	cfg := SnapshotConfig{Detect: mass.DefaultDetectConfig()}
	mk := func(epoch int64) *Snapshot {
		snap, err := NewSnapshot(h, est, cfg, epoch)
		if err != nil {
			t.Fatalf("NewSnapshot(%d): %v", epoch, err)
		}
		return snap
	}
	st := NewStore()
	if st.Load() != nil || st.Epoch() != 0 {
		t.Fatal("fresh store is not empty")
	}
	if err := st.Publish(nil); err == nil {
		t.Error("nil publish accepted")
	}
	if err := st.Publish(mk(1)); err != nil {
		t.Fatalf("publish epoch 1: %v", err)
	}
	if err := st.Publish(mk(3)); err != nil {
		t.Fatalf("publish epoch 3: %v", err)
	}
	if err := st.Publish(mk(2)); err == nil {
		t.Error("stale publish (epoch 2 after 3) accepted")
	}
	if err := st.Publish(mk(3)); err == nil {
		t.Error("same-epoch republish accepted")
	}
	if st.Epoch() != 3 {
		t.Fatalf("store epoch %d after stale publishes, want 3", st.Epoch())
	}
}
