package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
)

// fp builds a fingerprint whose dims are all proportional to v, for
// controlled drift injection.
func fp(v float64) *mass.Fingerprint {
	return &mass.Fingerprint{
		Nodes:           100,
		NodesAboveRho:   int(10 * v),
		Candidates:      int(5 * v),
		SpamFraction:    v / 2,
		TotalSpamMass:   v * 3,
		RelMassDeciles:  []float64{0, 0, 0, 0, 0, v / 4, 0, 0, 0, v / 3, v},
		SolveIterations: int(20 * v),
		EdgesSwept:      int64(1000 * v),
	}
}

// TestWatchdogExactlyOneAlert drives the watchdog with a stable
// baseline, injects one drifted epoch, then keeps feeding the drifted
// level: exactly one alert fires — the step change is absorbed into
// the window and becomes the new normal.
func TestWatchdogExactlyOneAlert(t *testing.T) {
	reg := obs.NewRegistry()
	w := NewWatchdog(WatchdogConfig{Window: 8, ZThreshold: 4, MinEpochs: 3, Obs: obs.NewContext(reg, nil)})

	var alerts []*DriftAlert
	epoch := int64(0)
	feed := func(v float64, n int) {
		for i := 0; i < n; i++ {
			epoch++
			if a := w.ObserveEpoch(epoch, fp(v)); a != nil {
				alerts = append(alerts, a)
			}
		}
	}
	feed(1.0, 5) // baseline
	feed(9.0, 4) // step change, then steady at the new level

	if len(alerts) != 1 {
		t.Fatalf("got %d alerts, want exactly 1: %+v", len(alerts), alerts)
	}
	a := alerts[0]
	if a.Epoch != 6 {
		t.Fatalf("alert at epoch %d, want 6 (the first drifted epoch)", a.Epoch)
	}
	if a.Z <= 4 {
		t.Fatalf("alert z = %v, want > threshold 4", a.Z)
	}
	if got := reg.Counter("serve.drift_alerts_total").Value(); got != 1 {
		t.Fatalf("serve.drift_alerts_total = %d, want 1", got)
	}
	// The flag gauge cleared once the new level became normal.
	if got := reg.Gauge("serve.drift_alert").Value(); got != 0 {
		t.Fatalf("serve.drift_alert = %v after settling, want 0", got)
	}
	st := w.Status()
	if st.Alerts != 1 || st.Degraded || st.LastAlert == nil || st.LastAlert.Epoch != 6 {
		t.Fatalf("status = %+v, want 1 settled alert at epoch 6", st)
	}
	if st.Epochs != 9 {
		t.Fatalf("status.Epochs = %d, want 9", st.Epochs)
	}
}

// TestWatchdogQuietPaths checks the no-alert paths: too little
// history, steady traffic, and nil receivers.
func TestWatchdogQuietPaths(t *testing.T) {
	w := NewWatchdog(WatchdogConfig{MinEpochs: 3})
	for e := int64(1); e <= 2; e++ {
		if a := w.ObserveEpoch(e, fp(float64(e)*100)); a != nil {
			t.Fatalf("alert before MinEpochs of history: %+v", a)
		}
	}
	var nilW *Watchdog
	if nilW.ObserveEpoch(1, fp(1)) != nil || nilW.Status() != nil {
		t.Fatal("nil watchdog did something")
	}
	if w.ObserveEpoch(3, nil) != nil {
		t.Fatal("nil fingerprint alerted")
	}
}

// driftBuilder returns a BuildFunc that serves stable estimates for
// the first `stable` epochs and collapsed-core (relative mass ≈ 1)
// estimates afterwards, wiring the request-context obs into the
// solver so span trees stay coherent.
func driftBuilder(t *testing.T, h *graph.HostGraph, core []graph.NodeID, stable int64) BuildFunc {
	t.Helper()
	return func(ctx context.Context, prev *Snapshot, epoch int64) (*Snapshot, error) {
		solver := pagerank.DefaultConfig()
		solver.Obs = obs.RequestContext(ctx)
		est, err := mass.EstimateFromCore(h.Graph, core, mass.Options{Solver: solver, Gamma: 0.85})
		if err != nil {
			return nil, err
		}
		if epoch > stable {
			// Simulate a detection-behavior shift: the good-core
			// contribution collapses, so every node's relative mass
			// jumps toward 1.
			pc := est.PCore.Clone()
			pc.Scale(1e-6)
			est = mass.Derive(est.P, pc, est.Damping)
		}
		dcfg := mass.DetectConfig{RelMassThreshold: 0.9, ScaledPageRankThreshold: 0.5}
		return NewSnapshot(h, est, SnapshotConfig{Detect: dcfg, Gamma: 0.85, Core: core}, epoch)
	}
}

// TestDriftEndToEnd refreshes through the real estimator, injects a
// drifted epoch, and proves the alert raises the metric and the
// /readyz?verbose detail while /v1/* keeps answering 200.
func TestDriftEndToEnd(t *testing.T) {
	h := testHostGraph(t)
	reg := obs.NewRegistry()
	octx := obs.NewContext(reg, nil)
	w := NewWatchdog(WatchdogConfig{Window: 8, ZThreshold: 4, MinEpochs: 3, Obs: octx})
	st := NewStore()
	ref := NewRefresher(st, driftBuilder(t, h, []graph.NodeID{0, 1}, 4),
		RefresherConfig{Obs: octx, Watchdog: w})
	srv := NewServer(st, ref, Config{Obs: octx, Watchdog: w})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	lookup200 := func() {
		t.Helper()
		if code := getJSON(t, ts.URL+"/v1/host/a.example", nil); code != http.StatusOK {
			t.Fatalf("/v1/host during drift: status %d, want 200", code)
		}
	}
	for i := 0; i < 4; i++ { // stable epochs 1–4
		if err := ref.Refresh(context.Background()); err != nil {
			t.Fatalf("stable refresh %d: %v", i+1, err)
		}
		lookup200()
	}
	if got := reg.Counter("serve.drift_alerts_total").Value(); got != 0 {
		t.Fatalf("alerts after stable epochs = %d, want 0", got)
	}
	for i := 0; i < 3; i++ { // drifted epochs 5–7
		if err := ref.Refresh(context.Background()); err != nil {
			t.Fatalf("drifted refresh: %v", err)
		}
		lookup200()
	}
	if got := reg.Counter("serve.drift_alerts_total").Value(); got != 1 {
		t.Fatalf("serve.drift_alerts_total = %d, want exactly 1", got)
	}

	// readyz stays 200; the degradation lives in the verbose detail.
	var body struct {
		Status string          `json:"status"`
		Drift  *WatchdogStatus `json:"drift"`
	}
	if code := getJSON(t, ts.URL+"/readyz?verbose", &body); code != http.StatusOK {
		t.Fatalf("readyz?verbose status %d, want 200", code)
	}
	if body.Drift == nil || body.Drift.Alerts != 1 || body.Drift.LastAlert == nil {
		t.Fatalf("readyz drift detail = %+v, want 1 alert with detail", body.Drift)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("plain readyz status %d, want 200", code)
	}
}

// TestServeMetricsEndpoint scrapes GET /metrics off the serve mux and
// validates it under the strict parser.
func TestServeMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	_, _, ts := newTestServerObs(t, Config{Obs: obs.NewContext(reg, nil)})
	getJSON(t, ts.URL+"/v1/host/a.example", nil) // generate a request metric
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("content type %q", ct)
	}
	fams, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("strict parse of /metrics: %v", err)
	}
	found := false
	for _, f := range fams {
		if f.Name == "serve_requests_total" {
			found = true
			if f.Type != "counter" || f.Samples[0].Value < 1 {
				t.Fatalf("serve_requests_total family wrong: %+v", f)
			}
		}
	}
	if !found {
		t.Fatalf("serve_requests_total not exposed; families: %d", len(fams))
	}

	// DisableMetrics removes the route.
	_, _, ts2 := newTestServerObs(t, Config{DisableMetrics: true})
	resp2, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled /metrics status %d, want 404", resp2.StatusCode)
	}
}

// newTestServerObs is newTestServer, sharing the Config's obs context
// with the refresher.
func newTestServerObs(t *testing.T, cfg Config) (*Server, *Store, *httptest.Server) {
	t.Helper()
	h := testHostGraph(t)
	st := NewStore()
	ref := NewRefresher(st, estimatorBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()),
		RefresherConfig{Obs: cfg.Obs, Recorder: cfg.Recorder, Watchdog: cfg.Watchdog, Flight: cfg.Flight})
	if err := ref.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, ref, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, st, ts
}

// TestTimeseriesEndpoint checks the history endpoint: 501 without a
// recorder, name listing, per-publish points, and the since filter.
func TestTimeseriesEndpoint(t *testing.T) {
	_, _, bare := newTestServerObs(t, Config{})
	if code := getJSON(t, bare.URL+"/admin/timeseries", nil); code != http.StatusNotImplemented {
		t.Fatalf("no-recorder timeseries status %d, want 501", code)
	}

	reg := obs.NewRegistry()
	octx := obs.NewContext(reg, nil)
	rec := obs.NewRecorder(reg, obs.RecorderConfig{Capacity: 32})
	_, _, ts := newTestServerObs(t, Config{Obs: octx, Recorder: rec})

	var names struct {
		Metrics []string `json:"metrics"`
	}
	if code := getJSON(t, ts.URL+"/admin/timeseries", &names); code != http.StatusOK {
		t.Fatalf("name listing status %d", code)
	}
	if len(names.Metrics) == 0 {
		t.Fatalf("no series names after a publish; recorder should sample per publish")
	}
	var series TimeseriesResponse
	if code := getJSON(t, ts.URL+"/admin/timeseries?metric=serve.snapshot_epoch", &series); code != http.StatusOK {
		t.Fatalf("series status %d", code)
	}
	if len(series.Points) != 1 || series.Points[0].Value != 1 {
		t.Fatalf("snapshot_epoch series = %+v, want one point at epoch 1", series.Points)
	}
	// A refresh adds a publish-time point.
	if code := getJSON(t, ts.URL+"/admin/timeseries?metric=serve.snapshot_epoch&since="+
		fmt.Sprint(time.Now().Add(-time.Hour).Unix()), &series); code != http.StatusOK {
		t.Fatalf("since series status %d", code)
	}
	if code := postJSON(t, ts.URL+"/admin/refresh?wait=1", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("refresh status %d", code)
	}
	if code := getJSON(t, ts.URL+"/admin/timeseries?metric=serve.snapshot_epoch", &series); code != http.StatusOK {
		t.Fatalf("series status %d", code)
	}
	if len(series.Points) != 2 || series.Points[1].Value != 2 {
		t.Fatalf("after refresh, snapshot_epoch series = %+v, want two points ending at 2", series.Points)
	}
	// Bad since parameter.
	if code := getJSON(t, ts.URL+"/admin/timeseries?metric=x&since=notatime", nil); code != http.StatusBadRequest {
		t.Fatalf("bad since status %d, want 400", code)
	}
}

// TestTracingHeadersAndFlight checks the production tracing path: the
// trace headers on hot requests, the admin span tree threading through
// refresher and solver, and the flight recorder pickup.
func TestTracingHeadersAndFlight(t *testing.T) {
	h := testHostGraph(t)
	reg := obs.NewRegistry()
	octx := obs.NewContext(reg, nil)
	fl := obs.NewFlightRecorder(obs.FlightConfig{})
	st := NewStore()
	ref := NewRefresher(st, driftBuilder(t, h, []graph.NodeID{0, 1}, 1<<40),
		RefresherConfig{Obs: octx, Flight: fl})
	if err := ref.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, ref, Config{Obs: octx, Tracing: true, Flight: fl})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hot path: trace headers present, flight picks up the request
	// (empty slowest set — everything qualifies).
	resp, err := http.Get(ts.URL + "/v1/host/a.example")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	hotTID := resp.Header.Get("X-Trace-Id")
	if len(hotTID) != 32 {
		t.Fatalf("X-Trace-Id = %q, want 32 hex chars", hotTID)
	}
	tp := resp.Header.Get("Traceparent")
	if len(tp) != len("00-")+32+len("-")+16+len("-01") || tp[:3] != "00-" || tp[3:35] != hotTID {
		t.Fatalf("traceparent %q does not carry trace ID %q", tp, hotTID)
	}

	// Admin path: one coherent span tree request → refresh → solver.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/admin/refresh?wait=1", nil)
	aresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	aresp.Body.Close()
	adminTID := aresp.Header.Get("X-Trace-Id")
	if len(adminTID) != 32 {
		t.Fatalf("admin X-Trace-Id = %q", adminTID)
	}

	var snap obs.FlightSnapshot
	if code := getJSON(t, ts.URL+"/admin/flightrecorder", &snap); code != http.StatusOK {
		t.Fatalf("flightrecorder status %d", code)
	}
	var admin *obs.FlightEntry
	sawHot := false
	for i := range snap.Slowest {
		e := &snap.Slowest[i]
		if e.TraceID == adminTID {
			admin = e
		}
		if e.TraceID == hotTID {
			sawHot = true
		}
	}
	if !sawHot {
		t.Fatalf("hot request %s not in flight recorder: %+v", hotTID, snap.Slowest)
	}
	if admin == nil {
		t.Fatalf("admin request %s not in flight recorder", adminTID)
	}
	if admin.Trace == nil {
		t.Fatal("admin flight entry carries no span tree")
	}
	refreshSpan := admin.Trace.Find("serve.refresh")
	if refreshSpan == nil {
		t.Fatalf("admin span tree has no serve.refresh child: %+v", admin.Trace)
	}
	solve := admin.Trace.Find("pagerank.solve")
	if solve == nil {
		t.Fatal("solver span missing from admin trace: refresh did not thread the request context")
	}
	if got := solve.Attrs["trace_id"]; got != adminTID {
		t.Fatalf("solver span trace_id = %v, want %s", got, adminTID)
	}

	// 501 when no flight recorder is configured.
	_, _, bare := newTestServerObs(t, Config{})
	if code := getJSON(t, bare.URL+"/admin/flightrecorder", nil); code != http.StatusNotImplemented {
		t.Fatalf("no-flight status %d, want 501", code)
	}
}

// TestRefreshFailureFlightDump forces a failed refresh and checks the
// flight entry plus the on-disk autopsy file.
func TestRefreshFailureFlightDump(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	fl := obs.NewFlightRecorder(obs.FlightConfig{})
	st := NewStore()
	boom := func(ctx context.Context, prev *Snapshot, epoch int64) (*Snapshot, error) {
		return nil, fmt.Errorf("input reload exploded")
	}
	ref := NewRefresher(st, boom, RefresherConfig{
		Obs: obs.NewContext(reg, nil), Flight: fl, FlightDir: dir,
	})
	if err := ref.Refresh(context.Background()); err == nil {
		t.Fatal("refresh unexpectedly succeeded")
	}
	snap := fl.Snapshot()
	if len(snap.Errors) != 1 {
		t.Fatalf("flight errors = %d, want 1", len(snap.Errors))
	}
	e := snap.Errors[0]
	if e.Kind != "refresh" || !e.Err || e.Trace == nil || !e.Trace.Ended {
		t.Fatalf("refresh flight entry = %+v, want ended refresh span tree", e)
	}
	path := filepath.Join(dir, "flight-epoch1.json")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("autopsy file not written: %v", err)
	}
}
