package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"spammass/internal/delta"
	"spammass/internal/graph"
	"spammass/internal/pagerank"
)

// fakeJournal implements Journal with controllable durability, so the
// tests can observe exactly when the refresher marks sequences applied
// and whether applies wait for the fsync outcome.
type fakeJournal struct {
	mu        sync.Mutex
	nextSeq   uint64
	applied   []uint64
	refreshed int

	durableErr  error      // returned by WaitDurable when gate is nil
	durableGate chan error // non-nil: WaitDurable blocks on it
}

func (j *fakeJournal) Append(b *delta.Batch) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.nextSeq++
	return j.nextSeq, nil
}

func (j *fakeJournal) WaitDurable(seq uint64) error {
	if j.durableGate != nil {
		return <-j.durableGate
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.durableErr
}

func (j *fakeJournal) MarkApplied(seq uint64, snap *Snapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.applied = append(j.applied, seq)
}

func (j *fakeJournal) MarkRefreshed(snap *Snapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.refreshed++
}

func (j *fakeJournal) appliedSeqs() []uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]uint64(nil), j.applied...)
}

// newJournaledRefresher wires a refresher over the 5-host test graph
// with the given journal and (optionally) a custom apply function, and
// publishes the first generation.
func newJournaledRefresher(t *testing.T, j Journal, apply DeltaApplyFunc) (*Store, *Refresher) {
	t.Helper()
	h := testHostGraph(t)
	st := NewStore()
	if apply == nil {
		apply = NewDeltaBuilder(DeltaBuilderConfig{Solver: pagerank.DefaultConfig()})
	}
	ref := NewRefresher(st, coreBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()),
		RefresherConfig{ApplyDelta: apply, Journal: j})
	if err := ref.Refresh(context.Background()); err != nil {
		t.Fatalf("initial refresh: %v", err)
	}
	return st, ref
}

func journalTestBatch() *delta.Batch {
	return &delta.Batch{Ops: []delta.Op{delta.AddHostOp("f.example")}}
}

// TestTransientApplyFailureNotMarkedApplied guards the fsync-before-ack
// contract: an apply cut short by cancellation (shutdown, refresh
// timeout) must NOT advance the journal's applied sequence — otherwise
// the compactor would persist a snapshot claiming coverage of a durable,
// acknowledged batch that never took effect, and truncate it away.
func TestTransientApplyFailureNotMarkedApplied(t *testing.T) {
	j := &fakeJournal{}
	applyStarted := make(chan struct{})
	var once sync.Once
	apply := func(ctx context.Context, prev *Snapshot, epoch int64, b *delta.Batch) (*Snapshot, error) {
		once.Do(func() { close(applyStarted) })
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, ref := newJournaledRefresher(t, j, apply)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ref.Run(ctx)

	errCh := make(chan error, 1)
	go func() { errCh <- ref.SubmitDeltaWait(context.Background(), journalTestBatch()) }()
	<-applyStarted
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitDeltaWait after cancel: %v, want context.Canceled", err)
	}
	if got := j.appliedSeqs(); len(got) != 0 {
		t.Fatalf("transient apply failure marked sequences applied: %v; the batch must stay in the WAL for replay", got)
	}
}

// TestDeterministicApplyFailureMarkedApplied is the counterpart: a
// batch the apply function rejects outright is skipped the same way
// recovery skips it, so its sequence DOES advance the journal position.
func TestDeterministicApplyFailureMarkedApplied(t *testing.T) {
	j := &fakeJournal{}
	apply := func(ctx context.Context, prev *Snapshot, epoch int64, b *delta.Batch) (*Snapshot, error) {
		return nil, fmt.Errorf("poison batch")
	}
	_, ref := newJournaledRefresher(t, j, apply)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ref.Run(ctx)

	err := ref.SubmitDeltaWait(context.Background(), journalTestBatch())
	if err == nil || errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitDeltaWait: %v, want deterministic apply error", err)
	}
	if got := j.appliedSeqs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("applied sequences %v, want [1]", got)
	}
}

// TestApplyWaitsForDurability pins the ordering the split Append /
// WaitDurable interface relies on: the Run loop must not apply (or
// publish) a batch before its fsync outcome arrives, even though the
// batch is enqueued before the durability wait completes.
func TestApplyWaitsForDurability(t *testing.T) {
	j := &fakeJournal{durableGate: make(chan error)}
	st, ref := newJournaledRefresher(t, j, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ref.Run(ctx)

	errCh := make(chan error, 1)
	go func() { errCh <- ref.SubmitDelta(journalTestBatch()) }()

	time.Sleep(30 * time.Millisecond)
	if got := st.Epoch(); got != 1 {
		t.Fatalf("epoch %d while durability pending, want 1 (apply ran before fsync)", got)
	}
	j.durableGate <- nil
	if err := <-errCh; err != nil {
		t.Fatalf("SubmitDelta: %v", err)
	}
	waitEpoch(t, st, 2)
	if got := j.appliedSeqs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("applied sequences %v, want [1]", got)
	}
}

// TestFailedDurabilityDropsBatch: a batch whose fsync fails was never
// acknowledged — the submitter gets ErrJournal, the Run loop drops the
// item without applying it, and the queue drains.
func TestFailedDurabilityDropsBatch(t *testing.T) {
	j := &fakeJournal{durableErr: fmt.Errorf("disk gone")}
	st, ref := newJournaledRefresher(t, j, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ref.Run(ctx)

	if err := ref.SubmitDelta(journalTestBatch()); !errors.Is(err, ErrJournal) {
		t.Fatalf("SubmitDelta with failing fsync: %v, want ErrJournal", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if d, _ := ref.QueueDepth(); d == 0 {
			break
		}
		if time.Now().After(deadline) {
			d, _ := ref.QueueDepth()
			t.Fatalf("queue depth stuck at %d after dropped batch", d)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := st.Epoch(); got != 1 {
		t.Fatalf("epoch %d after dropped batch, want 1", got)
	}
	if got := j.appliedSeqs(); len(got) != 0 {
		t.Fatalf("dropped batch marked applied: %v", got)
	}
}
