package serve

import (
	"context"
	"errors"
	"fmt"
)

// ErrNoSnapshot is returned by a Backend whose serving state has not
// been published yet (no snapshot, or a router whose shard fence has
// not formed). The HTTP layer maps it to 503.
var ErrNoSnapshot = errors.New("serve: no snapshot published yet")

// Backend is where /v1 answers come from. The HTTP layer (Server) is
// written against this interface, not against one local Snapshot, so
// the same mux, admission control, and telemetry serve a single
// in-memory store today and a shard router or disk-backed store
// tomorrow. Implementations must be safe for concurrent use.
//
// Contract: every response is internally consistent — a Batch or Top
// answer reflects one generation of the backend's state, never a mix.
// For the in-memory StoreBackend that is one snapshot; for the shard
// router it is one fence-complete generation (see internal/shard).
// Lookup reports a miss as ok=false with a nil error; errors mean the
// backend itself could not answer.
type Backend interface {
	// Lookup resolves one host name to its record.
	Lookup(ctx context.Context, name string) (HostRecord, bool, error)
	// Batch resolves names into an aligned response: Records[i] is the
	// record of names[i] or null for a miss, all from one generation.
	Batch(ctx context.Context, names []string) (*BatchResponse, error)
	// Top returns the first n of the ranking for metric. The metric is
	// pre-validated by the HTTP layer (ValidMetric).
	Top(ctx context.Context, metric string, n int) (*TopResponse, error)
	// Generation is the backend's currently served generation, 0 when
	// nothing is published yet. For a local store this is the snapshot
	// epoch; for a router, the fence-complete global generation.
	Generation() int64
}

// StoreBackend answers from the current snapshot of a local Store —
// the single-process serving mode, and the backend every shard node
// runs.
type StoreBackend struct {
	store *Store
}

// NewStoreBackend wraps a snapshot store as a Backend.
func NewStoreBackend(store *Store) *StoreBackend { return &StoreBackend{store: store} }

// Lookup resolves name against the current snapshot.
func (b *StoreBackend) Lookup(ctx context.Context, name string) (HostRecord, bool, error) {
	snap := b.store.Load()
	if snap == nil {
		return HostRecord{}, false, ErrNoSnapshot
	}
	rec, ok := snap.Lookup(name)
	return rec, ok, nil
}

// Batch resolves all names against one snapshot load, so the response
// cannot mix generations. The context is checked every 256 names.
func (b *StoreBackend) Batch(ctx context.Context, names []string) (*BatchResponse, error) {
	snap := b.store.Load()
	if snap == nil {
		return nil, ErrNoSnapshot
	}
	resp := &BatchResponse{Epoch: snap.Epoch(), Records: make([]*HostRecord, len(names))}
	for i, name := range names {
		if i%256 == 255 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if rec, ok := snap.Lookup(name); ok {
			cp := rec
			resp.Records[i] = &cp
		} else {
			resp.Misses++
		}
	}
	return resp, nil
}

// Top serves the current snapshot's precomputed ranking.
func (b *StoreBackend) Top(ctx context.Context, metric string, n int) (*TopResponse, error) {
	snap := b.store.Load()
	if snap == nil {
		return nil, ErrNoSnapshot
	}
	recs, err := snap.Top(metric, n)
	if err != nil {
		return nil, err
	}
	return &TopResponse{Epoch: snap.Epoch(), Metric: metric, Records: recs}, nil
}

// Generation returns the current snapshot epoch, 0 before the first
// publish.
func (b *StoreBackend) Generation() int64 { return b.store.Epoch() }

// ValidMetric reports whether metric names one of the served rankings.
// The HTTP layer uses it to answer 400 before consulting the backend,
// so a router does not fan out a request no shard can serve.
func ValidMetric(metric string) bool {
	_, ok := rankKey(metric)
	return ok
}

// MergeTop merges per-source rankings — each already sorted by the
// serving order (metric key descending, host name ascending) — into
// the global top n. Sources must cover disjoint host sets, which shard
// partitions guarantee; records keep their per-source epochs. This is
// the scatter-gather reassembly step of the router's /v1/top.
func MergeTop(metric string, n int, lists ...[]HostRecord) ([]HostRecord, error) {
	key, ok := rankKey(metric)
	if !ok {
		return nil, fmt.Errorf("serve: unknown ranking metric %q (want %s, %s, or %s)",
			metric, MetricRelMass, MetricAbsMass, MetricPageRank)
	}
	if n < 0 {
		n = 0
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]HostRecord, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	sortRanked(all, key)
	if n > len(all) {
		n = len(all)
	}
	return all[:n:n], nil
}
