package serve

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/testutil"
)

// benchSnapshot builds a served snapshot over a 10k-host random graph
// with real estimates, matching the mass package's benchmark corpus.
func benchSnapshot(b *testing.B) (*graph.HostGraph, *Store) {
	b.Helper()
	const n = 10000
	rng := rand.New(rand.NewSource(1))
	g := testutil.RandomGraph(rng, n, 8)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("host%05d.example", i)
	}
	h, err := graph.NewHostGraph(g, names)
	if err != nil {
		b.Fatal(err)
	}
	core := make([]graph.NodeID, n/150)
	for i := range core {
		core[i] = graph.NodeID(i * 150)
	}
	est, err := mass.EstimateFromCore(g, core, mass.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	snap, err := NewSnapshot(h, est, SnapshotConfig{Detect: mass.DefaultDetectConfig(), Gamma: 0.85, CoreSize: len(core)}, 1)
	if err != nil {
		b.Fatal(err)
	}
	st := NewStore()
	if err := st.Publish(snap); err != nil {
		b.Fatal(err)
	}
	return h, st
}

// benchWriter is a minimal ResponseWriter for the serve benchmarks.
// httptest.ResponseRecorder clones the whole header map on every
// WriteHeader call — a recorder-only behavior that net/http does not
// share — which would bill the tracing headers for a clone cost no
// production request pays. This writer discards the body and just
// records the status, so the benchmark measures the serve stack.
type benchWriter struct {
	h      http.Header
	status int
}

func (w *benchWriter) Header() http.Header         { return w.h }
func (w *benchWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *benchWriter) WriteHeader(code int)        { w.status = code }

// benchLoop drives parallel single-host lookups through handler and
// reports lookups/s.
func benchLoop(b *testing.B, h *graph.HostGraph, handler http.Handler) {
	b.Helper()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &benchWriter{h: make(http.Header)}
		for pb.Next() {
			name := h.Names[int(next.Add(1))%len(h.Names)]
			req := httptest.NewRequest(http.MethodGet, "/v1/host/"+name, nil)
			w.status = 0
			handler.ServeHTTP(w, req)
			if w.status != http.StatusOK {
				b.Fatalf("lookup %s: status %d", name, w.status)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkServeLookup is the acceptance benchmark: full-stack single
// host lookups (mux routing, admission control, snapshot load, JSON
// encoding) against the 10k example graph. The PR target is ≥100k
// lookups/sec.
func BenchmarkServeLookup(b *testing.B) {
	h, st := benchSnapshot(b)
	benchLoop(b, h, NewServer(st, nil, Config{MaxInFlight: 4096}).Handler())
}

// BenchmarkServeLookupMetrics is the PR 6 production configuration —
// registry-backed metrics, no tracing — and the "untraced path"
// baseline for the telemetry budget: spamserver has always run with a
// live metrics registry, so the cost of tracing + recorder + watchdog
// is measured on top of this, not on top of the bare nil-obs handler.
func BenchmarkServeLookupMetrics(b *testing.B) {
	h, st := benchSnapshot(b)
	reg := obs.NewRegistry()
	handler := NewServer(st, nil, Config{MaxInFlight: 4096, Obs: obs.NewContext(reg, nil)}).Handler()
	benchLoop(b, h, handler)
}

// BenchmarkServeLookupInstrumented is BenchmarkServeLookup with the
// full production telemetry stack enabled — registry-backed metrics,
// request tracing with flight-recorder admission, and the history
// sampler running — to prove the PR 7 budget: instrumented lookups
// within 3% of the plain path.
func BenchmarkServeLookupInstrumented(b *testing.B) {
	h, st := benchSnapshot(b)
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, obs.RecorderConfig{})
	fl := obs.NewFlightRecorder(obs.FlightConfig{})
	// Warm the slowest set so the steady-state path is the common one:
	// an atomic threshold load that disqualifies fast requests.
	for i := 0; i < 64; i++ {
		fl.Record(obs.FlightEntry{Kind: "request", DurationNS: int64(time.Second)})
	}
	handler := NewServer(st, nil, Config{
		MaxInFlight: 4096,
		Obs:         obs.NewContext(reg, nil),
		Tracing:     true,
		Flight:      fl,
		Recorder:    rec,
		Watchdog:    NewWatchdog(WatchdogConfig{}),
	}).Handler()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rec.Run(ctx)
	benchLoop(b, h, handler)
}

// BenchmarkServeTelemetryOverhead proves the PR 7 telemetry budget
// with a paired design: the same process alternates batches of
// lookups between the PR 6 baseline handler (registry metrics, no
// tracing) and the fully instrumented handler, so slow machine drift
// hits both sides equally and the reported overhead-pct is stable
// even when absolute ns/op is not. The budget is ≤3%.
func BenchmarkServeTelemetryOverhead(b *testing.B) {
	h, st := benchSnapshot(b)
	reg := obs.NewRegistry()
	base := NewServer(st, nil, Config{MaxInFlight: 4096, Obs: obs.NewContext(reg, nil)}).Handler()
	ireg := obs.NewRegistry()
	fl := obs.NewFlightRecorder(obs.FlightConfig{})
	for i := 0; i < 64; i++ {
		fl.Record(obs.FlightEntry{Kind: "request", DurationNS: int64(time.Second)})
	}
	inst := NewServer(st, nil, Config{
		MaxInFlight: 4096,
		Obs:         obs.NewContext(ireg, nil),
		Tracing:     true,
		Flight:      fl,
		Recorder:    obs.NewRecorder(ireg, obs.RecorderConfig{}),
		Watchdog:    NewWatchdog(WatchdogConfig{}),
	}).Handler()

	drive := func(handler http.Handler, w *benchWriter, n, seq int) time.Duration {
		start := time.Now()
		for j := 0; j < n; j++ {
			name := h.Names[(seq+j)%len(h.Names)]
			req := httptest.NewRequest(http.MethodGet, "/v1/host/"+name, nil)
			w.status = 0
			handler.ServeHTTP(w, req)
			if w.status != http.StatusOK {
				b.Fatalf("lookup %s: status %d", name, w.status)
			}
		}
		return time.Since(start)
	}

	const batch = 128
	wBase := &benchWriter{h: make(http.Header)}
	wInst := &benchWriter{h: make(http.Header)}
	var tBase, tInst time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		tBase += drive(base, wBase, n, i)
		tInst += drive(inst, wInst, n, i)
	}
	b.StopTimer()
	b.ReportMetric(float64(tInst-tBase)/float64(b.N), "ns/op-overhead")
	b.ReportMetric(100*(tInst.Seconds()/tBase.Seconds()-1), "overhead-pct")
}

// BenchmarkSnapshotLookup isolates the data-path cost (index hit +
// record copy) without the HTTP layer, to show where serving time goes.
func BenchmarkSnapshotLookup(b *testing.B) {
	h, st := benchSnapshot(b)
	snap := st.Load()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := snap.Lookup(h.Names[i%len(h.Names)]); !ok {
			b.Fatal("miss")
		}
	}
}
