package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/testutil"
)

// benchSnapshot builds a served snapshot over a 10k-host random graph
// with real estimates, matching the mass package's benchmark corpus.
func benchSnapshot(b *testing.B) (*graph.HostGraph, *Store) {
	b.Helper()
	const n = 10000
	rng := rand.New(rand.NewSource(1))
	g := testutil.RandomGraph(rng, n, 8)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("host%05d.example", i)
	}
	h, err := graph.NewHostGraph(g, names)
	if err != nil {
		b.Fatal(err)
	}
	core := make([]graph.NodeID, n/150)
	for i := range core {
		core[i] = graph.NodeID(i * 150)
	}
	est, err := mass.EstimateFromCore(g, core, mass.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	snap, err := NewSnapshot(h, est, SnapshotConfig{Detect: mass.DefaultDetectConfig(), Gamma: 0.85, CoreSize: len(core)}, 1)
	if err != nil {
		b.Fatal(err)
	}
	st := NewStore()
	if err := st.Publish(snap); err != nil {
		b.Fatal(err)
	}
	return h, st
}

// BenchmarkServeLookup is the acceptance benchmark: full-stack single
// host lookups (mux routing, admission control, snapshot load, JSON
// encoding) against the 10k example graph. The PR target is ≥100k
// lookups/sec; the lookups/s metric lands in BENCH_pr4.json.
func BenchmarkServeLookup(b *testing.B) {
	h, st := benchSnapshot(b)
	handler := NewServer(st, nil, Config{MaxInFlight: 4096}).Handler()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			name := h.Names[int(next.Add(1))%len(h.Names)]
			req := httptest.NewRequest(http.MethodGet, "/v1/host/"+name, nil)
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("lookup %s: status %d", name, rec.Code)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkSnapshotLookup isolates the data-path cost (index hit +
// record copy) without the HTTP layer, to show where serving time goes.
func BenchmarkSnapshotLookup(b *testing.B) {
	h, st := benchSnapshot(b)
	snap := st.Load()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := snap.Lookup(h.Names[i%len(h.Names)]); !ok {
			b.Fatal("miss")
		}
	}
}
