package serve

import (
	"context"
	"fmt"

	"spammass/internal/delta"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
)

// DeltaBuilderConfig configures the standard incremental build path.
type DeltaBuilderConfig struct {
	// Solver configures the warm re-estimation; γ and the detection
	// thresholds are carried over from the previous snapshot's config,
	// so a delta apply never changes the estimation parameters —
	// only the graph.
	Solver pagerank.Config
	// Obs receives the delta spans and the delta.* metrics.
	Obs *obs.Context
}

// NewDeltaBuilder returns the standard DeltaApplyFunc: apply the
// mutation batch to the previous snapshot's host graph in one merge
// pass, remap the good core and the solved (p, p') vectors onto the
// new node set, re-estimate warm-started from them, and package the
// result as the next snapshot generation.
//
// The warm start is what makes the path incremental rather than
// merely convenient: with churn touching a small fraction of the
// graph, the previous vectors are already close to the new fixpoint
// and the batched solve converges in a fraction of the cold
// iteration count, while the published estimates match a cold rebuild
// to within the convergence tolerance.
//
// The previous snapshot must carry its core (SnapshotConfig.Core);
// applying a batch that removes the entire core is an error — mass
// estimation is undefined without Ṽ⁺.
func NewDeltaBuilder(cfg DeltaBuilderConfig) DeltaApplyFunc {
	return func(ctx context.Context, prev *Snapshot, epoch int64, batch *delta.Batch) (*Snapshot, error) {
		octx := cfg.Obs
		// A synchronous admin delta carries the request's traced obs
		// context; build under it so the delta spans (and the solver
		// span below, via solver.Obs) join the request's span tree.
		if ro := obs.RequestContext(ctx); ro != nil {
			octx = ro
		}
		sp := octx.Span("serve.delta_build")
		defer sp.End()
		sp.SetAttr("ops", batch.NumOps())

		res, err := delta.Apply(prev.HostGraph(), batch)
		if err != nil {
			return nil, fmt.Errorf("apply delta: %w", err)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		prevCore := prev.Core()
		if prevCore == nil {
			return nil, fmt.Errorf("serve: previous snapshot carries no core; delta path needs SnapshotConfig.Core")
		}
		core := res.RemapNodes(prevCore)
		if len(core) == 0 {
			return nil, fmt.Errorf("serve: delta removed the entire good core (%d nodes)", len(prevCore))
		}
		scfg := prev.Config()
		warm, err := mass.RemapWarmStart(prev.Estimates(), res.Remap, res.Hosts.Graph.NumNodes(), core, scfg.Gamma)
		if err != nil {
			return nil, fmt.Errorf("remap warm start: %w", err)
		}

		solver := cfg.Solver
		if solver.Obs == nil {
			solver.Obs = octx.In(sp)
		}
		es, err := mass.NewEstimator(res.Hosts.Graph, mass.Options{Solver: solver, Gamma: scfg.Gamma})
		if err != nil {
			return nil, fmt.Errorf("estimator: %w", err)
		}
		defer es.Close()
		est, err := es.EstimateFromCoreWarm(core, warm)
		if err != nil {
			return nil, fmt.Errorf("warm estimate: %w", err)
		}

		octx.Counter("delta.batches_total").Inc()
		octx.Counter("delta.applied_edges_total").Add(res.Stats.AppliedEdges())
		octx.Counter("delta.hosts_added_total").Add(int64(res.Stats.HostsAdded))
		octx.Counter("delta.hosts_removed_total").Add(int64(res.Stats.HostsRemoved))
		sp.SetAttr("stats", res.Stats.String())
		octx.Logf("serve: delta %s → %d hosts", res.Stats, res.Hosts.Graph.NumNodes())

		scfg.Core = core
		scfg.CoreSize = len(core)
		return NewSnapshot(res.Hosts, est, scfg, epoch)
	}
}
