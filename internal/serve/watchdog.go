package serve

import (
	"encoding/json"
	"math"
	"sync"
	"time"

	"spammass/internal/mass"
	"spammass/internal/obs"
)

// Watchdog is the detection-drift monitor: every published epoch
// contributes a mass.Fingerprint of the detector's operating point,
// and each new fingerprint is compared dimension-by-dimension against
// the trailing window with a bounded z-score. A dimension jumping
// outside the configured band raises an alert — a metric, a
// structured log line, and a degraded (but still 200-serving)
// /readyz?verbose detail — without ever touching the serving path:
// drift is a signal for an operator, not a reason to stop answering
// queries with the snapshot we have.
//
// The drifted fingerprint still enters the window, so a legitimate
// step change (threshold retune, graph doubling) alerts exactly once
// and then becomes the new normal as the window statistics absorb it.

// WatchdogConfig tunes the drift detector.
type WatchdogConfig struct {
	// Window is the number of trailing epoch fingerprints the current
	// epoch is compared against. Default 12.
	Window int
	// ZThreshold is the bounded z-score above which a dimension is
	// drifted. Default 4.
	ZThreshold float64
	// MinEpochs is the minimum number of fingerprints in the window
	// before any comparison happens — with one or two epochs of
	// history, "normal" is not yet defined. Default 3.
	MinEpochs int
	// Obs receives the serve.drift_* metrics and the alert log line.
	Obs *obs.Context
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.Window <= 0 {
		c.Window = 12
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = 4
	}
	if c.MinEpochs <= 0 {
		c.MinEpochs = 3
	}
	return c
}

// DriftAlert describes one drifted epoch: the dimension with the
// largest excursion and its window statistics.
type DriftAlert struct {
	Epoch     int64     `json:"epoch"`
	Dimension string    `json:"dimension"`
	Value     float64   `json:"value"`
	Mean      float64   `json:"mean"`
	Std       float64   `json:"std"`
	Z         float64   `json:"z"`
	Time      time.Time `json:"time"`
}

// WatchdogStatus is the drift detail surfaced on /readyz?verbose and
// /admin/status consumers.
type WatchdogStatus struct {
	// Epochs is how many fingerprints have been observed in total.
	Epochs int `json:"epochs"`
	// Window is how many fingerprints the trailing window holds now.
	Window int `json:"window"`
	// LastEpoch and LastMaxZ describe the most recent observation.
	LastEpoch int64   `json:"last_epoch"`
	LastMaxZ  float64 `json:"last_max_z"`
	// Degraded is true when the most recent epoch drifted.
	Degraded bool `json:"degraded"`
	// Alerts counts drifted epochs since process start; LastAlert is
	// the most recent one.
	Alerts    int64       `json:"alerts"`
	LastAlert *DriftAlert `json:"last_alert,omitempty"`
}

// Watchdog compares per-epoch fingerprints against a trailing window.
// ObserveEpoch is called by the refresher with the publish lock held,
// so observations are naturally serialized; the mutex makes Status
// safe from the request path.
type Watchdog struct {
	cfg WatchdogConfig

	mu      sync.Mutex
	history [][]mass.FingerprintDim // trailing window, oldest first
	status  WatchdogStatus

	alerts *obs.Counter // serve.drift_alerts_total
	flag   *obs.Gauge   // serve.drift_alert: 1 while the latest epoch is drifted
	maxZ   *obs.Gauge   // serve.drift_max_z
}

// NewWatchdog builds a drift watchdog.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	cfg = cfg.withDefaults()
	return &Watchdog{
		cfg:    cfg,
		alerts: cfg.Obs.Counter("serve.drift_alerts_total"),
		flag:   cfg.Obs.Gauge("serve.drift_alert"),
		maxZ:   cfg.Obs.Gauge("serve.drift_max_z"),
	}
}

// zFloor is the standard-deviation floor of the bounded z-score:
// a window of near-identical values (std → 0) must not turn ordinary
// jitter into infinite z, so the denominator never drops below a
// small absolute term plus 5% of the window mean's magnitude.
func zFloor(mean, std float64) float64 {
	return math.Max(std, 1e-9+0.05*math.Abs(mean))
}

// ObserveEpoch folds one epoch's fingerprint into the watchdog and
// returns the alert when the epoch drifted, nil otherwise. A nil
// watchdog or fingerprint observes nothing.
func (w *Watchdog) ObserveEpoch(epoch int64, f *mass.Fingerprint) *DriftAlert {
	if w == nil || f == nil {
		return nil
	}
	dims := f.Dims()
	w.mu.Lock()
	defer w.mu.Unlock()

	var alert *DriftAlert
	worst := 0.0
	if len(w.history) >= w.cfg.MinEpochs {
		for i, d := range dims {
			mean, std := w.windowStats(i)
			z := math.Abs(d.Value-mean) / zFloor(mean, std)
			if z > worst {
				worst = z
				if z > w.cfg.ZThreshold {
					alert = &DriftAlert{
						Epoch:     epoch,
						Dimension: d.Name,
						Value:     d.Value,
						Mean:      mean,
						Std:       std,
						Z:         z,
						Time:      time.Now(),
					}
				}
			}
		}
	}

	// The fingerprint enters the window whether or not it drifted:
	// a step change alerts once, then the inflated window std keeps
	// subsequent epochs at the new level quiet.
	w.history = append(w.history, dims)
	if len(w.history) > w.cfg.Window {
		w.history = w.history[1:]
	}

	w.status.Epochs++
	w.status.Window = len(w.history)
	w.status.LastEpoch = epoch
	w.status.LastMaxZ = worst
	w.status.Degraded = alert != nil
	w.maxZ.Set(worst)
	if alert != nil {
		w.status.Alerts++
		w.status.LastAlert = alert
		w.alerts.Inc()
		w.flag.Set(1)
		// One machine-parseable line per alert; the encode cannot fail
		// on this struct.
		line, _ := json.Marshal(alert)
		w.cfg.Obs.Logf("serve: drift alert %s", line)
	} else {
		w.flag.Set(0)
	}
	return alert
}

// windowStats returns mean and standard deviation of dimension i over
// the trailing window. Caller holds the lock.
func (w *Watchdog) windowStats(i int) (mean, std float64) {
	n := float64(len(w.history))
	for _, dims := range w.history {
		mean += dims[i].Value
	}
	mean /= n
	for _, dims := range w.history {
		d := dims[i].Value - mean
		std += d * d
	}
	return mean, math.Sqrt(std / n)
}

// Status returns a copy of the current drift status; nil receiver
// yields nil.
func (w *Watchdog) Status() *WatchdogStatus {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.status
	if st.LastAlert != nil {
		a := *st.LastAlert
		st.LastAlert = &a
	}
	return &st
}
