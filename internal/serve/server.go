package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"spammass/internal/delta"
	"spammass/internal/obs"
)

// Config tunes the HTTP query layer.
type Config struct {
	// MaxInFlight bounds the number of /v1/* requests served
	// concurrently; excess load is shed with 429 + Retry-After instead
	// of queueing into collapse. 0 means DefaultMaxInFlight.
	MaxInFlight int
	// Timeout is the per-request deadline attached to every /v1/*
	// request context. 0 means DefaultTimeout.
	Timeout time.Duration
	// MaxBatch bounds the number of hosts in one POST /v1/batch; 0
	// means DefaultMaxBatch.
	MaxBatch int
	// Obs receives request counters and latency histograms; the
	// handles are cached at construction so the hot path pays no
	// registry lookups. A nil Obs costs one nil check per request.
	Obs *obs.Context
	// TraceRequests additionally records one span per request under
	// the Obs root. Spans accumulate in the parent for the life of the
	// trace, so this is for bounded diagnostic runs, not always-on
	// production serving; metrics cover the steady state.
	TraceRequests bool
	// Tracing enables always-on production request tracing: every
	// request gets a trace ID echoed in X-Trace-Id and a
	// traceparent-style header, admin requests carry a full span tree
	// threaded through the refresher into the solver, and slow or
	// errored requests land in Flight. Unlike TraceRequests nothing
	// accumulates unboundedly: hot-path /v1 requests synthesize a
	// single-span trace only when they qualify for the flight
	// recorder.
	Tracing bool
	// Flight, if non-nil (and Tracing is on), receives the span trees
	// of the slowest and errored requests.
	Flight *obs.FlightRecorder
	// Recorder, if non-nil, is served on GET /admin/timeseries.
	Recorder *obs.Recorder
	// Watchdog, if non-nil, contributes the drift detail to
	// /readyz?verbose. (The refresher feeds it; the server only
	// reads.)
	Watchdog *Watchdog
	// DisableMetrics removes the GET /metrics route.
	DisableMetrics bool
	// Backend, if non-nil, is where /v1 answers come from instead of
	// the local store — a shard router, a disk-backed store. When nil,
	// NewServer wraps its store argument in a StoreBackend.
	Backend Backend
	// Routes adds or overrides mux routes (Go 1.22 patterns, e.g.
	// "POST /admin/delta"). An entry whose pattern matches a default
	// route replaces it; other entries are registered as-is. Handlers
	// installed here bypass the /v1 guardrails (admission control,
	// deadline, tracing) — they are for admin surfaces like the shard
	// router's delta and status endpoints, which own their semantics.
	Routes map[string]http.HandlerFunc
}

// Serving defaults.
const (
	DefaultMaxInFlight = 256
	DefaultTimeout     = 5 * time.Second
	DefaultMaxBatch    = 1000
)

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	return c
}

// Server answers spam-mass queries over HTTP against the current
// Store snapshot. Build one with NewServer and mount Handler on an
// http.Server; see cmd/spamserver for the full wiring including
// graceful shutdown.
//
// Endpoints:
//
//	GET  /v1/host/{name}            one host's record
//	POST /v1/batch                  {"hosts":[...]} → aligned records
//	GET  /v1/top?metric=relmass&n=  precomputed ranking
//	GET  /healthz                   process liveness
//	GET  /readyz[?verbose]          snapshot readiness (503 before first publish);
//	                                verbose adds the drift-watchdog detail
//	GET  /metrics                   Prometheus text exposition of the registry
//	POST /admin/refresh[?wait=1]    trigger (or run) a refresh
//	POST /admin/delta[?wait=1]      ingest one mutation batch
//	GET  /admin/status              epoch, age, refresh counters
//	GET  /admin/timeseries          bounded metric history (?metric=…&since=…)
//	GET  /admin/flightrecorder      slowest / errored span trees
type Server struct {
	store   *Store // nil when serving a non-local Backend
	ref     *Refresher
	backend Backend
	cfg     Config
	sem     chan struct{}
	mux     *http.ServeMux

	requests *obs.Counter
	shed     *obs.Counter
	misses   *obs.Counter
	latency  *obs.Histogram
	ageGauge *obs.Gauge
}

// NewServer builds the query layer over store. ref may be nil, which
// disables the refresh endpoint (refreshes then come only from
// whatever drives the store directly). store may be nil when
// cfg.Backend supplies the serving state — the shard router mode —
// in which case the snapshot-specific admin endpoints degrade to
// their backend-generic answers unless cfg.Routes overrides them.
func NewServer(store *Store, ref *Refresher, cfg Config) *Server {
	cfg = cfg.withDefaults()
	backend := cfg.Backend
	if backend == nil {
		if store == nil {
			panic("serve: NewServer needs a store or a Config.Backend")
		}
		backend = NewStoreBackend(store)
	}
	s := &Server{
		store:    store,
		ref:      ref,
		backend:  backend,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxInFlight),
		mux:      http.NewServeMux(),
		requests: cfg.Obs.Counter("serve.requests_total"),
		shed:     cfg.Obs.Counter("serve.shed_total"),
		misses:   cfg.Obs.Counter("serve.lookup_misses_total"),
		latency:  cfg.Obs.Histogram("serve.request_seconds"),
		ageGauge: cfg.Obs.Gauge("serve.snapshot_age_seconds"),
	}
	routes := map[string]http.HandlerFunc{
		"GET /healthz":              s.handleHealthz,
		"GET /readyz":               s.handleReadyz,
		"GET /v1/host/{name}":       s.limited("host", s.handleHost),
		"POST /v1/batch":            s.limited("batch", s.handleBatch),
		"GET /v1/top":               s.limited("top", s.handleTop),
		"POST /admin/refresh":       s.traced("admin/refresh", s.handleRefresh),
		"POST /admin/delta":         s.traced("admin/delta", s.handleDelta),
		"GET /admin/status":         s.handleStatus,
		"GET /admin/timeseries":     s.handleTimeseries,
		"GET /admin/flightrecorder": s.handleFlight,
	}
	for pattern, h := range cfg.Routes {
		routes[pattern] = h
	}
	for pattern, h := range routes {
		s.mux.HandleFunc(pattern, h)
	}
	if !cfg.DisableMetrics {
		s.mux.Handle("GET /metrics", obs.PrometheusHandler(cfg.Obs.Registry()))
	}
	return s
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// generation is the served generation: the local store's epoch, or
// the backend's generation when there is no local store.
func (s *Server) generation() int64 {
	if s.store != nil {
		return s.store.Epoch()
	}
	return s.backend.Generation()
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// An encode failure here means the client went away mid-write;
	// there is nobody left to tell.
	_ = json.NewEncoder(w).Encode(v)
}

// statusWriter captures the response status for tracing and flight
// qualification. The zero status means no WriteHeader call — an
// implicit 200. It also carries the request's rendered traceparent
// and the backing arrays for both trace header values, so the entire
// per-request tracing state is this one allocation.
type statusWriter struct {
	http.ResponseWriter
	status int
	tp     obs.Traceparent
	vals   [2]string
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// traceHeaders stamps the response with the request's trace ID — the
// X-Trace-Id echo and the W3C traceparent (00-<traceid>-<spanid>-01)
// — and returns the trace ID. Keys are pre-canonicalized and assigned
// directly, and the header values are zero-copy views of sw's
// embedded Traceparent: the whole stamp costs no allocation beyond sw
// itself, which is what keeps full tracing inside the lookup latency
// budget.
func traceHeaders(w http.ResponseWriter, sw *statusWriter) string {
	sw.tp.Render()
	tid := sw.tp.TraceID()
	sw.vals[0] = tid
	sw.vals[1] = sw.tp.String()
	h := w.Header()
	h["X-Trace-Id"] = sw.vals[0:1:1]
	h["Traceparent"] = sw.vals[1:2:2]
	return tid
}

// limited wraps a query handler with the serving guardrails: admission
// control (shed with 429 when MaxInFlight requests are already in
// flight), the per-request deadline, and request metrics. Health and
// admin endpoints bypass it so operators can always see in.
//
// Under Config.Tracing the request additionally gets a trace ID in
// the response headers, and slow or 5xx requests land in the flight
// recorder. The hot path never builds a live span tree: the trace ID
// is two PRNG draws, and a single-span trace is synthesized only
// after the fact for the rare request that qualifies — the 3%
// telemetry budget of a ~7µs lookup leaves no room for more.
func (s *Server) limited(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.shed.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "overloaded, retry later"})
			return
		}
		defer func() { <-s.sem }()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		var sp *obs.Span
		if s.cfg.TraceRequests {
			sp = s.cfg.Obs.Span("serve." + route)
			defer sp.End()
		}
		if !s.cfg.Tracing {
			start := time.Now()
			h(w, r.WithContext(ctx))
			s.latency.ObserveSince(start)
			s.requests.Inc()
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		tid := traceHeaders(w, sw)
		start := time.Now()
		h(sw, r.WithContext(ctx))
		d := time.Since(start)
		s.latency.Observe(d.Seconds())
		s.requests.Inc()
		isErr := sw.status >= 500
		if s.cfg.Flight != nil && (isErr || s.cfg.Flight.QualifiesSlow(d)) {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			s.cfg.Flight.Record(obs.FlightEntry{
				Kind:       "request",
				TraceID:    tid,
				Name:       "serve." + route,
				Status:     status,
				Err:        isErr,
				Start:      start,
				DurationNS: int64(d),
				Trace: &obs.SpanJSON{
					Name:       "serve." + route,
					Start:      start,
					DurationNS: int64(d),
					Ended:      true,
					Attrs:      map[string]any{"trace_id": tid, "path": r.URL.Path, "status": status},
				},
			})
		}
	}
}

// traced wraps an admin handler with full tracing: a real root span
// carried into the request context (obs.WithRequest), so a
// synchronous refresh or delta apply threads one coherent span tree
// from the HTTP request through the refresher into the solver. Admin
// traffic is rare; span cost is irrelevant here.
func (s *Server) traced(route string, h http.HandlerFunc) http.HandlerFunc {
	if !s.cfg.Tracing {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		tid := traceHeaders(w, sw)
		root := obs.NewSpan("serve." + route)
		root.SetAttr("trace_id", tid)
		root.SetAttr("method", r.Method)
		root.SetAttr("path", r.URL.Path)
		reqOctx := s.cfg.Obs
		if reqOctx == nil {
			reqOctx = obs.NewContext(nil, nil)
		}
		reqOctx = reqOctx.In(root).WithTraceID(tid)
		start := time.Now()
		h(sw, r.WithContext(obs.WithRequest(r.Context(), reqOctx)))
		root.End()
		d := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		isErr := status >= 500
		if s.cfg.Flight != nil && (isErr || s.cfg.Flight.QualifiesSlow(d)) {
			s.cfg.Flight.Record(obs.FlightEntry{
				Kind:       "request",
				TraceID:    tid,
				Name:       "serve." + route,
				Status:     status,
				Err:        isErr,
				Start:      start,
				DurationNS: int64(d),
				Trace:      root.Snapshot(),
			})
		}
	}
}

// backendError maps a Backend failure to its HTTP answer: no
// published state is 503 (retryable, same as before the first
// publish), an expired request deadline is 503, and anything else —
// which can only come from a remote backend, e.g. an unreachable
// shard — is 502.
func backendError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNoSnapshot):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: ErrNoSnapshot.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "request deadline exceeded"})
	default:
		writeJSON(w, http.StatusBadGateway, errorBody{Error: err.Error()})
	}
}

func (s *Server) handleHost(w http.ResponseWriter, r *http.Request) {
	rec, ok, err := s.backend.Lookup(r.Context(), r.PathValue("name"))
	if err != nil {
		backendError(w, err)
		return
	}
	if !ok {
		s.misses.Inc()
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown host"})
		return
	}
	writeJSON(w, http.StatusOK, &rec)
}

// BatchRequest is the POST /v1/batch body.
type BatchRequest struct {
	Hosts []string `json:"hosts"`
}

// BatchResponse answers a batch lookup: Records is aligned with the
// request (null for unknown hosts), all records from one epoch.
type BatchResponse struct {
	Epoch   int64         `json:"epoch"`
	Records []*HostRecord `json:"records"`
	Misses  int           `json:"misses"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Hosts) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty hosts list"})
		return
	}
	if len(req.Hosts) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorBody{Error: "batch of " + strconv.Itoa(len(req.Hosts)) + " exceeds limit " + strconv.Itoa(s.cfg.MaxBatch)})
		return
	}
	resp, err := s.backend.Batch(r.Context(), req.Hosts)
	if err != nil {
		backendError(w, err)
		return
	}
	s.misses.Add(int64(resp.Misses))
	writeJSON(w, http.StatusOK, resp)
}

// TopResponse answers GET /v1/top.
type TopResponse struct {
	Epoch   int64        `json:"epoch"`
	Metric  string       `json:"metric"`
	Records []HostRecord `json:"records"`
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	metric := r.URL.Query().Get("metric")
	if metric == "" {
		metric = MetricRelMass
	}
	if !ValidMetric(metric) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(
			"unknown ranking metric %q (want %s, %s, or %s)", metric, MetricRelMass, MetricAbsMass, MetricPageRank)})
		return
	}
	n := 50
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad n parameter"})
			return
		}
		n = v
	}
	resp, err := s.backend.Top(r.Context(), metric, n)
	if err != nil {
		backendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		// Non-local backend: ready once it serves a generation. A shard
		// router typically overrides this route with its fence-aware
		// answer; this is the generic fallback.
		gen := s.backend.Generation()
		if gen == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no generation"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "generation": gen})
		return
	}
	snap := s.store.Load()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no snapshot"})
		return
	}
	age := snap.Age()
	s.ageGauge.Set(age.Seconds())
	body := map[string]any{
		"status":      "ready",
		"epoch":       snap.Epoch(),
		"age_seconds": age.Seconds(),
	}
	// The verbose detail includes the drift watchdog's view. A drifted
	// epoch degrades the status string but never the HTTP code: a
	// shifted operating point is an operator signal, while the
	// snapshot itself is still the best answer available — flipping
	// readiness would take a healthy serving path out of rotation.
	if r.URL.Query().Has("verbose") {
		if st := s.cfg.Watchdog.Status(); st != nil {
			body["drift"] = st
			if st.Degraded {
				body["status"] = "ready-degraded"
			}
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// TimeseriesResponse is the GET /admin/timeseries body when a metric
// is requested.
type TimeseriesResponse struct {
	Metric   string      `json:"metric"`
	Interval float64     `json:"interval_seconds"`
	Points   []obs.Point `json:"points"`
}

// handleTimeseries serves the bounded metric history. Without a
// ?metric= parameter it lists the known series names; with one it
// returns the points, optionally filtered by ?since= (RFC 3339 or
// Unix seconds).
func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	rec := s.cfg.Recorder
	if rec == nil {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "no metric recorder configured"})
		return
	}
	metric := r.URL.Query().Get("metric")
	if metric == "" {
		writeJSON(w, http.StatusOK, map[string]any{"metrics": rec.Names()})
		return
	}
	var since time.Time
	if raw := r.URL.Query().Get("since"); raw != "" {
		if t, err := time.Parse(time.RFC3339, raw); err == nil {
			since = t
		} else if sec, err := strconv.ParseInt(raw, 10, 64); err == nil {
			since = time.Unix(sec, 0)
		} else {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad since parameter: want RFC 3339 or Unix seconds"})
			return
		}
	}
	writeJSON(w, http.StatusOK, &TimeseriesResponse{
		Metric:   metric,
		Interval: rec.Interval().Seconds(),
		Points:   rec.Series(metric, since),
	})
}

// handleFlight dumps the flight recorder: the slowest and errored
// request/refresh span trees.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Flight == nil {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "no flight recorder configured"})
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Flight.Snapshot())
}

func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if s.ref == nil {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "no refresher configured"})
		return
	}
	if r.URL.Query().Get("wait") == "" {
		s.ref.Trigger()
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "refresh scheduled"})
		return
	}
	if err := s.ref.Refresh(r.Context()); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "refreshed", "epoch": s.generation()})
}

// maxDeltaBody bounds the POST /admin/delta request body.
const maxDeltaBody = 64 << 20

// handleDelta ingests one mutation batch in the delta text format.
// Without ?wait=1 the batch is enqueued for the refresher loop and the
// response is 202 — which, when a durability journal is configured,
// means the batch is fsynced to the WAL and survives a crash; with
// ?wait=1 the batch is applied synchronously and the response carries
// the published epoch. A parse or validation failure is the client's
// fault (400); a full ingest queue is backpressure (429 + Retry-After
// — ingest is outrunning refresh, back off and resubmit); other
// submit failures (e.g. a failed journal append or fsync) are 503; a
// request deadline that expires after the batch is durable but before
// its apply completes is 202 — the batch is journaled and will still
// be applied (or replayed after a crash); an apply failure
// (conflicting batch, non-convergence) is 409 — the serving snapshot
// is unchanged.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	if s.ref == nil || !s.ref.DeltaEnabled() {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "no delta path configured"})
		return
	}
	b, err := delta.ReadText(http.MaxBytesReader(w, r.Body, maxDeltaBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad delta body: " + err.Error()})
		return
	}
	if r.URL.Query().Get("wait") == "" {
		if err := s.ref.SubmitDelta(b); err != nil {
			w.Header().Set("Retry-After", "1")
			code := http.StatusServiceUnavailable
			if errors.Is(err, ErrIngestBackpressure) {
				code = http.StatusTooManyRequests
			}
			writeJSON(w, code, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"status": "delta scheduled", "ops": b.NumOps(), "durable": s.ref.Journaled(),
		})
		return
	}
	// With a journal, the synchronous path routes through the same
	// ordered queue as async submissions — ApplyDelta would apply the
	// batch without logging it, silently forfeiting crash recovery.
	if s.ref.Journaled() {
		err = s.ref.SubmitDeltaWait(r.Context(), b)
		switch {
		case errors.Is(err, ErrIngestBackpressure):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
			return
		case errors.Is(err, ErrJournal):
			// The batch was never acknowledged and will not be applied.
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
			return
		case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
			// The caller stopped waiting, but the batch is durable and
			// still queued: it will be applied, or replayed after a
			// crash. Not a conflict — report it as accepted.
			writeJSON(w, http.StatusAccepted, map[string]any{
				"status": "delta durable, apply pending", "ops": b.NumOps(), "durable": true,
			})
			return
		}
	} else {
		err = s.ref.ApplyDelta(r.Context(), b)
	}
	if err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "delta applied", "epoch": s.generation(), "ops": b.NumOps()})
}

// StatusResponse is the GET /admin/status body.
type StatusResponse struct {
	Epoch           int64     `json:"epoch"`
	BuiltAt         time.Time `json:"built_at"`
	AgeSeconds      float64   `json:"age_seconds"`
	Hosts           int       `json:"hosts"`
	Gamma           float64   `json:"gamma"`
	CoreSize        int       `json:"core_size"`
	Refreshes       int64     `json:"refreshes"`
	RefreshFailures int64     `json:"refresh_failures"`
	// DeltaEnabled reports whether POST /admin/delta is wired;
	// DeltaBatches counts batches applied and published.
	DeltaEnabled bool  `json:"delta_enabled"`
	DeltaBatches int64 `json:"delta_batches"`
	// Durable reports whether an ingest journal (WAL) is configured;
	// IngestQueueDepth/Capacity expose the backpressure state, and
	// IngestRejected counts submissions turned away by it.
	Durable          bool   `json:"durable"`
	IngestQueueDepth int    `json:"ingest_queue_depth"`
	IngestQueueCap   int    `json:"ingest_queue_capacity"`
	IngestRejected   int64  `json:"ingest_rejected"`
	LastError        string `json:"last_error,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	var resp StatusResponse
	if s.store == nil {
		resp.Epoch = s.backend.Generation()
		writeJSON(w, http.StatusOK, &resp)
		return
	}
	if snap := s.store.Load(); snap != nil {
		resp.Epoch = snap.Epoch()
		resp.BuiltAt = snap.BuiltAt()
		resp.AgeSeconds = snap.Age().Seconds()
		resp.Hosts = snap.NumHosts()
		resp.Gamma = snap.Config().Gamma
		resp.CoreSize = snap.Config().CoreSize
		s.ageGauge.Set(resp.AgeSeconds)
	}
	if s.ref != nil {
		resp.Refreshes, resp.RefreshFailures = s.ref.Counts()
		resp.DeltaEnabled = s.ref.DeltaEnabled()
		resp.DeltaBatches = s.ref.DeltaCount()
		resp.Durable = s.ref.Journaled()
		resp.IngestQueueDepth, resp.IngestQueueCap = s.ref.QueueDepth()
		resp.IngestRejected = s.ref.RejectedCount()
		if err := s.ref.LastError(); err != nil {
			resp.LastError = err.Error()
		}
	}
	writeJSON(w, http.StatusOK, &resp)
}
