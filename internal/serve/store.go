package serve

import (
	"fmt"
	"sync/atomic"
)

// Store publishes snapshots to readers through one atomic pointer —
// the classic double-buffer: readers Load the current snapshot with a
// single atomic read and keep using it for the whole request, while a
// writer builds the next generation off to the side and Publishes it
// with one atomic swap. Readers never block, writers never wait for
// readers, and the superseded snapshot stays valid until its last
// reader drops it (the garbage collector is the reclamation scheme).
type Store struct {
	cur atomic.Pointer[Snapshot]
}

// NewStore returns an empty store; Load returns nil until the first
// Publish, which /readyz surfaces as not-ready.
func NewStore() *Store { return &Store{} }

// Load returns the current snapshot, or nil before the first Publish.
// The result is immutable and remains valid indefinitely.
func (s *Store) Load() *Snapshot { return s.cur.Load() }

// Publish installs snap as the current snapshot. Epochs must strictly
// increase: a publish racing a newer one loses and returns an error
// instead of moving the served state backwards.
func (s *Store) Publish(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("serve: cannot publish nil snapshot")
	}
	for {
		old := s.cur.Load()
		if old != nil && snap.epoch <= old.epoch {
			return fmt.Errorf("serve: stale publish: epoch %d is not newer than current %d", snap.epoch, old.epoch)
		}
		if s.cur.CompareAndSwap(old, snap) {
			return nil
		}
	}
}

// Epoch returns the current snapshot's epoch, or 0 before the first
// Publish.
func (s *Store) Epoch() int64 {
	if snap := s.cur.Load(); snap != nil {
		return snap.epoch
	}
	return 0
}
