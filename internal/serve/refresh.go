package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spammass/internal/obs"
)

// BuildFunc produces the next snapshot generation: reload inputs,
// re-run the estimation, and return a validated snapshot carrying the
// given epoch. prev is the currently served snapshot (nil on the
// initial build) — builders use it to warm-start the core-based solve
// (mass.Estimator.Recompute) or to diff inputs. A builder that fails
// returns an error; it must not publish anything itself.
type BuildFunc func(ctx context.Context, prev *Snapshot, epoch int64) (*Snapshot, error)

// RefresherConfig configures the background refresh loop.
type RefresherConfig struct {
	// Interval is the timer-driven refresh period; 0 disables the
	// timer, leaving SIGHUP / POST /admin/refresh triggers only.
	Interval time.Duration
	// Timeout bounds one refresh attempt (build + publish); 0 means
	// no bound beyond the Run context.
	Timeout time.Duration
	// Obs receives the refresh spans, counters, and snapshot gauges.
	Obs *obs.Context
}

// Refresher drives snapshot turnover: it runs BuildFunc on a timer or
// on demand, and publishes the result to the Store only when the build
// succeeded end to end. Any failure — input reload, solver
// non-convergence (pagerank.ErrNotConverged from the estimator),
// snapshot validation — leaves the previous snapshot serving and is
// recorded in LastError and the serve.refresh_failures counter.
// Refreshes are serialized; triggers arriving mid-refresh coalesce
// into one follow-up run.
type Refresher struct {
	store *Store
	build BuildFunc
	cfg   RefresherConfig

	trigger  chan struct{}
	mu       sync.Mutex // serializes Refresh
	ok       atomic.Int64
	failed   atomic.Int64
	lastErr  atomic.Pointer[refreshError]
	lastWall atomic.Int64 // nanoseconds of the last successful refresh
}

type refreshError struct{ err error }

// NewRefresher binds a store and a build function. Call Run to start
// the background loop, or Refresh for synchronous one-shot control.
func NewRefresher(store *Store, build BuildFunc, cfg RefresherConfig) *Refresher {
	return &Refresher{store: store, build: build, cfg: cfg, trigger: make(chan struct{}, 1)}
}

// Refresh synchronously builds and publishes the next snapshot
// generation. On failure the store is untouched — the old snapshot
// keeps serving — and the error is recorded and returned. Concurrent
// calls are serialized.
func (r *Refresher) Refresh(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.Timeout)
		defer cancel()
	}
	octx := r.cfg.Obs
	sp := octx.Span("serve.refresh")
	defer sp.End()
	prev := r.store.Load()
	epoch := int64(1)
	if prev != nil {
		epoch = prev.Epoch() + 1
	}
	sp.SetAttr("epoch", epoch)
	start := time.Now()
	snap, err := r.build(ctx, prev, epoch)
	if err == nil && snap == nil {
		err = fmt.Errorf("serve: build returned neither snapshot nor error")
	}
	if err == nil {
		err = r.store.Publish(snap)
	}
	octx.Histogram("serve.refresh_seconds").Observe(time.Since(start).Seconds())
	if err != nil {
		err = fmt.Errorf("serve: refresh to epoch %d failed, keeping epoch %d: %w", epoch, r.store.Epoch(), err)
		sp.SetAttr("error", err.Error())
		r.failed.Add(1)
		r.lastErr.Store(&refreshError{err: err})
		octx.Counter("serve.refresh_failures").Inc()
		return err
	}
	r.ok.Add(1)
	r.lastErr.Store(&refreshError{})
	r.lastWall.Store(int64(time.Since(start)))
	octx.Counter("serve.refreshes").Inc()
	octx.Gauge("serve.snapshot_epoch").Set(float64(snap.Epoch()))
	octx.Gauge("serve.snapshot_hosts").Set(float64(snap.NumHosts()))
	octx.Gauge("serve.snapshot_age_seconds").Set(0)
	octx.Logf("serve: published snapshot epoch %d (%d hosts, %s)", snap.Epoch(), snap.NumHosts(), time.Since(start).Round(time.Millisecond))
	return nil
}

// Trigger requests an asynchronous refresh from the Run loop. It never
// blocks; triggers raised while a refresh is already pending coalesce.
func (r *Refresher) Trigger() {
	select {
	case r.trigger <- struct{}{}:
	default:
	}
}

// Run executes the refresh loop until ctx is canceled: one refresh per
// Interval tick and one per Trigger. Failures are absorbed — recorded
// via LastError and metrics, old snapshot retained — so a transient
// bad input cannot take the loop down.
func (r *Refresher) Run(ctx context.Context) {
	var tick <-chan time.Time
	if r.cfg.Interval > 0 {
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
		case <-r.trigger:
		}
		if err := r.Refresh(ctx); err != nil {
			r.cfg.Obs.Logf("serve: refresh failed: %v", err)
		}
	}
}

// Counts returns how many refreshes succeeded and failed.
func (r *Refresher) Counts() (ok, failed int64) {
	return r.ok.Load(), r.failed.Load()
}

// LastError returns the error of the most recent refresh attempt, or
// nil if it succeeded (or none ran yet).
func (r *Refresher) LastError() error {
	if re := r.lastErr.Load(); re != nil {
		return re.err
	}
	return nil
}

// LastDuration returns the wall time of the most recent successful
// refresh.
func (r *Refresher) LastDuration() time.Duration {
	return time.Duration(r.lastWall.Load())
}
