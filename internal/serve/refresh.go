package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"spammass/internal/delta"
	"spammass/internal/mass"
	"spammass/internal/obs"
)

// BuildFunc produces the next snapshot generation: reload inputs,
// re-run the estimation, and return a validated snapshot carrying the
// given epoch. prev is the currently served snapshot (nil on the
// initial build) — builders use it to warm-start the core-based solve
// (mass.Estimator.Recompute) or to diff inputs. A builder that fails
// returns an error; it must not publish anything itself.
type BuildFunc func(ctx context.Context, prev *Snapshot, epoch int64) (*Snapshot, error)

// DeltaApplyFunc produces the next snapshot generation from the
// current one plus a mutation batch: apply the delta to prev's host
// graph, re-estimate warm-started from prev's vectors, and return a
// validated snapshot carrying the given epoch. prev is never nil —
// deltas need a base generation. See NewDeltaBuilder for the standard
// implementation.
type DeltaApplyFunc func(ctx context.Context, prev *Snapshot, epoch int64, batch *delta.Batch) (*Snapshot, error)

// DefaultDeltaQueue is the SubmitDelta queue capacity when
// RefresherConfig.DeltaQueue is zero.
const DefaultDeltaQueue = 16

// ErrIngestBackpressure reports that the ingest queue is full: applies
// are running behind submissions, and the feed should back off and
// retry. The HTTP layer maps it to 429 + Retry-After.
var ErrIngestBackpressure = errors.New("serve: ingest queue full")

// ErrJournal reports a failed journal append or fsync during
// submission: the batch was NOT acknowledged and will not be applied.
// The HTTP layer maps it to 503.
var ErrJournal = errors.New("serve: journaling delta batch failed")

// Journal is the durability hook of the ingest path (implemented by
// internal/ingest). When configured, SubmitDelta appends each batch to
// the journal — fsync before acknowledgment — before enqueueing it, and
// the Run loop reports the served snapshot that covers each applied
// sequence so the journal's compactor knows what the log prefix has
// been folded into.
type Journal interface {
	// Append stages the batch in the log and assigns its sequence
	// number. The record need not be durable when Append returns —
	// the submitter calls WaitDurable before acknowledging, and the
	// apply loop waits for the same outcome before applying. Appends
	// are serialized by the submitter, so sequence order equals call
	// order.
	Append(b *delta.Batch) (uint64, error)
	// WaitDurable blocks until every record with sequence ≤ seq is
	// fsynced. Keeping it separate from Append lets concurrent
	// submitters share one group-commit fsync instead of serializing
	// full append+sync cycles.
	WaitDurable(seq uint64) error
	// MarkApplied reports that every journaled batch up to and
	// including seq is reflected in the now-served snapshot.
	MarkApplied(seq uint64, snap *Snapshot)
	// MarkRefreshed reports a full (non-delta) refresh: snap supersedes
	// the previously served state but does NOT advance the applied
	// sequence — acknowledged batches still queued will be applied on
	// top of it, live and during recovery alike.
	MarkRefreshed(snap *Snapshot)
}

// RefresherConfig configures the background refresh loop.
type RefresherConfig struct {
	// Interval is the timer-driven refresh period; 0 disables the
	// timer, leaving SIGHUP / POST /admin/refresh triggers only.
	Interval time.Duration
	// Timeout bounds one refresh attempt (build + publish); 0 means
	// no bound beyond the Run context.
	Timeout time.Duration
	// ApplyDelta, if non-nil, enables the incremental refresh path:
	// POST /admin/delta and SubmitDelta feed mutation batches through
	// it, each applied batch advancing the epoch by one.
	ApplyDelta DeltaApplyFunc
	// DeltaQueue is the SubmitDelta queue capacity; 0 means
	// DefaultDeltaQueue. A full queue rejects rather than blocks.
	DeltaQueue int
	// Journal, if non-nil, makes SubmitDelta durable: every batch is
	// appended (and fsynced) before it is acknowledged or applied, and
	// apply/refresh outcomes are reported back for compaction.
	Journal Journal
	// Obs receives the refresh spans, counters, and snapshot gauges.
	Obs *obs.Context
	// Recorder, if non-nil, gets one extra Sample per published
	// snapshot, so the metric history always has a point at each epoch
	// boundary regardless of the sampling interval.
	Recorder *obs.Recorder
	// Watchdog, if non-nil, observes each published epoch's detection
	// fingerprint for drift.
	Watchdog *Watchdog
	// Flight, if non-nil, records the span tree of every failed
	// refresh; FlightDir, if also set, additionally writes the flight
	// snapshot to <FlightDir>/flight-epoch<N>.json on failure so the
	// autopsy survives a crash-restart.
	Flight    *obs.FlightRecorder
	FlightDir string
}

// Refresher drives snapshot turnover: it runs BuildFunc on a timer or
// on demand, and publishes the result to the Store only when the build
// succeeded end to end. Any failure — input reload, solver
// non-convergence (pagerank.ErrNotConverged from the estimator),
// snapshot validation — leaves the previous snapshot serving and is
// recorded in LastError and the serve.refresh_failures_total counter.
// Refreshes are serialized; triggers arriving mid-refresh coalesce
// into one follow-up run.
type Refresher struct {
	store *Store
	build BuildFunc
	cfg   RefresherConfig

	trigger chan struct{}
	deltaCh chan queuedDelta
	// slots is the ingest admission semaphore, sized like deltaCh: a
	// submitter must win a slot before journaling, so the post-journal
	// enqueue can never block — every acknowledged (fsynced) batch is
	// guaranteed a queue position and therefore an apply attempt.
	slots    chan struct{}
	submitMu sync.Mutex // orders journal append + enqueue atomically
	depth    atomic.Int64
	rejected atomic.Int64
	mu       sync.Mutex // serializes Refresh and ApplyDelta
	ok       atomic.Int64
	failed   atomic.Int64
	deltas   atomic.Int64 // batches applied and published
	lastErr  atomic.Pointer[refreshError]
	lastWall atomic.Int64 // nanoseconds of the last successful refresh
}

// queuedDelta is one admitted batch; seq is its journal sequence (0
// when no journal is configured).
type queuedDelta struct {
	b    *delta.Batch
	seq  uint64
	done chan error // non-nil for SubmitDeltaWait callers
	// durable carries the batch's fsync outcome from the submitter
	// (which performs the durability wait outside the submit lock) to
	// the Run loop, which must not apply a batch that was never
	// acknowledged. Nil when no journal is configured.
	durable chan error
}

type refreshError struct{ err error }

// NewRefresher binds a store and a build function. Call Run to start
// the background loop, or Refresh for synchronous one-shot control.
func NewRefresher(store *Store, build BuildFunc, cfg RefresherConfig) *Refresher {
	r := &Refresher{store: store, build: build, cfg: cfg, trigger: make(chan struct{}, 1)}
	if cfg.ApplyDelta != nil {
		q := cfg.DeltaQueue
		if q <= 0 {
			q = DefaultDeltaQueue
		}
		r.deltaCh = make(chan queuedDelta, q)
		r.slots = make(chan struct{}, q)
	}
	return r
}

// Refresh synchronously builds and publishes the next snapshot
// generation. On failure the store is untouched — the old snapshot
// keeps serving — and the error is recorded and returned. Concurrent
// calls are serialized.
func (r *Refresher) Refresh(ctx context.Context) error {
	return r.runBuild(ctx, "serve.refresh", false, 0, r.build)
}

// ApplyDelta synchronously applies one mutation batch: the configured
// DeltaApplyFunc builds the next generation from the current snapshot
// plus the batch, and the result is published with epoch prev+1. It
// shares Refresh's serialization, so deltas and full rebuilds
// interleave cleanly — each publish sees a settled predecessor. A
// failed apply (conflicting batch, non-convergence, validation)
// leaves the previous snapshot serving, like a failed refresh.
//
// ApplyDelta bypasses the Journal: the batch is applied but not
// logged, so its effect survives only until the next crash or full
// refresh. With a Journal configured, use SubmitDelta or
// SubmitDeltaWait instead.
func (r *Refresher) ApplyDelta(ctx context.Context, b *delta.Batch) error {
	if r.cfg.ApplyDelta == nil {
		return fmt.Errorf("serve: delta path not configured")
	}
	if b == nil || b.NumOps() == 0 {
		return fmt.Errorf("serve: empty delta batch")
	}
	return r.runBuild(ctx, "serve.delta_apply", true, 0, func(ctx context.Context, prev *Snapshot, epoch int64) (*Snapshot, error) {
		return r.cfg.ApplyDelta(ctx, prev, epoch, b)
	})
}

// applyQueued applies one admitted queue item and settles its
// accounting: durability wait, apply, journal notification, depth/slot
// release, and the waiter's outcome.
func (r *Refresher) applyQueued(ctx context.Context, item queuedDelta) error {
	defer func() {
		r.setDepth(r.depth.Add(-1))
		<-r.slots
	}()
	if item.durable != nil {
		// The submitter parks the fsync outcome here after releasing the
		// submit lock. A batch whose sync failed was never acknowledged
		// and must not be applied — and must not advance the journal's
		// applied sequence either, since its record may not survive a
		// restart.
		if derr := <-item.durable; derr != nil {
			err := fmt.Errorf("serve: dropping unacknowledged delta batch seq %d: %w", item.seq, derr)
			if item.done != nil {
				item.done <- err
			}
			return err
		}
	}
	err := r.runBuild(ctx, "serve.delta_apply", true, item.seq, func(ctx context.Context, prev *Snapshot, epoch int64) (*Snapshot, error) {
		return r.cfg.ApplyDelta(ctx, prev, epoch, item.b)
	})
	if err != nil && item.seq > 0 && r.cfg.Journal != nil && !transientApplyFailure(ctx, err) {
		// The apply failed deterministically and was skipped; the served
		// snapshot is nevertheless the state that covers this sequence,
		// because a recovery replay skips deterministic failures the same
		// way (see ingest.Pipeline.Recover). Transient failures — ctx
		// canceled at shutdown, a refresh-timeout expiry mid-apply — must
		// NOT be marked: recovery aborts rather than skips on ctx errors,
		// so the batch stays in the WAL and is replayed on the next boot
		// instead of being compacted away unapplied.
		if snap := r.store.Load(); snap != nil {
			r.cfg.Journal.MarkApplied(item.seq, snap)
		}
	}
	if item.done != nil {
		item.done <- err
	}
	return err
}

// transientApplyFailure reports whether a failed apply was cut short by
// cancellation or a deadline rather than rejected deterministically. A
// transient failure leaves the durable batch in the WAL for replay on
// the next boot; marking it applied would let the compactor truncate an
// acknowledged batch that never took effect.
func transientApplyFailure(ctx context.Context, err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil
}

// SubmitDelta enqueues a batch for asynchronous application by the Run
// loop. It never blocks: a full queue (or an unconfigured delta path,
// or a Run loop that was never started) fails with
// ErrIngestBackpressure and the batch is dropped — the feed should back
// off and resubmit. With a Journal configured, a nil return means the
// batch is DURABLE: it was fsynced to the log before this call
// returned, and a crash before the apply loses nothing.
func (r *Refresher) SubmitDelta(b *delta.Batch) error {
	if r.deltaCh == nil {
		return fmt.Errorf("serve: delta path not configured")
	}
	if b == nil || b.NumOps() == 0 {
		return fmt.Errorf("serve: empty delta batch")
	}
	return r.submit(b, nil)
}

// SubmitDeltaWait admits a batch through the same journaled,
// order-preserving queue as SubmitDelta, then blocks until the Run
// loop has applied it (returning the apply's outcome) or ctx expires.
// This is the synchronous ingest path when a Journal is configured:
// unlike ApplyDelta it keeps journal order equal to apply order even
// with concurrent asynchronous submissions. It requires a running Run
// loop.
func (r *Refresher) SubmitDeltaWait(ctx context.Context, b *delta.Batch) error {
	if r.deltaCh == nil {
		return fmt.Errorf("serve: delta path not configured")
	}
	if b == nil || b.NumOps() == 0 {
		return fmt.Errorf("serve: empty delta batch")
	}
	done := make(chan error, 1)
	if err := r.submit(b, done); err != nil {
		return err
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		// The batch stays queued — it is already durable and will be
		// applied; only the caller stops waiting for the outcome.
		return ctx.Err()
	}
}

func (r *Refresher) submit(b *delta.Batch, done chan error) error {
	select {
	case r.slots <- struct{}{}:
	default:
		r.rejected.Add(1)
		r.cfg.Obs.Counter("serve.ingest_rejected_total").Inc()
		return fmt.Errorf("%w (%d pending)", ErrIngestBackpressure, cap(r.deltaCh))
	}
	r.setDepth(r.depth.Add(1))
	// Journal append and enqueue happen under one lock so queue order
	// always equals journal order — the property that makes a crash
	// replay reproduce exactly the live apply sequence. The durability
	// wait happens AFTER the lock is released: concurrent submitters'
	// records land in the same group-commit window and share one fsync,
	// instead of each holding submitMu through window+sync and reducing
	// the WAL to one serialized append at a time. The Run loop defers
	// the apply (and the ack via done) until the durable outcome lands
	// on the item's channel. The slot held above guarantees the channel
	// send cannot block.
	r.submitMu.Lock()
	var seq uint64
	var durable chan error
	if r.cfg.Journal != nil {
		var err error
		if seq, err = r.cfg.Journal.Append(b); err != nil {
			r.submitMu.Unlock()
			r.setDepth(r.depth.Add(-1))
			<-r.slots
			return fmt.Errorf("%w: %v", ErrJournal, err)
		}
		durable = make(chan error, 1)
	}
	// lint:ignore lockbal the slot reserved above guarantees deltaCh has room, so this send never blocks
	r.deltaCh <- queuedDelta{b: b, seq: seq, done: done, durable: durable}
	r.submitMu.Unlock()
	if durable != nil {
		derr := r.cfg.Journal.WaitDurable(seq)
		durable <- derr
		if derr != nil {
			return fmt.Errorf("%w: %v", ErrJournal, derr)
		}
	}
	return nil
}

// QueueDepth returns how many admitted batches have not yet completed
// their apply, and the queue capacity.
func (r *Refresher) QueueDepth() (depth int, capacity int) {
	return int(r.depth.Load()), cap(r.deltaCh)
}

// RejectedCount returns how many submissions were turned away by
// backpressure.
func (r *Refresher) RejectedCount() int64 { return r.rejected.Load() }

func (r *Refresher) setDepth(d int64) {
	r.cfg.Obs.Gauge("serve.ingest_queue_depth").Set(float64(d))
}

// runBuild is the shared build-and-publish body of Refresh and
// ApplyDelta: serialize, bound by Timeout, run the builder for epoch
// prev+1, publish only on end-to-end success, and record the outcome
// in metrics and LastError.
func (r *Refresher) runBuild(ctx context.Context, spanName string, needPrev bool, seq uint64, build BuildFunc) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.Timeout)
		defer cancel()
	}
	octx := r.cfg.Obs
	// A synchronous admin request (POST /admin/refresh?wait=1,
	// /admin/delta?wait=1) carries its own traced obs context; building
	// under it threads the refresh and solver spans into the request's
	// span tree. The registry is shared either way, so metrics land in
	// one place regardless of who drove the build.
	if ro := obs.RequestContext(ctx); ro != nil {
		octx = ro
	}
	sp := octx.Span(spanName)
	defer sp.End()
	if sp != nil {
		// Builders that honor obs.RequestContext nest their spans under
		// this refresh span, so the whole build is one tree.
		ctx = obs.WithRequest(ctx, octx.In(sp))
	}
	prev := r.store.Load()
	if needPrev && prev == nil {
		return fmt.Errorf("serve: no snapshot to apply delta to; run a full refresh first")
	}
	epoch := int64(1)
	if prev != nil {
		epoch = prev.Epoch() + 1
	}
	sp.SetAttr("epoch", epoch)
	start := time.Now()
	snap, err := build(ctx, prev, epoch)
	if err == nil && snap == nil {
		err = fmt.Errorf("serve: build returned neither snapshot nor error")
	}
	if err == nil {
		err = r.store.Publish(snap)
	}
	octx.Histogram("serve.refresh_seconds").Observe(time.Since(start).Seconds())
	if err != nil {
		err = fmt.Errorf("serve: refresh to epoch %d failed, keeping epoch %d: %w", epoch, r.store.Epoch(), err)
		sp.SetAttr("error", err.Error())
		r.failed.Add(1)
		r.lastErr.Store(&refreshError{err: err})
		octx.Counter("serve.refresh_failures_total").Inc()
		r.recordFailure(octx, spanName, sp, epoch, start, time.Since(start), err)
		return err
	}
	r.ok.Add(1)
	if needPrev {
		r.deltas.Add(1)
	}
	// Tell the journal what the served state now covers, so the
	// compactor can fold the log prefix into a snapshot. A full refresh
	// supersedes prior deltas without advancing the applied sequence;
	// still-queued acknowledged batches apply on top of it.
	if j := r.cfg.Journal; j != nil {
		if !needPrev {
			j.MarkRefreshed(snap)
		} else if seq > 0 {
			j.MarkApplied(seq, snap)
		}
	}
	r.lastErr.Store(&refreshError{})
	r.lastWall.Store(int64(time.Since(start)))
	octx.Counter("serve.refreshes_total").Inc()
	// Warm vs cold solver effort, the incremental path's payoff metric.
	if st := snap.Estimates().SolveStats; st != nil {
		if st.WarmStarted {
			octx.Counter("serve.refresh_iterations_warm_total").Add(int64(st.Iterations))
		} else {
			octx.Counter("serve.refresh_iterations_cold_total").Add(int64(st.Iterations))
		}
	}
	octx.Gauge("serve.snapshot_epoch").Set(float64(snap.Epoch()))
	octx.Gauge("serve.snapshot_hosts").Set(float64(snap.NumHosts()))
	octx.Gauge("serve.snapshot_age_seconds").Set(0)
	// Per-epoch telemetry: the detection fingerprint feeds the drift
	// watchdog, and the recorder takes one point at the epoch boundary
	// so the history captures every publish regardless of interval.
	if r.cfg.Watchdog != nil {
		fp := mass.FingerprintOf(snap.Estimates(), snap.Config().Detect)
		fp.Epoch = uint64(snap.Epoch())
		r.cfg.Watchdog.ObserveEpoch(snap.Epoch(), fp)
	}
	r.cfg.Recorder.Sample(time.Now())
	octx.Logf("serve: published snapshot epoch %d (%d hosts, %s)", snap.Epoch(), snap.NumHosts(), time.Since(start).Round(time.Millisecond))
	return nil
}

// recordFailure files a failed refresh into the flight recorder and,
// when FlightDir is set, writes the autopsy file to disk — the
// snapshot kept serving, but the operator gets the span tree of what
// went wrong even if the process restarts before anyone scrapes
// /admin/flightrecorder.
func (r *Refresher) recordFailure(octx *obs.Context, spanName string, sp *obs.Span, epoch int64, start time.Time, d time.Duration, err error) {
	if r.cfg.Flight == nil {
		return
	}
	sp.End() // idempotent; the deferred End in runBuild keeps the same timestamp
	r.cfg.Flight.Record(obs.FlightEntry{
		Kind:       "refresh",
		TraceID:    octx.TraceID(),
		Name:       spanName,
		Err:        true,
		Error:      err.Error(),
		Start:      start,
		DurationNS: int64(d),
		Trace:      sp.Snapshot(),
	})
	if r.cfg.FlightDir != "" {
		path := filepath.Join(r.cfg.FlightDir, fmt.Sprintf("flight-epoch%d.json", epoch))
		if werr := r.cfg.Flight.WriteFile(path); werr != nil {
			octx.Logf("serve: flight dump to %s failed: %v", path, werr)
		} else {
			octx.Logf("serve: refresh failure flight record written to %s", path)
		}
	}
}

// Trigger requests an asynchronous refresh from the Run loop. It never
// blocks; triggers raised while a refresh is already pending coalesce.
func (r *Refresher) Trigger() {
	select {
	case r.trigger <- struct{}{}:
	default:
	}
}

// Run executes the refresh loop until ctx is canceled: one refresh per
// Interval tick and one per Trigger. Failures are absorbed — recorded
// via LastError and metrics, old snapshot retained — so a transient
// bad input cannot take the loop down.
func (r *Refresher) Run(ctx context.Context) {
	var tick <-chan time.Time
	if r.cfg.Interval > 0 {
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
		case <-r.trigger:
		case item := <-r.deltaCh: // nil channel when deltas are disabled
			if err := r.applyQueued(ctx, item); err != nil {
				r.cfg.Obs.Logf("serve: delta apply failed: %v", err)
			}
			continue
		}
		if err := r.Refresh(ctx); err != nil {
			r.cfg.Obs.Logf("serve: refresh failed: %v", err)
		}
	}
}

// Counts returns how many refreshes succeeded and failed.
func (r *Refresher) Counts() (ok, failed int64) {
	return r.ok.Load(), r.failed.Load()
}

// DeltaCount returns how many delta batches were applied and
// published. Each is also counted as a successful refresh in Counts.
func (r *Refresher) DeltaCount() int64 { return r.deltas.Load() }

// DeltaEnabled reports whether the incremental delta path is
// configured.
func (r *Refresher) DeltaEnabled() bool { return r.cfg.ApplyDelta != nil }

// Journaled reports whether a durability journal is configured: when
// true, acknowledged submissions survive a crash.
func (r *Refresher) Journaled() bool { return r.cfg.Journal != nil }

// LastError returns the error of the most recent refresh attempt, or
// nil if it succeeded (or none ran yet).
func (r *Refresher) LastError() error {
	if re := r.lastErr.Load(); re != nil {
		return re.err
	}
	return nil
}

// LastDuration returns the wall time of the most recent successful
// refresh.
func (r *Refresher) LastDuration() time.Duration {
	return time.Duration(r.lastWall.Load())
}
