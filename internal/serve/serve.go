// Package serve is the online query layer over the batch detector:
// it packages one complete detection state — host graph, mass
// estimates, per-host detection records, and the host-name index —
// into an immutable Snapshot, publishes snapshots through an atomic
// double-buffered Store so readers never block, and answers HTTP JSON
// queries (single host, bounded batch, precomputed rankings) against
// whichever snapshot is current.
//
// The paper frames Algorithm 2 as an offline filter, but its output —
// per-host p, p', M̃, m̃ and spam labels — is exactly what a search
// engine consults at query time. The serving constraint is the
// refresh: the web graph evolves continuously, so recomputed estimates
// must replace the live state without downtime and without torn reads.
// A Refresher re-runs the estimation in the background, validates the
// result (convergence is enforced upstream by pagerank.ErrNotConverged;
// NaN/±Inf poisoning is re-checked here at the snapshot boundary), and
// swaps the Store pointer atomically. A failed refresh changes nothing:
// the previous snapshot keeps serving, the failure is recorded in
// metrics and LastError — graceful degradation over partial state.
//
// Concurrency model: a Snapshot is immutable after construction; the
// Store hands out the current *Snapshot with one atomic load; an
// in-flight request keeps using the snapshot it loaded even while a
// newer one is published, so every response is internally consistent
// (all fields from one epoch). Epochs increase monotonically across
// publishes, which the race tests assert under hammering.
package serve

import (
	"fmt"
	"math"
	"sort"
	"time"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/obs"
)

// HostRecord is the JSON answer for one host: the detection row of
// Algorithm 2 plus the serving metadata (epoch, evaluated flag). All
// score fields are in the paper's scaled n/(1−c) units.
type HostRecord struct {
	Host string `json:"host"`
	Node int64  `json:"node"`
	// PageRank is the scaled regular PageRank p.
	PageRank float64 `json:"pagerank"`
	// CorePageRank is the scaled core-based PageRank p'.
	CorePageRank float64 `json:"core_pagerank"`
	// AbsMass is the scaled absolute spam mass M̃ = p − p'.
	AbsMass float64 `json:"abs_mass"`
	// RelMass is the relative spam mass m̃ = 1 − p'/p.
	RelMass float64 `json:"rel_mass"`
	// Label is "spam" for hosts crossing both Algorithm 2 thresholds,
	// "good" otherwise.
	Label string `json:"label"`
	// Evaluated reports whether the host is in the examined set T
	// (scaled PageRank ≥ ρ); Algorithm 2 never labels hosts below ρ,
	// so their "good" label carries less evidence.
	Evaluated bool `json:"evaluated"`
	// Epoch is the snapshot generation this record was computed in.
	Epoch int64 `json:"epoch"`
}

// Ranking metrics accepted by Snapshot.Top and GET /v1/top.
const (
	MetricRelMass  = "relmass"
	MetricAbsMass  = "absmass"
	MetricPageRank = "pagerank"
)

// DefaultMaxTop caps the length of the precomputed rankings (and
// therefore the n of GET /v1/top) when SnapshotConfig.MaxTop is zero.
const DefaultMaxTop = 1000

// SnapshotConfig fixes the detection and ranking parameters of one
// snapshot generation.
type SnapshotConfig struct {
	// Detect holds the Algorithm 2 thresholds (ρ, τ) used to label
	// every record.
	Detect mass.DetectConfig
	// Gamma and CoreSize describe the estimation inputs, surfaced in
	// /admin/status for operators.
	Gamma    float64
	CoreSize int
	// Core is the good-core node set the estimates were computed from,
	// in this snapshot's ID space. The delta refresh path carries it
	// forward: delta.Apply remaps the previous snapshot's core onto the
	// next generation's IDs. NewSnapshot clones the slice; when Core is
	// set and CoreSize is zero, CoreSize is derived from it.
	Core []graph.NodeID
	// MaxTop caps the precomputed ranking length; 0 means
	// DefaultMaxTop.
	MaxTop int
}

// Snapshot is one immutable detection state: every accessor is safe
// for unsynchronized concurrent use, and nothing in a Snapshot changes
// after NewSnapshot returns. Records, labels, and rankings are
// precomputed at build time so the query path is a map lookup plus an
// indexed read.
type Snapshot struct {
	epoch    int64
	builtAt  time.Time
	hosts    *graph.HostGraph
	est      *mass.Estimates
	cfg      SnapshotConfig
	index    map[string]graph.NodeID
	records  []HostRecord
	rankings map[string][]HostRecord
}

// NewSnapshot validates the estimates and precomputes the per-host
// records and rankings. The validation is the vectorcheck guard at the
// serving boundary: a NaN or ±Inf anywhere in the estimate vectors, or
// a negative PageRank score, fails the build so a poisoned refresh can
// never be published. epoch must be positive; the Refresher assigns
// prev+1.
func NewSnapshot(hosts *graph.HostGraph, est *mass.Estimates, cfg SnapshotConfig, epoch int64) (*Snapshot, error) {
	if epoch <= 0 {
		return nil, fmt.Errorf("serve: snapshot epoch %d must be positive", epoch)
	}
	n := hosts.Graph.NumNodes()
	if est.N() != n {
		return nil, fmt.Errorf("serve: estimates cover %d nodes, host graph has %d", est.N(), n)
	}
	if len(hosts.Names) != n {
		return nil, fmt.Errorf("serve: %d host names for %d nodes", len(hosts.Names), n)
	}
	if err := validateEstimates(est); err != nil {
		return nil, err
	}
	if cfg.MaxTop <= 0 {
		cfg.MaxTop = DefaultMaxTop
	}
	if cfg.Core != nil {
		for _, x := range cfg.Core {
			if int(x) >= n {
				return nil, fmt.Errorf("serve: core node %d outside host graph of %d nodes", x, n)
			}
		}
		cfg.Core = append([]graph.NodeID(nil), cfg.Core...)
		if cfg.CoreSize == 0 {
			cfg.CoreSize = len(cfg.Core)
		}
	}
	s := &Snapshot{
		epoch:   epoch,
		builtAt: time.Now(),
		hosts:   hosts,
		est:     est,
		cfg:     cfg,
		index:   hosts.HostIndex(),
		records: make([]HostRecord, n),
	}
	for x := 0; x < n; x++ {
		id := graph.NodeID(x)
		rec := mass.RecordFor(est, id, cfg.Detect, hosts.Names[x])
		s.records[x] = HostRecord{
			Host:         rec.Host,
			Node:         rec.Node,
			PageRank:     rec.P,
			CorePageRank: rec.PCore,
			AbsMass:      rec.AbsMass,
			RelMass:      rec.RelMass,
			Label:        rec.Label,
			Evaluated:    rec.P >= cfg.Detect.ScaledPageRankThreshold,
			Epoch:        epoch,
		}
	}
	s.rankings = map[string][]HostRecord{}
	for _, metric := range []string{MetricRelMass, MetricAbsMass, MetricPageRank} {
		key, _ := rankKey(metric)
		s.rankings[metric] = s.rank(cfg.MaxTop, metric == MetricRelMass, key)
	}
	return s, nil
}

// rankKey maps a ranking metric name to its sort key. ok is false for
// unknown metrics; ValidMetric and MergeTop share this table with the
// snapshot ranking builder so every layer agrees on what is servable.
func rankKey(metric string) (func(*HostRecord) float64, bool) {
	switch metric {
	case MetricRelMass:
		return func(r *HostRecord) float64 { return r.RelMass }, true
	case MetricAbsMass:
		return func(r *HostRecord) float64 { return r.AbsMass }, true
	case MetricPageRank:
		return func(r *HostRecord) float64 { return r.PageRank }, true
	}
	return nil, false
}

// rankedBefore is THE ranking order: key descending, ties broken by
// ascending host name. The tie-break must be a property of the host,
// not of the node ID — IDs are renumbered by delta applies and differ
// across shards, so an ID tie-break would reshuffle equal-scored hosts
// on every refresh and make merged shard rankings unstable.
func rankedBefore(ki, kj float64, hi, hj string) bool {
	// lint:ignore floatcmp exact tie-break keeps the ranking a strict weak ordering
	if ki != kj {
		return ki > kj
	}
	return hi < hj
}

// sortRanked sorts records in place into the serving order for key.
func sortRanked(recs []HostRecord, key func(*HostRecord) float64) {
	sort.Slice(recs, func(i, j int) bool {
		return rankedBefore(key(&recs[i]), key(&recs[j]), recs[i].Host, recs[j].Host)
	})
}

// rank returns the top-k records by key in the serving order
// (rankedBefore). evaluatedOnly restricts the ranking to the examined
// set T — the relative-mass ranking is meaningless below ρ, where tiny
// absolute errors blow up m̃ (Section 3.6).
func (s *Snapshot) rank(k int, evaluatedOnly bool, key func(*HostRecord) float64) []HostRecord {
	idx := make([]int, 0, len(s.records))
	for x := range s.records {
		if evaluatedOnly && !s.records[x].Evaluated {
			continue
		}
		idx = append(idx, x)
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := &s.records[idx[i]], &s.records[idx[j]]
		return rankedBefore(key(a), key(b), a.Host, b.Host)
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]HostRecord, k)
	for i, x := range idx[:k] {
		out[i] = s.records[x]
	}
	return out
}

// validateEstimates is the NaN/±Inf guard at the snapshot boundary,
// mirroring the engine's -tags vectorcheck scan: estimates computed in
// a background refresh must never poison the serving state.
func validateEstimates(est *mass.Estimates) error {
	vectors := []struct {
		name string
		v    []float64
	}{{"p", est.P}, {"p_core", est.PCore}, {"abs_mass", est.Abs}, {"rel_mass", est.Rel}}
	for _, vec := range vectors {
		for i, v := range vec.v {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("serve: estimate vector %s has non-finite value %v at node %d", vec.name, v, i)
			}
		}
	}
	for i, v := range est.P {
		if v < 0 {
			return fmt.Errorf("serve: PageRank vector has negative score %v at node %d", v, i)
		}
	}
	return nil
}

// Epoch returns the snapshot generation, positive and strictly
// increasing across publishes.
func (s *Snapshot) Epoch() int64 { return s.epoch }

// BuiltAt returns the snapshot construction time.
func (s *Snapshot) BuiltAt() time.Time { return s.builtAt }

// Age returns the time elapsed since the snapshot was built.
func (s *Snapshot) Age() time.Duration { return time.Since(s.builtAt) }

// NumHosts returns the number of hosts covered.
func (s *Snapshot) NumHosts() int { return len(s.records) }

// Config returns the snapshot's detection and ranking parameters.
func (s *Snapshot) Config() SnapshotConfig { return s.cfg }

// Estimates exposes the underlying mass estimates (e.g. for report
// summaries); treat the result as read-only.
func (s *Snapshot) Estimates() *mass.Estimates { return s.est }

// HostGraph exposes the host graph the snapshot was built over — the
// base the delta refresh path applies the next mutation batch to.
// Treat the result as read-only; HostGraph contents are immutable by
// convention.
func (s *Snapshot) HostGraph() *graph.HostGraph { return s.hosts }

// Core returns a copy of the good-core node set the snapshot's
// estimates were computed from (nil when the builder did not record
// one). The delta refresh path remaps it onto the next generation.
func (s *Snapshot) Core() []graph.NodeID {
	if s.cfg.Core == nil {
		return nil
	}
	return append([]graph.NodeID(nil), s.cfg.Core...)
}

// Lookup resolves a host name to its record.
func (s *Snapshot) Lookup(name string) (HostRecord, bool) {
	x, ok := s.index[name]
	if !ok {
		return HostRecord{}, false
	}
	return s.records[x], true
}

// LookupNode returns the record of node x.
func (s *Snapshot) LookupNode(x graph.NodeID) (HostRecord, bool) {
	if int(x) >= len(s.records) {
		return HostRecord{}, false
	}
	return s.records[x], true
}

// Top returns the first n entries of the precomputed ranking for
// metric (MetricRelMass, MetricAbsMass, or MetricPageRank). n is
// clamped to the precomputed length (SnapshotConfig.MaxTop).
func (s *Snapshot) Top(metric string, n int) ([]HostRecord, error) {
	ranked, ok := s.rankings[metric]
	if !ok {
		return nil, fmt.Errorf("serve: unknown ranking metric %q (want %s, %s, or %s)",
			metric, MetricRelMass, MetricAbsMass, MetricPageRank)
	}
	if n < 0 {
		n = 0
	}
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]HostRecord, n)
	copy(out, ranked[:n])
	return out, nil
}

// Summary condenses the snapshot into the RunReport mass section, so a
// server -report carries the same diagnostics as a batch run.
func (s *Snapshot) Summary() *obs.MassSummary {
	candidates := 0
	for x := range s.records {
		if s.records[x].Label == obs.LabelSpam {
			candidates++
		}
	}
	return mass.ReportSummary(s.est, s.cfg.CoreSize, s.cfg.Gamma, s.cfg.Detect, candidates)
}
