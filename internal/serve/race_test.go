package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
)

// snapshotForEpoch builds a snapshot whose estimate vectors are uniform
// functions of the epoch, so a reader can compute the exact record it
// must see for any epoch and detect torn reads (a response mixing
// fields from two generations cannot equal any single epoch's record).
func snapshotForEpoch(t testing.TB, h *graph.HostGraph, epoch int64) *Snapshot {
	t.Helper()
	n := 5
	p := make(pagerank.Vector, n)
	pCore := make(pagerank.Vector, n)
	for x := range p {
		p[x] = float64(epoch) / 1000
		pCore[x] = p[x] / 2
	}
	est := mass.Derive(p, pCore, 0.85)
	snap, err := NewSnapshot(h, est, SnapshotConfig{Detect: mass.DefaultDetectConfig()}, epoch)
	if err != nil {
		t.Fatalf("snapshotForEpoch(%d): %v", epoch, err)
	}
	return snap
}

// TestConcurrentLookupDuringRefresh hammers GET /v1/host from several
// goroutines while the writer forces refreshes (including injected
// failures). Run under -race. Asserts: every response is 200 — never a
// 5xx while swaps happen — each goroutine observes monotonically
// non-decreasing epochs, and every record exactly equals the one its
// epoch's snapshot serves (no torn reads).
func TestConcurrentLookupDuringRefresh(t *testing.T) {
	const (
		epochs  = 40
		readers = 8
	)
	h := testHostGraph(t)

	// Pre-build every generation and the exact records each must serve.
	snaps := make(map[int64]*Snapshot, epochs)
	expected := make(map[int64]map[string]HostRecord, epochs)
	for e := int64(1); e <= epochs; e++ {
		snap := snapshotForEpoch(t, h, e)
		snaps[e] = snap
		byHost := make(map[string]HostRecord, len(h.Names))
		for _, name := range h.Names {
			rec, ok := snap.Lookup(name)
			if !ok {
				t.Fatalf("epoch %d missing host %s", e, name)
			}
			byHost[name] = rec
		}
		expected[e] = byHost
	}

	// Every 5th build attempt fails once before succeeding, exercising
	// the keep-old-snapshot path mid-hammer.
	var attempts atomic.Int64
	injected := errors.New("injected refresh failure")
	build := func(ctx context.Context, prev *Snapshot, epoch int64) (*Snapshot, error) {
		if attempts.Add(1)%5 == 0 {
			return nil, injected
		}
		snap, ok := snaps[epoch]
		if !ok {
			return nil, fmt.Errorf("no prebuilt snapshot for epoch %d", epoch)
		}
		return snap, nil
	}

	st := NewStore()
	ref := NewRefresher(st, build, RefresherConfig{})
	for st.Epoch() == 0 {
		ref.Refresh(context.Background())
	}
	ts := httptest.NewServer(NewServer(st, ref, Config{MaxInFlight: readers * 4}).Handler())
	defer ts.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := &http.Client{}
			lastEpoch := int64(0)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				name := h.Names[i%len(h.Names)]
				resp, err := client.Get(ts.URL + "/v1/host/" + name)
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", id, err)
					return
				}
				var rec HostRecord
				err = json.NewDecoder(resp.Body).Decode(&rec)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("reader %d: status %d during refresh", id, resp.StatusCode)
					return
				}
				if err != nil {
					errc <- fmt.Errorf("reader %d: decode: %v", id, err)
					return
				}
				if rec.Epoch < lastEpoch {
					errc <- fmt.Errorf("reader %d: epoch went backwards %d -> %d", id, lastEpoch, rec.Epoch)
					return
				}
				lastEpoch = rec.Epoch
				want, ok := expected[rec.Epoch][name]
				if !ok {
					errc <- fmt.Errorf("reader %d: response claims unknown epoch %d", id, rec.Epoch)
					return
				}
				if rec != want {
					errc <- fmt.Errorf("reader %d: torn read at epoch %d: got %+v want %+v", id, rec.Epoch, rec, want)
					return
				}
			}
		}(g)
	}

	for st.Epoch() < epochs {
		// Failures are expected (injected); the store must still advance.
		if err := ref.Refresh(context.Background()); err != nil && !errors.Is(err, injected) {
			close(done)
			wg.Wait()
			t.Fatalf("unexpected refresh error: %v", err)
		}
		select {
		case err := <-errc:
			close(done)
			wg.Wait()
			t.Fatal(err)
		default:
		}
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	if ok, failed := ref.Counts(); ok != epochs || failed == 0 {
		t.Fatalf("refresh counts ok=%d failed=%d, want ok=%d with injected failures", ok, failed, epochs)
	}
}
