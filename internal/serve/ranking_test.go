package serve

import (
	"context"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
)

// tieSnapshot builds a snapshot over hosts whose scores are all equal,
// with the node↔name assignment given by order. Equal scores force
// every ranking position to be decided by the tie-break alone.
func tieSnapshot(t *testing.T, order []string, epoch int64) *Snapshot {
	t.Helper()
	n := len(order)
	h, err := graph.NewHostGraph(graph.FromEdges(n, nil), order)
	if err != nil {
		t.Fatal(err)
	}
	p := make(pagerank.Vector, n)
	pCore := make(pagerank.Vector, n)
	// Scaled PageRank must clear ρ=10 so every host lands in the
	// evaluated set and shows up in the relmass ranking too.
	for x := range p {
		p[x] = 0.5
		pCore[x] = 0.25
	}
	est := mass.Derive(p, pCore, 0.85)
	snap, err := NewSnapshot(h, est, SnapshotConfig{Detect: mass.DefaultDetectConfig()}, epoch)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func topHosts(t *testing.T, snap *Snapshot, metric string, n int) []string {
	t.Helper()
	recs, err := snap.Top(metric, n)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Host
	}
	return out
}

// TestTopTieBreakStableAcrossRenumbering is the regression test for
// the ranking tie-break: two snapshots over the same hosts with
// identical scores but different node numbering (what a delta apply's
// renumbering or a shard-local ID space produces) must serve the same
// /v1/top order. The old node-ID tie-break failed exactly this.
func TestTopTieBreakStableAcrossRenumbering(t *testing.T) {
	names := []string{"d.example", "b.example", "e.example", "a.example", "c.example"}
	permuted := []string{"c.example", "a.example", "d.example", "e.example", "b.example"}
	for _, metric := range []string{MetricRelMass, MetricAbsMass, MetricPageRank} {
		got1 := topHosts(t, tieSnapshot(t, names, 1), metric, len(names))
		got2 := topHosts(t, tieSnapshot(t, permuted, 2), metric, len(names))
		if len(got1) != len(names) {
			t.Fatalf("%s: ranking has %d entries, want %d", metric, len(got1), len(names))
		}
		for i := range got1 {
			if got1[i] != got2[i] {
				t.Fatalf("%s: rankings diverge under renumbering:\n  %v\n  %v", metric, got1, got2)
			}
			// With all scores equal the order must be exactly ascending
			// host name.
			if i > 0 && got1[i-1] >= got1[i] {
				t.Fatalf("%s: tie-break is not ascending host name: %v", metric, got1)
			}
		}
	}
}

func TestMergeTop(t *testing.T) {
	mk := func(host string, rel float64, epoch int64) HostRecord {
		return HostRecord{Host: host, RelMass: rel, Epoch: epoch}
	}
	shard0 := []HostRecord{mk("b.example", 0.9, 3), mk("a.example", 0.5, 3)}
	shard1 := []HostRecord{mk("c.example", 0.9, 7), mk("d.example", 0.7, 7)}
	got, err := MergeTop(MetricRelMass, 3, shard0, shard1)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b.example", "c.example", "d.example"}
	if len(got) != len(want) {
		t.Fatalf("merged %d records, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if rec.Host != want[i] {
			t.Fatalf("merge order %v, want %v", got, want)
		}
	}
	// Records keep their per-shard epochs through the merge.
	if got[0].Epoch != 3 || got[1].Epoch != 7 {
		t.Fatalf("merge rewrote epochs: %+v", got)
	}
	if _, err := MergeTop("nonsense", 3, shard0); err == nil {
		t.Fatal("unknown metric must fail")
	}
	if out, err := MergeTop(MetricRelMass, 100, shard0, nil, shard1); err != nil || len(out) != 4 {
		t.Fatalf("over-asking must clamp: %d records, err %v", len(out), err)
	}
}

func TestStoreBackend(t *testing.T) {
	st := NewStore()
	b := NewStoreBackend(st)
	ctx := context.Background()
	if _, _, err := b.Lookup(ctx, "a.example"); err != ErrNoSnapshot {
		t.Fatalf("empty-store Lookup err = %v, want ErrNoSnapshot", err)
	}
	if _, err := b.Batch(ctx, []string{"a.example"}); err != ErrNoSnapshot {
		t.Fatalf("empty-store Batch err = %v, want ErrNoSnapshot", err)
	}
	if _, err := b.Top(ctx, MetricRelMass, 5); err != ErrNoSnapshot {
		t.Fatalf("empty-store Top err = %v, want ErrNoSnapshot", err)
	}
	if b.Generation() != 0 {
		t.Fatalf("empty-store Generation = %d", b.Generation())
	}

	h := testHostGraph(t)
	est := realEstimates(t, h, []graph.NodeID{0, 1})
	snap, err := NewSnapshot(h, est, SnapshotConfig{Detect: mass.DefaultDetectConfig()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Publish(snap); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := b.Lookup(ctx, "a.example")
	if err != nil || !ok || rec.Host != "a.example" || rec.Epoch != 4 {
		t.Fatalf("Lookup = (%+v, %v, %v)", rec, ok, err)
	}
	if _, ok, err := b.Lookup(ctx, "nosuch.example"); err != nil || ok {
		t.Fatalf("miss must be ok=false with nil error, got (%v, %v)", ok, err)
	}
	resp, err := b.Batch(ctx, []string{"b.example", "nosuch.example", "b.example"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 4 || resp.Misses != 1 || resp.Records[1] != nil ||
		resp.Records[0] == nil || resp.Records[2] == nil || *resp.Records[0] != *resp.Records[2] {
		t.Fatalf("Batch = %+v", resp)
	}
	if b.Generation() != 4 {
		t.Fatalf("Generation = %d, want 4", b.Generation())
	}
}
