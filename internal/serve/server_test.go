package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
)

// newTestServer publishes one real snapshot and returns the server,
// its store, and a live httptest endpoint.
func newTestServer(t *testing.T, cfg Config) (*Server, *Store, *httptest.Server) {
	t.Helper()
	h := testHostGraph(t)
	st := NewStore()
	ref := NewRefresher(st, estimatorBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()), RefresherConfig{})
	if err := ref.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st, ref, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, st, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s content type %q", url, ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding body: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

func TestHostEndpoint(t *testing.T) {
	_, st, ts := newTestServer(t, Config{})
	var rec HostRecord
	if code := getJSON(t, ts.URL+"/v1/host/a.example", &rec); code != http.StatusOK {
		t.Fatalf("known host status %d", code)
	}
	want, _ := st.Load().Lookup("a.example")
	if rec != want {
		t.Fatalf("served record %+v != snapshot record %+v", rec, want)
	}
	var eb errorBody
	if code := getJSON(t, ts.URL+"/v1/host/nosuch.example", &eb); code != http.StatusNotFound {
		t.Fatalf("unknown host status %d", code)
	}
	if eb.Error == "" {
		t.Fatal("404 body carries no error message")
	}
}

func TestHostEndpointNoSnapshot(t *testing.T) {
	srv := NewServer(NewStore(), nil, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code := getJSON(t, ts.URL+"/v1/host/a.example", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("empty-store lookup status %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("empty-store readyz status %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz status %d, want 200 regardless of snapshot", code)
	}
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding body: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

func TestBatchEndpoint(t *testing.T) {
	_, st, ts := newTestServer(t, Config{MaxBatch: 3})
	var resp BatchResponse
	code := postJSON(t, ts.URL+"/v1/batch",
		BatchRequest{Hosts: []string{"b.example", "nosuch.example", "d.example"}}, &resp)
	if code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if resp.Epoch != st.Epoch() || resp.Misses != 1 || len(resp.Records) != 3 {
		t.Fatalf("batch response: %+v", resp)
	}
	if resp.Records[1] != nil {
		t.Fatal("unknown host produced a record instead of null")
	}
	want, _ := st.Load().Lookup("b.example")
	if resp.Records[0] == nil || *resp.Records[0] != want {
		t.Fatalf("batch record %+v, want %+v", resp.Records[0], want)
	}
	if code := postJSON(t, ts.URL+"/v1/batch", BatchRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", code)
	}
	big := BatchRequest{Hosts: []string{"a", "b", "c", "d"}}
	if code := postJSON(t, ts.URL+"/v1/batch", big, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status %d", code)
	}
	resp2, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status %d", resp2.StatusCode)
	}
}

func TestTopEndpoint(t *testing.T) {
	_, st, ts := newTestServer(t, Config{})
	var resp TopResponse
	if code := getJSON(t, ts.URL+"/v1/top?metric=pagerank&n=2", &resp); code != http.StatusOK {
		t.Fatalf("top status %d", code)
	}
	if resp.Metric != MetricPageRank || len(resp.Records) != 2 || resp.Epoch != st.Epoch() {
		t.Fatalf("top response: %+v", resp)
	}
	if resp.Records[0].PageRank < resp.Records[1].PageRank {
		t.Fatal("top ranking not descending")
	}
	resp = TopResponse{}
	if code := getJSON(t, ts.URL+"/v1/top", &resp); code != http.StatusOK || resp.Metric != MetricRelMass {
		t.Fatalf("default top: code %d metric %q", code, resp.Metric)
	}
	if code := getJSON(t, ts.URL+"/v1/top?metric=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("bogus metric status %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/top?n=-3", nil); code != http.StatusBadRequest {
		t.Fatalf("negative n status %d", code)
	}
}

func TestReadyzAndStatus(t *testing.T) {
	_, st, ts := newTestServer(t, Config{})
	var ready struct {
		Status string  `json:"status"`
		Epoch  int64   `json:"epoch"`
		Age    float64 `json:"age_seconds"`
	}
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK {
		t.Fatalf("readyz status %d", code)
	}
	if ready.Status != "ready" || ready.Epoch != st.Epoch() || ready.Age < 0 {
		t.Fatalf("readyz body: %+v", ready)
	}
	var status StatusResponse
	if code := getJSON(t, ts.URL+"/admin/status", &status); code != http.StatusOK {
		t.Fatalf("status status %d", code)
	}
	if status.Epoch != st.Epoch() || status.Hosts != 5 || status.Refreshes != 1 || status.RefreshFailures != 0 {
		t.Fatalf("status body: %+v", status)
	}
}

func TestRefreshEndpoint(t *testing.T) {
	_, st, ts := newTestServer(t, Config{})
	before := st.Epoch()
	var out struct {
		Status string `json:"status"`
		Epoch  int64  `json:"epoch"`
	}
	if code := postJSON(t, ts.URL+"/admin/refresh?wait=1", nil, &out); code != http.StatusOK {
		t.Fatalf("refresh?wait=1 status %d", code)
	}
	if out.Epoch != before+1 || st.Epoch() != before+1 {
		t.Fatalf("synchronous refresh: body epoch %d, store epoch %d, want %d", out.Epoch, st.Epoch(), before+1)
	}
}

func TestRefreshEndpointAsync(t *testing.T) {
	h := testHostGraph(t)
	st := NewStore()
	ref := NewRefresher(st, estimatorBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()), RefresherConfig{})
	if err := ref.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ref.Run(ctx)
	ts := httptest.NewServer(NewServer(st, ref, Config{}).Handler())
	defer ts.Close()
	if code := postJSON(t, ts.URL+"/admin/refresh", nil, nil); code != http.StatusAccepted {
		t.Fatalf("async refresh status %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for st.Epoch() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("async refresh never published")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRefreshEndpointFailure(t *testing.T) {
	h := testHostGraph(t)
	st := NewStore()
	good := estimatorBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig())
	fail := false
	ref := NewRefresher(st, func(ctx context.Context, prev *Snapshot, epoch int64) (*Snapshot, error) {
		if fail {
			return nil, errors.New("crawler offline")
		}
		return good(ctx, prev, epoch)
	}, RefresherConfig{})
	if err := ref.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(st, ref, Config{}).Handler())
	defer ts.Close()
	fail = true
	var eb errorBody
	if code := postJSON(t, ts.URL+"/admin/refresh?wait=1", nil, &eb); code != http.StatusInternalServerError {
		t.Fatalf("failed refresh status %d", code)
	}
	if !strings.Contains(eb.Error, "crawler offline") {
		t.Fatalf("failed refresh error body: %q", eb.Error)
	}
	// Reads keep working against the retained snapshot.
	if code := getJSON(t, ts.URL+"/v1/host/a.example", nil); code != http.StatusOK {
		t.Fatalf("lookup after failed refresh: %d", code)
	}
	var status StatusResponse
	getJSON(t, ts.URL+"/admin/status", &status)
	if status.RefreshFailures != 1 || !strings.Contains(status.LastError, "crawler offline") {
		t.Fatalf("status after failed refresh: %+v", status)
	}
}

func TestRefreshEndpointWithoutRefresher(t *testing.T) {
	h := testHostGraph(t)
	st := NewStore()
	snap, err := NewSnapshot(h, realEstimates(t, h, []graph.NodeID{0, 1}),
		SnapshotConfig{Detect: mass.DefaultDetectConfig()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Publish(snap); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(st, nil, Config{}).Handler())
	defer ts.Close()
	if code := postJSON(t, ts.URL+"/admin/refresh", nil, nil); code != http.StatusNotImplemented {
		t.Fatalf("refresh without refresher status %d", code)
	}
}

// TestShedding saturates the in-flight semaphore and asserts the next
// request is shed with 429 + Retry-After instead of queueing.
func TestShedding(t *testing.T) {
	srv, _, ts := newTestServer(t, Config{MaxInFlight: 2, Obs: obs.NewContext(obs.NewRegistry(), nil)})
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	resp, err := http.Get(ts.URL + "/v1/host/a.example")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated lookup status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if srv.shed.Value() != 1 {
		t.Fatalf("shed counter %d, want 1", srv.shed.Value())
	}
	// Health stays reachable under full load so operators can see in.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", code)
	}
	<-srv.sem
	<-srv.sem
	if code := getJSON(t, ts.URL+"/v1/host/a.example", nil); code != http.StatusOK {
		t.Fatalf("lookup after drain: %d", code)
	}
}

func TestRequestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	_, _, ts := newTestServer(t, Config{Obs: obs.NewContext(reg, nil)})
	for i := 0; i < 3; i++ {
		getJSON(t, ts.URL+"/v1/host/a.example", nil)
	}
	getJSON(t, ts.URL+"/v1/host/nosuch.example", nil)
	if got := reg.Counter("serve.requests_total").Value(); got != 4 {
		t.Fatalf("serve.requests_total = %d, want 4", got)
	}
	if got := reg.Counter("serve.lookup_misses_total").Value(); got != 1 {
		t.Fatalf("serve.lookup_misses = %d, want 1", got)
	}
	if got := reg.Histogram("serve.request_seconds").Count(); got != 4 {
		t.Fatalf("serve.request_seconds count = %d, want 4", got)
	}
}

func TestTraceRequests(t *testing.T) {
	root := obs.NewSpan("test")
	_, _, ts := newTestServer(t, Config{TraceRequests: true, Obs: obs.NewContext(nil, root)})
	getJSON(t, ts.URL+"/v1/host/a.example", nil)
	root.End()
	if root.Snapshot().Find("serve.host") == nil {
		t.Fatal("request span serve.host missing from trace")
	}
}

func TestMethodRouting(t *testing.T) {
	_, _, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/host/a.example", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST to GET route: %d, want 405", resp.StatusCode)
	}
}

func TestBatchDeadline(t *testing.T) {
	// A canceled request context must abort a long batch scan rather
	// than burn the worker; exercised via the handler directly with an
	// expired deadline.
	_, st, _ := newTestServer(t, Config{})
	srv := NewServer(st, nil, Config{Timeout: time.Nanosecond})
	hosts := make([]string, 600)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("missing%d.example", i)
	}
	raw, _ := json.Marshal(BatchRequest{Hosts: hosts})
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable && rec.Code != http.StatusOK {
		t.Fatalf("deadline batch status %d", rec.Code)
	}
}
