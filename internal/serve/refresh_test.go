package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
)

// estimatorBuilder returns a BuildFunc that runs the real estimator
// with the given solver config — the production shape of a refresh.
func estimatorBuilder(h *graph.HostGraph, core []graph.NodeID, solver pagerank.Config) BuildFunc {
	return func(ctx context.Context, prev *Snapshot, epoch int64) (*Snapshot, error) {
		opts := mass.Options{Solver: solver, Gamma: 0.85}
		est, err := mass.EstimateFromCore(h.Graph, core, opts)
		if err != nil {
			return nil, err
		}
		return NewSnapshot(h, est, SnapshotConfig{Detect: mass.DefaultDetectConfig(), Gamma: 0.85, CoreSize: len(core)}, epoch)
	}
}

// TestRefreshBlockedLayoutMatchesFlat runs the production refresh path
// with the degree-sorted compressed solver layout (spamserver's
// default) and the mixed-precision variant, checking the published
// records against a flat float64 refresh. The layouts permute node IDs
// internally; any leak of the permutation through the snapshot would
// misattribute spam mass to the wrong hosts.
func TestRefreshBlockedLayoutMatchesFlat(t *testing.T) {
	h := testHostGraph(t)
	core := []graph.NodeID{0, 1}
	snapshotFor := func(solver pagerank.Config) *Snapshot {
		t.Helper()
		st := NewStore()
		ref := NewRefresher(st, estimatorBuilder(h, core, solver), RefresherConfig{})
		if err := ref.Refresh(context.Background()); err != nil {
			t.Fatalf("refresh (layout %v, precision %v): %v", solver.Layout, solver.Precision, err)
		}
		return st.Load()
	}
	want := snapshotFor(pagerank.DefaultConfig())
	for _, solver := range []pagerank.Config{
		{Damping: 0.85, Epsilon: 1e-12, MaxIter: 1000, Layout: pagerank.LayoutBlocked},
		{Damping: 0.85, Epsilon: 1e-12, MaxIter: 1000, Layout: pagerank.LayoutBlocked, Precision: pagerank.PrecisionFloat32},
	} {
		got := snapshotFor(solver)
		for x := 0; x < h.Graph.NumNodes(); x++ {
			w, _ := want.LookupNode(graph.NodeID(x))
			g, ok := got.LookupNode(graph.NodeID(x))
			if !ok {
				t.Fatalf("node %d missing from blocked snapshot", x)
			}
			if diff := g.PageRank - w.PageRank; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("node %d: blocked PageRank %v vs flat %v", x, g.PageRank, w.PageRank)
			}
			if diff := g.CorePageRank - w.CorePageRank; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("node %d: blocked CorePageRank %v vs flat %v", x, g.CorePageRank, w.CorePageRank)
			}
			if g.Label != w.Label {
				t.Errorf("node %d: blocked label %v vs flat %v", x, g.Label, w.Label)
			}
		}
	}
}

func TestRefreshPublishes(t *testing.T) {
	h := testHostGraph(t)
	st := NewStore()
	ref := NewRefresher(st, estimatorBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()), RefresherConfig{})
	for want := int64(1); want <= 3; want++ {
		if err := ref.Refresh(context.Background()); err != nil {
			t.Fatalf("refresh %d: %v", want, err)
		}
		if st.Epoch() != want {
			t.Fatalf("store epoch %d after refresh, want %d", st.Epoch(), want)
		}
	}
	ok, failed := ref.Counts()
	if ok != 3 || failed != 0 {
		t.Fatalf("counts ok=%d failed=%d, want 3/0", ok, failed)
	}
	if err := ref.LastError(); err != nil {
		t.Fatalf("LastError after success: %v", err)
	}
	if ref.LastDuration() <= 0 {
		t.Error("LastDuration not recorded")
	}
}

func TestRefreshFailureKeepsOldSnapshot(t *testing.T) {
	h := testHostGraph(t)
	st := NewStore()
	boom := errors.New("inputs unavailable")
	fail := false
	good := estimatorBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig())
	build := func(ctx context.Context, prev *Snapshot, epoch int64) (*Snapshot, error) {
		if fail {
			return nil, boom
		}
		return good(ctx, prev, epoch)
	}
	ref := NewRefresher(st, build, RefresherConfig{})
	if err := ref.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	served := st.Load()

	fail = true
	err := ref.Refresh(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("failed refresh returned %v, want wrapped %v", err, boom)
	}
	if st.Load() != served {
		t.Fatal("failed refresh replaced the served snapshot")
	}
	if !errors.Is(ref.LastError(), boom) {
		t.Fatalf("LastError = %v, want wrapped %v", ref.LastError(), boom)
	}
	if ok, failed := ref.Counts(); ok != 1 || failed != 1 {
		t.Fatalf("counts ok=%d failed=%d, want 1/1", ok, failed)
	}

	// Recovery: the next successful refresh publishes epoch 2.
	fail = false
	if err := ref.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 2 {
		t.Fatalf("store epoch %d after recovery, want 2", st.Epoch())
	}
	if err := ref.LastError(); err != nil {
		t.Fatalf("LastError not cleared after recovery: %v", err)
	}
}

// TestRefreshNonConvergenceKeepsServing is the acceptance case: a
// refresh whose solve hits MaxIter without meeting Epsilon surfaces as
// pagerank.ErrNotConverged and the previous snapshot keeps serving.
func TestRefreshNonConvergenceKeepsServing(t *testing.T) {
	h := testHostGraph(t)
	st := NewStore()
	ref := NewRefresher(st, estimatorBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()), RefresherConfig{})
	if err := ref.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	served := st.Load()

	strangled := pagerank.DefaultConfig()
	strangled.MaxIter = 1
	strangled.Epsilon = 1e-300
	bad := NewRefresher(st, estimatorBuilder(h, []graph.NodeID{0, 1}, strangled), RefresherConfig{})
	err := bad.Refresh(context.Background())
	if err == nil {
		t.Fatal("non-converged refresh reported success")
	}
	if !pagerank.IsNotConverged(err) {
		t.Fatalf("refresh error %v does not wrap ErrNotConverged", err)
	}
	if st.Load() != served || st.Epoch() != 1 {
		t.Fatalf("non-converged refresh disturbed the served snapshot (epoch %d)", st.Epoch())
	}
	if rec, ok := st.Load().Lookup("a.example"); !ok || rec.Epoch != 1 {
		t.Fatalf("old snapshot no longer serving: %+v %v", rec, ok)
	}
}

func TestRefreshNilSnapshotBuilder(t *testing.T) {
	st := NewStore()
	ref := NewRefresher(st, func(context.Context, *Snapshot, int64) (*Snapshot, error) {
		return nil, nil
	}, RefresherConfig{})
	err := ref.Refresh(context.Background())
	if err == nil || !strings.Contains(err.Error(), "neither snapshot nor error") {
		t.Fatalf("nil/nil build returned %v", err)
	}
}

func TestRefresherRunTriggerAndCancel(t *testing.T) {
	h := testHostGraph(t)
	st := NewStore()
	ref := NewRefresher(st, estimatorBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()), RefresherConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		ref.Run(ctx)
	}()
	ref.Trigger()
	deadline := time.Now().Add(10 * time.Second)
	for st.Epoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("triggered refresh never published")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not exit on context cancel")
	}
}

func TestRefresherTimerDriven(t *testing.T) {
	h := testHostGraph(t)
	st := NewStore()
	ref := NewRefresher(st, estimatorBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()),
		RefresherConfig{Interval: 5 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ref.Run(ctx)
	deadline := time.Now().Add(10 * time.Second)
	for st.Epoch() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("timer produced only epoch %d", st.Epoch())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRefreshTimeoutConfig(t *testing.T) {
	st := NewStore()
	ref := NewRefresher(st, func(ctx context.Context, prev *Snapshot, epoch int64) (*Snapshot, error) {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("build aborted: %w", ctx.Err())
		case <-time.After(10 * time.Second):
			return nil, errors.New("timeout never fired")
		}
	}, RefresherConfig{Timeout: 10 * time.Millisecond})
	err := ref.Refresh(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("refresh with 10ms budget returned %v, want deadline exceeded", err)
	}
}
