package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spammass/internal/delta"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
)

// coreBuilder is estimatorBuilder plus the carried core: the snapshot
// records which nodes the estimates came from, which is what the delta
// path needs to remap the core onto the next generation.
func coreBuilder(h *graph.HostGraph, core []graph.NodeID, solver pagerank.Config) BuildFunc {
	return func(ctx context.Context, prev *Snapshot, epoch int64) (*Snapshot, error) {
		opts := mass.Options{Solver: solver, Gamma: 0.85}
		est, err := mass.EstimateFromCore(h.Graph, core, opts)
		if err != nil {
			return nil, err
		}
		cfg := SnapshotConfig{Detect: mass.DefaultDetectConfig(), Gamma: 0.85, Core: core}
		return NewSnapshot(h, est, cfg, epoch)
	}
}

// newDeltaRefresher wires the production delta path over the 5-host
// test graph and publishes the first generation.
func newDeltaRefresher(t *testing.T) (*graph.HostGraph, *Store, *Refresher) {
	t.Helper()
	h := testHostGraph(t)
	st := NewStore()
	apply := NewDeltaBuilder(DeltaBuilderConfig{Solver: pagerank.DefaultConfig()})
	ref := NewRefresher(st, coreBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()),
		RefresherConfig{ApplyDelta: apply})
	if err := ref.Refresh(context.Background()); err != nil {
		t.Fatalf("initial refresh: %v", err)
	}
	return h, st, ref
}

func deltaText(t *testing.T, b *delta.Batch) string {
	t.Helper()
	var buf bytes.Buffer
	if err := delta.WriteText(&buf, b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.String()
}

func waitEpoch(t *testing.T, st *Store, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for st.Epoch() < want {
		if time.Now().After(deadline) {
			t.Fatalf("store stuck at epoch %d, want %d", st.Epoch(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestApplyDeltaAdvancesEpoch applies one mutation batch synchronously
// and holds the published snapshot to the cold-rebuild standard: the
// epoch advances by one, the new host is served, and the warm-started
// estimates match a from-scratch estimation of the mutated graph.
func TestApplyDeltaAdvancesEpoch(t *testing.T) {
	h, st, ref := newDeltaRefresher(t)
	b := &delta.Batch{Ops: []delta.Op{
		delta.AddHostOp("f.example"),
		delta.AddEdgeOp("e.example", "f.example"),
		delta.RemoveEdgeOp("a.example", "e.example"),
	}}
	if err := ref.ApplyDelta(context.Background(), b); err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	snap := st.Load()
	if snap.Epoch() != 2 {
		t.Fatalf("epoch %d after delta, want 2", snap.Epoch())
	}
	if ref.DeltaCount() != 1 {
		t.Fatalf("DeltaCount %d, want 1", ref.DeltaCount())
	}
	rec, ok := snap.Lookup("f.example")
	if !ok {
		t.Fatal("created host not served")
	}
	if rec.Epoch != 2 {
		t.Fatalf("new host record epoch %d, want 2", rec.Epoch)
	}
	if got := snap.NumHosts(); got != 6 {
		t.Fatalf("snapshot has %d hosts, want 6", got)
	}
	if st := snap.Estimates().SolveStats; st == nil || !st.WarmStarted {
		t.Error("delta-built snapshot not marked warm-started")
	}
	if core := snap.Core(); len(core) != 2 {
		t.Fatalf("carried core has %d nodes, want 2", len(core))
	}

	// Parity with a cold rebuild of the same mutated graph.
	res, err := delta.Apply(h, b)
	if err != nil {
		t.Fatalf("scratch apply: %v", err)
	}
	cold, err := mass.EstimateFromCore(res.Hosts.Graph, res.RemapNodes([]graph.NodeID{0, 1}), mass.DefaultOptions())
	if err != nil {
		t.Fatalf("cold estimate: %v", err)
	}
	if d := snap.Estimates().P.Clone().Sub(cold.P).Norm1(); d > 1e-9 {
		t.Errorf("warm snapshot p vs cold rebuild: L1 = %.3e", d)
	}
}

// TestApplyDeltaConflictKeepsSnapshot feeds a conflicting batch and
// asserts graceful degradation: the error surfaces, the previous
// snapshot keeps serving, and nothing counts as applied.
func TestApplyDeltaConflictKeepsSnapshot(t *testing.T) {
	_, st, ref := newDeltaRefresher(t)
	before := st.Load()
	b := &delta.Batch{Ops: []delta.Op{delta.RemoveHostOp("nosuch.example")}}
	err := ref.ApplyDelta(context.Background(), b)
	if err == nil {
		t.Fatal("conflicting batch applied without error")
	}
	if !strings.Contains(err.Error(), "unknown host") {
		t.Errorf("conflict error %q does not name the cause", err)
	}
	if st.Load() != before {
		t.Error("conflicting delta replaced the snapshot")
	}
	if ref.DeltaCount() != 0 {
		t.Errorf("DeltaCount %d after failed apply, want 0", ref.DeltaCount())
	}
	if _, failed := ref.Counts(); failed != 1 {
		t.Errorf("failed count %d, want 1", failed)
	}
	if ref.LastError() == nil {
		t.Error("LastError empty after failed apply")
	}
}

// TestApplyDeltaPreconditions covers the refusal paths: an
// unconfigured delta pipeline, an empty batch, a missing base
// snapshot, and a base snapshot that carries no core.
func TestApplyDeltaPreconditions(t *testing.T) {
	h := testHostGraph(t)
	ctx := context.Background()
	b := &delta.Batch{Ops: []delta.Op{delta.AddHostOp("f.example")}}

	plain := NewRefresher(NewStore(), coreBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()), RefresherConfig{})
	if err := plain.ApplyDelta(ctx, b); err == nil {
		t.Error("ApplyDelta accepted without a configured delta path")
	}
	if err := plain.SubmitDelta(b); err == nil {
		t.Error("SubmitDelta accepted without a configured delta path")
	}
	if plain.DeltaEnabled() {
		t.Error("DeltaEnabled true without ApplyDelta")
	}

	apply := NewDeltaBuilder(DeltaBuilderConfig{Solver: pagerank.DefaultConfig()})
	ref := NewRefresher(NewStore(), coreBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()),
		RefresherConfig{ApplyDelta: apply})
	if !ref.DeltaEnabled() {
		t.Error("DeltaEnabled false with ApplyDelta configured")
	}
	if err := ref.ApplyDelta(ctx, &delta.Batch{}); err == nil {
		t.Error("empty batch accepted")
	}
	if err := ref.SubmitDelta(nil); err == nil {
		t.Error("nil batch submitted")
	}
	if err := ref.ApplyDelta(ctx, b); err == nil || !strings.Contains(err.Error(), "no snapshot") {
		t.Errorf("delta before first refresh: err = %v, want a no-snapshot error", err)
	}

	// A base snapshot without a carried core cannot seed the delta path.
	coreless := NewRefresher(NewStore(), estimatorBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()),
		RefresherConfig{ApplyDelta: apply})
	if err := coreless.Refresh(ctx); err != nil {
		t.Fatalf("coreless refresh: %v", err)
	}
	if err := coreless.ApplyDelta(ctx, b); err == nil || !strings.Contains(err.Error(), "core") {
		t.Errorf("coreless delta apply: err = %v, want a missing-core error", err)
	}
}

// TestSubmitDeltaRunLoop drives the asynchronous path: a submitted
// batch is picked up by the Run loop and published without any
// synchronous call.
func TestSubmitDeltaRunLoop(t *testing.T) {
	_, st, ref := newDeltaRefresher(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		ref.Run(ctx)
	}()

	b := &delta.Batch{Ops: []delta.Op{delta.AddEdgeOp("b.example", "e.example")}}
	if err := ref.SubmitDelta(b); err != nil {
		t.Fatalf("SubmitDelta: %v", err)
	}
	waitEpoch(t, st, 2)
	if ref.DeltaCount() != 1 {
		t.Errorf("DeltaCount %d after async apply, want 1", ref.DeltaCount())
	}
	cancel()
	<-done
}

// TestDeltaEndpoint walks POST /admin/delta through its status codes:
// 501 unconfigured, 400 unparseable, 200 applied with ?wait=1, 409 on
// conflict with the snapshot untouched, 202 queued without ?wait, and
// the /admin/status fields that report the path.
func TestDeltaEndpoint(t *testing.T) {
	// No delta path at all → 501.
	h := testHostGraph(t)
	plainRef := NewRefresher(NewStore(), coreBuilder(h, []graph.NodeID{0, 1}, pagerank.DefaultConfig()), RefresherConfig{})
	plain := httptest.NewServer(NewServer(NewStore(), plainRef, Config{}).Handler())
	defer plain.Close()
	resp, err := http.Post(plain.URL+"/admin/delta", "text/plain", strings.NewReader("delta 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unconfigured delta endpoint: status %d, want 501", resp.StatusCode)
	}

	_, st, ref := newDeltaRefresher(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go ref.Run(ctx)
	ts := httptest.NewServer(NewServer(st, ref, Config{}).Handler())
	defer ts.Close()
	post := func(path, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
		return resp.StatusCode, out
	}

	if code, _ := post("/admin/delta", "not a delta\n"); code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", code)
	}

	add := deltaText(t, &delta.Batch{Ops: []delta.Op{delta.AddEdgeOp("b.example", "e.example")}})
	code, body := post("/admin/delta?wait=1", add)
	if code != http.StatusOK {
		t.Fatalf("wait=1 apply: status %d body %v, want 200", code, body)
	}
	if body["epoch"].(float64) != 2 {
		t.Fatalf("wait=1 apply reported epoch %v, want 2", body["epoch"])
	}

	// The same edge again conflicts; the serving snapshot must survive.
	if code, _ := post("/admin/delta?wait=1", add); code != http.StatusConflict {
		t.Fatalf("conflicting apply: status %d, want 409", code)
	}
	if st.Epoch() != 2 {
		t.Fatalf("epoch %d after conflict, want 2", st.Epoch())
	}

	remove := deltaText(t, &delta.Batch{Ops: []delta.Op{delta.RemoveEdgeOp("b.example", "e.example")}})
	code, body = post("/admin/delta", remove)
	if code != http.StatusAccepted {
		t.Fatalf("queued apply: status %d body %v, want 202", code, body)
	}
	waitEpoch(t, st, 3)

	var status StatusResponse
	if code := getJSON(t, ts.URL+"/admin/status", &status); code != http.StatusOK {
		t.Fatalf("status endpoint: %d", code)
	}
	if !status.DeltaEnabled {
		t.Error("status does not report the delta path enabled")
	}
	if status.DeltaBatches != 2 {
		t.Errorf("status reports %d delta batches, want 2", status.DeltaBatches)
	}
	if status.Epoch != 3 {
		t.Errorf("status epoch %d, want 3", status.Epoch)
	}
}

// TestConcurrentDeltaDuringLookups is the delta-path swap hammer, run
// under -race: one writer applies mutation batches, another forces
// full rebuilds, and reader goroutines hammer the query and status
// endpoints throughout. Readers must never see a non-200 response or
// an epoch moving backwards; conflicts between the two writers (a
// delta against a graph the full rebuild just reset) are expected and
// must only fail the batch, never the serving path.
func TestConcurrentDeltaDuringLookups(t *testing.T) {
	const (
		targetEpoch = 30
		readers     = 6
	)
	_, st, ref := newDeltaRefresher(t)
	ts := httptest.NewServer(NewServer(st, ref, Config{MaxInFlight: readers * 4}).Handler())
	defer ts.Close()

	done := make(chan struct{})
	errc := make(chan error, readers+2)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			client := &http.Client{}
			paths := []string{"/v1/host/a.example", "/admin/status"}
			lastEpoch := int64(0)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				resp, err := client.Get(ts.URL + paths[i%len(paths)])
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", id, err)
					return
				}
				var body struct {
					Epoch int64 `json:"epoch"`
				}
				err = json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("reader %d: status %d during delta hammer", id, resp.StatusCode)
					return
				}
				if err != nil {
					errc <- fmt.Errorf("reader %d: decode: %v", id, err)
					return
				}
				if body.Epoch < lastEpoch {
					errc <- fmt.Errorf("reader %d: epoch went backwards %d -> %d", id, lastEpoch, body.Epoch)
					return
				}
				lastEpoch = body.Epoch
			}
		}(g)
	}

	// Writer 1: mutation batches, alternating add/remove of one edge.
	// Full rebuilds racing in from writer 2 reset the graph underneath
	// it, so some batches conflict — those must fail cleanly.
	var deltaOK atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			op := delta.AddEdgeOp("b.example", "e.example")
			if i%2 == 1 {
				op = delta.RemoveEdgeOp("b.example", "e.example")
			}
			if err := ref.ApplyDelta(ctx, &delta.Batch{Ops: []delta.Op{op}}); err == nil {
				deltaOK.Add(1)
			}
		}
	}()

	// Writer 2: full rebuilds from the base graph.
	var refreshOK atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := ref.Refresh(ctx); err != nil {
				errc <- fmt.Errorf("full refresh: %v", err)
				return
			}
			refreshOK.Add(1)
		}
	}()

	// Run until both writers have demonstrably interleaved: rebuilds on
	// this tiny graph are fast enough to hit the target epoch before
	// the delta writer is even scheduled, so the epoch alone is not a
	// stopping condition.
	deadline := time.Now().Add(30 * time.Second)
	for st.Epoch() < targetEpoch || deltaOK.Load() < 5 || refreshOK.Load() < 5 {
		select {
		case err := <-errc:
			close(done)
			wg.Wait()
			t.Fatal(err)
		default:
		}
		if time.Now().After(deadline) {
			close(done)
			wg.Wait()
			t.Fatalf("hammer stalled at epoch %d, want %d", st.Epoch(), targetEpoch)
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if deltaOK.Load() == 0 {
		t.Error("no delta batch ever applied during the hammer")
	}
	if refreshOK.Load() == 0 {
		t.Error("no full refresh ever completed during the hammer")
	}
	t.Logf("hammer: %d deltas applied, %d full refreshes, final epoch %d",
		deltaOK.Load(), refreshOK.Load(), st.Epoch())
}
