// Package cliobs wires the observability flags shared by the CLIs
// (-report, -trace, -debug-addr, -v) to one obs pipeline: a metrics
// registry, a root span for the run, an optional stderr line logger,
// and an optional pprof/expvar debug endpoint. Each command registers
// the flags, Starts a pipeline, threads Pipeline.Ctx through the
// libraries, fills the report's domain sections, and Closes.
package cliobs

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"spammass/internal/graph"
	"spammass/internal/obs"
)

// Options holds the shared observability flag values.
type Options struct {
	// Report is the -report path: a JSON RunReport of the run.
	Report string
	// Trace is the -trace path: the JSON span trace alone.
	Trace string
	// DebugAddr is the -debug-addr listen address for /debug/vars and
	// /debug/pprof/.
	DebugAddr string
	// MetricsOut is the -metrics-out path: the run's final metrics in
	// Prometheus text format, for pushing into file-based collectors
	// (node_exporter textfile directory) from batch jobs.
	MetricsOut string
	// Verbose is -v: per-iteration solver residuals on stderr.
	Verbose bool
}

// Register installs the shared observability flags on fs.
func (o *Options) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.Report, "report", "", "write a JSON run report (graph, solves, mass, metrics, trace) to this file")
	fs.StringVar(&o.Trace, "trace", "", "write the JSON span trace to this file")
	fs.StringVar(&o.DebugAddr, "debug-addr", "", "serve /debug/vars and /debug/pprof/ on this address while running")
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write final metrics in Prometheus text format to this file")
	fs.BoolVar(&o.Verbose, "v", false, "print per-iteration solver residual traces to stderr")
}

// Pipeline owns the observability sinks of one CLI run.
type Pipeline struct {
	// Ctx is threaded through the pipeline (pagerank.Config.Obs and
	// friends). It is nil when no sink was requested, keeping the
	// instrumented code on its no-op path.
	Ctx *obs.Context
	// Report is non-nil when -report was given. The CLI fills the
	// domain sections (Graph, Solves, Mass, Detections) before Close;
	// metrics and trace are captured by Close itself.
	Report *obs.RunReport

	opts Options
	reg  *obs.Registry
	root *obs.Span
	dbg  *obs.DebugServer
}

// Start builds the pipeline for the named tool from parsed options.
// args go into the report verbatim (pass os.Args[1:]).
func Start(tool string, o Options, args []string) (*Pipeline, error) {
	p := &Pipeline{opts: o}
	if o.Report != "" || o.DebugAddr != "" || o.MetricsOut != "" {
		p.reg = obs.NewRegistry()
	}
	if o.Report != "" || o.Trace != "" {
		p.root = obs.NewSpan(tool)
	}
	if p.reg != nil || p.root != nil || o.Verbose {
		p.Ctx = obs.NewContext(p.reg, p.root)
		if o.Verbose {
			p.Ctx = p.Ctx.WithLogf(obs.StderrLogf(os.Stderr))
		}
	}
	if o.Report != "" {
		p.Report = obs.NewRunReport(tool, args)
	}
	if o.DebugAddr != "" {
		dbg, err := obs.StartDebug(o.DebugAddr, p.reg)
		if err != nil {
			return nil, err
		}
		p.dbg = dbg
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/vars http://%s/debug/pprof/\n", dbg.Addr(), dbg.Addr())
	}
	return p, nil
}

// Root returns the run's root span, or nil when neither -report nor
// -trace was requested.
func (p *Pipeline) Root() *obs.Span {
	if p == nil {
		return nil
	}
	return p.root
}

// Close ends the root span, writes the report and trace files, and
// stops the debug server. Safe on a nil pipeline; returns the first
// error encountered.
func (p *Pipeline) Close() error {
	if p == nil {
		return nil
	}
	p.root.End()
	var firstErr error
	if p.Report != nil {
		p.Report.Finish(p.reg, p.root)
		if err := writeTo(p.opts.Report, p.Report.Write); err != nil {
			firstErr = err
		}
	}
	if p.opts.Trace != "" && p.root != nil {
		err := writeTo(p.opts.Trace, func(w io.Writer) error { return obs.WriteTrace(w, p.root) })
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if p.opts.MetricsOut != "" && p.reg != nil {
		err := writeTo(p.opts.MetricsOut, func(w io.Writer) error { return p.reg.WritePrometheus(w) })
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Drain in-flight debug scrapes briefly, then force-close; a
	// deadline here is not an error — the port is already released and
	// lingering connections were torn down by Shutdown's fallback.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := p.dbg.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// LoadLines reads path into one string per line, whitespace-trimmed.
// It is the shared line-file loader of the CLIs (names, labels).
func LoadLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		out = append(out, strings.TrimSpace(sc.Text()))
	}
	return out, sc.Err()
}

// LoadNodeIDs reads a node-ID file — one decimal ID per line, blank
// lines and #-comments skipped — validating every ID against a graph
// of n nodes. It is the shared core/seed loader of the CLIs.
func LoadNodeIDs(path string, n int) ([]graph.NodeID, error) {
	lines, err := LoadLines(path)
	if err != nil {
		return nil, err
	}
	var ids []graph.NodeID
	for _, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id, err := strconv.ParseUint(line, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad node ID %q: %w", line, err)
		}
		if int(id) >= n {
			return nil, fmt.Errorf("node %d outside graph of %d nodes", id, n)
		}
		ids = append(ids, graph.NodeID(id))
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no node IDs in %s", path)
	}
	return ids, nil
}

func writeTo(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
