package cliobs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"spammass/internal/obs"
)

func TestRegisterFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var o Options
	o.Register(fs)
	if err := fs.Parse([]string{"-report", "r.json", "-trace", "t.json", "-debug-addr", ":0", "-v"}); err != nil {
		t.Fatal(err)
	}
	if o.Report != "r.json" || o.Trace != "t.json" || o.DebugAddr != ":0" || !o.Verbose {
		t.Fatalf("parsed options: %+v", o)
	}
}

func TestStartNoSinks(t *testing.T) {
	p, err := Start("tool", Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ctx != nil {
		t.Fatal("no sinks requested but context is non-nil; instrumentation would leave its no-op path")
	}
	if p.Report != nil || p.Root() != nil {
		t.Fatalf("unexpected sinks: %+v", p)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStartReportAndTrace(t *testing.T) {
	dir := t.TempDir()
	o := Options{
		Report: filepath.Join(dir, "report.json"),
		Trace:  filepath.Join(dir, "trace.json"),
	}
	p, err := Start("tool", o, []string{"-x", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Ctx == nil || p.Report == nil || p.Root() == nil {
		t.Fatal("report run must carry context, report, and root span")
	}
	sp := p.Ctx.Span("stage")
	p.Ctx.Counter("c").Add(3)
	sp.End()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(o.Report)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Tool != "tool" || len(rep.Args) != 2 {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Metrics == nil || rep.Metrics.Counters["c"] != 3 {
		t.Fatalf("report metrics: %+v", rep.Metrics)
	}
	if rep.Trace == nil || rep.Trace.Find("stage") == nil {
		t.Fatalf("report trace misses the stage span: %+v", rep.Trace)
	}

	raw, err = os.ReadFile(o.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr obs.SpanJSON
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.Name != "tool" || tr.Find("stage") == nil {
		t.Fatalf("trace tree: %+v", tr)
	}
}

func TestStartMetricsOut(t *testing.T) {
	dir := t.TempDir()
	o := Options{MetricsOut: filepath.Join(dir, "metrics.prom")}
	p, err := Start("tool", o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ctx == nil {
		t.Fatal("-metrics-out alone must still create a registry-backed context")
	}
	if p.Report != nil || p.Root() != nil {
		t.Fatal("-metrics-out alone must not create report or root span")
	}
	p.Ctx.Counter("tool.items_total").Add(7)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(o.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fams, err := obs.ParsePrometheus(f)
	if err != nil {
		t.Fatalf("metrics file does not parse as Prometheus text: %v", err)
	}
	found := false
	for _, fam := range fams {
		if fam.Name == "tool_items_total" {
			found = true
		}
	}
	if !found {
		t.Fatalf("metrics file misses tool_items_total: %+v", fams)
	}
}

func TestStartVerboseOnly(t *testing.T) {
	p, err := Start("tool", Options{Verbose: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ctx == nil || !p.Ctx.Logging() {
		t.Fatal("verbose run must carry a logging context")
	}
	if p.Report != nil || p.Root() != nil {
		t.Fatal("verbose alone must not create report or root span")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
