package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogBins(t *testing.T) {
	edges, err := LogBins(1, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) < 4 {
		t.Fatalf("got %d edges for 3 decades, want at least 4", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		ratio := edges[i] / edges[i-1]
		if math.Abs(ratio-10) > 1e-9 {
			t.Errorf("edge ratio %v, want 10", ratio)
		}
	}
	if edges[len(edges)-1] < 1000 {
		t.Errorf("last edge %v does not cover max 1000", edges[len(edges)-1])
	}
}

func TestLogBinsErrors(t *testing.T) {
	cases := []struct {
		min, max float64
		per      int
	}{
		{0, 10, 1}, {-1, 10, 1}, {10, 10, 1}, {10, 5, 1}, {1, 10, 0},
	}
	for _, c := range cases {
		if _, err := LogBins(c.min, c.max, c.per); err == nil {
			t.Errorf("LogBins(%v,%v,%d) accepted", c.min, c.max, c.per)
		}
	}
}

func TestHistogram(t *testing.T) {
	edges := []float64{1, 10, 100, 1000}
	values := []float64{1, 2, 5, 10, 50, 500, 999, 1000, 0.5}
	bins, err := Histogram(values, edges)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 3 {
		t.Fatalf("%d bins, want 3", len(bins))
	}
	// 1000 and 0.5 fall outside [1, 1000); 10 sits exactly on an edge
	// and belongs to the second bin.
	if bins[0].Count != 3 || bins[1].Count != 2 || bins[2].Count != 2 {
		t.Errorf("counts = %d/%d/%d, want 3/2/2", bins[0].Count, bins[1].Count, bins[2].Count)
	}
	total := 0.0
	for _, b := range bins {
		total += b.Density * (b.Hi - b.Lo)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("densities integrate to %v, want 1", total)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := Histogram(nil, []float64{1}); err == nil {
		t.Error("single edge accepted")
	}
	if _, err := Histogram(nil, []float64{2, 1}); err == nil {
		t.Error("decreasing edges accepted")
	}
}

func TestPowerLawMLERecoversExponent(t *testing.T) {
	// Sample from a pure power law x = xmin·(1−u)^(−1/(α−1)) and
	// verify MLE recovery within a few percent.
	rng := rand.New(rand.NewSource(42))
	for _, alpha := range []float64{1.8, 2.31, 3.0} {
		values := make([]float64, 20000)
		for i := range values {
			values[i] = math.Pow(1-rng.Float64(), -1/(alpha-1))
		}
		got, n, err := PowerLawMLE(values, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(values) {
			t.Errorf("alpha=%v: used %d of %d observations", alpha, n, len(values))
		}
		if math.Abs(got-alpha) > 0.06 {
			t.Errorf("alpha=%v: MLE recovered %v", alpha, got)
		}
	}
}

func TestPowerLawMLEErrors(t *testing.T) {
	if _, _, err := PowerLawMLE([]float64{1, 2}, 0); err == nil {
		t.Error("xmin 0 accepted")
	}
	if _, _, err := PowerLawMLE([]float64{0.1, 0.2}, 1); err == nil {
		t.Error("empty tail accepted")
	}
	if _, _, err := PowerLawMLE([]float64{1, 1, 1}, 1); err == nil {
		t.Error("degenerate tail accepted")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("fit = %vx + %v, want 2x + 1", slope, intercept)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestPowerLawRegression(t *testing.T) {
	// Build bins whose density follows x^-2.5 exactly.
	edges, err := LogBins(1, 1e4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	alpha := 2.5
	values := make([]float64, 200000)
	for i := range values {
		values[i] = math.Pow(1-rng.Float64(), -1/(alpha-1))
	}
	bins, err := Histogram(values, edges)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PowerLawRegression(bins)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(-alpha)) > 0.3 {
		t.Errorf("regression exponent %v, want ≈ %v", got, -alpha)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	for _, c := range []struct{ q, want float64 }{{0, 1}, {0.2, 1}, {0.5, 3}, {1, 5}} {
		got, err := Quantile(v, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty slice accepted")
	}
	if _, err := Quantile(v, 1.5); err == nil {
		t.Error("q > 1 accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4}, 3)
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Errorf("summary = %+v", s)
	}
	if got := s.FracBelow[3]; got != 0.5 {
		t.Errorf("FracBelow[3] = %v, want 0.5", got)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary N = %d", empty.N)
	}
}

func TestHistogramPropertyTotalCount(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		values := make([]float64, 200)
		inRange := 0
		for i := range values {
			values[i] = rng.Float64() * 2000
			if values[i] >= 1 && values[i] < 1000 {
				inRange++
			}
		}
		edges, err := LogBins(1, 999, 5)
		if err != nil {
			return false
		}
		// The last edge may exceed 999; count against actual coverage.
		hi := edges[len(edges)-1]
		inRange = 0
		for _, v := range values {
			if v >= 1 && v < hi {
				inRange++
			}
		}
		bins, err := Histogram(values, edges)
		if err != nil {
			return false
		}
		total := int64(0)
		for _, b := range bins {
			total += b.Count
		}
		return total == int64(inRange)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAUC(t *testing.T) {
	// Perfect separation.
	got, err := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []bool{false, false, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("perfect separation AUC = %v, want 1", got)
	}
	// Perfectly inverted.
	got, err = AUC([]float64{0.9, 0.8, 0.2, 0.1}, []bool{false, false, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("inverted AUC = %v, want 0", got)
	}
	// All ties: chance level with half-credit.
	got, err = AUC([]float64{1, 1, 1, 1}, []bool{true, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("all-ties AUC = %v, want 0.5", got)
	}
	// Hand-computable mix: scores 1,2,3,4 with positives at 2 and 4.
	// Pairs (pos > neg): (2>1), (4>1), (4>3) = 3 of 4 → 0.75.
	got, err = AUC([]float64{1, 2, 3, 4}, []bool{false, true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("mixed AUC = %v, want 0.75", got)
	}
	if _, err := AUC([]float64{1}, []bool{true}); err == nil {
		t.Error("single-class input accepted")
	}
	if _, err := AUC(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

// TestAUCRandomChanceLevel: random scores against random labels hover
// around 0.5.
func TestAUCRandomChanceLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	scores := make([]float64, 5000)
	labels := make([]bool, 5000)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < 0.3
	}
	got, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 0.03 {
		t.Errorf("random AUC = %v, want ≈ 0.5", got)
	}
}
