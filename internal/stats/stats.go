// Package stats provides the statistical utilities the experiments
// rely on: logarithmic binning, power-law fitting (both MLE and
// log-log regression over binned densities), and simple descriptive
// summaries. Power-law structure is central to the paper: in-degrees,
// out-degrees, PageRank scores, and positive spam-mass estimates all
// follow power laws (Sections 4.3 and 4.6, Figure 6).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// LogBins returns bin edges covering [min, max] with perDecade
// logarithmically spaced bins per factor of ten. min must be positive
// and less than max.
func LogBins(min, max float64, perDecade int) ([]float64, error) {
	if min <= 0 || max <= min || perDecade <= 0 {
		return nil, fmt.Errorf("stats: bad log bins [%v,%v] x%d", min, max, perDecade)
	}
	step := math.Pow(10, 1/float64(perDecade))
	var edges []float64
	for e := min; e < max*step; e *= step {
		edges = append(edges, e)
	}
	return edges, nil
}

// Bin is one histogram bin: [Lo, Hi) with Count observations.
// Density is Count normalized by total observations and bin width,
// the quantity plotted on the vertical axis of Figure 6.
type Bin struct {
	Lo, Hi  float64
	Count   int64
	Density float64
}

// Center returns the geometric center of the bin, the natural
// abscissa on a log axis.
func (b Bin) Center() float64 { return math.Sqrt(b.Lo * b.Hi) }

// Histogram bins the values using the given ascending edges; values
// outside [edges[0], edges[len-1]) are ignored. It returns one Bin per
// edge pair.
func Histogram(values []float64, edges []float64) ([]Bin, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("stats: need at least 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("stats: edges not increasing at %d", i)
		}
	}
	bins := make([]Bin, len(edges)-1)
	for i := range bins {
		bins[i].Lo, bins[i].Hi = edges[i], edges[i+1]
	}
	total := int64(0)
	for _, v := range values {
		if v < edges[0] || v >= edges[len(edges)-1] {
			continue
		}
		// Binary search for the bin.
		i := sort.SearchFloat64s(edges, v)
		if i < len(edges) && edges[i] == v {
			// v sits exactly on edge i: it belongs to bin i.
		} else {
			i--
		}
		if i >= 0 && i < len(bins) {
			bins[i].Count++
			total++
		}
	}
	if total > 0 {
		for i := range bins {
			bins[i].Density = float64(bins[i].Count) / (float64(total) * (bins[i].Hi - bins[i].Lo))
		}
	}
	return bins, nil
}

// PowerLawMLE fits the exponent of a continuous power law
// p(x) ∝ x^(−α) to the values ≥ xmin, by maximum likelihood:
// α = 1 + n / Σ ln(xᵢ/xmin). It returns the exponent and the number
// of tail observations used.
func PowerLawMLE(values []float64, xmin float64) (alpha float64, n int, err error) {
	if xmin <= 0 {
		return 0, 0, fmt.Errorf("stats: xmin %v must be positive", xmin)
	}
	sum := 0.0
	for _, v := range values {
		if v >= xmin {
			sum += math.Log(v / xmin)
			n++
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("stats: no observations at or above xmin %v", xmin)
	}
	if sum == 0 {
		return 0, n, fmt.Errorf("stats: all %d tail observations equal xmin", n)
	}
	return 1 + float64(n)/sum, n, nil
}

// LinearFit returns the least-squares slope and intercept of y on x.
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, fmt.Errorf("stats: need ≥2 paired points, got %d/%d", len(x), len(y))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(x))
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// PowerLawRegression fits log(density) against log(x) over non-empty
// log bins — the way power-law exponents are usually read off plots
// like Figure 6. Returns the slope (the exponent, negative for decays).
func PowerLawRegression(bins []Bin) (exponent float64, err error) {
	var lx, ly []float64
	for _, b := range bins {
		if b.Count > 0 && b.Density > 0 {
			lx = append(lx, math.Log10(b.Center()))
			ly = append(ly, math.Log10(b.Density))
		}
	}
	if len(lx) < 2 {
		return 0, fmt.Errorf("stats: only %d non-empty bins, need ≥2", len(lx))
	}
	slope, _, err := LinearFit(lx, ly)
	return slope, err
}

// AUC returns the area under the ROC curve for a scored binary
// classification: the probability that a uniformly random positive
// example scores above a uniformly random negative one, with ties
// counted half. It is the threshold-free quality measure used to
// compare detectors whose score scales differ (relative mass vs
// SpamRank deviation vs inverted trust).
func AUC(scores []float64, positive []bool) (float64, error) {
	if len(scores) != len(positive) || len(scores) == 0 {
		return 0, fmt.Errorf("stats: AUC needs matched non-empty scores/labels, got %d/%d", len(scores), len(positive))
	}
	type pair struct {
		score float64
		pos   bool
	}
	pairs := make([]pair, len(scores))
	nPos, nNeg := 0, 0
	for i := range scores {
		pairs[i] = pair{scores[i], positive[i]}
		if positive[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0, fmt.Errorf("stats: AUC needs both classes (%d positive, %d negative)", nPos, nNeg)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].score < pairs[j].score })
	// Rank-sum (Mann-Whitney) with average ranks over ties.
	rankSumPos := 0.0
	i := 0
	for i < len(pairs) {
		j := i
		for j < len(pairs) && pairs[j].score == pairs[i].score {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			if pairs[k].pos {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	return (rankSumPos - float64(nPos)*float64(nPos+1)/2) / (float64(nPos) * float64(nNeg)), nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the values using
// nearest-rank on a sorted copy.
func Quantile(values []float64, q float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i], nil
}

// Summary holds simple descriptive statistics.
type Summary struct {
	N         int
	Min, Max  float64
	Mean      float64
	Median    float64
	FracBelow map[float64]float64 // threshold → fraction strictly below
}

// Summarize computes a Summary; thresholds populate FracBelow (used to
// report e.g. "91.1% of hosts have scaled PageRank below 2").
func Summarize(values []float64, thresholds ...float64) Summary {
	s := Summary{N: len(values), FracBelow: map[float64]float64{}}
	if len(values) == 0 {
		return s
	}
	s.Min, s.Max = values[0], values[0]
	sum := 0.0
	for _, v := range values {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(values))
	s.Median, _ = Quantile(values, 0.5)
	for _, th := range thresholds {
		below := 0
		for _, v := range values {
			if v < th {
				below++
			}
		}
		s.FracBelow[th] = float64(below) / float64(len(values))
	}
	return s
}
