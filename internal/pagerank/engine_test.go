package pagerank

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/testutil"
)

// danglingHeavyGraph builds a random graph where roughly a third of the
// nodes have no out-links, stressing the dangling-mass handling that
// distinguishes the linear solvers from the power iteration.
func danglingHeavyGraph(rng *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for x := 0; x < n; x++ {
		if x%3 == 0 {
			continue // dangling
		}
		deg := 1 + rng.Intn(5)
		for i := 0; i < deg; i++ {
			y := graph.NodeID(rng.Intn(n))
			b.AddEdge(graph.NodeID(x), y)
		}
	}
	return b.Build()
}

func TestEngineMatchesFreeFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := testutil.RandomGraph(rng, 600, 5)
	v := UniformJump(g.NumNodes())
	eng, err := NewEngine(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, algo := range []Algorithm{AlgoJacobi, AlgoGaussSeidel, AlgoPowerIteration} {
		cfg := DefaultConfig()
		cfg.Algorithm = algo
		want, err := Solve(g, v, cfg)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		got, err := eng.SolveConfig(v, cfg)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if d := testutil.MaxAbsDiff(want.Scores, got.Scores); d > 1e-12 {
			t.Errorf("%v: engine and free function differ by %v", algo, d)
		}
		if got.Stats == nil || got.Stats.Iterations == 0 || got.Stats.EdgesSwept == 0 {
			t.Errorf("%v: missing solve stats: %+v", algo, got.Stats)
		}
	}
}

func TestEngineNotConvergedError(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 0}, {2, 0}})
	eng, err := NewEngine(g, Config{Damping: 0.85, Epsilon: 1e-300, MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Solve(UniformJump(3))
	if !IsNotConverged(err) {
		t.Fatalf("err = %v, want *ErrNotConverged", err)
	}
	if res == nil || res.Converged {
		t.Fatalf("want truncated result alongside the error, got %+v", res)
	}
	// The same solve with AllowTruncated is accepted.
	cfg := eng.Config()
	cfg.AllowTruncated = true
	if _, err := eng.SolveConfig(UniformJump(3), cfg); err != nil {
		t.Fatalf("AllowTruncated solve: %v", err)
	}
}

// TestWarmStartFixpointEquivalence checks that a warm-started solve
// reaches the same fixpoint as a cold one, in no more iterations.
func TestWarmStartFixpointEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := testutil.RandomGraph(rng, 800, 6)
	n := g.NumNodes()
	eng, err := NewEngine(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	core := []graph.NodeID{1, 5, 9, 40, 77}
	w := ScaledCoreJump(n, core, 0.85)
	cold, err := eng.Solve(w)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-start a slightly perturbed system from the cold solution.
	w2 := ScaledCoreJump(n, append([]graph.NodeID{300}, core...), 0.85)
	cold2, err := eng.Solve(w2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := eng.Config()
	cfg.WarmStart = cold.Scores
	warm2, err := eng.SolveConfig(w2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := testutil.MaxAbsDiff(cold2.Scores, warm2.Scores); d > 1e-10 {
		t.Errorf("warm and cold solves disagree by %v", d)
	}
	if warm2.Iterations > cold2.Iterations {
		t.Errorf("warm start took %d iterations, cold %d", warm2.Iterations, cold2.Iterations)
	}
}

// TestSolveManyMatchesSequential checks the batched sweep against
// one-at-a-time solves for every algorithm.
func TestSolveManyMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := danglingHeavyGraph(rng, 700)
	n := g.NumNodes()
	core := []graph.NodeID{2, 17, 101, 333}
	vs := []Vector{
		UniformJump(n),
		ScaledCoreJump(n, core, 0.85),
		ScaledCoreJump(n, core[:2], 0.4),
	}
	for _, algo := range []Algorithm{AlgoJacobi, AlgoGaussSeidel} {
		cfg := DefaultConfig()
		cfg.Algorithm = algo
		eng, err := NewEngine(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := eng.SolveMany(vs)
		if err != nil {
			t.Fatalf("%v: SolveMany: %v", algo, err)
		}
		if len(batch) != len(vs) {
			t.Fatalf("%v: got %d results for %d vectors", algo, len(batch), len(vs))
		}
		for j, v := range vs {
			single, err := eng.Solve(v)
			if err != nil {
				t.Fatalf("%v: vector %d: %v", algo, j, err)
			}
			// The batch keeps iterating until the slowest vector
			// converges, so batched results are at least as converged
			// as sequential ones: agreement within a few epsilon.
			if d := testutil.MaxAbsDiff(single.Scores, batch[j].Scores); d > 1e-11 {
				t.Errorf("%v: vector %d: batched and sequential differ by %v", algo, j, d)
			}
			if !batch[j].Converged {
				t.Errorf("%v: vector %d not converged in batch", algo, j)
			}
		}
		if batch[0].Stats != batch[1].Stats {
			t.Errorf("%v: batch results should share one SolveStats", algo)
		}
		if batch[0].Stats.Batch != len(vs) {
			t.Errorf("%v: Stats.Batch = %d, want %d", algo, batch[0].Stats.Batch, len(vs))
		}
		eng.Close()
	}
}

// TestPowerIterationVsJacobiDangling reconciles the eigenvector and
// linear formulations on a dangling-heavy graph. The stationary
// distribution of the dangling-reinjected chain differs from the
// linear-system solution exactly by a per-vector scale (Vigna's
// pseudorank correction); the solver applies that correction, so raw
// scores — not just normalized ones — must agree. Spam mass compares
// absolute score differences, so a formulation-dependent scale here
// would skew every downstream relative-mass estimate.
func TestPowerIterationVsJacobiDangling(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5; trial++ {
		g := danglingHeavyGraph(rng, 200+rng.Intn(400))
		v := UniformJump(g.NumNodes())
		eng, err := NewEngine(g, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		ja, err := eng.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		cfg := eng.Config()
		cfg.Algorithm = AlgoPowerIteration
		pw, err := eng.SolveConfig(v, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := testutil.MaxAbsDiff(ja.Scores, pw.Scores); d > 1e-9 {
			t.Errorf("trial %d: raw Jacobi vs power iteration differ by %v", trial, d)
		}
		// Dangling-heavy regression anchor: with roughly a third of the
		// nodes dangling the uncorrected scales differ by ≈ c·D ≈ 20%, so
		// raw agreement above is only possible if the correction ran.
		if s := pw.Scores.Sum(); math.Abs(s-1) < 1e-6 {
			t.Errorf("trial %d: power-iteration scores sum to %v — still on the distribution scale, correction missing", trial, s)
		}
		eng.Close()
	}
}

// TestSolveManyPowerIteration batches stochastic jump vectors through
// the eigenvector solver.
func TestSolveManyPowerIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := danglingHeavyGraph(rng, 500)
	n := g.NumNodes()
	cfg := DefaultConfig()
	cfg.Algorithm = AlgoPowerIteration
	eng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	v2 := make(Vector, n)
	for i := range v2 {
		v2[i] = 1 / float64(n)
	}
	batch, err := eng.SolveMany([]Vector{UniformJump(n), v2})
	if err != nil {
		t.Fatal(err)
	}
	for j, res := range batch {
		single, err := eng.Solve([]Vector{UniformJump(n), v2}[j])
		if err != nil {
			t.Fatal(err)
		}
		if d := testutil.MaxAbsDiff(single.Scores, res.Scores); d > 1e-11 {
			t.Errorf("vector %d: batched power iteration differs by %v", j, d)
		}
	}
}

// TestEngineParallelMatchesSequential exercises the worker pool on a
// graph above the parallel threshold (also the -race regression test
// for the pool).
func TestEngineParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testutil.RandomGraph(rng, 6000, 6)
	v := UniformJump(g.NumNodes())
	seq, err := Jacobi(g, v, Config{Damping: 0.85, Epsilon: 1e-12, MaxIter: 500, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(g, Config{Damping: 0.85, Epsilon: 1e-12, MaxIter: 500, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for round := 0; round < 3; round++ { // pool reuse across solves
		par, err := eng.Solve(v)
		if err != nil {
			t.Fatal(err)
		}
		if d := testutil.MaxAbsDiff(seq.Scores, par.Scores); d > 1e-12 {
			t.Errorf("round %d: parallel and sequential Jacobi differ by %v", round, d)
		}
	}
	batch, err := eng.SolveMany([]Vector{v, v.Clone().Scale(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if d := testutil.MaxAbsDiff(seq.Scores, batch[0].Scores); d > 1e-12 {
		t.Errorf("parallel batched Jacobi differs by %v", d)
	}
}

// TestEngineConcurrentSolves hammers one engine from several
// goroutines; solves serialize internally (run with -race).
func TestEngineConcurrentSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := testutil.RandomGraph(rng, 5000, 4)
	v := UniformJump(g.NumNodes())
	eng, err := NewEngine(g, Config{Damping: 0.85, Epsilon: 1e-10, MaxIter: 300, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	want, err := eng.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := eng.Solve(v)
			if err != nil {
				t.Error(err)
				return
			}
			if d := testutil.MaxAbsDiff(want.Scores, res.Scores); d > 1e-12 {
				t.Errorf("concurrent solve differs by %v", d)
			}
		}()
	}
	wg.Wait()
}

func TestEngineClosedRejectsSolves(t *testing.T) {
	g := graph.FromEdges(2, [][2]graph.NodeID{{0, 1}})
	eng, err := NewEngine(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // idempotent
	if _, err := eng.Solve(UniformJump(2)); err == nil {
		t.Error("closed engine accepted a solve")
	}
}

func TestEngineEmptyBatch(t *testing.T) {
	g := graph.FromEdges(2, [][2]graph.NodeID{{0, 1}})
	eng, err := NewEngine(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rs, err := eng.SolveMany(nil)
	if err != nil || rs != nil {
		t.Errorf("empty batch: got (%v, %v), want (nil, nil)", rs, err)
	}
}

func TestTraceCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := testutil.RandomGraph(rng, 300, 4)
	var events []TraceEvent
	cfg := DefaultConfig()
	cfg.Trace = func(ev TraceEvent) { events = append(events, ev) }
	res, err := Jacobi(g, UniformJump(g.NumNodes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Stats.Iterations {
		t.Fatalf("trace saw %d events for %d iterations", len(events), res.Stats.Iterations)
	}
	for i, ev := range events {
		if ev.Iteration != i+1 {
			t.Errorf("event %d has Iteration %d", i, ev.Iteration)
		}
		if ev.Residual != res.Stats.Residuals[i] {
			t.Errorf("event %d residual %v != stats residual %v", i, ev.Residual, res.Stats.Residuals[i])
		}
	}
	if last := events[len(events)-1]; last.Residual >= cfg.Epsilon {
		t.Errorf("final traced residual %v not below epsilon", last.Residual)
	}
}
