package pagerank

import (
	"fmt"

	"spammass/internal/graph"
)

// This file implements the PageRank-contribution machinery of
// Section 3.2. The PageRank contribution of x to y, q_y^x, sums
// c^|W|·π(W)·(1−c)·v_x over all walks W from x to y (plus the virtual
// zero-length circuit for x's contribution to itself). Theorem 2 shows
// the whole contribution vector qˣ of a node x is just PR(vˣ) for the
// core-based jump vector vˣ, and by linearity the contribution q^U of a
// node set U is PR(v^U).

// JumpRestriction returns the core-based random jump vector v^U of
// Theorem 2: it agrees with v on the nodes of set and is zero
// elsewhere.
func JumpRestriction(v Vector, set []graph.NodeID) Vector {
	out := make(Vector, len(v))
	for _, x := range set {
		out[x] = v[x]
	}
	return out
}

// Contribution returns q^U = PR(v^U): the vector whose entry y is the
// total PageRank contribution of the node set U to y, under the random
// jump distribution v.
func Contribution(g *graph.Graph, set []graph.NodeID, v Vector, cfg Config) (Vector, error) {
	res, err := Jacobi(g, JumpRestriction(v, set), cfg)
	if err != nil {
		return nil, err
	}
	return res.Scores, nil
}

// NodeContribution returns qˣ = PR(vˣ): entry y is the PageRank
// contribution of the single node x to y.
func NodeContribution(g *graph.Graph, x graph.NodeID, v Vector, cfg Config) (Vector, error) {
	return Contribution(g, []graph.NodeID{x}, v, cfg)
}

// LinkContribution returns the amount of PageRank that the single link
// (x, y) contributes to node y: the change in p_y induced by removing
// the link, as used by the second naïve labeling scheme of Section 3.1.
// It recomputes PageRank on the graph without the edge, so it is meant
// for analysis and baselines, not bulk computation.
func LinkContribution(g *graph.Graph, x, y graph.NodeID, v Vector, cfg Config) (float64, error) {
	if !g.HasEdge(x, y) {
		return 0, fmt.Errorf("pagerank: no edge (%d,%d)", x, y)
	}
	full, err := Jacobi(g, v, cfg)
	if err != nil {
		return 0, err
	}
	reduced := removeEdge(g, x, y)
	part, err := Jacobi(reduced, v, cfg)
	if err != nil {
		return 0, err
	}
	return full.Scores[y] - part.Scores[y], nil
}

// removeEdge rebuilds g without the edge (x, y).
func removeEdge(g *graph.Graph, rx, ry graph.NodeID) *graph.Graph {
	b := graph.NewBuilder(g.NumNodes())
	g.Edges(func(x, y graph.NodeID) bool {
		if x != rx || y != ry {
			b.AddEdge(x, y)
		}
		return true
	})
	return b.Build()
}
