package pagerank

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"spammass/internal/graph"
	"spammass/internal/obs"
)

func traceTestGraph() *graph.Graph {
	// A small cycle with a chord: converges in a few dozen iterations.
	return graph.FromEdges(6, [][2]graph.NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}, {2, 5},
	})
}

// TestTraceEventOrdering checks the trace-stream invariants: Iteration
// is strictly increasing from 1, Elapsed is non-decreasing, and the
// stream length matches the recorded residuals and iteration count.
func TestTraceEventOrdering(t *testing.T) {
	g := traceTestGraph()
	var events []TraceEvent
	cfg := DefaultConfig()
	cfg.Trace = func(ev TraceEvent) { events = append(events, ev) }
	res, err := Jacobi(g, UniformJump(g.NumNodes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	for i, ev := range events {
		if ev.Iteration != i+1 {
			t.Fatalf("event %d has Iteration %d, want %d (strictly increasing from 1)", i, ev.Iteration, i+1)
		}
		if i > 0 && ev.Elapsed < events[i-1].Elapsed {
			t.Fatalf("event %d Elapsed %v < previous %v", i, ev.Elapsed, events[i-1].Elapsed)
		}
		if ev.Batch != 1 {
			t.Fatalf("event %d Batch = %d, want 1", i, ev.Batch)
		}
	}
	stats := res.Stats
	if len(stats.Residuals) != stats.Iterations {
		t.Fatalf("len(Residuals) = %d, Iterations = %d: must match", len(stats.Residuals), stats.Iterations)
	}
	if len(events) != stats.Iterations {
		t.Fatalf("%d trace events for %d iterations", len(events), stats.Iterations)
	}
	for i, ev := range events {
		if ev.Residual != stats.Residuals[i] {
			t.Fatalf("event %d residual %v != stats residual %v", i, ev.Residual, stats.Residuals[i])
		}
	}
}

// TestEdgesPerSecondGuard: a wall time below the clock resolution must
// leave the throughput at 0, never +Inf or NaN, and String() must stay
// printable.
func TestEdgesPerSecondGuard(t *testing.T) {
	s := &SolveStats{Algorithm: AlgoJacobi, Batch: 1, EdgesSwept: 12345, Workers: 1}
	s.finish(0)
	if s.EdgesPerSecond != 0 {
		t.Fatalf("EdgesPerSecond = %v for zero wall time, want 0", s.EdgesPerSecond)
	}
	line := s.String()
	if strings.Contains(line, "Inf") || strings.Contains(line, "NaN") {
		t.Fatalf("String() leaked a non-finite rate: %s", line)
	}
	s.finish(2 * time.Second)
	if s.EdgesPerSecond != 12345.0/2 {
		t.Fatalf("EdgesPerSecond = %v, want %v", s.EdgesPerSecond, 12345.0/2)
	}
}

// TestSolveObsIntegration checks that a solve with an attached obs
// context produces the pagerank.solve span (one event per iteration,
// matching the -v log lines) and consistent registry metrics.
func TestSolveObsIntegration(t *testing.T) {
	g := traceTestGraph()
	reg := obs.NewRegistry()
	root := obs.NewSpan("test")
	var logged []string
	octx := obs.NewContext(reg, root).WithLogf(func(f string, a ...any) {
		logged = append(logged, fmt.Sprintf(f, a...))
	})
	cfg := DefaultConfig()
	cfg.Obs = octx
	res, err := Jacobi(g, UniformJump(g.NumNodes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	tr := root.Snapshot()
	solve := tr.Find("pagerank.solve")
	if solve == nil {
		t.Fatalf("pagerank.solve span missing; got %v", tr.SpanNames())
	}
	if got := len(solve.Events); got != res.Stats.Iterations {
		t.Fatalf("%d span events for %d iterations", got, res.Stats.Iterations)
	}
	if solve.Attrs["iterations"] != res.Stats.Iterations {
		t.Fatalf("span iterations attr = %v, want %d", solve.Attrs["iterations"], res.Stats.Iterations)
	}
	if got := reg.Counter("pagerank.solves_total").Value(); got != 1 {
		t.Fatalf("pagerank.solves_total = %d, want 1", got)
	}
	if got := reg.Counter("pagerank.iterations_total").Value(); got != int64(res.Stats.Iterations) {
		t.Fatalf("pagerank.iterations = %d, want %d", got, res.Stats.Iterations)
	}
	if got := reg.Counter("pagerank.edges_swept_total").Value(); got != res.Stats.EdgesSwept {
		t.Fatalf("pagerank.edges_swept = %d, want %d", got, res.Stats.EdgesSwept)
	}
	if got := reg.Histogram("pagerank.solve_seconds").Count(); got != 1 {
		t.Fatalf("solve_seconds count = %d, want 1", got)
	}
	// The log sink receives the same rendered lines as the span.
	if len(logged) != len(solve.Events) {
		t.Fatalf("%d logged lines, %d span events: must match", len(logged), len(solve.Events))
	}
	for i := range logged {
		if logged[i] != solve.Events[i].Msg {
			t.Fatalf("log line %d %q diverges from span event %q", i, logged[i], solve.Events[i].Msg)
		}
	}
}

// TestSummary checks the SolveStats → obs.SolveSummary bridge.
func TestSummary(t *testing.T) {
	g := traceTestGraph()
	res, err := Jacobi(g, UniformJump(g.NumNodes()), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Stats.Summary("estimate", res.Converged)
	if sum.Algorithm != "jacobi" || sum.Iterations != res.Stats.Iterations || !sum.Converged {
		t.Fatalf("bad summary: %+v", sum)
	}
	if sum.FinalResidual != res.Stats.Residuals[len(res.Stats.Residuals)-1] {
		t.Fatalf("final residual %v mismatch", sum.FinalResidual)
	}
	var nilStats *SolveStats
	if got := nilStats.Summary("x", false); got.Name != "x" || got.Iterations != 0 {
		t.Fatalf("nil summary: %+v", got)
	}
}
