package pagerank

import (
	"encoding/binary"
	"slices"

	"spammass/internal/graph"
)

// blockedBlockSize is the number of destination rows per block. Blocks
// are the unit of parallel work and of destination-delta reset; 8192
// rows keep the sequentially written next/contrib slices of a block
// within L2 while leaving thousands of blocks for load balancing.
const blockedBlockSize = 8192

// floatT constrains the blocked sweep kernels to the two supported
// score storage types. Reductions always accumulate in float64
// regardless of F (the f32acc spamlint analyzer enforces this
// invariant module-wide).
type floatT interface {
	~float32 | ~float64
}

// blockedAdj is the throughput layout of the reverse adjacency:
// degree-sorted, destination-blocked, gap-compressed.
//
//   - Nodes are relabeled by descending out-degree (graph.DegreeOrder).
//     A node with out-degree d appears in exactly d in-neighbor lists,
//     so the relabeling packs the most frequently read entries of the
//     contribution vector into the lowest IDs — a few cache lines
//     absorb most of the sweep's random reads.
//   - The in-neighbor lists are stored destination-major as one byte
//     stream per run of blockSize destinations. Each row with at least
//     one in-neighbor is encoded as uvarint(destination delta),
//     uvarint(in-degree), then the in-neighbor list gap-encoded in the
//     graph.AppendGapList format shared with internal/diskgraph.
//     Compressed adjacency costs ~2 bytes/edge instead of 4, and the
//     decode streams linearly while the only random access left is a
//     4- or 8-byte contribution read.
//
// The permutation is engine-internal: all public APIs speak original
// node IDs, and jump/warm/score vectors are translated at the solve
// boundary (perm maps original → internal, inv the reverse).
type blockedAdj struct {
	n         int
	m         int64
	blockSize int
	nblocks   int
	perm, inv []graph.NodeID
	invDeg    []float64      // 1/out-degree by internal ID, 0 for dangling
	dangling  []graph.NodeID // internal IDs of dangling nodes, ascending
	// live is the first dangling internal ID: degree order sorts the
	// out-degree-0 tail last, so rows z ≥ live have invDeg[z] == 0 and
	// their contribution entries are permanently zero — the kernels
	// skip the contribNext store for them. Gathers never read past it
	// either: a node appearing in an in-neighbor list has out-degree
	// ≥ 1 by definition.
	live   int
	stream []byte
	off    []int64 // nblocks+1 offsets into stream
}

func buildBlockedAdj(g *graph.Graph, blockSize int) *blockedAdj {
	n := g.NumNodes()
	perm, inv := g.DegreeOrder()
	ba := &blockedAdj{
		n:         n,
		m:         g.NumEdges(),
		blockSize: blockSize,
		nblocks:   (n + blockSize - 1) / blockSize,
		perm:      perm,
		inv:       inv,
		invDeg:    make([]float64, n),
	}
	for p := 0; p < n; p++ {
		if d := g.OutDegree(inv[p]); d > 0 {
			ba.invDeg[p] = 1 / float64(d)
		} else {
			ba.dangling = append(ba.dangling, graph.NodeID(p))
		}
	}
	ba.live = n - len(ba.dangling)
	if len(ba.dangling) > 0 && int(ba.dangling[0]) != ba.live {
		// Defensive: if the dangling set is ever not the contiguous
		// tail of the degree order, fall back to storing every row.
		ba.live = n
	}
	ba.off = make([]int64, ba.nblocks+1)
	stream := make([]byte, 0, 2*int(ba.m)+3*n/4)
	var scratch []graph.NodeID
	for b := 0; b < ba.nblocks; b++ {
		lo := b * blockSize
		hi := min(lo+blockSize, n)
		prev := lo - 1
		for p := lo; p < hi; p++ {
			ins := g.InNeighbors(inv[p])
			if len(ins) == 0 {
				continue
			}
			scratch = scratch[:0]
			for _, x := range ins {
				scratch = append(scratch, perm[x])
			}
			slices.Sort(scratch)
			stream = binary.AppendUvarint(stream, uint64(p-prev))
			stream = binary.AppendUvarint(stream, uint64(len(scratch)))
			stream = graph.AppendGapList(stream, scratch)
			prev = p
		}
		ba.off[b+1] = int64(len(stream))
	}
	ba.stream = stream
	return ba
}

// sweepBlocked runs one Jacobi/power-iteration pull sweep over the
// blocked layout: next ← c·Tᵀcur + jumpCoef·v for every vector of the
// batch, with the contribution vector double-buffered alongside
// (contribNext[y] = next[y]/out(y)) so the next sweep's random reads
// are a single F-sized load per edge. Residuals accumulate into resid
// in float64.
//
// skipEmpty elides rows with no in-links entirely. Such a row's value
// is the closed form jumpCoef[j]·v[z] — independent of the iterate —
// so once both generations of the double buffer hold it (two full
// sweeps with an unchanged jump coefficient, i.e. Jacobi, where
// jumpCoef is the constant 1−c) rewriting it every sweep is pure
// waste and its residual contribution is exactly zero. The gap
// encoding jumps over those rows as a destination delta, so skipping
// them costs nothing; on web-shaped graphs a third or more of all
// rows drop out of the sweep.
func sweepBlocked[F floatT](e *Engine, k int, c float64, jumpCoef, jump []float64, cur, next, contrib, contribNext []F, workers int, resid []float64, skipEmpty bool) {
	ba := e.blk
	run := func(b0, b1 int, acc []float64) {
		switch k {
		case 1:
			sweepBlocked1(ba, c, jumpCoef[0], jump, cur, next, contrib, contribNext, b0, b1, skipEmpty, acc)
		case 2:
			sweepBlocked2(ba, c, jumpCoef, jump, cur, next, contrib, contribNext, b0, b1, skipEmpty, acc)
		default:
			sweepBlockedK(ba, k, c, jumpCoef, jump, cur, next, contrib, contribNext, b0, b1, skipEmpty, acc, make([]float64, k))
		}
	}
	for j := 0; j < k; j++ {
		resid[j] = 0
	}
	if workers <= 1 || ba.nblocks < 2 {
		run(0, ba.nblocks, resid)
		return
	}
	partial := e.partial[:workers*k]
	for i := range partial {
		partial[i] = 0
	}
	e.pool.run(ba.nblocks, func(chunk, lo, hi int) {
		run(lo, hi, partial[chunk*k:(chunk+1)*k])
	})
	for j := 0; j < k; j++ {
		for w := 0; w < workers; w++ {
			resid[j] += partial[w*k+j]
		}
	}
}

// fillRun1 writes the closed-form value coef·v[z] of in-degree-0 rows
// [z0, z1) and returns their residual contribution. Rows at or past
// the live boundary are dangling; their contribution entry is
// permanently zero and is not stored.
func fillRun1[F floatT](invDeg []float64, coef float64, jump []float64, cur, next, contribNext []F, z0, z1, live int) float64 {
	a := 0.0
	lim := min(z1, live)
	for z := z0; z < lim; z++ {
		nv := coef * jump[z]
		nf := F(nv)
		d := float64(nf) - float64(cur[z])
		if d < 0 {
			d = -d
		}
		a += d
		next[z] = nf
		contribNext[z] = F(nv * invDeg[z])
	}
	for z := max(z0, lim); z < z1; z++ {
		nv := coef * jump[z]
		nf := F(nv)
		d := float64(nf) - float64(cur[z])
		if d < 0 {
			d = -d
		}
		a += d
		next[z] = nf
	}
	return a
}

// sweepBlocked1 is the single-vector kernel over blocks [b0, b1).
// The varint decode is hand-inlined: most entries are one byte, and a
// function call per edge would dominate the stream walk.
func sweepBlocked1[F floatT](ba *blockedAdj, c, coef float64, jump []float64, cur, next, contrib, contribNext []F, b0, b1 int, skipEmpty bool, acc []float64) {
	data := ba.stream
	invDeg := ba.invDeg
	live := ba.live
	a := 0.0
	for b := b0; b < b1; b++ {
		pos, end := int(ba.off[b]), int(ba.off[b+1])
		y := b*ba.blockSize - 1
		blockEnd := min((b+1)*ba.blockSize, ba.n)
		for pos < end {
			v := uint64(data[pos])
			pos++
			if v >= 0x80 {
				v &= 0x7f
				for s := uint(7); ; s += 7 {
					bt := data[pos]
					pos++
					v |= uint64(bt&0x7f) << s
					if bt < 0x80 {
						break
					}
				}
			}
			ny := y + int(v)
			if !skipEmpty && ny > y+1 {
				a += fillRun1(invDeg, coef, jump, cur, next, contribNext, y+1, ny, live)
			}
			y = ny
			v = uint64(data[pos])
			pos++
			if v >= 0x80 {
				v &= 0x7f
				for s := uint(7); ; s += 7 {
					bt := data[pos]
					pos++
					v |= uint64(bt&0x7f) << s
					if bt < 0x80 {
						break
					}
				}
			}
			deg := int(v)
			v = uint64(data[pos])
			pos++
			if v >= 0x80 {
				v &= 0x7f
				for s := uint(7); ; s += 7 {
					bt := data[pos]
					pos++
					v |= uint64(bt&0x7f) << s
					if bt < 0x80 {
						break
					}
				}
			}
			x := v
			sum := float64(contrib[x])
			for i := 1; i < deg; i++ {
				v = uint64(data[pos])
				pos++
				if v >= 0x80 {
					v &= 0x7f
					for s := uint(7); ; s += 7 {
						bt := data[pos]
						pos++
						v |= uint64(bt&0x7f) << s
						if bt < 0x80 {
							break
						}
					}
				}
				x += v
				sum += float64(contrib[x])
			}
			nv := c*sum + coef*jump[y]
			nf := F(nv)
			d := float64(nf) - float64(cur[y])
			if d < 0 {
				d = -d
			}
			a += d
			next[y] = nf
			if y < live {
				contribNext[y] = F(nv * invDeg[y])
			}
		}
		if !skipEmpty && blockEnd > y+1 {
			a += fillRun1(invDeg, coef, jump, cur, next, contribNext, y+1, blockEnd, live)
		}
	}
	acc[0] += a
}

// fillRun2 is fillRun1 for the two-column interleaved batch.
func fillRun2[F floatT](invDeg []float64, coef0, coef1 float64, jump []float64, cur, next, contribNext []F, z0, z1, live int) (float64, float64) {
	a0, a1 := 0.0, 0.0
	for z := z0; z < z1; z++ {
		base := z * 2
		nv0 := coef0 * jump[base]
		nv1 := coef1 * jump[base+1]
		nf0, nf1 := F(nv0), F(nv1)
		d0 := float64(nf0) - float64(cur[base])
		if d0 < 0 {
			d0 = -d0
		}
		d1 := float64(nf1) - float64(cur[base+1])
		if d1 < 0 {
			d1 = -d1
		}
		a0 += d0
		a1 += d1
		next[base] = nf0
		next[base+1] = nf1
		if z < live {
			w := invDeg[z]
			contribNext[base] = F(nv0 * w)
			contribNext[base+1] = F(nv1 * w)
		}
	}
	return a0, a1
}

// sweepBlocked2 keeps both columns of the (p, p′) mass-estimation pair
// in registers, mirroring pullRange's k=2 fast path.
func sweepBlocked2[F floatT](ba *blockedAdj, c float64, jumpCoef, jump []float64, cur, next, contrib, contribNext []F, b0, b1 int, skipEmpty bool, acc []float64) {
	data := ba.stream
	invDeg := ba.invDeg
	live := ba.live
	coef0, coef1 := jumpCoef[0], jumpCoef[1]
	a0, a1 := 0.0, 0.0
	for b := b0; b < b1; b++ {
		pos, end := int(ba.off[b]), int(ba.off[b+1])
		y := b*ba.blockSize - 1
		blockEnd := min((b+1)*ba.blockSize, ba.n)
		for pos < end {
			v := uint64(data[pos])
			pos++
			if v >= 0x80 {
				v &= 0x7f
				for s := uint(7); ; s += 7 {
					bt := data[pos]
					pos++
					v |= uint64(bt&0x7f) << s
					if bt < 0x80 {
						break
					}
				}
			}
			ny := y + int(v)
			if !skipEmpty && ny > y+1 {
				d0, d1 := fillRun2(invDeg, coef0, coef1, jump, cur, next, contribNext, y+1, ny, live)
				a0 += d0
				a1 += d1
			}
			y = ny
			v = uint64(data[pos])
			pos++
			if v >= 0x80 {
				v &= 0x7f
				for s := uint(7); ; s += 7 {
					bt := data[pos]
					pos++
					v |= uint64(bt&0x7f) << s
					if bt < 0x80 {
						break
					}
				}
			}
			deg := int(v)
			sum0, sum1 := 0.0, 0.0
			x := uint64(0)
			for i := 0; i < deg; i++ {
				v = uint64(data[pos])
				pos++
				if v >= 0x80 {
					v &= 0x7f
					for s := uint(7); ; s += 7 {
						bt := data[pos]
						pos++
						v |= uint64(bt&0x7f) << s
						if bt < 0x80 {
							break
						}
					}
				}
				x += v
				base := int(x) * 2
				sum0 += float64(contrib[base])
				sum1 += float64(contrib[base+1])
			}
			base := y * 2
			nv0 := c*sum0 + coef0*jump[base]
			nv1 := c*sum1 + coef1*jump[base+1]
			nf0, nf1 := F(nv0), F(nv1)
			d0 := float64(nf0) - float64(cur[base])
			if d0 < 0 {
				d0 = -d0
			}
			d1 := float64(nf1) - float64(cur[base+1])
			if d1 < 0 {
				d1 = -d1
			}
			a0 += d0
			a1 += d1
			next[base] = nf0
			next[base+1] = nf1
			if y < live {
				w := invDeg[y]
				contribNext[base] = F(nv0 * w)
				contribNext[base+1] = F(nv1 * w)
			}
		}
		if !skipEmpty && blockEnd > y+1 { // block tail with no in-links
			d0, d1 := fillRun2(invDeg, coef0, coef1, jump, cur, next, contribNext, y+1, blockEnd, live)
			a0 += d0
			a1 += d1
		}
	}
	acc[0] += a0
	acc[1] += a1
}

// fillRunK is fillRun1 for a k-wide interleaved batch.
func fillRunK[F floatT](invDeg []float64, k int, jumpCoef, jump []float64, cur, next, contribNext []F, z0, z1, live int, acc []float64) {
	for z := z0; z < z1; z++ {
		base := z * k
		if z < live {
			w := invDeg[z]
			for j := 0; j < k; j++ {
				nv := jumpCoef[j] * jump[base+j]
				nf := F(nv)
				d := float64(nf) - float64(cur[base+j])
				if d < 0 {
					d = -d
				}
				acc[j] += d
				next[base+j] = nf
				contribNext[base+j] = F(nv * w)
			}
			continue
		}
		for j := 0; j < k; j++ {
			nv := jumpCoef[j] * jump[base+j]
			nf := F(nv)
			d := float64(nf) - float64(cur[base+j])
			if d < 0 {
				d = -d
			}
			acc[j] += d
			next[base+j] = nf
		}
	}
}

// sweepBlockedK is the generic batch-width kernel; sums is a caller
// supplied k-sized float64 scratch.
func sweepBlockedK[F floatT](ba *blockedAdj, k int, c float64, jumpCoef, jump []float64, cur, next, contrib, contribNext []F, b0, b1 int, skipEmpty bool, acc, sums []float64) {
	data := ba.stream
	invDeg := ba.invDeg
	live := ba.live
	for b := b0; b < b1; b++ {
		pos, end := int(ba.off[b]), int(ba.off[b+1])
		y := b*ba.blockSize - 1
		blockEnd := min((b+1)*ba.blockSize, ba.n)
		for pos < end {
			v := uint64(data[pos])
			pos++
			if v >= 0x80 {
				v &= 0x7f
				for s := uint(7); ; s += 7 {
					bt := data[pos]
					pos++
					v |= uint64(bt&0x7f) << s
					if bt < 0x80 {
						break
					}
				}
			}
			ny := y + int(v)
			if !skipEmpty && ny > y+1 {
				fillRunK(invDeg, k, jumpCoef, jump, cur, next, contribNext, y+1, ny, live, acc)
			}
			y = ny
			v = uint64(data[pos])
			pos++
			if v >= 0x80 {
				v &= 0x7f
				for s := uint(7); ; s += 7 {
					bt := data[pos]
					pos++
					v |= uint64(bt&0x7f) << s
					if bt < 0x80 {
						break
					}
				}
			}
			deg := int(v)
			for j := 0; j < k; j++ {
				sums[j] = 0
			}
			x := uint64(0)
			for i := 0; i < deg; i++ {
				v = uint64(data[pos])
				pos++
				if v >= 0x80 {
					v &= 0x7f
					for s := uint(7); ; s += 7 {
						bt := data[pos]
						pos++
						v |= uint64(bt&0x7f) << s
						if bt < 0x80 {
							break
						}
					}
				}
				x += v
				base := int(x) * k
				for j := 0; j < k; j++ {
					sums[j] += float64(contrib[base+j])
				}
			}
			base := y * k
			if y < live {
				w := invDeg[y]
				for j := 0; j < k; j++ {
					nv := c*sums[j] + jumpCoef[j]*jump[base+j]
					nf := F(nv)
					d := float64(nf) - float64(cur[base+j])
					if d < 0 {
						d = -d
					}
					acc[j] += d
					next[base+j] = nf
					contribNext[base+j] = F(nv * w)
				}
			} else {
				for j := 0; j < k; j++ {
					nv := c*sums[j] + jumpCoef[j]*jump[base+j]
					nf := F(nv)
					d := float64(nf) - float64(cur[base+j])
					if d < 0 {
						d = -d
					}
					acc[j] += d
					next[base+j] = nf
				}
			}
		}
		if !skipEmpty && blockEnd > y+1 {
			fillRunK(invDeg, k, jumpCoef, jump, cur, next, contribNext, y+1, blockEnd, live, acc)
		}
	}
}

// danglingSums accumulates, per batch column, the score mass sitting
// on dangling nodes: dᵀp in the notation of Section 2.2. The
// accumulation is float64 for every storage precision.
func danglingSums[F floatT](dangling []graph.NodeID, cur []F, k int, dsum []float64) {
	for j := range dsum {
		dsum[j] = 0
	}
	if k == 1 {
		s := 0.0
		for _, d := range dangling {
			s += float64(cur[d])
		}
		dsum[0] = s
		return
	}
	for _, d := range dangling {
		base := int(d) * k
		for j := 0; j < k; j++ {
			dsum[j] += float64(cur[base+j])
		}
	}
}

// initContrib fills contrib[i] = cur[i]·invDeg[i/k] for an interleaved
// batch, the pre-multiplied form the blocked kernels read per edge.
func initContrib[F floatT](contrib, cur []F, invDeg []float64, k int) {
	if k == 1 {
		for i, w := range invDeg {
			contrib[i] = F(float64(cur[i]) * w)
		}
		return
	}
	for i, w := range invDeg {
		base := i * k
		for j := 0; j < k; j++ {
			contrib[base+j] = F(float64(cur[base+j]) * w)
		}
	}
}

func growBufF[F floatT](buf []F, size int) []F {
	if cap(buf) < size {
		return make([]F, size)
	}
	return buf[:size]
}
