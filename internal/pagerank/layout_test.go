package pagerank

import (
	"math"
	"math/rand"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/testutil"
)

// l1Diff is the L1 distance ‖a − b‖₁, the metric the layout-parity
// acceptance bound is stated in.
func l1Diff(a, b Vector) float64 {
	s := 0.0
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// TestBlockedMatchesFlat checks the degree-sorted compressed sweep
// against the flat CSR sweep: same graph, same jump vectors, same
// algorithm — the public API speaks original IDs on both engines, so
// the permutation inside the blocked engine must be invisible.
func TestBlockedMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	graphs := []*graph.Graph{
		testutil.RandomGraph(rng, 900, 6),
		danglingHeavyGraph(rng, 700),
		graph.FromEdges(1, nil),                       // single dangling node
		graph.FromEdges(3, [][2]graph.NodeID{{0, 1}}), // mostly dangling
		graph.FromEdges(2, [][2]graph.NodeID{{0, 1}, {1, 0}}),
	}
	for gi, g := range graphs {
		n := g.NumNodes()
		vs := []Vector{UniformJump(n)}
		if n > 10 {
			vs = append(vs,
				ScaledCoreJump(n, []graph.NodeID{1, 3, 7}, 0.9),
				ScaledCoreJump(n, []graph.NodeID{2}, 0.5))
		}
		for _, algo := range []Algorithm{AlgoJacobi, AlgoPowerIteration} {
			cfg := DefaultConfig()
			cfg.Algorithm = algo
			flat, err := NewEngine(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			bcfg := cfg
			bcfg.Layout = LayoutBlocked
			blk, err := NewEngine(g, bcfg)
			if err != nil {
				t.Fatal(err)
			}
			if algo == AlgoPowerIteration {
				vs = vs[:1] // power iteration requires stochastic jumps
			}
			want, err := flat.SolveMany(vs)
			if err != nil {
				t.Fatalf("graph %d %v flat: %v", gi, algo, err)
			}
			got, err := blk.SolveMany(vs)
			if err != nil {
				t.Fatalf("graph %d %v blocked: %v", gi, algo, err)
			}
			for j := range vs {
				if d := l1Diff(want[j].Scores, got[j].Scores); d > 1e-9 {
					t.Errorf("graph %d %v vector %d: blocked vs flat L1 diff %v", gi, algo, j, d)
				}
			}
			if got[0].Stats.Layout != LayoutBlocked {
				t.Errorf("graph %d %v: Stats.Layout = %v, want %v", gi, algo, got[0].Stats.Layout, LayoutBlocked)
			}
			if want[0].Stats.Layout != LayoutFlat {
				t.Errorf("graph %d %v: Stats.Layout = %v, want %v", gi, algo, want[0].Stats.Layout, LayoutFlat)
			}
			flat.Close()
			blk.Close()
		}
	}
}

// TestBlockedParallelMatchesSequential exercises the per-block
// parallel sweep path (the graph must clear parallelThreshold).
func TestBlockedParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	g := testutil.RandomGraph(rng, 3*blockedBlockSize, 5)
	v := UniformJump(g.NumNodes())
	cfg := DefaultConfig()
	cfg.Layout = LayoutBlocked
	seqEng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer seqEng.Close()
	cfg.Workers = 4
	parEng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer parEng.Close()
	seq, err := seqEng.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	par, err := parEng.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	if d := l1Diff(seq.Scores, par.Scores); d > 1e-9 {
		t.Errorf("parallel blocked sweep differs from sequential by L1 %v", d)
	}
}

// TestFloat32Parity is the mixed-precision acceptance bound: a
// PrecisionFloat32 solve (float32 sweeps, float64 finish) must agree
// with the float64 reference to L1 ≤ 1e-9. The float32 phase must
// actually run — a parity test that silently skipped the low-precision
// leg would prove nothing.
func TestFloat32Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 3; trial++ {
		var g *graph.Graph
		if trial == 2 {
			g = danglingHeavyGraph(rng, 800)
		} else {
			g = testutil.RandomGraph(rng, 600+rng.Intn(600), 6)
		}
		n := g.NumNodes()
		for _, algo := range []Algorithm{AlgoJacobi, AlgoPowerIteration} {
			cfg := DefaultConfig()
			cfg.Algorithm = algo
			ref, err := Solve(g, UniformJump(n), cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Precision = PrecisionFloat32 // LayoutAuto resolves to Blocked
			eng, err := NewEngine(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Solve(UniformJump(n))
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, algo, err)
			}
			if d := l1Diff(ref.Scores, got.Scores); d > 1e-9 {
				t.Errorf("trial %d %v: float32 vs float64 L1 diff %v", trial, algo, d)
			}
			st := got.Stats
			if st.Precision != PrecisionFloat32 || st.Layout != LayoutBlocked {
				t.Errorf("trial %d %v: stats report %v/%v", trial, algo, st.Layout, st.Precision)
			}
			if st.Float32Iterations == 0 {
				t.Errorf("trial %d %v: cold float32 solve ran no float32 iterations", trial, algo)
			}
			if st.Float32Iterations >= st.Iterations {
				t.Errorf("trial %d %v: no float64 finish phase (f32=%d total=%d)",
					trial, algo, st.Float32Iterations, st.Iterations)
			}
			eng.Close()
		}
	}
}

// A warm start is typically already below the float32 quantization
// floor, so the low-precision phase is skipped and the result still
// matches the reference.
func TestFloat32WarmStartSkipsLowPrecisionPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	g := testutil.RandomGraph(rng, 700, 5)
	v := UniformJump(g.NumNodes())
	cfg := DefaultConfig()
	cfg.Precision = PrecisionFloat32
	eng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cold, err := eng.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := eng.Config()
	wcfg.WarmStart = cold.Scores
	warm, err := eng.SolveConfig(v, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Float32Iterations != 0 {
		t.Errorf("warm start ran %d float32 iterations, want 0", warm.Stats.Float32Iterations)
	}
	if d := l1Diff(cold.Scores, warm.Scores); d > 1e-9 {
		t.Errorf("warm float32 solve differs from cold by L1 %v", d)
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm start took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
}

// TestPermutationParity is the property test for the relabeling layer:
// for random graphs and random permutations, PageRank commutes with
// node relabeling — solving the permuted graph and permuting back must
// reproduce the original solution. This holds the whole
// permute-solve-unpermute chain (graph.Permute plus the engine's
// boundary translation) to one invariant.
func TestPermutationParity(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 8; trial++ {
		g := testutil.RandomGraph(rng, 50+rng.Intn(400), 1+rng.Intn(6))
		n := g.NumNodes()
		perm := make([]graph.NodeID, n)
		for i := range perm {
			perm[i] = graph.NodeID(i)
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		pg, err := g.Permute(perm)
		if err != nil {
			t.Fatal(err)
		}
		v := make(Vector, n)
		pv := make(Vector, n)
		for i := 0; i < n; i++ {
			v[i] = rng.Float64()
			pv[perm[i]] = v[i]
		}
		for _, layout := range []Layout{LayoutFlat, LayoutBlocked} {
			cfg := DefaultConfig()
			cfg.Layout = layout
			orig, err := Solve(g, v, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			eng, err := NewEngine(pg, cfg)
			if err != nil {
				t.Fatal(err)
			}
			pres, err := eng.Solve(pv)
			if err != nil {
				t.Fatal(err)
			}
			back := make(Vector, n)
			for i := 0; i < n; i++ {
				back[i] = pres.Scores[perm[i]]
			}
			if d := l1Diff(orig.Scores, back); d > 1e-9 {
				t.Errorf("trial %d %v: permuted solve differs after unpermutation by L1 %v", trial, layout, d)
			}
			eng.Close()
		}
	}
}

// TestGaussSouthwellMatchesJacobi checks the push solver against the
// sweep reference on cold starts, warm starts, and batches.
func TestGaussSouthwellMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 3; trial++ {
		var g *graph.Graph
		if trial == 1 {
			g = danglingHeavyGraph(rng, 500)
		} else {
			g = testutil.RandomGraph(rng, 400+rng.Intn(400), 5)
		}
		n := g.NumNodes()
		vs := []Vector{
			UniformJump(n),
			ScaledCoreJump(n, []graph.NodeID{1, 5, 9}, 0.8),
		}
		jcfg := DefaultConfig()
		ref, err := Solve(g, vs[0], jcfg)
		if err != nil {
			t.Fatal(err)
		}
		scfg := DefaultConfig()
		scfg.Algorithm = AlgoGaussSouthwell
		eng, err := NewEngine(g, scfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.SolveMany(vs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := l1Diff(ref.Scores, got[0].Scores); d > 1e-9 {
			t.Errorf("trial %d: Gauss-Southwell vs Jacobi L1 diff %v", trial, d)
		}
		ref1, err := Solve(g, vs[1], jcfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := l1Diff(ref1.Scores, got[1].Scores); d > 1e-9 {
			t.Errorf("trial %d: batch vector 1 L1 diff %v", trial, d)
		}
		st := got[0].Stats
		if st.Algorithm != AlgoGaussSouthwell || st.Layout != LayoutFlat {
			t.Errorf("trial %d: stats report %v/%v", trial, st.Algorithm, st.Layout)
		}
		// Cold pushes start from r = (1−c)v directly — no initial sweep —
		// so EdgesSwept counts only out-neighbor lists actually pushed.
		if st.EdgesSwept == 0 {
			t.Errorf("trial %d: no edges recorded for %d pushes", trial, st.Iterations)
		}
		// A warm start from the exact solution must converge immediately:
		// one verification sweep of m edges and no pushes beyond noise.
		wcfg := scfg
		wcfg.WarmStart = got[0].Scores
		warm, err := eng.SolveConfig(vs[0], wcfg)
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		if d := l1Diff(ref.Scores, warm.Scores); d > 1e-9 {
			t.Errorf("trial %d: warm Gauss-Southwell L1 diff %v", trial, d)
		}
		if !warm.Converged {
			t.Errorf("trial %d: warm restart from the fixpoint did not converge", trial)
		}
		eng.Close()
	}
}

// TestEdgesSweptParityAcrossLayouts pins the telemetry invariant: a
// sweep is m edges in every mode, so flat, blocked, and mixed-precision
// solves forced through the same number of iterations must report
// identical EdgesSwept. Throughput comparisons across layouts are
// meaningless without this.
func TestEdgesSweptParityAcrossLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	g := danglingHeavyGraph(rng, 600)
	v := UniformJump(g.NumNodes())
	const iters = 7
	want := int64(iters) * g.NumEdges()
	for _, tc := range []struct {
		name      string
		layout    Layout
		precision Precision
	}{
		{"flat", LayoutFlat, PrecisionFloat64},
		{"blocked", LayoutBlocked, PrecisionFloat64},
		{"blocked-f32", LayoutBlocked, PrecisionFloat32},
	} {
		cfg := Config{
			Damping:        0.85,
			Epsilon:        1e-300, // unreachable: force exactly MaxIter sweeps
			MaxIter:        iters,
			Layout:         tc.layout,
			Precision:      tc.precision,
			AllowTruncated: true,
		}
		eng, err := NewEngine(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Solve(v)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Stats.EdgesSwept != want {
			t.Errorf("%s: EdgesSwept = %d, want %d", tc.name, res.Stats.EdgesSwept, want)
		}
		if res.Stats.Iterations != iters {
			t.Errorf("%s: Iterations = %d, want %d", tc.name, res.Stats.Iterations, iters)
		}
		eng.Close()
	}
}

// A blocked engine still serves the algorithms that need the flat
// adjacency; the stats must say which layout actually ran.
func TestBlockedEngineFlatAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	g := testutil.RandomGraph(rng, 500, 5)
	v := UniformJump(g.NumNodes())
	ref, err := Solve(g, v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Layout = LayoutBlocked
	eng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, algo := range []Algorithm{AlgoGaussSeidel, AlgoGaussSouthwell} {
		acfg := cfg
		acfg.Algorithm = algo
		res, err := eng.SolveConfig(v, acfg)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Stats.Layout != LayoutFlat {
			t.Errorf("%v on blocked engine: Stats.Layout = %v, want %v", algo, res.Stats.Layout, LayoutFlat)
		}
		if d := l1Diff(ref.Scores, res.Scores); d > 1e-9 {
			t.Errorf("%v on blocked engine: L1 diff %v from reference", algo, d)
		}
	}
}

// TestPrecisionConfigValidation pins the legal (Layout, Precision,
// Algorithm) combinations.
func TestPrecisionConfigValidation(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}})
	bad := []Config{
		{Damping: 0.85, Epsilon: 1e-10, MaxIter: 50, Layout: LayoutFlat, Precision: PrecisionFloat32},
		{Damping: 0.85, Epsilon: 1e-10, MaxIter: 50, Precision: PrecisionFloat32, Algorithm: AlgoGaussSeidel},
		{Damping: 0.85, Epsilon: 1e-10, MaxIter: 50, Precision: PrecisionFloat32, Algorithm: AlgoGaussSouthwell},
		{Damping: 0.85, Epsilon: 1e-10, MaxIter: 50, Layout: Layout(99)},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(g, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// LayoutAuto resolves to Blocked when float32 is requested.
	cfg := Config{Damping: 0.85, Epsilon: 1e-10, MaxIter: 50, Precision: PrecisionFloat32}
	eng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatalf("auto layout with float32: %v", err)
	}
	defer eng.Close()
	if eng.Config().Layout != LayoutBlocked {
		t.Errorf("LayoutAuto + PrecisionFloat32 resolved to %v, want %v", eng.Config().Layout, LayoutBlocked)
	}
}
