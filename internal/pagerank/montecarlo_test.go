package pagerank

import (
	"math"
	"math/rand"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/paperfig"
	"spammass/internal/testutil"
)

// TestMonteCarloAgreesWithJacobi: the simulation must converge on the
// algebraic solution within statistical error.
func TestMonteCarloAgreesWithJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := testutil.RandomGraph(rng, 40, 4)
	v := UniformJump(40)
	exact := PR(g, v, DefaultConfig())
	mc, err := MonteCarlo(g, v, MonteCarloConfig{Damping: 0.85, WalksPerNode: 4000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for x := range exact {
		// Per-entry relative tolerance: generous 3σ-ish bound for
		// 4000 walks per source.
		tol := 0.15*exact[x] + 1e-4
		if math.Abs(mc[x]-exact[x]) > tol {
			t.Errorf("node %d: MC %v vs exact %v", x, mc[x], exact[x])
		}
	}
	// Aggregate L1 agreement should be much tighter.
	if d := mc.Clone().Sub(exact).Norm1() / exact.Norm1(); d > 0.03 {
		t.Errorf("L1 relative error %v, want < 3%%", d)
	}
}

// TestMonteCarloFigure1: on the Figure 1 graph, the closed form
// p_x = (1 + 3c + kc²)(1−c)/n must be recovered.
func TestMonteCarloFigure1(t *testing.T) {
	f := paperfig.NewFigure1(5)
	n := f.Graph.NumNodes()
	v := UniformJump(n)
	mc, err := MonteCarlo(f.Graph, v, MonteCarloConfig{Damping: paperfig.Damping, WalksPerNode: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	scaled := mc[f.X] * float64(n) / (1 - paperfig.Damping)
	want := f.ScaledPageRankX(paperfig.Damping)
	if math.Abs(scaled-want)/want > 0.03 {
		t.Errorf("scaled MC p_x = %v, closed form %v", scaled, want)
	}
}

// TestMonteCarloContribution: walks from x estimate qˣ = PR(vˣ).
func TestMonteCarloContribution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := testutil.RandomGraph(rng, 20, 3)
	v := UniformJump(20)
	x := graph.NodeID(4)
	exact, err := NodeContribution(g, x, v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloContribution(g, x, v, MonteCarloConfig{Damping: 0.85, WalksPerNode: 30000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := mc.Clone().Sub(exact).Norm1() / exact.Norm1(); d > 0.05 {
		t.Errorf("contribution L1 relative error %v, want < 5%%", d)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	g := graph.FromEdges(2, [][2]graph.NodeID{{0, 1}})
	v := UniformJump(2)
	if _, err := MonteCarlo(g, v, MonteCarloConfig{Damping: 1.5, WalksPerNode: 10}); err == nil {
		t.Error("bad damping accepted")
	}
	if _, err := MonteCarlo(g, v, MonteCarloConfig{Damping: 0.85, WalksPerNode: 0}); err == nil {
		t.Error("zero walks accepted")
	}
	if _, err := MonteCarlo(g, Vector{1}, DefaultMonteCarloConfig()); err == nil {
		t.Error("wrong-length jump accepted")
	}
	if _, err := MonteCarloContribution(g, 9, v, DefaultMonteCarloConfig()); err == nil {
		t.Error("out-of-range node accepted")
	}
}

// TestWarmStart: resolving after a tiny jump-vector change from the
// previous solution must converge in far fewer iterations.
func TestWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := testutil.RandomGraph(rng, 5000, 6)
	n := g.NumNodes()
	v := UniformJump(n)
	cold, err := Jacobi(g, v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the jump slightly (the shape of a core fix).
	v2 := v.Clone()
	for i := 0; i < 10; i++ {
		v2[i*3] *= 1.5
	}
	coldRes, err := Jacobi(g, v2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := DefaultConfig()
	warmCfg.WarmStart = cold.Scores
	warmRes, err := Jacobi(g, v2, warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := testutil.MaxAbsDiff(coldRes.Scores, warmRes.Scores); d > 1e-9 {
		t.Fatalf("warm and cold solutions differ by %v", d)
	}
	if warmRes.Iterations >= coldRes.Iterations {
		t.Errorf("warm start took %d iterations vs cold %d; expected a speedup", warmRes.Iterations, coldRes.Iterations)
	}
	// Validation: wrong-length warm start must error.
	badCfg := DefaultConfig()
	badCfg.WarmStart = Vector{1}
	if _, err := Jacobi(g, v2, badCfg); err == nil {
		t.Error("wrong-length warm start accepted")
	}
}
