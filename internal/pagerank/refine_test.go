package pagerank

import (
	"math/rand"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/testutil"
)

// randomEdgeList builds a connected-ish random edge list the tests can
// perturb before handing to graph.FromEdges.
func randomEdgeList(rng *rand.Rand, n, deg int) [][2]graph.NodeID {
	var edges [][2]graph.NodeID
	for x := 0; x < n; x++ {
		for i := 0; i < 1+rng.Intn(deg); i++ {
			y := graph.NodeID(rng.Intn(n))
			if int(y) != x {
				edges = append(edges, [2]graph.NodeID{graph.NodeID(x), y})
			}
		}
	}
	return edges
}

// TestRefineFromZeroImproves drives Refine from the worst possible
// seed. Building a full solution by pushes blows the work budget and
// the progress cutoff long before ε, so Refine must come back
// truncated — but with the residual materially reduced and an iterate
// the solver still converges from, to the right fixpoint. That is the
// accelerator contract: Refine never owes convergence, only a better
// seed.
func TestRefineFromZeroImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testutil.RandomGraph(rng, 500, 5)
	n := g.NumNodes()
	v := UniformJump(n)
	eng, err := NewEngine(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	want, err := eng.Solve(v)
	if err != nil {
		t.Fatal(err)
	}

	x := make(Vector, n)
	st, err := eng.Refine(x, v, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pushes == 0 || st.Scans == 0 {
		t.Errorf("refine reported no work: %+v", st)
	}
	if st.FinalResidual > st.InitialResidual/10 {
		t.Errorf("residual only dropped %.2e → %.2e", st.InitialResidual, st.FinalResidual)
	}
	cfg := eng.Config()
	cfg.WarmStart = x
	res, err := eng.SolveConfig(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := testutil.MaxAbsDiff(want.Scores, res.Scores); d > 1e-10 {
		t.Errorf("solve from refined seed differs from cold solve by %v", d)
	}
}

// TestRefineRepairsPerturbedWarmStart is the intended use: after a
// small graph change, refining the stale solution leaves the solver a
// seed it accepts in a single verification sweep.
func TestRefineRepairsPerturbedWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	edges := randomEdgeList(rng, 800, 5)
	g := graph.FromEdges(800, edges)
	// Rewire a handful of edges: drop the first few, add a few fresh.
	churned := append([][2]graph.NodeID{}, edges[5:]...)
	for i := 0; i < 5; i++ {
		churned = append(churned, [2]graph.NodeID{graph.NodeID(rng.Intn(800)), graph.NodeID(rng.Intn(800))})
	}
	g2 := graph.FromEdges(800, churned)

	v := UniformJump(800)
	eng, err := NewEngine(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	prev, err := eng.Solve(v)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := NewEngine(g2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	cold, err := eng2.Solve(v)
	if err != nil {
		t.Fatal(err)
	}

	seed := prev.Scores.Clone()
	st, err := eng2.Refine(seed, v, eng2.Config().Epsilon/2)
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalResidual > st.InitialResidual/100 {
		t.Errorf("10-edge churn residual only dropped %.2e → %.2e", st.InitialResidual, st.FinalResidual)
	}
	cfg := eng2.Config()
	cfg.WarmStart = seed
	warm, err := eng2.SolveConfig(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// On a structureless random graph the tail iterations are dominated
	// by slow near-c modes that churn excites nearly as much as a cold
	// start does, so only a modest iteration win is guaranteed here; the
	// 2x-and-beyond claims are pinned on the synthetic web graphs in
	// internal/mass and internal/delta, whose residuals stay localized.
	if warm.Stats.Iterations >= cold.Iterations {
		t.Errorf("solver needed %d iterations after refine, cold %d",
			warm.Stats.Iterations, cold.Iterations)
	}
	if d := testutil.MaxAbsDiff(cold.Scores, warm.Scores); d > 1e-10 {
		t.Errorf("refined warm solve differs from cold by %v", d)
	}
}

func TestRefineValidation(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}})
	eng, err := NewEngine(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := UniformJump(3)
	x := make(Vector, 3)
	if _, err := eng.Refine(make(Vector, 2), v, 1e-9); err == nil {
		t.Error("short iterate accepted")
	}
	if _, err := eng.Refine(x, make(Vector, 4), 1e-9); err == nil {
		t.Error("long jump vector accepted")
	}
	if _, err := eng.Refine(x, v, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := eng.Refine(x, v, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
	eng.Close()
	if _, err := eng.Refine(x, v, 1e-9); err == nil {
		t.Error("closed engine accepted refine")
	}

	cfg := DefaultConfig()
	cfg.Algorithm = AlgoPowerIteration
	peng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer peng.Close()
	if _, err := peng.Refine(x, v, 1e-9); err == nil {
		t.Error("power-iteration engine accepted refine")
	}
}

// TestWarmStartsPerVector covers the per-column warm starts of a
// batched solve: seeding each column with its own converged solution
// must verify in one iteration and mark the stats warm.
func TestWarmStartsPerVector(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := testutil.RandomGraph(rng, 400, 5)
	n := g.NumNodes()
	eng, err := NewEngine(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	jumps := []Vector{UniformJump(n), ScaledCoreJump(n, []graph.NodeID{1, 2, 3}, 0.85)}
	cold, err := eng.SolveMany(jumps)
	if err != nil {
		t.Fatal(err)
	}

	cfg := eng.Config()
	cfg.WarmStarts = []Vector{cold[0].Scores.Clone(), cold[1].Scores.Clone()}
	warm, err := eng.SolveManyConfig(jumps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range warm {
		if warm[j].Stats.Iterations > 1 {
			t.Errorf("column %d: %d iterations from exact seed", j, warm[j].Stats.Iterations)
		}
		if d := testutil.MaxAbsDiff(cold[j].Scores, warm[j].Scores); d > 1e-10 {
			t.Errorf("column %d: warm differs from cold by %v", j, d)
		}
	}
	st := warm[0].Stats
	if !st.WarmStarted {
		t.Error("batch stats not marked WarmStarted")
	}
	if st.InitialResidual <= 0 {
		t.Errorf("InitialResidual = %v, want > 0", st.InitialResidual)
	}
	if cold[0].Stats.WarmStarted {
		t.Error("cold stats marked WarmStarted")
	}
}

func TestWarmStartsValidation(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}})
	eng, err := NewEngine(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	jumps := []Vector{UniformJump(3), UniformJump(3)}

	cfg := eng.Config()
	cfg.WarmStart = make(Vector, 3)
	cfg.WarmStarts = []Vector{make(Vector, 3), make(Vector, 3)}
	if _, err := eng.SolveManyConfig(jumps, cfg); err == nil {
		t.Error("both WarmStart and WarmStarts accepted")
	}

	cfg = eng.Config()
	cfg.WarmStarts = []Vector{make(Vector, 3)}
	if _, err := eng.SolveManyConfig(jumps, cfg); err == nil {
		t.Error("warm-start count mismatch accepted")
	}

	cfg = eng.Config()
	cfg.WarmStarts = []Vector{make(Vector, 3), make(Vector, 2)}
	if _, err := eng.SolveManyConfig(jumps, cfg); err == nil {
		t.Error("short warm start accepted")
	}
}
