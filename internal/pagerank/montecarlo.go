package pagerank

import (
	"fmt"
	"math/rand"

	"spammass/internal/graph"
)

// MonteCarloConfig tunes the random-walk PageRank estimator.
type MonteCarloConfig struct {
	// Damping is the walk-continuation probability c.
	Damping float64
	// WalksPerNode is the number of walks started at every node.
	WalksPerNode int
	// Seed drives the simulation.
	Seed int64
}

// DefaultMonteCarloConfig returns a configuration that estimates
// scores to a few percent on small graphs.
func DefaultMonteCarloConfig() MonteCarloConfig {
	return MonteCarloConfig{Damping: 0.85, WalksPerNode: 500, Seed: 1}
}

// MonteCarlo estimates the linear PageRank vector by direct simulation
// of the random-surfer process (the Monte-Carlo "complete path"
// estimator of Avrachenkov et al.): R walks start at every node x;
// each walk continues through a uniform outlink with probability c and
// stops otherwise (or at a dangling node, matching the linear
// formulation's deliberate non-redistribution). Since
//
//	p_y = (1−c) · Σ_x v_x · E[visits to y on a walk from x] ,
//
// the estimate is the visit count weighted by (1−c)·v_x/R.
//
// It is the third, entirely independent solver family in the package —
// the statistical cross-check on the algebraic ones — and doubles as a
// per-node contribution sampler: walks from x alone estimate qˣ.
func MonteCarlo(g *graph.Graph, v Vector, cfg MonteCarloConfig) (Vector, error) {
	if cfg.Damping <= 0 || cfg.Damping >= 1 {
		return nil, fmt.Errorf("pagerank: damping %v outside (0,1)", cfg.Damping)
	}
	if cfg.WalksPerNode <= 0 {
		return nil, fmt.Errorf("pagerank: WalksPerNode must be positive")
	}
	n := g.NumNodes()
	if len(v) != n {
		return nil, fmt.Errorf("pagerank: jump vector has length %d, want %d", len(v), n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	visits := make([]float64, n)
	for x := 0; x < n; x++ {
		if v[x] == 0 {
			continue
		}
		weight := (1 - cfg.Damping) * v[x] / float64(cfg.WalksPerNode)
		for r := 0; r < cfg.WalksPerNode; r++ {
			node := graph.NodeID(x)
			for {
				visits[node] += weight
				adj := g.OutNeighbors(node)
				if len(adj) == 0 || rng.Float64() >= cfg.Damping {
					break
				}
				node = adj[rng.Intn(len(adj))]
			}
		}
	}
	return visits, nil
}

// MonteCarloContribution estimates the contribution vector qˣ of a
// single node by walks started at x only.
func MonteCarloContribution(g *graph.Graph, x graph.NodeID, v Vector, cfg MonteCarloConfig) (Vector, error) {
	if int(x) >= g.NumNodes() {
		return nil, fmt.Errorf("pagerank: node %d outside graph of %d nodes", x, g.NumNodes())
	}
	restricted := make(Vector, g.NumNodes())
	restricted[x] = v[x]
	return MonteCarlo(g, restricted, cfg)
}
