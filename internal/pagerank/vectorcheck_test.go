//go:build vectorcheck

package pagerank

import (
	"math"
	"strings"
	"testing"

	"spammass/internal/graph"
)

// Under -tags vectorcheck a poisoned jump vector must be caught at the
// engine boundary instead of propagating NaN scores downstream. Jacobi
// is used because power iteration's stochastic-sum validation would
// reject the vector before the solve even starts.
func TestVectorCheckCatchesPoisonedJump(t *testing.T) {
	if !vectorCheckEnabled {
		t.Fatal("test built without the vectorcheck tag")
	}
	g := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	cfg := DefaultConfig()
	cfg.Algorithm = AlgoJacobi
	cfg.MaxIter = 5 // NaN residuals never pass the epsilon test; keep it quick
	eng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	v := make(Vector, 4)
	for i := range v {
		v[i] = 0.25
	}
	v[2] = math.NaN()
	res, err := eng.Solve(v)
	if err == nil {
		t.Fatal("poisoned jump vector solved without error")
	}
	if !strings.Contains(err.Error(), "vectorcheck") || !strings.Contains(err.Error(), "NaN") {
		t.Errorf("error %q does not name the vectorcheck NaN finding", err)
	}
	if res != nil {
		t.Error("poisoned solve must not hand out results")
	}
}

func TestVectorCheckCatchesNegative(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}})
	cfg := DefaultConfig()
	cfg.Algorithm = AlgoJacobi
	eng, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Node 1's only inflow comes from node 0, which has zero jump
	// weight, so its score is exactly (1−c)·(−0.5) < 0.
	if _, err := eng.Solve(Vector{0, -0.5, 0}); err == nil ||
		!strings.Contains(err.Error(), "negative") {
		t.Errorf("negative jump weight not caught: err=%v", err)
	}
}

// A clean solve must pass the guard untouched.
func TestVectorCheckPassesCleanSolve(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}})
	eng, err := NewEngine(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	v := Vector{1. / 3, 1. / 3, 1. / 3}
	if _, err := eng.Solve(v); err != nil {
		t.Fatalf("clean solve failed under vectorcheck: %v", err)
	}
}
