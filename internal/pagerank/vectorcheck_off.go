//go:build !vectorcheck

package pagerank

// vectorCheckEnabled reports whether the debug guard is compiled in.
const vectorCheckEnabled = false

// vectorCheck is a no-op in regular builds; build with
// `-tags vectorcheck` to scan every solve result for NaN, ±Inf, and
// negative scores at the engine boundary.
func vectorCheck([]*Result) error { return nil }

// vectorCheckF32 is a no-op in regular builds; under `-tags
// vectorcheck` it scans the float32-phase iterate before promotion.
func vectorCheckF32([]float32, int) error { return nil }
