package pagerank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spammass/internal/graph"
	"spammass/internal/paperfig"
	"spammass/internal/testutil"
)

// TestContributionToTheorem1: the reverse contribution vector of x
// sums to p_x.
func TestContributionToTheorem1(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 2+rng.Intn(30), 4)
		n := g.NumNodes()
		v := UniformJump(n)
		p := PR(g, v, DefaultConfig())
		for trial := 0; trial < 3; trial++ {
			x := graph.NodeID(rng.Intn(n))
			q, err := ContributionTo(g, x, v, DefaultConfig())
			if err != nil {
				return false
			}
			if !testutil.AlmostEqual(q.Sum(), p[x], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestContributionToMatchesForward: q_x^y from the reverse solve must
// equal entry x of the forward contribution vector q^y = PR(v^y).
func TestContributionToMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testutil.RandomGraph(rng, 25, 3)
	v := UniformJump(25)
	x := graph.NodeID(7)
	reverse, err := ContributionTo(g, x, v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 25; y++ {
		forward, err := NodeContribution(g, graph.NodeID(y), v, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.AlmostEqual(reverse[y], forward[x], 1e-9) {
			t.Errorf("q_%d^%d: reverse %v vs forward %v", x, y, reverse[y], forward[x])
		}
	}
}

// TestContributionToFigure2: the supporters of x in the Figure 2 graph
// carry the closed-form contributions of Section 3.3.
func TestContributionToFigure2(t *testing.T) {
	const c = paperfig.Damping
	f := paperfig.NewFigure2()
	v := UniformJump(12)
	q, err := ContributionTo(f.Graph, f.X, v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	scale := 12 / (1 - c)
	cases := []struct {
		node graph.NodeID
		want float64
	}{
		{f.S[0], c},     // direct link, s0's own jump share: c
		{f.S[1], c * c}, // s1 → s0 → x
		{f.S[5], c * c}, // s5 → g0 → x
		{f.G[0], c},     // g0 → x
		{f.G[1], c * c}, // g1 → g0 → x
		{f.X, 1},        // x's virtual circuit
		{f.G[3], c * c}, // g3 → g2 → x
	}
	for _, tc := range cases {
		if got := q[tc.node] * scale; !testutil.AlmostEqual(got, tc.want, 1e-8) {
			t.Errorf("scaled q_x^%d = %v, want %v", tc.node, got, tc.want)
		}
	}
}

func TestTopSupporters(t *testing.T) {
	f := paperfig.NewFigure1(5)
	v := UniformJump(f.Graph.NumNodes())
	sup, px, err := TopSupporters(f.Graph, f.X, v, DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 3 {
		t.Fatalf("%d supporters, want 3", len(sup))
	}
	// g0, g1, and s0 each contribute exactly c (their own jump mass
	// over one link); the boosters c² each. The top three must be
	// exactly {g0, g1, s0}.
	top := map[graph.NodeID]bool{}
	for _, s := range sup {
		top[s.Node] = true
		const c = paperfig.Damping
		want := c * (1 - c) / float64(f.Graph.NumNodes())
		if !testutil.AlmostEqual(s.Contribution, want, 1e-10) {
			t.Errorf("supporter %d contributes %v, want %v", s.Node, s.Contribution, want)
		}
	}
	if !top[f.G0] || !top[f.G1] || !top[f.S0] {
		t.Errorf("top supporters %v, want {g0, g1, s0}", sup)
	}
	p := PR(f.Graph, v, DefaultConfig())
	if !testutil.AlmostEqual(px, p[f.X], 1e-10) {
		t.Errorf("reported p_x %v differs from PageRank %v", px, p[f.X])
	}
	total := 0.0
	for _, s := range sup {
		if s.Share < 0 || s.Share > 1 {
			t.Errorf("share %v outside [0,1]", s.Share)
		}
		total += s.Share
	}
	if total > 1+1e-9 {
		t.Errorf("shares sum to %v > 1", total)
	}
	// Sorted descending.
	for i := 1; i < len(sup); i++ {
		if sup[i].Contribution > sup[i-1].Contribution {
			t.Error("supporters not sorted by contribution")
		}
	}
}

func TestContributionToValidation(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}})
	v := UniformJump(3)
	if _, err := ContributionTo(g, 9, v, DefaultConfig()); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := ContributionTo(g, 0, Vector{1}, DefaultConfig()); err == nil {
		t.Error("wrong-length jump vector accepted")
	}
	if _, err := ContributionTo(g, 0, v, Config{Damping: 2}); err == nil {
		t.Error("invalid damping accepted")
	}
}
