package pagerank

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"spammass/internal/graph"
	"spammass/internal/paperfig"
	"spammass/internal/testutil"
)

const c = paperfig.Damping

func scaled(v Vector) Vector { return v.Scaled(c) }

// TestFigure1ClosedForm checks Algorithm 1 against the paper's closed
// form for Figure 1: scaled p_x = 1 + 3c + kc², p_s0 = 1 + kc, and all
// other nodes 1.
func TestFigure1ClosedForm(t *testing.T) {
	for _, k := range []int{0, 1, 2, 3, 5, 10, 25} {
		f := paperfig.NewFigure1(k)
		res, err := Jacobi(f.Graph, UniformJump(f.Graph.NumNodes()), DefaultConfig())
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.Converged {
			t.Fatalf("k=%d: did not converge in %d iterations", k, res.Iterations)
		}
		s := scaled(res.Scores)
		if want := f.ScaledPageRankX(c); !testutil.AlmostEqual(s[f.X], want, 1e-8) {
			t.Errorf("k=%d: scaled p_x = %v, want %v", k, s[f.X], want)
		}
		if want := 1 + float64(k)*c; !testutil.AlmostEqual(s[f.S0], want, 1e-8) {
			t.Errorf("k=%d: scaled p_s0 = %v, want %v", k, s[f.S0], want)
		}
		for _, id := range []graph.NodeID{f.G0, f.G1} {
			if !testutil.AlmostEqual(s[id], 1, 1e-8) {
				t.Errorf("k=%d: scaled p_%d = %v, want 1", k, id, s[id])
			}
		}
	}
}

// TestFigure2ClosedForm checks the Figure 2 PageRank column of Table 1.
func TestFigure2ClosedForm(t *testing.T) {
	f := paperfig.NewFigure2()
	want := paperfig.ExpectedTable1(c)
	res, err := Jacobi(f.Graph, UniformJump(12), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := scaled(res.Scores)
	ids, labels := f.NodeOrder()
	for i, id := range ids {
		if !testutil.AlmostEqual(s[id], want.P[i], 1e-8) {
			t.Errorf("scaled p_%s = %v, want %v", labels[i], s[id], want.P[i])
		}
	}
	// Spot-check against the rounded numbers printed in the paper.
	if math.Abs(s[f.X]-9.33) > 0.005 {
		t.Errorf("scaled p_x = %v, paper prints 9.33", s[f.X])
	}
	if math.Abs(s[f.S[0]]-4.4) > 0.005 {
		t.Errorf("scaled p_s0 = %v, paper prints 4.4", s[f.S[0]])
	}
}

// TestSolversAgree cross-validates Jacobi, Gauss-Seidel and the
// normalized power iteration on random graphs: the paper notes the
// eigenvector of T” equals the linear solution up to rescaling.
func TestSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := testutil.RandomGraph(rng, 2+rng.Intn(80), 4)
		v := UniformJump(g.NumNodes())
		ja, err := Jacobi(g, v, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		gs, err := GaussSeidel(g, v, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if d := testutil.MaxAbsDiff(ja.Scores, gs.Scores); d > 1e-9 {
			t.Errorf("trial %d: Jacobi vs Gauss-Seidel differ by %v", trial, d)
		}
		pw, err := PowerIteration(g, v, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if d := testutil.MaxAbsDiff(ja.Scores.Normalized(), pw.Scores.Normalized()); d > 1e-8 {
			t.Errorf("trial %d: normalized Jacobi vs power iteration differ by %v", trial, d)
		}
	}
}

// TestLinearity verifies the key property of Section 2.2: PageRank is
// linear in the random jump vector, PR(v₁+v₂) = PR(v₁) + PR(v₂).
func TestLinearity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 2+rng.Intn(40), 4)
		n := g.NumNodes()
		v1 := make(Vector, n)
		v2 := make(Vector, n)
		for i := 0; i < n; i++ {
			v1[i] = rng.Float64() / (2 * float64(n))
			v2[i] = rng.Float64() / (2 * float64(n))
		}
		p1 := PR(g, v1, DefaultConfig())
		p2 := PR(g, v2, DefaultConfig())
		p12 := PR(g, v1.Clone().Add(v2), DefaultConfig())
		return testutil.MaxAbsDiff(p1.Clone().Add(p2), p12) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestNormBound verifies ‖p‖ ≤ ‖v‖ (Section 3.5), with strict
// inequality when dangling nodes lose random-walk mass.
func TestNormBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := testutil.RandomGraph(rng, 2+rng.Intn(60), 3)
		v := UniformJump(g.NumNodes())
		p := PR(g, v, DefaultConfig())
		if p.Norm1() > v.Norm1()+1e-9 {
			t.Fatalf("trial %d: ‖p‖ = %v exceeds ‖v‖ = %v", trial, p.Norm1(), v.Norm1())
		}
		hasDangling := false
		for x := 0; x < g.NumNodes(); x++ {
			if g.IsDangling(graph.NodeID(x)) {
				hasDangling = true
				break
			}
		}
		if hasDangling && p.Norm1() >= v.Norm1()-1e-12 {
			t.Errorf("trial %d: dangling graph but ‖p‖ = ‖v‖", trial)
		}
	}
}

// TestNoInlinkScore verifies the paper's scaling convention: under the
// uniform jump, a node with no inlinks has scaled score exactly 1.
func TestNoInlinkScore(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {1, 2}})
	s := scaled(PR(g, UniformJump(4), DefaultConfig()))
	for _, x := range []graph.NodeID{0, 3} {
		if !testutil.AlmostEqual(s[x], 1, 1e-9) {
			t.Errorf("scaled score of inlink-free node %d = %v, want 1", x, s[x])
		}
	}
}

func TestPowerIterationRequiresStochasticJump(t *testing.T) {
	g := graph.FromEdges(2, [][2]graph.NodeID{{0, 1}})
	if _, err := PowerIteration(g, Vector{0.2, 0.2}, DefaultConfig()); err == nil {
		t.Error("PowerIteration accepted unnormalized jump vector")
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.FromEdges(2, [][2]graph.NodeID{{0, 1}})
	v := UniformJump(2)
	if _, err := Jacobi(g, v, Config{Damping: 1.5}); err == nil {
		t.Error("damping 1.5 accepted")
	}
	if _, err := Jacobi(g, v, Config{Damping: -0.1}); err == nil {
		t.Error("negative damping accepted")
	}
	if _, err := Jacobi(g, v, Config{Epsilon: -1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := Jacobi(g, Vector{1}, DefaultConfig()); err == nil {
		t.Error("wrong-length jump vector accepted")
	}
}

func TestMaxIterCap(t *testing.T) {
	// An asymmetric cyclic graph (the uniform vector is NOT its
	// fixpoint) with an absurdly tight epsilon and 3 iterations must
	// report non-convergence: as a typed error by default, and as a
	// truncated Result under AllowTruncated.
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 0}, {2, 0}})
	cfg := Config{Damping: 0.85, Epsilon: 1e-300, MaxIter: 3}

	res, err := Jacobi(g, UniformJump(3), cfg)
	if !IsNotConverged(err) {
		t.Fatalf("err = %v, want *ErrNotConverged", err)
	}
	var nc *ErrNotConverged
	errors.As(err, &nc)
	if nc.Iterations != 3 || nc.Residual <= 0 {
		t.Errorf("ErrNotConverged carries iterations=%d residual=%v", nc.Iterations, nc.Residual)
	}
	if res == nil || res.Converged {
		t.Fatalf("truncated result should still be returned for diagnostics, got %+v", res)
	}

	cfg.AllowTruncated = true
	res, err = Jacobi(g, UniformJump(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("reported convergence under an unreachable epsilon")
	}
	if res.Iterations != 3 {
		t.Errorf("Iterations = %d, want exactly the 3 executed sweeps", res.Iterations)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := testutil.RandomGraph(rng, 5000, 6)
	v := UniformJump(g.NumNodes())
	seq, err := Jacobi(g, v, Config{Damping: 0.85, Epsilon: 1e-12, MaxIter: 500, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Jacobi(g, v, Config{Damping: 0.85, Epsilon: 1e-12, MaxIter: 500, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d := testutil.MaxAbsDiff(seq.Scores, par.Scores); d > 1e-12 {
		t.Errorf("parallel and sequential Jacobi differ by %v", d)
	}
}

func TestGaussSeidelFasterThanJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := testutil.RandomGraph(rng, 3000, 5)
	v := UniformJump(g.NumNodes())
	ja, err := Jacobi(g, v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gs, err := GaussSeidel(g, v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if gs.Iterations > ja.Iterations {
		t.Errorf("Gauss-Seidel took %d iterations, Jacobi %d; expected GS ≤ Jacobi", gs.Iterations, ja.Iterations)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	res, err := Jacobi(g, UniformJump(0), DefaultConfig())
	if err != nil {
		t.Fatalf("empty graph: %v", err)
	}
	if len(res.Scores) != 0 {
		t.Errorf("empty graph produced %d scores", len(res.Scores))
	}
}
