package pagerank

import "sync"

// workerPool is a persistent pool of goroutines executing
// range-partitioned sweeps. The solvers reuse one pool across
// iterations and across solves, instead of spawning a fresh set of
// goroutines for every iteration (up to MaxIter × Workers spawns per
// solve in the old scheme).
type workerPool struct {
	workers int
	tasks   chan poolTask
	exited  sync.WaitGroup
}

type poolTask struct {
	fn     func(chunk, lo, hi int)
	chunk  int
	lo, hi int
	wg     *sync.WaitGroup
}

func newWorkerPool(workers int) *workerPool {
	p := &workerPool{workers: workers, tasks: make(chan poolTask, workers)}
	p.exited.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.exited.Done()
			for t := range p.tasks {
				t.fn(t.chunk, t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
	return p
}

// run partitions [0, n) into one contiguous chunk per worker and blocks
// until every chunk has been processed. fn receives the chunk index so
// callers can keep chunk-local accumulators without locking.
func (p *workerPool) run(n int, fn func(chunk, lo, hi int)) {
	var wg sync.WaitGroup
	chunk := (n + p.workers - 1) / p.workers
	ci := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		p.tasks <- poolTask{fn: fn, chunk: ci, lo: lo, hi: hi, wg: &wg}
		ci++
	}
	wg.Wait()
}

// close shuts the pool down and waits for the workers to exit.
func (p *workerPool) close() {
	close(p.tasks)
	p.exited.Wait()
}
