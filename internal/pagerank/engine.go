package pagerank

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"spammass/internal/graph"
)

// parallelThreshold is the node count below which parallel sweeps cost
// more in coordination than they save.
const parallelThreshold = 4096

// Engine is a reusable PageRank solver bound to one graph. It computes
// the inverse out-degrees and the dangling-node list once at
// construction instead of on every solve, keeps one persistent worker
// pool alive across iterations and solves, and offers batched solves
// (SolveMany) that sweep the in-neighbor lists once per iteration for
// several jump vectors at a time.
//
// An Engine is safe for concurrent use; solves are serialized
// internally. Call Close when done to release the worker pool (a
// finalizer eventually releases it otherwise, so forgetting Close
// cannot leak goroutines permanently).
type Engine struct {
	g        *graph.Graph
	cfg      Config
	inv      []float64      // 1/out(x), 0 for dangling nodes
	dangling []graph.NodeID // nodes with no out-links

	mu      sync.Mutex
	pool    *workerPool
	cur     []float64 // interleaved solve buffers, reused across solves
	next    []float64
	jump    []float64
	partial []float64 // chunk-local residual accumulators
	closed  bool
}

// NewEngine validates cfg, resolves its defaults, and precomputes the
// per-graph solver state.
func NewEngine(g *graph.Graph, cfg Config) (*Engine, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	e := &Engine{g: g, cfg: cfg, inv: make([]float64, n)}
	for x := 0; x < n; x++ {
		if d := g.OutDegree(graph.NodeID(x)); d > 0 {
			e.inv[x] = 1 / float64(d)
		} else {
			e.dangling = append(e.dangling, graph.NodeID(x))
		}
	}
	if cfg.Workers > 1 && n >= parallelThreshold {
		e.pool = newWorkerPool(cfg.Workers)
		runtime.SetFinalizer(e, (*Engine).Close)
	}
	return e, nil
}

// Graph returns the graph the engine is bound to.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Config returns the engine configuration with defaults resolved.
func (e *Engine) Config() Config { return e.cfg }

// Close releases the worker pool. The engine must not be used after
// Close; it is safe to call Close more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
}

// Solve runs the engine's configured algorithm for one jump vector.
func (e *Engine) Solve(v Vector) (*Result, error) {
	return e.SolveConfig(v, e.cfg)
}

// SolveConfig solves with per-call overrides (warm start, epsilon,
// algorithm, trace hook, …). The Workers setting is fixed at engine
// construction and ignored here.
func (e *Engine) SolveConfig(v Vector, cfg Config) (*Result, error) {
	rs, err := e.SolveManyConfig([]Vector{v}, cfg)
	if rs == nil {
		return nil, err
	}
	return rs[0], err
}

// SolveMany solves the system once per jump vector, sharing a single
// sweep of the in-neighbor lists per iteration across the whole batch.
// The dominant cost of a pull sweep is traversing the adjacency, so k
// batched solves cost far less than k sequential ones.
//
// The batch iterates until every vector has converged (vectors that
// converge early keep improving); Result.Iterations reports, per
// vector, the iteration at which that vector first met Epsilon.
func (e *Engine) SolveMany(vs []Vector) ([]*Result, error) {
	return e.SolveManyConfig(vs, e.cfg)
}

// SolveManyConfig is SolveMany with per-call overrides. A non-nil
// cfg.WarmStart seeds every vector of the batch with the same initial
// guess.
func (e *Engine) SolveManyConfig(vs []Vector, cfg Config) ([]*Result, error) {
	cfg = cfg.WithDefaults()
	cfg.Workers = e.cfg.Workers
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := len(vs)
	if k == 0 {
		return nil, nil
	}
	n := e.g.NumNodes()
	for j, v := range vs {
		if len(v) != n {
			return nil, fmt.Errorf("pagerank: jump vector %d has length %d, want %d", j, len(v), n)
		}
		if cfg.Algorithm == AlgoPowerIteration {
			if s := v.Sum(); s < 1-1e-9 || s > 1+1e-9 {
				return nil, fmt.Errorf("pagerank: power iteration needs a stochastic jump vector, got ‖v‖=%v (vector %d)", s, j)
			}
		}
	}
	if cfg.WarmStart != nil && len(cfg.WarmStart) != n {
		return nil, fmt.Errorf("pagerank: warm start has length %d, want %d", len(cfg.WarmStart), n)
	}
	if cfg.WarmStarts != nil {
		if cfg.WarmStart != nil {
			return nil, fmt.Errorf("pagerank: both WarmStart and WarmStarts set")
		}
		if len(cfg.WarmStarts) != k {
			return nil, fmt.Errorf("pagerank: %d warm starts for a batch of %d vectors", len(cfg.WarmStarts), k)
		}
		for j, w := range cfg.WarmStarts {
			if len(w) != n {
				return nil, fmt.Errorf("pagerank: warm start %d has length %d, want %d", j, len(w), n)
			}
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("pagerank: engine is closed")
	}
	return e.solveBatch(vs, cfg)
}

// solveBatch runs the iteration loop. Callers hold e.mu and have
// validated cfg and the jump vectors.
func (e *Engine) solveBatch(vs []Vector, cfg Config) ([]*Result, error) {
	n, k := e.g.NumNodes(), len(vs)
	size := n * k
	e.jump = growBuf(e.jump, size)
	e.cur = growBuf(e.cur, size)
	e.next = growBuf(e.next, size)
	jump, cur, next := e.jump, e.cur, e.next
	for j, v := range vs {
		for i := 0; i < n; i++ {
			jump[i*k+j] = v[i]
		}
	}
	switch {
	case cfg.WarmStarts != nil:
		for j, w := range cfg.WarmStarts {
			for i := 0; i < n; i++ {
				cur[i*k+j] = w[i]
			}
		}
	case cfg.WarmStart != nil:
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				cur[i*k+j] = cfg.WarmStart[i]
			}
		}
	default:
		copy(cur, jump)
	}

	workers := 1
	if e.pool != nil && n >= parallelThreshold {
		workers = e.pool.workers
	}
	e.partial = growBuf(e.partial, workers*k)

	start := time.Now()
	stats := &SolveStats{
		Algorithm:   cfg.Algorithm,
		Batch:       k,
		Workers:     workers,
		WarmStarted: cfg.WarmStart != nil || cfg.WarmStarts != nil,
	}
	octx := cfg.Obs
	sp := octx.Span("pagerank.solve")
	if sp != nil {
		sp.SetAttr("algorithm", cfg.Algorithm.String())
		sp.SetAttr("batch", k)
		sp.SetAttr("nodes", n)
		sp.SetAttr("workers", workers)
	}
	// traced gates all per-iteration telemetry; span events and Logf
	// lines are rendered from the same TraceEvent, so verbose output
	// and the JSON trace cannot diverge.
	traced := cfg.Trace != nil || sp != nil || octx.Logging()
	m := e.g.NumEdges()
	c := cfg.Damping
	resid := make([]float64, k)     // per-vector residual of the last iteration
	jumpCoef := make([]float64, k)  // per-vector jump coefficient of the sweep
	dsum := make([]float64, k)      // per-vector dangling mass (power iteration)
	firstIter := make([]int, k)     // iteration at which each vector first converged
	converged := make([]bool, k)

	for it := 1; it <= cfg.MaxIter; it++ {
		for j := 0; j < k; j++ {
			jumpCoef[j] = 1 - c
		}
		if cfg.Algorithm == AlgoPowerIteration {
			// Reinject the random-walk mass lost at dangling nodes as
			// c·dᵀp·v, folded into the sweep's jump coefficient.
			for j := range dsum {
				dsum[j] = 0
			}
			for _, d := range e.dangling {
				base := int(d) * k
				for j := 0; j < k; j++ {
					dsum[j] += cur[base+j]
				}
			}
			for j := 0; j < k; j++ {
				jumpCoef[j] += c * dsum[j]
			}
		}

		switch cfg.Algorithm {
		case AlgoGaussSeidel:
			e.sweepGaussSeidel(cur, jump, k, c, resid)
		default: // Jacobi and power iteration: out-of-place pull sweep
			e.sweepPull(cur, next, jump, jumpCoef, k, c, workers, resid)
			cur, next = next, cur
		}

		stats.Iterations = it
		stats.EdgesSwept += m
		maxRes := 0.0
		for j := 0; j < k; j++ {
			if resid[j] > maxRes {
				maxRes = resid[j]
			}
			if !converged[j] && resid[j] < cfg.Epsilon {
				converged[j] = true
				firstIter[j] = it
			}
		}
		stats.Residuals = append(stats.Residuals, maxRes)
		if traced {
			ev := TraceEvent{
				Algorithm: cfg.Algorithm,
				Batch:     k,
				Iteration: it,
				Residual:  maxRes,
				Elapsed:   time.Since(start),
			}
			if cfg.Trace != nil {
				cfg.Trace(ev)
			}
			if sp != nil || octx.Logging() {
				msg := ev.String()
				sp.Event(msg)
				octx.Logf("%s", msg)
			}
		}
		if maxRes < cfg.Epsilon {
			break
		}
	}
	stats.finish(time.Since(start))
	if octx != nil {
		reg := octx.Registry()
		reg.Counter("pagerank.solves").Inc()
		reg.Counter("pagerank.batch_vectors").Add(int64(k))
		reg.Counter("pagerank.iterations").Add(int64(stats.Iterations))
		reg.Counter("pagerank.edges_swept").Add(stats.EdgesSwept)
		reg.Histogram("pagerank.solve_seconds").Observe(stats.WallTime.Seconds())
	}
	if sp != nil {
		sp.SetAttr("iterations", stats.Iterations)
		if len(stats.Residuals) > 0 {
			sp.SetAttr("final_residual", stats.Residuals[len(stats.Residuals)-1])
		}
		sp.SetAttr("edges_swept", stats.EdgesSwept)
		sp.End()
	}
	// The swap leaves the freshest iterate in cur; remember it for the
	// next solve's buffer reuse.
	e.cur, e.next = cur, next

	results := make([]*Result, k)
	for j := 0; j < k; j++ {
		scores := make(Vector, n)
		for i := 0; i < n; i++ {
			scores[i] = cur[i*k+j]
		}
		iters := firstIter[j]
		if iters == 0 {
			iters = stats.Iterations
		}
		results[j] = &Result{
			Scores:     scores,
			Iterations: iters,
			Residual:   resid[j],
			Converged:  converged[j],
			Stats:      stats,
		}
	}
	if err := vectorCheck(results); err != nil {
		return nil, fmt.Errorf("pagerank: %w", err)
	}
	if !cfg.AllowTruncated {
		worst := -1
		for j := 0; j < k; j++ {
			if !converged[j] && (worst < 0 || resid[j] > resid[worst]) {
				worst = j
			}
		}
		if worst >= 0 {
			return results, &ErrNotConverged{
				Algorithm:  cfg.Algorithm,
				Iterations: stats.Iterations,
				Residual:   resid[worst],
				Epsilon:    cfg.Epsilon,
				Column:     worst,
			}
		}
	}
	return results, nil
}

// sweepPull computes next ← c·Tᵀcur + jumpCoef·v for every vector of
// the batch with one pass over the in-neighbor lists, and accumulates
// the per-vector L1 residual ‖next − cur‖₁ into resid. Pull-style
// sweeps write each next[y] from exactly one goroutine, so no locking
// is needed.
func (e *Engine) sweepPull(cur, next, jump, jumpCoef []float64, k int, c float64, workers int, resid []float64) {
	n := e.g.NumNodes()
	if workers <= 1 {
		for j := 0; j < k; j++ {
			resid[j] = 0
		}
		e.pullRange(cur, next, jump, jumpCoef, k, c, 0, n, resid)
		return
	}
	partial := e.partial[:workers*k]
	for i := range partial {
		partial[i] = 0
	}
	e.pool.run(n, func(chunk, lo, hi int) {
		e.pullRange(cur, next, jump, jumpCoef, k, c, lo, hi, partial[chunk*k:(chunk+1)*k])
	})
	for j := 0; j < k; j++ {
		resid[j] = 0
		for w := 0; w < workers; w++ {
			resid[j] += partial[w*k+j]
		}
	}
}

// pullRange is the sweep kernel over nodes [lo, hi); acc accumulates
// the per-vector L1 residual of the range.
func (e *Engine) pullRange(cur, next, jump, jumpCoef []float64, k int, c float64, lo, hi int, acc []float64) {
	g, inv := e.g, e.inv
	if k == 1 {
		// Scalar fast path: identical memory behavior to a classic
		// single-vector sweep, with the residual fused in.
		coef, a := jumpCoef[0], acc[0]
		for y := lo; y < hi; y++ {
			sum := 0.0
			for _, x := range g.InNeighbors(graph.NodeID(y)) {
				sum += cur[x] * inv[x]
			}
			nv := c*sum + coef*jump[y]
			next[y] = nv
			d := nv - cur[y]
			if d < 0 {
				d = -d
			}
			a += d
		}
		acc[0] = a
		return
	}
	if k == 2 {
		// Two-column fast path: EstimateFromCore's (p, p') pair is the
		// most common batch. Keeping both running sums in registers
		// makes the shared sweep cost barely more than a scalar one.
		coef0, coef1 := jumpCoef[0], jumpCoef[1]
		a0, a1 := acc[0], acc[1]
		for y := lo; y < hi; y++ {
			sum0, sum1 := 0.0, 0.0
			for _, x := range g.InNeighbors(graph.NodeID(y)) {
				w := inv[x]
				base := int(x) * 2
				sum0 += cur[base] * w
				sum1 += cur[base+1] * w
			}
			base := y * 2
			nv0 := c*sum0 + coef0*jump[base]
			nv1 := c*sum1 + coef1*jump[base+1]
			next[base] = nv0
			next[base+1] = nv1
			d0 := nv0 - cur[base]
			if d0 < 0 {
				d0 = -d0
			}
			d1 := nv1 - cur[base+1]
			if d1 < 0 {
				d1 = -d1
			}
			a0 += d0
			a1 += d1
		}
		acc[0], acc[1] = a0, a1
		return
	}
	sums := make([]float64, k)
	for y := lo; y < hi; y++ {
		for j := range sums {
			sums[j] = 0
		}
		for _, x := range g.InNeighbors(graph.NodeID(y)) {
			w := inv[x]
			base := int(x) * k
			for j := 0; j < k; j++ {
				sums[j] += cur[base+j] * w
			}
		}
		base := y * k
		for j := 0; j < k; j++ {
			nv := c*sums[j] + jumpCoef[j]*jump[base+j]
			next[base+j] = nv
			d := nv - cur[base+j]
			if d < 0 {
				d = -d
			}
			acc[j] += d
		}
	}
}

// sweepGaussSeidel runs one in-place sweep per vector of the batch,
// using already-updated scores within the iteration. It is inherently
// sequential but still shares the single adjacency traversal.
func (e *Engine) sweepGaussSeidel(p, jump []float64, k int, c float64, resid []float64) {
	g, inv := e.g, e.inv
	n := g.NumNodes()
	oneMinusC := 1 - c
	for j := 0; j < k; j++ {
		resid[j] = 0
	}
	if k == 1 {
		delta := 0.0
		for y := 0; y < n; y++ {
			sum := 0.0
			for _, x := range g.InNeighbors(graph.NodeID(y)) {
				sum += p[x] * inv[x]
			}
			nv := c*sum + oneMinusC*jump[y]
			d := nv - p[y]
			if d < 0 {
				d = -d
			}
			delta += d
			p[y] = nv
		}
		resid[0] = delta
		return
	}
	sums := make([]float64, k)
	for y := 0; y < n; y++ {
		for j := range sums {
			sums[j] = 0
		}
		for _, x := range g.InNeighbors(graph.NodeID(y)) {
			w := inv[x]
			base := int(x) * k
			for j := 0; j < k; j++ {
				sums[j] += p[base+j] * w
			}
		}
		base := y * k
		for j := 0; j < k; j++ {
			nv := c*sums[j] + oneMinusC*jump[base+j]
			d := nv - p[base+j]
			if d < 0 {
				d = -d
			}
			resid[j] += d
			p[base+j] = nv
		}
	}
}

func growBuf(buf []float64, size int) []float64 {
	if cap(buf) < size {
		return make([]float64, size)
	}
	return buf[:size]
}
