package pagerank

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"spammass/internal/graph"
)

// parallelThreshold is the node count below which parallel sweeps cost
// more in coordination than they save.
const parallelThreshold = 4096

// Engine is a reusable PageRank solver bound to one graph. It computes
// the inverse out-degrees and the dangling-node list once at
// construction instead of on every solve, keeps one persistent worker
// pool alive across iterations and solves, and offers batched solves
// (SolveMany) that sweep the in-neighbor lists once per iteration for
// several jump vectors at a time.
//
// An Engine is safe for concurrent use; solves are serialized
// internally. Call Close when done to release the worker pool (a
// finalizer eventually releases it otherwise, so forgetting Close
// cannot leak goroutines permanently).
type Engine struct {
	g        *graph.Graph
	cfg      Config
	inv      []float64      // 1/out(x), 0 for dangling nodes
	dangling []graph.NodeID // nodes with no out-links

	// blk is the degree-sorted compressed layout, built once at
	// construction when cfg.Layout is LayoutBlocked. The permutation it
	// carries is invisible outside the engine: jump vectors, warm
	// starts, and scores are translated at the solve boundary.
	blk *blockedAdj

	mu      sync.Mutex
	pool    *workerPool
	cur     []float64 // interleaved solve buffers, reused across solves
	next    []float64
	jump    []float64
	partial []float64 // chunk-local residual accumulators

	// Blocked-sweep buffers: pre-multiplied contribution vectors
	// (score/out-degree), double-buffered, plus the float32 mirrors of
	// all four used by the PrecisionFloat32 phase.
	contribA, contribB                    []float64
	cur32, next32, contribA32, contribB32 []float32

	closed bool
}

// NewEngine validates cfg, resolves its defaults, and precomputes the
// per-graph solver state.
func NewEngine(g *graph.Graph, cfg Config) (*Engine, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	e := &Engine{g: g, cfg: cfg, inv: make([]float64, n)}
	for x := 0; x < n; x++ {
		if d := g.OutDegree(graph.NodeID(x)); d > 0 {
			e.inv[x] = 1 / float64(d)
		} else {
			e.dangling = append(e.dangling, graph.NodeID(x))
		}
	}
	if cfg.Layout == LayoutBlocked {
		e.blk = buildBlockedAdj(g, blockedBlockSize)
	}
	if cfg.Workers > 1 && n >= parallelThreshold {
		e.pool = newWorkerPool(cfg.Workers)
		runtime.SetFinalizer(e, (*Engine).Close)
	}
	return e, nil
}

// Graph returns the graph the engine is bound to.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Config returns the engine configuration with defaults resolved.
func (e *Engine) Config() Config { return e.cfg }

// Close releases the worker pool. The engine must not be used after
// Close; it is safe to call Close more than once.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
}

// Solve runs the engine's configured algorithm for one jump vector.
func (e *Engine) Solve(v Vector) (*Result, error) {
	return e.SolveConfig(v, e.cfg)
}

// SolveConfig solves with per-call overrides (warm start, epsilon,
// algorithm, trace hook, …). The Workers setting is fixed at engine
// construction and ignored here.
func (e *Engine) SolveConfig(v Vector, cfg Config) (*Result, error) {
	rs, err := e.SolveManyConfig([]Vector{v}, cfg)
	if rs == nil {
		return nil, err
	}
	return rs[0], err
}

// SolveMany solves the system once per jump vector, sharing a single
// sweep of the in-neighbor lists per iteration across the whole batch.
// The dominant cost of a pull sweep is traversing the adjacency, so k
// batched solves cost far less than k sequential ones.
//
// The batch iterates until every vector has converged (vectors that
// converge early keep improving); Result.Iterations reports, per
// vector, the iteration at which that vector first met Epsilon.
func (e *Engine) SolveMany(vs []Vector) ([]*Result, error) {
	return e.SolveManyConfig(vs, e.cfg)
}

// SolveManyConfig is SolveMany with per-call overrides. A non-nil
// cfg.WarmStart seeds every vector of the batch with the same initial
// guess.
func (e *Engine) SolveManyConfig(vs []Vector, cfg Config) ([]*Result, error) {
	cfg = cfg.WithDefaults()
	cfg.Workers = e.cfg.Workers
	cfg.Layout = e.cfg.Layout // the layout is fixed at construction
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := len(vs)
	if k == 0 {
		return nil, nil
	}
	n := e.g.NumNodes()
	for j, v := range vs {
		if len(v) != n {
			return nil, fmt.Errorf("pagerank: jump vector %d has length %d, want %d", j, len(v), n)
		}
		if cfg.Algorithm == AlgoPowerIteration {
			if s := v.Sum(); s < 1-1e-9 || s > 1+1e-9 {
				return nil, fmt.Errorf("pagerank: power iteration needs a stochastic jump vector, got ‖v‖=%v (vector %d)", s, j)
			}
		}
	}
	if cfg.WarmStart != nil && len(cfg.WarmStart) != n {
		return nil, fmt.Errorf("pagerank: warm start has length %d, want %d", len(cfg.WarmStart), n)
	}
	if cfg.WarmStarts != nil {
		if cfg.WarmStart != nil {
			return nil, fmt.Errorf("pagerank: both WarmStart and WarmStarts set")
		}
		if len(cfg.WarmStarts) != k {
			return nil, fmt.Errorf("pagerank: %d warm starts for a batch of %d vectors", len(cfg.WarmStarts), k)
		}
		for j, w := range cfg.WarmStarts {
			if len(w) != n {
				return nil, fmt.Errorf("pagerank: warm start %d has length %d, want %d", j, len(w), n)
			}
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("pagerank: engine is closed")
	}
	return e.solveBatch(vs, cfg)
}

// solveBatch runs the iteration loop. Callers hold e.mu and have
// validated cfg and the jump vectors.
func (e *Engine) solveBatch(vs []Vector, cfg Config) ([]*Result, error) {
	if cfg.Algorithm == AlgoGaussSouthwell {
		return e.solveSouthwell(vs, cfg)
	}
	n, k := e.g.NumNodes(), len(vs)
	// The blocked layout accelerates the out-of-place pull sweeps;
	// Gauss-Seidel's in-place sweep stays on the flat adjacency.
	blocked := e.blk != nil && (cfg.Algorithm == AlgoJacobi || cfg.Algorithm == AlgoPowerIteration)
	var perm []graph.NodeID
	dangling := e.dangling
	if blocked {
		perm = e.blk.perm
		dangling = e.blk.dangling
	}
	// row maps an original node ID to its buffer row: the identity on
	// the flat path, the degree-sort permutation on the blocked one.
	row := func(i int) int {
		if perm != nil {
			return int(perm[i])
		}
		return i
	}
	size := n * k
	e.jump = growBuf(e.jump, size)
	e.cur = growBuf(e.cur, size)
	e.next = growBuf(e.next, size)
	jump, cur, next := e.jump, e.cur, e.next
	for j, v := range vs {
		for i := 0; i < n; i++ {
			jump[row(i)*k+j] = v[i]
		}
	}
	warmStarted := cfg.WarmStart != nil || cfg.WarmStarts != nil
	switch {
	case cfg.WarmStarts != nil:
		for j, w := range cfg.WarmStarts {
			for i := 0; i < n; i++ {
				cur[row(i)*k+j] = w[i]
			}
		}
	case cfg.WarmStart != nil:
		for i := 0; i < n; i++ {
			base := row(i) * k
			for j := 0; j < k; j++ {
				cur[base+j] = cfg.WarmStart[i]
			}
		}
	default:
		copy(cur, jump)
	}
	if cfg.Algorithm == AlgoPowerIteration && warmStarted {
		// Power iteration operates on probability distributions (the
		// results are rescaled to the linear solution afterwards), so a
		// warm start — typically a previous linear-scale result — is
		// normalized back onto the simplex to remain a near-fixpoint.
		for j := 0; j < k; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += cur[i*k+j]
			}
			if s > 0 {
				invS := 1 / s
				for i := 0; i < n; i++ {
					cur[i*k+j] *= invS
				}
			}
		}
	}

	workers := 1
	if e.pool != nil && n >= parallelThreshold {
		workers = e.pool.workers
	}
	e.partial = growBuf(e.partial, workers*k)

	start := time.Now()
	layout, precision := LayoutFlat, PrecisionFloat64
	if blocked {
		layout = LayoutBlocked
		precision = cfg.Precision
	}
	stats := &SolveStats{
		Algorithm:   cfg.Algorithm,
		Layout:      layout,
		Precision:   precision,
		Batch:       k,
		Workers:     workers,
		WarmStarted: warmStarted,
	}
	octx := cfg.Obs
	sp := octx.Span("pagerank.solve")
	if sp != nil {
		sp.SetAttr("algorithm", cfg.Algorithm.String())
		sp.SetAttr("layout", layout.String())
		sp.SetAttr("batch", k)
		sp.SetAttr("nodes", n)
		sp.SetAttr("workers", workers)
		if tid := octx.TraceID(); tid != "" {
			sp.SetAttr("trace_id", tid)
		}
	}
	// traced gates all per-iteration telemetry; span events and Logf
	// lines are rendered from the same TraceEvent, so verbose output
	// and the JSON trace cannot diverge.
	traced := cfg.Trace != nil || sp != nil || octx.Logging()
	m := e.g.NumEdges()
	c := cfg.Damping
	resid := make([]float64, k)    // per-vector residual of the last iteration
	jumpCoef := make([]float64, k) // per-vector jump coefficient of the sweep
	dsum := make([]float64, k)     // per-vector dangling mass (power iteration)
	firstIter := make([]int, k)    // iteration at which each vector first converged
	converged := make([]bool, k)
	left := k // vectors that have not yet met Epsilon

	// record folds one finished iteration into the stats, convergence
	// flags, and telemetry. Both the float32 phase and the float64 loop
	// report through it, so EdgesSwept counts every sweep identically
	// (all m in-edges) regardless of layout or precision — the BENCH
	// throughput numbers stay comparable across modes by construction.
	//
	// quantized marks float32-phase iterations, whose residuals are
	// measured between quantized iterates: a zero residual there means
	// the iterate hit the float32 fixpoint, not that it is within
	// Epsilon of the float64 solution (on small systems the two differ
	// by the full ~1e-7 quantization error). Convergence is therefore
	// only ever declared by float64 iterations; the low-precision phase
	// contributes residual telemetry and edge counts, never verdicts.
	record := func(it int, quantized bool) (maxRes float64) {
		stats.Iterations = it
		stats.EdgesSwept += m
		for j := 0; j < k; j++ {
			if resid[j] > maxRes {
				maxRes = resid[j]
			}
			if !quantized && !converged[j] && resid[j] < cfg.Epsilon {
				converged[j] = true
				firstIter[j] = it
				left--
			}
		}
		stats.Residuals = append(stats.Residuals, maxRes)
		if traced {
			ev := TraceEvent{
				Algorithm: cfg.Algorithm,
				Batch:     k,
				Iteration: it,
				Residual:  maxRes,
				Elapsed:   time.Since(start),
			}
			if cfg.Trace != nil {
				cfg.Trace(ev)
			}
			if sp != nil || octx.Logging() {
				msg := ev.String()
				sp.Event(msg)
				octx.Logf("%s", msg)
			}
		}
		return maxRes
	}

	it := 0
	if blocked && cfg.Precision == PrecisionFloat32 && !warmStarted {
		// Leading low-precision phase; it leaves the promoted iterate in
		// cur. Warm starts skip it: they are typically already below the
		// float32 quantization floor.
		var f32err error
		it, f32err = e.runFloat32Phase(vs, cfg, stats, k, jump, cur, jumpCoef, dsum, resid, dangling, workers, record)
		if f32err != nil {
			return nil, fmt.Errorf("pagerank: %w", f32err)
		}
	}
	var contrib, contribNext []float64
	if blocked {
		e.contribA = growBuf(e.contribA, size)
		e.contribB = growBuf(e.contribB, size)
		initContrib(e.contribA, cur, e.blk.invDeg, k)
		contrib, contribNext = e.contribA, e.contribB
	}
	fullWrites := 0 // blocked sweeps since the float64 double buffers were seeded
	for left > 0 && it < cfg.MaxIter {
		it++
		for j := 0; j < k; j++ {
			jumpCoef[j] = 1 - c
		}
		if cfg.Algorithm == AlgoPowerIteration {
			// Reinject the random-walk mass lost at dangling nodes as
			// c·dᵀp·v, folded into the sweep's jump coefficient.
			danglingSums(dangling, cur, k, dsum)
			for j := 0; j < k; j++ {
				jumpCoef[j] += c * dsum[j]
			}
		}

		switch {
		case blocked:
			// See runFloat32Phase: Jacobi's in-degree-0 rows are
			// constant, so after two seeding sweeps they drop out.
			skipEmpty := cfg.Algorithm == AlgoJacobi && fullWrites >= 2
			sweepBlocked(e, k, c, jumpCoef, jump, cur, next, contrib, contribNext, workers, resid, skipEmpty)
			fullWrites++
			cur, next = next, cur
			contrib, contribNext = contribNext, contrib
		case cfg.Algorithm == AlgoGaussSeidel:
			e.sweepGaussSeidel(cur, jump, k, c, resid)
		default: // Jacobi and power iteration: out-of-place pull sweep
			e.sweepPull(cur, next, jump, jumpCoef, k, c, workers, resid)
			cur, next = next, cur
		}

		if record(it, false) < cfg.Epsilon {
			break
		}
	}
	stats.finish(time.Since(start))
	if octx != nil {
		reg := octx.Registry()
		reg.Counter("pagerank.solves_total").Inc()
		reg.Counter("pagerank.batch_vectors_total").Add(int64(k))
		reg.Counter("pagerank.iterations_total").Add(int64(stats.Iterations))
		reg.Counter("pagerank.edges_swept_total").Add(stats.EdgesSwept)
		reg.Histogram("pagerank.solve_seconds").Observe(stats.WallTime.Seconds())
	}
	if cfg.OnStats != nil {
		cfg.OnStats(stats)
	}
	if sp != nil {
		sp.SetAttr("iterations", stats.Iterations)
		if len(stats.Residuals) > 0 {
			sp.SetAttr("final_residual", stats.Residuals[len(stats.Residuals)-1])
		}
		sp.SetAttr("edges_swept", stats.EdgesSwept)
		sp.End()
	}
	// The swap leaves the freshest iterate in cur; remember it for the
	// next solve's buffer reuse.
	e.cur, e.next = cur, next
	if blocked {
		e.contribA, e.contribB = contrib, contribNext
	}

	// Power iteration converges to the stationary distribution of the
	// augmented dangling-reinjected chain, which differs from the
	// linear-system solution exactly by the scale factor below (Vigna's
	// "strongly preferable" pseudorank correction): with D = dᵀp the
	// stationary fixpoint satisfies p = cTᵀp + (c·D + 1−c)·v, so
	// dividing by (c·D + 1−c)/(1−c) yields the solution of
	// (I − cTᵀ)x = (1−c)v. Rescaling here makes every algorithm return
	// the same vector: downstream consumers (mass.Derive, the serve
	// snapshots) never see a formulation-dependent scale.
	var scale []float64
	if cfg.Algorithm == AlgoPowerIteration {
		danglingSums(dangling, cur, k, dsum)
		scale = make([]float64, k)
		for j := range scale {
			scale[j] = (1 - c) / ((1 - c) + c*dsum[j])
		}
	}

	results := make([]*Result, k)
	for j := 0; j < k; j++ {
		scores := make(Vector, n)
		s := 1.0
		if scale != nil {
			s = scale[j]
		}
		for i := 0; i < n; i++ {
			scores[i] = cur[row(i)*k+j] * s
		}
		iters := firstIter[j]
		if iters == 0 {
			iters = stats.Iterations
		}
		results[j] = &Result{
			Scores:     scores,
			Iterations: iters,
			Residual:   resid[j],
			Converged:  converged[j],
			Stats:      stats,
		}
	}
	if err := vectorCheck(results); err != nil {
		return nil, fmt.Errorf("pagerank: %w", err)
	}
	if !cfg.AllowTruncated {
		worst := -1
		for j := 0; j < k; j++ {
			if !converged[j] && (worst < 0 || resid[j] > resid[worst]) {
				worst = j
			}
		}
		if worst >= 0 {
			return results, &ErrNotConverged{
				Algorithm:  cfg.Algorithm,
				Iterations: stats.Iterations,
				Residual:   resid[worst],
				Epsilon:    cfg.Epsilon,
				Column:     worst,
			}
		}
	}
	return results, nil
}

// float32SwitchTol is the residual bound, relative to the largest
// jump-vector L1 norm of the batch, at which the float32 phase hands
// over to the float64 finish: past this point the iterate change
// approaches the float32 quantization floor (~1e-7 relative) and
// further low-precision sweeps stop converging.
const float32SwitchTol = 2e-6

// runFloat32Phase runs leading blocked sweeps with float32 score
// storage (float64 accumulation throughout) until the residual nears
// the float32 floor, the solve converges outright, or progress stalls.
// It promotes the iterate into cur and returns the iterations used.
// The error is non-nil only under `-tags vectorcheck`, when the
// low-precision iterate fails the finiteness guard before promotion.
func (e *Engine) runFloat32Phase(vs []Vector, cfg Config, stats *SolveStats, k int, jump, cur []float64, jumpCoef, dsum, resid []float64, dangling []graph.NodeID, workers int, record func(int, bool) float64) (int, error) {
	size := len(cur)
	e.cur32 = growBufF(e.cur32, size)
	e.next32 = growBufF(e.next32, size)
	e.contribA32 = growBufF(e.contribA32, size)
	e.contribB32 = growBufF(e.contribB32, size)
	cur32, next32 := e.cur32, e.next32
	contrib32, contribNext32 := e.contribA32, e.contribB32
	for i, x := range cur {
		cur32[i] = float32(x)
	}
	initContrib(contrib32, cur32, e.blk.invDeg, k)
	swTol := 0.0
	for _, v := range vs {
		if nrm := v.Norm1(); nrm > swTol {
			swTol = nrm
		}
	}
	swTol *= float32SwitchTol
	c := cfg.Damping
	it := 0
	fullWrites := 0 // sweeps since the float32 double buffers were seeded
	prevRes := math.Inf(1)
	slow := 0
	for it < cfg.MaxIter {
		it++
		for j := 0; j < k; j++ {
			jumpCoef[j] = 1 - c
		}
		if cfg.Algorithm == AlgoPowerIteration {
			danglingSums(dangling, cur32, k, dsum)
			for j := 0; j < k; j++ {
				jumpCoef[j] += c * dsum[j]
			}
		}
		// In-degree-0 rows hold the closed form (1−c)·v[z]; under Jacobi
		// the coefficient never moves, so once both buffer generations
		// carry it the sweep skips those rows (power iteration's
		// dangling reinjection changes jumpCoef every sweep, so it
		// always rewrites them).
		skipEmpty := cfg.Algorithm == AlgoJacobi && fullWrites >= 2
		sweepBlocked(e, k, c, jumpCoef, jump, cur32, next32, contrib32, contribNext32, workers, resid, skipEmpty)
		fullWrites++
		cur32, next32 = next32, cur32
		contrib32, contribNext32 = contribNext32, contrib32
		maxRes := record(it, true)
		if maxRes < cfg.Epsilon || maxRes <= swTol {
			break
		}
		// Stalling near the float32 floor shows up as consecutive
		// iterations without the usual geometric contraction.
		if maxRes > 0.9*prevRes {
			if slow++; slow >= 2 {
				break
			}
		} else {
			slow = 0
		}
		prevRes = maxRes
	}
	stats.Float32Iterations = it
	e.cur32, e.next32 = cur32, next32
	e.contribA32, e.contribB32 = contrib32, contribNext32
	if err := vectorCheckF32(cur32, k); err != nil {
		return it, err
	}
	// Promote: the float64 loop continues from the float32 iterate.
	for i, x := range cur32 {
		cur[i] = float64(x)
	}
	return it, nil
}

// sweepPull computes next ← c·Tᵀcur + jumpCoef·v for every vector of
// the batch with one pass over the in-neighbor lists, and accumulates
// the per-vector L1 residual ‖next − cur‖₁ into resid. Pull-style
// sweeps write each next[y] from exactly one goroutine, so no locking
// is needed.
func (e *Engine) sweepPull(cur, next, jump, jumpCoef []float64, k int, c float64, workers int, resid []float64) {
	n := e.g.NumNodes()
	if workers <= 1 {
		for j := 0; j < k; j++ {
			resid[j] = 0
		}
		e.pullRange(cur, next, jump, jumpCoef, k, c, 0, n, resid)
		return
	}
	partial := e.partial[:workers*k]
	for i := range partial {
		partial[i] = 0
	}
	e.pool.run(n, func(chunk, lo, hi int) {
		e.pullRange(cur, next, jump, jumpCoef, k, c, lo, hi, partial[chunk*k:(chunk+1)*k])
	})
	for j := 0; j < k; j++ {
		resid[j] = 0
		for w := 0; w < workers; w++ {
			resid[j] += partial[w*k+j]
		}
	}
}

// pullRange is the sweep kernel over nodes [lo, hi); acc accumulates
// the per-vector L1 residual of the range.
func (e *Engine) pullRange(cur, next, jump, jumpCoef []float64, k int, c float64, lo, hi int, acc []float64) {
	g, inv := e.g, e.inv
	if k == 1 {
		// Scalar fast path: identical memory behavior to a classic
		// single-vector sweep, with the residual fused in.
		coef, a := jumpCoef[0], acc[0]
		for y := lo; y < hi; y++ {
			sum := 0.0
			for _, x := range g.InNeighbors(graph.NodeID(y)) {
				sum += cur[x] * inv[x]
			}
			nv := c*sum + coef*jump[y]
			next[y] = nv
			d := nv - cur[y]
			if d < 0 {
				d = -d
			}
			a += d
		}
		acc[0] = a
		return
	}
	if k == 2 {
		// Two-column fast path: EstimateFromCore's (p, p') pair is the
		// most common batch. Keeping both running sums in registers
		// makes the shared sweep cost barely more than a scalar one.
		coef0, coef1 := jumpCoef[0], jumpCoef[1]
		a0, a1 := acc[0], acc[1]
		for y := lo; y < hi; y++ {
			sum0, sum1 := 0.0, 0.0
			for _, x := range g.InNeighbors(graph.NodeID(y)) {
				w := inv[x]
				base := int(x) * 2
				sum0 += cur[base] * w
				sum1 += cur[base+1] * w
			}
			base := y * 2
			nv0 := c*sum0 + coef0*jump[base]
			nv1 := c*sum1 + coef1*jump[base+1]
			next[base] = nv0
			next[base+1] = nv1
			d0 := nv0 - cur[base]
			if d0 < 0 {
				d0 = -d0
			}
			d1 := nv1 - cur[base+1]
			if d1 < 0 {
				d1 = -d1
			}
			a0 += d0
			a1 += d1
		}
		acc[0], acc[1] = a0, a1
		return
	}
	sums := make([]float64, k)
	for y := lo; y < hi; y++ {
		for j := range sums {
			sums[j] = 0
		}
		for _, x := range g.InNeighbors(graph.NodeID(y)) {
			w := inv[x]
			base := int(x) * k
			for j := 0; j < k; j++ {
				sums[j] += cur[base+j] * w
			}
		}
		base := y * k
		for j := 0; j < k; j++ {
			nv := c*sums[j] + jumpCoef[j]*jump[base+j]
			next[base+j] = nv
			d := nv - cur[base+j]
			if d < 0 {
				d = -d
			}
			acc[j] += d
		}
	}
}

// sweepGaussSeidel runs one in-place sweep per vector of the batch,
// using already-updated scores within the iteration. It is inherently
// sequential but still shares the single adjacency traversal.
func (e *Engine) sweepGaussSeidel(p, jump []float64, k int, c float64, resid []float64) {
	g, inv := e.g, e.inv
	n := g.NumNodes()
	oneMinusC := 1 - c
	for j := 0; j < k; j++ {
		resid[j] = 0
	}
	if k == 1 {
		delta := 0.0
		for y := 0; y < n; y++ {
			sum := 0.0
			for _, x := range g.InNeighbors(graph.NodeID(y)) {
				sum += p[x] * inv[x]
			}
			nv := c*sum + oneMinusC*jump[y]
			d := nv - p[y]
			if d < 0 {
				d = -d
			}
			delta += d
			p[y] = nv
		}
		resid[0] = delta
		return
	}
	sums := make([]float64, k)
	for y := 0; y < n; y++ {
		for j := range sums {
			sums[j] = 0
		}
		for _, x := range g.InNeighbors(graph.NodeID(y)) {
			w := inv[x]
			base := int(x) * k
			for j := 0; j < k; j++ {
				sums[j] += p[base+j] * w
			}
		}
		base := y * k
		for j := 0; j < k; j++ {
			nv := c*sums[j] + oneMinusC*jump[base+j]
			d := nv - p[base+j]
			if d < 0 {
				d = -d
			}
			resid[j] += d
			p[base+j] = nv
		}
	}
}

func growBuf(buf []float64, size int) []float64 {
	if cap(buf) < size {
		return make([]float64, size)
	}
	return buf[:size]
}
