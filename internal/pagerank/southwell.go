package pagerank

import (
	"fmt"
	"math"
	"time"

	"spammass/internal/graph"
)

// solveSouthwell runs the AlgoGaussSouthwell solver: the push
// machinery of Engine.Refine promoted to a full solver mode. Instead
// of sweeping all m edges per iteration it relaxes nodes in residual
// order until ‖r‖₁ < Epsilon, with the total work bounded by MaxIter
// full-sweep equivalents. Vectors of a batch are solved sequentially —
// pushes are inherently single-threaded, and unlike pull sweeps they
// share no adjacency traversal across columns.
//
// Gauss-Southwell always runs on the flat adjacency: pushes are
// random-access by nature, so the compressed blocked stream (built for
// streaming sweeps) has nothing to offer them. Result.Iterations
// reports worklist scans, the closest analogue of sweeps;
// Stats.EdgesSwept counts adjacency entries actually touched (the
// initial residual sweep for warm starts plus one out-neighbor list
// per push), keeping EdgesPerSecond honest next to sweep solvers.
//
// Callers hold e.mu and have validated cfg and the jump vectors.
func (e *Engine) solveSouthwell(vs []Vector, cfg Config) ([]*Result, error) {
	n, k := e.g.NumNodes(), len(vs)
	g, inv, c := e.g, e.inv, cfg.Damping
	m := g.NumEdges()
	start := time.Now()
	stats := &SolveStats{
		Algorithm:   AlgoGaussSouthwell,
		Layout:      LayoutFlat,
		Precision:   PrecisionFloat64,
		Batch:       k,
		Workers:     1,
		WarmStarted: cfg.WarmStart != nil || cfg.WarmStarts != nil,
	}
	octx := cfg.Obs
	sp := octx.Span("pagerank.solve")
	if sp != nil {
		sp.SetAttr("algorithm", cfg.Algorithm.String())
		sp.SetAttr("layout", stats.Layout.String())
		sp.SetAttr("batch", k)
		sp.SetAttr("nodes", n)
		sp.SetAttr("workers", 1)
		if tid := octx.TraceID(); tid != "" {
			sp.SetAttr("trace_id", tid)
		}
	}
	traced := cfg.Trace != nil || sp != nil || octx.Logging()
	budget := int64(cfg.MaxIter) * (m + int64(n))

	results := make([]*Result, k)
	var ncErr *ErrNotConverged
	for j, v := range vs {
		var warm Vector
		switch {
		case cfg.WarmStarts != nil:
			warm = cfg.WarmStarts[j]
		case cfg.WarmStart != nil:
			warm = cfg.WarmStart
		}
		x := make(Vector, n)
		r := make([]float64, n)
		rsum := 0.0
		st := &RefineStats{}
		var work int64
		if warm != nil {
			copy(x, warm)
			for y := 0; y < n; y++ {
				sum := 0.0
				for _, z := range g.InNeighbors(graph.NodeID(y)) {
					sum += x[z] * inv[z]
				}
				r[y] = c*sum + (1-c)*v[y] - x[y]
				rsum += math.Abs(r[y])
			}
			work = m + int64(n)
			st.EdgesSwept = m
		} else {
			// Cold start from x = 0: the residual is (1−c)·v exactly,
			// no sweep required.
			oneMinusC := 1 - c
			for y := 0; y < n; y++ {
				r[y] = oneMinusC * v[y]
				rsum += math.Abs(r[y])
			}
			work = int64(n)
		}
		st.InitialResidual = rsum
		col := j
		onScan := func(rs float64) {
			if col == 0 {
				// Batches run column-serially, so per-scan residuals of
				// different columns do not align; the stats carry the
				// first column's trajectory.
				stats.Residuals = append(stats.Residuals, rs)
			}
			if traced {
				ev := TraceEvent{
					Algorithm: AlgoGaussSouthwell,
					Batch:     k,
					Iteration: st.Scans,
					Residual:  rs,
					Elapsed:   time.Since(start),
				}
				if cfg.Trace != nil {
					cfg.Trace(ev)
				}
				if sp != nil || octx.Logging() {
					msg := ev.String()
					sp.Event(msg)
					octx.Logf("%s", msg)
				}
			}
		}
		pushRun(g, inv, c, x, r, rsum, cfg.Epsilon, work, budget, false, onScan, st)
		stats.EdgesSwept += st.EdgesSwept
		if st.Scans > stats.Iterations {
			stats.Iterations = st.Scans
		}
		iters := st.Scans
		if iters == 0 {
			iters = 1
		}
		results[j] = &Result{
			Scores:     x,
			Iterations: iters,
			Residual:   st.FinalResidual,
			Converged:  st.Converged,
			Stats:      stats,
		}
		if !st.Converged && (ncErr == nil || st.FinalResidual > ncErr.Residual) {
			ncErr = &ErrNotConverged{
				Algorithm:  AlgoGaussSouthwell,
				Iterations: iters,
				Residual:   st.FinalResidual,
				Epsilon:    cfg.Epsilon,
				Column:     j,
			}
		}
	}
	if stats.Iterations == 0 {
		stats.Iterations = 1
	}
	stats.finish(time.Since(start))
	if octx != nil {
		reg := octx.Registry()
		reg.Counter("pagerank.solves_total").Inc()
		reg.Counter("pagerank.batch_vectors_total").Add(int64(k))
		reg.Counter("pagerank.iterations_total").Add(int64(stats.Iterations))
		reg.Counter("pagerank.edges_swept_total").Add(stats.EdgesSwept)
		reg.Histogram("pagerank.solve_seconds").Observe(stats.WallTime.Seconds())
	}
	if cfg.OnStats != nil {
		cfg.OnStats(stats)
	}
	if sp != nil {
		sp.SetAttr("iterations", stats.Iterations)
		if len(stats.Residuals) > 0 {
			sp.SetAttr("final_residual", stats.Residuals[len(stats.Residuals)-1])
		}
		sp.SetAttr("edges_swept", stats.EdgesSwept)
		sp.End()
	}
	if err := vectorCheck(results); err != nil {
		return nil, fmt.Errorf("pagerank: %w", err)
	}
	if !cfg.AllowTruncated && ncErr != nil {
		return results, ncErr
	}
	return results, nil
}
