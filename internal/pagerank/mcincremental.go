package pagerank

import (
	"fmt"
	"math/rand"

	"spammass/internal/graph"
)

// IncrementalMC is the Monte-Carlo estimator of MonteCarlo with its
// walks kept, so the estimate can be maintained under graph churn
// instead of re-simulated: when a delta dirties some hosts, only the
// walk suffixes that pass through them are re-sampled (the localized
// re-walk scheme of Engström & Silvestrov's evolving-link-structure
// treatment, and of Bahmani et al.'s incremental PageRank). On a batch
// touching k of n hosts, the expected repair cost is O(k·R·L) against
// O(n·R·L) for a fresh simulation — the ratio that makes bounded-
// staleness "anytime" serving affordable between exact solves.
//
// The estimator requires a jump vector that is uniform over its
// support: every start node carries the same weight. Both vectors of
// the spam-mass pair satisfy this — v is 1/n over all nodes and w is
// γ/|core| over the good core — which is what lets one stored-walk
// structure serve either side of M̃ = p − p'.
type IncrementalMC struct {
	g      *graph.Graph
	cfg    MonteCarloConfig
	rng    *rand.Rand
	weight float64          // jump weight shared by every start
	starts []graph.NodeID   // walk origins (the jump vector's support)
	walks  [][]graph.NodeID // R walks per start; walks[i*R+r] starts at starts[i]
	counts []float64        // raw visit counts over all stored walks
}

// MCUpdateStats reports what one Update did.
type MCUpdateStats struct {
	// WalksReused survived the delta untouched (after ID remapping).
	WalksReused int
	// WalksRepaired had their suffix re-sampled from a dirtied host.
	WalksRepaired int
	// WalksNew were simulated from scratch for new start nodes.
	WalksNew int
	// Steps is the number of random-walk steps taken (repair + new).
	Steps int
}

// NewIncrementalMC simulates the initial walk set: cfg.WalksPerNode
// walks from each start, every start carrying jump weight `weight`.
func NewIncrementalMC(g *graph.Graph, starts []graph.NodeID, weight float64, cfg MonteCarloConfig) (*IncrementalMC, error) {
	if cfg.Damping <= 0 || cfg.Damping >= 1 {
		return nil, fmt.Errorf("pagerank: damping %v outside (0,1)", cfg.Damping)
	}
	if cfg.WalksPerNode <= 0 {
		return nil, fmt.Errorf("pagerank: WalksPerNode must be positive")
	}
	if weight <= 0 {
		return nil, fmt.Errorf("pagerank: jump weight %v must be positive", weight)
	}
	if len(starts) == 0 {
		return nil, fmt.Errorf("pagerank: no start nodes")
	}
	n := g.NumNodes()
	for _, s := range starts {
		if int(s) >= n {
			return nil, fmt.Errorf("pagerank: start node %d outside graph of %d nodes", s, n)
		}
	}
	m := &IncrementalMC{
		g:      g,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		weight: weight,
		starts: append([]graph.NodeID(nil), starts...),
		walks:  make([][]graph.NodeID, len(starts)*cfg.WalksPerNode),
		counts: make([]float64, n),
	}
	for i, s := range m.starts {
		for r := 0; r < cfg.WalksPerNode; r++ {
			m.walks[i*cfg.WalksPerNode+r] = m.simulate(s, nil)
		}
	}
	m.recount()
	return m, nil
}

// simulate runs one walk from s on the current graph, appending to
// path (which may carry an already-walked prefix ending at s's
// predecessor — s itself is appended here).
func (m *IncrementalMC) simulate(s graph.NodeID, path []graph.NodeID) []graph.NodeID {
	node := s
	for {
		path = append(path, node)
		adj := m.g.OutNeighbors(node)
		if len(adj) == 0 || m.rng.Float64() >= m.cfg.Damping {
			return path
		}
		node = adj[m.rng.Intn(len(adj))]
	}
}

// continueFrom re-samples a walk suffix: the walk is already at `node`
// (kept in path), and the continue-or-stop decision at node is drawn
// fresh — required because node's out-distribution changed.
func (m *IncrementalMC) continueFrom(path []graph.NodeID) ([]graph.NodeID, int) {
	node := path[len(path)-1]
	steps := 0
	for {
		adj := m.g.OutNeighbors(node)
		if len(adj) == 0 || m.rng.Float64() >= m.cfg.Damping {
			return path, steps
		}
		node = adj[m.rng.Intn(len(adj))]
		path = append(path, node)
		steps++
	}
}

// recount rebuilds the visit counts from the stored walks. Linear in
// total stored steps; cheap next to the simulation itself and immune
// to drift from incremental bookkeeping.
func (m *IncrementalMC) recount() {
	for i := range m.counts {
		m.counts[i] = 0
	}
	for _, w := range m.walks {
		for _, y := range w {
			m.counts[y]++
		}
	}
}

// Scores returns the current estimate: for the uniform-over-support
// jump, p_y = (1−c) · weight · visits(y) / R.
func (m *IncrementalMC) Scores() Vector {
	p := make(Vector, len(m.counts))
	scale := (1 - m.cfg.Damping) * m.weight / float64(m.cfg.WalksPerNode)
	for y, c := range m.counts {
		p[y] = c * scale
	}
	return p
}

// NumWalks returns the number of stored walks.
func (m *IncrementalMC) NumWalks() int { return len(m.walks) }

// Starts returns a copy of the walk origins.
func (m *IncrementalMC) Starts() []graph.NodeID {
	return append([]graph.NodeID(nil), m.starts...)
}

// Update repairs the walk set after a graph mutation. g2 is the new
// graph; remap maps every old node ID to its new ID (−1 = removed,
// the delta.Result.Remap contract); dirty lists the NEW IDs of every
// surviving host whose out-link set changed (edge sources, including
// in-neighbors of removed hosts); starts2 and weight2 describe the new
// jump support (new entries get fresh walks, vanished ones drop
// theirs).
//
// Walk repair: each stored walk is remapped node by node. Reaching a
// dirty host keeps it and re-samples the rest of the walk there — its
// old suffix was drawn from out-links that no longer exist as sampled.
// Reaching a removed host truncates before it and re-samples from the
// predecessor (a fallback: a complete dirty set already catches the
// predecessor, whose out-set lost that edge). Walks that avoid dirty
// and removed hosts are valid samples of the new chain exactly as they
// are, and survive untouched.
func (m *IncrementalMC) Update(g2 *graph.Graph, remap []int64, dirty []graph.NodeID, starts2 []graph.NodeID, weight2 float64) (MCUpdateStats, error) {
	var st MCUpdateStats
	if len(remap) != m.g.NumNodes() {
		return st, fmt.Errorf("pagerank: remap covers %d nodes, graph has %d", len(remap), m.g.NumNodes())
	}
	if weight2 <= 0 {
		return st, fmt.Errorf("pagerank: jump weight %v must be positive", weight2)
	}
	if len(starts2) == 0 {
		return st, fmt.Errorf("pagerank: no start nodes")
	}
	n2 := g2.NumNodes()
	for _, s := range starts2 {
		if int(s) >= n2 {
			return st, fmt.Errorf("pagerank: start node %d outside graph of %d nodes", s, n2)
		}
	}
	isDirty := make(map[graph.NodeID]bool, len(dirty))
	for _, d := range dirty {
		if int(d) >= n2 {
			return st, fmt.Errorf("pagerank: dirty node %d outside graph of %d nodes", d, n2)
		}
		isDirty[d] = true
	}

	// Index the surviving old starts by their new ID.
	R := m.cfg.WalksPerNode
	oldByNew := make(map[graph.NodeID]int, len(m.starts))
	for i, s := range m.starts {
		if ns := remap[s]; ns >= 0 {
			oldByNew[graph.NodeID(ns)] = i
		}
	}

	newWalks := make([][]graph.NodeID, len(starts2)*R)
	m.g = g2 // simulate/continueFrom walk the new graph from here on
	for j, s := range starts2 {
		oi, ok := oldByNew[s]
		if !ok {
			for r := 0; r < R; r++ {
				w := m.simulate(s, nil)
				newWalks[j*R+r] = w
				st.WalksNew++
				st.Steps += len(w) - 1
			}
			continue
		}
		for r := 0; r < R; r++ {
			old := m.walks[oi*R+r]
			repaired := old[:0] // reuse the backing array; old IDs are consumed left to right
			broken := false
			for _, y := range old {
				ny := remap[y]
				if ny < 0 {
					// Predecessor re-walk fallback; with a complete dirty
					// set the predecessor already broke the walk.
					broken = true
					break
				}
				// In-place remap: position k is written only after old[k]
				// was read, so reusing old's backing array is safe.
				repaired = append(repaired, graph.NodeID(ny))
				if isDirty[graph.NodeID(ny)] {
					broken = true
					break
				}
			}
			if !broken {
				newWalks[j*R+r] = repaired
				st.WalksReused++
				continue
			}
			if len(repaired) == 0 {
				// The start itself was removed yet reappears in starts2:
				// impossible under remap, but degrade to a fresh walk.
				w := m.simulate(s, nil)
				newWalks[j*R+r] = w
				st.WalksNew++
				st.Steps += len(w) - 1
				continue
			}
			w, steps := m.continueFrom(repaired)
			newWalks[j*R+r] = w
			st.WalksRepaired++
			st.Steps += steps
		}
	}
	m.starts = append(m.starts[:0:0], starts2...)
	m.walks = newWalks
	m.weight = weight2
	m.counts = make([]float64, n2)
	m.recount()
	return st, nil
}
