package pagerank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"spammass/internal/graph"
	"spammass/internal/paperfig"
	"spammass/internal/testutil"
)

// TestTheorem1 verifies that the PageRank of every node equals the sum
// of the contributions of all nodes: p = Σ_x qˣ.
func TestTheorem1(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 2+rng.Intn(25), 4)
		n := g.NumNodes()
		v := UniformJump(n)
		p := PR(g, v, DefaultConfig())
		sum := make(Vector, n)
		for x := 0; x < n; x++ {
			qx, err := NodeContribution(g, graph.NodeID(x), v, DefaultConfig())
			if err != nil {
				return false
			}
			sum.Add(qx)
		}
		return testutil.MaxAbsDiff(p, sum) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestTheorem2WalkOracle verifies Theorem 2 against the literal walk
// enumeration of Section 3.2: qˣ = PR(vˣ) matches the walk sums.
func TestTheorem2WalkOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := testutil.RandomGraph(rng, 2+rng.Intn(7), 2)
		n := g.NumNodes()
		v := UniformJump(n)
		for x := 0; x < n; x++ {
			qx, err := NodeContribution(g, graph.NodeID(x), v, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			oracle, bound := WalkContribution(g, graph.NodeID(x), v, c, 1e-10)
			if d := testutil.MaxAbsDiff(qx, oracle); d > bound+1e-9 {
				t.Errorf("trial %d node %d: linear vs walk oracle differ by %v (truncation bound %v)", trial, x, d, bound)
			}
		}
	}
}

// TestWalkOracleExactOnDAG uses acyclic graphs, where walk enumeration
// is exact (finitely many walks), for a tighter comparison.
func TestWalkOracleExactOnDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		g := testutil.RandomDAG(rng, 3+rng.Intn(10), 3)
		n := g.NumNodes()
		v := UniformJump(n)
		p := PR(g, v, DefaultConfig())
		oracle, _ := WalkPageRank(g, v, c, 0) // tol 0: enumerate all (finite) walks
		if d := testutil.MaxAbsDiff(p, oracle); d > 1e-10 {
			t.Errorf("trial %d: PageRank vs exact walk sum differ by %v", trial, d)
		}
	}
}

// TestSelfContributionNoCircuit checks that a node not on any circuit
// contributes exactly (1−c)·v_x to itself (the virtual circuit Z_x).
func TestSelfContributionNoCircuit(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}}) // acyclic chain
	v := UniformJump(3)
	for x := 0; x < 3; x++ {
		qx, err := NodeContribution(g, graph.NodeID(x), v, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		want := (1 - c) * v[x]
		if !testutil.AlmostEqual(qx[x], want, 1e-12) {
			t.Errorf("q_%d^%d = %v, want (1−c)v = %v", x, x, qx[x], want)
		}
	}
}

// TestSelfContributionWithCircuit checks that circuits add to the
// self-contribution: on a 2-cycle, q_0^0 = (1−c)v₀·(1+c²+c⁴+…) =
// (1−c)v₀/(1−c²).
func TestSelfContributionWithCircuit(t *testing.T) {
	g := graph.FromEdges(2, [][2]graph.NodeID{{0, 1}, {1, 0}})
	v := UniformJump(2)
	qx, err := NodeContribution(g, 0, v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - c) * v[0] / (1 - c*c)
	if !testutil.AlmostEqual(qx[0], want, 1e-12) {
		t.Errorf("q_0^0 = %v, want %v", qx[0], want)
	}
}

// TestSetContributionLinearity verifies q^U = Σ_{x∈U} qˣ.
func TestSetContributionLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := testutil.RandomGraph(rng, 20, 3)
	v := UniformJump(20)
	set := []graph.NodeID{1, 4, 9, 16}
	qU, err := Contribution(g, set, v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := make(Vector, 20)
	for _, x := range set {
		qx, err := NodeContribution(g, x, v, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sum.Add(qx)
	}
	if d := testutil.MaxAbsDiff(qU, sum); d > 1e-10 {
		t.Errorf("q^U vs Σqˣ differ by %v", d)
	}
}

// TestUnconnectedContributionZero: if there is no walk from x to y the
// contribution is zero.
func TestUnconnectedContributionZero(t *testing.T) {
	g := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {2, 3}})
	v := UniformJump(4)
	q0, err := NodeContribution(g, 0, v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range []graph.NodeID{2, 3} {
		if q0[y] != 0 {
			t.Errorf("q_%d^0 = %v, want 0 for unconnected node", y, q0[y])
		}
	}
}

// TestFigure2Contributions checks the worked contributions of
// Section 3.3: q_x^{g0..g3} = (2c+2c²) and q_x^{s0..s6} = (c+6c²),
// in scaled units.
func TestFigure2Contributions(t *testing.T) {
	f := paperfig.NewFigure2()
	v := UniformJump(12)
	qGood, err := Contribution(f.Graph, f.GoodNodes(), v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qSpam, err := Contribution(f.Graph, f.S[:], v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sGood := qGood.Scaled(c)
	sSpam := qSpam.Scaled(c)
	if want := 2*c + 2*c*c; !testutil.AlmostEqual(sGood[f.X], want, 1e-9) {
		t.Errorf("scaled q_x^good = %v, want %v", sGood[f.X], want)
	}
	if want := c + 6*c*c; !testutil.AlmostEqual(sSpam[f.X], want, 1e-9) {
		t.Errorf("scaled q_x^spam = %v, want %v", sSpam[f.X], want)
	}
	// Section 3.3: for c = 0.85, q_x^spam = 1.65·q_x^good.
	if ratio := sSpam[f.X] / sGood[f.X]; !testutil.AlmostEqual(ratio, 1.65, 0.005) {
		t.Errorf("spam/good contribution ratio = %v, paper prints 1.65", ratio)
	}
}

// TestLinkContribution checks the per-link contributions quoted for
// Figure 1: the links from g0 and g1 contribute c(1−c)/n each, and the
// link from s0 contributes (c+kc²)(1−c)/n.
func TestLinkContribution(t *testing.T) {
	const k = 5
	f := paperfig.NewFigure1(k)
	n := f.Graph.NumNodes()
	v := UniformJump(n)
	scale := float64(n) / (1 - c)

	got, err := LinkContribution(f.Graph, f.G0, f.X, v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := c; !testutil.AlmostEqual(got*scale, want, 1e-8) {
		t.Errorf("scaled contribution of (g0,x) = %v, want %v", got*scale, want)
	}
	got, err = LinkContribution(f.Graph, f.S0, f.X, v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := c + k*c*c; !testutil.AlmostEqual(got*scale, want, 1e-8) {
		t.Errorf("scaled contribution of (s0,x) = %v, want %v", got*scale, want)
	}
	if _, err := LinkContribution(f.Graph, f.X, f.G0, v, DefaultConfig()); err == nil {
		t.Error("LinkContribution accepted a nonexistent edge")
	}
}
