package pagerank

import (
	"fmt"

	"spammass/internal/graph"
)

// This file computes contributions in the opposite direction from
// contribution.go: instead of "where does the mass of node x go?"
// (qˣ = PR(vˣ)), it answers "who contributes to node x?" — the vector
// (q_x^y)_y over all sources y. That is the forensics primitive: the
// supporters of a detected spam target are the nodes contributing the
// bulk of its PageRank.
//
// Writing q_x^y = (1−c)·v_y·r_y with r_y = Σ_{W ∈ W_yx} c^|W|·π(W)
// (plus r_x's virtual circuit term 1), the walk sums satisfy the
// reverse linear system
//
//	r_y = (c/out(y)) · Σ_{(y,z) ∈ E} r_z + [y = x] ,
//
// which a Jacobi iteration over out-neighbor lists solves directly.

// ContributionTo returns the vector q whose entry y is the PageRank
// contribution q_x^y of y to the single node x, under jump vector v.
// By Theorem 1, the entries sum to p_x.
func ContributionTo(g *graph.Graph, x graph.NodeID, v Vector, cfg Config) (Vector, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if len(v) != n {
		return nil, fmt.Errorf("pagerank: jump vector has length %d, want %d", len(v), n)
	}
	if int(x) >= n {
		return nil, fmt.Errorf("pagerank: node %d outside graph of %d nodes", x, n)
	}
	c := cfg.Damping
	cur := make(Vector, n)
	next := make(Vector, n)
	cur[x] = 1
	converged := false
	for it := 0; it < cfg.MaxIter; it++ {
		delta := 0.0
		for y := 0; y < n; y++ {
			adj := g.OutNeighbors(graph.NodeID(y))
			sum := 0.0
			for _, z := range adj {
				sum += cur[z]
			}
			val := 0.0
			if len(adj) > 0 {
				val = c * sum / float64(len(adj))
			}
			if graph.NodeID(y) == x {
				val++
			}
			d := val - cur[y]
			if d < 0 {
				d = -d
			}
			delta += d
			next[y] = val
		}
		cur, next = next, cur
		if delta < cfg.Epsilon {
			converged = true
			break
		}
	}
	if !converged {
		return nil, fmt.Errorf("pagerank: reverse contribution to %d did not converge in %d iterations", x, cfg.MaxIter)
	}
	q := make(Vector, n)
	for y := 0; y < n; y++ {
		q[y] = (1 - c) * v[y] * cur[y]
	}
	return q, nil
}

// Supporter is one contributor to a node's PageRank.
type Supporter struct {
	Node graph.NodeID
	// Contribution is q_x^node, the PageRank of the analyzed node
	// attributable to this supporter.
	Contribution float64
	// Share is Contribution / p_x.
	Share float64
}

// TopSupporters returns the k nodes contributing the most PageRank to
// x (excluding x's own contribution to itself), sorted by decreasing
// contribution, together with p_x for reference. A spam target's list
// is dominated by its boosting nodes; a reputable hub's list by other
// reputable nodes.
func TopSupporters(g *graph.Graph, x graph.NodeID, v Vector, cfg Config, k int) ([]Supporter, float64, error) {
	q, err := ContributionTo(g, x, v, cfg)
	if err != nil {
		return nil, 0, err
	}
	px := q.Sum()
	type pair struct {
		node graph.NodeID
		c    float64
	}
	var pairs []pair
	for y := 0; y < len(q); y++ {
		if graph.NodeID(y) != x && q[y] > 0 {
			pairs = append(pairs, pair{graph.NodeID(y), q[y]})
		}
	}
	// Partial selection sort: k is small.
	if k > len(pairs) {
		k = len(pairs)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(pairs); j++ {
			if pairs[j].c > pairs[best].c {
				best = j
			}
		}
		pairs[i], pairs[best] = pairs[best], pairs[i]
	}
	out := make([]Supporter, 0, k)
	for _, p := range pairs[:k] {
		s := Supporter{Node: p.node, Contribution: p.c}
		if px > 0 {
			s.Share = p.c / px
		}
		out = append(out, s)
	}
	return out, px, nil
}
