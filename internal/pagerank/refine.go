package pagerank

import (
	"fmt"
	"math"

	"spammass/internal/graph"
)

// refineBudgetSweeps bounds the total work Refine may spend, measured
// in full-sweep equivalents (one sweep ≈ m+n element touches). Past
// the budget Refine returns the partially repaired iterate and lets
// the solver finish the job; the bound keeps a badly perturbed warm
// start from costing more than the cold solve it is meant to replace.
const refineBudgetSweeps = 12

// RefineStats reports what a Refine call did.
type RefineStats struct {
	// Pushes is the number of Gauss-Southwell single-node relaxations.
	Pushes int64
	// Scans is the number of full passes over the residual vector used
	// to (re)build the push worklist.
	Scans int
	// InitialResidual and FinalResidual are ‖r‖₁ before and after, for
	// the system residual r = c·Tᵀx + (1−c)v − x.
	InitialResidual float64
	FinalResidual   float64
	// EdgesSwept counts adjacency entries actually touched: the m
	// in-edges of the initial residual sweep plus one out-neighbor list
	// per push. The unit is the same "edges" that SolveStats.EdgesSwept
	// counts for sweep solvers on any layout, so push work and sweep
	// work stay comparable in telemetry.
	EdgesSwept int64
	// Converged reports whether FinalResidual met the tolerance; false
	// means the work budget ran out first and the caller's solver is
	// expected to close the remaining gap.
	Converged bool
}

// Refine runs localized Gauss-Southwell push repair on x, in place,
// until the L1 residual of the linear PageRank system
//
//	x = c·Tᵀx + (1−c)·v
//
// drops below tol (or a work budget runs out). Where a solver sweep
// touches every edge to reduce the residual globally, a push relaxes
// one node y — x[y] absorbs its residual, which then reappears damped
// by c at y's out-neighbors — so the cost is proportional to where the
// residual actually lives. After a small graph delta the residual of a
// remapped warm start is concentrated around the changed edges, and
// Refine repairs it with work proportional to the churn, not the
// graph: the subsequent solve typically converges in one verification
// sweep.
//
// Refine is exact in the limit, but callers should treat it as an
// accelerator, not an authority: it hands the solver a better iterate,
// and the solver's own convergence test remains the correctness gate.
// The fixpoint above is the one Jacobi and Gauss-Seidel converge to;
// power iteration solves a different (dangling-reinjected) system, so
// engines configured with AlgoPowerIteration reject Refine.
func (e *Engine) Refine(x, v Vector, tol float64) (*RefineStats, error) {
	n := e.g.NumNodes()
	if len(x) != n {
		return nil, fmt.Errorf("pagerank: refine iterate has length %d, want %d", len(x), n)
	}
	if len(v) != n {
		return nil, fmt.Errorf("pagerank: refine jump vector has length %d, want %d", len(v), n)
	}
	if !(tol > 0) || math.IsInf(tol, 0) {
		return nil, fmt.Errorf("pagerank: refine tolerance %v, want a positive finite value", tol)
	}
	if e.cfg.Algorithm == AlgoPowerIteration {
		return nil, fmt.Errorf("pagerank: refine solves the linear system; the engine is configured for power iteration")
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, fmt.Errorf("pagerank: engine is closed")
	}

	octx := e.cfg.Obs
	sp := octx.Span("pagerank.refine")
	defer sp.End()

	g, inv, c := e.g, e.inv, e.cfg.Damping
	stats := &RefineStats{}
	budget := int64(refineBudgetSweeps) * (g.NumEdges() + int64(n))

	// Initial residual: one pull pass, the only full-graph sweep the
	// happy path pays.
	r := make([]float64, n)
	rsum := 0.0
	for y := 0; y < n; y++ {
		sum := 0.0
		for _, z := range g.InNeighbors(graph.NodeID(y)) {
			sum += x[z] * inv[z]
		}
		r[y] = c*sum + (1-c)*v[y] - x[y]
		rsum += math.Abs(r[y])
	}
	work := g.NumEdges() + int64(n)
	stats.EdgesSwept = g.NumEdges()
	stats.InitialResidual = rsum

	pushRun(g, inv, c, x, r, rsum, tol, work, budget, true, nil, stats)

	if sp != nil {
		sp.SetAttr("pushes", stats.Pushes)
		sp.SetAttr("scans", stats.Scans)
		sp.SetAttr("initial_residual", stats.InitialResidual)
		sp.SetAttr("final_residual", stats.FinalResidual)
		sp.SetAttr("converged", stats.Converged)
	}
	if octx != nil {
		reg := octx.Registry()
		reg.Counter("pagerank.refines_total").Inc()
		reg.Counter("pagerank.refine_pushes_total").Add(stats.Pushes)
	}
	return stats, nil
}

// pushRun is the Gauss-Southwell worklist core shared by Refine (bail
// = true: hand diffuse residuals back to the sweeping solver) and the
// AlgoGaussSouthwell solver mode (bail = false: push to convergence
// within the budget). It relaxes x in place given its residual vector
// r with ‖r‖₁ = rsum: every node whose residual exceeds a threshold is
// relaxed, relaxations cascade, then the threshold tightens and the
// residual is rescanned. Once the threshold reaches tol/(2n), a
// drained worklist implies ‖r‖₁ ≤ n·thresh ≤ tol/2. Each scan
// recomputes ‖r‖₁ exactly, so incremental tracking drift cannot
// accumulate across rounds.
//
// work is the element-touch count already spent by the caller (the
// initial residual build); the run stops when it reaches budget.
// onScan, if non-nil, observes ‖r‖₁ after every rescan. Scans, Pushes,
// EdgesSwept, FinalResidual, and Converged are accumulated into st.
func pushRun(g *graph.Graph, inv []float64, c float64, x, r []float64, rsum, tol float64, work, budget int64, bail bool, onScan func(rsum float64), st *RefineStats) {
	n := len(r)
	queued := make([]bool, n)
	q := make([]int32, 0, 256)
	floor := tol / float64(2*n)
	thresh := rsum / float64(2*n)
	if thresh < floor {
		thresh = floor
	}
	prevScan := math.Inf(1)
	prevPushes := int64(0)
	for rsum > tol && work < budget {
		rsum = 0
		q = q[:0]
		for y := 0; y < n; y++ {
			a := math.Abs(r[y])
			rsum += a
			if a > thresh {
				queued[y] = true
				q = append(q, int32(y))
			}
		}
		work += int64(n)
		st.Scans++
		if onScan != nil {
			onScan(rsum)
		}
		if rsum <= tol {
			break
		}
		// Once a pushing round stops halving the residual, the remaining
		// error is diffuse rather than churn-localized, and a solver's
		// streaming sweeps reduce it more cheaply than random-access
		// pushes can — hand the iterate back. (Rounds that did no pushes
		// only lowered the threshold; they carry no progress signal.)
		// Solver mode has no sweeps to fall back to and keeps pushing.
		if bail && st.Pushes > prevPushes && rsum > 0.5*prevScan {
			break
		}
		prevScan = rsum
		prevPushes = st.Pushes
		if len(q) == 0 {
			if thresh <= floor {
				break // numerically stuck
			}
			thresh = math.Max(thresh/8, floor)
			continue
		}
		for head := 0; head < len(q) && rsum > tol && work < budget; head++ {
			y := q[head]
			queued[y] = false
			d := r[y]
			if math.Abs(d) <= thresh {
				continue
			}
			x[y] += d
			rsum -= math.Abs(d)
			r[y] = 0
			out := g.OutNeighbors(graph.NodeID(y))
			w := c * d * inv[y]
			for _, z := range out {
				old := r[z]
				r[z] += w
				rsum += math.Abs(r[z]) - math.Abs(old)
				if !queued[z] && math.Abs(r[z]) > thresh {
					queued[z] = true
					q = append(q, int32(z))
				}
			}
			work += int64(len(out)) + 1
			st.EdgesSwept += int64(len(out))
			st.Pushes++
		}
		thresh = math.Max(thresh/8, floor)
	}
	st.FinalResidual = rsum
	st.Converged = rsum <= tol
}
