package pagerank

import (
	"fmt"
	"math/rand"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/testutil"
)

func benchGraph(n int) *graph.Graph {
	rng := rand.New(rand.NewSource(1))
	return testutil.RandomGraph(rng, n, 8)
}

func BenchmarkJacobi(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		g := benchGraph(n)
		v := UniformJump(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Jacobi(g, v, DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkJacobiSerial(b *testing.B) {
	g := benchGraph(100000)
	v := UniformJump(100000)
	cfg := DefaultConfig()
	cfg.Workers = 1
	for i := 0; i < b.N; i++ {
		if _, err := Jacobi(g, v, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGaussSeidel(b *testing.B) {
	g := benchGraph(100000)
	v := UniformJump(100000)
	for i := 0; i < b.N; i++ {
		if _, err := GaussSeidel(g, v, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowerIteration(b *testing.B) {
	g := benchGraph(100000)
	v := UniformJump(100000)
	for i := 0; i < b.N; i++ {
		if _, err := PowerIteration(g, v, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContribution(b *testing.B) {
	g := benchGraph(100000)
	v := UniformJump(100000)
	set := make([]graph.NodeID, 700)
	for i := range set {
		set[i] = graph.NodeID(i * 140)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Contribution(g, set, v, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarlo(b *testing.B) {
	g := benchGraph(10000)
	v := UniformJump(10000)
	cfg := MonteCarloConfig{Damping: 0.85, WalksPerNode: 20, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MonteCarlo(g, v, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContributionTo(b *testing.B) {
	g := benchGraph(10000)
	v := UniformJump(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ContributionTo(g, graph.NodeID(i%10000), v, DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
