package pagerank

import "spammass/internal/graph"

// WalkContribution computes the contribution vector qˣ of node x by
// explicitly enumerating walks, following the definition in Section 3.2
// verbatim: q_y^W = c^|W|·π(W)·(1−c)·v_x for each walk W from x to y,
// plus the virtual zero-length circuit Z_x contributing (1−c)·v_x to x
// itself.
//
// Walk prefixes whose per-step weight falls below tol are pruned. The
// second return value is a rigorous upper bound on the total mass lost
// to pruning: a subtree entered with weight s contributes at most
// s/(1−c) in total (the level sums decay geometrically with ratio c),
// so each pruned family of branches loses at most deg·step/(1−c).
//
// This is exponential in the worst case and exists purely as a test
// oracle for Theorem 2 on small graphs. tol must be positive for
// cyclic graphs; on DAGs tol = 0 enumerates every walk exactly.
func WalkContribution(g *graph.Graph, x graph.NodeID, v Vector, c, tol float64) (q Vector, errBound float64) {
	q = make(Vector, g.NumNodes())
	base := (1 - c) * v[x]
	if base == 0 {
		return q, 0
	}
	// Virtual circuit Z_x of length zero and weight 1.
	q[x] += base

	// Depth-first enumeration of walks; "weight" carries
	// c^k·π(W)·(1−c)·v_x for the walk so far.
	var dfs func(node graph.NodeID, weight float64)
	dfs = func(node graph.NodeID, weight float64) {
		out := g.OutNeighbors(node)
		if len(out) == 0 {
			return
		}
		step := weight * c / float64(len(out))
		if step < tol {
			errBound += float64(len(out)) * step / (1 - c)
			return
		}
		for _, y := range out {
			q[y] += step
			dfs(y, step)
		}
	}
	dfs(x, base)
	return q, errBound
}

// WalkPageRank computes the full PageRank vector via Theorem 1 by
// summing the walk-enumerated contributions of every node, returning
// the accumulated truncation bound. Like WalkContribution, it is a
// small-graph test oracle.
func WalkPageRank(g *graph.Graph, v Vector, c, tol float64) (p Vector, errBound float64) {
	p = make(Vector, g.NumNodes())
	for x := 0; x < g.NumNodes(); x++ {
		qx, e := WalkContribution(g, graph.NodeID(x), v, c, tol)
		p.Add(qx)
		errBound += e
	}
	return p, errBound
}
