package pagerank

import (
	"sync"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/webgen"
)

// sweep1MIters fixes the sweep count so the three layout benchmarks
// below traverse exactly the same iters·m in-edges and their edges/s
// metrics compare layouts, not convergence luck.
const sweep1MIters = 20

var sweep1M struct {
	sync.Once
	world *webgen.World
	err   error
}

// sweep1MGraph generates the million-host synthetic web once and
// shares it across the Sweep1M benchmarks. The webgen structure (power
// -law degrees, isolated fringe, spam farms) is the workload the
// blocked layout is designed for — not a uniform random graph.
func sweep1MGraph(b *testing.B) *graph.Graph {
	sweep1M.Do(func() {
		sweep1M.world, sweep1M.err = webgen.Generate(webgen.DefaultConfig(1_000_000))
	})
	if sweep1M.err != nil {
		b.Fatalf("generate 1M-host graph: %v", sweep1M.err)
	}
	return sweep1M.world.Graph
}

func benchSweep1M(b *testing.B, layout Layout, precision Precision) {
	g := sweep1MGraph(b)
	cfg := Config{
		Damping: 0.85,
		// Unreachably small epsilon plus AllowTruncated pins every run
		// at exactly sweep1MIters full sweeps.
		Epsilon:        1e-300,
		MaxIter:        sweep1MIters,
		AllowTruncated: true,
		Layout:         layout,
		Precision:      precision,
	}
	eng, err := NewEngine(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	v := UniformJump(g.NumNodes())
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		r, err := eng.Solve(v)
		if err != nil {
			b.Fatal(err)
		}
		edges += r.Stats.EdgesSwept
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(edges)/secs, "edges/s")
	}
}

func BenchmarkSweep1MFlat(b *testing.B) { benchSweep1M(b, LayoutFlat, PrecisionFloat64) }

func BenchmarkSweep1MBlocked(b *testing.B) { benchSweep1M(b, LayoutBlocked, PrecisionFloat64) }

func BenchmarkSweep1MBlockedF32(b *testing.B) { benchSweep1M(b, LayoutBlocked, PrecisionFloat32) }

// benchSolve1M times a full cold solve to Epsilon=1e-10 on the 1M-host
// graph — the production shape of a snapshot refresh. Unlike the
// fixed-sweep benchmarks above, modes here may do different amounts of
// edge work for the same answer: Gauss-Southwell reaches the fixpoint
// sweeping a fraction of the edges a full-sweep solver needs, which is
// the throughput headline of this benchmark set (compare ns/op between
// Solve1MGaussSouthwell and Solve1MFlatJacobi). All modes produce
// scores agreeing to L1 ≤ 1e-9 (see TestGaussSouthwellMatchesJacobi
// and TestFloat32Parity).
func benchSolve1M(b *testing.B, cfg Config) {
	g := sweep1MGraph(b)
	cfg.Damping = 0.85
	cfg.Epsilon = 1e-10
	cfg.MaxIter = 1000
	eng, err := NewEngine(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	v := UniformJump(g.NumNodes())
	b.ResetTimer()
	var edges int64
	for i := 0; i < b.N; i++ {
		r, err := eng.Solve(v)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Converged {
			b.Fatal("solve did not converge")
		}
		edges += r.Stats.EdgesSwept
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(edges)/secs, "edges/s")
	}
}

func BenchmarkSolve1MFlatJacobi(b *testing.B) { benchSolve1M(b, Config{}) }

func BenchmarkSolve1MBlocked(b *testing.B) { benchSolve1M(b, Config{Layout: LayoutBlocked}) }

func BenchmarkSolve1MBlockedF32(b *testing.B) {
	benchSolve1M(b, Config{Layout: LayoutBlocked, Precision: PrecisionFloat32})
}

func BenchmarkSolve1MGaussSouthwell(b *testing.B) {
	benchSolve1M(b, Config{Algorithm: AlgoGaussSouthwell})
}
