// Package pagerank implements the linear-system formulation of PageRank
// adopted by the paper (Section 2.2):
//
//	(I − cTᵀ) p = (1−c) v
//
// together with the PageRank-contribution machinery of Section 3.2
// (Theorems 1 and 2). The random jump vector v may be non-uniform and
// unnormalized (0 < ‖v‖ ≤ 1), in which case the PageRank vector is left
// unnormalized too; PageRank is linear in v, which is what makes
// contribution computation and spam-mass estimation cheap.
package pagerank

import "math"

// Vector is a dense score vector indexed by node ID.
type Vector []float64

// UniformJump returns the uniform random jump distribution v = (1/n)ⁿ.
func UniformJump(n int) Vector {
	v := make(Vector, n)
	if n == 0 {
		return v
	}
	u := 1 / float64(n)
	for i := range v {
		v[i] = u
	}
	return v
}

// CoreJump returns the core-based random jump vector v^U of Theorem 2:
// weight[x] at every x in core and zero elsewhere. With weight = 1/n it
// is the vector v^Ṽ⁺ of Definition 3; scaled variants are built by
// ScaledCoreJump.
func CoreJump(n int, core []uint32, weight float64) Vector {
	v := make(Vector, n)
	for _, x := range core {
		v[x] = weight
	}
	return v
}

// ScaledCoreJump returns the vector w of Section 3.5: uniform over the
// core and scaled so that ‖w‖ = gamma, the estimated fraction of good
// nodes on the web. This keeps ‖p'‖ comparable to ‖p^{V⁺}‖ even when
// the core is orders of magnitude smaller than the set of good nodes.
func ScaledCoreJump(n int, core []uint32, gamma float64) Vector {
	if len(core) == 0 {
		return make(Vector, n)
	}
	return CoreJump(n, core, gamma/float64(len(core)))
}

// Norm1 returns ‖v‖₁.
func (v Vector) Norm1() float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Sum returns the sum of entries (equal to Norm1 for non-negative v).
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Diff1 returns ‖v − u‖₁. The vectors must have equal length.
func (v Vector) Diff1(u Vector) float64 {
	s := 0.0
	for i, x := range v {
		s += math.Abs(x - u[i])
	}
	return s
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Scale multiplies every entry by k in place and returns v.
func (v Vector) Scale(k float64) Vector {
	for i := range v {
		v[i] *= k
	}
	return v
}

// Add adds u entrywise in place and returns v.
func (v Vector) Add(u Vector) Vector {
	for i := range v {
		v[i] += u[i]
	}
	return v
}

// Sub subtracts u entrywise in place and returns v.
func (v Vector) Sub(u Vector) Vector {
	for i := range v {
		v[i] -= u[i]
	}
	return v
}

// Normalized returns v/‖v‖₁, or a zero vector if ‖v‖₁ = 0.
func (v Vector) Normalized() Vector {
	c := v.Clone()
	n := c.Norm1()
	if n == 0 {
		return c
	}
	return c.Scale(1 / n)
}

// Scaled returns the vector multiplied by n/(1−c). The paper reports
// all PageRank scores and absolute mass values in this scaling, under
// which a node without inlinks (and uniform v) has score exactly 1.
func (v Vector) Scaled(c float64) Vector {
	return v.Clone().Scale(float64(len(v)) / (1 - c))
}
