package pagerank

import (
	"errors"
	"fmt"
	"time"

	"spammass/internal/obs"
)

// ErrNotConverged reports a solve that exhausted MaxIter with the L1
// residual still at or above Epsilon. Solvers return it together with
// the truncated *Result so callers can still inspect the partial
// scores and diagnostics; setting Config.AllowTruncated accepts such
// results without error instead.
type ErrNotConverged struct {
	Algorithm  Algorithm
	Iterations int
	Residual   float64
	Epsilon    float64
	// Column is the index of the worst non-converged jump vector
	// within a SolveMany batch; it is 0 for single solves.
	Column int
}

func (e *ErrNotConverged) Error() string {
	return fmt.Sprintf("pagerank: %s did not converge: residual %.3e ≥ epsilon %.3e after %d iterations",
		e.Algorithm, e.Residual, e.Epsilon, e.Iterations)
}

// IsNotConverged reports whether err is (or wraps) an *ErrNotConverged.
func IsNotConverged(err error) bool {
	var nc *ErrNotConverged
	return errors.As(err, &nc)
}

// TraceEvent is one per-iteration telemetry sample.
type TraceEvent struct {
	Algorithm Algorithm
	// Batch is the number of jump vectors being solved together.
	Batch int
	// Iteration counts from 1.
	Iteration int
	// Residual is the largest per-vector L1 residual of the iteration.
	Residual float64
	// Elapsed is the wall time since the solve started.
	Elapsed time.Duration
}

// String renders the event as the one-line form shared by -v logs and
// span events, so the two can never diverge.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%s batch=%d iter=%3d residual=%.3e elapsed=%s",
		e.Algorithm, e.Batch, e.Iteration, e.Residual, e.Elapsed.Round(time.Microsecond))
}

// TraceFunc receives per-iteration telemetry during a solve. It is
// called synchronously from the solver loop, so it must be cheap and
// must not call back into the engine.
type TraceFunc func(TraceEvent)

// SolveStats aggregates the telemetry of one solve (or one batched
// solve). All Results of a batch share the same *SolveStats.
type SolveStats struct {
	Algorithm Algorithm
	// Layout is the adjacency layout the sweeps actually ran on. An
	// engine built with LayoutBlocked still reports LayoutFlat here for
	// the algorithms that use the flat adjacency (Gauss-Seidel,
	// Gauss-Southwell).
	Layout Layout
	// Precision is the solution-vector storage the solve used.
	// PrecisionFloat32 solves always end in a float64 finish phase —
	// float32-phase residuals are measured between quantized iterates
	// and never declare convergence — so stored results meet Epsilon in
	// full precision.
	Precision Precision
	// Float32Iterations is the number of leading iterations run with
	// float32 storage (0 for pure float64 solves). EdgesSwept counts
	// these identically to float64 iterations: every sweep traverses
	// all m in-edges regardless of layout or precision.
	Float32Iterations int
	// Batch is the number of jump vectors solved together.
	Batch int
	// Iterations is the number of sweeps executed before the whole
	// batch converged (or MaxIter was hit). Individual vectors may have
	// converged earlier; see Result.Iterations.
	Iterations int
	// Residuals holds the largest per-vector L1 residual after each
	// iteration, Residuals[i] being iteration i+1.
	Residuals []float64
	// WallTime is the total solve duration.
	WallTime time.Duration
	// EdgesSwept counts in-edges visited across all iterations. A
	// batched solve traverses the in-neighbor lists once per iteration
	// regardless of batch width, which is exactly its advantage.
	EdgesSwept int64
	// EdgesPerSecond is the sweep throughput EdgesSwept / WallTime.
	EdgesPerSecond float64
	// Workers is the number of goroutines used for parallel sweeps
	// (1 when the sweep ran sequentially).
	Workers int
	// WarmStarted reports whether the solve was seeded from a previous
	// solution (Config.WarmStart or WarmStarts) rather than the jump
	// vector.
	WarmStarted bool
	// InitialResidual is the L1 residual after the first sweep — for a
	// warm-started solve it measures how far the seed was from the new
	// fixpoint, which is what makes warm vs cold starts comparable in
	// run reports.
	InitialResidual float64
}

// finish stamps the wall time and derives the sweep throughput. It is
// the single place EdgesPerSecond is computed: a sub-resolution wall
// time (clocks can report 0 on sub-microsecond test solves) leaves the
// rate at 0 instead of producing +Inf or NaN.
func (s *SolveStats) finish(wall time.Duration) {
	s.WallTime = wall
	s.EdgesPerSecond = 0
	if secs := wall.Seconds(); secs > 0 {
		s.EdgesPerSecond = float64(s.EdgesSwept) / secs
	}
	if len(s.Residuals) > 0 {
		s.InitialResidual = s.Residuals[0]
	}
}

// String renders a one-line summary suitable for -v logs. The
// throughput is rounded to whole edges per second.
func (s *SolveStats) String() string {
	return fmt.Sprintf("%s: batch=%d iters=%d wall=%v edges=%d (%.0f edges/s, %d workers)",
		s.Algorithm, s.Batch, s.Iterations, s.WallTime.Round(time.Microsecond), s.EdgesSwept, s.EdgesPerSecond, s.Workers)
}

// Summary condenses the stats into the RunReport shape. name labels
// the solve's role in the pipeline; converged and the final residual
// come from the accompanying Result. A nil receiver yields a zero
// summary carrying only the name.
func (s *SolveStats) Summary(name string, converged bool) obs.SolveSummary {
	if s == nil {
		return obs.SolveSummary{Name: name, Converged: converged}
	}
	sum := obs.SolveSummary{
		Name:            name,
		Algorithm:       s.Algorithm.String(),
		Batch:           s.Batch,
		Iterations:      s.Iterations,
		Converged:       converged,
		WallNS:          int64(s.WallTime),
		EdgesSwept:      s.EdgesSwept,
		EdgesPerSecond:  s.EdgesPerSecond,
		Workers:         s.Workers,
		WarmStarted:     s.WarmStarted,
		InitialResidual: s.InitialResidual,
	}
	if len(s.Residuals) > 0 {
		sum.FinalResidual = s.Residuals[len(s.Residuals)-1]
	}
	return sum
}
