package pagerank

import (
	"fmt"
	"runtime"

	"spammass/internal/graph"
	"spammass/internal/obs"
)

// Config controls the PageRank computation.
type Config struct {
	// Damping is the probability c of following a link rather than
	// jumping; the paper uses c = 0.85 throughout.
	Damping float64
	// Epsilon is the L1 convergence bound ‖p[i] − p[i−1]‖ < ε of
	// Algorithm 1.
	Epsilon float64
	// MaxIter caps the number of iterations.
	MaxIter int
	// Workers is the number of goroutines used for the sparse
	// matrix-vector products; 0 means GOMAXPROCS.
	Workers int
	// WarmStart, if non-nil, is the initial guess p[0] instead of v.
	// Warm-starting from a previous solution cuts iterations sharply
	// when the jump vector changes only slightly — e.g. re-estimating
	// after a Section 4.4.2 core fix.
	WarmStart Vector
	// WarmStarts, if non-nil, supplies one initial guess per jump
	// vector of a SolveMany batch — the delta-refresh path seeds p and
	// p' from the previous snapshot's solutions, which differ per
	// column. Its length must equal the batch width. Setting both
	// WarmStart and WarmStarts is a configuration error.
	WarmStarts []Vector
	// Algorithm selects the solver: AlgoJacobi (default),
	// AlgoGaussSeidel, AlgoPowerIteration, or AlgoGaussSouthwell. All
	// return the linear-system solution of (I − cTᵀ)p = (1−c)v (power
	// iteration's eigenvector is rescaled to it, see the Engine docs);
	// Gauss-Seidel usually needs ~40% fewer iterations but cannot be
	// parallelized, and Gauss-Southwell does work proportional to where
	// the residual lives rather than sweeping every edge.
	Algorithm Algorithm
	// Layout selects the in-memory adjacency layout of the engine.
	// LayoutAuto picks LayoutBlocked when Precision is PrecisionFloat32
	// and LayoutFlat otherwise; the layout is fixed at engine
	// construction and ignored on per-solve overrides. See the Engine
	// docs for the blocked layout's permutation contract.
	Layout Layout
	// Precision selects the solution-vector storage for blocked-layout
	// sweeps. PrecisionFloat32 stores the iterate and the contribution
	// vector in float32 — halving the random-access bytes of the sweep —
	// while every per-node reduction (link sums, residuals, dangling
	// mass) still accumulates in float64; once the residual approaches
	// the float32 quantization floor the solve is promoted to a float64
	// finish phase, so the returned scores meet Epsilon in full
	// precision. Only AlgoJacobi and AlgoPowerIteration support it.
	Precision Precision
	// AllowTruncated accepts solves that hit MaxIter without meeting
	// Epsilon: the Result is returned with Converged == false and a
	// nil error. By default such solves surface as *ErrNotConverged so
	// a truncated vector can never be consumed silently.
	AllowTruncated bool
	// Trace, if non-nil, receives one TraceEvent per solver iteration.
	Trace TraceFunc
	// OnStats, if non-nil, receives the finished SolveStats of every
	// solve, after the stats are final but before the results are
	// returned. The serve tier uses it to feed per-solve iteration
	// counts into its metric history without parsing spans. The hook
	// must not retain the stats past the call if it mutates them.
	OnStats func(*SolveStats)
	// Obs, if non-nil, attaches the observability sinks: every solve
	// records a "pagerank.solve" span (with one event per iteration)
	// under the context's root and updates the pagerank.* metrics of
	// its registry. A nil Obs costs a single pointer check per solve.
	Obs *obs.Context
}

// Algorithm names a linear PageRank solver.
type Algorithm int

// Solver algorithms.
const (
	AlgoJacobi Algorithm = iota
	AlgoGaussSeidel
	AlgoPowerIteration
	// AlgoGaussSouthwell is the frontier-based push solver grown out of
	// Engine.Refine: instead of sweeping every edge per iteration it
	// relaxes individual nodes in residual order, so the cost tracks
	// where the error actually lives. It shines when the solution is
	// localized (concentrated jump vectors, warm starts); on a cold
	// uniform solve it degenerates to sweep-like cost.
	AlgoGaussSouthwell
)

func (a Algorithm) String() string {
	switch a {
	case AlgoJacobi:
		return "jacobi"
	case AlgoGaussSeidel:
		return "gauss-seidel"
	case AlgoPowerIteration:
		return "power-iteration"
	case AlgoGaussSouthwell:
		return "gauss-southwell"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// Layout names an in-memory adjacency layout.
type Layout int

// Adjacency layouts.
const (
	// LayoutAuto resolves to LayoutBlocked when Precision is
	// PrecisionFloat32 and to LayoutFlat otherwise.
	LayoutAuto Layout = iota
	// LayoutFlat is the plain CSR of internal/graph: node IDs as
	// built, uncompressed adjacency, float64 everywhere.
	LayoutFlat
	// LayoutBlocked relabels the graph by descending out-degree and
	// stores the reverse adjacency as destination-blocked, gap-encoded
	// varint streams (the format of graph.AppendGapList). Jacobi and
	// power-iteration sweeps run on the compressed layout;
	// Gauss-Seidel and Gauss-Southwell solves on the same engine fall
	// back to the flat adjacency, which is kept alongside.
	LayoutBlocked
)

func (l Layout) String() string {
	switch l {
	case LayoutAuto:
		return "auto"
	case LayoutFlat:
		return "flat"
	case LayoutBlocked:
		return "blocked"
	}
	return fmt.Sprintf("layout(%d)", int(l))
}

// Precision names a solution-vector storage precision.
type Precision int

// Solve precisions.
const (
	PrecisionFloat64 Precision = iota
	PrecisionFloat32
)

func (p Precision) String() string {
	switch p {
	case PrecisionFloat64:
		return "float64"
	case PrecisionFloat32:
		return "float32"
	}
	return fmt.Sprintf("precision(%d)", int(p))
}

// DefaultConfig returns the configuration used in the paper's
// experiments: c = 0.85, with a convergence bound tight enough that
// scaled scores are stable to far beyond the two decimals reported.
func DefaultConfig() Config {
	return Config{Damping: 0.85, Epsilon: 1e-12, MaxIter: 1000}
}

// WithDefaults returns cfg with zero values replaced by the defaults.
// It is the single place default resolution happens; higher layers
// (mass estimation, the out-of-core solver) use it rather than
// duplicating the zero-handling.
func (cfg Config) WithDefaults() Config {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-12
	}
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 1000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Layout == LayoutAuto {
		if cfg.Precision == PrecisionFloat32 {
			cfg.Layout = LayoutBlocked
		} else {
			cfg.Layout = LayoutFlat
		}
	}
	return cfg
}

func (cfg Config) validate() error {
	if cfg.Damping <= 0 || cfg.Damping >= 1 {
		return fmt.Errorf("pagerank: damping factor %v outside (0,1)", cfg.Damping)
	}
	if cfg.Epsilon <= 0 {
		return fmt.Errorf("pagerank: epsilon %v must be positive", cfg.Epsilon)
	}
	if cfg.MaxIter <= 0 {
		return fmt.Errorf("pagerank: MaxIter %d must be positive", cfg.MaxIter)
	}
	switch cfg.Algorithm {
	case AlgoJacobi, AlgoGaussSeidel, AlgoPowerIteration, AlgoGaussSouthwell:
	default:
		return fmt.Errorf("pagerank: unknown algorithm %d", int(cfg.Algorithm))
	}
	switch cfg.Layout {
	case LayoutFlat, LayoutBlocked:
	default:
		return fmt.Errorf("pagerank: unknown layout %d", int(cfg.Layout))
	}
	switch cfg.Precision {
	case PrecisionFloat64:
	case PrecisionFloat32:
		if cfg.Layout != LayoutBlocked {
			return fmt.Errorf("pagerank: PrecisionFloat32 requires LayoutBlocked, got %v", cfg.Layout)
		}
		switch cfg.Algorithm {
		case AlgoJacobi, AlgoPowerIteration:
		default:
			return fmt.Errorf("pagerank: PrecisionFloat32 supports Jacobi and power-iteration sweeps, not %v", cfg.Algorithm)
		}
	default:
		return fmt.Errorf("pagerank: unknown precision %d", int(cfg.Precision))
	}
	return nil
}

// Result carries a solved PageRank vector and convergence diagnostics.
type Result struct {
	Scores     Vector
	Iterations int
	// Residual is ‖p[i] − p[i−1]‖₁ at the final iteration.
	Residual float64
	// Converged reports whether Residual < Epsilon within MaxIter.
	// Unless Config.AllowTruncated is set, a Result with Converged ==
	// false is always accompanied by an *ErrNotConverged.
	Converged bool
	// Stats holds the solve telemetry. Results of one SolveMany batch
	// share the same *SolveStats.
	Stats *SolveStats
}

// solveOnce builds a throwaway engine for one solve. The engine free
// functions below are thin compatibility wrappers over Engine; code
// performing repeated solves on one graph should hold an Engine (or a
// mass.Estimator) instead to reuse the cached graph state and pool.
func solveOnce(g *graph.Graph, v Vector, cfg Config) (*Result, error) {
	eng, err := NewEngine(g, cfg)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	return eng.Solve(v)
}

// Jacobi solves (I − cTᵀ)p = (1−c)v with the Jacobi iteration of
// Algorithm 1: p[i] ← cTᵀp[i−1] + (1−c)v, starting from p[0] = v.
// The jump vector v may be non-uniform and unnormalized.
func Jacobi(g *graph.Graph, v Vector, cfg Config) (*Result, error) {
	cfg.Algorithm = AlgoJacobi
	return solveOnce(g, v, cfg)
}

// GaussSeidel solves the same linear system with in-place sweeps, which
// use already-updated scores within an iteration and typically converge
// in fewer iterations than Jacobi (Section 2.2 notes linear solvers such
// as Jacobi or Gauss-Seidel are regularly faster than eigensolvers).
func GaussSeidel(g *graph.Graph, v Vector, cfg Config) (*Result, error) {
	cfg.Algorithm = AlgoGaussSeidel
	return solveOnce(g, v, cfg)
}

// PowerIteration iterates the augmented chain T” = cT' + (1−c)·1·vᵀ
// with T' = T + dvᵀ (Section 2.2): the classical eigenvector PageRank.
// The jump vector v must be a proper distribution (‖v‖₁ = 1). The
// paper shows the stationary eigenvector equals the linear-system
// solution up to a scale; the solver applies that correction (Vigna's
// pseudorank rescaling, see Engine) so the returned scores are the
// solution of (I − cTᵀ)p = (1−c)v — identical across all algorithms,
// not just up to normalization.
func PowerIteration(g *graph.Graph, v Vector, cfg Config) (*Result, error) {
	cfg.Algorithm = AlgoPowerIteration
	return solveOnce(g, v, cfg)
}

// GaussSouthwell solves the linear system with residual-ordered push
// relaxations (the Engine.Refine machinery run to convergence) instead
// of full sweeps. Cost is proportional to where the residual lives,
// which makes it the solver of choice for localized jump vectors;
// MaxIter bounds its work in full-sweep equivalents.
func GaussSouthwell(g *graph.Graph, v Vector, cfg Config) (*Result, error) {
	cfg.Algorithm = AlgoGaussSouthwell
	return solveOnce(g, v, cfg)
}

// Solve dispatches to the configured linear solver. It is what the
// higher layers (mass estimation, TrustRank) call, so the algorithm
// choice is a single configuration knob.
func Solve(g *graph.Graph, v Vector, cfg Config) (*Result, error) {
	return solveOnce(g, v, cfg)
}

// PR solves the linear PageRank system for jump vector v with the
// Jacobi method and returns the (possibly unnormalized) score vector.
// It panics on invalid configuration or on a non-converged solve; use
// Jacobi (optionally with Config.AllowTruncated) for error handling.
// This is the p = PR(v) notation of the paper.
func PR(g *graph.Graph, v Vector, cfg Config) Vector {
	res, err := Jacobi(g, v, cfg)
	if err != nil {
		panic(err)
	}
	return res.Scores
}
