package pagerank

import (
	"fmt"
	"runtime"
	"sync"

	"spammass/internal/graph"
)

// Config controls the PageRank computation.
type Config struct {
	// Damping is the probability c of following a link rather than
	// jumping; the paper uses c = 0.85 throughout.
	Damping float64
	// Epsilon is the L1 convergence bound ‖p[i] − p[i−1]‖ < ε of
	// Algorithm 1.
	Epsilon float64
	// MaxIter caps the number of iterations.
	MaxIter int
	// Workers is the number of goroutines used for the sparse
	// matrix-vector products; 0 means GOMAXPROCS.
	Workers int
	// WarmStart, if non-nil, is the initial guess p[0] instead of v.
	// Warm-starting from a previous solution cuts iterations sharply
	// when the jump vector changes only slightly — e.g. re-estimating
	// after a Section 4.4.2 core fix.
	WarmStart Vector
	// Algorithm selects the linear solver: AlgoJacobi (default) or
	// AlgoGaussSeidel. Both reach the same fixpoint; Gauss-Seidel
	// usually needs ~40% fewer iterations but cannot be parallelized.
	Algorithm Algorithm
}

// Algorithm names a linear PageRank solver.
type Algorithm int

// Solver algorithms.
const (
	AlgoJacobi Algorithm = iota
	AlgoGaussSeidel
)

// DefaultConfig returns the configuration used in the paper's
// experiments: c = 0.85, with a convergence bound tight enough that
// scaled scores are stable to far beyond the two decimals reported.
func DefaultConfig() Config {
	return Config{Damping: 0.85, Epsilon: 1e-12, MaxIter: 1000}
}

func (cfg Config) withDefaults() Config {
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 1e-12
	}
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 1000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

func (cfg Config) validate() error {
	if cfg.Damping <= 0 || cfg.Damping >= 1 {
		return fmt.Errorf("pagerank: damping factor %v outside (0,1)", cfg.Damping)
	}
	if cfg.Epsilon <= 0 {
		return fmt.Errorf("pagerank: epsilon %v must be positive", cfg.Epsilon)
	}
	return nil
}

// Result carries a solved PageRank vector and convergence diagnostics.
type Result struct {
	Scores     Vector
	Iterations int
	// Residual is ‖p[i] − p[i−1]‖₁ at the final iteration.
	Residual float64
	// Converged reports whether Residual < Epsilon within MaxIter.
	Converged bool
}

// invOutDegree precomputes 1/out(x) for every node (0 for dangling
// nodes, whose rows of T are all zero in the linear formulation).
func invOutDegree(g *graph.Graph) []float64 {
	inv := make([]float64, g.NumNodes())
	for x := range inv {
		if d := g.OutDegree(graph.NodeID(x)); d > 0 {
			inv[x] = 1 / float64(d)
		}
	}
	return inv
}

// Jacobi solves (I − cTᵀ)p = (1−c)v with the Jacobi iteration of
// Algorithm 1: p[i] ← cTᵀp[i−1] + (1−c)v, starting from p[0] = v.
// The jump vector v may be non-uniform and unnormalized.
func Jacobi(g *graph.Graph, v Vector, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if len(v) != n {
		return nil, fmt.Errorf("pagerank: jump vector has length %d, want %d", len(v), n)
	}
	inv := invOutDegree(g)
	c := cfg.Damping
	cur := v.Clone()
	if cfg.WarmStart != nil {
		if len(cfg.WarmStart) != n {
			return nil, fmt.Errorf("pagerank: warm start has length %d, want %d", len(cfg.WarmStart), n)
		}
		cur = cfg.WarmStart.Clone()
	}
	next := make(Vector, n)
	res := &Result{}
	for res.Iterations = 1; res.Iterations <= cfg.MaxIter; res.Iterations++ {
		parallelPull(g, inv, cur, next, c, v, cfg.Workers)
		res.Residual = next.Diff1(cur)
		cur, next = next, cur
		if res.Residual < cfg.Epsilon {
			res.Converged = true
			break
		}
	}
	if res.Iterations > cfg.MaxIter {
		res.Iterations = cfg.MaxIter
	}
	res.Scores = cur
	return res, nil
}

// parallelPull computes next ← c·Tᵀcur + (1−c)·v with a pull-style
// sweep over in-neighbor lists, partitioned across workers. Pull-style
// sweeps write each next[y] from exactly one goroutine, so no locking
// is needed.
func parallelPull(g *graph.Graph, inv []float64, cur, next Vector, c float64, v Vector, workers int) {
	n := g.NumNodes()
	if workers <= 1 || n < 4096 {
		pullRange(g, inv, cur, next, c, v, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			pullRange(g, inv, cur, next, c, v, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func pullRange(g *graph.Graph, inv []float64, cur, next Vector, c float64, v Vector, lo, hi int) {
	oneMinusC := 1 - c
	for y := lo; y < hi; y++ {
		sum := 0.0
		for _, x := range g.InNeighbors(graph.NodeID(y)) {
			sum += cur[x] * inv[x]
		}
		next[y] = c*sum + oneMinusC*v[y]
	}
}

// Solve dispatches to the configured linear solver. It is what the
// higher layers (mass estimation, TrustRank) call, so the algorithm
// choice is a single configuration knob.
func Solve(g *graph.Graph, v Vector, cfg Config) (*Result, error) {
	switch cfg.Algorithm {
	case AlgoJacobi:
		return Jacobi(g, v, cfg)
	case AlgoGaussSeidel:
		return GaussSeidel(g, v, cfg)
	default:
		return nil, fmt.Errorf("pagerank: unknown algorithm %d", cfg.Algorithm)
	}
}

// GaussSeidel solves the same linear system with in-place sweeps, which
// use already-updated scores within an iteration and typically converge
// in fewer iterations than Jacobi (Section 2.2 notes linear solvers such
// as Jacobi or Gauss-Seidel are regularly faster than eigensolvers).
func GaussSeidel(g *graph.Graph, v Vector, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if len(v) != n {
		return nil, fmt.Errorf("pagerank: jump vector has length %d, want %d", len(v), n)
	}
	inv := invOutDegree(g)
	c := cfg.Damping
	p := v.Clone()
	if cfg.WarmStart != nil {
		if len(cfg.WarmStart) != n {
			return nil, fmt.Errorf("pagerank: warm start has length %d, want %d", len(cfg.WarmStart), n)
		}
		p = cfg.WarmStart.Clone()
	}
	res := &Result{}
	for res.Iterations = 1; res.Iterations <= cfg.MaxIter; res.Iterations++ {
		delta := 0.0
		for y := 0; y < n; y++ {
			sum := 0.0
			for _, x := range g.InNeighbors(graph.NodeID(y)) {
				sum += p[x] * inv[x]
			}
			newVal := c*sum + (1-c)*v[y]
			d := newVal - p[y]
			if d < 0 {
				d = -d
			}
			delta += d
			p[y] = newVal
		}
		res.Residual = delta
		if delta < cfg.Epsilon {
			res.Converged = true
			break
		}
	}
	if res.Iterations > cfg.MaxIter {
		res.Iterations = cfg.MaxIter
	}
	res.Scores = p
	return res, nil
}

// PowerIteration computes the stationary distribution of the augmented
// chain T” = cT' + (1−c)·1·vᵀ with T' = T + dvᵀ (Section 2.2): the
// classical eigenvector PageRank. The jump vector v must be a proper
// distribution (‖v‖₁ = 1). The paper shows this eigenvector equals the
// linear-system solution up to rescaling; tests reconcile the two.
func PowerIteration(g *graph.Graph, v Vector, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if len(v) != n {
		return nil, fmt.Errorf("pagerank: jump vector has length %d, want %d", len(v), n)
	}
	if s := v.Sum(); s < 1-1e-9 || s > 1+1e-9 {
		return nil, fmt.Errorf("pagerank: power iteration needs a stochastic jump vector, got ‖v‖=%v", s)
	}
	inv := invOutDegree(g)
	c := cfg.Damping
	cur := v.Clone()
	next := make(Vector, n)
	res := &Result{}
	for res.Iterations = 1; res.Iterations <= cfg.MaxIter; res.Iterations++ {
		dangling := 0.0
		for x := 0; x < n; x++ {
			if inv[x] == 0 {
				dangling += cur[x]
			}
		}
		parallelPull(g, inv, cur, next, c, v, cfg.Workers)
		// Add the dangling-node virtual links (c·v·dᵀp) and fold the
		// teleportation already applied by parallelPull from (1−c)v
		// into the correct (c·dangling + 1−c)·v total.
		extra := c * dangling
		for y := 0; y < n; y++ {
			next[y] += extra * v[y]
		}
		res.Residual = next.Diff1(cur)
		cur, next = next, cur
		if res.Residual < cfg.Epsilon {
			res.Converged = true
			break
		}
	}
	if res.Iterations > cfg.MaxIter {
		res.Iterations = cfg.MaxIter
	}
	res.Scores = cur
	return res, nil
}

// PR solves the linear PageRank system for jump vector v with the
// Jacobi method and returns the (possibly unnormalized) score vector.
// It panics on invalid configuration; use Jacobi for error handling.
// This is the p = PR(v) notation of the paper.
func PR(g *graph.Graph, v Vector, cfg Config) Vector {
	res, err := Jacobi(g, v, cfg)
	if err != nil {
		panic(err)
	}
	return res.Scores
}
