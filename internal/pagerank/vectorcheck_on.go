//go:build vectorcheck

package pagerank

import (
	"fmt"
	"math"
)

// vectorCheckEnabled reports whether the debug guard is compiled in;
// tests use it to assert the build tag took effect.
const vectorCheckEnabled = true

// vectorCheck is the debug-build guard at the engine boundary: under
// `-tags vectorcheck` every solve result is scanned before it is handed
// to callers, and a NaN, ±Inf, or negative score fails the solve with a
// diagnostic naming the first poisoned entry. PageRank scores are
// probabilities scaled by the jump-vector mass, so any such entry means
// a poisoned input (NaN jump weight, corrupted warm start) or a solver
// bug — both far easier to localize here than three packages
// downstream in a mass estimate.
func vectorCheck(results []*Result) error {
	for j, r := range results {
		if r == nil {
			continue
		}
		for i, v := range r.Scores {
			switch {
			case math.IsNaN(v):
				return fmt.Errorf("vectorcheck: result %d has NaN score at node %d", j, i)
			case math.IsInf(v, 0):
				return fmt.Errorf("vectorcheck: result %d has %v score at node %d", j, v, i)
			case v < 0:
				return fmt.Errorf("vectorcheck: result %d has negative score %v at node %d", j, v, i)
			}
		}
	}
	return nil
}
