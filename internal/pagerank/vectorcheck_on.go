//go:build vectorcheck

package pagerank

import (
	"fmt"
	"math"
)

// vectorCheckEnabled reports whether the debug guard is compiled in;
// tests use it to assert the build tag took effect.
const vectorCheckEnabled = true

// vectorCheck is the debug-build guard at the engine boundary: under
// `-tags vectorcheck` every solve result is scanned before it is handed
// to callers, and a NaN, ±Inf, or negative score fails the solve with a
// diagnostic naming the first poisoned entry. PageRank scores are
// probabilities scaled by the jump-vector mass, so any such entry means
// a poisoned input (NaN jump weight, corrupted warm start) or a solver
// bug — both far easier to localize here than three packages
// downstream in a mass estimate.
// vectorCheckF32 is the mixed-precision sibling of vectorCheck: under
// `-tags vectorcheck` the float32-phase iterate is scanned right before
// promotion to float64, so a NaN, ±Inf, or negative entry is pinned to
// the low-precision phase instead of surfacing later as a mysterious
// failure of the float64 finish. buf is the interleaved batch buffer
// (k columns per row).
func vectorCheckF32(buf []float32, k int) error {
	for i, x := range buf {
		v := float64(x)
		switch {
		case math.IsNaN(v):
			return fmt.Errorf("vectorcheck: float32 phase produced NaN at row %d column %d", i/k, i%k)
		case math.IsInf(v, 0):
			return fmt.Errorf("vectorcheck: float32 phase produced %v at row %d column %d", v, i/k, i%k)
		case v < 0:
			return fmt.Errorf("vectorcheck: float32 phase produced negative score %v at row %d column %d", v, i/k, i%k)
		}
	}
	return nil
}

func vectorCheck(results []*Result) error {
	for j, r := range results {
		if r == nil {
			continue
		}
		for i, v := range r.Scores {
			switch {
			case math.IsNaN(v):
				return fmt.Errorf("vectorcheck: result %d has NaN score at node %d", j, i)
			case math.IsInf(v, 0):
				return fmt.Errorf("vectorcheck: result %d has %v score at node %d", j, v, i)
			case v < 0:
				return fmt.Errorf("vectorcheck: result %d has negative score %v at node %d", j, v, i)
			}
		}
	}
	return nil
}
