package pagerank

import (
	"math"
	"math/rand"
	"testing"

	"spammass/internal/graph"
	"spammass/internal/testutil"
)

func allStarts(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

// checkWalkInvariants verifies the structural contract of the stored
// walks: every walk begins at its assigned start and every step follows
// an edge of the current graph.
func checkWalkInvariants(t *testing.T, m *IncrementalMC, g *graph.Graph) {
	t.Helper()
	starts := m.Starts()
	R := m.cfg.WalksPerNode
	edge := map[[2]graph.NodeID]bool{}
	g.Edges(func(u, v graph.NodeID) bool {
		edge[[2]graph.NodeID{u, v}] = true
		return true
	})
	for i, s := range starts {
		for r := 0; r < R; r++ {
			w := m.walks[i*R+r]
			if len(w) == 0 || w[0] != s {
				t.Fatalf("walk %d/%d does not begin at start %d: %v", i, r, s, w)
			}
			for k := 1; k < len(w); k++ {
				if !edge[[2]graph.NodeID{w[k-1], w[k]}] {
					t.Fatalf("walk %d/%d steps over a non-edge %d->%d", i, r, w[k-1], w[k])
				}
			}
		}
	}
}

// TestIncrementalMCAgreesWithExact: the stored-walk estimate must match
// the algebraic solution within statistical error, same bar as the
// one-shot Monte-Carlo estimator.
func TestIncrementalMCAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 40
	g := testutil.RandomGraph(rng, n, 4)
	exact := PR(g, UniformJump(n), DefaultConfig())
	m, err := NewIncrementalMC(g, allStarts(n), 1/float64(n), MonteCarloConfig{Damping: 0.85, WalksPerNode: 4000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkWalkInvariants(t, m, g)
	mc := m.Scores()
	if d := mc.Clone().Sub(exact).Norm1() / exact.Norm1(); d > 0.03 {
		t.Errorf("L1 relative error %v, want < 3%%", d)
	}
}

// TestIncrementalMCUpdateTracksEdgeChurn: after rewiring some nodes'
// out-links and repairing only the dirtied walks, the estimate must
// agree with the exact solution of the NEW graph — the stale suffixes
// would fail this if they survived.
func TestIncrementalMCUpdateTracksEdgeChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 40
	g1 := testutil.RandomGraph(rng, n, 4)
	m, err := NewIncrementalMC(g1, allStarts(n), 1/float64(n), MonteCarloConfig{Damping: 0.85, WalksPerNode: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Rewire nodes 0..9: drop their old out-edges, point each at
	// (x+17) mod n and (x+23) mod n.
	dirtySrc := map[graph.NodeID]bool{}
	for x := 0; x < 10; x++ {
		dirtySrc[graph.NodeID(x)] = true
	}
	var edges [][2]graph.NodeID
	g1.Edges(func(u, v graph.NodeID) bool {
		if !dirtySrc[u] {
			edges = append(edges, [2]graph.NodeID{u, v})
		}
		return true
	})
	for x := 0; x < 10; x++ {
		u := graph.NodeID(x)
		edges = append(edges, [2]graph.NodeID{u, graph.NodeID((x + 17) % n)})
		edges = append(edges, [2]graph.NodeID{u, graph.NodeID((x + 23) % n)})
	}
	g2 := graph.FromEdges(n, edges)

	identity := make([]int64, n)
	for i := range identity {
		identity[i] = int64(i)
	}
	dirty := make([]graph.NodeID, 0, len(dirtySrc))
	for x := range dirtySrc {
		dirty = append(dirty, x)
	}
	st, err := m.Update(g2, identity, dirty, allStarts(n), 1/float64(n))
	if err != nil {
		t.Fatal(err)
	}
	if st.WalksRepaired == 0 {
		t.Error("no walks repaired despite 10 dirtied sources")
	}
	if st.WalksReused == 0 {
		t.Error("no walks survived a 10/40-node churn; repair is not localized")
	}
	if st.WalksNew != 0 {
		t.Errorf("%d fresh walks on an identity remap, want 0", st.WalksNew)
	}
	checkWalkInvariants(t, m, g2)
	exact := PR(g2, UniformJump(n), DefaultConfig())
	if d := m.Scores().Clone().Sub(exact).Norm1() / exact.Norm1(); d > 0.03 {
		t.Errorf("post-update L1 relative error %v, want < 3%%", d)
	}
}

// TestIncrementalMCUpdateHandlesRemoval: removing a node compacts IDs
// through the remap; repaired walks must live entirely in the new ID
// space and match the exact solution there.
func TestIncrementalMCUpdateHandlesRemoval(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 30
	g1 := testutil.RandomGraph(rng, n, 4)
	m, err := NewIncrementalMC(g1, allStarts(n), 1/float64(n), MonteCarloConfig{Damping: 0.85, WalksPerNode: 4000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Remove the last node; survivors keep their IDs (remap is
	// identity-then-drop), so old edges translate directly.
	removed := graph.NodeID(n - 1)
	remap := make([]int64, n)
	for i := range remap {
		remap[i] = int64(i)
	}
	remap[removed] = -1
	var edges [][2]graph.NodeID
	dirtyOld := map[graph.NodeID]bool{}
	g1.Edges(func(u, v graph.NodeID) bool {
		if u == removed {
			return true
		}
		if v == removed {
			dirtyOld[u] = true // u lost this out-edge
			return true
		}
		edges = append(edges, [2]graph.NodeID{u, v})
		return true
	})
	g2 := graph.FromEdges(n-1, edges)
	dirty := make([]graph.NodeID, 0, len(dirtyOld))
	for x := range dirtyOld {
		dirty = append(dirty, x) // IDs unchanged for survivors
	}
	if _, err := m.Update(g2, remap, dirty, allStarts(n-1), 1/float64(n-1)); err != nil {
		t.Fatal(err)
	}
	checkWalkInvariants(t, m, g2)
	exact := PR(g2, UniformJump(n-1), DefaultConfig())
	if d := m.Scores().Clone().Sub(exact).Norm1() / exact.Norm1(); d > 0.04 {
		t.Errorf("post-removal L1 relative error %v, want < 4%%", d)
	}
}

// TestIncrementalMCCoreJump: a start set that is a strict subset with
// the γ-scaled weight estimates the core PageRank p' of the spam-mass
// pair.
func TestIncrementalMCCoreJump(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 40
	g := testutil.RandomGraph(rng, n, 4)
	core := []graph.NodeID{0, 3, 7, 11, 19}
	gamma := 0.9
	coreU := make([]uint32, len(core))
	for i, x := range core {
		coreU[i] = uint32(x)
	}
	exact := PR(g, ScaledCoreJump(n, coreU, gamma), DefaultConfig())
	m, err := NewIncrementalMC(g, core, gamma/float64(len(core)), MonteCarloConfig{Damping: 0.85, WalksPerNode: 8000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Scores().Clone().Sub(exact).Norm1() / exact.Norm1(); d > 0.03 {
		t.Errorf("core-jump L1 relative error %v, want < 3%%", d)
	}
}

// TestIncrementalMCValidation: the constructor and Update reject the
// inputs the estimator cannot serve.
func TestIncrementalMCValidation(t *testing.T) {
	g := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}})
	cfg := MonteCarloConfig{Damping: 0.85, WalksPerNode: 10, Seed: 1}
	if _, err := NewIncrementalMC(g, nil, 1.0/3, cfg); err == nil {
		t.Error("accepted empty starts")
	}
	if _, err := NewIncrementalMC(g, allStarts(3), 0, cfg); err == nil {
		t.Error("accepted zero weight")
	}
	if _, err := NewIncrementalMC(g, []graph.NodeID{5}, 1.0/3, cfg); err == nil {
		t.Error("accepted out-of-range start")
	}
	bad := cfg
	bad.Damping = 0
	if _, err := NewIncrementalMC(g, allStarts(3), 1.0/3, bad); err == nil {
		t.Error("accepted damping 0")
	}
	m, err := NewIncrementalMC(g, allStarts(3), 1.0/3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(g, []int64{0, 1}, nil, allStarts(3), 1.0/3); err == nil {
		t.Error("accepted short remap")
	}
	if _, err := m.Update(g, []int64{0, 1, 2}, []graph.NodeID{9}, allStarts(3), 1.0/3); err == nil {
		t.Error("accepted out-of-range dirty node")
	}
	if _, err := m.Update(g, []int64{0, 1, 2}, nil, nil, 1.0/3); err == nil {
		t.Error("accepted empty new starts")
	}
	// Total score mass must match the exact solve's (dangling nodes
	// leak mass, so it is well below 1 on this graph).
	var sum, wantSum float64
	for _, p := range m.Scores() {
		sum += p
	}
	for _, p := range PR(g, UniformJump(3), DefaultConfig()) {
		wantSum += p
	}
	if math.Abs(sum-wantSum) > 0.1*wantSum {
		t.Errorf("score mass %v, exact %v", sum, wantSum)
	}
}
