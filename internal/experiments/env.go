// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4) on the synthetic host graph, plus the
// ablations DESIGN.md calls out. Each experiment is a method on Env;
// the cmd/experiments binary and the root bench suite both drive these
// methods, at full and reduced scale respectively.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"spammass/internal/eval"
	"spammass/internal/goodcore"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/obs"
	"spammass/internal/pagerank"
	"spammass/internal/webgen"
)

// Config scales the experimental environment.
type Config struct {
	// Hosts is the size of the synthetic host graph (the paper's is
	// 73.3M; the default experiment scale is 150k).
	Hosts int
	// Seed drives the generator and all sampling.
	Seed int64
	// SampleFrac is the evaluation sample rate over T (paper: ~0.1%,
	// 892 of 883,328; at our scale a larger fraction keeps the sample
	// near the paper's ~900 hosts).
	SampleFrac float64
	// Rho is the scaled PageRank threshold defining T (paper: 10).
	Rho float64
	// Gamma scales the core-based jump vector (paper: 0.85).
	Gamma float64
	// Groups is the number of sample groups (paper: 20).
	Groups int
	// Solver configures all PageRank computations.
	Solver pagerank.Config
}

// DefaultConfig returns the full experiment scale.
func DefaultConfig() Config {
	return Config{
		Hosts:      150000,
		Seed:       1,
		SampleFrac: 0.40,
		Rho:        10,
		Gamma:      0.85,
		Groups:     20,
		Solver:     pagerank.Config{Damping: 0.85, Epsilon: 1e-10, MaxIter: 300},
	}
}

// Env is the shared experimental environment: the generated world,
// the assembled good core, the two PageRank vectors, the mass
// estimates, the high-PageRank set T, and the judged sample T'.
type Env struct {
	Cfg   Config
	World *webgen.World
	Core  *goodcore.Core
	Est   *mass.Estimates
	// Estimator is the shared mass estimator bound to the world graph.
	// Every experiment method that re-estimates on the same graph goes
	// through it, reusing the solver engine's cached out-degree and
	// dangling state across all solves.
	Estimator *mass.Estimator
	T         []graph.NodeID
	Sample    []eval.SampleHost
	Groups    []eval.Group
}

// NewEnv generates the world and runs the shared computations. The
// setup phases (world generation, core assembly, mass estimation,
// sampling) are recorded as child spans of cfg.Solver.Obs's root.
func NewEnv(cfg Config) (*Env, error) {
	// The context pointer is shared, not copied: the Estimator keeps it
	// for its lifetime, so a driver that re-roots the context per
	// experiment (Context.SetRoot) re-roots the solver spans too. Setup
	// scoping therefore also goes through SetRoot.
	octx := cfg.Solver.Obs
	sp := octx.Span("experiments.setup")
	defer sp.End()
	prev := octx.SetRoot(sp)
	defer octx.SetRoot(prev)

	gen := octx.Span("experiments.generate_world")
	genStart := time.Now()
	wcfg := webgen.DefaultConfig(cfg.Hosts)
	wcfg.Seed = cfg.Seed
	world, err := webgen.Generate(wcfg)
	if err != nil {
		gen.End()
		return nil, fmt.Errorf("experiments: generating world: %w", err)
	}
	if gen != nil {
		gen.SetAttr("hosts", world.Graph.NumNodes())
		gen.SetAttr("edges", world.Graph.NumEdges())
		gen.SetAttr("seed", cfg.Seed)
	}
	gen.End()
	octx.Histogram("experiments.generate_seconds").Observe(time.Since(genStart).Seconds())

	asm := octx.Span("experiments.assemble_core")
	core, err := goodcore.Assemble(world.Names, world.DirectoryMembers)
	if err != nil {
		asm.End()
		return nil, fmt.Errorf("experiments: assembling core: %w", err)
	}
	if asm != nil {
		asm.SetAttr("core_size", len(core.Nodes))
	}
	asm.End()

	estor, err := mass.NewEstimator(world.Graph, mass.Options{Solver: cfg.Solver, Gamma: cfg.Gamma})
	if err != nil {
		return nil, fmt.Errorf("experiments: building estimator: %w", err)
	}
	est, err := estor.EstimateFromCore(core.Nodes)
	if err != nil {
		estor.Close()
		return nil, fmt.Errorf("experiments: estimating mass: %w", err)
	}
	env := &Env{Cfg: cfg, World: world, Core: core, Est: est, Estimator: estor}

	smp := octx.Span("experiments.sample")
	env.T = mass.FilterByPageRank(est, cfg.Rho)
	k := int(cfg.SampleFrac * float64(len(env.T)))
	if k < cfg.Groups {
		k = min(len(env.T), cfg.Groups)
	}
	jc := eval.DefaultJudgeConfig()
	jc.Seed = cfg.Seed + 7
	env.Sample, err = eval.Sample(env.T, k, est, world, jc)
	if err != nil {
		smp.End()
		estor.Close()
		return nil, fmt.Errorf("experiments: sampling T: %w", err)
	}
	env.Groups, err = eval.SplitGroups(env.Sample, cfg.Groups)
	if err != nil {
		smp.End()
		estor.Close()
		return nil, fmt.Errorf("experiments: grouping sample: %w", err)
	}
	if smp != nil {
		smp.SetAttr("t_size", len(env.T))
		smp.SetAttr("sample_size", len(env.Sample))
		smp.SetAttr("groups", len(env.Groups))
	}
	smp.End()
	return env, nil
}

// Obs exposes the observability context shared by the Env's solver
// configuration, so experiments can hang their own spans and metrics
// off the same registry and trace tree.
func (e *Env) Obs() *obs.Context { return e.Cfg.Solver.Obs }

// Engine exposes the shared solver engine bound to the world graph.
func (e *Env) Engine() *pagerank.Engine { return e.Estimator.Engine() }

// Close releases the shared solver engine's worker pool. The Env must
// not be used afterwards.
func (e *Env) Close() { e.Estimator.Close() }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// estimateWithCore derives mass estimates for an alternative core,
// reusing the already-computed regular PageRank vector and
// warm-starting the core-based solve from the baseline one.
func (e *Env) estimateWithCore(core []graph.NodeID) (*mass.Estimates, error) {
	return e.Estimator.Recompute(e.Est, core)
}

// estimateWithCores is the batched form: all core variants share one
// in-neighbor sweep per iteration (Engine.SolveMany), which is how the
// core-size and stability experiments amortize their solves.
func (e *Env) estimateWithCores(cores [][]graph.NodeID) ([]*mass.Estimates, error) {
	return e.Estimator.RecomputeMany(e.Est, cores)
}

// resample judges a fresh sample against alternative estimates but the
// same sampled node set, so core variants are compared on identical
// hosts (the Section 4.5 methodology: "we used the same evaluation
// sample T' and Algorithm 2").
func (e *Env) resample(est *mass.Estimates) []eval.SampleHost {
	out := make([]eval.SampleHost, len(e.Sample))
	copy(out, e.Sample)
	for i := range out {
		x := out[i].Node
		out[i].RelMass = est.Rel[x]
		out[i].AbsMass = est.ScaledAbsMass(x)
	}
	sortSample(out)
	return out
}

func sortSample(s []eval.SampleHost) {
	sort.Slice(s, func(i, j int) bool { return s[i].RelMass < s[j].RelMass })
}

// section prints a titled divider.
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
