package experiments

import (
	"io"
	"testing"
)

// TestCalibrationAcrossSeeds guards the reproduction against seed
// lottery: the calibrated bands of Section 4 must hold for several
// generator seeds, not just the default one. Bands are deliberately
// loose — the claim is that the SHAPE survives reseeding.
func TestCalibrationAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed calibration sweep skipped in -short mode")
	}
	for _, seed := range []int64{2, 3, 5} {
		seed := seed
		cfg := testConfig()
		cfg.Seed = seed
		e, err := NewEnv(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		ds := e.RunDataSet(io.Discard)
		if f := ds.Stats.FracNoOutlinks(); f < 0.60 || f > 0.72 {
			t.Errorf("seed %d: no-outlink fraction %.3f outside band", seed, f)
		}
		if f := ds.Stats.FracNoInlinks(); f < 0.28 || f > 0.45 {
			t.Errorf("seed %d: no-inlink fraction %.3f outside band", seed, f)
		}

		pr, err := e.RunPRDist(io.Discard)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if pr.FracBelow2 < 0.80 || pr.FracBelow2 > 0.97 {
			t.Errorf("seed %d: PR<2 fraction %.3f outside band", seed, pr.FracBelow2)
		}

		// T size and spam prevalence.
		tFrac := float64(len(e.T)) / float64(e.World.Graph.NumNodes())
		if tFrac < 0.005 || tFrac > 0.04 {
			t.Errorf("seed %d: |T| fraction %.4f outside band", seed, tFrac)
		}

		fig4 := e.RunFigure4(io.Discard)
		first := fig4.Points[0]
		last := fig4.Points[len(fig4.Points)-1]
		if first.Excluded < 0.85 {
			t.Errorf("seed %d: top-threshold precision %.3f below 0.85", seed, first.Excluded)
		}
		if last.Excluded < 0.25 || last.Excluded > 0.70 {
			t.Errorf("seed %d: precision floor %.3f outside band", seed, last.Excluded)
		}
		if first.Excluded <= last.Excluded {
			t.Errorf("seed %d: precision does not decline", seed)
		}

		disc, err := e.RunAnomalyDiscovery(io.Discard)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if disc.Communities == 0 {
			t.Errorf("seed %d: planted anomalies not discovered", seed)
		}
	}
}
