package experiments

import (
	"io"
	"math"
	"strings"
	"testing"

	"spammass/internal/baseline"
	"spammass/internal/pagerank"
)

// testEnv builds one shared small-scale environment for the
// integration tests (generation plus several PageRank solves is the
// expensive part; every experiment then reuses it).
var sharedEnv *Env

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Hosts = 20000
	cfg.SampleFrac = 0.9
	return cfg
}

func env(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		e, err := NewEnv(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = e
	}
	return sharedEnv
}

func TestRunFigure1(t *testing.T) {
	rows, err := RunFigure1(io.Discard, []int{0, 1, 2, 5}, pagerank.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Scheme1 != baseline.Good {
			t.Errorf("k=%d: scheme 1 = %v, the paper's scheme 1 always says good here", r.K, r.Scheme1)
		}
		wantScheme2 := baseline.Good
		if r.K >= 2 {
			wantScheme2 = baseline.Spam
		}
		if r.Scheme2 != wantScheme2 {
			t.Errorf("k=%d: scheme 2 = %v, want %v", r.K, r.Scheme2, wantScheme2)
		}
	}
}

func TestRunFigure2(t *testing.T) {
	r, err := RunFigure2(io.Discard, pagerank.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Ratio-1.65) > 0.01 {
		t.Errorf("spam/good ratio %.3f, paper prints 1.65", r.Ratio)
	}
	if r.Scheme1 != baseline.Good || r.Scheme2 != baseline.Good {
		t.Error("both naive schemes must fail (label good) on Figure 2")
	}
}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1(io.Discard, pagerank.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12", len(rows))
	}
	if math.Abs(rows[0].P-9.33) > 0.005 || math.Abs(rows[0].RelME-0.75) > 0.005 {
		t.Errorf("row x = %+v, want p 9.33 and m~ 0.75", rows[0])
	}
}

func TestRunWalkthrough(t *testing.T) {
	cands, err := RunAlgorithm2Walkthrough(io.Discard, pagerank.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 {
		t.Fatalf("%d candidates, paper's walkthrough yields 3", len(cands))
	}
}

func TestEnvDataSetAndCore(t *testing.T) {
	e := env(t)
	ds := e.RunDataSet(io.Discard)
	if f := ds.Stats.FracNoOutlinks(); f < 0.6 || f > 0.72 {
		t.Errorf("no-outlink fraction %.3f far from the paper's 66.4%%", f)
	}
	core := e.RunCore(io.Discard)
	if core.FracOfHosts < 0.004 || core.FracOfHosts > 0.01 {
		t.Errorf("core fraction %.4f far from the paper's 0.69%%", core.FracOfHosts)
	}
	if core.Edu <= core.Gov || core.Gov <= core.Directory {
		t.Errorf("core shares out of order: %+v (paper: edu > gov > directory)", core)
	}
}

func TestEnvPRDist(t *testing.T) {
	e := env(t)
	r, err := e.RunPRDist(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if r.FracBelow2 < 0.82 || r.FracBelow2 > 0.96 {
		t.Errorf("fraction below 2: %.3f, paper reports 91.1%%", r.FracBelow2)
	}
	if r.Exponent >= -1 {
		t.Errorf("PageRank density exponent %.2f, want a decaying power law", r.Exponent)
	}
}

func TestEnvTable2AndFigure3(t *testing.T) {
	e := env(t)
	groups := e.RunTable2(io.Discard)
	if len(groups) != e.Cfg.Groups {
		t.Fatalf("%d groups, want %d", len(groups), e.Cfg.Groups)
	}
	if groups[0].SmallestRel >= 0 {
		t.Errorf("group 1 lower bound %.2f, want strongly negative (core members)", groups[0].SmallestRel)
	}
	last := groups[len(groups)-1]
	if last.LargestRel < 0.99 {
		t.Errorf("group %d upper bound %.3f, want ≈ 1", last.Index, last.LargestRel)
	}
	comp := e.RunFigure3(io.Discard)
	goodFrac := float64(comp.Good) / float64(comp.Total())
	spamFrac := float64(comp.Spam) / float64(comp.Total())
	if goodFrac < 0.5 || goodFrac > 0.75 {
		t.Errorf("good fraction %.3f, paper reports 63.2%%", goodFrac)
	}
	if spamFrac < 0.15 || spamFrac > 0.35 {
		t.Errorf("spam fraction %.3f, paper reports 25.7%%", spamFrac)
	}
}

func TestEnvFigure4Shape(t *testing.T) {
	e := env(t)
	r := e.RunFigure4(io.Discard)
	if len(r.Points) < 5 {
		t.Fatalf("only %d precision points", len(r.Points))
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if first.Excluded < 0.9 {
		t.Errorf("precision at highest threshold %.3f, paper reports ≈ 1.0", first.Excluded)
	}
	if last.Excluded > 0.65 || last.Excluded < 0.3 {
		t.Errorf("precision floor %.3f, paper reports ≈ 0.48", last.Excluded)
	}
	if first.Excluded <= last.Excluded {
		t.Error("precision does not decline with threshold; the Figure 4 shape is lost")
	}
	// The included curve must sit at or below the excluded curve.
	for i, p := range r.Points {
		if p.Included > p.Excluded+1e-9 {
			t.Errorf("point %d: included precision above excluded", i)
		}
	}
}

func TestEnvFigure5Shape(t *testing.T) {
	// The core-coverage experiment needs enough hosts that the small
	// sub-cores are not degenerate singletons; build a dedicated
	// larger environment.
	cfg := testConfig()
	cfg.Hosts = 150000
	e, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	variants, err := e.RunFigure5(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 6 {
		t.Fatalf("%d variants, want 6 (100%%, 10%%, 1%%, 0.1%%, .it, random=|.it|)", len(variants))
	}
	avg := func(v CoreVariant) float64 {
		s := 0.0
		for _, p := range v.Points {
			s += p.Excluded
		}
		return s / float64(len(v.Points))
	}
	full, it := avg(variants[0]), avg(variants[4])
	if full <= it {
		t.Errorf("full core average precision %.3f not above .it core %.3f; coverage must matter", full, it)
	}
	// The paper's headline negative result for narrow coverage: a
	// broad random core of the SAME size beats the single-country one.
	sameSize := avg(variants[5])
	if it >= sameSize {
		t.Errorf(".it core %.3f should underperform the equal-size random core %.3f", it, sameSize)
	}
	// And the sub-cores decline gradually with size: 10%% ≥ 0.1%%.
	if avg(variants[1]) < avg(variants[3])-0.02 {
		t.Errorf("10%% core %.3f below 0.1%% core %.3f; size should help", avg(variants[1]), avg(variants[3]))
	}
}

func TestEnvAnomalyFix(t *testing.T) {
	e := env(t)
	r, err := e.RunAnomalyFix(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MemberRelBefore) == 0 {
		t.Fatal("no community members in T")
	}
	if r.MemberRelBefore[0] < 0.95 {
		t.Errorf("top community member m~ before fix %.3f, want ≈ 1", r.MemberRelBefore[0])
	}
	if r.MemberRelAfter[0] > 0.6 {
		t.Errorf("top community member m~ after fix %.3f, want a collapse (paper: 0.53)", r.MemberRelAfter[0])
	}
	if r.MeanShiftOthers > 0.1 {
		t.Errorf("other hosts shifted %.4f on average, paper reports 0.0298", r.MeanShiftOthers)
	}
}

func TestEnvFigure6(t *testing.T) {
	e := env(t)
	d, err := e.RunFigure6(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if d.PositiveExponent > -1 || d.PositiveExponent < -4.5 {
		t.Errorf("positive-tail exponent %.2f outside plausible band (paper -2.31)", d.PositiveExponent)
	}
	if d.MinMass >= 0 {
		t.Error("no negative masses in the distribution")
	}
}

func TestEnvAbsMass(t *testing.T) {
	e := env(t)
	r := e.RunAbsMass(io.Discard, 20)
	if len(r.Top) != 20 {
		t.Fatalf("top list has %d entries", len(r.Top))
	}
	// The Section 4.6 point: the top-absolute-mass list intermixes good
	// and spam; neither class may monopolize it completely.
	if r.SpamInTop == 0 || r.SpamInTop == len(r.Top) {
		t.Errorf("top-20 by absolute mass contains %d spam; expected an intermixed list", r.SpamInTop)
	}
}

func TestEnvExpired(t *testing.T) {
	e := env(t)
	missed, caught, err := e.RunExpired(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if missed == 0 {
		t.Error("no expired-domain spam missed; the class exists to be missed by the white-list estimator")
	}
	if caught < missed {
		t.Errorf("black-list evidence caught %d of %d; combining lists should help", caught, missed)
	}
}

func TestEnvScaling(t *testing.T) {
	e := env(t)
	r, err := e.RunScaling(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if r.NormRatioUnscaled > 0.05 {
		t.Errorf("unscaled ‖p'‖/‖p‖ = %.4f, want the Section 3.5 collapse", r.NormRatioUnscaled)
	}
	if r.NormRatioScaled < 0.3 {
		t.Errorf("scaled ‖p'‖/‖p‖ = %.4f, want a meaningful fraction", r.NormRatioScaled)
	}
	if r.NearPageRankFracUnscaled < 0.5 {
		t.Errorf("unscaled estimates near PageRank for only %.1f%% of T; expected most", 100*r.NearPageRankFracUnscaled)
	}
}

func TestEnvSweep(t *testing.T) {
	e := env(t)
	rows := e.RunSweep(io.Discard)
	if len(rows) != 16 {
		t.Fatalf("%d sweep rows, want 16", len(rows))
	}
	// Candidates shrink as tau rises at fixed rho.
	for i := 1; i < len(rows); i++ {
		if rows[i].Rho == rows[i-1].Rho && rows[i].Candidates > rows[i-1].Candidates {
			t.Errorf("candidates grew from %d to %d as tau rose at rho=%v",
				rows[i-1].Candidates, rows[i].Candidates, rows[i].Rho)
		}
	}
}

func TestEnvCombined(t *testing.T) {
	e := env(t)
	rows, err := e.RunCombined(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d estimator rows, want 3", len(rows))
	}
	white, combined := rows[0], rows[2]
	if combined.ExpiredCaught < white.ExpiredCaught {
		t.Errorf("combined estimator catches %d expired vs white's %d; black-list evidence must not hurt",
			combined.ExpiredCaught, white.ExpiredCaught)
	}
}

func TestEnvBaselines(t *testing.T) {
	e := env(t)
	rows, err := e.RunBaselines(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d baseline rows, want 4", len(rows))
	}
	byName := map[string]BaselineResult{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	massRes := byName["spam mass (tau=0.75)"]
	if massRes.Precision < 0.4 || massRes.TargetRecall < 0.4 {
		t.Errorf("mass detection precision %.3f / target recall %.3f, want a strong detector", massRes.Precision, massRes.TargetRecall)
	}
	// Spam mass leads on the product of precision and target recall:
	// TrustRank trades precision for recall, degree outliers catch
	// boosters but not targets, SpamRank sits in between.
	massScore := massRes.Precision * massRes.TargetRecall
	for name, r := range byName {
		if name == massRes.Name {
			continue
		}
		if s := r.Precision * r.TargetRecall; s > massScore {
			t.Errorf("%s precision×recall %.3f beats spam mass %.3f", name, s, massScore)
		}
	}
	// The degree detector must miss the high-PageRank targets — the
	// paper's critique of purely structural baselines.
	if deg := byName["degree outliers"]; deg.TargetRecall > 0.15 {
		t.Errorf("degree outliers target recall %.3f; should be near zero", deg.TargetRecall)
	}
}

func TestEnvSolvers(t *testing.T) {
	e := env(t)
	rows, err := e.RunSolvers(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[1:] {
		if r.MaxDiff > 1e-6 {
			t.Errorf("%s diverges from Jacobi by %v", r.Name, r.MaxDiff)
		}
	}
	if rows[1].Iterations > rows[0].Iterations {
		t.Errorf("Gauss-Seidel (%d iters) slower than Jacobi (%d)", rows[1].Iterations, rows[0].Iterations)
	}
}

func TestSectionWriter(t *testing.T) {
	var sb strings.Builder
	section(&sb, "title")
	if !strings.Contains(sb.String(), "=== title ===") {
		t.Errorf("section rendered %q", sb.String())
	}
}
