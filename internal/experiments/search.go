package experiments

import (
	"fmt"
	"io"

	"spammass/internal/mass"
	"spammass/internal/searchsim"
)

// SearchImpactResult quantifies the paper's motivating harm and the
// benefit of acting on detections.
type SearchImpactResult struct {
	Before, After searchsim.Result
}

// RunSearchImpact simulates topic queries ranked by PageRank and
// measures spam prevalence in the top-10 before and after penalizing
// the mass-detected candidates — the introduction's "artificially high
// link-based ranking" made visible, and the deployment payoff
// measured.
func (e *Env) RunSearchImpact(w io.Writer) (*SearchImpactResult, error) {
	section(w, "Extension: search-result impact (the paper's motivating harm)")
	idx, err := searchsim.BuildIndex(e.World, searchsim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	r := &SearchImpactResult{}
	r.Before = idx.Evaluate(e.World, e.Est, nil)
	penalized := mass.DetectSet(e.Est, mass.DetectConfig{
		RelMassThreshold:        0.75,
		ScaledPageRankThreshold: e.Cfg.Rho,
	})
	r.After = idx.Evaluate(e.World, e.Est, penalized)
	fmt.Fprintf(w, "topic queries ranked by PageRank, top-10 judged (%d queries):\n", r.Before.Queries)
	fmt.Fprintf(w, "%-28s %12s %18s\n", "", "spam in top10", "queries with spam")
	fmt.Fprintf(w, "%-28s %11.1f%% %17.1f%%\n", "unfiltered ranking", 100*r.Before.SpamInTopK, 100*r.Before.QueriesWithSpam)
	fmt.Fprintf(w, "%-28s %11.1f%% %17.1f%%\n", "mass candidates penalized", 100*r.After.SpamInTopK, 100*r.After.QueriesWithSpam)
	fmt.Fprintln(w, "(the residue is low-mass spam — expired domains and honey-pot-diluted farms)")
	return r, nil
}
