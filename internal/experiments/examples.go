package experiments

import (
	"fmt"
	"io"

	"spammass/internal/baseline"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
	"spammass/internal/paperfig"
)

// The worked-example experiments (Figures 1 and 2, Table 1) need no
// generated world, so they are plain functions rather than Env methods.

// Figure1Result compares the two naïve labeling schemes on the
// Figure 1 graph across booster counts k.
type Figure1Result struct {
	K                int
	ScaledPX         float64
	SpamContribution float64
	Scheme1          baseline.Label
	Scheme2          baseline.Label
}

// RunFigure1 reproduces the Figure 1 discussion: scheme 1 (inlink
// counting) labels x good for every k, while scheme 2 (per-link
// PageRank contribution) flips to spam at k = ⌈1/c⌉ = 2, where the
// spam link starts to outweigh both good links combined.
func RunFigure1(w io.Writer, ks []int, cfg pagerank.Config) ([]Figure1Result, error) {
	section(w, "Figure 1: naive labeling schemes on the k-booster farm")
	fmt.Fprintf(w, "%-4s %10s %12s %9s %9s\n", "k", "scaled p_x", "spam contrib", "scheme 1", "scheme 2")
	var out []Figure1Result
	for _, k := range ks {
		f := paperfig.NewFigure1(k)
		labels := func(x graph.NodeID) baseline.Label {
			for _, s := range f.SpamNodes() {
				if s == x {
					return baseline.Spam
				}
			}
			return baseline.Good
		}
		s1 := baseline.NaiveScheme1(f.Graph, f.X, labels)
		s2, err := baseline.NaiveScheme2(f.Graph, f.X, labels, cfg)
		if err != nil {
			return nil, err
		}
		r := Figure1Result{
			K:                k,
			ScaledPX:         f.ScaledPageRankX(paperfig.Damping),
			SpamContribution: f.ScaledSpamContributionX(paperfig.Damping),
			Scheme1:          s1,
			Scheme2:          s2,
		}
		out = append(out, r)
		fmt.Fprintf(w, "%-4d %10.3f %12.3f %9s %9s\n", k, r.ScaledPX, r.SpamContribution, labelName(s1), labelName(s2))
	}
	return out, nil
}

func labelName(l baseline.Label) string {
	if l == baseline.Spam {
		return "spam"
	}
	return "good"
}

// Figure2Result carries the set contributions of Section 3.3.
type Figure2Result struct {
	GoodContribution float64 // scaled q_x^{g0..g3}
	SpamContribution float64 // scaled q_x^{s0..s6}
	Ratio            float64 // paper: 1.65 for c = 0.85
	Scheme1          baseline.Label
	Scheme2          baseline.Label
}

// RunFigure2 reproduces the Figure 2 discussion: both naïve schemes
// label x good, yet the full direct-plus-indirect spam contribution
// exceeds the good contribution by the paper's 1.65 factor.
func RunFigure2(w io.Writer, cfg pagerank.Config) (*Figure2Result, error) {
	section(w, "Figure 2: why per-link contributions are not enough")
	f := paperfig.NewFigure2()
	v := pagerank.UniformJump(f.Graph.NumNodes())
	qGood, err := pagerank.Contribution(f.Graph, f.GoodNodes(), v, cfg)
	if err != nil {
		return nil, err
	}
	qSpam, err := pagerank.Contribution(f.Graph, f.S[:], v, cfg)
	if err != nil {
		return nil, err
	}
	scale := float64(f.Graph.NumNodes()) / (1 - paperfig.Damping)
	labels := func(x graph.NodeID) baseline.Label {
		for _, s := range f.S {
			if s == x {
				return baseline.Spam
			}
		}
		return baseline.Good
	}
	s2, err := baseline.NaiveScheme2(f.Graph, f.X, labels, cfg)
	if err != nil {
		return nil, err
	}
	r := &Figure2Result{
		GoodContribution: qGood[f.X] * scale,
		SpamContribution: qSpam[f.X] * scale,
		Scheme1:          baseline.NaiveScheme1(f.Graph, f.X, labels),
		Scheme2:          s2,
	}
	r.Ratio = r.SpamContribution / r.GoodContribution
	fmt.Fprintf(w, "scaled q_x^good = %.4f, scaled q_x^spam = %.4f (ratio %.2f; paper: 1.65)\n",
		r.GoodContribution, r.SpamContribution, r.Ratio)
	fmt.Fprintf(w, "scheme 1 labels x %s, scheme 2 labels x %s (both wrong: x is the farm target)\n",
		labelName(r.Scheme1), labelName(r.Scheme2))
	return r, nil
}

// Table1Row is one row of the regenerated Table 1.
type Table1Row struct {
	Label                          string
	P, PCore, M, MEst, RelM, RelME float64
}

// RunTable1 regenerates Table 1 of the paper: PageRank, core-based
// PageRank, actual and estimated absolute mass, and the relative
// counterparts for every node of Figure 2, scaled by n/(1−c).
func RunTable1(w io.Writer, cfg pagerank.Config) ([]Table1Row, error) {
	section(w, "Table 1: features of the Figure 2 nodes (scaled by n/(1-c))")
	f := paperfig.NewFigure2()
	opts := mass.Options{Solver: cfg, Gamma: 0} // Table 1 uses the plain v^V+ jump
	est, err := mass.EstimateFromCore(f.Graph, f.GoodCore(), opts)
	if err != nil {
		return nil, err
	}
	exact, err := mass.Exact(f.Graph, f.SpamNodes(), opts)
	if err != nil {
		return nil, err
	}
	scale := float64(f.Graph.NumNodes()) / (1 - paperfig.Damping)
	ids, labels := f.NodeOrder()
	fmt.Fprintf(w, "%-4s %8s %8s %8s %8s %8s %8s\n", "node", "p", "p'", "M", "M~", "m", "m~")
	var rows []Table1Row
	for i, id := range ids {
		r := Table1Row{
			Label: labels[i],
			P:     est.P[id] * scale,
			PCore: est.PCore[id] * scale,
			M:     exact.Abs[id] * scale,
			MEst:  est.Abs[id] * scale,
			RelM:  exact.Rel[id],
			RelME: est.Rel[id],
		}
		rows = append(rows, r)
		fmt.Fprintf(w, "%-4s %8.3f %8.3f %8.3f %8.3f %8.2f %8.2f\n",
			r.Label, r.P, r.PCore, r.M, r.MEst, r.RelM, r.RelME)
	}
	return rows, nil
}

// RunAlgorithm2Walkthrough reproduces the Section 3.6 walkthrough on
// Figure 2: with ρ = 1.5 and τ = 0.5 the candidate set is {x, s0, g2}.
func RunAlgorithm2Walkthrough(w io.Writer, cfg pagerank.Config) ([]mass.Candidate, error) {
	section(w, "Algorithm 2 walkthrough (Section 3.6)")
	f := paperfig.NewFigure2()
	est, err := mass.EstimateFromCore(f.Graph, f.GoodCore(), mass.Options{Solver: cfg, Gamma: 0})
	if err != nil {
		return nil, err
	}
	cands := mass.Detect(est, mass.DetectConfig{RelMassThreshold: 0.5, ScaledPageRankThreshold: 1.5})
	_, labels := f.NodeOrder()
	nameOf := func(id graph.NodeID) string {
		ids, _ := f.NodeOrder()
		for i, x := range ids {
			if x == id {
				return labels[i]
			}
		}
		return fmt.Sprint(id)
	}
	for _, c := range cands {
		fmt.Fprintf(w, "candidate %-3s scaled PR %.2f, m~ %.2f\n", nameOf(c.Node), c.ScaledPageRank, c.RelMass)
	}
	fmt.Fprintln(w, "(paper: S = {x, s0, g2}; g2 is the false positive caused by the incomplete core)")
	return cands, nil
}
