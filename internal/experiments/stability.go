package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"spammass/internal/goodcore"
	"spammass/internal/graph"
	"spammass/internal/mass"
)

// StabilityBucket is one PageRank decade of the estimate-stability
// ablation.
type StabilityBucket struct {
	// LoPR and HiPR bound the bucket in scaled PageRank.
	LoPR, HiPR float64
	Nodes      int
	// MeanStd is the mean per-node standard deviation of the relative
	// mass estimate across the resampled cores.
	MeanStd float64
}

// RunStability quantifies the paper's third reason for the PageRank
// threshold ρ (Section 3.6): "for nodes x with low PageRank scores,
// even the slightest error in approximating M_x by M̃_x could yield
// huge differences in the corresponding relative mass estimates". It
// re-estimates relative mass with several random half-cores and
// measures how the per-node estimates scatter, bucketed by PageRank:
// the scatter must shrink as PageRank grows, which is exactly what
// makes thresholding on ρ sound.
func (e *Env) RunStability(w io.Writer, resamples int) ([]StabilityBucket, error) {
	section(w, "Ablation (Section 3.6): relative-mass stability vs PageRank")
	if resamples < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 resamples")
	}
	n := e.Est.N()
	// All half-core re-estimates run as one batch: every resample's
	// core-biased solve shares the per-iteration graph sweep.
	cores := make([][]graph.NodeID, resamples)
	for r := 0; r < resamples; r++ {
		sub, err := goodcore.Subsample(e.Core, 0.5, e.Cfg.Seed+int64(100+r))
		if err != nil {
			return nil, err
		}
		cores[r] = sub.Nodes
	}
	ests, err := e.estimateWithCores(cores)
	if err != nil {
		return nil, err
	}
	rels := make([][]float64, resamples)
	for r := 0; r < resamples; r++ {
		rels[r] = ests[r].Rel
	}

	// Bucket by scaled PageRank decades starting at 1.
	type acc struct {
		nodes int
		std   float64
	}
	buckets := map[int]*acc{}
	for x := 0; x < n; x++ {
		spr := e.Est.ScaledPageRank(graph.NodeID(x))
		if spr < 1 {
			continue
		}
		decade := int(math.Floor(math.Log10(spr) * 2)) // half-decades
		mean := 0.0
		for r := 0; r < resamples; r++ {
			mean += rels[r][x]
		}
		mean /= float64(resamples)
		variance := 0.0
		for r := 0; r < resamples; r++ {
			d := rels[r][x] - mean
			variance += d * d
		}
		variance /= float64(resamples - 1)
		b := buckets[decade]
		if b == nil {
			b = &acc{}
			buckets[decade] = b
		}
		b.nodes++
		b.std += math.Sqrt(variance)
	}
	var keys []int
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var out []StabilityBucket
	fmt.Fprintf(w, "(%d random half-cores; per-node std of m~ by scaled-PageRank bucket)\n", resamples)
	fmt.Fprintf(w, "%-22s %10s %12s\n", "scaled PR range", "nodes", "mean std m~")
	for _, k := range keys {
		b := buckets[k]
		if b.nodes < 20 {
			continue // too few nodes for a stable bucket statistic
		}
		sb := StabilityBucket{
			LoPR:    math.Pow(10, float64(k)/2),
			HiPR:    math.Pow(10, float64(k+1)/2),
			Nodes:   b.nodes,
			MeanStd: b.std / float64(b.nodes),
		}
		out = append(out, sb)
		fmt.Fprintf(w, "[%8.1f, %8.1f) %10d %12.4f\n", sb.LoPR, sb.HiPR, sb.Nodes, sb.MeanStd)
	}
	fmt.Fprintln(w, "(estimates stabilize as PageRank grows: thresholding on rho is what makes")
	fmt.Fprintln(w, " relative mass a trustworthy signal)")
	return out, nil
}

// massInvariantCheck is used by tests: M̃ + p' = p must hold exactly
// for every derived estimate.
func massInvariantCheck(est *mass.Estimates) float64 {
	worst := 0.0
	for x := range est.P {
		d := math.Abs(est.P[x] - (est.Abs[x] + est.PCore[x]))
		if d > worst {
			worst = d
		}
	}
	return worst
}
