package experiments

import (
	"io"
	"strings"
	"testing"
	"time"
)

func TestRunForensics(t *testing.T) {
	e := env(t)
	r, err := e.RunForensics(io.Discard, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r.TargetsAnalyzed == 0 {
		t.Fatal("no candidates analyzed")
	}
	if r.BoosterPrecision < 0.9 {
		t.Errorf("booster spam-precision %.3f, want ≥ 0.9", r.BoosterPrecision)
	}
	if r.BoosterRecall < 0.5 {
		t.Errorf("booster recall %.3f, want ≥ 0.5", r.BoosterRecall)
	}
}

func TestRunAnomalyDiscovery(t *testing.T) {
	e := env(t)
	r, err := e.RunAnomalyDiscovery(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if r.Communities == 0 {
		t.Fatal("no communities discovered on a world with planted anomalies")
	}
	if r.TopCommunity != "alibaba" && r.TopCommunity != "brblogs" {
		t.Errorf("top community %q, want a planted anomaly", r.TopCommunity)
	}
	if r.TopPurity < 0.9 {
		t.Errorf("top community purity %.2f, want ≥ 0.9", r.TopPurity)
	}
	if r.PrecisionAfter <= r.PrecisionBefore {
		t.Errorf("precision did not improve after the automated fix: %.3f -> %.3f",
			r.PrecisionBefore, r.PrecisionAfter)
	}
}

func TestRunContentFilter(t *testing.T) {
	e := env(t)
	r, err := e.RunContentFilter(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if r.After.Precision <= r.Before.Precision {
		t.Errorf("content filter did not raise precision: %.3f -> %.3f",
			r.Before.Precision, r.After.Precision)
	}
	if r.After.Recall > r.Before.Recall {
		t.Errorf("filtering cannot raise recall: %.3f -> %.3f", r.Before.Recall, r.After.Recall)
	}
	// The mimicking spam bounds the cost: recall must not collapse.
	if r.After.Recall < 0.5*r.Before.Recall {
		t.Errorf("content filter destroyed recall: %.3f -> %.3f", r.Before.Recall, r.After.Recall)
	}
}

func TestRunAdversarial(t *testing.T) {
	e := env(t)
	pts, err := e.RunAdversarial(io.Discard, []int{0, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 { // two farms × three steps
		t.Fatalf("%d points, want 6", len(pts))
	}
	median, largest := pts[:3], pts[3:]
	// Relative mass must fall monotonically with purchased links.
	for _, series := range [][]AdversarialPoint{median, largest} {
		for i := 1; i < len(series); i++ {
			if series[i].RelMass > series[i-1].RelMass+1e-9 {
				t.Errorf("relative mass rose with more purchased links: %+v", series)
			}
		}
		if !series[0].Detected {
			t.Error("unmodified farm target not detected")
		}
	}
	// The evasion price grows with farm size: at every step the larger
	// farm retains at least as much relative mass.
	for i := range median {
		if largest[i].RelMass < median[i].RelMass-1e-9 {
			t.Errorf("step %d: larger farm lost more mass (%.3f) than the median farm (%.3f)",
				i, largest[i].RelMass, median[i].RelMass)
		}
	}
}

func TestRunCoreGrowth(t *testing.T) {
	e := env(t)
	pts, err := e.RunCoreGrowth(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("%d growth points, want 6", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].CoreSize < pts[i-1].CoreSize {
			t.Error("core sizes not increasing")
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.Precision < first.Precision-0.05 {
		t.Errorf("precision fell as the core grew: %.3f -> %.3f", first.Precision, last.Precision)
	}
	if first.Precision < 0.5 {
		t.Errorf("small-core precision %.3f; the deployment advice needs a usable start", first.Precision)
	}
}

func TestRunStability(t *testing.T) {
	e := env(t)
	buckets, err := e.RunStability(io.Discard, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) < 3 {
		t.Fatalf("only %d stability buckets", len(buckets))
	}
	// The Section 3.6 claim: scatter shrinks as PageRank grows. Demand
	// the highest usable bucket be substantially more stable than the
	// lowest.
	first, last := buckets[0], buckets[len(buckets)-1]
	if last.MeanStd > 0.6*first.MeanStd {
		t.Errorf("std did not shrink with PageRank: %.4f (PR~%.0f) -> %.4f (PR~%.0f)",
			first.MeanStd, first.LoPR, last.MeanStd, last.LoPR)
	}
	if _, err := e.RunStability(io.Discard, 1); err == nil {
		t.Error("single resample accepted")
	}
}

func TestMassInvariantOnEnv(t *testing.T) {
	e := env(t)
	if worst := massInvariantCheck(e.Est); worst > 1e-15 {
		t.Errorf("M~ + p' = p violated by %v", worst)
	}
}

func TestRunTemporal(t *testing.T) {
	e := env(t)
	r, err := e.RunTemporal(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if r.CoreStillGood < 0.999 {
		t.Errorf("core freshness %.3f, want 1.0 (the good core must survive spam churn)", r.CoreStillGood)
	}
	if r.BlacklistStillSpam > 0.01 {
		t.Errorf("black-list freshness %.3f, want a collapse toward 0", r.BlacklistStillSpam)
	}
	if r.WhiteRecallT1 < 0.7*r.WhiteRecallT0 {
		t.Errorf("white-list recall decayed %.3f -> %.3f; the aged core should keep detecting",
			r.WhiteRecallT0, r.WhiteRecallT1)
	}
	if r.BlackRecallT1 >= r.WhiteRecallT1 {
		t.Errorf("stale black list (%.3f) should underperform the aged core (%.3f)",
			r.BlackRecallT1, r.WhiteRecallT1)
	}
}

func TestRunSearchImpact(t *testing.T) {
	e := env(t)
	r, err := e.RunSearchImpact(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if r.Before.Queries == 0 {
		t.Fatal("no evaluable queries")
	}
	if r.Before.SpamInTopK <= 0 {
		t.Fatal("no spam in unfiltered top-10; the motivating harm is absent")
	}
	if r.After.SpamInTopK >= r.Before.SpamInTopK {
		t.Errorf("penalizing candidates did not reduce top-10 spam: %.4f -> %.4f",
			r.Before.SpamInTopK, r.After.SpamInTopK)
	}
}

func TestWriteReport(t *testing.T) {
	e := env(t)
	var sb strings.Builder
	if err := e.WriteReport(&sb, time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Reproduction report", "9.330", "1.65", "Section 4.1",
		"Main results", "Detection summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunGranularity(t *testing.T) {
	e := env(t)
	r, err := e.RunGranularity(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pages <= int64(e.World.Graph.NumNodes()) {
		t.Fatalf("%d pages for %d hosts", r.Pages, e.World.Graph.NumNodes())
	}
	if r.HostRecall == 0 {
		t.Fatal("host-level detection found nothing")
	}
	if r.PageRecall < 0.7*r.HostRecall {
		t.Errorf("page-level recall %.3f collapsed vs host-level %.3f", r.PageRecall, r.HostRecall)
	}
	if r.Agreement < 0.8 {
		t.Errorf("granularity verdict agreement %.3f, want ≥ 0.8", r.Agreement)
	}
}

func TestRunTrustRankSeeds(t *testing.T) {
	e := env(t)
	rows, err := e.RunTrustRankSeeds(io.Discard, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d strategies, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Orderedness < 0.5 {
			t.Errorf("%v orderedness %.3f below chance", r.Strategy, r.Orderedness)
		}
	}
	// Inverse PageRank should not lose badly to a random spread.
	if rows[0].Orderedness < rows[2].Orderedness-0.1 {
		t.Errorf("inverse-pagerank %.3f far below random %.3f", rows[0].Orderedness, rows[2].Orderedness)
	}
}
