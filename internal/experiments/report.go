package experiments

import (
	"fmt"
	"io"
	"time"

	"spammass/internal/pagerank"
)

// WriteReport runs the headline experiments and writes a standalone
// markdown summary — the reproducibility artifact a fresh run leaves
// behind, with every measured number next to the paper's.
func (e *Env) WriteReport(w io.Writer, generatedAt time.Time) error {
	fmt.Fprintf(w, "# Reproduction report — Link Spam Detection Based on Mass Estimation\n\n")
	fmt.Fprintf(w, "Generated %s | hosts %d | seed %d | γ = %.2f | ρ = %.0f\n\n",
		generatedAt.Format("2006-01-02 15:04"), e.Cfg.Hosts, e.Cfg.Seed, e.Cfg.Gamma, e.Cfg.Rho)

	// Worked examples.
	t1, err := RunTable1(io.Discard, e.Cfg.Solver)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Worked examples\n\n")
	fmt.Fprintf(w, "| quantity | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(w, "| Table 1 scaled p_x | 9.33 | %.3f |\n", t1[0].P)
	fmt.Fprintf(w, "| Table 1 m̃_x | 0.75 | %.3f |\n", t1[0].RelME)
	fig2, err := RunFigure2(io.Discard, e.Cfg.Solver)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| Figure 2 spam/good contribution ratio | 1.65 | %.3f |\n\n", fig2.Ratio)

	// Data set.
	ds := e.RunDataSet(io.Discard)
	fmt.Fprintf(w, "## Data set (Section 4.1)\n\n")
	fmt.Fprintf(w, "| quantity | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(w, "| no inlinks | 35%% | %.1f%% |\n", 100*ds.Stats.FracNoInlinks())
	fmt.Fprintf(w, "| no outlinks | 66.4%% | %.1f%% |\n", 100*ds.Stats.FracNoOutlinks())
	fmt.Fprintf(w, "| isolated | 25.8%% | %.1f%% |\n", 100*ds.Stats.FracIsolated())
	pr, err := e.RunPRDist(io.Discard)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| scaled PR < 2 | 91.1%% | %.1f%% |\n", 100*pr.FracBelow2)
	core := e.RunCore(io.Discard)
	fmt.Fprintf(w, "| core fraction of hosts | 0.69%% | %.2f%% |\n\n", 100*core.FracOfHosts)

	// Main results.
	fmt.Fprintf(w, "## Main results (Section 4.4)\n\n")
	fmt.Fprintf(w, "| quantity | paper | measured |\n|---|---|---|\n")
	fmt.Fprintf(w, "| \\|T\\| fraction of hosts | 1.2%% | %.2f%% |\n",
		100*float64(len(e.T))/float64(e.World.Graph.NumNodes()))
	comp := e.RunFigure3(io.Discard)
	fmt.Fprintf(w, "| sample spam share | 25.7%% | %.1f%% |\n",
		100*float64(comp.Spam)/float64(comp.Total()))
	fig4 := e.RunFigure4(io.Discard)
	first, last := fig4.Points[0], fig4.Points[len(fig4.Points)-1]
	fmt.Fprintf(w, "| precision at top threshold (anomalies excluded) | ~1.00 | %.3f |\n", first.Excluded)
	fmt.Fprintf(w, "| precision floor at τ=0 | ~0.48 | %.3f |\n", last.Excluded)
	anomaly, err := e.RunAnomalyFix(io.Discard)
	if err != nil {
		return err
	}
	after := 0.0
	if len(anomaly.MemberRelAfter) > 0 {
		after = anomaly.MemberRelAfter[0]
	}
	fmt.Fprintf(w, "| §4.4.2 top member m̃ after core fix | 0.53 | %.3f |\n", after)
	fmt.Fprintf(w, "| §4.4.2 mean shift of other hosts | 0.0298 | %.4f |\n", anomaly.MeanShiftOthers)
	fig6, err := e.RunFigure6(io.Discard)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| positive-mass power-law exponent | −2.31 | %.2f |\n\n", fig6.PositiveExponent)

	// Solver health, via the shared engine.
	res, err := e.Engine().Solve(pagerank.UniformJump(e.World.Graph.NumNodes()))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Solver\n\nJacobi converged in %d iterations (residual %.2e) over %d edges",
		res.Iterations, res.Residual, e.World.Graph.NumEdges())
	if res.Stats != nil {
		fmt.Fprintf(w, " (%.1fms, %.1fM edges/s)", float64(res.Stats.WallTime.Microseconds())/1000, res.Stats.EdgesPerSecond/1e6)
	}
	fmt.Fprintln(w, ".")

	// Ground-truth detection summary.
	spamInT := 0
	for _, x := range e.T {
		if e.World.IsSpam(x) {
			spamInT++
		}
	}
	fmt.Fprintf(w, "\n## Detection summary\n\n%d of %d high-PageRank hosts are spam (%.1f%%); ",
		spamInT, len(e.T), 100*float64(spamInT)/float64(len(e.T)))
	fmt.Fprintf(w, "the candidate list at τ = 0.98 covers the heavy-weight farms the paper targets.\n")
	return nil
}
