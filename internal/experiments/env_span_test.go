package experiments

import (
	"testing"

	"spammass/internal/obs"
)

// TestNewEnvClosesSpansOnError: a failed setup (host count below the
// generator's minimum) must still end every setup span it started. A
// span leaked open on the error path reports a still-running duration
// in every trace snapshot taken afterwards, silently corrupting the
// run's JSON trace. (Regression test for the spanend lint findings.)
func TestNewEnvClosesSpansOnError(t *testing.T) {
	root := obs.NewSpan("test_root")
	cfg := testConfig()
	cfg.Hosts = 10 // webgen rejects worlds below 100 hosts
	cfg.Solver.Obs = obs.NewContext(obs.NewRegistry(), root)

	if _, err := NewEnv(cfg); err == nil {
		t.Fatal("NewEnv with 10 hosts should fail in world generation")
	}

	snap := root.Snapshot()
	for _, name := range []string{"experiments.setup", "experiments.generate_world"} {
		sub := snap.Find(name)
		if sub == nil {
			t.Fatalf("span %q missing from trace: %v", name, snap.SpanNames())
		}
		if !sub.Ended {
			t.Errorf("span %q leaked open on the error path", name)
		}
	}
}
