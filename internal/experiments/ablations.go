package experiments

import (
	"fmt"
	"io"
	"sort"

	"spammass/internal/baseline"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
	"spammass/internal/stats"
	"spammass/internal/trustrank"
)

// ScalingResult is the Section 3.5 ablation: what happens without the
// γ-scaling of the core-based jump vector.
type ScalingResult struct {
	// NormRatioUnscaled and NormRatioScaled are ‖p'‖/‖p‖ under the
	// plain v^Ṽ⁺ jump and the γ-scaled jump w.
	NormRatioUnscaled, NormRatioScaled float64
	// NearPageRankFracUnscaled is the fraction of T whose unscaled
	// estimate M̃ is within 1% of its PageRank — the "only a few nodes
	// have mass estimates differing from their PageRank scores"
	// failure mode.
	NearPageRankFracUnscaled float64
}

// RunScaling compares mass estimation with and without jump scaling.
func (e *Env) RunScaling(w io.Writer) (*ScalingResult, error) {
	section(w, "Ablation (Section 3.5): core jump scaling")
	plain, err := mass.EstimateFromCore(e.World.Graph, e.Core.Nodes, mass.Options{Solver: e.Cfg.Solver, Gamma: 0})
	if err != nil {
		return nil, err
	}
	r := &ScalingResult{
		NormRatioUnscaled: plain.TotalEstimatedGoodContribution() / plain.P.Norm1(),
		NormRatioScaled:   e.Est.TotalEstimatedGoodContribution() / e.Est.P.Norm1(),
	}
	near := 0
	for _, x := range e.T {
		if plain.P[x] > 0 && plain.Abs[x] > 0.99*plain.P[x] {
			near++
		}
	}
	r.NearPageRankFracUnscaled = float64(near) / float64(len(e.T))
	fmt.Fprintf(w, "‖p'‖/‖p‖ unscaled: %.4f  (collapse: the paper's ‖p'‖ ≪ ‖p‖)\n", r.NormRatioUnscaled)
	fmt.Fprintf(w, "‖p'‖/‖p‖ scaled:   %.4f  (γ = %.2f)\n", r.NormRatioScaled, e.Cfg.Gamma)
	fmt.Fprintf(w, "fraction of T with M~ within 1%% of PageRank when unscaled: %.1f%%\n", 100*r.NearPageRankFracUnscaled)
	return r, nil
}

// SweepResult holds detection counts over a (ρ, τ) grid.
type SweepResult struct {
	Rho, Tau   float64
	Candidates int
	Precision  float64 // ground-truth precision over all candidates
}

// RunSweep runs Algorithm 2 over a grid of thresholds, measuring
// candidate counts and ground-truth precision (the synthetic world
// lets us evaluate over all candidates, not just a sample).
func (e *Env) RunSweep(w io.Writer) []SweepResult {
	section(w, "Ablation: (rho, tau) threshold sweep, ground-truth precision")
	var out []SweepResult
	fmt.Fprintf(w, "%8s %8s %12s %10s\n", "rho", "tau", "candidates", "precision")
	for _, rho := range []float64{5, 10, 20, 50} {
		for _, tau := range []float64{0.5, 0.75, 0.9, 0.98} {
			cands := mass.Detect(e.Est, mass.DetectConfig{RelMassThreshold: tau, ScaledPageRankThreshold: rho})
			spam := 0
			for _, c := range cands {
				if e.World.IsSpam(c.Node) {
					spam++
				}
			}
			r := SweepResult{Rho: rho, Tau: tau, Candidates: len(cands)}
			if len(cands) > 0 {
				r.Precision = float64(spam) / float64(len(cands))
			}
			out = append(out, r)
			fmt.Fprintf(w, "%8.1f %8.2f %12d %10.3f\n", rho, tau, r.Candidates, r.Precision)
		}
	}
	return out
}

// CombinedResult compares white-list, black-list, and combined
// estimators on ground truth (Section 3.4's combination schemes).
type CombinedResult struct {
	Name       string
	Candidates int
	Precision  float64
	// ExpiredCaught counts expired-domain spam detected in T — the
	// class the white-list estimator misses by design.
	ExpiredCaught int
}

// RunCombined evaluates M̃, M̂, and (M̃+M̂)/2 detection at τ = 0.75.
func (e *Env) RunCombined(w io.Writer) ([]CombinedResult, error) {
	section(w, "Ablation (Section 3.4): combining white-list and black-list estimates")
	spam := e.World.SpamNodes()
	// The search engine knows a tenth of the spam (a realistic
	// black list: incomplete and biased toward reported farms).
	known := make([]graph.NodeID, 0, len(spam)/10)
	for i, x := range spam {
		if i%10 == 0 {
			known = append(known, x)
		}
	}
	black, err := mass.EstimateFromBlacklist(e.World.Graph, known, 1-e.Cfg.Gamma, mass.Options{Solver: e.Cfg.Solver})
	if err != nil {
		return nil, err
	}
	lambda := mass.CoreWeightLambda(e.Core.Size(), len(known), e.World.Graph.NumNodes(), e.Cfg.Gamma)
	combined, err := mass.WeightedCombine(e.Est, black, lambda)
	if err != nil {
		return nil, err
	}
	cfg := mass.DetectConfig{RelMassThreshold: 0.75, ScaledPageRankThreshold: e.Cfg.Rho}
	expired := make(map[graph.NodeID]bool)
	for _, x := range e.World.ExpiredSpam {
		expired[x] = true
	}
	var out []CombinedResult
	fmt.Fprintf(w, "(black list: %d known spam hosts; lambda = %.3f)\n", len(known), lambda)
	fmt.Fprintf(w, "%-14s %12s %10s %14s\n", "estimator", "candidates", "precision", "expired found")
	for _, v := range []struct {
		name string
		est  *mass.Estimates
	}{{"white (M~)", e.Est}, {"black (M^)", black}, {"combined", combined}} {
		cands := mass.Detect(v.est, cfg)
		spamCount, expiredCount := 0, 0
		for _, c := range cands {
			if e.World.IsSpam(c.Node) {
				spamCount++
			}
			if expired[c.Node] {
				expiredCount++
			}
		}
		r := CombinedResult{Name: v.name, Candidates: len(cands), ExpiredCaught: expiredCount}
		if len(cands) > 0 {
			r.Precision = float64(spamCount) / float64(len(cands))
		}
		out = append(out, r)
		fmt.Fprintf(w, "%-14s %12d %10.3f %14d\n", r.Name, r.Candidates, r.Precision, r.ExpiredCaught)
	}
	return out, nil
}

// BaselineResult compares detectors on ground truth. Flagged counts
// every node a detector marks; Precision is the spam fraction among
// them; TargetRecall is the fraction of spam hosts in T — the
// high-PageRank boosting beneficiaries the paper targets — that the
// detector catches.
type BaselineResult struct {
	Name         string
	Flagged      int
	Precision    float64
	TargetRecall float64
}

// RunBaselines compares mass-based detection with TrustRank demotion
// and the related-work baselines of Section 5 on the same world. The
// expected shape: spam mass leads on target recall at high precision;
// TrustRank demotes whole low-trust regions (high recall, low
// precision); the Fetterly-style degree detector nails the
// machine-generated boosting nodes (high precision) but almost never
// the targets themselves; the SpamRank-style detector sits in between.
func (e *Env) RunBaselines(w io.Writer) ([]BaselineResult, error) {
	section(w, "Comparison: mass detection vs TrustRank demotion vs related-work baselines")
	spamInT := make(map[graph.NodeID]bool)
	for _, x := range e.T {
		if e.World.IsSpam(x) {
			spamInT[x] = true
		}
	}
	score := func(name string, flagged []graph.NodeID) BaselineResult {
		r := BaselineResult{Name: name, Flagged: len(flagged)}
		spam, targets := 0, 0
		for _, x := range flagged {
			if e.World.IsSpam(x) {
				spam++
			}
			if spamInT[x] {
				targets++
			}
		}
		if len(flagged) > 0 {
			r.Precision = float64(spam) / float64(len(flagged))
		}
		if len(spamInT) > 0 {
			r.TargetRecall = float64(targets) / float64(len(spamInT))
		}
		return r
	}

	var out []BaselineResult

	// 1. Spam mass (Algorithm 2, τ = 0.75).
	var massFlagged []graph.NodeID
	for _, c := range mass.Detect(e.Est, mass.DetectConfig{RelMassThreshold: 0.75, ScaledPageRankThreshold: e.Cfg.Rho}) {
		massFlagged = append(massFlagged, c.Node)
	}
	out = append(out, score("spam mass (tau=0.75)", massFlagged))

	// 2. TrustRank demotion: seeds from the directory (small, highly
	// selective), flag T members in the bottom trust tier.
	seeds := e.World.DirectoryMembers
	trust, err := trustrank.ComputeOn(e.Engine(), seeds)
	if err != nil {
		return nil, err
	}
	// Threshold: trust below the median trust of T members.
	var trustInT []float64
	for _, x := range e.T {
		trustInT = append(trustInT, trust[x])
	}
	medianTrust := median(trustInT)
	var demoted []graph.NodeID
	for _, x := range e.T {
		if trust[x] < medianTrust {
			demoted = append(demoted, x)
		}
	}
	out = append(out, score("trustrank demotion", demoted))

	// 3. Degree-distribution outliers (Fetterly et al.): out-degree
	// mode, looking for degrees hit far more often than the fitted
	// power law predicts — the signature of template-stamped boosting
	// pages that all carry the identical number of links.
	degFlagged, err := baseline.DegreeOutliers(e.World.Graph, baseline.DegreeOutlierConfig{
		In: false, MinDegree: 3, OutlierFactor: 3, MinCount: 30,
	})
	if err != nil {
		return nil, err
	}
	out = append(out, score("degree outliers", degFlagged))

	// 4. In-neighbor PageRank deviation (Benczúr et al.). Flag the
	// same number of hosts as the mass detector for comparability.
	spamRank, err := baseline.SpamRankScores(e.World.Graph, e.Est.P, baseline.DefaultSpamRankConfig())
	if err != nil {
		return nil, err
	}
	srFlagged := baseline.TopSpamRank(spamRank, len(massFlagged))
	out = append(out, score("spamrank-style", srFlagged))

	fmt.Fprintf(w, "%-22s %10s %10s %14s\n", "detector", "flagged", "precision", "target recall")
	for _, r := range out {
		fmt.Fprintf(w, "%-22s %10d %10.3f %14.3f\n", r.Name, r.Flagged, r.Precision, r.TargetRecall)
	}

	// Threshold-free comparison over T: AUC of each detector's score
	// at ranking spam above good. Degree outliers are binary and have
	// no ranking, so they are omitted here.
	labels := make([]bool, 0, len(e.T))
	var massScores, trustScores, srScores []float64
	for _, x := range e.T {
		labels = append(labels, e.World.IsSpam(x))
		massScores = append(massScores, e.Est.Rel[x])
		trustScores = append(trustScores, -trust[x]) // low trust = suspicious
		srScores = append(srScores, spamRank[x])
	}
	fmt.Fprintf(w, "AUC over T (spam ranked above good):")
	for _, v := range []struct {
		name   string
		scores []float64
	}{{"spam mass", massScores}, {"trustrank", trustScores}, {"spamrank", srScores}} {
		auc, err := stats.AUC(v.scores, labels)
		if err != nil {
			return nil, fmt.Errorf("experiments: AUC for %s: %w", v.name, err)
		}
		fmt.Fprintf(w, "  %s %.3f", v.name, auc)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "(spam mass detects the boosted targets; TrustRank demotes whole low-trust")
	fmt.Fprintln(w, " regions; degree outliers catch uniform boosting nodes but not the targets)")
	return out, nil
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// SolverResult compares the linear solvers.
type SolverResult struct {
	Name       string
	Iterations int
	MaxDiff    float64 // against Jacobi, after normalization
}

// RunSolvers cross-validates the three PageRank solvers on the world
// graph and reports their iteration counts.
func (e *Env) RunSolvers(w io.Writer) ([]SolverResult, error) {
	section(w, "Ablation: linear PageRank solver comparison")
	g := e.World.Graph
	v := pagerank.UniformJump(g.NumNodes())
	// All three algorithms run on the shared engine: its cached
	// out-degree and dangling state are algorithm-independent.
	withAlgo := func(a pagerank.Algorithm) pagerank.Config {
		cfg := e.Cfg.Solver
		cfg.Algorithm = a
		return cfg
	}
	eng := e.Engine()
	ja, err := eng.SolveConfig(v, withAlgo(pagerank.AlgoJacobi))
	if err != nil {
		return nil, err
	}
	gs, err := eng.SolveConfig(v, withAlgo(pagerank.AlgoGaussSeidel))
	if err != nil {
		return nil, err
	}
	pw, err := eng.SolveConfig(v, withAlgo(pagerank.AlgoPowerIteration))
	if err != nil {
		return nil, err
	}
	jn := ja.Scores.Normalized()
	out := []SolverResult{
		{Name: "jacobi", Iterations: ja.Iterations},
		{Name: "gauss-seidel", Iterations: gs.Iterations, MaxDiff: maxAbsDiff(jn, gs.Scores.Normalized())},
		{Name: "power-iteration", Iterations: pw.Iterations, MaxDiff: maxAbsDiff(jn, pw.Scores.Normalized())},
	}
	for _, r := range out {
		fmt.Fprintf(w, "%-16s %4d iterations, max normalized diff vs jacobi %.2e\n", r.Name, r.Iterations, r.MaxDiff)
	}
	return out, nil
}

func maxAbsDiff(a, b pagerank.Vector) float64 {
	m := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
