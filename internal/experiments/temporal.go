package experiments

import (
	"fmt"
	"io"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
	"spammass/internal/webgen"
)

// TemporalResult quantifies the Section 3.4 stability claim: "one can
// expect the good core to be more stable over time than Ṽ⁻, as spam
// nodes come and go on the web".
type TemporalResult struct {
	// CoreStillGood is the fraction of the good core that is still a
	// good host after the spam generation churns (should be 1).
	CoreStillGood float64
	// BlacklistStillSpam is the fraction of the time-t0 black list
	// still pointing at live spam at t1 (should collapse toward 0).
	BlacklistStillSpam float64
	// WhiteRecallT0 and WhiteRecallT1 are the white-list detector's
	// recalls of spam targets before and after churn — the aged core
	// should keep detecting the NEW farms.
	WhiteRecallT0, WhiteRecallT1 float64
	// BlackRecallT1 is the recall at t1 of a black-list estimator
	// still using the t0 list — stale evidence.
	BlackRecallT1 float64
}

// RunTemporal evolves the spam generation once and compares how the
// aged good core and an aged black list cope with the new farms.
func (e *Env) RunTemporal(w io.Writer) (*TemporalResult, error) {
	section(w, "Extension: temporal stability (Section 3.4's core-vs-blacklist claim)")
	// t0 black list: every 10th spam host.
	spam0 := e.World.SpamNodes()
	var blacklist []graph.NodeID
	for i, x := range spam0 {
		if i%10 == 0 {
			blacklist = append(blacklist, x)
		}
	}

	world1, err := webgen.EvolveSpam(e.World, webgen.EvolveConfig{Seed: e.Cfg.Seed + 13})
	if err != nil {
		return nil, err
	}
	// All three t1 solves (uniform, aged-core jump, stale-black-list
	// jump) run as one batch on an engine bound to the evolved graph.
	eng1, err := pagerank.NewEngine(world1.Graph, e.Cfg.Solver)
	if err != nil {
		return nil, err
	}
	defer eng1.Close()
	n1 := world1.Graph.NumNodes()
	wj := pagerank.ScaledCoreJump(n1, e.Core.Nodes, e.Cfg.Gamma)
	blackV := pagerank.ScaledCoreJump(n1, blacklist, 1-e.Cfg.Gamma)
	rs, err := eng1.SolveMany([]pagerank.Vector{pagerank.UniformJump(n1), wj, blackV})
	if err != nil {
		return nil, err
	}
	p1, pc1, mHat := rs[0], rs[1], rs[2]
	est1 := mass.Derive(p1.Scores, pc1.Scores, e.Est.Damping)

	r := &TemporalResult{}
	// Core freshness: every core member must still be good at t1.
	stillGood := 0
	for _, x := range e.Core.Nodes {
		if !world1.Info[x].Kind.Spam() {
			stillGood++
		}
	}
	r.CoreStillGood = float64(stillGood) / float64(e.Core.Size())
	// Black-list freshness.
	stillSpam := 0
	for _, x := range blacklist {
		if world1.IsSpam(x) {
			stillSpam++
		}
	}
	r.BlacklistStillSpam = float64(stillSpam) / float64(len(blacklist))

	recall := func(est *mass.Estimates, world *webgen.World) float64 {
		targets, hit := 0, 0
		for _, f := range world.Farms {
			if est.ScaledPageRank(f.Target) < e.Cfg.Rho {
				continue
			}
			targets++
			if est.Rel[f.Target] >= 0.75 {
				hit++
			}
		}
		if targets == 0 {
			return 0
		}
		return float64(hit) / float64(targets)
	}
	r.WhiteRecallT0 = recall(e.Est, e.World)
	r.WhiteRecallT1 = recall(est1, world1)

	// Stale black-list estimator at t1 (mHat solved in the batch above).
	blackEst := mass.Derive(p1.Scores, p1.Scores.Clone().Sub(mHat.Scores), e.Est.Damping)
	r.BlackRecallT1 = recall(blackEst, world1)

	fmt.Fprintf(w, "after one spam generation of churn (all farms abandoned and rebuilt):\n")
	fmt.Fprintf(w, "good core still good:            %5.1f%% (the paper expects ~100%%)\n", 100*r.CoreStillGood)
	fmt.Fprintf(w, "t0 black list still spam:        %5.1f%% (spam comes and goes)\n", 100*r.BlacklistStillSpam)
	fmt.Fprintf(w, "white-list recall of farm targets: t0 %.3f -> t1 %.3f (aged core keeps working)\n",
		r.WhiteRecallT0, r.WhiteRecallT1)
	fmt.Fprintf(w, "stale-black-list recall at t1:   %.3f (stale evidence is blind to new farms)\n", r.BlackRecallT1)
	return r, nil
}
