package experiments

import (
	"fmt"
	"io"

	"spammass/internal/graph"
	"spammass/internal/trustrank"
	"spammass/internal/webgen"
)

// TrustRankSeedResult compares seed-selection strategies by the
// TrustRank paper's pairwise orderedness metric over the judged
// high-PageRank population.
type TrustRankSeedResult struct {
	Strategy    trustrank.SeedStrategy
	Seeds       int
	Orderedness float64
}

// RunTrustRankSeeds replays the TrustRank paper's seed-strategy
// comparison on the synthetic world: inverse-PageRank seeds vs
// high-PageRank seeds vs a random spread, each filtered by a
// ground-truth oracle and limited to the same budget, scored by how
// well the resulting trust ranks good above spam in T.
func (e *Env) RunTrustRankSeeds(w io.Writer, seedBudget int) ([]TrustRankSeedResult, error) {
	section(w, "Complement: TrustRank seed strategies (pairwise orderedness over T)")
	oracle := func(x graph.NodeID) bool { return !e.World.IsSpam(x) }
	var good, spam []graph.NodeID
	for _, x := range e.T {
		info := e.World.Info[x]
		if info.Kind == webgen.KindFrontier || info.Kind == webgen.KindIsolated {
			continue
		}
		if e.World.IsSpam(x) {
			spam = append(spam, x)
		} else {
			good = append(good, x)
		}
	}
	var out []TrustRankSeedResult
	fmt.Fprintf(w, "%-18s %8s %14s\n", "strategy", "seeds", "orderedness")
	for _, strategy := range []trustrank.SeedStrategy{
		trustrank.SeedInversePageRank, trustrank.SeedHighPageRank, trustrank.SeedRandom,
	} {
		seeds, err := trustrank.SelectSeedsBy(e.World.Graph, strategy, oracle, 4*seedBudget, seedBudget, e.Cfg.Solver)
		if err != nil {
			return nil, fmt.Errorf("experiments: %v seeds: %w", strategy, err)
		}
		trust, err := trustrank.ComputeOn(e.Engine(), seeds)
		if err != nil {
			return nil, err
		}
		po, err := trustrank.PairwiseOrderedness(trust, good, spam)
		if err != nil {
			return nil, err
		}
		r := TrustRankSeedResult{Strategy: strategy, Seeds: len(seeds), Orderedness: po}
		out = append(out, r)
		fmt.Fprintf(w, "%-18s %8d %14.3f\n", strategy, r.Seeds, r.Orderedness)
	}
	fmt.Fprintln(w, "(the TrustRank paper found inverse-PageRank seeds best: trust must FLOW")
	fmt.Fprintln(w, " from the seeds, so seeds that reach much of the web cover it fastest)")
	return out, nil
}
