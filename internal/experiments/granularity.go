package experiments

import (
	"fmt"
	"io"

	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/pagerank"
	"spammass/internal/webgen"
)

// GranularityResult verifies Section 2.1's abstraction claim: the web
// graph model — and therefore spam mass — works at any granularity
// (pages, hosts, or sites).
type GranularityResult struct {
	Pages int64
	// HostTargetsDetected / PageTargetsDetected: farm targets in T
	// detected at τ = 0.75 at each granularity.
	HostRecall, PageRecall float64
	// Agreement is the fraction of host-level verdicts (detected /
	// not) that the page-level run reproduces for farm targets in the
	// host-level T.
	Agreement float64
}

// RunGranularity expands the host world to the page level, runs the
// whole estimation pipeline on the page graph (with the core expanded
// to the core hosts' pages), and compares the farm-target verdicts
// with the host-level run.
func (e *Env) RunGranularity(w io.Writer) (*GranularityResult, error) {
	section(w, "Extension: granularity abstraction (Section 2.1, pages vs hosts)")
	pcfg := webgen.DefaultPageConfig()
	pw, err := webgen.ExpandPages(e.World, pcfg)
	if err != nil {
		return nil, err
	}
	// Page-level core: every page of a core host.
	inCore := make(map[graph.NodeID]bool, e.Core.Size())
	for _, h := range e.Core.Nodes {
		inCore[h] = true
	}
	var pageCore []graph.NodeID
	firstPageOf := make(map[graph.NodeID]graph.NodeID)
	for p, h := range pw.HostOf {
		if _, seen := firstPageOf[h]; !seen {
			firstPageOf[h] = graph.NodeID(p)
		}
		if inCore[h] {
			pageCore = append(pageCore, graph.NodeID(p))
		}
	}
	est, err := mass.EstimateFromCore(pw.Graph, pageCore, mass.Options{Solver: e.Cfg.Solver, Gamma: e.Cfg.Gamma})
	if err != nil {
		return nil, err
	}

	// Aggregate page scores to hosts: a host's PageRank is the sum of
	// its pages'; its relative mass is mass-weighted.
	nHosts := e.World.Graph.NumNodes()
	hostP := make(pagerank.Vector, nHosts)
	hostPC := make(pagerank.Vector, nHosts)
	for p, h := range pw.HostOf {
		hostP[h] += est.P[p]
		hostPC[h] += est.PCore[p]
	}
	hostEst := mass.Derive(hostP, hostPC, e.Est.Damping)

	r := &GranularityResult{Pages: int64(pw.Graph.NumNodes())}
	// Compare farm-target verdicts between granularities, over the
	// host-level T.
	detectedHost := func(x graph.NodeID) bool {
		return e.Est.Rel[x] >= 0.75 && e.Est.ScaledPageRank(x) >= e.Cfg.Rho
	}
	// The page graph is larger, so the scaled-PageRank unit differs;
	// apply ρ against the host aggregate in host units.
	scaleHost := float64(nHosts) / (1 - e.Est.Damping)
	detectedPage := func(x graph.NodeID) bool {
		return hostEst.Rel[x] >= 0.75 && hostP[x]*scaleHost >= e.Cfg.Rho
	}
	targets, hostHits, pageHits, agree := 0, 0, 0, 0
	for _, f := range e.World.Farms {
		if e.Est.ScaledPageRank(f.Target) < e.Cfg.Rho {
			continue
		}
		targets++
		h := detectedHost(f.Target)
		p := detectedPage(f.Target)
		if h {
			hostHits++
		}
		if p {
			pageHits++
		}
		if h == p {
			agree++
		}
	}
	if targets > 0 {
		r.HostRecall = float64(hostHits) / float64(targets)
		r.PageRecall = float64(pageHits) / float64(targets)
		r.Agreement = float64(agree) / float64(targets)
	}
	fmt.Fprintf(w, "expanded %d hosts to %d pages (%d edges)\n",
		nHosts, pw.Graph.NumNodes(), pw.Graph.NumEdges())
	fmt.Fprintf(w, "farm-target recall at tau=0.75: host-level %.3f, page-level (aggregated) %.3f\n",
		r.HostRecall, r.PageRecall)
	fmt.Fprintf(w, "verdict agreement between granularities: %.3f\n", r.Agreement)
	fmt.Fprintln(w, "(Section 2.1: the model abstracts from granularity; detection survives the change)")
	return r, nil
}
