package experiments

import (
	"fmt"
	"io"
	"sort"

	"spammass/internal/eval"
	"spammass/internal/goodcore"
	"spammass/internal/graph"
	"spammass/internal/mass"
	"spammass/internal/stats"
)

// DataSetResult reproduces the Section 4.1 structural statistics.
type DataSetResult struct {
	Stats graph.Stats
}

// RunDataSet prints the host-graph structure (paper: 73.3M hosts,
// 979M edges, 35% without inlinks, 66.4% without outlinks, 25.8%
// isolated) plus the connectivity summary.
func (e *Env) RunDataSet(w io.Writer) DataSetResult {
	section(w, "Section 4.1: data set structure")
	st := graph.ComputeStats(e.World.Graph)
	fmt.Fprintf(w, "hosts %d, edges %d\n", st.Nodes, st.Edges)
	fmt.Fprintf(w, "no inlinks  %.1f%% (paper 35%%)\n", 100*st.FracNoInlinks())
	fmt.Fprintf(w, "no outlinks %.1f%% (paper 66.4%%)\n", 100*st.FracNoOutlinks())
	fmt.Fprintf(w, "isolated    %.1f%% (paper 25.8%%)\n", 100*st.FracIsolated())
	_, wccCount, largest := graph.WeaklyConnectedComponents(e.World.Graph)
	fmt.Fprintf(w, "weak components: %d; largest spans %.1f%% of hosts\n",
		wccCount, 100*float64(largest)/float64(st.Nodes))
	return DataSetResult{Stats: st}
}

// CoreResult reproduces the Section 4.2 good-core assembly.
type CoreResult struct {
	Size, Directory, Gov, Edu int
	FracOfHosts               float64
}

// RunCore prints the core composition (paper: 16,776 directory +
// 55,320 gov + 434,045 edu = 504,150 hosts ≈ 0.69% of the graph).
func (e *Env) RunCore(w io.Writer) CoreResult {
	section(w, "Section 4.2: good core assembly")
	r := CoreResult{
		Size:        e.Core.Size(),
		Directory:   e.Core.Directory,
		Gov:         e.Core.Gov,
		Edu:         e.Core.Edu,
		FracOfHosts: float64(e.Core.Size()) / float64(e.World.Graph.NumNodes()),
	}
	fmt.Fprintf(w, "core %d hosts (directory %d, gov %d, edu %d) = %.2f%% of the graph (paper 0.69%%)\n",
		r.Size, r.Directory, r.Gov, r.Edu, 100*r.FracOfHosts)
	return r
}

// PRDistResult reproduces the Section 4.3 PageRank distribution facts.
type PRDistResult struct {
	FracBelow2   float64 // paper: 91.1%
	CountAbove99 int     // hosts with scaled PR at least 100 (paper: ~64,000 of 73.3M)
	Exponent     float64 // log-log regression exponent of the PR density
}

// RunPRDist prints the PageRank power-law distribution statistics.
func (e *Env) RunPRDist(w io.Writer) (PRDistResult, error) {
	section(w, "Section 4.3: PageRank distribution")
	n := e.Est.N()
	scaled := make([]float64, n)
	var r PRDistResult
	for x := 0; x < n; x++ {
		scaled[x] = e.Est.ScaledPageRank(graph.NodeID(x))
		if scaled[x] < 2 {
			r.FracBelow2++
		}
		if scaled[x] >= 100 {
			r.CountAbove99++
		}
	}
	r.FracBelow2 /= float64(n)
	maxPR := 0.0
	for _, s := range scaled {
		if s > maxPR {
			maxPR = s
		}
	}
	edges, err := stats.LogBins(1, maxPR, 4)
	if err != nil {
		return r, err
	}
	bins, err := stats.Histogram(scaled, edges)
	if err != nil {
		return r, err
	}
	if r.Exponent, err = stats.PowerLawRegression(bins); err != nil {
		return r, err
	}
	fmt.Fprintf(w, "scaled PR < 2: %.1f%% of hosts (paper 91.1%%)\n", 100*r.FracBelow2)
	fmt.Fprintf(w, "scaled PR >= 100: %d hosts (%.3f%%; paper ~64,000 of 73.3M = 0.09%%)\n",
		r.CountAbove99, 100*float64(r.CountAbove99)/float64(n))
	fmt.Fprintf(w, "power-law exponent of the PR density: %.2f\n", r.Exponent)
	return r, nil
}

// RunTable2 prints the sample groups (Table 2) and returns them.
func (e *Env) RunTable2(w io.Writer) []eval.Group {
	section(w, "Table 2: relative mass thresholds for sample groups")
	fmt.Fprintf(w, "|T| = %d hosts with scaled PR >= %.0f (%.2f%% of graph; paper 883,328 of 73.3M = 1.2%%)\n",
		len(e.T), e.Cfg.Rho, 100*float64(len(e.T))/float64(e.World.Graph.NumNodes()))
	if err := eval.RenderGroupTable(w, e.Groups); err != nil {
		fmt.Fprintln(w, "render error:", err)
	}
	return e.Groups
}

// RunFigure3 prints the sample composition bars of Figure 3.
func (e *Env) RunFigure3(w io.Writer) eval.Composition {
	section(w, "Figure 3: sample composition ('.' good, 'o' anomalous good, '#' spam)")
	comp := eval.Compose(e.Sample)
	if err := eval.RenderCompositionSummary(w, comp); err != nil {
		fmt.Fprintln(w, "render error:", err)
	}
	fmt.Fprintln(w, "(paper: 63.2% good, 25.7% spam, 6.1% unknown, 5% nonexistent)")
	if err := eval.RenderComposition(w, e.Groups); err != nil {
		fmt.Fprintln(w, "render error:", err)
	}
	return comp
}

// Figure4Result is the precision curve of the headline experiment.
type Figure4Result struct {
	Points      []eval.PrecisionPoint
	CountsAbove []int
}

// RunFigure4 prints the precision of Algorithm 2 for thresholds
// derived from the group boundaries, with anomalous hosts included and
// excluded (the two curves of Figure 4).
func (e *Env) RunFigure4(w io.Writer) Figure4Result {
	section(w, "Figure 4: precision of mass-based detection vs threshold")
	thresholds := eval.GroupThresholds(e.Groups)
	points := eval.PrecisionCurve(e.Sample, thresholds)
	inT := make([]bool, e.Est.N())
	for _, x := range e.T {
		inT[x] = true
	}
	counts := eval.CountAbove(e.Est.Rel, inT, thresholds)
	if err := eval.RenderPrecisionCurve(w, points, counts); err != nil {
		fmt.Fprintln(w, "render error:", err)
	}
	// Quantify the sampling error the paper's point estimates carry.
	for _, tau := range []float64{thresholds[0], 0} {
		ci, err := eval.BootstrapPrecision(e.Sample, tau, 0.95, 1000, e.Cfg.Seed+5)
		if err == nil {
			fmt.Fprintf(w, "95%% bootstrap CI at tau=%.2f (anomalies included): %.3f [%.3f, %.3f]\n",
				tau, ci.Point, ci.Lo, ci.Hi)
		}
	}
	fmt.Fprintln(w, "(paper: ~100% at tau=0.98 and 94% at tau=0.91 with anomalies excluded; floor ~48%)")
	return Figure4Result{Points: points, CountsAbove: counts}
}

// CoreVariant is one curve of Figure 5.
type CoreVariant struct {
	Name   string
	Size   int
	Points []eval.PrecisionPoint
}

// RunFigure5 reproduces the core size/coverage experiment of
// Section 4.5: mass estimates from 10%, 1%, and 0.1% random sub-cores
// and from a single-country (.it) core, evaluated on the same sample.
func (e *Env) RunFigure5(w io.Writer) ([]CoreVariant, error) {
	section(w, "Figure 5: impact of core size and coverage")
	thresholds := eval.GroupThresholds(e.Groups)
	variants := []struct {
		name string
		core []graph.NodeID
	}{}
	for _, frac := range []float64{0.10, 0.01, 0.001} {
		sub, err := goodcore.Subsample(e.Core, frac, e.Cfg.Seed+int64(1000*frac))
		if err != nil {
			return nil, err
		}
		variants = append(variants, struct {
			name string
			core []graph.NodeID
		}{fmt.Sprintf("%.1f%% core", 100*frac), sub.Nodes})
	}
	itCore, err := goodcore.CountryEduCore(e.World.Names, "it")
	if err != nil {
		return nil, err
	}
	variants = append(variants, struct {
		name string
		core []graph.NodeID
	}{".it core", itCore.Nodes})
	// An extra variant beyond the paper's menu: a random core of the
	// same size as the .it core, isolating coverage from size (at the
	// paper's scale the 0.1% random core played this role, being 19x
	// smaller than the Italian core; at ours it would be degenerate).
	sameSize, err := goodcore.Subsample(e.Core, float64(len(itCore.Nodes))/float64(e.Core.Size()), e.Cfg.Seed+77)
	if err != nil {
		return nil, err
	}
	variants = append(variants, struct {
		name string
		core []graph.NodeID
	}{"random=|.it|", sameSize.Nodes})

	out := []CoreVariant{{
		Name:   "100% core",
		Size:   e.Core.Size(),
		Points: eval.PrecisionCurve(e.Sample, thresholds),
	}}
	// One batched solve: all core variants share each iteration's
	// in-neighbor sweep instead of re-traversing the graph per variant.
	cores := make([][]graph.NodeID, len(variants))
	for i, v := range variants {
		cores[i] = v.core
	}
	ests, err := e.estimateWithCores(cores)
	if err != nil {
		return nil, fmt.Errorf("experiments: core variants: %w", err)
	}
	for i, v := range variants {
		sample := e.resample(ests[i])
		out = append(out, CoreVariant{Name: v.name, Size: len(v.core), Points: eval.PrecisionCurve(sample, thresholds)})
	}
	fmt.Fprintf(w, "%-12s %8s", "threshold", "")
	for _, v := range out {
		fmt.Fprintf(w, " %12s", v.Name)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %8s", "core size", "")
	for _, v := range out {
		fmt.Fprintf(w, " %12d", v.Size)
	}
	fmt.Fprintln(w)
	for ti, tau := range thresholds {
		fmt.Fprintf(w, "%-12.2f %8s", tau, "")
		for _, v := range out {
			fmt.Fprintf(w, " %12.3f", v.Points[ti].Excluded)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(paper: gradual decline from 100% to 0.1% cores; the .it core is worst despite being 19x larger than the 0.1% core)")
	return out, nil
}

// AnomalyFixResult reproduces Section 4.4.2.
type AnomalyFixResult struct {
	// HubRelBefore/HubRelAfter are the community's popular members'
	// relative masses before and after adding its hubs to the core.
	MemberRelBefore, MemberRelAfter []float64
	// MeanShiftOthers is the mean absolute change of relative mass
	// for positive-mass hosts outside the community (paper: 0.0298).
	MeanShiftOthers float64
}

// RunAnomalyFix adds the uncovered community's hub hosts to the core
// (the paper added 12 key alibaba.com hosts), recomputes the estimates,
// and measures how the community's relative masses collapse while
// everything else stays put.
func (e *Env) RunAnomalyFix(w io.Writer) (*AnomalyFixResult, error) {
	section(w, "Section 4.4.2: eliminating the e-commerce community anomaly")
	hubs := e.World.CommunityHubs["alibaba"]
	if len(hubs) == 0 {
		return nil, fmt.Errorf("experiments: no alibaba hubs in world")
	}
	fixed := goodcore.WithExtra(e.Core, hubs)
	est2, err := e.estimateWithCore(fixed.Nodes)
	if err != nil {
		return nil, err
	}
	isHub := make(map[graph.NodeID]bool, len(hubs))
	for _, h := range hubs {
		isHub[h] = true
	}
	r := &AnomalyFixResult{}
	var memberRel []struct{ before, after float64 }
	shiftSum, shiftN := 0.0, 0
	for _, x := range e.T {
		inCommunity := e.World.Info[x].Community == "alibaba"
		if inCommunity && !isHub[x] {
			memberRel = append(memberRel, struct{ before, after float64 }{e.Est.Rel[x], est2.Rel[x]})
			continue
		}
		if !inCommunity && e.Est.Rel[x] > 0 {
			d := est2.Rel[x] - e.Est.Rel[x]
			if d < 0 {
				d = -d
			}
			shiftSum += d
			shiftN++
		}
	}
	sort.Slice(memberRel, func(i, j int) bool { return memberRel[i].before > memberRel[j].before })
	for _, m := range memberRel {
		r.MemberRelBefore = append(r.MemberRelBefore, m.before)
		r.MemberRelAfter = append(r.MemberRelAfter, m.after)
	}
	if shiftN > 0 {
		r.MeanShiftOthers = shiftSum / float64(shiftN)
	}
	fmt.Fprintf(w, "added %d hub hosts to the core (%d -> %d members)\n", len(hubs), e.Core.Size(), fixed.Size())
	show := len(memberRel)
	if show > 5 {
		show = 5
	}
	for i := 0; i < show; i++ {
		fmt.Fprintf(w, "community member %d: m~ %.4f -> %.4f\n", i+1, r.MemberRelBefore[i], r.MemberRelAfter[i])
	}
	fmt.Fprintf(w, "mean |shift| of other positive-mass hosts in T: %.4f (paper 0.0298)\n", r.MeanShiftOthers)
	fmt.Fprintln(w, "(paper: 0.9989 -> 0.5298 and 0.9923 -> 0.3488 for the two group-20 hosts)")
	return r, nil
}

// RunFigure6 prints the absolute-mass distribution analysis.
func (e *Env) RunFigure6(w io.Writer) (*eval.MassDistribution, error) {
	section(w, "Figure 6: distribution of estimated absolute mass")
	d, err := eval.AnalyzeMassDistribution(e.Est, eval.DefaultMassDistributionConfig())
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "scaled mass range: [%.0f, %.0f] (paper: [-268,099, 132,332])\n", d.MinMass, d.MaxMass)
	fmt.Fprintf(w, "positive-branch power law: regression exponent %.2f, MLE -%.2f (paper -2.31)\n",
		d.PositiveExponent, d.PositiveMLEAlpha)
	if err := eval.RenderHistogram(w, d.Positive, "positive scaled mass:"); err != nil {
		return nil, err
	}
	if err := eval.RenderHistogram(w, d.Negative, "negative scaled mass (absolute values; superimposed core/non-core curves):"); err != nil {
		return nil, err
	}
	return d, nil
}

// AbsMassResult reproduces the Section 4.6 inspection.
type AbsMassResult struct {
	Top []mass.Candidate
	// SpamInTop counts ground-truth spam among the top-k list —
	// the paper found good and spam "intermixed without any specific
	// mass value that could be used as an appropriate separation point".
	SpamInTop int
}

// RunAbsMass prints the hosts with the largest estimated absolute mass.
func (e *Env) RunAbsMass(w io.Writer, k int) AbsMassResult {
	section(w, "Section 4.6: absolute mass is not a spam signal by itself")
	top := mass.TopByAbsMass(e.Est, k)
	r := AbsMassResult{Top: top}
	for i, c := range top {
		label := "good"
		if e.World.IsSpam(c.Node) {
			label = "SPAM"
			r.SpamInTop++
		}
		fmt.Fprintf(w, "#%-3d %-28s M~ %9.1f  PR %9.1f  m~ %6.3f  %s\n",
			i+1, e.World.Names[c.Node], e.Est.ScaledAbsMass(c.Node), c.ScaledPageRank, c.RelMass, label)
	}
	fmt.Fprintf(w, "spam in top %d by absolute mass: %d (%.0f%%) — intermixed, as in the paper\n",
		k, r.SpamInTop, 100*float64(r.SpamInTop)/float64(len(top)))
	return r
}

// RunExpired reports how the known false-negative class behaves: spam
// on expired domains draws its PageRank from good hosts, so white-list
// mass estimation misses it, while a black-list estimate catches it.
func (e *Env) RunExpired(w io.Writer) (missed int, caught int, err error) {
	section(w, "Expired-domain spam: the designed false negatives")
	spamCore := e.World.SpamNodes()
	// Black-list estimate from a modest random subset of known spam.
	subset := spamCore[:len(spamCore)/10]
	black, err := mass.EstimateFromBlacklist(e.World.Graph, subset, 1-e.Cfg.Gamma, mass.Options{Solver: e.Cfg.Solver})
	if err != nil {
		return 0, 0, err
	}
	for _, x := range e.World.ExpiredSpam {
		if e.Est.ScaledPageRank(x) < e.Cfg.Rho {
			continue
		}
		if e.Est.Rel[x] < 0.98 {
			missed++
		}
		if black.Rel[x] > 0.05 || e.Est.Rel[x] >= 0.98 {
			caught++
		}
	}
	fmt.Fprintf(w, "expired-domain spam hosts in T missed at tau=0.98: %d; caught by white+black evidence: %d\n", missed, caught)
	fmt.Fprintln(w, "(paper: \"our algorithm is not expected to detect them\" — Section 4.4, observation 2)")
	return missed, caught, nil
}
